// Reproduces Fig. 3 (middle): "LLP Classification Error vs. Bag Size" on
// the Adult-Income-style dataset (paper §5.3/§5.4).
//
// Series:
//   LLP      — train the trainable SQL query from exact per-bag counts.
//   LLP-DP   — same, from Laplace-noised counts (label differential
//              privacy, ε = 0.1 per count).
//   Non-LLP  — fully-supervised logistic baseline (flat reference line).
//
// Expected shape: LLP tracks Non-LLP closely for small bags and degrades
// slowly with bag size; LLP-DP is terrible for small bags (noise swamps
// the counts), best around bag size ~64, then degrades like LLP.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/autograd/node.h"
#include "src/data/adult.h"
#include "src/models/tvfs.h"
#include "src/nn/layers.h"
#include "src/nn/loss.h"
#include "src/nn/optim.h"
#include "src/runtime/session.h"
#include "src/tensor/ops.h"

namespace {

using tdp::Device;
using tdp::Tensor;

// Instance-level classification error of a linear model.
double ClassificationError(tdp::nn::Module& model,
                           const tdp::data::AdultDataset& test) {
  tdp::autograd::NoGradGuard no_grad;
  const Tensor logits = model.Forward(test.features.To(Device::kAccel));
  const Tensor pred = ArgMax(logits, 1, false);
  const int64_t n = test.labels.numel();
  int64_t errors = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (pred.At({i}) != test.labels.At({i})) ++errors;
  }
  return static_cast<double>(errors) / static_cast<double>(n);
}

// Trains the trainable LLP query on `bags` for a fixed number of
// optimizer steps (bags cycled), so every bag size gets equal training
// effort; returns held-out error.
double TrainLlp(const tdp::data::LlpBags& bags,
                const tdp::data::AdultDataset& test, int steps,
                uint64_t seed) {
  tdp::Rng rng(seed);
  tdp::Session session;
  auto tvf = tdp::models::RegisterClassifyIncomesTvf(
      session.functions(), tdp::data::kAdultNumFeatures, rng);
  TDP_CHECK(tvf.ok());

  auto register_bag = [&](size_t b) {
    auto table = tdp::TableBuilder("Adult_Income_Bag")
                     .AddTensor("features", bags.bag_features[b])
                     .Build();
    TDP_CHECK(session
                  .RegisterTable("Adult_Income_Bag", table.value(),
                                 Device::kAccel)
                  .ok());
  };
  register_bag(0);

  tdp::QueryOptions options;
  options.trainable = true;
  auto query = session.Query(
      "SELECT Income, COUNT(*) FROM classify_incomes(Adult_Income_Bag) "
      "GROUP BY Income",
      options);
  TDP_CHECK(query.ok()) << query.status().ToString();

  tdp::nn::Adam optimizer((*query)->Parameters(), 0.02);
  for (int step = 0; step < steps; ++step) {
    const size_t b = static_cast<size_t>(step) % bags.bag_features.size();
    register_bag(b);
    optimizer.ZeroGrad();
    auto chunk = (*query)->RunChunk();
    TDP_CHECK(chunk.ok());
    Tensor target = Slice(bags.counts, 0, static_cast<int64_t>(b), 1)
                        .Squeeze(0)
                        .To(Device::kAccel);
    tdp::nn::MSELoss(chunk->columns[1].data(), target).Backward();
    optimizer.Step();
  }
  return ClassificationError(*tvf->model, test);
}

}  // namespace

int main() {
  const int64_t kTrainRows = tdp::bench::Scaled(8192, 32768);
  const int64_t kTestRows = tdp::bench::Scaled(2048, 8192);
  const int kSteps = static_cast<int>(tdp::bench::Scaled(2000, 8000));
  const int kDpSeeds = static_cast<int>(tdp::bench::Scaled(4, 6));
  // Paper privacy setting: ε = 0.1 per count query -> Laplace scale 1/ε.
  const double kLaplaceScale = 1.0 / 0.1;

  tdp::Rng rng(31);
  tdp::data::AdultDataset train = tdp::data::MakeAdultDataset(kTrainRows, rng);
  tdp::data::AdultDataset test = tdp::data::MakeAdultDataset(kTestRows, rng);

  std::printf("LLP benchmark (Fig. 3 middle): %lld train rows, ε=0.1\n\n",
              static_cast<long long>(kTrainRows));

  // Non-LLP fully supervised reference.
  double supervised_error = 0;
  {
    tdp::Rng model_rng(1);
    tdp::nn::Linear model(tdp::data::kAdultNumFeatures, 2, model_rng, true,
                          Device::kAccel);
    tdp::nn::Adam optimizer(model.Parameters(), 0.05);
    const Tensor x = train.features.To(Device::kAccel);
    for (int step = 0; step < 300; ++step) {
      optimizer.ZeroGrad();
      tdp::nn::SoftmaxCrossEntropyLoss(model.Forward(x), train.labels)
          .Backward();
      optimizer.Step();
    }
    supervised_error = ClassificationError(model, test);
  }
  std::printf("Non-LLP (supervised) error: %.3f\n\n", supervised_error);

  std::printf("%10s %10s %10s %10s\n", "bag_size", "LLP", "LLP-DP",
              "Non-LLP");
  const std::vector<int64_t> bag_sizes = {1, 8, 16, 32, 64, 128, 256, 512};
  for (int64_t bag_size : bag_sizes) {
    tdp::Rng bag_rng(100 + static_cast<uint64_t>(bag_size));
    tdp::data::LlpBags clean =
        tdp::data::MakeBags(train, bag_size, 0.0, bag_rng);
    const double llp_error = TrainLlp(clean, test, kSteps, 1);

    // LLP-DP is high-variance at small bags; average over noise draws.
    double dp_error = 0;
    for (int s = 0; s < kDpSeeds; ++s) {
      tdp::Rng dp_rng(200 + static_cast<uint64_t>(bag_size) * 17 +
                      static_cast<uint64_t>(s));
      tdp::data::LlpBags noisy =
          tdp::data::MakeBags(train, bag_size, kLaplaceScale, dp_rng);
      dp_error += TrainLlp(noisy, test, kSteps, 1 + s);
    }
    dp_error /= kDpSeeds;

    std::printf("%10lld %10.3f %10.3f %10.3f\n",
                static_cast<long long>(bag_size), llp_error, dp_error,
                supervised_error);
  }
  std::printf(
      "\nexpected shape: LLP ~= Non-LLP for small bags, slowly degrading;\n"
      "LLP-DP catastrophic at tiny bags, optimum near bag size 64.\n");
  return 0;
}
