// Kernel-backend ablation (google-benchmark): per-op timing of the
// reference backend (Device::kCpu) vs the accelerated backend
// (Device::kAccel). This quantifies the mechanism behind the Fig. 2
// device gap at the operator level.

#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

Device ArgDevice(const benchmark::State& state) {
  return state.range(0) == 0 ? Device::kCpu : Device::kAccel;
}

void BM_ElementwiseAdd(benchmark::State& state) {
  Rng rng(1);
  const Device device = ArgDevice(state);
  Tensor a = RandNormal({1 << 16}, 0, 1, rng).To(device);
  Tensor b = RandNormal({1 << 16}, 0, 1, rng).To(device);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Add(a, b).impl().get());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_ElementwiseAdd)->Arg(0)->Arg(1);

void BM_ElementwiseMulBroadcast(benchmark::State& state) {
  Rng rng(2);
  const Device device = ArgDevice(state);
  Tensor a = RandNormal({256, 256}, 0, 1, rng).To(device);
  Tensor b = RandNormal({256, 1}, 0, 1, rng).To(device);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Mul(a, b).impl().get());
  }
  state.SetItemsProcessed(state.iterations() * 256 * 256);
}
BENCHMARK(BM_ElementwiseMulBroadcast)->Arg(0)->Arg(1);

void BM_MatMul(benchmark::State& state) {
  Rng rng(3);
  const Device device = ArgDevice(state);
  const int64_t n = state.range(1);
  Tensor a = RandNormal({n, n}, 0, 1, rng).To(device);
  Tensor b = RandNormal({n, n}, 0, 1, rng).To(device);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b).impl().get());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Args({0, 64})->Args({1, 64})->Args({0, 128})
    ->Args({1, 128});

void BM_Conv2d(benchmark::State& state) {
  Rng rng(4);
  const Device device = ArgDevice(state);
  Tensor input = RandNormal({4, 8, 16, 16}, 0, 1, rng).To(device);
  Tensor weight = RandNormal({16, 8, 3, 3}, 0, 0.1, rng).To(device);
  Tensor bias = RandNormal({16}, 0, 0.1, rng).To(device);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Conv2d(input, weight, bias, 1, 1).impl().get());
  }
}
BENCHMARK(BM_Conv2d)->Arg(0)->Arg(1);

void BM_Exp(benchmark::State& state) {
  Rng rng(5);
  const Device device = ArgDevice(state);
  Tensor a = RandNormal({1 << 15}, 0, 1, rng).To(device);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exp(a).impl().get());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 15));
}
BENCHMARK(BM_Exp)->Arg(0)->Arg(1);

void BM_SortAndUnique(benchmark::State& state) {
  Rng rng(6);
  Tensor keys = RandInt({1 << 14}, 0, 999, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unique(keys).values.impl().get());
  }
}
BENCHMARK(BM_SortAndUnique);

void BM_AutogradMatMulBackward(benchmark::State& state) {
  Rng rng(7);
  Tensor a = RandNormal({64, 64}, 0, 1, rng).To(Device::kAccel);
  a.set_requires_grad(true);
  Tensor b = RandNormal({64, 64}, 0, 1, rng).To(Device::kAccel);
  for (auto _ : state) {
    a.ZeroGrad();
    Sum(MatMul(a, b)).Backward();
    benchmark::DoNotOptimize(a.grad().impl().get());
  }
}
BENCHMARK(BM_AutogradMatMulBackward);

}  // namespace
}  // namespace tdp

BENCHMARK_MAIN();
