// Kernel-backend ablation (google-benchmark): per-op timing of the
// reference backend (Device::kCpu) vs the accelerated backend
// (Device::kAccel). This quantifies the mechanism behind the Fig. 2
// device gap at the operator level.

#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/tensor/buffer.h"
#include "src/tensor/ops.h"
#include "src/tensor/scratch.h"

namespace tdp {
namespace {

Device ArgDevice(const benchmark::State& state) {
  return state.range(0) == 0 ? Device::kCpu : Device::kAccel;
}

void BM_ElementwiseAdd(benchmark::State& state) {
  Rng rng(1);
  const Device device = ArgDevice(state);
  Tensor a = RandNormal({1 << 16}, 0, 1, rng).To(device);
  Tensor b = RandNormal({1 << 16}, 0, 1, rng).To(device);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Add(a, b).impl().get());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_ElementwiseAdd)->Arg(0)->Arg(1);

void BM_ElementwiseMulBroadcast(benchmark::State& state) {
  Rng rng(2);
  const Device device = ArgDevice(state);
  Tensor a = RandNormal({256, 256}, 0, 1, rng).To(device);
  Tensor b = RandNormal({256, 1}, 0, 1, rng).To(device);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Mul(a, b).impl().get());
  }
  state.SetItemsProcessed(state.iterations() * 256 * 256);
}
BENCHMARK(BM_ElementwiseMulBroadcast)->Arg(0)->Arg(1);

void BM_MatMul(benchmark::State& state) {
  Rng rng(3);
  const Device device = ArgDevice(state);
  const int64_t n = state.range(1);
  Tensor a = RandNormal({n, n}, 0, 1, rng).To(device);
  Tensor b = RandNormal({n, n}, 0, 1, rng).To(device);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b).impl().get());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Args({0, 64})->Args({1, 64})->Args({0, 128})
    ->Args({1, 128});

void BM_Conv2d(benchmark::State& state) {
  Rng rng(4);
  const Device device = ArgDevice(state);
  Tensor input = RandNormal({4, 8, 16, 16}, 0, 1, rng).To(device);
  Tensor weight = RandNormal({16, 8, 3, 3}, 0, 0.1, rng).To(device);
  Tensor bias = RandNormal({16}, 0, 0.1, rng).To(device);
  // Warm the per-thread im2col scratch and any cached reorders, then hold
  // the steady state to an allocation budget: each iteration may allocate
  // only the output buffer (the bias staging copy and per-sample unfold
  // buffers used to be re-malloc'ed every forward).
  Conv2d(input, weight, bias, 1, 1);
  Conv2d(input, weight, bias, 1, 1);
  const int64_t allocs_before = Buffer::allocation_count();
  const int64_t growth_before = ScratchArena::growth_count();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Conv2d(input, weight, bias, 1, 1).impl().get());
  }
  const int64_t allocs = Buffer::allocation_count() - allocs_before;
  const int64_t growth = ScratchArena::growth_count() - growth_before;
  state.counters["allocs_per_iter"] =
      static_cast<double>(allocs) / static_cast<double>(state.iterations());
  if (allocs > static_cast<int64_t>(state.iterations())) {
    state.SkipWithError("steady-state Conv2d allocated more than its output");
  }
  // Multi-threaded shards may each warm a fresh thread-local arena once;
  // growth beyond the pool width means per-iteration churn came back.
  if (growth > ThreadPool::Global().num_threads()) {
    state.SkipWithError("steady-state Conv2d kept growing scratch arenas");
  }
}
BENCHMARK(BM_Conv2d)->Arg(0)->Arg(1);

void BM_Exp(benchmark::State& state) {
  Rng rng(5);
  const Device device = ArgDevice(state);
  Tensor a = RandNormal({1 << 15}, 0, 1, rng).To(device);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exp(a).impl().get());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 15));
}
BENCHMARK(BM_Exp)->Arg(0)->Arg(1);

void BM_SortAndUnique(benchmark::State& state) {
  Rng rng(6);
  Tensor keys = RandInt({1 << 14}, 0, 999, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unique(keys).values.impl().get());
  }
}
BENCHMARK(BM_SortAndUnique);

void BM_AutogradMatMulBackward(benchmark::State& state) {
  Rng rng(7);
  Tensor a = RandNormal({64, 64}, 0, 1, rng).To(Device::kAccel);
  a.set_requires_grad(true);
  Tensor b = RandNormal({64, 64}, 0, 1, rng).To(Device::kAccel);
  for (auto _ : state) {
    a.ZeroGrad();
    Sum(MatMul(a, b)).Backward();
    benchmark::DoNotOptimize(a.grad().impl().get());
  }
}
BENCHMARK(BM_AutogradMatMulBackward);

// ---- Thread scaling ---------------------------------------------------------
//
// The morsel-parallel kernels at 1 vs N threads (same accelerated backend,
// same inputs — results are bit-identical, only wall clock changes). On a
// 4-core runner BM_MatMulThreads/4 should be ≥2x the items/s of /1.

void BM_MatMulThreads(benchmark::State& state) {
  ScopedNumThreads guard(static_cast<int>(state.range(0)));
  Rng rng(11);
  const int64_t n = 256;
  Tensor a = RandNormal({n, n}, 0, 1, rng).To(Device::kAccel);
  Tensor b = RandNormal({n, n}, 0, 1, rng).To(Device::kAccel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b).impl().get());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_ElementwiseAddThreads(benchmark::State& state) {
  ScopedNumThreads guard(static_cast<int>(state.range(0)));
  Rng rng(12);
  Tensor a = RandNormal({1 << 20}, 0, 1, rng).To(Device::kAccel);
  Tensor b = RandNormal({1 << 20}, 0, 1, rng).To(Device::kAccel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Add(a, b).impl().get());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_ElementwiseAddThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_SumThreads(benchmark::State& state) {
  ScopedNumThreads guard(static_cast<int>(state.range(0)));
  Rng rng(13);
  Tensor a = RandNormal({1 << 21}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sum(a).impl().get());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 21));
}
BENCHMARK(BM_SumThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_Conv2dThreads(benchmark::State& state) {
  ScopedNumThreads guard(static_cast<int>(state.range(0)));
  Rng rng(14);
  Tensor input = RandNormal({16, 8, 28, 28}, 0, 1, rng).To(Device::kAccel);
  Tensor weight = RandNormal({16, 8, 3, 3}, 0, 0.1, rng).To(Device::kAccel);
  Tensor bias = RandNormal({16}, 0, 0.1, rng).To(Device::kAccel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Conv2d(input, weight, bias, 1, 1).impl().get());
  }
  // Output elements per iteration: N=16, outC=16, 28x28 (stride 1, pad 1).
  state.SetItemsProcessed(state.iterations() * 16 * 16 * 28 * 28);
}
BENCHMARK(BM_Conv2dThreads)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace tdp

BENCHMARK_MAIN();
