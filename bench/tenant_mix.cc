// Multi-tenant serving under load: hundreds of simulated clients firing a
// skewed tenant mix (tenant 0 sends ~half the traffic) at one
// `server::Engine`, measured as end-to-end request latency percentiles
// plus the shed rate.
//
//   ./tenant_mix --benchmark_counters_tabular=true
//
// Two sizings of the same workload:
//   - BM_TenantMixProvisioned: queue and concurrency sized for the offered
//     load — shed_rate must be ~0 and p99 tracks execution time;
//   - BM_TenantMixOverload: deliberately under-provisioned (1 slot, short
//     queue) — the engine must convert overload into SHED REQUESTS, not
//     latency: p99_ms stays bounded (a shed returns in microseconds, a
//     queued request waits at most queue_depth x service time) and
//     shed_rate is substantially nonzero. An admission bug that queues
//     unboundedly shows up here as p99 blowing past the gate threshold.
//
// p50_ms/p99_ms ride into the benchmark-gate job's trajectory JSON and
// are gated lower-is-better by tools/bench_compare.py; shed_rate is
// recorded for trend visibility but never gated (its healthy value
// depends on the sizing, not on code quality).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/server/engine.h"

namespace tdp {
namespace {

using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::steady_clock;

/// Simulated clients per measured iteration ("hundreds" at either scale).
int64_t NumClients() { return bench::Scaled(128, 512); }
int64_t RequestsPerClient() { return bench::Scaled(4, 16); }
constexpr int64_t kTenants = 8;
constexpr int64_t kRowsPerTenant = 2048;

/// Zipf-ish skew: tenant 0 takes ~1/2 the traffic, tenant 1 ~1/4, the
/// tail splits the rest — the shape that makes the per-tenant cap matter.
int64_t PickTenant(uint64_t draw) {
  const uint64_t r = draw % 256;
  if (r < 128) return 0;
  if (r < 192) return 1;
  return 2 + static_cast<int64_t>(r % (kTenants - 2));
}

const std::vector<std::string>& TenantNames() {
  static const std::vector<std::string>* names = [] {
    auto* v = new std::vector<std::string>();
    for (int64_t t = 0; t < kTenants; ++t) {
      v->push_back("tenant" + std::to_string(t));
    }
    return v;
  }();
  return *names;
}

/// The request mix: mostly point reads, some grouped aggregates, and an
/// ORDER BY whose breaker runs under the engine's default memory budget.
const std::string& PickQuery(uint64_t draw) {
  static const std::vector<std::string> queries = {
      "SELECT v FROM events WHERE k = 123",
      "SELECT v FROM events WHERE k = 777",
      "SELECT tag, COUNT(*), SUM(v) FROM events GROUP BY tag",
      "SELECT k, v FROM events ORDER BY v DESC LIMIT 32",
  };
  // Point reads dominate (as in the serve_concurrent suite).
  const uint64_t r = draw % 8;
  return queries[r < 4 ? r % 2 : r % queries.size()];
}

void RegisterTenantTables(server::Engine& engine) {
  const char* kTags[] = {"a", "b", "c", "d"};
  for (int64_t t = 0; t < kTenants; ++t) {
    std::vector<int64_t> k(kRowsPerTenant), v(kRowsPerTenant);
    std::vector<std::string> tag(kRowsPerTenant);
    for (int64_t i = 0; i < kRowsPerTenant; ++i) {
      k[i] = i;
      v[i] = (i * 37 + t * 11) % 4001;
      tag[i] = kTags[(i + t) % 4];
    }
    auto table = TableBuilder("events")
                     .AddInt64("k", k)
                     .AddInt64("v", v)
                     .AddStrings("tag", tag)
                     .Build();
    TDP_CHECK(table.ok()) << table.status().ToString();
    TDP_CHECK(engine.tenant(TenantNames()[static_cast<size_t>(t)])
                  .RegisterTable("events", table.value())
                  .ok());
  }
}

struct MixResult {
  std::vector<int64_t> latencies_us;  // admitted (served) requests only
  uint64_t shed = 0;
  uint64_t total = 0;
};

/// One wave: NumClients() threads, each firing RequestsPerClient()
/// requests under the skewed tenant/query mix. Served requests record
/// their end-to-end latency (queue wait included); shed requests — which
/// return in microseconds by design — count toward shed_rate instead, so
/// the percentiles describe the latency a SERVED client saw.
MixResult RunMix(server::Engine& engine) {
  const int64_t clients = NumClients();
  const int64_t per_client = RequestsPerClient();
  MixResult mix;
  mix.total = static_cast<uint64_t>(clients * per_client);
  std::vector<std::vector<int64_t>> per_client_latencies(
      static_cast<size_t>(clients));
  std::atomic<uint64_t> shed{0};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto& latencies = per_client_latencies[static_cast<size_t>(c)];
      latencies.reserve(static_cast<size_t>(per_client));
      for (int64_t i = 0; i < per_client; ++i) {
        const uint64_t draw =
            static_cast<uint64_t>(c) * 2654435761u + static_cast<uint64_t>(i);
        server::Engine::Request req{
            TenantNames()[static_cast<size_t>(PickTenant(draw))],
            PickQuery(draw >> 8),
            {},
            {}};
        const auto start = steady_clock::now();
        auto result = engine.Sql(req);
        const auto elapsed =
            duration_cast<microseconds>(steady_clock::now() - start);
        if (result.ok()) {
          latencies.push_back(elapsed.count());
        } else {
          TDP_CHECK(result.status().code() ==
                    StatusCode::kResourceExhausted)
              << result.status().ToString();
          ++shed;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& latencies : per_client_latencies) {
    mix.latencies_us.insert(mix.latencies_us.end(), latencies.begin(),
                            latencies.end());
  }
  mix.shed = shed.load();
  return mix;
}

double PercentileMs(std::vector<int64_t>& latencies_us, double p) {
  TDP_CHECK(!latencies_us.empty());
  std::sort(latencies_us.begin(), latencies_us.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(latencies_us.size() - 1) + 0.5);
  return static_cast<double>(latencies_us[idx]) / 1000.0;
}

void RunTenantMix(benchmark::State& state, const server::EngineOptions& opts) {
  server::Engine engine(opts);
  RegisterTenantTables(engine);
  // Warm every tenant's plan cache so the measured waves serve cached
  // plans (the steady serving state).
  for (int64_t t = 0; t < kTenants; ++t) {
    for (uint64_t q = 0; q < 8; ++q) {
      (void)engine.Sql({TenantNames()[static_cast<size_t>(t)], PickQuery(q),
                        {},
                        {}});
    }
  }

  std::vector<int64_t> all_latencies_us;
  uint64_t shed = 0, total = 0;
  for (auto _ : state) {
    MixResult mix = RunMix(engine);
    all_latencies_us.insert(all_latencies_us.end(), mix.latencies_us.begin(),
                            mix.latencies_us.end());
    shed += mix.shed;
    total += mix.total;
  }

  state.SetItemsProcessed(static_cast<int64_t>(total));
  state.counters["p50_ms"] = benchmark::Counter(
      PercentileMs(all_latencies_us, 0.50), benchmark::Counter::kAvgThreads);
  state.counters["p99_ms"] = benchmark::Counter(
      PercentileMs(all_latencies_us, 0.99), benchmark::Counter::kAvgThreads);
  state.counters["shed_rate"] = benchmark::Counter(
      static_cast<double>(shed) / static_cast<double>(total),
      benchmark::Counter::kAvgThreads);
}

/// Sized for the load: shed_rate ~0, percentiles track execution.
void BM_TenantMixProvisioned(benchmark::State& state) {
  server::EngineOptions opts;
  opts.max_concurrent = 8;
  opts.per_tenant_max_concurrent = 4;
  opts.max_queue = NumClients() * RequestsPerClient();  // never sheds
  opts.default_memory_budget_bytes = 256 * 1024;
  RunTenantMix(state, opts);
}
BENCHMARK(BM_TenantMixProvisioned)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Deliberately under-provisioned: overload becomes shed requests (fast,
/// explicit) instead of unbounded queueing — p99 stays bounded, shed_rate
/// is substantially nonzero.
void BM_TenantMixOverload(benchmark::State& state) {
  server::EngineOptions opts;
  opts.max_concurrent = 1;
  opts.per_tenant_max_concurrent = 1;
  opts.max_queue = 8;
  opts.default_memory_budget_bytes = 256 * 1024;
  RunTenantMix(state, opts);
}
BENCHMARK(BM_TenantMixOverload)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tdp

BENCHMARK_MAIN();
