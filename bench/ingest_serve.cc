// Sustained ingest while serving: DML throughput through the full SQL
// stack, alone and with concurrent readers on the same Session.
//
//   ./ingest_serve --benchmark_counters_tabular=true
//
// The interesting numbers:
//   - BM_InsertRows/batch: rows/sec a single writer sustains through
//     prepared INSERTs; the copy-on-write install clones only the tail
//     segment, so throughput must not fall off as the table accumulates
//     sealed segments (rows_per_second across batch sizes).
//   - BM_UpdatePoint / BM_DeleteInsertChurn: in-place rewrite and
//     bitmap-delete cost on a serving-sized table.
//   - BM_IngestWhileServing at ->Threads(4/8): thread 0 ingests, the rest
//     serve cached point aggregates; reader throughput under write churn
//     vs. BM_ReadOnlyBaseline at the same thread count is the headline
//     "ingest tax" on serving latency.

#include <benchmark/benchmark.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/runtime/session.h"

namespace tdp {
namespace {

using exec::ScalarValue;

int64_t BaseRows() { return bench::Scaled(4096, 1 << 18); }

// A session with `base` pre-populated through the same DML path being
// measured (multi-row INSERT statements), so the table is genuinely
// segmented rather than one registered monolith.
std::unique_ptr<Session> MakeIngestSession() {
  auto session = std::make_unique<Session>();
  TDP_CHECK(
      session->Sql("CREATE TABLE base (id INT, val INT, tag TEXT)").ok());
  const int64_t n = BaseRows();
  const char* kTags[] = {"alpha", "beta", "gamma", "delta"};
  for (int64_t at = 0; at < n;) {
    std::string sql = "INSERT INTO base VALUES ";
    for (int i = 0; i < 512 && at < n; ++i, ++at) {
      if (i > 0) sql += ", ";
      sql += '(';
      sql += std::to_string(at);
      sql += ", ";
      sql += std::to_string((at * 7) % 1000);
      sql += ", '";
      sql += kTags[at % 4];
      sql += "')";
    }
    TDP_CHECK(session->Sql(sql).ok());
  }
  return session;
}

/// Single-writer ingest: one prepared single-row INSERT per iteration.
/// The append clones the tail segment only; sealed segments are shared
/// between the old and new table versions untouched.
void BM_InsertRows(benchmark::State& state) {
  auto session = MakeIngestSession();
  auto prepared = session->Prepare("INSERT INTO base VALUES (?, ?, 'hot')");
  TDP_CHECK(prepared.ok()) << prepared.status().ToString();
  int64_t id = BaseRows();
  for (auto _ : state) {
    auto r = (*prepared)->Run(
        {ScalarValue::Int(id), ScalarValue::Int(id % 1000)});
    TDP_CHECK(r.ok()) << r.status().ToString();
    benchmark::DoNotOptimize(r);
    ++id;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rows_per_second"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InsertRows)->UseRealTime();

/// Point UPDATE on a serving-sized table: predicate scan + single-row
/// rewrite + install. WithUpdated compacts to one segment, so the cost is
/// dominated by the column copy — the worst case for in-place DML.
void BM_UpdatePoint(benchmark::State& state) {
  auto session = MakeIngestSession();
  auto prepared =
      session->Prepare("UPDATE base SET val = val + 1 WHERE id = ?");
  TDP_CHECK(prepared.ok()) << prepared.status().ToString();
  int64_t id = 0;
  for (auto _ : state) {
    auto r = (*prepared)->Run({ScalarValue::Int(id % BaseRows())});
    TDP_CHECK(r.ok()) << r.status().ToString();
    benchmark::DoNotOptimize(r);
    id += 17;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdatePoint)->UseRealTime();

/// Steady-state churn: insert a row, delete an older one. Deletes are
/// bitmap-only (no compaction), so this also measures reads-through-
/// bitmap staying cheap as tombstones accumulate.
void BM_DeleteInsertChurn(benchmark::State& state) {
  auto session = MakeIngestSession();
  auto ins = session->Prepare("INSERT INTO base VALUES (?, 1, 'churn')");
  auto del = session->Prepare("DELETE FROM base WHERE id = ?");
  TDP_CHECK(ins.ok() && del.ok());
  int64_t id = BaseRows();
  for (auto _ : state) {
    auto r1 = (*ins)->Run({ScalarValue::Int(id)});
    TDP_CHECK(r1.ok()) << r1.status().ToString();
    auto r2 = (*del)->Run({ScalarValue::Int(id - BaseRows())});
    TDP_CHECK(r2.ok()) << r2.status().ToString();
    ++id;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_DeleteInsertChurn)->UseRealTime();

// ---- Ingest-while-serving ---------------------------------------------------

Session& ServingSession() {
  static Session* session = MakeIngestSession().release();
  return *session;
}

constexpr const char* kServeQuery =
    "SELECT COUNT(*), SUM(val) FROM base WHERE tag = 'alpha'";

/// Thread 0 ingests single-row INSERTs; every other thread serves the
/// cached aggregate. items_per_second aggregates both roles; compare the
/// per-thread reader rate against BM_ReadOnlyBaseline at the same thread
/// count for the serving tax of concurrent writes.
void BM_IngestWhileServing(benchmark::State& state) {
  Session& session = ServingSession();
  if (state.thread_index() == 0) {
    auto prepared =
        session.Prepare("INSERT INTO base VALUES (?, ?, 'live')");
    TDP_CHECK(prepared.ok()) << prepared.status().ToString();
    int64_t id = 1 << 20;
    for (auto _ : state) {
      auto r = (*prepared)->Run(
          {ScalarValue::Int(id), ScalarValue::Int(id % 1000)});
      TDP_CHECK(r.ok()) << r.status().ToString();
      ++id;
    }
  } else {
    for (auto _ : state) {
      auto r = session.Sql(kServeQuery);
      TDP_CHECK(r.ok()) << r.status().ToString();
      benchmark::DoNotOptimize(r);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IngestWhileServing)->Threads(4)->Threads(8)->UseRealTime();

/// The same aggregate with no writer — the baseline the ingest tax is
/// measured against.
void BM_ReadOnlyBaseline(benchmark::State& state) {
  Session& session = ServingSession();
  for (auto _ : state) {
    auto r = session.Sql(kServeQuery);
    TDP_CHECK(r.ok()) << r.status().ToString();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadOnlyBaseline)->Threads(3)->Threads(7)->UseRealTime();

}  // namespace
}  // namespace tdp

BENCHMARK_MAIN();
