#ifndef TDP_BENCH_BENCH_UTIL_H_
#define TDP_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/timer.h"
#include "src/data/attachments.h"
#include "src/data/documents.h"
#include "src/models/clip.h"
#include "src/models/ocr.h"
#include "src/runtime/session.h"

namespace tdp {
namespace bench {

/// True when TDP_BENCH_SCALE=full — run paper-scale sweeps instead of the
/// single-core CI sizing (see EXPERIMENTS.md for both configurations).
inline bool FullScale() {
  const char* env = std::getenv("TDP_BENCH_SCALE");
  return env != nullptr && std::strcmp(env, "full") == 0;
}

inline int64_t Scaled(int64_t ci_value, int64_t full_value) {
  return FullScale() ? full_value : ci_value;
}

/// Runs `sql` and CHECK-fails on any error: benchmarks have no error
/// path, so a failing statement must abort loudly instead of skewing a
/// timing column.
inline std::shared_ptr<Table> MustSql(Session& session, const std::string& sql,
                                      const QueryOptions& options = {}) {
  auto result = session.Sql(sql, options);
  TDP_CHECK(result.ok()) << sql << "\n" << result.status().ToString();
  return std::move(result).value();
}

/// Average wall seconds per query over `workload` on `device`, after one
/// untimed warm-up execution of workload[0] (first-touch allocation,
/// device moves).
inline double AvgSecondsPerQuery(Session& session, Device device,
                                 const std::vector<std::string>& workload) {
  QueryOptions options;
  options.device = device;
  (void)session.Sql(workload[0], options);
  Timer timer;
  for (const std::string& sql : workload) MustSql(session, sql, options);
  return timer.ElapsedSeconds() / static_cast<double>(workload.size());
}

/// The multimodal model-forward setup shared by fig2_multimodal and
/// model_serving: generates the attachment corpus, registers it as table
/// "Attachments" (filename, images), and registers the
/// image_text_similarity UDF backed by one SimClip instance (returned so
/// callers can keep the model alive / inspect it).
inline std::shared_ptr<models::SimClip> SetupMultimodalCorpus(
    Session& session, int64_t photos, int64_t receipts, int64_t logos,
    Rng& rng) {
  data::AttachmentDataset corpus =
      data::MakeAttachmentDataset(photos, receipts, logos, rng);
  auto table = TableBuilder("Attachments")
                   .AddStrings("filename", corpus.filenames)
                   .AddTensor("images", corpus.images)
                   .Build();
  TDP_CHECK(table.ok()) << table.status().ToString();
  TDP_CHECK(session.RegisterTable("Attachments", table.value()).ok());
  auto clip = std::make_shared<models::SimClip>();
  TDP_CHECK(
      models::RegisterImageTextSimilarityUdf(session.functions(), clip).ok());
  return clip;
}

/// The OCR model-forward setup of fig3_ocr: registers `docs` as table
/// "Document" (timestamp, images) and the extract_table TVF backed by one
/// TableOcr instance.
inline std::shared_ptr<models::TableOcr> SetupDocumentCorpus(
    Session& session, const data::DocumentDataset& docs) {
  auto table = TableBuilder("Document")
                   .AddStrings("timestamp", docs.timestamps)
                   .AddTensor("images", docs.images)
                   .Build();
  TDP_CHECK(table.ok()) << table.status().ToString();
  TDP_CHECK(session.RegisterTable("Document", table.value()).ok());
  auto ocr = std::make_shared<models::TableOcr>();
  TDP_CHECK(models::RegisterExtractTableUdf(session.functions(), ocr).ok());
  return ocr;
}

/// (Re-)registers grid `index` of `grids` as the single-row MNIST_Grid
/// table on the accelerator — the per-iteration table swap the
/// trainable-query benchmarks perform between optimizer steps.
inline Status RegisterMnistGrid(Session& session, const Tensor& grids,
                                int64_t index) {
  auto table = TableBuilder("MNIST_Grid")
                   .AddTensor("image", Slice(grids, 0, index, 1).Contiguous())
                   .Build();
  if (!table.ok()) return table.status();
  return session.RegisterTable("MNIST_Grid", table.value(), Device::kAccel);
}

}  // namespace bench
}  // namespace tdp

#endif  // TDP_BENCH_BENCH_UTIL_H_
