#ifndef TDP_BENCH_BENCH_UTIL_H_
#define TDP_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <cstring>
#include <string>

namespace tdp {
namespace bench {

/// True when TDP_BENCH_SCALE=full — run paper-scale sweeps instead of the
/// single-core CI sizing (see EXPERIMENTS.md for both configurations).
inline bool FullScale() {
  const char* env = std::getenv("TDP_BENCH_SCALE");
  return env != nullptr && std::strcmp(env, "full") == 0;
}

inline int64_t Scaled(int64_t ci_value, int64_t full_value) {
  return FullScale() ? full_value : ci_value;
}

}  // namespace bench
}  // namespace tdp

#endif  // TDP_BENCH_BENCH_UTIL_H_
