// Reproduces Fig. 3 (left): "OCR Performance Comparison" — SQL over OCR'd
// document images.
//
//   TDP path:        filter by timestamp first, OCR only the ONE matching
//                    image inside the query (extract_table TVF).
//   Bulk + DuckDB:   OCR every image up front, load the extracted rows
//                    into BaselineDB (the DuckDB stand-in), then query.
//
// The paper reports TDP ~2 orders of magnitude faster end-to-end because
// conversion dominates; loading raw images into TDP costs about the same
// as loading extracted tables into DuckDB; DuckDB's query itself is
// millisecond-scale.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/baseline_db.h"
#include "src/common/timer.h"
#include "src/data/documents.h"
#include "src/models/ocr.h"
#include "src/runtime/session.h"

int main() {
  const int64_t kDocs = tdp::bench::Scaled(100, 100);
  tdp::Rng rng(5);
  tdp::data::DocumentDataset docs =
      tdp::data::MakeDocumentDataset(kDocs, rng);
  const std::string target = docs.timestamps[static_cast<size_t>(kDocs / 2)];

  std::printf("OCR benchmark (Fig. 3 left): %lld document images\n\n",
              static_cast<long long>(kDocs));

  // ---- TDP path ------------------------------------------------------------
  double tdp_load = 0, tdp_query = 0;
  double tdp_result_a = 0, tdp_result_b = 0;
  {
    tdp::Timer timer;
    tdp::Session session;
    auto ocr = tdp::bench::SetupDocumentCorpus(session, docs);
    tdp_load = timer.ElapsedSeconds();

    timer.Reset();
    auto result = tdp::bench::MustSql(
        session,
        "SELECT AVG(SepalLength), AVG(PetalLength) FROM extract_table("
        "SELECT images FROM Document WHERE timestamp = '" + target + "')");
    tdp_query = timer.ElapsedSeconds();
    tdp_result_a = result->column(0).data().At({0});
    tdp_result_b = result->column(1).data().At({0});
  }

  // ---- Bulk conversion + BaselineDB path ------------------------------------
  double bulk_convert = 0, bulk_load = 0, bulk_query = 0;
  double bulk_result_a = 0, bulk_result_b = 0;
  {
    tdp::models::TableOcr ocr;
    tdp::Timer timer;
    // Convert every document up front (what a non-multimodal DBMS forces).
    std::vector<tdp::Tensor> extracted;
    for (int64_t d = 0; d < kDocs; ++d) {
      auto values =
          ocr.ExtractTable(Slice(docs.images, 0, d, 1).Squeeze(0));
      TDP_CHECK(values.ok());
      extracted.push_back(std::move(values).value());
    }
    bulk_convert = timer.ElapsedSeconds();

    timer.Reset();
    tdp::baseline::BaselineDb db;
    tdp::baseline::BaselineTable bt;
    bt.column_names = {"doc_timestamp", "SepalLength", "SepalWidth",
                       "PetalLength", "PetalWidth"};
    for (int64_t d = 0; d < kDocs; ++d) {
      for (int64_t r = 0; r < tdp::data::kDocRows; ++r) {
        std::vector<tdp::baseline::Value> row;
        row.emplace_back(docs.timestamps[static_cast<size_t>(d)]);
        for (int64_t c = 0; c < tdp::data::kDocCols; ++c) {
          row.emplace_back(extracted[static_cast<size_t>(d)].At({r, c}));
        }
        bt.rows.push_back(std::move(row));
      }
    }
    TDP_CHECK(db.RegisterTable("iris_docs", std::move(bt)).ok());
    bulk_load = timer.ElapsedSeconds();

    timer.Reset();
    auto result = db.Sql(
        "SELECT AVG(SepalLength), AVG(PetalLength) FROM iris_docs WHERE "
        "doc_timestamp = '" + target + "'");
    TDP_CHECK(result.ok()) << result.status().ToString();
    bulk_query = timer.ElapsedSeconds();
    bulk_result_a = std::get<double>(result->rows[0][0]);
    bulk_result_b = std::get<double>(result->rows[0][1]);
  }

  std::printf("%-18s %14s %14s %14s %14s\n", "system", "load (s)",
              "conversion (s)", "query (s)", "total (s)");
  std::printf("%-18s %14.4f %14.4f %14.4f %14.4f\n", "TDP", tdp_load, 0.0,
              tdp_query, tdp_load + tdp_query);
  std::printf("%-18s %14.4f %14.4f %14.4f %14.4f\n", "Bulk + BaselineDB",
              bulk_load, bulk_convert, bulk_query,
              bulk_load + bulk_convert + bulk_query);
  std::printf(
      "\nend-to-end speedup: %.1fx (paper: ~2 orders of magnitude; "
      "conversion dominates)\n",
      (bulk_load + bulk_convert + bulk_query) / (tdp_load + tdp_query));
  std::printf("answers agree: TDP (%.3f, %.3f) vs baseline (%.3f, %.3f)\n",
              tdp_result_a, tdp_result_b, bulk_result_a, bulk_result_b);
  return 0;
}
