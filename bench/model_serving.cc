// Model-serving throughput: queries/sec against one Session at 1/4/8
// client threads, where every query runs a small MLP UDF over its rows.
//
//   ./model_serving --benchmark_counters_tabular=true
//
// The interesting comparisons:
//   - BM_ModelServeBatched vs BM_ModelServeUnbatched at 4 and 8 threads:
//     the batched UDF routes through the shared InferenceScheduler, so
//     concurrent clients' forwards coalesce into shared batches (one
//     [32, d] matmul instead of four [8, d] ones); the unbatched control
//     is the same weights invoked directly per query.
//   - items_per_second scaling across ->Threads(1/4/8) on the batched
//     path: aggregate QPS at 4 and 8 clients must beat the solo client
//     (the PR 7 acceptance line) — cross-query batching turns concurrency
//     into larger forwards instead of contention.
//
// Both UDFs share one set of weights, and the per-query result is
// CHECK'd bit-identical across the two paths at setup (row-local model,
// so any batch partition returns the same bytes).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/nn/layers.h"
#include "src/runtime/inference_scheduler.h"
#include "src/runtime/session.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

// Each query scores kRowsPerQuery embeddings; the scheduler may merge up
// to kBatchTarget rows (= 4 clients' worth) into one forward.
constexpr int64_t kRowsPerQuery = 8;
constexpr int64_t kDim = 128;
constexpr int64_t kHidden = 256;
constexpr int64_t kBatchTarget = 32;

constexpr const char* kBatchedQuery =
    "SELECT SUM(mlp_batched(e)) FROM embs";
constexpr const char* kUnbatchedQuery =
    "SELECT SUM(mlp_unbatched(e)) FROM embs";

/// One process-wide Session shared by all client threads, serving one
/// two-layer MLP registered twice: `mlp_batched` (batchable — eligible
/// for ModelEval streaming and cross-query coalescing) and
/// `mlp_unbatched` (the direct-call control). Built on first use.
Session& ServingSession() {
  static Session* session = [] {
    auto* s = new Session();
    Rng rng(21);
    Tensor embs = RandNormal({kRowsPerQuery, kDim}, 0, 1, rng);
    auto table = TableBuilder("embs").AddTensor("e", embs).Build();
    TDP_CHECK(table.ok()) << table.status().ToString();
    TDP_CHECK(s->RegisterTable("embs", table.value()).ok());

    auto l1 = std::make_shared<nn::Linear>(kDim, kHidden, rng);
    auto l2 = std::make_shared<nn::Linear>(kHidden, 1, rng);
    const auto register_mlp = [&](const std::string& name, bool batchable) {
      udf::ScalarFunction fn;
      fn.name = name;
      fn.return_type = udf::DeclaredType::kFloat;
      fn.batchable = batchable;
      fn.preferred_batch_rows = kBatchTarget;
      fn.modules = {l1, l2};
      // Row-local: out[i] = l2(l1(e[i])) — two matmuls whose per-row
      // reductions never cross rows, so any batch partition is
      // bit-identical.
      fn.fn = [l1, l2](const std::vector<udf::Argument>& args, int64_t,
                       Device) -> StatusOr<Column> {
        const Tensor x = args[0].column.DecodeValues();
        return Column::Plain(
            Squeeze(l2->Forward(l1->Forward(x)), 1).Contiguous());
      };
      TDP_CHECK(s->functions().RegisterScalar(std::move(fn)).ok());
    };
    register_mlp("mlp_batched", /*batchable=*/true);
    register_mlp("mlp_unbatched", /*batchable=*/false);

    // Exactness gate: the two paths must return the same bytes.
    auto batched = bench::MustSql(*s, kBatchedQuery);
    auto unbatched = bench::MustSql(*s, kUnbatchedQuery);
    TDP_CHECK(batched->column(0).data().At({0}) ==
              unbatched->column(0).data().At({0}))
        << "batched and unbatched model paths disagree";
    return s;
  }();
  return *session;
}

/// Batchable path: concurrent clients' micro-batches coalesce in the
/// shared InferenceScheduler into larger forwards.
void BM_ModelServeBatched(benchmark::State& state) {
  Session& session = ServingSession();
  for (auto _ : state) {
    auto result = session.Sql(kBatchedQuery);
    TDP_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    // Process-cumulative coalescing evidence (includes warm-up): how many
    // scheduler calls were served by a shared forward.
    const auto stats = runtime::InferenceScheduler::Global().stats();
    state.counters["global_coalesced_share"] =
        stats.calls > 0 ? static_cast<double>(stats.coalesced_requests) /
                              static_cast<double>(stats.calls)
                        : 0.0;
  }
}
BENCHMARK(BM_ModelServeBatched)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// Direct-call control: same weights, same query shape, no coalescing —
/// every client pays its own forward.
void BM_ModelServeUnbatched(benchmark::State& state) {
  Session& session = ServingSession();
  for (auto _ : state) {
    auto result = session.Sql(kUnbatchedQuery);
    TDP_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelServeUnbatched)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace tdp

BENCHMARK_MAIN();
