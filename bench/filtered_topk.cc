// Filtered vector search: predicated top-k latency across the selectivity
// spectrum, indexed (FilteredIndexTopK, cost-rule strategy, a partial
// probe budget) vs the exact Filter + Sort + Limit plan.
//
//   ./filtered_topk --benchmark_counters_tabular=true
//
// The table holds 4096 accel-resident rows (d=128) with a dictionary TEXT
// column `tag` of cardinality C; `WHERE tag = 'g1'` keeps ~1/C of the
// rows, and the optimizer's dictionary-aware estimate sees exactly that,
// so the benchmark arg IS the cost-rule input:
//   C=100 -> selectivity 0.01, ~41 survivors < 2k  -> strategy=brute
//   C=10  -> selectivity 0.1                       -> strategy=pre_filter
//   C=2   -> selectivity 0.5                       -> strategy=post_filter
//
// Indexed runs probe 4 of 16 cells — the recall/latency dial this index
// exists for; the probe budget is a floor, so the result still never
// shrinks below min(k, survivors) (exactness itself is pinned by the
// differential suite at full budgets). The headline: at selectivity ~0.1
// the pre-filter path scores only the handful of surviving candidates in
// the probed cells instead of every survivor, and must hold a clear win
// over the brute plan; at 0.01 the cost rule itself picks brute, so the
// indexed session's number converges to the brute plan's rather than
// losing to it.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/index/ivf_index.h"
#include "src/runtime/session.h"
#include "tests/vector_test_util.h"

namespace tdp {
namespace {

using exec::ScalarValue;

constexpr int64_t kRows = 4096;
constexpr int64_t kDim = 128;
constexpr int64_t kTopK = 50;
constexpr int64_t kNumLists = 16;
constexpr int64_t kProbes = 4;

std::string Sql() {
  return "SELECT id, dot(emb, ?) AS sim FROM vecs WHERE tag = 'g1' "
         "ORDER BY sim DESC LIMIT " + std::to_string(kTopK);
}

// One session per (cardinality, indexed) point, built once and shared
// across benchmark repetitions: setup (k-means build, table ingest) must
// not pollute the timed region. The table lives on the accel device —
// serving against device-resident data is the configuration the paper's
// serving path assumes.
Session& GetSession(int64_t cardinality, bool indexed) {
  static std::vector<std::unique_ptr<Session>> sessions;
  static std::vector<std::pair<int64_t, bool>> keys;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] == std::make_pair(cardinality, indexed)) {
      return *sessions[i];
    }
  }
  Rng rng(17);
  std::vector<int64_t> ids(static_cast<size_t>(kRows));
  std::vector<std::string> tags(static_cast<size_t>(kRows));
  for (int64_t i = 0; i < kRows; ++i) {
    ids[static_cast<size_t>(i)] = i;
    tags[static_cast<size_t>(i)] = "g" + std::to_string(i % cardinality);
  }
  auto table = TableBuilder("vecs")
                   .AddInt64("id", ids)
                   .AddStrings("tag", tags)
                   .AddTensor("emb", testutil::MakeClusteredUnitVectors(
                                         kRows, kDim, kNumLists, rng))
                   .Build();
  TDP_CHECK(table.ok()) << table.status().ToString();
  auto session = std::make_unique<Session>();
  TDP_CHECK(
      session->RegisterTable("vecs", table.value(), Device::kAccel).ok());
  if (indexed) {
    index::IvfIndex::Options options;
    options.num_lists = kNumLists;
    TDP_CHECK(session->CreateVectorIndex("vecs", "emb", options).ok());
  }
  keys.emplace_back(cardinality, indexed);
  sessions.push_back(std::move(session));
  return *sessions.back();
}

void RunFilteredTopK(benchmark::State& state, bool indexed) {
  const int64_t cardinality = state.range(0);
  Session& session = GetSession(cardinality, indexed);
  auto prepared = session.Prepare(Sql());
  TDP_CHECK(prepared.ok()) << prepared.status().ToString();

  // A few query vectors round-robined so the index probe order varies.
  Rng rng(29);
  std::vector<ScalarValue> queries;
  for (int i = 0; i < 8; ++i) {
    queries.push_back(
        ScalarValue::FromTensor(testutil::MakeUnitQuery(kDim, rng)));
  }

  size_t at = 0;
  for (auto _ : state) {
    exec::RunOptions run;
    run.params = {queries[at++ % queries.size()]};
    if (indexed) run.vector_search.num_probes = kProbes;
    auto result = (*prepared)->Run(run);
    TDP_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["selectivity"] = 1.0 / static_cast<double>(cardinality);
  if (indexed) {
    // Surface the cost rule's choice in the report.
    auto plan = session.Explain(Sql());
    TDP_CHECK(plan.ok());
    const size_t pos = plan->find("strategy=");
    state.SetLabel(pos == std::string::npos
                       ? "no FilteredIndexTopK"
                       : plan->substr(pos, plan->find(',', pos) - pos));
  }
}

void BM_FilteredTopKBrute(benchmark::State& state) {
  RunFilteredTopK(state, /*indexed=*/false);
}

void BM_FilteredTopKIndexed(benchmark::State& state) {
  RunFilteredTopK(state, /*indexed=*/true);
}

BENCHMARK(BM_FilteredTopKBrute)->Arg(100)->Arg(10)->Arg(2);
BENCHMARK(BM_FilteredTopKIndexed)->Arg(100)->Arg(10)->Arg(2);

}  // namespace
}  // namespace tdp

BENCHMARK_MAIN();
