// Reproduces Fig. 2 (right): average execution time of a mixed multimodal
// query workload (filter / aggregate / top-k similarity search via the
// image_text_similarity UDF) over an image corpus, on both kernel
// backends. The paper measures CPU vs V100 GPU and reports the GPU ~5x
// faster; here Device::kCpu is the reference backend and Device::kAccel
// the optimized backend (see DESIGN.md §4 for the substitution argument).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/runtime/session.h"

namespace {

using tdp::Device;

}  // namespace

int main() {
  const int64_t kPhotos = tdp::bench::Scaled(100, 500);
  const int64_t kReceipts = tdp::bench::Scaled(50, 250);
  const int64_t kLogos = tdp::bench::Scaled(50, 250);
  const int kQueries = static_cast<int>(tdp::bench::Scaled(30, 30));

  tdp::Rng rng(11);
  tdp::Session session;
  auto clip = tdp::bench::SetupMultimodalCorpus(session, kPhotos, kReceipts,
                                                kLogos, rng);

  // The paper's three query shapes (Fig. 2 middle), cycled with different
  // concepts to build a 30-query workload.
  const std::vector<std::string> concepts = {"receipt", "dog", "logo",
                                             "beach", "cat"};
  std::vector<std::string> workload;
  for (int q = 0; q < kQueries; ++q) {
    const std::string& concept_name = concepts[q % concepts.size()];
    switch (q % 3) {
      case 0:
        workload.push_back(
            "SELECT filename FROM Attachments WHERE "
            "image_text_similarity('" + concept_name + "', images) > 0.80");
        break;
      case 1:
        workload.push_back(
            "SELECT COUNT(*) FROM Attachments WHERE "
            "image_text_similarity('" + concept_name + "', images) > 0.80");
        break;
      default:
        workload.push_back(
            "SELECT filename, image_text_similarity('" + concept_name +
            "', images) AS score FROM Attachments ORDER BY score DESC "
            "LIMIT 2");
        break;
    }
  }

  std::printf("Multimodal workload benchmark (Fig. 2 right)\n");
  std::printf("corpus: %lld images, %d queries\n\n",
              static_cast<long long>(kPhotos + kReceipts + kLogos),
              kQueries);

  const double accel =
      tdp::bench::AvgSecondsPerQuery(session, Device::kAccel, workload);
  const double cpu =
      tdp::bench::AvgSecondsPerQuery(session, Device::kCpu, workload);

  std::printf("%-22s %18s\n", "backend", "avg time per query");
  std::printf("%-22s %15.3f s\n", "accel (GPU role)", accel);
  std::printf("%-22s %15.3f s\n", "cpu (reference)", cpu);
  std::printf("\nspeedup: %.1fx (paper reports ~5x GPU over CPU)\n",
              cpu / accel);

  // Sanity: the semantic results must match across backends.
  tdp::QueryOptions a, c;
  a.device = Device::kAccel;
  c.device = Device::kCpu;
  auto ra = tdp::bench::MustSql(session, workload[1], a);
  auto rc = tdp::bench::MustSql(session, workload[1], c);
  std::printf("cross-backend COUNT agreement: %.0f vs %.0f\n",
              ra->column(0).data().At({0}), rc->column(0).data().At({0}));
  (void)clip;
  return 0;
}
