// Query-operator microbenchmarks (google-benchmark): end-to-end timing of
// compiled relational operators on both kernel backends, plus the soft
// (differentiable) group-by against its exact counterpart — the ablation
// for the TRAINABLE compilation mode's overhead.

#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/exec/soft_ops.h"
#include "src/runtime/session.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

std::shared_ptr<Table> MakeTable(int64_t rows, Rng& rng) {
  std::vector<int64_t> keys;
  std::vector<double> values;
  std::vector<std::string> tags;
  const std::vector<std::string> vocab = {"alpha", "beta", "gamma", "delta"};
  for (int64_t i = 0; i < rows; ++i) {
    keys.push_back(rng.UniformInt(0, 63));
    values.push_back(rng.Uniform(-100, 100));
    tags.push_back(vocab[static_cast<size_t>(rng.UniformInt(0, 3))]);
  }
  return TableBuilder("t")
      .AddInt64("k", keys)
      .AddFloat64("v", values)
      .AddStrings("tag", tags)
      .Build()
      .value();
}

Device ArgDevice(const benchmark::State& state) {
  return state.range(0) == 0 ? Device::kCpu : Device::kAccel;
}

class QueryBench {
 public:
  explicit QueryBench(int64_t rows) {
    Rng rng(17);
    TDP_CHECK(session.RegisterTable("t", MakeTable(rows, rng)).ok());
  }
  Session session;
};

void BM_FilterQuery(benchmark::State& state) {
  QueryBench bench(1 << 14);
  QueryOptions options;
  options.device = ArgDevice(state);
  auto query =
      bench.session.Query("SELECT k, v FROM t WHERE v > 0 AND k < 32",
                          options);
  TDP_CHECK(query.ok());
  for (auto _ : state) {
    auto result = (*query)->RunChunk();
    TDP_CHECK(result.ok());
    benchmark::DoNotOptimize(result->num_rows());
  }
}
BENCHMARK(BM_FilterQuery)->Arg(0)->Arg(1);

void BM_GroupByQuery(benchmark::State& state) {
  QueryBench bench(1 << 14);
  QueryOptions options;
  options.device = ArgDevice(state);
  auto query = bench.session.Query(
      "SELECT k, COUNT(*), SUM(v), AVG(v) FROM t GROUP BY k", options);
  TDP_CHECK(query.ok());
  for (auto _ : state) {
    auto result = (*query)->RunChunk();
    TDP_CHECK(result.ok());
    benchmark::DoNotOptimize(result->num_rows());
  }
}
BENCHMARK(BM_GroupByQuery)->Arg(0)->Arg(1);

void BM_TopKQuery(benchmark::State& state) {
  QueryBench bench(1 << 14);
  QueryOptions options;
  options.device = ArgDevice(state);
  auto query = bench.session.Query(
      "SELECT k, v FROM t ORDER BY v DESC LIMIT 10", options);
  TDP_CHECK(query.ok());
  for (auto _ : state) {
    auto result = (*query)->RunChunk();
    TDP_CHECK(result.ok());
    benchmark::DoNotOptimize(result->num_rows());
  }
}
BENCHMARK(BM_TopKQuery)->Arg(0)->Arg(1);

void BM_JoinQuery(benchmark::State& state) {
  QueryBench bench(1 << 12);
  Rng rng(23);
  TDP_CHECK(
      bench.session.RegisterTable("u", MakeTable(1 << 10, rng)).ok());
  QueryOptions options;
  options.device = ArgDevice(state);
  auto query = bench.session.Query(
      "SELECT t.k, u.v FROM t JOIN u ON t.k = u.k WHERE u.v > 50", options);
  TDP_CHECK(query.ok());
  for (auto _ : state) {
    auto result = (*query)->RunChunk();
    TDP_CHECK(result.ok());
    benchmark::DoNotOptimize(result->num_rows());
  }
}
BENCHMARK(BM_JoinQuery)->Arg(0)->Arg(1);

// Whole-query thread scaling: the morsel-parallel operator loop at 1 vs N
// threads over a larger table (results are identical across thread counts).
void BM_GroupByQueryThreads(benchmark::State& state) {
  ScopedNumThreads guard(static_cast<int>(state.range(0)));
  QueryBench bench(1 << 17);
  QueryOptions options;
  options.device = Device::kAccel;
  auto query = bench.session.Query(
      "SELECT k, COUNT(*), SUM(v), AVG(v) FROM t GROUP BY k", options);
  TDP_CHECK(query.ok());
  for (auto _ : state) {
    auto result = (*query)->RunChunk();
    TDP_CHECK(result.ok());
    benchmark::DoNotOptimize(result->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 17));
}
BENCHMARK(BM_GroupByQueryThreads)->Arg(1)->Arg(2)->Arg(4);

// Streaming (morsel-driven pipelines) vs legacy (whole-relation
// materializing) executor on a filter-heavy query: the streaming path
// skips the full intermediate materialization between scan/filter/project.
void BM_ExecutorFilterProject(benchmark::State& state) {
  QueryBench bench(1 << 17);
  QueryOptions options;
  options.device = Device::kAccel;
  exec::RunOptions run;
  run.exec.streaming = state.range(0) == 1;
  auto query = bench.session.Query(
      "SELECT k + 1, v * 2 FROM t WHERE v > 0 AND k < 32", options);
  TDP_CHECK(query.ok());
  for (auto _ : state) {
    auto result = (*query)->RunChunk(run);
    TDP_CHECK(result.ok());
    benchmark::DoNotOptimize(result->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 17));
}
BENCHMARK(BM_ExecutorFilterProject)->Arg(0)->Arg(1);

// Streaming vs legacy on a group-by: per-morsel aggregate-input evaluation
// merged at the breaker vs whole-relation evaluation.
void BM_ExecutorGroupBy(benchmark::State& state) {
  QueryBench bench(1 << 17);
  QueryOptions options;
  options.device = Device::kAccel;
  exec::RunOptions run;
  run.exec.streaming = state.range(0) == 1;
  auto query = bench.session.Query(
      "SELECT k, COUNT(*), SUM(v) FROM t WHERE v > -50 GROUP BY k", options);
  TDP_CHECK(query.ok());
  for (auto _ : state) {
    auto result = (*query)->RunChunk(run);
    TDP_CHECK(result.ok());
    benchmark::DoNotOptimize(result->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 17));
}
BENCHMARK(BM_ExecutorGroupBy)->Arg(0)->Arg(1);

// Morsel-size sweep at a fixed thread count: the scheduling-granularity
// knob (results are identical at every size; only throughput moves).
void BM_MorselRows(benchmark::State& state) {
  QueryBench bench(1 << 17);
  QueryOptions options;
  options.device = Device::kAccel;
  exec::RunOptions run;
  run.exec.morsel_rows = state.range(0);
  auto query = bench.session.Query(
      "SELECT k, v FROM t WHERE v > 0", options);
  TDP_CHECK(query.ok());
  for (auto _ : state) {
    auto result = (*query)->RunChunk(run);
    TDP_CHECK(result.ok());
    benchmark::DoNotOptimize(result->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 17));
}
BENCHMARK(BM_MorselRows)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 16)->Arg(1 << 20);

// Soft vs exact group-by/count: the price of differentiability.
void BM_SoftVsExactGroupBy(benchmark::State& state) {
  const bool soft = state.range(0) == 1;
  Rng rng(29);
  const int64_t rows = 1 << 12;
  Tensor logits_a = RandNormal({rows, 10}, 0, 1, rng);
  Tensor logits_b = RandNormal({rows, 2}, 0, 1, rng);
  Column pe_a = Column::Probability(Softmax(logits_a, 1),
                                    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  Column pe_b = Column::Probability(Softmax(logits_b, 1), {0, 1});
  Column hard_a = Column::Plain(pe_a.DecodeValues());
  Column hard_b = Column::Plain(pe_b.DecodeValues());

  for (auto _ : state) {
    if (soft) {
      auto result = exec::SoftGroupByCount({pe_a, pe_b});
      TDP_CHECK(result.ok());
      benchmark::DoNotOptimize(result->counts.impl().get());
    } else {
      // Exact path: codes + unique + counts.
      UniqueResult ua = Unique(hard_a.data());
      UniqueResult ub = Unique(hard_b.data());
      Tensor combined =
          Add(MulScalar(ua.inverse,
                        static_cast<double>(ub.values.numel())),
              ub.inverse);
      UniqueResult groups = Unique(combined);
      benchmark::DoNotOptimize(groups.counts.impl().get());
    }
  }
}
BENCHMARK(BM_SoftVsExactGroupBy)->Arg(0)->Arg(1);

}  // namespace
}  // namespace tdp

BENCHMARK_MAIN();
