// Multi-client serving throughput: queries/sec against one Session at
// 1/4/8 client threads, cold (fresh compile per call) vs. cached
// (plan-cache hit) vs. prepared (`?` parameter binding, zero re-compiles).
//
//   ./serve_concurrent --benchmark_counters_tabular=true
//
// The interesting comparisons:
//   - BM_ColdCompileSql vs BM_CachedSql at equal thread count: the win
//     from skipping lex/parse/bind/optimize on repeat statements
//     (acceptance: cached >= 5x cold on the repeated point query).
//   - items_per_second scaling across ->Threads(1/4/8): aggregate QPS
//     must grow with client threads (catalog snapshots + shared plans
//     mean clients contend only on a pointer copy and a cache splice).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/runtime/session.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

using exec::ScalarValue;

constexpr const char* kPointQuery =
    "SELECT amount, qty FROM sales WHERE id = 123";
constexpr const char* kAggQuery =
    "SELECT region, COUNT(*), SUM(amount) FROM sales GROUP BY region";

int64_t NumRows() { return bench::Scaled(256, 1 << 20); }

/// Multi-get point lookup (`WHERE id IN (48 keys)`) — the classic serving
/// pattern where the statement, not the data, dominates compilation: the
/// parser desugars the IN list into a 48-way disjunction that cold
/// compilation re-lexes, re-binds and re-optimizes on every call.
std::string MultiGetQuery() {
  std::string sql = "SELECT amount, qty FROM sales WHERE id IN (";
  for (int i = 0; i < 48; ++i) {
    if (i > 0) sql += ",";
    sql += std::to_string((i * 7) % NumRows());
  }
  sql += ")";
  return sql;
}

/// One process-wide Session shared by all client threads (that is the
/// scenario under test). Built on first use.
Session& SharedSession() {
  static Session* session = [] {
    auto* s = new Session();
    const int64_t n = NumRows();
    std::vector<int64_t> ids;
    std::vector<float> amounts;
    std::vector<int64_t> qty;
    std::vector<std::string> regions;
    const char* kRegions[] = {"east", "west", "north", "south"};
    ids.reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      ids.push_back(i);
      amounts.push_back(static_cast<float>((i * 7) % 1000));
      qty.push_back(i % 13);
      regions.push_back(kRegions[i % 4]);
    }
    auto table = TableBuilder("sales")
                     .AddInt64("id", ids)
                     .AddFloat32("amount", amounts)
                     .AddInt64("qty", qty)
                     .AddStrings("region", regions)
                     .Build();
    TDP_CHECK(table.ok()) << table.status().ToString();
    TDP_CHECK(s->RegisterTable("sales", table.value()).ok());
    return s;
  }();
  return *session;
}

/// Cold path: what every Session::Sql call paid before the plan cache —
/// lex + parse + bind + optimize + execute, per call.
void BM_ColdCompileSql(benchmark::State& state) {
  Session& session = SharedSession();
  for (auto _ : state) {
    auto query = session.Query(kPointQuery);
    TDP_CHECK(query.ok()) << query.status().ToString();
    auto result = (*query)->Run();
    TDP_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColdCompileSql)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// Cached path: repeat Session::Sql hits the plan cache.
void BM_CachedSql(benchmark::State& state) {
  Session& session = SharedSession();
  for (auto _ : state) {
    auto result = session.Sql(kPointQuery);
    TDP_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachedSql)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

/// Prepared path: one shared CompiledQuery, per-call `?` bindings.
void BM_PreparedPointQuery(benchmark::State& state) {
  Session& session = SharedSession();
  static std::shared_ptr<exec::CompiledQuery> prepared;
  static std::once_flag once;
  std::call_once(once, [&] {
    auto q = session.Prepare("SELECT amount, qty FROM sales WHERE id = ?");
    TDP_CHECK(q.ok()) << q.status().ToString();
    prepared = q.value();
  });
  int64_t id = state.thread_index() * 37;
  for (auto _ : state) {
    id = (id + 1) % NumRows();
    auto result = prepared->Run({ScalarValue::Int(id)});
    TDP_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PreparedPointQuery)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// Cold vs cached on the multi-get statement: this is where the plan
/// cache pays hardest (acceptance target: cached >= 5x cold).
void BM_ColdCompileMultiGet(benchmark::State& state) {
  Session& session = SharedSession();
  const std::string sql = MultiGetQuery();
  for (auto _ : state) {
    auto query = session.Query(sql);
    TDP_CHECK(query.ok()) << query.status().ToString();
    auto result = (*query)->Run();
    TDP_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColdCompileMultiGet)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_CachedMultiGet(benchmark::State& state) {
  Session& session = SharedSession();
  const std::string sql = MultiGetQuery();
  for (auto _ : state) {
    auto result = session.Sql(sql);
    TDP_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachedMultiGet)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// ---- Cursor-native serving (PR 4) ------------------------------------------
//
// The scenarios behind the streaming API's acceptance criteria, all over
// the same large scan+filter statement sliced into ~64 chunks:
//   - BM_CursorFirstChunk vs BM_CursorFullDrain: time-to-first-chunk must
//     sit measurably below full-drain latency (the first chunk costs one
//     wave of morsels, not the whole relation);
//   - BM_CursorEarlyClose: a client that abandons after two chunks (LIMIT
//     satisfied downstream / disconnect) — the chunks_produced counter
//     shows production stopping at ~queue-capacity chunks, not ~64.

constexpr const char* kScanFilterQuery =
    "SELECT ev, score FROM events WHERE score > 0.0";

int64_t EventRows() { return bench::Scaled(1 << 16, 1 << 22); }

/// Morsel size yielding ~64 chunks on the events scan at either scale.
int64_t EventMorselRows() { return EventRows() / 64; }

/// Lazily registers the larger cursor-bench table on the shared session.
void EnsureEventsTable() {
  static std::once_flag once;
  std::call_once(once, [] {
    const int64_t n = EventRows();
    std::vector<int64_t> ev;
    std::vector<float> scores;
    ev.reserve(n);
    scores.reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      ev.push_back(i);
      scores.push_back(static_cast<float>((i % 997) - 498) / 499.0f);
    }
    auto table = TableBuilder("events")
                     .AddInt64("ev", ev)
                     .AddFloat32("score", scores)
                     .Build();
    TDP_CHECK(table.ok()) << table.status().ToString();
    TDP_CHECK(SharedSession().RegisterTable("events", table.value()).ok());
  });
}

/// Drains `count` chunks (all of them when count < 0); returns how many
/// chunks the producer pushed by the time the cursor is closed.
int64_t ConsumeChunks(Session& session, int64_t count) {
  exec::RunOptions run;
  run.exec.morsel_rows = EventMorselRows();
  auto cursor = session.Execute(kScanFilterQuery, {}, std::move(run));
  TDP_CHECK(cursor.ok()) << cursor.status().ToString();
  int64_t seen = 0;
  while (count < 0 || seen < count) {
    auto chunk = (*cursor)->Next();
    TDP_CHECK(chunk.ok()) << chunk.status().ToString();
    if (!chunk->has_value()) break;
    benchmark::DoNotOptimize((**chunk).num_rows());
    ++seen;
  }
  (*cursor)->Close();
  return (*cursor)->chunks_produced();
}

/// Time-to-first-chunk: open a streaming cursor, consume ONE chunk, close.
/// Compare against BM_CursorFullDrain — the gap is the win for clients
/// that act on early rows (paginated UIs, top-k consumers, disconnects).
void BM_CursorFirstChunk(benchmark::State& state) {
  Session& session = SharedSession();
  EnsureEventsTable();
  int64_t produced = 0;
  for (auto _ : state) {
    produced += ConsumeChunks(session, 1);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["chunks_produced"] = benchmark::Counter(
      static_cast<double>(produced), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CursorFirstChunk)->Threads(1)->Threads(4)->UseRealTime();

/// Full drain through the cursor: the denominator for time-to-first-chunk.
void BM_CursorFullDrain(benchmark::State& state) {
  Session& session = SharedSession();
  EnsureEventsTable();
  int64_t produced = 0;
  for (auto _ : state) {
    produced += ConsumeChunks(session, -1);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["chunks_produced"] = benchmark::Counter(
      static_cast<double>(produced), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CursorFullDrain)->Threads(1)->Threads(4)->UseRealTime();

/// LIMIT-abandon: the client stops after two chunks. Backpressure +
/// cooperative cancellation keep chunks_produced at ~(consumed + queue
/// capacity + one wave) — the rows never read are never produced.
void BM_CursorEarlyClose(benchmark::State& state) {
  Session& session = SharedSession();
  EnsureEventsTable();
  int64_t produced = 0;
  for (auto _ : state) {
    produced += ConsumeChunks(session, 2);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["chunks_produced"] = benchmark::Counter(
      static_cast<double>(produced), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CursorEarlyClose)->Threads(1)->Threads(4)->UseRealTime();

// ---- Index-accelerated top-k serving (PR 5) --------------------------------
//
// The same top-k similarity statement served two ways from two sessions
// over identical data: BM_SqlTopKBrute compiles to the exact Sort+Limit
// plan (no index registered), BM_SqlTopKIndex to the IndexTopK operator
// with a per-run probe budget. The acceptance comparison is index vs
// brute at equal thread count; the probe arg (1/4/16 of 64 lists) sweeps
// the scan-fraction knob — recall stays measured by the differential
// suite, this measures time only.

int64_t VecRows() { return bench::Scaled(4096, 1 << 17); }
constexpr int64_t kVecDim = 32;
constexpr int64_t kVecLists = 64;
constexpr const char* kTopKQuery =
    "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC LIMIT 10";

/// Deterministic clustered unit embeddings (cheap to build at bench scale).
std::shared_ptr<Table> MakeVecTable() {
  const int64_t n = VecRows();
  Rng rng(99);
  Tensor centers = L2Normalize(RandNormal({kVecLists, kVecDim}, 0, 1, rng),
                               1);
  Tensor emb = Tensor::Zeros({n, kVecDim});
  std::vector<int64_t> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    ids[static_cast<size_t>(i)] = i;
    const int64_t c = i % kVecLists;
    for (int64_t d = 0; d < kVecDim; ++d) {
      emb.SetAt({i, d}, centers.At({c, d}) +
                            0.05 * (static_cast<double>((i * 31 + d) % 17) /
                                        17.0 -
                                    0.5));
    }
  }
  auto table =
      TableBuilder("vecs").AddInt64("id", ids).AddTensor("emb", emb).Build();
  TDP_CHECK(table.ok()) << table.status().ToString();
  return table.value();
}

Tensor TopKQueryVec(int64_t salt) {
  Rng rng(7000 + static_cast<uint64_t>(salt));
  return L2Normalize(RandNormal({1, kVecDim}, 0, 1, rng), 1).Squeeze(0)
      .Contiguous();
}

/// Session WITHOUT an index: the statement compiles to Sort+Limit.
Session& BruteTopKSession() {
  static Session* session = [] {
    auto* s = new Session();
    TDP_CHECK(s->RegisterTable("vecs", MakeVecTable()).ok());
    return s;
  }();
  return *session;
}

/// Session WITH a 64-list IVF index: the statement compiles to IndexTopK.
Session& IndexTopKSession() {
  static Session* session = [] {
    auto* s = new Session();
    TDP_CHECK(s->RegisterTable("vecs", MakeVecTable()).ok());
    index::IvfIndex::Options options;
    options.num_lists = kVecLists;
    TDP_CHECK(s->CreateVectorIndex("vecs", "emb", options).ok());
    return s;
  }();
  return *session;
}

void BM_SqlTopKBrute(benchmark::State& state) {
  Session& session = BruteTopKSession();
  auto query = session.Prepare(kTopKQuery);
  TDP_CHECK(query.ok()) << query.status().ToString();
  const Tensor qvec = TopKQueryVec(state.thread_index());
  int64_t rows = 0;
  for (auto _ : state) {
    exec::RunOptions run;
    run.params = {ScalarValue::FromTensor(qvec)};
    auto result = (*query)->Run(run);
    TDP_CHECK(result.ok()) << result.status().ToString();
    rows += (*result)->num_rows();
  }
  benchmark::DoNotOptimize(rows);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlTopKBrute)->Threads(1)->Threads(4)->UseRealTime();

void BM_SqlTopKIndex(benchmark::State& state) {
  Session& session = IndexTopKSession();
  auto query = session.Prepare(kTopKQuery);
  TDP_CHECK(query.ok()) << query.status().ToString();
  const Tensor qvec = TopKQueryVec(state.thread_index());
  const int64_t probes = state.range(0);
  int64_t rows = 0;
  for (auto _ : state) {
    exec::RunOptions run;
    run.params = {ScalarValue::FromTensor(qvec)};
    run.vector_search.num_probes = probes;
    auto result = (*query)->Run(run);
    TDP_CHECK(result.ok()) << result.status().ToString();
    rows += (*result)->num_rows();
  }
  benchmark::DoNotOptimize(rows);
  state.SetItemsProcessed(state.iterations());
  state.counters["probes"] = benchmark::Counter(
      static_cast<double>(probes), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_SqlTopKIndex)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Threads(1)
    ->UseRealTime();
BENCHMARK(BM_SqlTopKIndex)->Arg(4)->Threads(4)->UseRealTime();

// ---- Request latency percentiles (PR 9) ------------------------------------
//
// Serving SLOs are percentile, not mean, targets: the throughput columns
// above hide a p99 that queueing or a stop-the-world breaker can blow up
// without moving items_per_second much. These benchmarks time every
// individual request and report p50_ms/p99_ms counters, which ride into
// the benchmark-gate trajectory JSON and are gated lower-is-better by
// tools/bench_compare.py (kAvgThreads: each thread reports its own
// distribution; the counter is the across-thread average).

/// Per-request latency distribution of the cached point-query path.
void BM_CachedSqlLatency(benchmark::State& state) {
  Session& session = SharedSession();
  std::vector<int64_t> latencies_us;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto result = session.Sql(kPointQuery);
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    TDP_CHECK(result.ok()) << result.status().ToString();
    latencies_us.push_back(elapsed.count());
  }
  state.SetItemsProcessed(state.iterations());
  std::sort(latencies_us.begin(), latencies_us.end());
  auto pct_ms = [&](double p) {
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(latencies_us.size() - 1) + 0.5);
    return static_cast<double>(latencies_us[idx]) / 1000.0;
  };
  state.counters["p50_ms"] =
      benchmark::Counter(pct_ms(0.50), benchmark::Counter::kAvgThreads);
  state.counters["p99_ms"] =
      benchmark::Counter(pct_ms(0.99), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_CachedSqlLatency)->Threads(1)->Threads(8)->UseRealTime();

/// The same distribution for the aggregate statement — a breaker-bearing
/// plan, so this is the one a regressed sort/aggregate kernel moves.
void BM_CachedAggregateLatency(benchmark::State& state) {
  Session& session = SharedSession();
  std::vector<int64_t> latencies_us;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto result = session.Sql(kAggQuery);
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    TDP_CHECK(result.ok()) << result.status().ToString();
    latencies_us.push_back(elapsed.count());
  }
  state.SetItemsProcessed(state.iterations());
  std::sort(latencies_us.begin(), latencies_us.end());
  auto pct_ms = [&](double p) {
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(latencies_us.size() - 1) + 0.5);
    return static_cast<double>(latencies_us[idx]) / 1000.0;
  };
  state.counters["p50_ms"] =
      benchmark::Counter(pct_ms(0.50), benchmark::Counter::kAvgThreads);
  state.counters["p99_ms"] =
      benchmark::Counter(pct_ms(0.99), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_CachedAggregateLatency)->Threads(1)->Threads(8)->UseRealTime();

/// Heavier per-query work: grouped aggregation, cached plan. Shows how
/// aggregate QPS scales when execution (not compilation) dominates.
void BM_CachedAggregate(benchmark::State& state) {
  Session& session = SharedSession();
  for (auto _ : state) {
    auto result = session.Sql(kAggQuery);
    TDP_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachedAggregate)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace tdp

BENCHMARK_MAIN();
