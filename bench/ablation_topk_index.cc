// Ablation for the paper's stated future work (§5.1): approximate
// indexing for top-k similarity queries. Compares brute-force top-k
// (what the ORDER BY ... LIMIT k plan does) against an IVF index at
// several probe counts, reporting time and recall@k on SimCLIP
// embeddings of the attachment corpus — first at the raw IvfIndex API,
// then end to end through the SQL serving path (Session +
// CreateVectorIndex + `ORDER BY dot(emb, ?) DESC LIMIT k` with
// RunOptions::vector_search.num_probes sweeping the budget).

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "src/common/timer.h"
#include "src/data/attachments.h"
#include "src/index/ivf_index.h"
#include "src/models/clip.h"
#include "src/runtime/session.h"
#include "src/tensor/ops.h"

int main() {
  const int64_t kImages = tdp::bench::Scaled(600, 4000);
  const int64_t kTopK = 10;
  const int kQueries = 20;

  tdp::Rng rng(3);
  tdp::data::AttachmentDataset corpus = tdp::data::MakeAttachmentDataset(
      kImages / 2, kImages / 4, kImages - kImages / 2 - kImages / 4, rng);
  tdp::models::SimClip clip;
  const tdp::Tensor embeddings =
      clip.EncodeImages(corpus.images.To(tdp::Device::kAccel));

  tdp::index::IvfIndex::Options options;
  options.num_lists = 16;
  tdp::Rng build_rng(7);
  auto built = tdp::index::IvfIndex::Build(embeddings, options, build_rng);
  TDP_CHECK(built.ok()) << built.status().ToString();

  // Query embeddings: the text prototypes.
  std::vector<tdp::Tensor> queries;
  const std::vector<std::string> texts = {"dog", "cat", "beach", "receipt",
                                          "logo"};
  for (int q = 0; q < kQueries; ++q) {
    auto e = clip.EncodeText(texts[static_cast<size_t>(q) % texts.size()]);
    TDP_CHECK(e.ok());
    queries.push_back(std::move(e).value().To(tdp::Device::kAccel));
  }

  // Brute force reference (timing + ground truth).
  std::vector<std::set<int64_t>> exact(queries.size());
  tdp::Timer timer;
  for (size_t q = 0; q < queries.size(); ++q) {
    const tdp::Tensor scores = Squeeze(
        MatMul(embeddings, Reshape(queries[q], {queries[q].numel(), 1})), 1);
    const tdp::Tensor order = ArgSort(scores, /*descending=*/true);
    for (int64_t i = 0; i < kTopK; ++i) {
      exact[q].insert(static_cast<int64_t>(order.At({i})));
    }
  }
  const double brute_ms = timer.ElapsedMillis() / kQueries;

  std::printf("Top-k index ablation: %lld embeddings, k=%lld, %d queries\n\n",
              static_cast<long long>(kImages),
              static_cast<long long>(kTopK), kQueries);
  std::printf("%-22s %12s %10s %12s\n", "method", "ms/query", "recall@10",
              "rows scanned");
  std::printf("%-22s %12.3f %10.2f %11.0f%%\n", "brute force (ORDER BY)",
              brute_ms, 1.0, 100.0);

  for (int64_t probes : {1, 2, 4, 8, 16}) {
    timer.Reset();
    double recall = 0;
    for (size_t q = 0; q < queries.size(); ++q) {
      auto result = built->Search(queries[q], kTopK, probes);
      TDP_CHECK(result.ok());
      for (int64_t i = 0; i < result->indices.numel(); ++i) {
        if (exact[q].contains(
                static_cast<int64_t>(result->indices.At({i})))) {
          recall += 1;
        }
      }
    }
    const double ms = timer.ElapsedMillis() / kQueries;
    recall /= static_cast<double>(kQueries * kTopK);
    std::printf("%-22s %12.3f %10.2f %11.0f%%\n",
                ("ivf probes=" + std::to_string(probes)).c_str(), ms, recall,
                100.0 * built->ScanFraction(probes));
  }
  std::printf(
      "\nexpected shape: recall rises with probes; probing a fraction of "
      "cells\nrecovers most of the exact top-k at a fraction of the scan.\n");

  // ---- The same ablation through the SQL serving path ----------------------
  //
  // One session without an index (the ORDER BY plan stays a brute Sort),
  // one with CreateVectorIndex (the plan rewrites to IndexTopK); the
  // probe budget is a per-run knob, so ONE cached plan serves the whole
  // sweep. Recall is measured against the brute plan's row ids.
  tdp::Session brute_session;
  tdp::Session index_session;
  std::vector<int64_t> ids(static_cast<size_t>(kImages));
  for (int64_t i = 0; i < kImages; ++i) ids[static_cast<size_t>(i)] = i;
  for (tdp::Session* s : {&brute_session, &index_session}) {
    auto table = tdp::TableBuilder("vecs")
                     .AddInt64("id", ids)
                     .AddTensor("emb", embeddings)
                     .Build();
    TDP_CHECK(table.ok());
    TDP_CHECK(s->RegisterTable("vecs", table.value()).ok());
  }
  TDP_CHECK(index_session.CreateVectorIndex("vecs", "emb", options).ok());

  const char* sql =
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC LIMIT 10";
  auto brute_q = brute_session.Prepare(sql);
  auto index_q = index_session.Prepare(sql);
  TDP_CHECK(brute_q.ok() && index_q.ok());

  std::vector<std::set<int64_t>> sql_exact(queries.size());
  timer.Reset();
  for (size_t q = 0; q < queries.size(); ++q) {
    tdp::exec::RunOptions run;
    run.params = {tdp::exec::ScalarValue::FromTensor(queries[q])};
    auto result = (*brute_q)->Run(run);
    TDP_CHECK(result.ok()) << result.status().ToString();
    for (int64_t i = 0; i < (*result)->num_rows(); ++i) {
      sql_exact[q].insert(
          static_cast<int64_t>((*result)->column(0).data().At({i})));
    }
  }
  const double sql_brute_ms = timer.ElapsedMillis() / kQueries;

  std::printf("\nSQL serving path (ORDER BY dot(emb, ?) DESC LIMIT %lld):\n",
              static_cast<long long>(kTopK));
  std::printf("%-22s %12s %10s\n", "plan", "ms/query", "recall@10");
  std::printf("%-22s %12.3f %10.2f\n", "Sort+Limit (brute)", sql_brute_ms,
              1.0);
  for (int64_t probes : {1, 2, 4, 8, 16}) {
    timer.Reset();
    double recall = 0;
    for (size_t q = 0; q < queries.size(); ++q) {
      tdp::exec::RunOptions run;
      run.params = {tdp::exec::ScalarValue::FromTensor(queries[q])};
      run.vector_search.num_probes = probes;
      auto result = (*index_q)->Run(run);
      TDP_CHECK(result.ok()) << result.status().ToString();
      for (int64_t i = 0; i < (*result)->num_rows(); ++i) {
        if (sql_exact[q].contains(
                static_cast<int64_t>((*result)->column(0).data().At({i})))) {
          recall += 1;
        }
      }
    }
    const double ms = timer.ElapsedMillis() / kQueries;
    recall /= static_cast<double>(kQueries * kTopK);
    std::printf("%-22s %12.3f %10.2f\n",
                ("IndexTopK probes=" + std::to_string(probes)).c_str(), ms,
                recall);
  }
  std::printf(
      "\nfull-probe IndexTopK is bit-identical to the brute plan "
      "(differential suite);\nthe sweep above shows the per-run "
      "RunOptions::vector_search.num_probes recall/latency dial.\n");
  return 0;
}
