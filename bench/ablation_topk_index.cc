// Ablation for the paper's stated future work (§5.1): approximate
// indexing for top-k similarity queries. Compares brute-force top-k
// (what the ORDER BY ... LIMIT k plan does) against an IVF index at
// several probe counts, reporting time and recall@k on SimCLIP
// embeddings of the attachment corpus.

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "src/common/timer.h"
#include "src/data/attachments.h"
#include "src/index/ivf_index.h"
#include "src/models/clip.h"
#include "src/tensor/ops.h"

int main() {
  const int64_t kImages = tdp::bench::Scaled(600, 4000);
  const int64_t kTopK = 10;
  const int kQueries = 20;

  tdp::Rng rng(3);
  tdp::data::AttachmentDataset corpus = tdp::data::MakeAttachmentDataset(
      kImages / 2, kImages / 4, kImages - kImages / 2 - kImages / 4, rng);
  tdp::models::SimClip clip;
  const tdp::Tensor embeddings =
      clip.EncodeImages(corpus.images.To(tdp::Device::kAccel));

  tdp::index::IvfIndex::Options options;
  options.num_lists = 16;
  tdp::Rng build_rng(7);
  auto built = tdp::index::IvfIndex::Build(embeddings, options, build_rng);
  TDP_CHECK(built.ok()) << built.status().ToString();

  // Query embeddings: the text prototypes.
  std::vector<tdp::Tensor> queries;
  const std::vector<std::string> texts = {"dog", "cat", "beach", "receipt",
                                          "logo"};
  for (int q = 0; q < kQueries; ++q) {
    auto e = clip.EncodeText(texts[static_cast<size_t>(q) % texts.size()]);
    TDP_CHECK(e.ok());
    queries.push_back(std::move(e).value().To(tdp::Device::kAccel));
  }

  // Brute force reference (timing + ground truth).
  std::vector<std::set<int64_t>> exact(queries.size());
  tdp::Timer timer;
  for (size_t q = 0; q < queries.size(); ++q) {
    const tdp::Tensor scores = Squeeze(
        MatMul(embeddings, Reshape(queries[q], {queries[q].numel(), 1})), 1);
    const tdp::Tensor order = ArgSort(scores, /*descending=*/true);
    for (int64_t i = 0; i < kTopK; ++i) {
      exact[q].insert(static_cast<int64_t>(order.At({i})));
    }
  }
  const double brute_ms = timer.ElapsedMillis() / kQueries;

  std::printf("Top-k index ablation: %lld embeddings, k=%lld, %d queries\n\n",
              static_cast<long long>(kImages),
              static_cast<long long>(kTopK), kQueries);
  std::printf("%-22s %12s %10s %12s\n", "method", "ms/query", "recall@10",
              "rows scanned");
  std::printf("%-22s %12.3f %10.2f %11.0f%%\n", "brute force (ORDER BY)",
              brute_ms, 1.0, 100.0);

  for (int64_t probes : {1, 2, 4, 8, 16}) {
    timer.Reset();
    double recall = 0;
    for (size_t q = 0; q < queries.size(); ++q) {
      auto result = built->Search(queries[q], kTopK, probes);
      TDP_CHECK(result.ok());
      for (int64_t i = 0; i < result->indices.numel(); ++i) {
        if (exact[q].contains(
                static_cast<int64_t>(result->indices.At({i})))) {
          recall += 1;
        }
      }
    }
    const double ms = timer.ElapsedMillis() / kQueries;
    recall /= static_cast<double>(kQueries * kTopK);
    std::printf("%-22s %12.3f %10.2f %11.0f%%\n",
                ("ivf probes=" + std::to_string(probes)).c_str(), ms, recall,
                100.0 * built->ScanFraction(probes));
  }
  std::printf(
      "\nexpected shape: recall rises with probes; probing a fraction of "
      "cells\nrecovers most of the exact top-k at a fraction of the scan.\n");
  return 0;
}
