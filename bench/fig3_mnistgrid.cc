// Reproduces Fig. 3 (right): "MNISTGrid Training: TDP Query vs. Deep
// Learning" — test MSE vs training iteration for:
//   1. the TDP neurosymbolic trainable query (CNN parsers + soft group-by),
//   2. CNN-Small: a monolithic CNN regressor over the whole grid,
//   3. MiniResNet: a deeper residual regressor (the ResNet-18 role).
// Expected shape: the neurosymbolic query converges far faster and to a
// much lower error; the monolithic models asymptote higher because they
// must also learn the group-by/count program from scratch.
//
// Also prints §5.5 Experiment 2: the digit_parser extracted from the
// trained query, evaluated on held-out digit tiles without ever having
// seen a digit label.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/autograd/node.h"
#include "src/common/timer.h"
#include "src/data/mnist_grid.h"
#include "src/models/cnn.h"
#include "src/models/tvfs.h"
#include "src/nn/loss.h"
#include "src/nn/optim.h"
#include "src/runtime/session.h"
#include "src/tensor/ops.h"

namespace {

using tdp::Device;
using tdp::Slice;
using tdp::Tensor;

// Mean test MSE of a grouped-count predictor.
template <typename PredictFn>
double TestMse(const tdp::data::MnistGridDataset& test, PredictFn predict) {
  tdp::autograd::NoGradGuard no_grad;
  const int64_t n = test.grids.size(0);
  double total = 0;
  for (int64_t i = 0; i < n; ++i) {
    Tensor predicted = predict(i);
    Tensor target = Slice(test.counts, 0, i, 1).Squeeze(0).To(Device::kAccel);
    total += tdp::nn::MSELoss(predicted, target).item<double>();
  }
  return total / static_cast<double>(n);
}

}  // namespace

int main() {
  const int64_t kTrain = tdp::bench::Scaled(200, 5000);
  const int64_t kTest = tdp::bench::Scaled(40, 1000);
  // One "iteration" = one grid (paper's x-axis); optimizers step every
  // kAccumulation grids (gradient accumulation stabilizes the batch-1
  // count objective on this scaled-down task).
  const int kIterations = static_cast<int>(tdp::bench::Scaled(4800, 40000));
  const int kEvalEvery = static_cast<int>(tdp::bench::Scaled(480, 2000));
  const int kAccumulation = 8;

  tdp::Rng rng(42);
  tdp::data::MnistGridDataset train =
      tdp::data::MakeMnistGridDataset(kTrain, rng);
  tdp::data::MnistGridDataset test =
      tdp::data::MakeMnistGridDataset(kTest, rng);

  std::printf("MNISTGrid training benchmark (Fig. 3 right)\n");
  std::printf("train grids=%lld test grids=%lld iterations=%d\n\n",
              static_cast<long long>(kTrain), static_cast<long long>(kTest),
              kIterations);

  // ---- Approach 1: TDP neurosymbolic trainable query ----------------------
  tdp::Session session;
  tdp::Rng model_rng(7);
  auto tvf =
      tdp::models::RegisterParseMnistGridTvf(session.functions(), model_rng);
  if (!tvf.ok()) {
    std::fprintf(stderr, "%s\n", tvf.status().ToString().c_str());
    return 1;
  }
  (void)tdp::bench::RegisterMnistGrid(session, train.grids, 0);
  tdp::QueryOptions options;
  options.trainable = true;
  auto query = session.Query(
      "SELECT Digit, Size, COUNT(*) FROM parse_mnist_grid(MNIST_Grid) GROUP "
      "BY Digit, Size",
      options);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  // ---- Approaches 2+3: monolithic CNN regressors --------------------------
  tdp::Rng cnn_rng(7);
  auto cnn_small = tdp::models::MakeCnnSmallRegressor(cnn_rng);
  tdp::Rng resnet_rng(7);
  auto resnet = tdp::models::MakeMiniResNetRegressor(resnet_rng);

  std::printf("parameters: tdp_query=%lld cnn_small=%lld mini_resnet=%lld\n\n",
              static_cast<long long>([&] {
                int64_t n = 0;
                for (auto& p : (*query)->Parameters()) n += p.numel();
                return n;
              }()),
              static_cast<long long>(cnn_small->NumParameters()),
              static_cast<long long>(resnet->NumParameters()));

  tdp::nn::Adam query_opt((*query)->Parameters(), 0.002);
  tdp::nn::Adam cnn_opt(cnn_small->Parameters(), 0.001);
  tdp::nn::Adam resnet_opt(resnet->Parameters(), 0.001);

  std::printf("%10s %18s %12s %14s\n", "iteration", "tdp_query_mse",
              "cnn_small_mse", "mini_resnet_mse");

  tdp::Timer timer;
  for (int it = 0; it <= kIterations; ++it) {
    if (it % kEvalEvery == 0) {
      const double query_mse = TestMse(test, [&](int64_t i) {
        (void)tdp::bench::RegisterMnistGrid(session, test.grids, i);
        auto chunk = (*query)->RunChunk();
        TDP_CHECK(chunk.ok()) << chunk.status().ToString();
        return chunk->columns[2].data();
      });
      const double cnn_mse = TestMse(test, [&](int64_t i) {
        return cnn_small
            ->Forward(Slice(test.grids, 0, i, 1).Contiguous().To(
                Device::kAccel))
            .Squeeze(0);
      });
      const double resnet_mse = TestMse(test, [&](int64_t i) {
        return resnet
            ->Forward(Slice(test.grids, 0, i, 1).Contiguous().To(
                Device::kAccel))
            .Squeeze(0);
      });
      std::printf("%10d %18.4f %12.4f %14.4f\n", it, query_mse, cnn_mse,
                  resnet_mse);
    }
    if (it == kIterations) break;

    // One optimizer step per kAccumulation grids for all three models.
    query_opt.ZeroGrad();
    cnn_opt.ZeroGrad();
    resnet_opt.ZeroGrad();
    const double scale = 1.0 / kAccumulation;
    for (int a = 0; a < kAccumulation; ++a) {
      const int64_t i = (it + a) % kTrain;
      const Tensor target =
          Slice(train.counts, 0, i, 1).Squeeze(0).To(Device::kAccel);
      const Tensor grid =
          Slice(train.grids, 0, i, 1).Contiguous().To(Device::kAccel);

      // TDP query step (Listing 5).
      (void)tdp::bench::RegisterMnistGrid(session, train.grids, i);
      auto chunk = (*query)->RunChunk();
      TDP_CHECK(chunk.ok()) << chunk.status().ToString();
      MulScalar(tdp::nn::MSELoss(chunk->columns[2].data(), target), scale)
          .Backward();

      // CNN-Small step.
      MulScalar(
          tdp::nn::MSELoss(cnn_small->Forward(grid).Squeeze(0), target),
          scale)
          .Backward();

      // MiniResNet step.
      MulScalar(tdp::nn::MSELoss(resnet->Forward(grid).Squeeze(0), target),
                scale)
          .Backward();
    }
    query_opt.Step();
    cnn_opt.Step();
    resnet_opt.Step();
    it += kAccumulation - 1;
  }
  std::printf("\ntotal wall time: %.1fs\n", timer.ElapsedSeconds());

  // ---- §5.5 Experiment 2: extract and reuse the digit parser -------------
  tdp::data::DigitDataset tiles =
      tdp::data::MakeDigitDataset(tdp::bench::Scaled(500, 2000), rng);
  tdp::autograd::NoGradGuard no_grad;
  const Tensor logits =
      tvf->digit_parser->Forward(tiles.images.To(Device::kAccel));
  const Tensor pred = ArgMax(logits, 1, false);
  int64_t correct = 0;
  const int64_t n = tiles.labels.numel();
  for (int64_t i = 0; i < n; ++i) {
    if (pred.At({i}) == tiles.labels.At({i})) ++correct;
  }
  std::printf(
      "\nExperiment 2 (transfer): extracted digit_parser accuracy on "
      "held-out tiles: %.2f%% (paper: 98.15%% on MNIST)\n",
      100.0 * static_cast<double>(correct) / static_cast<double>(n));
  return 0;
}
