// SQL over OCR'd documents (paper §5.2, Listing 8): filter document images
// by metadata, extract the table from the single matching image with an
// ML pipeline TVF, and aggregate the extracted columns — all in one query.

#include <cstdio>

#include "src/data/documents.h"
#include "src/models/ocr.h"
#include "src/runtime/session.h"

int main() {
  tdp::Rng rng(2022);
  tdp::Session session;

  tdp::data::DocumentDataset docs = tdp::data::MakeDocumentDataset(50, rng);
  auto table = tdp::TableBuilder("Document")
                   .AddStrings("timestamp", docs.timestamps)
                   .AddTensor("images", docs.images)
                   .Build();
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  (void)session.RegisterTable("Document", table.value());

  auto ocr = std::make_shared<tdp::models::TableOcr>();
  auto status =
      tdp::models::RegisterExtractTableUdf(session.functions(), ocr);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // Listing 8 (TDP-C++ dialect): the timestamp filter runs first, so only
  // ONE image is OCR'd — the source of the two-orders-of-magnitude win in
  // Fig. 3 (left).
  const std::string target = docs.timestamps[17];
  const std::string sql =
      "SELECT AVG(SepalLength), AVG(PetalLength) FROM extract_table("
      "SELECT images FROM Document WHERE timestamp = '" + target + "')";
  std::printf("query:\n  %s\n\n", sql.c_str());

  auto result = session.Sql(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", (*result)->ToString().c_str());

  // Cross-check against the renderer's ground truth for that document.
  double truth_sepal = 0, truth_petal = 0;
  for (int64_t r = 0; r < tdp::data::kDocRows; ++r) {
    truth_sepal += docs.values.At({17, r, 0});
    truth_petal += docs.values.At({17, r, 2});
  }
  std::printf("ground truth: AVG(SepalLength)=%.3f AVG(PetalLength)=%.3f\n",
              truth_sepal / tdp::data::kDocRows,
              truth_petal / tdp::data::kDocRows);
  return 0;
}
