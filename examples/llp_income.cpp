// Learning from Label Proportions via SQL (paper §5.3, Listing 9): a
// GROUP BY / COUNT query declaratively expresses bag-count supervision;
// compiling it TRAINABLE trains the classifier inside the TVF.

#include <cstdio>

#include "src/autograd/node.h"
#include "src/data/adult.h"
#include "src/models/tvfs.h"
#include "src/nn/layers.h"
#include "src/nn/loss.h"
#include "src/nn/optim.h"
#include "src/runtime/session.h"
#include "src/tensor/ops.h"

int main() {
  tdp::Rng rng(123);
  tdp::Session session;

  auto tvf = tdp::models::RegisterClassifyIncomesTvf(
      session.functions(), tdp::data::kAdultNumFeatures, rng);
  if (!tvf.ok()) {
    std::fprintf(stderr, "%s\n", tvf.status().ToString().c_str());
    return 1;
  }

  tdp::data::AdultDataset train = tdp::data::MakeAdultDataset(1024, rng);
  tdp::data::AdultDataset test = tdp::data::MakeAdultDataset(1024, rng);
  const int64_t bag_size = 32;
  tdp::data::LlpBags bags =
      tdp::data::MakeBags(train, bag_size, /*laplace_scale=*/0.0, rng);
  std::printf("training from %zu bags of %lld rows (counts only)\n",
              bags.bag_features.size(), static_cast<long long>(bag_size));

  auto register_bag = [&](size_t b) {
    auto table = tdp::TableBuilder("Adult_Income_Bag")
                     .AddTensor("features", bags.bag_features[b])
                     .Build();
    return session.RegisterTable("Adult_Income_Bag", table.value(),
                                 tdp::Device::kAccel);
  };
  (void)register_bag(0);

  tdp::QueryOptions options;
  options.trainable = true;
  auto query = session.Query(
      "SELECT Income, COUNT(*) FROM classify_incomes(Adult_Income_Bag) "
      "GROUP BY Income",
      options);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  tdp::nn::Adam optimizer((*query)->Parameters(), 0.05);
  for (int epoch = 0; epoch < 6; ++epoch) {
    double epoch_loss = 0;
    for (size_t b = 0; b < bags.bag_features.size(); ++b) {
      (void)register_bag(b);
      optimizer.ZeroGrad();
      auto chunk = (*query)->RunChunk();
      if (!chunk.ok()) {
        std::fprintf(stderr, "%s\n", chunk.status().ToString().c_str());
        return 1;
      }
      tdp::Tensor predicted = chunk->columns[1].data();
      tdp::Tensor target = Slice(bags.counts, 0, static_cast<int64_t>(b), 1)
                               .Squeeze(0)
                               .To(tdp::Device::kAccel);
      tdp::Tensor loss = tdp::nn::MSELoss(predicted, target);
      epoch_loss += loss.item<double>();
      loss.Backward();
      optimizer.Step();
    }
    std::printf("epoch %d  mean bag-count MSE %.4f\n", epoch,
                epoch_loss / bags.bag_features.size());
  }

  // Instance-level error on held-out individuals (never seen any labels!).
  tdp::autograd::NoGradGuard no_grad;
  auto* linear = static_cast<tdp::nn::Linear*>(tvf->model.get());
  tdp::Tensor logits =
      linear->Forward(test.features.To(tdp::Device::kAccel));
  tdp::Tensor pred = ArgMax(logits, 1, false);
  int64_t errors = 0;
  for (int64_t i = 0; i < 1024; ++i) {
    if (pred.At({i}) != test.labels.At({i})) ++errors;
  }
  std::printf("held-out instance classification error: %.3f\n",
              static_cast<double>(errors) / 1024.0);
  return 0;
}
