// Trainable queries (paper §3-§4, Listings 4-6): train the CNNs inside a
// SQL query's TVF from grouped-count supervision only, by embedding the
// compiled query in a gradient-descent loop (Listing 5).

#include <cstdio>

#include "src/autograd/node.h"
#include "src/data/mnist_grid.h"
#include "src/models/tvfs.h"
#include "src/nn/loss.h"
#include "src/nn/optim.h"
#include "src/runtime/session.h"
#include "src/tensor/ops.h"

namespace {

// Registers one grid image as the MNIST_Grid table (the paper's
// tdp.sql.register_tensor call inside the training loop).
tdp::Status RegisterGrid(tdp::Session& session, const tdp::Tensor& grids,
                         int64_t index) {
  auto table =
      tdp::TableBuilder("MNIST_Grid")
          .AddTensor("image", Slice(grids, 0, index, 1).Contiguous())
          .Build();
  if (!table.ok()) return table.status();
  return session.RegisterTable("MNIST_Grid", table.value(),
                               tdp::Device::kAccel);
}

}  // namespace

int main() {
  tdp::Rng rng(42);
  tdp::Session session;

  // Listing 4: the parse_mnist_grid TVF with two trainable CNNs.
  auto tvf = tdp::models::RegisterParseMnistGridTvf(session.functions(), rng);
  if (!tvf.ok()) {
    std::fprintf(stderr, "%s\n", tvf.status().ToString().c_str());
    return 1;
  }

  const int64_t kTrain = 48;
  const int64_t kTest = 16;
  tdp::data::MnistGridDataset train =
      tdp::data::MakeMnistGridDataset(kTrain, rng);
  tdp::data::MnistGridDataset test =
      tdp::data::MakeMnistGridDataset(kTest, rng);

  // Listing 6: compile with the TRAINABLE flag -> soft operators.
  (void)RegisterGrid(session, train.grids, 0);
  tdp::QueryOptions options;
  options.trainable = true;
  auto query = session.Query(
      "SELECT Digit, Size, COUNT(*) FROM parse_mnist_grid(MNIST_Grid) "
      "GROUP BY Digit, Size",
      options);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("Trainable plan (%lld parameters):\n%s\n",
              static_cast<long long>([&] {
                int64_t n = 0;
                for (auto& p : (*query)->Parameters()) n += p.numel();
                return n;
              }()),
              (*query)->Explain().c_str());

  // Listing 5: the training loop (gradients accumulated over 8 grids per
  // optimizer step; see EXPERIMENTS.md for why the scaled-down task
  // prefers this over plain batch-1 steps).
  tdp::nn::Adam optimizer((*query)->Parameters(), 0.002);
  const int kIterations = 1920;  // grids seen (240 optimizer steps)
  const int kAccum = 8;
  int64_t cursor = 0;
  for (int it = 0; it < kIterations; it += kAccum) {
    optimizer.ZeroGrad();
    double step_loss = 0;
    for (int a = 0; a < kAccum; ++a) {
      const int64_t i = cursor++ % kTrain;
      (void)RegisterGrid(session, train.grids, i);
      auto chunk = (*query)->RunChunk();
      if (!chunk.ok()) {
        std::fprintf(stderr, "%s\n", chunk.status().ToString().c_str());
        return 1;
      }
      tdp::Tensor predicted = chunk->columns[2].data();
      tdp::Tensor target =
          Slice(train.counts, 0, i, 1).Squeeze(0).To(tdp::Device::kAccel);
      tdp::Tensor loss = tdp::nn::MSELoss(predicted, target);
      step_loss += loss.item<double>();
      MulScalar(loss, 1.0 / kAccum).Backward();
    }
    optimizer.Step();
    if (it % 384 == 0) {
      std::printf("iteration %4d  train MSE %.4f\n", it,
                  step_loss / kAccum);
    }
  }

  // Evaluate on held-out grids. `RunOptions{.training_mode = false}` would
  // swap in the exact operators (the paper's inference swap, §4); the soft
  // counts compare directly against the fractional targets, so keep the
  // trainable default (soft) here.
  double test_mse = 0;
  {
    tdp::autograd::NoGradGuard no_grad;
    for (int64_t i = 0; i < kTest; ++i) {
      (void)RegisterGrid(session, test.grids, i);
      auto chunk = (*query)->RunChunk();
      if (!chunk.ok()) break;
      tdp::Tensor predicted = chunk->columns[2].data();
      tdp::Tensor target =
          Slice(test.counts, 0, i, 1).Squeeze(0).To(tdp::Device::kAccel);
      test_mse += tdp::nn::MSELoss(predicted, target).item<double>();
    }
  }
  std::printf("held-out MSE after training: %.4f\n", test_mse / kTest);

  // §5.5 Experiment 2 flavor: the digit parser learned real digit
  // classification without ever seeing a digit label.
  tdp::data::DigitDataset tiles = tdp::data::MakeDigitDataset(200, rng);
  tdp::autograd::NoGradGuard no_grad;
  tdp::Tensor logits =
      tvf->digit_parser->Forward(tiles.images.To(tdp::Device::kAccel));
  tdp::Tensor pred = ArgMax(logits, 1, false);
  int correct = 0;
  for (int64_t i = 0; i < 200; ++i) {
    if (pred.At({i}) == tiles.labels.At({i})) ++correct;
  }
  std::printf("extracted digit_parser accuracy on fresh tiles: %.1f%%\n",
              correct / 2.0);
  return 0;
}
