// Multimodal queries over an email-attachment image corpus (paper §5.1,
// Fig. 2 left): SQL + an image/text similarity UDF in one engine.
//
//   1. filter:     images WHERE image_text_similarity('dog', ...) > 0.8
//   2. aggregate:  COUNT(*) of receipt-like attachments
//   3. top-k:      ORDER BY similarity DESC LIMIT 2 ("KFC Receipt")

#include <cstdio>

#include "src/data/attachments.h"
#include "src/models/clip.h"
#include "src/runtime/session.h"

int main() {
  tdp::Rng rng(7);
  tdp::Session session;

  // 40 photographs, 20 receipts, 20 logos (a 1/4-scale Fig. 2 corpus).
  tdp::data::AttachmentDataset corpus =
      tdp::data::MakeAttachmentDataset(40, 20, 20, rng);
  auto table = tdp::TableBuilder("Attachments")
                   .AddStrings("filename", corpus.filenames)
                   .AddTensor("images", corpus.images)
                   .Build();
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  (void)session.RegisterTable("Attachments", table.value(),
                              tdp::Device::kAccel);

  auto clip = std::make_shared<tdp::models::SimClip>();
  auto status =
      tdp::models::RegisterImageTextSimilarityUdf(session.functions(), clip);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  tdp::QueryOptions accel;
  accel.device = tdp::Device::kAccel;

  // Query 1 (Fig. 2 middle, second query): how many receipts?
  auto count = session.Sql(
      "SELECT COUNT(*) AS receipts FROM Attachments "
      "WHERE image_text_similarity('receipt', images) > 0.80",
      accel);
  if (!count.ok()) {
    std::fprintf(stderr, "%s\n", count.status().ToString().c_str());
    return 1;
  }
  std::printf("receipt-like attachments: %.0f (corpus has 20)\n",
              (*count)->column(0).data().At({0}));

  // Query 2 (Fig. 2 middle, first query): fetch dog photos.
  auto dogs = session.Sql(
      "SELECT filename FROM Attachments "
      "WHERE image_text_similarity('dog', images) > 0.80",
      accel);
  if (dogs.ok()) {
    std::printf("dog photos found: %lld\n",
                static_cast<long long>((*dogs)->num_rows()));
  }

  // Query 3 (Fig. 2 middle, third query): top-2 "KFC Receipt" search.
  auto topk = session.Sql(
      "SELECT filename, image_text_similarity('KFC Receipt', images) AS "
      "score FROM Attachments ORDER BY score DESC LIMIT 2",
      accel);
  if (!topk.ok()) {
    std::fprintf(stderr, "%s\n", topk.status().ToString().c_str());
    return 1;
  }
  std::printf("top-2 KFC-receipt matches:\n%s\n",
              (*topk)->ToString().c_str());
  return 0;
}
