// Quickstart: the paper's §2 walkthrough (Listings 1-3) in TDP-C++.
//
// 1. Register tabular data ("numbers") on a device.
// 2. Compile a SQL aggregate query into a tensor program.
// 3. Execute it and print the result table.

#include <cstdio>

#include "src/runtime/session.h"
#include "src/tensor/ops.h"

int main() {
  tdp::Session session;

  // Listing 1: ingest data. A "dataframe" of digits and sizes, stored
  // columnar with each column a tensor, placed on the accelerated device
  // (the paper's device="cuda").
  auto numbers = tdp::TableBuilder("numbers")
                     .AddInt64("Digits", {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5})
                     .AddStrings("Sizes", {"small", "large", "small", "small",
                                           "large", "large", "small", "large",
                                           "small", "large", "large"})
                     .Build();
  if (!numbers.ok()) {
    std::fprintf(stderr, "%s\n", numbers.status().ToString().c_str());
    return 1;
  }
  auto status = session.RegisterTable("numbers", numbers.value(),
                                      tdp::Device::kAccel);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // Listing 2: compile the query. The result is a model-like object: it
  // can be executed, explained, or embedded in a training loop.
  tdp::QueryOptions options;
  options.device = tdp::Device::kAccel;
  auto query = session.Query(
      "SELECT Digits, Sizes, COUNT(*) AS n FROM numbers "
      "GROUP BY Digits, Sizes ORDER BY Digits, Sizes",
      options);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  std::printf("Compiled plan:\n%s\n", (*query)->Explain().c_str());

  // Listing 3: run it (the toPandas analogue is ToString()).
  auto result = (*query)->Run();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", (*result)->ToString().c_str());

  // The same compiled query re-runs against newly registered data.
  auto more = tdp::TableBuilder("numbers")
                  .AddInt64("Digits", {7, 7, 7})
                  .AddStrings("Sizes", {"small", "small", "large"})
                  .Build();
  (void)session.RegisterTable("numbers", more.value(), tdp::Device::kAccel);
  auto rerun = (*query)->Run();
  if (rerun.ok()) {
    std::printf("After re-registering 'numbers':\n%s\n",
                (*rerun)->ToString().c_str());
  }
  return 0;
}
