#!/usr/bin/env bash
# Guards the SIMD contract of the accelerated kernels: compiles each hot-loop
# translation unit with GCC's vectorization report and fails if a file whose
# inner loops are supposed to vectorize stops reporting any "loop vectorized"
# line attributed to it. This catches the silent de-vectorization class of
# regression — e.g. reintroducing a data-dependent `if (av == 0) continue;`
# skip, a per-element `switch (kind)` dispatch, or an opaque function call in
# an inner loop — which no correctness test can see, only the timings.
#
# Usage: tools/check_vectorization.sh   (from the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

CXX=${CXX:-g++}
FLAGS=(-std=c++20 -O3 -Wall -I. -c -o /dev/null -fopt-info-vec-optimized)

# Translation units whose inner loops the accelerated backend relies on.
# Requirement: at least one "loop vectorized" report attributed to the file
# itself (not an STL header it pulls in).
HOT_TUS=(
  src/tensor/ops_matmul.cc         # MatMulAccel saxpy inner loop
  src/tensor/ops_conv.cc           # GemmRowMajor inner loop (im2col GEMM)
  src/tensor/ops_binary.cc         # AccelLoop fast/scalar-broadcast paths
  src/exec/fused_filter_project.cc # fused predicate CmpRange loops
)

status=0
for tu in "${HOT_TUS[@]}"; do
  report=$("$CXX" "${FLAGS[@]}" "$tu" 2>&1 || true)
  vectorized=$(printf '%s\n' "$report" \
    | grep -F "$tu" | grep -c "loop vectorized" || true)
  if [[ "$vectorized" -eq 0 ]]; then
    echo "FAIL: no vectorized loop reported in $tu" >&2
    printf '%s\n' "$report" | grep -F "$tu" | grep "missed" | sort -u \
      | head -20 >&2 || true
    status=1
  else
    echo "ok: $tu ($vectorized vectorized-loop reports)"
  fi
done

exit $status
