#!/usr/bin/env python3
"""Benchmark trajectory tooling: merge google-benchmark JSON runs into a
single BENCH_prN.json trajectory file, and gate a current run against a
checked-in baseline.

Merge the per-suite JSON outputs of one run:

    tools/bench_compare.py merge --label pr3 --out BENCH_pr3.json \
        serve_concurrent=serve.json micro_query_ops=micro.json

Compare a run against a baseline (exit 1 on regression):

    tools/bench_compare.py compare BENCH_pr2.json BENCH_pr3.json \
        --threshold 0.25

A benchmark regresses when its metric worsens by more than --threshold
relative to the baseline: `items_per_second` (higher is better) when both
sides report it, `real_time` (lower is better) otherwise. Benchmarks
present on only one side are reported but never gate.

User counters survive the merge and latency percentiles gate too: any
counter named like a percentile (p50_ms, p95, p99_ms, ...) is compared
lower-is-better at the same threshold — a serving path whose p99 blows up
fails the gate even when mean throughput holds. Other counters (e.g.
tenant_mix's shed_rate, whose healthy value depends on the workload
sizing rather than code quality) are carried for trend visibility but
never gate.
"""

import argparse
import json
import re
import sys

# Keys google-benchmark emits for every entry; anything else numeric in a
# raw JSON entry is a user counter.
STANDARD_KEYS = {
    "name",
    "run_name",
    "run_type",
    "repetitions",
    "repetition_index",
    "threads",
    "iterations",
    "real_time",
    "cpu_time",
    "time_unit",
    "items_per_second",
    "bytes_per_second",
    "aggregate_name",
    "aggregate_unit",
    "family_index",
    "per_family_instance_index",
    "label",
    "error_occurred",
    "error_message",
    "big_o",
    "rms",
    "suite",
    "counters",
}

# Counters gated lower-is-better: latency percentiles however suffixed.
PERCENTILE_RE = re.compile(r"^p\d+(_|$)")


def load(path):
    with open(path) as f:
        return json.load(f)


def merged_entries(doc):
    """Entries of a merged trajectory file or a raw google-benchmark file.

    When the run used --benchmark_repetitions, only the median aggregates
    are kept (under the base benchmark name): medians are what make a
    checked-in baseline stable enough to gate against on noisy runners.
    """
    raw = doc.get("benchmarks", [])
    have_medians = any(b.get("aggregate_name") == "median" for b in raw)
    entries = []
    for b in raw:
        if have_medians:
            if b.get("aggregate_name") != "median":
                continue
            name = b.get("run_name", b["name"].removesuffix("_median"))
        else:
            if b.get("run_type") == "aggregate":
                continue
            name = b["name"]
        # User counters: already folded into "counters" for merged
        # trajectory entries, loose numeric fields in raw benchmark JSON.
        counters = dict(b.get("counters", {}))
        for k, v in b.items():
            if k not in STANDARD_KEYS and isinstance(v, (int, float)):
                counters[k] = v
        entries.append(
            {
                "suite": b.get("suite", ""),
                "name": name,
                "real_time": b["real_time"],
                "cpu_time": b.get("cpu_time"),
                "time_unit": b.get("time_unit", "ns"),
                **(
                    {"items_per_second": b["items_per_second"]}
                    if "items_per_second" in b
                    else {}
                ),
                **({"counters": counters} if counters else {}),
            }
        )
    return entries


def cmd_merge(args):
    out = {"label": args.label, "benchmarks": []}
    for spec in args.inputs:
        suite, _, path = spec.partition("=")
        if not path:
            sys.exit(f"merge input must be suite=path, got '{spec}'")
        doc = load(path)
        if "context" not in out:
            ctx = doc.get("context", {})
            out["context"] = {
                k: ctx[k]
                for k in ("num_cpus", "mhz_per_cpu", "library_version")
                if k in ctx
            }
        for e in merged_entries(doc):
            e["suite"] = suite
            out["benchmarks"].append(e)
    with open(args.out, "w") as f:
        json.dump(out, f, indent=1)
        f.write("\n")
    print(f"wrote {args.out}: {len(out['benchmarks'])} benchmarks")
    return 0


def key(entry):
    return (entry["suite"], entry["name"])


def cmd_compare(args):
    base_doc = load(args.baseline)
    cur_doc = load(args.current)
    base = {key(e): e for e in merged_entries(base_doc)}
    cur = {key(e): e for e in merged_entries(cur_doc)}

    base_cpus = base_doc.get("context", {}).get("num_cpus")
    cur_cpus = cur_doc.get("context", {}).get("num_cpus")
    hardware_mismatch = (
        base_cpus is not None and cur_cpus is not None and base_cpus != cur_cpus
    )
    if hardware_mismatch:
        print(
            f"WARNING: baseline ran on {base_cpus} cpus, current on "
            f"{cur_cpus}; absolute numbers are not comparable apples-to-"
            "apples — expect deltas beyond the threshold on hardware changes."
        )

    regressions = []
    rows = []
    for k in sorted(base.keys() | cur.keys()):
        b, c = base.get(k), cur.get(k)
        if b is None or c is None:
            rows.append((k, "-", "-", "only in " + ("current" if b is None else "baseline")))
            continue
        # `delta` is displayed with + = better, - = worse; `worsening` is
        # measured relative to the BASELINE for both metric kinds, so the
        # threshold fires at the same relative slowdown whether the
        # benchmark reports throughput or time (a 30% slowdown gates at
        # 25% either way).
        if "items_per_second" in b and "items_per_second" in c:
            # Higher is better.
            ratio = c["items_per_second"] / b["items_per_second"]
            worsening = 1.0 - ratio
            delta = ratio - 1.0
            shown = (f"{b['items_per_second']:.0f}/s", f"{c['items_per_second']:.0f}/s")
        else:
            # Lower is better.
            ratio = c["real_time"] / max(b["real_time"], 1e-12)
            worsening = ratio - 1.0
            delta = -worsening
            shown = (
                f"{b['real_time']:.0f}{b['time_unit']}",
                f"{c['real_time']:.0f}{c['time_unit']}",
            )
        verdict = f"{delta:+.1%}"
        if worsening > args.threshold:
            verdict += "  REGRESSION"
            regressions.append((k, delta))
        rows.append((k, shown[0], shown[1], verdict))

        # Shared user counters: percentile-named ones (p50_ms, p99_ms, ...)
        # gate lower-is-better; the rest are displayed only.
        b_counters = b.get("counters", {})
        c_counters = c.get("counters", {})
        for counter in sorted(b_counters.keys() & c_counters.keys()):
            bv, cv = b_counters[counter], c_counters[counter]
            ck = (k[0], f"{k[1]} [{counter}]")
            shown = (f"{bv:.3f}", f"{cv:.3f}")
            if not PERCENTILE_RE.match(counter):
                rows.append((ck, shown[0], shown[1], "(not gated)"))
                continue
            # 0.05 ms absolute noise floor: sub-tick percentiles on fast
            # paths must not divide by ~0 and flap the gate.
            worsening = (cv - bv) / max(bv, 0.05)
            delta = -worsening
            verdict = f"{delta:+.1%}"
            if worsening > args.threshold:
                verdict += "  REGRESSION"
                regressions.append((ck, delta))
            rows.append((ck, shown[0], shown[1], verdict))

    name_w = max(len(f"{s}:{n}") for s, n in (k for k, *_ in rows)) if rows else 10
    print(f"{'benchmark'.ljust(name_w)}  {'baseline':>14}  {'current':>14}  delta")
    for (s, n), b, c, verdict in rows:
        print(f"{(s + ':' + n).ljust(name_w)}  {b:>14}  {c:>14}  {verdict}")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} vs {args.baseline}:"
        )
        for (s, n), delta in regressions:
            print(f"  {s}:{n}  {delta:+.1%}")
        if hardware_mismatch and args.hardware_mismatch == "warn":
            print(
                "WARN-ONLY: hardware differs from the baseline "
                "(--hardware-mismatch=warn); not failing. Re-record the "
                "baseline on this runner class to re-arm the gate."
            )
            return 0
        print("FAIL")
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%}.")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    merge = sub.add_parser("merge", help="merge suite runs into a trajectory file")
    merge.add_argument("--label", required=True, help="trajectory label, e.g. pr3")
    merge.add_argument("--out", required=True, help="output JSON path")
    merge.add_argument("inputs", nargs="+", help="suite=path pairs")
    merge.set_defaults(fn=cmd_merge)

    compare = sub.add_parser("compare", help="gate current vs baseline")
    compare.add_argument("baseline")
    compare.add_argument("current")
    compare.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max tolerated relative regression (default 0.25 = 25%%)",
    )
    compare.add_argument(
        "--hardware-mismatch",
        choices=["gate", "warn"],
        default="gate",
        help="when the baseline's context.num_cpus differs from the current "
        "run's: 'gate' (default) still fails on regressions, 'warn' reports "
        "them but exits 0 (for CI runners that differ from the machine the "
        "checked-in baseline was recorded on)",
    )
    compare.set_defaults(fn=cmd_compare)

    args = parser.parse_args()
    sys.exit(args.fn(args))


if __name__ == "__main__":
    main()
