// exec::ResultCursor — the pull-based streaming half of the execution
// API: chunk-stream parity with Run(), backpressure (production counter
// bounded by queue capacity, proving the stream is incremental rather
// than materialize-then-slice), early-close cancellation, caller
// cancellation tokens, and mid-stream error propagation (fault injection
// must surface the same Status through Next() as through Run(), never a
// silently truncated stream).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/runtime/session.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

using exec::Chunk;
using exec::ResultCursor;
using exec::RunOptions;

class ResultCursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(777);
    const int64_t rows = 10000;
    std::vector<int64_t> keys;
    std::vector<double> values;
    for (int64_t i = 0; i < rows; ++i) {
      keys.push_back(i);
      values.push_back(rng.Uniform(-100, 100));
    }
    auto table =
        TableBuilder("big").AddInt64("k", keys).AddFloat64("v", values).Build();
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    ASSERT_TRUE(session_.RegisterTable("big", table.value()).ok());
  }

  std::shared_ptr<exec::CompiledQuery> Prepare(const std::string& sql) {
    auto query = session_.Prepare(sql);
    TDP_CHECK(query.ok()) << query.status().ToString();
    return query.value();
  }

  Session session_;
};

TEST_F(ResultCursorTest, DrainedStreamMatchesRun) {
  auto query = Prepare("SELECT k, v FROM big WHERE v > 0");
  RunOptions run;
  run.exec.morsel_rows = 97;  // prime-sized morsels, many chunks
  auto reference = query->Run(run);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  auto cursor = query->Open(std::move(run));
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  std::vector<Chunk> chunks;
  while (true) {
    auto chunk = (*cursor)->Next();
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    if (!chunk->has_value()) break;
    chunks.push_back(std::move(**chunk));
  }
  ASSERT_GT(chunks.size(), 10u);
  EXPECT_EQ((*cursor)->chunks_produced(),
            static_cast<int64_t>(chunks.size()));
  auto table = Chunk::Concat(chunks).ToTable("result");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), (*reference)->num_rows());
  for (int64_t c = 0; c < (*table)->num_columns(); ++c) {
    EXPECT_TRUE(TensorEqual((*table)->column(c).data().Contiguous(),
                            (*reference)->column(c).data().Contiguous()));
  }
}

// Backpressure proves streaming: with a bounded queue, the producer can
// be at most (capacity + one wave) chunks ahead of the consumer, so after
// the first Next() production must be far from finished. A
// materialize-then-slice implementation would fail this deterministically.
TEST_F(ResultCursorTest, BoundedQueueKeepsProductionIncremental) {
  auto query = Prepare("SELECT k, v FROM big WHERE v > -200");
  RunOptions run;
  run.exec.morsel_rows = 8;  // ~1250 chunks
  run.cursor_queue_chunks = 2;
  auto cursor = query->Open(std::move(run));
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  auto first = (*cursor)->Next();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->has_value());
  // consumed(1) + queue capacity(2) + one wave in flight (pool width),
  // plus slack for the wave that completes while we pop.
  const int64_t wave = ThreadPool::Global().num_threads();
  EXPECT_LE((*cursor)->chunks_produced(), 1 + 2 + 2 * wave);
  EXPECT_LT((*cursor)->chunks_produced(), 100);
}

TEST_F(ResultCursorTest, EarlyCloseStopsProduction) {
  auto query = Prepare("SELECT k, v FROM big WHERE v > -200");
  RunOptions run;
  run.exec.morsel_rows = 8;  // ~1250 chunks if fully drained
  auto cursor = query->Open(std::move(run));
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  auto first = (*cursor)->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  (*cursor)->Close();
  // Close() joins the producer, so the counter is frozen — and far below
  // the ~1250 chunks a full drain would have produced.
  const int64_t after_close = (*cursor)->chunks_produced();
  EXPECT_LT(after_close, 100);
  EXPECT_EQ((*cursor)->chunks_produced(), after_close);
  // A closed cursor reports Cancelled, not end-of-stream.
  auto next = (*cursor)->Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kCancelled);
}

TEST_F(ResultCursorTest, CallerTokenCancelsRunAndCursor) {
  auto query = Prepare("SELECT k, v FROM big WHERE v > -200");
  // Pre-cancelled token: Run() fails before doing any work.
  RunOptions run;
  run.cancel = std::make_shared<exec::CancellationToken>();
  run.cancel->Cancel();
  auto result = query->Run(run);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);

  // Token cancelled mid-stream: Next() eventually reports Cancelled (after
  // draining what was already queued), and production stops early.
  RunOptions streamed;
  streamed.exec.morsel_rows = 8;
  streamed.cursor_queue_chunks = 1;
  streamed.cancel = std::make_shared<exec::CancellationToken>();
  auto token = streamed.cancel;
  auto cursor = query->Open(std::move(streamed));
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  auto first = (*cursor)->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  token->Cancel();
  Status final_status = Status::OK();
  while (true) {
    auto chunk = (*cursor)->Next();
    if (!chunk.ok()) {
      final_status = chunk.status();
      break;
    }
    if (!chunk->has_value()) break;
  }
  EXPECT_EQ(final_status.code(), StatusCode::kCancelled)
      << final_status.ToString();
  EXPECT_LT((*cursor)->chunks_produced(), 100);
}

// The legacy (whole-relation) executor behind a cursor: one chunk,
// identical rows.
TEST_F(ResultCursorTest, LegacyExecutorYieldsOneChunk) {
  auto query = Prepare("SELECT k FROM big WHERE v > 0");
  RunOptions run;
  run.exec.streaming = false;
  auto reference = query->Run(run);
  ASSERT_TRUE(reference.ok());
  auto cursor = query->Open(std::move(run));
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  auto chunk = (*cursor)->Next();
  ASSERT_TRUE(chunk.ok());
  ASSERT_TRUE(chunk->has_value());
  EXPECT_EQ((**chunk).num_rows(), (*reference)->num_rows());
  auto end = (*cursor)->Next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
  EXPECT_EQ((*cursor)->chunks_produced(), 1);
}

TEST_F(ResultCursorTest, OpenValidatesParameterCount) {
  auto query = Prepare("SELECT k FROM big WHERE k = ?");
  auto cursor = query->Open();  // 0 params bound, 1 expected
  ASSERT_FALSE(cursor.ok());
  EXPECT_EQ(cursor.status().code(), StatusCode::kInvalidArgument);
  RunOptions run;
  run.params = {exec::ScalarValue::Int(42)};
  auto ok_cursor = query->Open(std::move(run));
  ASSERT_TRUE(ok_cursor.ok()) << ok_cursor.status().ToString();
  auto chunk = (*ok_cursor)->Next();
  ASSERT_TRUE(chunk.ok());
  ASSERT_TRUE(chunk->has_value());
  EXPECT_EQ((**chunk).num_rows(), 1);
}

// Fault injection (satellite: StatusOr error-path audit): a mid-stream
// executor error must surface through Next() as the *same* Status the
// materializing Run() returns — after the chunks that preceded the fault,
// never as a clean end-of-stream (silent truncation).
TEST_F(ResultCursorTest, MidStreamFaultMatchesRunStatus) {
  auto query = Prepare("SELECT k, v FROM big WHERE v > -200");
  const auto fault = [](int64_t morsel_index) {
    if (morsel_index == 5) {
      return Status::ExecutionError("injected fault at morsel 5");
    }
    return Status::OK();
  };

  RunOptions run;
  run.exec.morsel_rows = 64;
  run.inject_morsel_fault = fault;
  auto materialized = query->Run(run);
  ASSERT_FALSE(materialized.ok());

  RunOptions streamed;
  streamed.exec.morsel_rows = 64;
  streamed.inject_morsel_fault = fault;
  auto cursor = query->Open(std::move(streamed));
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  int64_t chunks_before_error = 0;
  Status stream_status = Status::OK();
  bool clean_end = false;
  while (true) {
    auto chunk = (*cursor)->Next();
    if (!chunk.ok()) {
      stream_status = chunk.status();
      break;
    }
    if (!chunk->has_value()) {
      clean_end = true;
      break;
    }
    ++chunks_before_error;
  }
  EXPECT_FALSE(clean_end) << "mid-stream fault read as end-of-stream";
  EXPECT_EQ(stream_status.code(), materialized.status().code());
  EXPECT_EQ(stream_status.message(), materialized.status().message());
  // The pre-fault chunks stream out before the error: incremental, and
  // capped at the fault's morsel index.
  EXPECT_LE(chunks_before_error, 5);
  // The error is sticky: re-polling must not turn it into end-of-stream.
  auto again = (*cursor)->Next();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().message(), materialized.status().message());
}

// Session::Sql must propagate a mid-run failure exactly like the cursor
// (shared StatusOr path through Prepare).
TEST_F(ResultCursorTest, SessionSqlPropagatesInjectedFault) {
  RunOptions run;
  run.exec.morsel_rows = 64;
  run.inject_morsel_fault = [](int64_t i) {
    return i == 3 ? Status::ExecutionError("boom") : Status::OK();
  };
  auto result =
      session_.Sql("SELECT k, v FROM big WHERE v > -200", QueryOptions{}, run);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
  EXPECT_EQ(result.status().message(), "boom");
}

}  // namespace
}  // namespace tdp
