// End-to-end DML coverage: CREATE TABLE / INSERT / UPDATE / DELETE through
// the full stack (lexer -> parser -> binder -> plan -> both executors),
// plus the write-adjacent serving contracts — per-table plan-cache
// freshness under DML, and exact top-k results while a vector index is
// stale or dropped by a write.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/exec/run_options.h"
#include "src/exec/value.h"
#include "src/runtime/session.h"
#include "src/storage/table.h"
#include "src/tensor/ops.h"
#include "tests/vector_test_util.h"

namespace tdp {
namespace {

using exec::RunOptions;
using exec::ScalarValue;

// Runs `sql` and returns the single rows_affected value; fails the test on
// any error. `streaming` selects the executor.
int64_t RowsAffected(Session& session, const std::string& sql,
                     bool streaming = true) {
  RunOptions run;
  run.exec.streaming = streaming;
  auto r = session.Sql(sql, {}, run);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  if (!r.ok()) return -1;
  EXPECT_EQ((*r)->num_rows(), 1);
  EXPECT_EQ((*r)->column_names()[0], "rows_affected");
  return static_cast<int64_t>((*r)->column(0).data().At({0}));
}

// All int64 values of column `c`, in table order.
std::vector<int64_t> IntColumn(const Table& t, int64_t c) {
  std::vector<int64_t> out;
  const Tensor data = t.column(c).data().Contiguous();
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    out.push_back(static_cast<int64_t>(data.At({i})));
  }
  return out;
}

TEST(DmlTest, CreateInsertSelectRoundTrip) {
  Session session;
  EXPECT_EQ(RowsAffected(session,
                         "CREATE TABLE items (id BIGINT, score DOUBLE, "
                         "name TEXT)"),
            0);
  EXPECT_EQ(RowsAffected(session,
                         "INSERT INTO items VALUES (1, 0.5, 'ale'), "
                         "(2, 1.5, 'bock'), (3, 2.5, 'cask')"),
            3);
  auto r = session.Sql("SELECT id, name FROM items WHERE score > 1.0 "
                       "ORDER BY id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 2);
  EXPECT_EQ(IntColumn(**r, 0), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ((*r)->column(1).DecodeStrings(),
            (std::vector<std::string>{"bock", "cask"}));
}

TEST(DmlTest, BothExecutorsRunEveryStatementKind) {
  for (const bool streaming : {true, false}) {
    SCOPED_TRACE(streaming ? "streaming" : "legacy");
    Session session;
    EXPECT_EQ(RowsAffected(session, "CREATE TABLE t (a INT, b INT)",
                           streaming),
              0);
    EXPECT_EQ(RowsAffected(session, "INSERT INTO t VALUES (1, 10), (2, 20)",
                           streaming),
              2);
    EXPECT_EQ(RowsAffected(session, "UPDATE t SET b = b + 1 WHERE a = 2",
                           streaming),
              1);
    EXPECT_EQ(RowsAffected(session, "DELETE FROM t WHERE a = 1", streaming),
              1);
    auto r = session.Sql("SELECT a, b FROM t");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(IntColumn(**r, 0), (std::vector<int64_t>{2}));
    EXPECT_EQ(IntColumn(**r, 1), (std::vector<int64_t>{21}));
  }
}

TEST(DmlTest, InsertHonorsColumnListReordering) {
  Session session;
  RowsAffected(session, "CREATE TABLE t (a INT, b INT, c TEXT)");
  EXPECT_EQ(RowsAffected(session,
                         "INSERT INTO t (c, a, b) VALUES ('x', 1, 2)"),
            1);
  auto r = session.Sql("SELECT a, b, c FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(IntColumn(**r, 0), (std::vector<int64_t>{1}));
  EXPECT_EQ(IntColumn(**r, 1), (std::vector<int64_t>{2}));
  EXPECT_EQ((*r)->column(2).DecodeStrings(),
            (std::vector<std::string>{"x"}));
}

TEST(DmlTest, UpdateEvaluatesAssignmentsOverOldRows) {
  Session session;
  RowsAffected(session, "CREATE TABLE t (a INT, b INT)");
  RowsAffected(session, "INSERT INTO t VALUES (1, 100), (2, 200)");
  // Standard SQL swap: both right-hand sides see the OLD row.
  EXPECT_EQ(RowsAffected(session, "UPDATE t SET a = b, b = a"), 2);
  auto r = session.Sql("SELECT a, b FROM t ORDER BY b");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(IntColumn(**r, 0), (std::vector<int64_t>{100, 200}));
  EXPECT_EQ(IntColumn(**r, 1), (std::vector<int64_t>{1, 2}));
}

TEST(DmlTest, DeleteWithoutWhereEmptiesTheTable) {
  Session session;
  RowsAffected(session, "CREATE TABLE t (a INT)");
  RowsAffected(session, "INSERT INTO t VALUES (1), (2), (3)");
  EXPECT_EQ(RowsAffected(session, "DELETE FROM t"), 3);
  auto r = session.Sql("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->column(0).data().At({0}), 0.0);
  // The emptied table accepts fresh rows.
  EXPECT_EQ(RowsAffected(session, "INSERT INTO t VALUES (7)"), 1);
  r = session.Sql("SELECT a FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(IntColumn(**r, 0), (std::vector<int64_t>{7}));
}

TEST(DmlTest, ParameterizedDmlBindsScalarsAndTensors) {
  Session session;
  RowsAffected(session, "CREATE TABLE t (id INT, emb TENSOR(3))");
  {
    auto r = session.Sql(
        "INSERT INTO t VALUES (?, ?)", {},
        testutil::WithParams(
            {ScalarValue::Int(42),
             ScalarValue::FromTensor(
                 Tensor::FromVector(std::vector<float>{1, 0, 0}))}));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ((*r)->column(0).data().At({0}), 1.0);
  }
  {
    auto r = session.Sql("DELETE FROM t WHERE id = ?", {},
                         testutil::WithParams({ScalarValue::Int(41)}));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ((*r)->column(0).data().At({0}), 0.0);
  }
  auto r = session.Sql("SELECT id FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(IntColumn(**r, 0), (std::vector<int64_t>{42}));
  // A wrong-shape tensor row is a TypeError, not a crash.
  auto bad = session.Sql(
      "INSERT INTO t VALUES (?, ?)", {},
      testutil::WithParams(
          {ScalarValue::Int(1),
           ScalarValue::FromTensor(
               Tensor::FromVector(std::vector<float>{1, 0}))}));
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
}

TEST(DmlTest, InsertFromSelectCopiesBetweenTables) {
  Session session;
  RowsAffected(session, "CREATE TABLE src (a INT, b TEXT)");
  RowsAffected(session, "CREATE TABLE dst (a INT, b TEXT)");
  RowsAffected(session,
               "INSERT INTO src VALUES (1, 'p'), (2, 'q'), (3, 'r')");
  EXPECT_EQ(RowsAffected(session,
                         "INSERT INTO dst SELECT a, b FROM src "
                         "WHERE a >= 2"),
            2);
  auto r = session.Sql("SELECT a, b FROM dst ORDER BY a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(IntColumn(**r, 0), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ((*r)->column(1).DecodeStrings(),
            (std::vector<std::string>{"q", "r"}));
}

TEST(DmlTest, StreamingCursorExecutesDml) {
  Session session;
  RowsAffected(session, "CREATE TABLE t (a INT)");
  auto cursor = session.Execute("INSERT INTO t VALUES (5), (6)");
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  auto chunk = (*cursor)->Next();
  ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
  ASSERT_TRUE(chunk->has_value());
  EXPECT_EQ((**chunk).columns[0].data().At({0}), 2.0);
  auto r = session.Sql("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->column(0).data().At({0}), 2.0);
}

TEST(DmlTest, ErrorsComeBackAsStatusesNotCrashes) {
  Session session;
  RowsAffected(session, "CREATE TABLE t (a INT, b TEXT)");

  // Duplicate CREATE TABLE.
  auto dup = session.Sql("CREATE TABLE t (x INT)");
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);

  // Unknown declared type is a bind error (type names are identifiers).
  auto bad_type = session.Sql("CREATE TABLE u (x FROBNICATE)");
  EXPECT_EQ(bad_type.status().code(), StatusCode::kBindError);

  // Unknown target table.
  auto no_table = session.Sql("INSERT INTO nope VALUES (1)");
  EXPECT_EQ(no_table.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(session.Sql("UPDATE nope SET a = 1").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session.Sql("DELETE FROM nope").status().code(),
            StatusCode::kNotFound);

  // Arity mismatches: partial column lists are rejected (no defaults),
  // and VALUES row width must match the column list.
  EXPECT_EQ(session.Sql("INSERT INTO t (a) VALUES (1)").status().code(),
            StatusCode::kBindError);
  EXPECT_EQ(session.Sql("INSERT INTO t VALUES (1)").status().code(),
            StatusCode::kBindError);
  EXPECT_EQ(
      session.Sql("INSERT INTO t (a, a) VALUES (1, 2)").status().code(),
      StatusCode::kBindError);

  // Unknown assignment / value-type mismatches.
  EXPECT_EQ(session.Sql("UPDATE t SET zz = 1").status().code(),
            StatusCode::kBindError);
  EXPECT_EQ(
      session.Sql("INSERT INTO t VALUES (1, 2)").status().code(),
      StatusCode::kTypeError);  // int into TEXT column

  // Aggregates make no sense in DML expressions.
  EXPECT_EQ(session.Sql("UPDATE t SET a = COUNT(*)").status().code(),
            StatusCode::kBindError);
  EXPECT_EQ(session.Sql("DELETE FROM t WHERE SUM(a) > 1").status().code(),
            StatusCode::kBindError);

  // Malformed syntax is a parse error.
  EXPECT_EQ(session.Sql("INSERT t VALUES (1, 'x')").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(session.Sql("CREATE TABLE ()").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(session.Sql("UPDATE t").status().code(),
            StatusCode::kParseError);

  // None of the failures wrote anything.
  auto r = session.Sql("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->column(0).data().At({0}), 0.0);
}

TEST(DmlTest, ExplainRendersDmlPlans) {
  Session session;
  RowsAffected(session, "CREATE TABLE t (a INT)");
  RowsAffected(session, "INSERT INTO t VALUES (1)");
  auto insert = session.Explain("INSERT INTO t VALUES (2)");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  EXPECT_NE(insert->find("Insert"), std::string::npos);
  auto update = session.Explain("UPDATE t SET a = 3 WHERE a = 1");
  ASSERT_TRUE(update.ok());
  EXPECT_NE(update->find("Update"), std::string::npos);
  EXPECT_NE(update->find("Scan"), std::string::npos);
  auto del = session.Explain("DELETE FROM t WHERE a = 1");
  ASSERT_TRUE(del.ok());
  EXPECT_NE(del->find("Delete"), std::string::npos);
}

TEST(DmlTest, TypeNamesRemainUsableAsColumnNames) {
  // INT / TEXT / DOUBLE are not keywords: columns by those names keep
  // working in every clause.
  Session session;
  RowsAffected(session, "CREATE TABLE odd (text INT, double INT)");
  EXPECT_EQ(RowsAffected(session, "INSERT INTO odd VALUES (1, 2)"), 1);
  EXPECT_EQ(RowsAffected(session,
                         "UPDATE odd SET double = text + 10 WHERE text = 1"),
            1);
  auto r = session.Sql("SELECT double FROM odd");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(IntColumn(**r, 0), (std::vector<int64_t>{11}));
}

// ---- Plan-cache contract under writes --------------------------------------

TEST(DmlTest, DmlOnOneTableLeavesOtherTablesPlansCached) {
  Session session;
  RowsAffected(session, "CREATE TABLE t (a INT)");
  RowsAffected(session, "CREATE TABLE u (b INT)");
  RowsAffected(session, "INSERT INTO u VALUES (1), (2)");

  // Warm a plan over u, then confirm it hits.
  ASSERT_TRUE(session.Sql("SELECT b FROM u ORDER BY b").ok());
  ASSERT_TRUE(session.Sql("SELECT b FROM u ORDER BY b").ok());
  const PlanCacheStats warm = session.plan_cache_stats();
  EXPECT_GE(warm.hits, 1u);

  // A burst of DML against t must not disturb plans over u — and must not
  // evict the DML statements' own cached plans either.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(session.Sql("INSERT INTO t VALUES (1)").ok());
    ASSERT_TRUE(session.Sql("DELETE FROM t WHERE a = 1").ok());
  }
  const PlanCacheStats after_dml = session.plan_cache_stats();
  EXPECT_EQ(after_dml.invalidations, warm.invalidations);

  auto r = session.Sql("SELECT b FROM u ORDER BY b");
  ASSERT_TRUE(r.ok());
  const PlanCacheStats reread = session.plan_cache_stats();
  EXPECT_EQ(reread.hits, after_dml.hits + 1);
  EXPECT_EQ(reread.misses, after_dml.misses);

  // DML on t leaves even plans over t cached: they re-resolve the table
  // at run time. The second INSERT above was already a hit.
  EXPECT_GE(after_dml.hits, warm.hits + 8);  // 4 insert hits + 4 delete hits

  // DDL, by contrast, does invalidate: re-registering u drops u's plans.
  ASSERT_TRUE(session
                  .RegisterTable(
                      "u", *Table::Create(
                               "u", {"b"},
                               {Column::Plain(Tensor::FromVector(
                                   std::vector<int64_t>{9}))}))
                  .ok());
  ASSERT_TRUE(session.Sql("SELECT b FROM u ORDER BY b").ok());
  const PlanCacheStats post_ddl = session.plan_cache_stats();
  EXPECT_EQ(post_ddl.invalidations, reread.invalidations + 1);
}

// ---- Vector indexes under writes -------------------------------------------

TEST(DmlTest, TopKStaysExactAcrossDmlOnIndexedTable) {
  Session session;
  Rng rng(77);
  const int64_t dim = 8;
  Tensor data = testutil::MakeClusteredUnitVectors(256, dim, 4, rng);
  ASSERT_TRUE(session
                  .RegisterTable(
                      "docs", *Table::Create(
                                  "docs", {"emb"},
                                  {Column::Plain(std::move(data))}))
                  .ok());
  index::IvfIndex::Options opt;
  opt.num_lists = 8;
  ASSERT_TRUE(session.CreateVectorIndex("docs", "emb", opt).ok());

  const std::string topk =
      "SELECT emb, dot(emb, ?) AS score FROM docs "
      "ORDER BY score DESC LIMIT 5";
  auto plan = session.Explain(topk);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexTopK"), std::string::npos);

  const Tensor query = testutil::MakeUnitQuery(dim, rng);
  const std::vector<ScalarValue> params = {ScalarValue::FromTensor(query)};

  // Brute-force oracle: the same statement with the plan cache disabled
  // on a session whose table has no index.
  auto Oracle = [&](Session& s) {
    auto r = s.Sql(topk, {}, testutil::WithParams(params));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  };

  // Mutate through every DML path: appends extend the index in place;
  // deletes keep it with bitmap filtering; the update drops it (indexed
  // column assigned) and the query must fall back to the exact plan.
  {
    auto del = session.Sql("DELETE FROM docs WHERE dot(emb, ?) < 0", {},
                           testutil::WithParams(params));
    ASSERT_TRUE(del.ok()) << del.status().ToString();
  }
  for (int i = 0; i < 3; ++i) {
    auto ins = session.Sql(
        "INSERT INTO docs VALUES (?)", {},
        testutil::WithParams(
            {ScalarValue::FromTensor(testutil::MakeUnitQuery(dim, rng))}));
    ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  }

  Session reference;
  {
    auto docs = session.catalog().GetTable("docs");
    ASSERT_TRUE(docs.ok());
    ASSERT_TRUE(reference.RegisterTable("docs", (*docs)->To(Device::kCpu)).ok());
  }
  testutil::ExpectTablesBitIdentical(*Oracle(session), *Oracle(reference),
                                     "post insert+delete");

  // Assigning the indexed column invalidates the index; results stay
  // exact through the fallback.
  {
    auto up = session.Sql(
        "UPDATE docs SET emb = ? WHERE dot(emb, ?) > 0.99", {},
        testutil::WithParams(
            {ScalarValue::FromTensor(testutil::MakeUnitQuery(dim, rng)),
             ScalarValue::FromTensor(query)}));
    ASSERT_TRUE(up.ok()) << up.status().ToString();
  }
  Session reference2;
  {
    auto docs = session.catalog().GetTable("docs");
    ASSERT_TRUE(docs.ok());
    ASSERT_TRUE(reference2.RegisterTable("docs", (*docs)->To(Device::kCpu)).ok());
  }
  testutil::ExpectTablesBitIdentical(*Oracle(session), *Oracle(reference2),
                                     "post update fallback");
}

}  // namespace
}  // namespace tdp
