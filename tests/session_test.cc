#include "src/runtime/session.h"

#include <gtest/gtest.h>

#include "src/models/tvfs.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

TEST(SessionTest, RegisterTensorCreatesSingleColumnTable) {
  Session session;
  ASSERT_TRUE(session
                  .RegisterTensor("nums",
                                  Tensor::FromVector(
                                      std::vector<float>{3, 1, 2}))
                  .ok());
  auto r = session.Sql("SELECT value FROM nums ORDER BY value");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->column(0).data().At({0}), 1.0);
  EXPECT_FALSE(session.RegisterTensor("bad", Tensor()).ok());
}

TEST(SessionTest, RegisterTensorSupportsMultiDim) {
  Session session;
  ASSERT_TRUE(
      session.RegisterTensor("grids", Tensor::Zeros({4, 1, 6, 6})).ok());
  auto r = session.Sql("SELECT COUNT(*) FROM grids");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->column(0).data().At({0}), 4.0);
}

TEST(SessionTest, QueryOptionsSelectDevice) {
  Session session;
  ASSERT_TRUE(session
                  .RegisterTensor("t", Tensor::FromVector(
                                           std::vector<float>{1, 2}))
                  .ok());
  QueryOptions cpu;
  cpu.device = Device::kCpu;
  auto query = session.Query("SELECT value + 1 FROM t", cpu);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ((*query)->device(), Device::kCpu);
  auto chunk = (*query)->RunChunk();
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->columns[0].data().device(), Device::kCpu);
}

TEST(SessionTest, NonTrainableQueryHasNoParameters) {
  Session session;
  ASSERT_TRUE(session
                  .RegisterTensor("t", Tensor::FromVector(
                                           std::vector<float>{1, 2}))
                  .ok());
  auto query = session.Query("SELECT value FROM t");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE((*query)->trainable());
  EXPECT_TRUE((*query)->Parameters().empty());
  EXPECT_TRUE((*query)->Modules().empty());
}

TEST(SessionTest, TrainableQuerySurfacesTvfModules) {
  Session session;
  Rng rng(1);
  auto tvf = models::RegisterClassifyIncomesTvf(session.functions(), 6, rng);
  ASSERT_TRUE(tvf.ok());
  ASSERT_TRUE(
      session.RegisterTensor("bags", Tensor::Zeros({8, 6})).ok());
  QueryOptions options;
  options.trainable = true;
  auto query = session.Query(
      "SELECT Income, COUNT(*) FROM classify_incomes(bags) GROUP BY Income",
      options);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ((*query)->Modules().size(), 1u);
  // Linear(6 -> 2) with bias: 14 scalars.
  int64_t total = 0;
  for (const Tensor& p : (*query)->Parameters()) total += p.numel();
  EXPECT_EQ(total, 14);
}

TEST(SessionTest, ExplainMentionsTvfAndAggregate) {
  Session session;
  Rng rng(2);
  auto tvf = models::RegisterClassifyIncomesTvf(session.functions(), 6, rng);
  ASSERT_TRUE(tvf.ok());
  ASSERT_TRUE(session.RegisterTensor("bags", Tensor::Zeros({8, 6})).ok());
  auto plan = session.Explain(
      "SELECT Income, COUNT(*) FROM classify_incomes(bags) GROUP BY Income");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("TvfScan(classify_incomes)"), std::string::npos)
      << *plan;
  EXPECT_NE(plan->find("Aggregate"), std::string::npos);
}

TEST(SessionTest, TvfOverMissingTableIsBindError) {
  Session session;
  Rng rng(3);
  auto tvf = models::RegisterClassifyIncomesTvf(session.functions(), 6, rng);
  ASSERT_TRUE(tvf.ok());
  auto r = session.Sql("SELECT Income FROM classify_incomes(missing)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SessionTest, UnknownTvfIsBindError) {
  Session session;
  ASSERT_TRUE(session.RegisterTensor("t", Tensor::Zeros({2})).ok());
  auto r = session.Sql("SELECT x FROM not_a_tvf(t)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST(SessionTest, CompiledQueriesSurviveTableDrop) {
  Session session;
  ASSERT_TRUE(session.RegisterTensor("t", Tensor::Zeros({2})).ok());
  auto query = session.Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(session.catalog().DropTable("t").ok());
  // Run after drop: a clean execution error, not a crash.
  auto r = (*query)->Run();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  // Re-register and the query works again.
  ASSERT_TRUE(session.RegisterTensor("t", Tensor::Zeros({5})).ok());
  auto again = (*query)->Run();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->column(0).data().At({0}), 5.0);
}

TEST(SessionTest, ConvBackendParity) {
  // Conv2d must agree across kernel backends (direct vs im2col+GEMM).
  Rng rng(4);
  Tensor input = RandNormal({2, 3, 9, 9}, 0, 1, rng);
  Tensor weight = RandNormal({4, 3, 3, 3}, 0, 0.3, rng);
  Tensor bias = RandNormal({4}, 0, 0.1, rng);
  Tensor cpu = Conv2d(input, weight, bias, 1, 1);
  Tensor accel = Conv2d(input.To(Device::kAccel), weight.To(Device::kAccel),
                        bias.To(Device::kAccel), 1, 1);
  EXPECT_TRUE(AllClose(cpu, accel.To(Device::kCpu), 1e-4, 1e-4));
}

}  // namespace
}  // namespace tdp
