#include "src/runtime/session.h"

#include <gtest/gtest.h>

#include "src/models/tvfs.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

TEST(SessionTest, RegisterTensorCreatesSingleColumnTable) {
  Session session;
  ASSERT_TRUE(session
                  .RegisterTensor("nums",
                                  Tensor::FromVector(
                                      std::vector<float>{3, 1, 2}))
                  .ok());
  auto r = session.Sql("SELECT value FROM nums ORDER BY value");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->column(0).data().At({0}), 1.0);
  EXPECT_FALSE(session.RegisterTensor("bad", Tensor()).ok());
}

TEST(SessionTest, RegisterTensorSupportsMultiDim) {
  Session session;
  ASSERT_TRUE(
      session.RegisterTensor("grids", Tensor::Zeros({4, 1, 6, 6})).ok());
  auto r = session.Sql("SELECT COUNT(*) FROM grids");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->column(0).data().At({0}), 4.0);
}

TEST(SessionTest, QueryOptionsSelectDevice) {
  Session session;
  ASSERT_TRUE(session
                  .RegisterTensor("t", Tensor::FromVector(
                                           std::vector<float>{1, 2}))
                  .ok());
  QueryOptions cpu;
  cpu.device = Device::kCpu;
  auto query = session.Query("SELECT value + 1 FROM t", cpu);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ((*query)->device(), Device::kCpu);
  auto chunk = (*query)->RunChunk();
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->columns[0].data().device(), Device::kCpu);
}

TEST(SessionTest, NonTrainableQueryHasNoParameters) {
  Session session;
  ASSERT_TRUE(session
                  .RegisterTensor("t", Tensor::FromVector(
                                           std::vector<float>{1, 2}))
                  .ok());
  auto query = session.Query("SELECT value FROM t");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE((*query)->trainable());
  EXPECT_TRUE((*query)->Parameters().empty());
  EXPECT_TRUE((*query)->Modules().empty());
}

TEST(SessionTest, TrainableQuerySurfacesTvfModules) {
  Session session;
  Rng rng(1);
  auto tvf = models::RegisterClassifyIncomesTvf(session.functions(), 6, rng);
  ASSERT_TRUE(tvf.ok());
  ASSERT_TRUE(
      session.RegisterTensor("bags", Tensor::Zeros({8, 6})).ok());
  QueryOptions options;
  options.trainable = true;
  auto query = session.Query(
      "SELECT Income, COUNT(*) FROM classify_incomes(bags) GROUP BY Income",
      options);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ((*query)->Modules().size(), 1u);
  // Linear(6 -> 2) with bias: 14 scalars.
  int64_t total = 0;
  for (const Tensor& p : (*query)->Parameters()) total += p.numel();
  EXPECT_EQ(total, 14);
}

TEST(SessionTest, ExplainMentionsTvfAndAggregate) {
  Session session;
  Rng rng(2);
  auto tvf = models::RegisterClassifyIncomesTvf(session.functions(), 6, rng);
  ASSERT_TRUE(tvf.ok());
  ASSERT_TRUE(session.RegisterTensor("bags", Tensor::Zeros({8, 6})).ok());
  auto plan = session.Explain(
      "SELECT Income, COUNT(*) FROM classify_incomes(bags) GROUP BY Income");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("TvfScan(classify_incomes)"), std::string::npos)
      << *plan;
  EXPECT_NE(plan->find("Aggregate"), std::string::npos);
}

TEST(SessionTest, TvfOverMissingTableIsBindError) {
  Session session;
  Rng rng(3);
  auto tvf = models::RegisterClassifyIncomesTvf(session.functions(), 6, rng);
  ASSERT_TRUE(tvf.ok());
  auto r = session.Sql("SELECT Income FROM classify_incomes(missing)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SessionTest, UnknownTvfIsBindError) {
  Session session;
  ASSERT_TRUE(session.RegisterTensor("t", Tensor::Zeros({2})).ok());
  auto r = session.Sql("SELECT x FROM not_a_tvf(t)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST(SessionTest, CompiledQueriesSurviveTableDrop) {
  Session session;
  ASSERT_TRUE(session.RegisterTensor("t", Tensor::Zeros({2})).ok());
  auto query = session.Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(session.catalog().DropTable("t").ok());
  // Run after drop: a clean execution error, not a crash.
  auto r = (*query)->Run();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  // Re-register and the query works again.
  ASSERT_TRUE(session.RegisterTensor("t", Tensor::Zeros({5})).ok());
  auto again = (*query)->Run();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->column(0).data().At({0}), 5.0);
}

TEST(SessionTest, ParameterizedQueryMatchesFreshCompiles) {
  Session session;
  auto sales = TableBuilder("sales")
                   .AddInt64("id", {1, 2, 3, 4})
                   .AddFloat32("amount", {10, 20, 30, 40})
                   .Build();
  ASSERT_TRUE(session.RegisterTable("sales", sales.value()).ok());

  auto prepared =
      session.Prepare("SELECT SUM(amount) FROM sales WHERE id >= ?");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ((*prepared)->num_params(), 1);

  // The same plan, re-run with different bindings, must agree with a
  // fresh compile of the literal-inlined statement.
  for (int64_t cut = 1; cut <= 5; ++cut) {
    auto with_param = (*prepared)->Run({exec::ScalarValue::Int(cut)});
    ASSERT_TRUE(with_param.ok()) << with_param.status().ToString();
    auto fresh = session.Query("SELECT SUM(amount) FROM sales WHERE id >= " +
                               std::to_string(cut));
    ASSERT_TRUE(fresh.ok());
    auto fresh_result = (*fresh)->Run();
    ASSERT_TRUE(fresh_result.ok());
    EXPECT_EQ((*with_param)->column(0).data().At({0}),
              (*fresh_result)->column(0).data().At({0}))
        << "cut=" << cut;
  }
}

TEST(SessionTest, ParametersWorkInSelectListAndCompoundPredicates) {
  Session session;
  ASSERT_TRUE(session
                  .RegisterTensor("nums", Tensor::FromVector(
                                              std::vector<float>{1, 2, 3}))
                  .ok());
  auto q = session.Prepare(
      "SELECT value * ? FROM nums WHERE value BETWEEN ? AND ?");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->num_params(), 3);
  auto r = (*q)->Run({exec::ScalarValue::Float(10.0),
                      exec::ScalarValue::Int(2), exec::ScalarValue::Int(3)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 2);
  EXPECT_FLOAT_EQ(static_cast<float>((*r)->column(0).data().At({0})), 20.0f);
  EXPECT_FLOAT_EQ(static_cast<float>((*r)->column(0).data().At({1})), 30.0f);
}

TEST(SessionTest, IntegerParametersInAggregatesKeepPrecision) {
  Session session;
  ASSERT_TRUE(session
                  .RegisterTensor("nums", Tensor::FromVector(
                                              std::vector<float>{1, 2, 3}))
                  .ok());
  // 2^24 + 1 is not representable in float32; the parameter's column must
  // be wide enough that the prepared run matches the literal-inlined one.
  const int64_t big = (int64_t{1} << 24) + 1;
  auto q = session.Prepare("SELECT MAX(?) FROM nums");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto prepared = (*q)->Run({exec::ScalarValue::Int(big)});
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto fresh = session.Sql("SELECT MAX(" + std::to_string(big) +
                           ") FROM nums");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*prepared)->column(0).data().At({0}),
            (*fresh)->column(0).data().At({0}));
  EXPECT_EQ((*prepared)->column(0).data().At({0}),
            static_cast<double>(big));
}

TEST(SessionTest, ParameterCountMismatchIsAnError) {
  Session session;
  ASSERT_TRUE(session
                  .RegisterTensor("nums",
                                  Tensor::FromVector(std::vector<float>{1}))
                  .ok());
  auto q = session.Prepare("SELECT value FROM nums WHERE value > ?");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE((*q)->Run().ok());                             // 0 of 1
  EXPECT_FALSE((*q)->Run({exec::ScalarValue::Int(1),
                          exec::ScalarValue::Int(2)}).ok());  // 2 of 1
  auto no_params = session.Prepare("SELECT value FROM nums");
  ASSERT_TRUE(no_params.ok());
  EXPECT_EQ((*no_params)->num_params(), 0);
  EXPECT_FALSE((*no_params)->Run({exec::ScalarValue::Int(1)}).ok());
}

TEST(SessionTest, PlanCacheHitsOnRepeatAndNormalizedText) {
  Session session;
  ASSERT_TRUE(session
                  .RegisterTensor("nums", Tensor::FromVector(
                                              std::vector<float>{1, 2, 3}))
                  .ok());
  auto first = session.Prepare("SELECT COUNT(*) FROM nums");
  ASSERT_TRUE(first.ok());
  // Identical modulo case/whitespace: one plan, shared instance.
  auto second = session.Prepare("select   count(*)\n FROM  nums");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());
  // String literals stay case-sensitive in the cache key.
  auto third = session.Prepare("SELECT COUNT(*) FROM nums WHERE 'a' = 'a'");
  ASSERT_TRUE(third.ok());
  EXPECT_NE(first->get(), third->get());

  const PlanCacheStats stats = session.plan_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.size, 2u);
}

// Per-run executor/morsel options are not plan state, so they are not in
// the cache key: clients with different morsel sizes (or executors) share
// ONE cached plan and run it concurrently with their own RunOptions.
TEST(SessionTest, OneCachedPlanServesAllRunOptions) {
  Session session;
  ASSERT_TRUE(session
                  .RegisterTensor("nums", Tensor::FromVector(
                                              std::vector<float>{1, 2, 3}))
                  .ok());
  const std::string sql = "SELECT value FROM nums WHERE value > 0";
  auto first = session.Prepare(sql);
  ASSERT_TRUE(first.ok());
  auto second = session.Prepare(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ(session.plan_cache_stats().hits, 1u);
  EXPECT_EQ(session.plan_cache_stats().size, 1u);

  exec::RunOptions tiny;
  tiny.exec.morsel_rows = 1;
  exec::RunOptions legacy;
  legacy.exec.streaming = false;
  auto a = (*first)->Run(tiny);
  auto b = (*second)->Run(legacy);
  auto c = (*second)->Run();  // defaults
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*a)->num_rows(), 3);
  EXPECT_EQ((*b)->num_rows(), 3);
  EXPECT_EQ((*c)->num_rows(), 3);
  // Still one plan, no extra compilation happened for the option spread.
  EXPECT_EQ(session.plan_cache_stats().size, 1u);
  EXPECT_EQ(session.plan_cache_stats().misses, 1u);
}

// EXPLAIN is an inspection tool: it must read through the plan cache
// without perturbing it — no insert (ad-hoc EXPLAINs would evict hot
// serving plans), no LRU reorder, no stats movement.
TEST(SessionTest, ExplainDoesNotTouchThePlanCache) {
  Session session;
  ASSERT_TRUE(session
                  .RegisterTensor("nums", Tensor::FromVector(
                                              std::vector<float>{1, 2, 3}))
                  .ok());
  session.set_plan_cache_capacity(2);
  ASSERT_TRUE(session.Prepare("SELECT value FROM nums").ok());      // A
  ASSERT_TRUE(session.Prepare("SELECT value + 1 FROM nums").ok());  // B
  const PlanCacheStats before = session.plan_cache_stats();

  // EXPLAINs of uncached statements: compiled outside the cache, no
  // insert, no eviction of A/B.
  for (int i = 2; i < 6; ++i) {
    auto plan = session.Explain("SELECT value + " + std::to_string(i) +
                                " FROM nums");
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_NE(plan->find("Project"), std::string::npos);
  }
  // EXPLAIN of a cached statement: served from the cache, still no stats
  // movement and no LRU reorder.
  ASSERT_TRUE(session.Explain("SELECT value FROM nums").ok());

  const PlanCacheStats after = session.plan_cache_stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.evictions, before.evictions);
  EXPECT_EQ(after.invalidations, before.invalidations);
  EXPECT_EQ(after.size, before.size);

  // A and B are both still cached (the EXPLAIN burst evicted nothing).
  ASSERT_TRUE(session.Prepare("SELECT value FROM nums").ok());
  ASSERT_TRUE(session.Prepare("SELECT value + 1 FROM nums").ok());
  EXPECT_EQ(session.plan_cache_stats().hits, before.hits + 2);
  EXPECT_EQ(session.plan_cache_stats().evictions, 0u);
}

TEST(SessionTest, PlanCacheEvictsLeastRecentlyUsed) {
  Session session;
  ASSERT_TRUE(session
                  .RegisterTensor("nums", Tensor::FromVector(
                                              std::vector<float>{1, 2, 3}))
                  .ok());
  session.set_plan_cache_capacity(2);
  ASSERT_TRUE(session.Prepare("SELECT value FROM nums").ok());        // A
  ASSERT_TRUE(session.Prepare("SELECT value + 1 FROM nums").ok());    // B
  ASSERT_TRUE(session.Prepare("SELECT value FROM nums").ok());        // hit A
  ASSERT_TRUE(session.Prepare("SELECT value + 2 FROM nums").ok());    // evict B
  const PlanCacheStats stats = session.plan_cache_stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.hits, 1u);
  // Device is part of the key: same text, different target, new plan.
  QueryOptions cpu;
  cpu.device = Device::kCpu;
  auto accel = session.Prepare("SELECT value FROM nums");
  auto on_cpu = session.Prepare("SELECT value FROM nums", cpu);
  ASSERT_TRUE(accel.ok());
  ASSERT_TRUE(on_cpu.ok());
  EXPECT_NE(accel->get(), on_cpu->get());
}

TEST(SessionTest, HeldQueryFailsLoudlyWhenTableColumnsReorder) {
  Session session;
  auto t = TableBuilder("t")
               .AddInt64("a", {1, 2, 3})
               .AddInt64("b", {10, 20, 30})
               .Build();
  ASSERT_TRUE(session.RegisterTable("t", t.value()).ok());
  auto query = session.Prepare("SELECT a, b FROM t");
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE((*query)->Run().ok());

  // Re-register with columns swapped: the held plan reads by position and
  // must fail with a re-compile error instead of returning b's data as a.
  auto swapped = TableBuilder("t")
                     .AddInt64("b", {10, 20, 30})
                     .AddInt64("a", {1, 2, 3})
                     .Build();
  ASSERT_TRUE(session.RegisterTable("t", swapped.value()).ok());
  auto stale = (*query)->Run();
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kExecutionError);
  // A fresh Prepare (catalog version moved, cache invalidated) is correct.
  auto fresh = session.Sql("SELECT a, b FROM t");
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ((*fresh)->column(0).data().At({0}), 1.0);
  EXPECT_EQ((*fresh)->column(1).data().At({0}), 10.0);
}

TEST(SessionTest, TrainableQueriesBypassThePlanCache) {
  Session session;
  Rng rng(5);
  auto tvf = models::RegisterClassifyIncomesTvf(session.functions(), 6, rng);
  ASSERT_TRUE(tvf.ok());
  ASSERT_TRUE(session.RegisterTensor("bags", Tensor::Zeros({8, 6})).ok());
  QueryOptions options;
  options.trainable = true;
  const std::string sql =
      "SELECT Income, COUNT(*) FROM classify_incomes(bags) GROUP BY Income";
  auto a = session.Prepare(sql, options);
  auto b = session.Prepare(sql, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->get(), b->get());  // each trainable compile is private
}

TEST(SessionTest, ConvBackendParity) {
  // Conv2d must agree across kernel backends (direct vs im2col+GEMM).
  Rng rng(4);
  Tensor input = RandNormal({2, 3, 9, 9}, 0, 1, rng);
  Tensor weight = RandNormal({4, 3, 3, 3}, 0, 0.3, rng);
  Tensor bias = RandNormal({4}, 0, 0.1, rng);
  Tensor cpu = Conv2d(input, weight, bias, 1, 1);
  Tensor accel = Conv2d(input.To(Device::kAccel), weight.To(Device::kAccel),
                        bias.To(Device::kAccel), 1, 1);
  EXPECT_TRUE(AllClose(cpu, accel.To(Device::kCpu), 1e-4, 1e-4));
}

}  // namespace
}  // namespace tdp
