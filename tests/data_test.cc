#include <gtest/gtest.h>

#include <set>

#include "src/data/adult.h"
#include "src/data/attachments.h"
#include "src/data/digits.h"
#include "src/data/documents.h"
#include "src/data/mnist_grid.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace data {
namespace {

TEST(DigitsTest, TilesAreNormalizedAndVaried) {
  Rng rng(1);
  Tensor a = RenderDigitTile(3, true, rng);
  Tensor b = RenderDigitTile(3, true, rng);
  EXPECT_EQ(a.shape(), (std::vector<int64_t>{1, kTileSize, kTileSize}));
  EXPECT_LE(MaxAll(a).item<float>(), 1.0f);
  EXPECT_GE(MinAll(a).item<float>(), 0.0f);
  // Jitter/noise: two renders of the same digit differ.
  EXPECT_FALSE(TensorEqual(a, b));
  // Ink present.
  EXPECT_GT(Sum(a).item<float>(), 2.0f);
}

TEST(DigitsTest, DatasetIsBalancedEnough) {
  Rng rng(2);
  DigitDataset ds = MakeDigitDataset(600, rng);
  std::vector<int> per_digit(10, 0);
  for (int64_t i = 0; i < 600; ++i) {
    per_digit[static_cast<size_t>(ds.labels.At({i}))]++;
  }
  for (int d = 0; d < 10; ++d) {
    EXPECT_GT(per_digit[static_cast<size_t>(d)], 25) << "digit " << d;
  }
}

TEST(MnistGridTest, CountsMatchTileLabels) {
  Rng rng(3);
  MnistGridDataset ds = MakeMnistGridDataset(10, rng);
  for (int64_t i = 0; i < 10; ++i) {
    // Recompute counts from tile labels.
    std::vector<float> expected(kNumCountBuckets, 0);
    for (int64_t t = 0; t < 9; ++t) {
      const int64_t d = static_cast<int64_t>(ds.tile_labels.At({i, t}));
      const int64_t s = static_cast<int64_t>(ds.tile_sizes.At({i, t}));
      expected[static_cast<size_t>(d * 2 + s)] += 1;
    }
    for (int64_t b = 0; b < kNumCountBuckets; ++b) {
      EXPECT_EQ(ds.counts.At({i, b}), expected[static_cast<size_t>(b)]);
    }
    // Counts per grid sum to 9 tiles.
    EXPECT_EQ(Sum(Slice(ds.counts, 0, i, 1)).item<float>(), 9.0f);
  }
}

TEST(MnistGridTest, GridToTilesMatchesEinopsLayout) {
  Rng rng(4);
  MnistGridDataset ds = MakeMnistGridDataset(2, rng);
  Tensor tiles = GridToTiles(ds.grids);
  EXPECT_EQ(tiles.shape(),
            (std::vector<int64_t>{18, 1, kTileSize, kTileSize}));
  // Tile (grid 1, row 2, col 0) must equal the corresponding grid region.
  const int64_t tile_index = 1 * 9 + 2 * 3 + 0;
  for (int64_t y = 0; y < kTileSize; ++y) {
    for (int64_t x = 0; x < kTileSize; ++x) {
      EXPECT_EQ(tiles.At({tile_index, 0, y, x}),
                ds.grids.At({1, 0, 2 * kTileSize + y, 0 * kTileSize + x}));
    }
  }
}

TEST(AdultTest, LabelsCorrelateWithFeaturesButNoisily) {
  Rng rng(5);
  AdultDataset ds = MakeAdultDataset(2000, rng);
  EXPECT_EQ(ds.features.shape(), (std::vector<int64_t>{2000, 6}));
  // Class balance: positives are a nontrivial minority/majority.
  int64_t positives = 0;
  for (int64_t i = 0; i < 2000; ++i) {
    positives += static_cast<int64_t>(ds.labels.At({i}));
  }
  EXPECT_GT(positives, 300);
  EXPECT_LT(positives, 1700);
}

TEST(AdultTest, BagsPartitionAndCount) {
  Rng rng(6);
  AdultDataset ds = MakeAdultDataset(128, rng);
  LlpBags bags = MakeBags(ds, 16, /*laplace_scale=*/0.0, rng);
  EXPECT_EQ(bags.bag_features.size(), 8u);
  // Counts per bag sum to the bag size.
  for (int64_t b = 0; b < 8; ++b) {
    EXPECT_FLOAT_EQ(static_cast<float>(bags.counts.At({b, 0}) +
                                       bags.counts.At({b, 1})),
                    16.0f);
  }
  // Total positives across bags equals dataset positives.
  double bag_positives = 0;
  for (int64_t b = 0; b < 8; ++b) bag_positives += bags.counts.At({b, 1});
  double data_positives = 0;
  for (int64_t i = 0; i < 128; ++i) data_positives += ds.labels.At({i});
  EXPECT_DOUBLE_EQ(bag_positives, data_positives);
}

TEST(AdultTest, LaplaceNoiseChangesCounts) {
  Rng rng(7);
  AdultDataset ds = MakeAdultDataset(64, rng);
  Rng rng_a(1), rng_b(1);
  LlpBags clean = MakeBags(ds, 8, 0.0, rng_a);
  LlpBags noisy = MakeBags(ds, 8, /*laplace_scale=*/10.0, rng_b);
  // Same partition (same rng seed), different counts due to noise.
  double diff = 0;
  for (int64_t b = 0; b < clean.counts.size(0); ++b) {
    diff += std::abs(clean.counts.At({b, 0}) - noisy.counts.At({b, 0}));
  }
  EXPECT_GT(diff, 1.0);
}

TEST(AttachmentsTest, CorpusShapeAndClasses) {
  Rng rng(8);
  AttachmentDataset ds = MakeAttachmentDataset(20, 10, 10, rng);
  EXPECT_EQ(ds.images.shape(), (std::vector<int64_t>{40, 3, 32, 32}));
  EXPECT_EQ(ds.concepts.size(), 40u);
  EXPECT_EQ(ds.filenames.size(), 40u);
  int photos = 0, receipts = 0, logos = 0;
  for (Concept c : ds.concepts) {
    if (IsPhotograph(c)) ++photos;
    if (IsReceipt(c)) ++receipts;
    if (IsLogo(c)) ++logos;
  }
  EXPECT_EQ(photos, 20);
  EXPECT_EQ(receipts, 10);
  EXPECT_EQ(logos, 10);
}

TEST(DocumentsTest, ValuesInRangeAndTimestampsUnique) {
  Rng rng(9);
  DocumentDataset ds = MakeDocumentDataset(30, rng);
  EXPECT_EQ(ds.images.shape(),
            (std::vector<int64_t>{30, 1, kDocHeight, kDocWidth}));
  std::set<std::string> stamps(ds.timestamps.begin(), ds.timestamps.end());
  EXPECT_EQ(stamps.size(), 30u);
  EXPECT_GE(MinAll(ds.values).item<float>(), 1.0f);
  EXPECT_LE(MaxAll(ds.values).item<float>(), 9.9f);
}

}  // namespace
}  // namespace data
}  // namespace tdp
