// SQL-path regression tests for index-accelerated top-k similarity:
// CreateVectorIndex + the IndexTopK rewrite (EXPLAIN shape, invalidation
// on re-registration, plan-cache sharing across probe counts, RunOptions
// probe override), plus the IvfIndex edge cases the serving path leans on
// (k == 0, k > num_rows, probe clamping, empty k-means cells, duplicate
// rows, dimension-mismatch queries — clean Status, never a crash).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/index/ivf_index.h"
#include "src/runtime/session.h"
#include "src/tensor/ops.h"
#include "tests/vector_test_util.h"

namespace tdp {
namespace {

using exec::ScalarValue;
using testutil::MakeClusteredUnitVectors;

std::shared_ptr<Table> MakeVecTable(int64_t n, int64_t dim, int64_t clusters,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  auto table =
      TableBuilder("vecs")
          .AddInt64("id", ids)
          .AddTensor("emb", MakeClusteredUnitVectors(n, dim, clusters, rng))
          .Build();
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return table.value();
}

Tensor MakeQuery(int64_t dim, uint64_t seed) {
  Rng rng(seed);
  return testutil::MakeUnitQuery(dim, rng);
}

constexpr const char* kTopK =
    "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC LIMIT 5";

exec::RunOptions WithParams(std::vector<ScalarValue> params) {
  exec::RunOptions run;
  run.params = std::move(params);
  return run;
}

class IvfIndexSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(session_.RegisterTable("vecs", MakeVecTable(240, 8, 6, 11))
                    .ok());
  }

  Status CreateIndex(int64_t num_lists = 6) {
    index::IvfIndex::Options options;
    options.num_lists = num_lists;
    return session_.CreateVectorIndex("vecs", "emb", options);
  }

  Session session_;
};

// ---- Plan shape / invalidation ----------------------------------------------

TEST_F(IvfIndexSqlTest, ExplainShowsIndexTopKThenSortAfterReRegistration) {
  auto before = session_.Explain(kTopK);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before->find("IndexTopK"), std::string::npos) << *before;
  EXPECT_NE(before->find("Sort"), std::string::npos) << *before;

  ASSERT_TRUE(CreateIndex().ok());
  auto with_index = session_.Explain(kTopK);
  ASSERT_TRUE(with_index.ok()) << with_index.status().ToString();
  EXPECT_NE(with_index->find("IndexTopK"), std::string::npos) << *with_index;
  EXPECT_EQ(with_index->find("Sort"), std::string::npos) << *with_index;

  // Re-registering the table invalidates the index (it snapshots data the
  // catalog no longer serves): the plan falls back to the exact sort.
  ASSERT_TRUE(session_.RegisterTable("vecs", MakeVecTable(240, 8, 6, 12))
                  .ok());
  auto after = session_.Explain(kTopK);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->find("IndexTopK"), std::string::npos) << *after;
  EXPECT_NE(after->find("Sort"), std::string::npos) << *after;
}

TEST_F(IvfIndexSqlTest, DropVectorIndexRestoresSortPlan) {
  ASSERT_TRUE(CreateIndex().ok());
  auto with_index = session_.Explain(kTopK);
  ASSERT_TRUE(with_index.ok());
  EXPECT_NE(with_index->find("IndexTopK"), std::string::npos);

  ASSERT_TRUE(session_.DropVectorIndex("vecs", "emb").ok());
  auto after = session_.Explain(kTopK);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->find("IndexTopK"), std::string::npos) << *after;
  EXPECT_FALSE(session_.DropVectorIndex("vecs", "emb").ok());  // NotFound
}

TEST_F(IvfIndexSqlTest, RewritePreconditionsKeepExactPlan) {
  ASSERT_TRUE(CreateIndex().ok());
  // A WHERE clause no longer blocks the rewrite: it is absorbed into a
  // FilteredIndexTopK (strategy chosen by the cost rule; see the
  // FilteredTopK* tests for per-strategy pins).
  auto filtered = session_.Explain(
      "SELECT id, dot(emb, ?) AS sim FROM vecs WHERE id > 10 "
      "ORDER BY sim DESC LIMIT 5");
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  EXPECT_NE(filtered->find("FilteredIndexTopK"), std::string::npos)
      << *filtered;
  EXPECT_EQ(filtered->find("Filter"), filtered->find("FilteredIndexTopK"))
      << *filtered;  // no residual Filter node survives below
  // Ascending order is not a top-k-by-similarity search.
  auto asc = session_.Explain(
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim ASC LIMIT 5");
  ASSERT_TRUE(asc.ok());
  EXPECT_EQ(asc->find("IndexTopK"), std::string::npos) << *asc;
  // No LIMIT -> full sort, nothing to accelerate.
  auto unlimited = session_.Explain(
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC");
  ASSERT_TRUE(unlimited.ok());
  EXPECT_EQ(unlimited->find("IndexTopK"), std::string::npos) << *unlimited;
  // ORDER BY key outside the select list rides a hidden projected column;
  // the rewrite still applies (the cleanup projection sits above).
  auto hidden = session_.Explain(
      "SELECT id FROM vecs ORDER BY dot(emb, ?) DESC LIMIT 5");
  ASSERT_TRUE(hidden.ok());
  EXPECT_NE(hidden->find("IndexTopK"), std::string::npos) << *hidden;
}

TEST_F(IvfIndexSqlTest, CreateVectorIndexValidatesInput) {
  EXPECT_FALSE(session_.CreateVectorIndex("missing", "emb").ok());
  EXPECT_FALSE(session_.CreateVectorIndex("vecs", "missing").ok());
  // Scalar column: not a rank-2 embedding column.
  EXPECT_FALSE(session_.CreateVectorIndex("vecs", "id").ok());
}

TEST_F(IvfIndexSqlTest, BuiltInNamesCannotBeShadowedByUdfs) {
  // dot/cosine_sim resolve before the registry; registering a UDF under
  // either name would be silently shadowed, so it must fail loudly.
  for (const char* name : {"dot", "cosine_sim", "DOT"}) {
    udf::ScalarFunction fn;
    fn.name = name;
    fn.fn = [](const std::vector<udf::Argument>&, int64_t rows,
               Device device) -> StatusOr<Column> {
      return Column::Plain(Tensor::Zeros({rows}, DType::kFloat32, device));
    };
    const Status s = session_.functions().RegisterScalar(std::move(fn));
    ASSERT_FALSE(s.ok()) << name;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(s.message().find("reserved"), std::string::npos);
  }
}

// ---- Execution: exactness, probes, parameters -------------------------------

TEST_F(IvfIndexSqlTest, IndexPlanMatchesBrutePlanBitForBit) {
  const std::vector<ScalarValue> params = {
      ScalarValue::FromTensor(MakeQuery(8, 21))};
  // Compile the brute plan BEFORE the index exists; it stays pinned to
  // the Sort+Limit shape.
  auto brute = session_.Query(kTopK);
  ASSERT_TRUE(brute.ok()) << brute.status().ToString();
  ASSERT_TRUE(CreateIndex().ok());
  auto indexed = session_.Query(kTopK);
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  EXPECT_NE((*indexed)->Explain().find("IndexTopK"), std::string::npos);

  auto brute_result = (*brute)->Run(params);
  ASSERT_TRUE(brute_result.ok()) << brute_result.status().ToString();
  ASSERT_EQ((*brute_result)->num_rows(), 5);

  // Default probes (= every cell) must be bit-identical to brute force.
  auto exact = (*indexed)->Run(params);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  testutil::ExpectTablesBitIdentical(**brute_result, **exact);

  // Explicit full-probe override: same thing.
  exec::RunOptions full;
  full.params = params;
  full.vector_search.num_probes = 6;
  auto full_result = (*indexed)->Run(full);
  ASSERT_TRUE(full_result.ok());
  testutil::ExpectTablesBitIdentical(**brute_result, **full_result);

  // Over-clamped probe count behaves like full probes.
  exec::RunOptions over;
  over.params = params;
  over.vector_search.num_probes = 1000;
  auto over_result = (*indexed)->Run(over);
  ASSERT_TRUE(over_result.ok());
  testutil::ExpectTablesBitIdentical(**brute_result, **over_result);
}

TEST_F(IvfIndexSqlTest, ProbeBudgetTradesRecallNeverShape) {
  ASSERT_TRUE(CreateIndex().ok());
  auto query = session_.Prepare(kTopK);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  exec::RunOptions run;
  run.params = {ScalarValue::FromTensor(MakeQuery(8, 33))};
  run.vector_search.num_probes = 1;
  auto result = (*query)->Run(run);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // One probed cell still yields a full k-row, descending result.
  ASSERT_EQ((*result)->num_rows(), 5);
  const Column& sim = (*result)->column(1);
  for (int64_t i = 1; i < 5; ++i) {
    EXPECT_GE(sim.data().At({i - 1}), sim.data().At({i}));
  }

  // k far beyond any single cell (240 rows across 6 lists): the probe
  // budget is a floor, so a 1-probe run keeps probing until k candidate
  // rows exist — the result never shrinks below min(k, n).
  auto big_k = session_.Prepare(
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC LIMIT 100");
  ASSERT_TRUE(big_k.ok()) << big_k.status().ToString();
  exec::RunOptions one_probe;
  one_probe.params = {ScalarValue::FromTensor(MakeQuery(8, 33))};
  one_probe.vector_search.num_probes = 1;
  auto topped_up = (*big_k)->Run(one_probe);
  ASSERT_TRUE(topped_up.ok()) << topped_up.status().ToString();
  EXPECT_EQ((*topped_up)->num_rows(), 100);
}

TEST_F(IvfIndexSqlTest, ProbeCountsShareOneCachedPlan) {
  ASSERT_TRUE(CreateIndex().ok());
  const std::vector<ScalarValue> params = {
      ScalarValue::FromTensor(MakeQuery(8, 5))};
  for (int64_t probes : {0, 1, 2, 6}) {
    exec::RunOptions run;
    run.params = params;
    run.vector_search.num_probes = probes;
    auto result = session_.Sql(kTopK, {}, run);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ((*result)->num_rows(), 5);
  }
  const PlanCacheStats stats = session_.plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);  // one compile serves every probe budget
  EXPECT_GE(stats.hits, 3u);
}

TEST_F(IvfIndexSqlTest, StaleCompiledPlanFallsBackToExactResults) {
  ASSERT_TRUE(CreateIndex().ok());
  auto query = session_.Prepare(kTopK);
  ASSERT_TRUE(query.ok());
  EXPECT_NE((*query)->Explain().find("IndexTopK"), std::string::npos);
  // Re-register with DIFFERENT content while the compiled plan lives on:
  // the in-flight IndexTopK node must serve exact results over the new
  // data (schema still matches), not index results over the old snapshot.
  ASSERT_TRUE(session_.RegisterTable("vecs", MakeVecTable(240, 8, 6, 99))
                  .ok());
  const std::vector<ScalarValue> params = {
      ScalarValue::FromTensor(MakeQuery(8, 7))};
  auto stale = (*query)->Run(params);
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  // Ground truth from a freshly compiled (Sort+Limit) plan.
  auto fresh = session_.Sql(kTopK, {}, WithParams(params));
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  testutil::ExpectTablesBitIdentical(**stale, **fresh);
}

TEST_F(IvfIndexSqlTest, SqlEdgeCasesReturnCleanResults) {
  ASSERT_TRUE(CreateIndex().ok());
  const std::vector<ScalarValue> params = {
      ScalarValue::FromTensor(MakeQuery(8, 3))};

  // LIMIT 0: empty result, correct two-column shape.
  auto zero = session_.Sql(
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC LIMIT 0",
      {}, WithParams(params));
  ASSERT_TRUE(zero.ok()) << zero.status().ToString();
  EXPECT_EQ((*zero)->num_rows(), 0);
  EXPECT_EQ((*zero)->num_columns(), 2);

  // k far beyond the table: every row, still globally sorted.
  auto all = session_.Sql(
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC "
      "LIMIT 100000",
      {}, WithParams(params));
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ((*all)->num_rows(), 240);
  const Column& sim = (*all)->column(1);
  for (int64_t i = 1; i < 240; ++i) {
    EXPECT_GE(sim.data().At({i - 1}), sim.data().At({i}));
  }

  // OFFSET rides on top of the fused top-k.
  auto offset = session_.Sql(
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC "
      "LIMIT 3 OFFSET 2",
      {}, WithParams(params));
  ASSERT_TRUE(offset.ok()) << offset.status().ToString();
  EXPECT_EQ((*offset)->num_rows(), 3);
  EXPECT_EQ(static_cast<double>((*offset)->column(1).data().At({0})),
            static_cast<double>(sim.data().At({2})));

  // Dimension-mismatch query vector: clean InvalidArgument, no crash.
  auto bad_dim = session_.Sql(
      kTopK, {},
      WithParams({ScalarValue::FromTensor(MakeQuery(5, 3))}));
  ASSERT_FALSE(bad_dim.ok());
  EXPECT_EQ(bad_dim.status().code(), StatusCode::kInvalidArgument);

  // Non-tensor parameter where a query vector is expected: clean error.
  auto bad_type = session_.Sql(
      kTopK, {}, WithParams({ScalarValue::Int(42)}));
  ASSERT_FALSE(bad_type.ok());
  EXPECT_EQ(bad_type.status().code(), StatusCode::kTypeError);

  // cosine_sim goes through the same rewrite and executes.
  auto cos = session_.Explain(
      "SELECT id, cosine_sim(emb, ?) AS sim FROM vecs "
      "ORDER BY sim DESC LIMIT 4");
  ASSERT_TRUE(cos.ok());
  EXPECT_NE(cos->find("IndexTopK"), std::string::npos) << *cos;
  auto cos_result = session_.Sql(
      "SELECT id, cosine_sim(emb, ?) AS sim FROM vecs "
      "ORDER BY sim DESC LIMIT 4",
      {}, WithParams(params));
  ASSERT_TRUE(cos_result.ok()) << cos_result.status().ToString();
  EXPECT_EQ((*cos_result)->num_rows(), 4);

  // dot() over a scalar column: clean TypeError.
  auto scalar_col = session_.Sql(
      "SELECT dot(id, ?) AS sim FROM vecs ORDER BY sim DESC LIMIT 2", {},
      WithParams(params));
  ASSERT_FALSE(scalar_col.ok());
  EXPECT_EQ(scalar_col.status().code(), StatusCode::kTypeError);

  // Wrong arity is a bind error.
  auto arity = session_.Sql("SELECT dot(emb) FROM vecs");
  ASSERT_FALSE(arity.ok());
  EXPECT_EQ(arity.status().code(), StatusCode::kBindError);
}

TEST_F(IvfIndexSqlTest, NegativeProbeBudgetFailsCleanly) {
  exec::RunOptions run = WithParams({ScalarValue::FromTensor(MakeQuery(8, 3))});
  run.vector_search.num_probes = -2;  // e.g. an underflowed lists/4 - overhead
  // The contract is unconditional (validated at run entry): the same bad
  // value fails identically with no index (brute plan), ...
  auto brute = session_.Sql(kTopK, {}, run);
  ASSERT_FALSE(brute.ok());
  EXPECT_EQ(brute.status().code(), StatusCode::kInvalidArgument);
  // ... with a live index (IndexTopK plan), ...
  ASSERT_TRUE(CreateIndex().ok());
  auto indexed = session_.Sql(kTopK, {}, run);
  ASSERT_FALSE(indexed.ok());
  EXPECT_EQ(indexed.status().code(), StatusCode::kInvalidArgument);
  // ... and through the cursor path.
  auto cursor = session_.Execute(kTopK, {}, run);
  ASSERT_FALSE(cursor.ok());
  EXPECT_EQ(cursor.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IvfIndexSqlTest, CosineOverUnnormalizedRowsNeverLosesRecall) {
  // Rows with wildly different norms: the dot-ordered cell probe is
  // untrustworthy for cosine ranking, so a partial budget must silently
  // widen to every cell — results stay exact instead of recall collapsing.
  const int64_t n = 120, d = 8;
  Rng rng(77);
  Tensor emb = testutil::MakeClusteredUnitVectors(n, d, 6, rng);
  for (int64_t i = 0; i < n; ++i) {
    const double scale = 0.05 + 2.0 * static_cast<double>(i % 7);
    for (int64_t j = 0; j < d; ++j) {
      emb.SetAt({i, j}, emb.At({i, j}) * scale);
    }
  }
  std::vector<int64_t> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  auto table =
      TableBuilder("vecs").AddInt64("id", ids).AddTensor("emb", emb).Build();
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session_.RegisterTable("vecs", table.value()).ok());

  const char* cos_sql =
      "SELECT id, cosine_sim(emb, ?) AS sim FROM vecs "
      "ORDER BY sim DESC LIMIT 8";
  const std::vector<ScalarValue> params = {
      ScalarValue::FromTensor(MakeQuery(8, 9))};
  auto brute = session_.Query(cos_sql);  // pinned pre-index (Sort+Limit)
  ASSERT_TRUE(brute.ok());
  ASSERT_TRUE(CreateIndex().ok());
  auto expected = (*brute)->Run(params);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  exec::RunOptions one_probe = WithParams(params);
  one_probe.vector_search.num_probes = 1;
  auto got = session_.Sql(cos_sql, {}, one_probe);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  testutil::ExpectTablesBitIdentical(**expected, **got);
}

TEST_F(IvfIndexSqlTest, RecallAtQuarterProbesOnClusteredData) {
  index::IvfIndex::Options options;
  options.num_lists = 12;
  ASSERT_TRUE(session_.RegisterTable("vecs", MakeVecTable(600, 16, 12, 44))
                  .ok());
  ASSERT_TRUE(session_.CreateVectorIndex("vecs", "emb", options).ok());
  auto query = session_.Prepare(
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC LIMIT 10");
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  double recall = 0;
  const int kQueries = 10;
  for (int q = 0; q < kQueries; ++q) {
    const Tensor qvec = MakeQuery(16, 1000 + static_cast<uint64_t>(q));
    exec::RunOptions exact;
    exact.params = {ScalarValue::FromTensor(qvec)};
    auto truth = (*query)->Run(exact);
    ASSERT_TRUE(truth.ok());
    std::set<int64_t> exact_ids;
    for (int64_t i = 0; i < 10; ++i) {
      exact_ids.insert(
          static_cast<int64_t>((*truth)->column(0).data().At({i})));
    }
    exec::RunOptions approx;
    approx.params = {ScalarValue::FromTensor(qvec)};
    approx.vector_search.num_probes = 3;  // num_lists / 4
    auto got = (*query)->Run(approx);
    ASSERT_TRUE(got.ok());
    for (int64_t i = 0; i < (*got)->num_rows(); ++i) {
      if (exact_ids.contains(
              static_cast<int64_t>((*got)->column(0).data().At({i})))) {
        recall += 1;
      }
    }
  }
  recall /= kQueries * 10;
  EXPECT_GE(recall, 0.9) << "recall@10 at num_lists/4 probes";
}

// ---- Filtered vector search (pre/post-filter + cost rule) -------------------

// EXPLAIN pins: one per strategy the cost rule can choose, plus the
// no-index fallback. vecs has 240 rows and k=5 (2k = 10):
//   id > 10            -> s=0.3, ~72 survivors  -> pre_filter
//   id <> 10           -> s=0.9, ~216 survivors -> post_filter
//   id = 1 AND id > 200 -> s=0.03, ~7 survivors -> brute (index can't win)
TEST_F(IvfIndexSqlTest, ExplainShowsChosenFilteredStrategy) {
  ASSERT_TRUE(CreateIndex().ok());
  const struct {
    const char* where;
    const char* expect;
  } cases[] = {
      {"id > 10", "FilteredIndexTopK(strategy=pre_filter"},
      {"id <> 10", "FilteredIndexTopK(strategy=post_filter"},
      {"id = 1 AND id > 200", "FilteredIndexTopK(strategy=brute"},
  };
  for (const auto& c : cases) {
    auto plan = session_.Explain(
        "SELECT id, dot(emb, ?) AS sim FROM vecs WHERE " +
        std::string(c.where) + " ORDER BY sim DESC LIMIT 5");
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_NE(plan->find(c.expect), std::string::npos)
        << c.where << " rendered:\n" << *plan;
    EXPECT_NE(plan->find("where="), std::string::npos) << *plan;
  }
}

TEST_F(IvfIndexSqlTest, FilteredTopKWithoutIndexKeepsFilterSortPlan) {
  // No index: a filtered top-k stays the exact Filter + Sort plan.
  auto plan = session_.Explain(
      "SELECT id, dot(emb, ?) AS sim FROM vecs WHERE id > 10 "
      "ORDER BY sim DESC LIMIT 5");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->find("IndexTopK"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("Filter"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("Sort"), std::string::npos) << *plan;
}

TEST_F(IvfIndexSqlTest, FilteredStrategiesAllMatchBruteAtFullProbes) {
  const char* sql =
      "SELECT id, dot(emb, ?) AS sim FROM vecs WHERE id > 10 "
      "ORDER BY sim DESC LIMIT 5";
  const std::vector<ScalarValue> params = {
      ScalarValue::FromTensor(MakeQuery(8, 51))};
  // Ground truth: the Filter + Sort plan compiled before the index exists.
  auto brute = session_.Query(sql);
  ASSERT_TRUE(brute.ok()) << brute.status().ToString();
  auto expected = (*brute)->Run(params);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_EQ((*expected)->num_rows(), 5);

  ASSERT_TRUE(CreateIndex().ok());
  auto indexed = session_.Query(sql);
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  ASSERT_NE((*indexed)->Explain().find("FilteredIndexTopK"),
            std::string::npos);

  // Default probes (= every cell) under the plan's own strategy, then
  // every forced strategy: all bit-identical to the exact plan.
  for (const auto strategy :
       {exec::VectorSearchStrategy::kAuto,
        exec::VectorSearchStrategy::kPreFilter,
        exec::VectorSearchStrategy::kPostFilter,
        exec::VectorSearchStrategy::kBrute}) {
    exec::RunOptions run = WithParams(params);
    run.vector_search.strategy = strategy;
    auto got = (*indexed)->Run(run);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    testutil::ExpectTablesBitIdentical(
        **expected, **got,
        "strategy=" +
            std::string(exec::VectorSearchStrategyName(strategy)));
  }
}

TEST_F(IvfIndexSqlTest, FilteredTopKHonorsSurvivorFloorUnderTinyBudgets) {
  ASSERT_TRUE(CreateIndex().ok());
  const std::vector<ScalarValue> params = {
      ScalarValue::FromTensor(MakeQuery(8, 52))};
  // 12 survivors (ids 0..11). However small the probe budget, the result
  // must hold min(k, survivors) rows: widening tops the candidate pool up.
  for (const auto strategy : {exec::VectorSearchStrategy::kPreFilter,
                              exec::VectorSearchStrategy::kPostFilter}) {
    for (const int64_t max_rounds : {int64_t{0}, int64_t{8}}) {
      // k=5 <= survivors: full k rows.
      exec::RunOptions run = WithParams(params);
      run.vector_search.num_probes = 1;
      run.vector_search.strategy = strategy;
      run.vector_search.max_widening_rounds = max_rounds;
      auto r = session_.Sql(
          "SELECT id, dot(emb, ?) AS sim FROM vecs WHERE id < 12 "
          "ORDER BY sim DESC LIMIT 5",
          {}, run);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ((*r)->num_rows(), 5);
      // k=100 > survivors: exactly the 12 surviving rows, sorted.
      auto all = session_.Sql(
          "SELECT id, dot(emb, ?) AS sim FROM vecs WHERE id < 12 "
          "ORDER BY sim DESC LIMIT 100",
          {}, run);
      ASSERT_TRUE(all.ok()) << all.status().ToString();
      EXPECT_EQ((*all)->num_rows(), 12);
      for (int64_t i = 0; i < (*all)->num_rows(); ++i) {
        EXPECT_LT((*all)->column(0).data().At({i}), 12.0);
      }
    }
  }
}

TEST_F(IvfIndexSqlTest, FilteredTopKWithZeroSurvivorsIsEmptyNotAnError) {
  ASSERT_TRUE(CreateIndex().ok());
  for (const auto strategy : {exec::VectorSearchStrategy::kPreFilter,
                              exec::VectorSearchStrategy::kPostFilter,
                              exec::VectorSearchStrategy::kBrute}) {
    exec::RunOptions run =
        WithParams({ScalarValue::FromTensor(MakeQuery(8, 53))});
    run.vector_search.strategy = strategy;
    auto r = session_.Sql(
        "SELECT id, dot(emb, ?) AS sim FROM vecs WHERE id < 0 "
        "ORDER BY sim DESC LIMIT 5",
        {}, run);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ((*r)->num_rows(), 0);
    EXPECT_EQ((*r)->num_columns(), 2);
  }
}

TEST_F(IvfIndexSqlTest, SecondarySortKeysRideTheIndexAsTiebreaks) {
  ASSERT_TRUE(CreateIndex().ok());
  const char* sql =
      "SELECT id, dot(emb, ?) AS sim FROM vecs "
      "ORDER BY sim DESC, id DESC LIMIT 7";
  auto plan = session_.Explain(sql);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexTopK"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("tiebreak=1"), std::string::npos) << *plan;

  const std::vector<ScalarValue> params = {
      ScalarValue::FromTensor(MakeQuery(8, 54))};
  Session reference;
  ASSERT_TRUE(
      reference.RegisterTable("vecs", MakeVecTable(240, 8, 6, 11)).ok());
  auto expected = reference.Sql(sql, {}, WithParams(params));
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  auto got = session_.Sql(sql, {}, WithParams(params));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  testutil::ExpectTablesBitIdentical(**expected, **got, "tiebreak");
}

// ---- IvfIndex edge-case regressions (the API the SQL path leans on) --------

TEST(IvfIndexEdgeTest, SearchEdgeCasesReturnCleanStatus) {
  Rng rng(6);
  Tensor data = MakeClusteredUnitVectors(40, 4, 4, rng);
  index::IvfIndex::Options options;
  options.num_lists = 8;
  auto built = index::IvfIndex::Build(data, options, rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const Tensor query = MakeQuery(4, 9);

  // k == 0: clean empty result.
  auto empty = built->Search(query, 0, 2);
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_EQ(empty->indices.numel(), 0);
  EXPECT_EQ(empty->scores.numel(), 0);

  // k < 0 and non-positive probes: InvalidArgument.
  EXPECT_EQ(built->Search(query, -1, 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(built->Search(query, 5, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(built->Search(query, 5, -3).status().code(),
            StatusCode::kInvalidArgument);

  // k > num_rows clamps to every row; num_probes > num_lists clamps.
  auto all = built->Search(query, 1000, 1000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->indices.numel(), 40);

  // Dimension mismatch / undefined query: InvalidArgument with dims.
  auto bad = built->Search(MakeQuery(7, 9), 5, 2);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("d=4"), std::string::npos);
  EXPECT_FALSE(built->Search(Tensor(), 5, 2).ok());
}

TEST(IvfIndexEdgeTest, EmptyCellsNeverEatTheProbeBudget) {
  // 10 identical rows with 8 requested lists: k-means leaves most cells
  // empty. A single probe must land on a NON-empty cell and k=3 must come
  // back with 3 rows, not zero.
  Tensor data = Tensor::Zeros({10, 4});
  for (int64_t i = 0; i < 10; ++i) data.SetAt({i, 0}, 1.0);
  index::IvfIndex::Options options;
  options.num_lists = 8;
  Rng rng(3);
  auto built = index::IvfIndex::Build(data, options, rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Tensor query = Tensor::Zeros({4});
  query.SetAt({0}, 1.0);
  auto result = built->Search(query, 3, 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->indices.numel(), 3);
  // Duplicate rows tie on score; the stable tie-break yields ascending
  // row ids.
  for (int64_t i = 1; i < 3; ++i) {
    EXPECT_LT(result->indices.At({i - 1}), result->indices.At({i}));
  }
}

TEST(IvfIndexEdgeTest, FullProbeCandidatesAreEveryRowAscending) {
  Rng rng(8);
  Tensor data = MakeClusteredUnitVectors(57, 8, 5, rng);
  index::IvfIndex::Options options;
  options.num_lists = 5;
  auto built = index::IvfIndex::Build(data, options, rng);
  ASSERT_TRUE(built.ok());
  auto candidates = built->ProbeCandidates(MakeQuery(8, 2), 5);
  ASSERT_TRUE(candidates.ok());
  ASSERT_EQ(candidates->size(), 57u);
  for (int64_t i = 0; i < 57; ++i) {
    EXPECT_EQ((*candidates)[static_cast<size_t>(i)], i);
  }
}

}  // namespace
}  // namespace tdp
