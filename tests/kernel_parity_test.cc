// Kernel-correctness and primitive-cache regression suite for the layout /
// fused-evaluation overhaul:
//
//   - IEEE non-finite propagation: the accelerated matmul/conv kernels used
//     to skip zero multiplicands, silently turning `0 * inf` (NaN under
//     IEEE 754) into 0. Both backends must now classify every output
//     element (NaN / inf / finite) exactly like a naive double-precision
//     reference.
//   - Strided/transposed views: the cached row-major reorder behind
//     `Tensor::RowMajor()` must make kernels over views bit-identical to
//     the same kernels over eager contiguous copies, per backend, across
//     thread counts.
//   - Fused filter+project: with the fusion knob on vs off, every
//     (executor, thread count, morsel size) combination must be
//     bit-identical — including the runtime-fallback cases (parameters,
//     unfusable projections, bool columns, dictionary predicates with
//     absent literals, literal-on-the-left comparisons).
//   - Per-plan primitive cache: repeated runs of one CompiledQuery reuse
//     the join build side (hit/miss stats), invalidate on table change
//     (re-register and DML UPDATE), and never cache a parameter-bearing
//     build subtree.
//   - Scratch reuse: a warm accelerated Conv2d forward allocates exactly
//     one buffer (the output) and never grows the scratch arena.
//
// Runs under ASan/UBSan and TSan in CI (see TDP_SANITIZER_TESTS).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/exec/bound_expr.h"
#include "src/exec/fused_filter_project.h"
#include "src/exec/primitive_cache.h"
#include "src/runtime/session.h"
#include "src/tensor/buffer.h"
#include "src/tensor/ops.h"
#include "src/tensor/scratch.h"
#include "tests/vector_test_util.h"

namespace tdp {
namespace {

constexpr int64_t kWholeRelation = int64_t{1} << 30;
const int64_t kMorselSizes[] = {1, 7, 4096, kWholeRelation};
const int kThreadCounts[] = {1, 4};
const Device kDevices[] = {Device::kCpu, Device::kAccel};

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr int64_t kInt64Max = std::numeric_limits<int64_t>::max();

// ---- SaturatingCostProduct ------------------------------------------------

TEST(SaturatingCostProductTest, ExactWhenInRange) {
  EXPECT_EQ(SaturatingCostProduct(3, 4), 12);
  EXPECT_EQ(SaturatingCostProduct(0, kInt64Max), 0);
  EXPECT_EQ(SaturatingCostProduct(1, kInt64Max), kInt64Max);
  EXPECT_EQ(SaturatingCostProduct(2, 3, 4), 24);
  EXPECT_EQ(SaturatingCostProduct(0, kInt64Max, kInt64Max), 0);
}

TEST(SaturatingCostProductTest, ClampsInsteadOfWrapping) {
  // 2^40 * 2^40 wraps to 0 under plain int64 multiply; the cost must clamp
  // so GrainForCost never sees a tiny (or negative) "cost" for a huge loop.
  const int64_t big = int64_t{1} << 40;
  EXPECT_EQ(SaturatingCostProduct(big, big), kInt64Max);
  EXPECT_EQ(SaturatingCostProduct(kInt64Max, 2), kInt64Max);
  EXPECT_EQ(SaturatingCostProduct(big, big, big), kInt64Max);
  // A clamped partial product stays clamped through the 3-arg form.
  EXPECT_EQ(SaturatingCostProduct(big, big, 1), kInt64Max);
}

// ---- IEEE non-finite propagation ------------------------------------------

// 0 = finite, 1 = +/-inf, 2 = NaN.
int Classify(double v) {
  if (std::isnan(v)) return 2;
  if (std::isinf(v)) return 1;
  return 0;
}

// Element classification of a float tensor (any device, any dtype).
std::vector<int> ClassifyTensor(const Tensor& t) {
  const Tensor c = t.To(Device::kCpu).Contiguous();
  std::vector<int> out;
  if (c.dtype() == DType::kFloat64) {
    for (double v : c.ToVector<double>()) out.push_back(Classify(v));
  } else {
    for (float v : c.ToVector<float>()) {
      out.push_back(Classify(static_cast<double>(v)));
    }
  }
  return out;
}

// A zero in `a` meeting an inf in `b` must yield NaN in the product sum.
// Pre-fix, the accelerated kernel skipped `a == 0` multiplicands, so the
// NaN cell came out finite — this test fails on that kernel.
TEST(KernelNonFiniteTest, MatMulPropagatesZeroTimesInf) {
  // a[0] = [0, 1]: row 0 hits b's inf row with a zero -> 0*inf = NaN.
  // a[1] = [1, 1]: row 1 hits it with a one -> inf propagates as inf.
  // a[2] = [1, 0]: a zero meets the *finite* b row -> stays finite.
  const std::vector<float> a_vals = {0, 1, 1, 1, 1, 0};
  const std::vector<float> b_vals = {static_cast<float>(kInf), 2, 3, 4};
  // The expected classification comes from a naive double loop instead of
  // being hand-written — the oracle and the kernel must agree cell by
  // cell for every backend.
  const int64_t m = 3, k = 2, n = 2;
  std::vector<int> naive;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a_vals[i * k + p]) *
               static_cast<double>(b_vals[p * n + j]);
      }
      naive.push_back(Classify(acc));
    }
  }
  // Sanity: the construction really exercises all three classes.
  EXPECT_EQ(naive[0], 2);  // 0*inf + 1*3 = NaN
  EXPECT_EQ(naive[1], 0);  // 0*2 + 1*4 = 4
  EXPECT_EQ(naive[2], 1);  // 1*inf + 1*3 = inf
  EXPECT_EQ(naive[5], 0);  // 1*2 + 0*4 = 2 (a zero meeting finite data)

  for (Device device : kDevices) {
    SCOPED_TRACE(device == Device::kCpu ? "cpu" : "accel");
    const Tensor a = Tensor::FromVector(a_vals, {m, k}, device);
    const Tensor b = Tensor::FromVector(b_vals, {k, n}, device);
    EXPECT_EQ(ClassifyTensor(MatMul(a, b)), naive);
  }
}

// Same property for Conv2d: an inf input pixel under a zero weight tap
// must produce NaN wherever the window covers it with that tap. The
// accelerated path lowers to im2col + the shared GEMM, so the pre-fix
// zero-skip dropped the NaN there too.
TEST(KernelNonFiniteTest, Conv2dPropagatesZeroTimesInf) {
  const int64_t h = 4, w = 4, kk = 2;
  std::vector<float> input(static_cast<size_t>(h * w), 1.0f);
  input[static_cast<size_t>(1 * w + 1)] = static_cast<float>(kInf);
  // Weight [[0, 1], [1, 1]]: windows where the inf aligns with the zero
  // tap yield NaN; other windows covering the inf yield inf.
  const std::vector<float> weight = {0, 1, 1, 1};

  // Naive double conv (stride 1, no padding) as the oracle.
  const int64_t oh = h - kk + 1, ow = w - kk + 1;
  std::vector<int> naive;
  for (int64_t oy = 0; oy < oh; ++oy) {
    for (int64_t ox = 0; ox < ow; ++ox) {
      double acc = 0;
      for (int64_t ky = 0; ky < kk; ++ky) {
        for (int64_t kx = 0; kx < kk; ++kx) {
          acc += static_cast<double>(input[static_cast<size_t>(
                     (oy + ky) * w + (ox + kx))]) *
                 static_cast<double>(
                     weight[static_cast<size_t>(ky * kk + kx)]);
        }
      }
      naive.push_back(Classify(acc));
    }
  }
  // The inf pixel sits under the zero tap for exactly one window.
  EXPECT_NE(std::count(naive.begin(), naive.end(), 2), 0);
  EXPECT_NE(std::count(naive.begin(), naive.end(), 1), 0);
  EXPECT_NE(std::count(naive.begin(), naive.end(), 0), 0);

  for (Device device : kDevices) {
    SCOPED_TRACE(device == Device::kCpu ? "cpu" : "accel");
    const Tensor in = Tensor::FromVector(input, {1, 1, h, w}, device);
    const Tensor wt = Tensor::FromVector(weight, {1, 1, kk, kk}, device);
    const Tensor out = Conv2d(in, wt, Tensor(), /*stride=*/1, /*padding=*/0);
    EXPECT_EQ(ClassifyTensor(out), naive);
  }
}

// ---- Strided / transposed view parity -------------------------------------

// Kernels over views must be bit-identical to the same kernels over eager
// contiguous copies of those views, per backend, for serial and parallel
// thread counts (the cached reorder must not change results, only cost).
class ViewParityTest : public ::testing::Test {
 protected:
  static void ExpectBitwise(const Tensor& a, const Tensor& b) {
    EXPECT_TRUE(TensorEqual(a.To(Device::kCpu), b.To(Device::kCpu)));
  }
};

TEST_F(ViewParityTest, MatMulOnTransposedAndSlicedViews) {
  Rng rng(11);
  const Tensor base_a = RandNormal({37, 53}, 0, 1, rng);
  const Tensor base_b = RandNormal({37, 29}, 0, 1, rng);
  const Tensor wide = RandNormal({53, 64}, 0, 1, rng);
  for (int threads : kThreadCounts) {
    ScopedNumThreads guard(threads);
    for (Device device : kDevices) {
      SCOPED_TRACE(std::string(device == Device::kCpu ? "cpu" : "accel") +
                   " threads=" + std::to_string(threads));
      // Transposed left operand: [53, 37] view with swapped strides.
      const Tensor at = Transpose(base_a.To(device), 0, 1);
      const Tensor b = base_b.To(device);
      ASSERT_FALSE(at.is_contiguous());
      ExpectBitwise(MatMul(at, b), MatMul(at.Contiguous(), b));
      // Column-sliced right operand: rows remain strided in the parent.
      const Tensor bs = Slice(wide.To(device), /*dim=*/1, 3, 17);
      ASSERT_FALSE(bs.is_contiguous());
      ExpectBitwise(MatMul(base_a.To(device), bs),
                    MatMul(base_a.To(device), bs.Contiguous()));
      // Both operands transposed.
      const Tensor bt = Transpose(base_b.To(device), 0, 1);
      ExpectBitwise(MatMul(at, base_b.To(device)),
                    MatMul(at.Contiguous(), base_b.To(device)));
      ExpectBitwise(MatMul(bt, base_a.To(device)),
                    MatMul(bt.Contiguous(), base_a.To(device).Contiguous()));
    }
  }
}

TEST_F(ViewParityTest, Conv2dOnStridedViews) {
  Rng rng(12);
  const Tensor base = RandNormal({2, 3, 9, 12}, 0, 1, rng);
  const Tensor weight = RandNormal({4, 3, 3, 3}, 0, 1, rng);
  const Tensor bias = RandNormal({4}, 0, 1, rng);
  for (int threads : kThreadCounts) {
    ScopedNumThreads guard(threads);
    for (Device device : kDevices) {
      SCOPED_TRACE(std::string(device == Device::kCpu ? "cpu" : "accel") +
                   " threads=" + std::to_string(threads));
      // Width-sliced input: every row strided within the parent buffer.
      const Tensor view = Slice(base.To(device), /*dim=*/3, 2, 8);
      ASSERT_FALSE(view.is_contiguous());
      const Tensor w = weight.To(device);
      const Tensor bi = bias.To(device);
      ExpectBitwise(Conv2d(view, w, bi, 1, 1),
                    Conv2d(view.Contiguous(), w, bi, 1, 1));
      // Transposed-then-restored layout (permuted strides, same logical
      // NCHW shape).
      const Tensor perm =
          Transpose(Transpose(base.To(device), 2, 3), 2, 3);
      ExpectBitwise(Conv2d(perm, w, bi, 1, 0),
                    Conv2d(perm.Contiguous(), w, bi, 1, 0));
    }
  }
}

// ---- Warm-path allocation accounting --------------------------------------

TEST(ConvScratchTest, WarmAccelForwardAllocatesOnlyTheOutput) {
  // Single-threaded so the im2col scratch lives in one deterministic
  // thread-local arena (the parallel case is covered by the benchmark's
  // steady-state assertion).
  ScopedNumThreads guard(1);
  Rng rng(13);
  const Tensor in = RandNormal({2, 3, 16, 16}, 0, 1, rng).To(Device::kAccel);
  const Tensor w = RandNormal({4, 3, 3, 3}, 0, 1, rng).To(Device::kAccel);
  const Tensor b = RandNormal({4}, 0, 1, rng).To(Device::kAccel);
  // Warm: sizes the arena slot and caches any reorders.
  Conv2d(in, w, b, 1, 1);
  Conv2d(in, w, b, 1, 1);
  const int64_t allocs_before = Buffer::allocation_count();
  const int64_t growth_before = ScratchArena::growth_count();
  const Tensor out = Conv2d(in, w, b, 1, 1);
  EXPECT_EQ(Buffer::allocation_count() - allocs_before, 1)
      << "a warm Conv2d forward must allocate exactly the output buffer";
  EXPECT_EQ(ScratchArena::growth_count() - growth_before, 0)
      << "a warm Conv2d forward must reuse the sized im2col scratch slot";
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{2, 4, 16, 16}));
}

// ---- CacheableExpr unit tests ---------------------------------------------

TEST(PrimitiveCacheUnitTest, CacheableExprAcceptsPureScalarTrees) {
  using exec::BoundBinary;
  using exec::BoundColumnRef;
  using exec::BoundLiteral;
  using exec::ScalarValue;
  EXPECT_TRUE(exec::CacheableExpr(BoundColumnRef(0)));
  EXPECT_TRUE(exec::CacheableExpr(BoundLiteral(ScalarValue::Int(5))));
  const BoundBinary cmp(sql::BinaryOp::kLt,
                        std::make_unique<BoundColumnRef>(0),
                        std::make_unique<BoundLiteral>(ScalarValue::Int(5)));
  EXPECT_TRUE(exec::CacheableExpr(cmp));
}

TEST(PrimitiveCacheUnitTest, CacheableExprRejectsParameters) {
  using exec::BoundBinary;
  using exec::BoundColumnRef;
  using exec::BoundParameter;
  EXPECT_FALSE(exec::CacheableExpr(BoundParameter(0)));
  // The rejection must be recursive: a parameter anywhere in the tree
  // poisons it (its value changes run to run, so the build side must not
  // be reused across runs).
  const BoundBinary cmp(sql::BinaryOp::kGt,
                        std::make_unique<BoundColumnRef>(0),
                        std::make_unique<BoundParameter>(0));
  EXPECT_FALSE(exec::CacheableExpr(cmp));
}

// ---- Fused filter+project parity ------------------------------------------

/// Flips the process-wide fusion knob for one scope.
class ScopedFusedEval {
 public:
  explicit ScopedFusedEval(bool enabled)
      : saved_(exec::SetFusedEvalEnabled(enabled)) {}
  ~ScopedFusedEval() { exec::SetFusedEvalEnabled(saved_); }

 private:
  bool saved_;
};

class FusedParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(4321);
    const std::vector<std::string> vocab = {"alpha", "beta", "gamma",
                                            "delta", "omega"};
    const int64_t rows = 5000;
    std::vector<int64_t> keys;
    std::vector<double> values;
    std::vector<float> floats;
    std::vector<bool> flags;
    std::vector<std::string> tags;
    for (int64_t i = 0; i < rows; ++i) {
      keys.push_back(rng.UniformInt(0, 63));
      values.push_back(rng.Uniform(-100, 100));
      floats.push_back(static_cast<float>(rng.Uniform(-8, 8)));
      flags.push_back(rng.UniformInt(0, 1) == 1);
      tags.push_back(vocab[static_cast<size_t>(rng.UniformInt(0, 4))]);
    }
    Register("big", TableBuilder("big")
                        .AddInt64("k", keys)
                        .AddFloat64("v", values)
                        .AddFloat32("f", floats)
                        .AddBool("flag", flags)
                        .AddStrings("tag", tags));

    std::vector<int64_t> kr;
    std::vector<double> w;
    for (int64_t i = 0; i < 40; ++i) {
      kr.push_back(rng.UniformInt(0, 63));
      w.push_back(rng.Uniform(0, 50));
    }
    Register("r", TableBuilder("r").AddInt64("kr", kr).AddFloat64("w", w));

    Register("empty_t", TableBuilder("empty_t")
                            .AddInt64("k", {})
                            .AddFloat64("v", {}));
  }

  void Register(const std::string& name, TableBuilder builder) {
    auto table = std::move(builder).Build();
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    ASSERT_TRUE(session_.RegisterTable(name, table.value()).ok());
  }

  StatusOr<std::shared_ptr<exec::CompiledQuery>> Compile(
      const std::string& sql) {
    QueryOptions options;
    options.use_plan_cache = false;
    return session_.Query(sql, options);
  }

  StatusOr<std::shared_ptr<Table>> RunWith(
      const std::string& sql, bool streaming, int64_t morsel_rows,
      const std::vector<exec::ScalarValue>& params = {}) {
    exec::RunOptions run;
    run.params = params;
    run.exec.streaming = streaming;
    run.exec.morsel_rows = morsel_rows;
    TDP_ASSIGN_OR_RETURN(auto query, Compile(sql));
    return query->Run(run);
  }

  // Strict bit-identity including encodings and dictionary identity (same
  // oracle the streaming-parity suite uses).
  void ExpectBitIdentical(const Table& a, const Table& b) {
    ASSERT_EQ(a.num_columns(), b.num_columns());
    ASSERT_EQ(a.num_rows(), b.num_rows());
    for (int64_t c = 0; c < a.num_columns(); ++c) {
      SCOPED_TRACE("column " + std::to_string(c));
      EXPECT_EQ(a.column_names()[static_cast<size_t>(c)],
                b.column_names()[static_cast<size_t>(c)]);
      const Column& ca = a.column(c);
      const Column& cb = b.column(c);
      ASSERT_EQ(ca.encoding(), cb.encoding());
      EXPECT_TRUE(
          TensorEqual(ca.data().Contiguous(), cb.data().Contiguous()))
          << "column data diverged";
      EXPECT_EQ(ca.dictionary(), cb.dictionary());
      EXPECT_EQ(ca.domain(), cb.domain());
    }
  }

  /// The core oracle: results with fusion ON must be bit-identical to
  /// results with fusion OFF, for both executors, across thread counts
  /// and morsel sizes. The OFF legacy whole-relation run is the reference.
  void ExpectFusedParity(const std::string& sql,
                         const std::vector<exec::ScalarValue>& params = {}) {
    SCOPED_TRACE(sql);
    StatusOr<std::shared_ptr<Table>> reference(nullptr);
    {
      ScopedFusedEval off(false);
      reference = RunWith(sql, /*streaming=*/false, 0, params);
    }
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (const bool fused : {false, true}) {
      ScopedFusedEval knob(fused);
      for (int threads : kThreadCounts) {
        ScopedNumThreads guard(threads);
        for (int64_t morsel : kMorselSizes) {
          SCOPED_TRACE(std::string("fused=") + (fused ? "on" : "off") +
                       " threads=" + std::to_string(threads) +
                       " morsel=" + std::to_string(morsel));
          for (const bool streaming : {true, false}) {
            auto got = RunWith(sql, streaming, morsel, params);
            ASSERT_TRUE(got.ok()) << got.status().ToString();
            ExpectBitIdentical(**reference, **got);
          }
        }
      }
    }
  }

  Session session_;
};

TEST_F(FusedParityTest, NumericComparisonsAndProjections) {
  ExpectFusedParity("SELECT k, v FROM big WHERE v > 0");
  ExpectFusedParity("SELECT k + 1, v * 2 FROM big WHERE k < 32 AND v <= 10");
  ExpectFusedParity("SELECT v - 3.5, k * 2 FROM big WHERE v >= -50 AND k > 5");
  // float32 column compared/combined with int and float literals (the
  // promoted compute dtype differs per leaf).
  ExpectFusedParity("SELECT f + 1, f * 0.5 FROM big WHERE f < 4");
  ExpectFusedParity("SELECT k FROM big WHERE f > 2.5 AND k <= 40");
}

TEST_F(FusedParityTest, LiteralOnTheLeft) {
  // Mirrored comparisons and non-commutative arithmetic with the literal
  // on the left — the fused compiler must normalize, not reject.
  ExpectFusedParity("SELECT k FROM big WHERE 10 > k AND 3 < k");
  ExpectFusedParity("SELECT 100 - k, 2 * v FROM big WHERE 0 <= v");
  ExpectFusedParity("SELECT 1 + k FROM big WHERE 32 >= k");
}

TEST_F(FusedParityTest, DictionaryPredicates) {
  ExpectFusedParity("SELECT tag, k FROM big WHERE tag >= 'beta'");
  ExpectFusedParity("SELECT k FROM big WHERE tag = 'omega'");
  // Absent literals: constant-false / constant-true lowerings.
  ExpectFusedParity("SELECT k FROM big WHERE tag = 'zzz'");
  ExpectFusedParity("SELECT k FROM big WHERE tag <> 'zzz'");
  ExpectFusedParity("SELECT k FROM big WHERE tag < 'aardvark'");
  // Literal on the left over dictionary codes.
  ExpectFusedParity("SELECT tag FROM big WHERE 'beta' <= tag");
  // Mixed string + numeric conjunction.
  ExpectFusedParity("SELECT k, v FROM big WHERE tag > 'beta' AND v > 0");
}

TEST_F(FusedParityTest, RuntimeFallbackCases) {
  // Parameters resolve per run; the fused program must bind them from the
  // run's bindings, and identical results must come out either way.
  ExpectFusedParity("SELECT k, v FROM big WHERE v > ? AND k < ?",
                    {exec::ScalarValue::Float(0.0), exec::ScalarValue::Int(40)});
  // Division is not a fusable projection op -> filter-only fusion with the
  // projection falling back to the unfused evaluator.
  ExpectFusedParity("SELECT v / 2, k FROM big WHERE v > 0");
  // A bare bool-column predicate is not a comparison conjunct.
  ExpectFusedParity("SELECT k FROM big WHERE flag");
  // Column-vs-column comparisons are not literal leaves.
  ExpectFusedParity("SELECT k FROM big WHERE v > f");
  // OR trees are not conjunctions.
  ExpectFusedParity("SELECT k FROM big WHERE k < 5 OR v > 90");
}

TEST_F(FusedParityTest, DegenerateShapes) {
  ExpectFusedParity("SELECT k + 1 FROM empty_t WHERE v > 0");
  // Predicate selecting nothing / everything.
  ExpectFusedParity("SELECT k, v FROM big WHERE v > 1000");
  ExpectFusedParity("SELECT k, v FROM big WHERE v >= -1000");
}

TEST_F(FusedParityTest, FusedProgramCompiledOncePerPlan) {
  auto query = Compile("SELECT k + 1 FROM big WHERE k < 32 AND v > 0");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  exec::RunOptions run;
  ASSERT_TRUE((*query)->Run(run).ok());
  const int64_t compiles = (*query)->primitive_cache().fused_compiles();
  EXPECT_GE(compiles, 1);
  // Re-runs (any executor) reuse the cached program — structural analysis
  // happens exactly once per plan node.
  ASSERT_TRUE((*query)->Run(run).ok());
  run.exec.streaming = false;
  ASSERT_TRUE((*query)->Run(run).ok());
  EXPECT_EQ((*query)->primitive_cache().fused_compiles(), compiles);
}

// ---- Join build-side reuse ------------------------------------------------

TEST_F(FusedParityTest, JoinBuildReusedAcrossRunsAndExecutors) {
  // `r` is far smaller than `big`, so the planner builds on it; the build
  // subtree is a bare cacheable scan.
  auto query = Compile("SELECT big.k, r.w FROM big JOIN r ON big.k = r.kr "
                       "WHERE r.w > 10");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const exec::PrimitiveCache& pc = (*query)->primitive_cache();

  exec::RunOptions run;
  auto first = (*query)->Run(run);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(pc.join_hits(), 0);
  const int64_t misses = pc.join_misses();
  EXPECT_GE(misses, 1);

  auto second = (*query)->Run(run);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(pc.join_hits(), 1);
  EXPECT_EQ(pc.join_misses(), misses);
  ExpectBitIdentical(**first, **second);

  // The legacy executor keys by the same plan node: cross-executor hit.
  run.exec.streaming = false;
  auto legacy = (*query)->Run(run);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(pc.join_hits(), 2);
  EXPECT_EQ(pc.join_misses(), misses);
  ExpectBitIdentical(**first, **legacy);
}

TEST_F(FusedParityTest, JoinCacheInvalidatedByReRegisteredTable) {
  auto query =
      Compile("SELECT big.k, r.w FROM big JOIN r ON big.k = r.kr");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const exec::PrimitiveCache& pc = (*query)->primitive_cache();

  ASSERT_TRUE((*query)->Run().ok());
  ASSERT_TRUE((*query)->Run().ok());
  EXPECT_EQ(pc.join_hits(), 1);
  const int64_t misses = pc.join_misses();

  // Swap the build table for fresh data: the table identity changes, so
  // the next run must rebuild — and reflect the new rows.
  Register("r", TableBuilder("r")
                    .AddInt64("kr", {1, 2, 3})
                    .AddFloat64("w", {10.0, 20.0, 30.0}));
  auto rebuilt = (*query)->Run();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(pc.join_hits(), 1);
  EXPECT_GT(pc.join_misses(), misses);

  // The rebuilt result equals a from-scratch compile over the new catalog.
  auto fresh = RunWith("SELECT big.k, r.w FROM big JOIN r ON big.k = r.kr",
                       /*streaming=*/true, kWholeRelation);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ExpectBitIdentical(**fresh, **rebuilt);
}

TEST_F(FusedParityTest, JoinCacheInvalidatedByDml) {
  ASSERT_TRUE(session_.Sql("CREATE TABLE jt (kr BIGINT, w DOUBLE)").ok());
  ASSERT_TRUE(
      session_.Sql("INSERT INTO jt VALUES (1, 5.0), (2, 6.0), (3, 7.0)")
          .ok());
  auto query =
      Compile("SELECT big.k, jt.w FROM big JOIN jt ON big.k = jt.kr");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const exec::PrimitiveCache& pc = (*query)->primitive_cache();

  ASSERT_TRUE((*query)->Run().ok());
  ASSERT_TRUE((*query)->Run().ok());
  EXPECT_EQ(pc.join_hits(), 1);

  // DML installs a fresh table: the cached build side must not survive.
  ASSERT_TRUE(session_.Sql("UPDATE jt SET w = w + 100").ok());
  auto updated = (*query)->Run();
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(pc.join_hits(), 1);

  auto fresh = RunWith("SELECT big.k, jt.w FROM big JOIN jt ON big.k = jt.kr",
                       /*streaming=*/true, kWholeRelation);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ExpectBitIdentical(**fresh, **updated);
}

TEST_F(FusedParityTest, ParamBearingBuildSideNeverCached) {
  // The build subtree contains a `?` filter, so its result changes with
  // the bindings: the cache must not even attempt a lookup.
  auto query = Compile(
      "SELECT big.k, s.w FROM big JOIN "
      "(SELECT kr, w FROM r WHERE w > ?) s ON big.k = s.kr");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const exec::PrimitiveCache& pc = (*query)->primitive_cache();

  auto low = (*query)->Run({exec::ScalarValue::Float(5.0)});
  ASSERT_TRUE(low.ok()) << low.status().ToString();
  auto high = (*query)->Run({exec::ScalarValue::Float(40.0)});
  ASSERT_TRUE(high.ok()) << high.status().ToString();
  EXPECT_EQ(pc.join_hits(), 0);
  EXPECT_EQ(pc.join_misses(), 0);

  // Each binding matches a from-scratch run with the same binding.
  auto fresh_low = RunWith(
      "SELECT big.k, s.w FROM big JOIN "
      "(SELECT kr, w FROM r WHERE w > ?) s ON big.k = s.kr",
      /*streaming=*/true, kWholeRelation, {exec::ScalarValue::Float(5.0)});
  ASSERT_TRUE(fresh_low.ok()) << fresh_low.status().ToString();
  ExpectBitIdentical(**fresh_low, **low);
  EXPECT_NE((*low)->num_rows(), (*high)->num_rows());
}

TEST_F(FusedParityTest, ScanTransferCachedAcrossRunsAndExecutors) {
  // Tables register on the CPU device and the session compiles for the
  // accel device, so every scan needs a device transfer; repeated runs
  // must reuse the moved columns instead of re-copying the table.
  auto query = Compile("SELECT kr, w FROM r WHERE w > 10");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const exec::PrimitiveCache& pc = (*query)->primitive_cache();

  exec::RunOptions run;
  auto first = (*query)->Run(run);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(pc.scan_hits(), 0);
  const int64_t misses = pc.scan_misses();
  EXPECT_GE(misses, 1);

  auto second = (*query)->Run(run);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(pc.scan_hits(), 1);
  EXPECT_EQ(pc.scan_misses(), misses);
  ExpectBitIdentical(**first, **second);

  // The legacy executor keys by the same scan node: cross-executor hit.
  run.exec.streaming = false;
  auto legacy = (*query)->Run(run);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(pc.scan_hits(), 2);
  EXPECT_EQ(pc.scan_misses(), misses);
  ExpectBitIdentical(**first, **legacy);
}

TEST_F(FusedParityTest, ScanCacheInvalidatedByReRegisteredTable) {
  auto query = Compile("SELECT kr, w FROM r WHERE w > 10");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const exec::PrimitiveCache& pc = (*query)->primitive_cache();

  ASSERT_TRUE((*query)->Run().ok());
  ASSERT_TRUE((*query)->Run().ok());
  EXPECT_EQ(pc.scan_hits(), 1);
  const int64_t misses = pc.scan_misses();

  // Swap the table for fresh data: identity changes, so the next run must
  // re-transfer — and read the new rows, not the cached copy.
  Register("r", TableBuilder("r")
                    .AddInt64("kr", {1, 2, 3})
                    .AddFloat64("w", {15.0, 5.0, 25.0}));
  auto refreshed = (*query)->Run();
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(pc.scan_hits(), 1);
  EXPECT_GT(pc.scan_misses(), misses);
  EXPECT_EQ((*refreshed)->num_rows(), 2);

  auto fresh = RunWith("SELECT kr, w FROM r WHERE w > 10",
                       /*streaming=*/true, kWholeRelation);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ExpectBitIdentical(**fresh, **refreshed);
}

}  // namespace
}  // namespace tdp
