// The ingest-while-serving differential harness (the PR's tentpole proof).
//
// A seeded driver interleaves random DML (multi-row INSERT VALUES,
// INSERT ... SELECT self-copies that cross segment boundaries, predicated
// UPDATEs over int and string columns, predicated and full DELETEs) with
// verification SELECTs against a naive row-vector reference model. After
// every mutation the full table is read back under a sweep of execution
// configurations — morsel sizes {1, 7, 4096, whole} x {streaming, legacy}
// — and every result must be bit-identical to the others and value-equal
// to the reference, row for row. The engine preserves insertion order
// through all three mutations (INSERT appends, UPDATE rewrites in place,
// DELETE drops rows without reordering), so the comparison is positional:
// no sorting, no tolerance.
//
// The same driver proves snapshot isolation as a property: at random steps
// a streaming cursor is opened BEFORE a write and drained AFTER it — the
// cursor must reproduce the pre-write reference state exactly, never a
// torn mix. Everything is integer/string-exact by construction, so any
// deviation is an engine bug, not float noise.
//
// The suite runs under TDP_NUM_THREADS=1 and again as
// dml_differential_test_mt under TDP_NUM_THREADS=4 (see CMakeLists), and
// rides in the TSan/ASan CI jobs.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/exec/run_options.h"
#include "src/runtime/session.h"
#include "src/storage/table.h"
#include "tests/vector_test_util.h"

namespace tdp {
namespace {

using exec::RunOptions;

// ---- Naive reference model --------------------------------------------------

struct RefRow {
  int64_t id;
  int64_t val;
  std::string tag;
};

// The oracle: a plain row vector with loop-based DML. Deliberately naive —
// no segments, no bitmaps, no snapshots — so a bug here and a bug in the
// engine cannot cancel out.
class RefTable {
 public:
  int64_t InsertRows(const std::vector<RefRow>& rows) {
    for (const RefRow& r : rows) rows_.push_back(r);
    return static_cast<int64_t>(rows.size());
  }

  int64_t SelfCopy(int64_t id_offset) {
    const size_t n = rows_.size();
    for (size_t i = 0; i < n; ++i) {
      RefRow copy = rows_[i];
      copy.id += id_offset;
      rows_.push_back(std::move(copy));
    }
    return static_cast<int64_t>(n);
  }

  int64_t UpdateValWhereIdMod(int64_t m, int64_t r, int64_t delta) {
    int64_t hit = 0;
    for (RefRow& row : rows_) {
      if (row.id % m == r) {
        row.val += delta;
        ++hit;
      }
    }
    return hit;
  }

  int64_t UpdateTagWhereValMod(int64_t m, int64_t r, const std::string& tag) {
    int64_t hit = 0;
    for (RefRow& row : rows_) {
      if (row.val % m == r) {
        row.tag = tag;
        ++hit;
      }
    }
    return hit;
  }

  int64_t DeleteWhereIdMod(int64_t m, int64_t r) {
    std::vector<RefRow> kept;
    kept.reserve(rows_.size());
    int64_t hit = 0;
    for (RefRow& row : rows_) {
      if (row.id % m == r) {
        ++hit;
      } else {
        kept.push_back(std::move(row));
      }
    }
    rows_ = std::move(kept);
    return hit;
  }

  int64_t DeleteWhereValAbove(int64_t cutoff) {
    std::vector<RefRow> kept;
    kept.reserve(rows_.size());
    int64_t hit = 0;
    for (RefRow& row : rows_) {
      if (row.val > cutoff) {
        ++hit;
      } else {
        kept.push_back(std::move(row));
      }
    }
    rows_ = std::move(kept);
    return hit;
  }

  const std::vector<RefRow>& rows() const { return rows_; }

 private:
  std::vector<RefRow> rows_;
};

// ---- Execution-config sweep -------------------------------------------------

struct ExecConfig {
  bool streaming;
  int64_t morsel_rows;  // 0 = executor default (whole-input morsels here)
  std::string label;
};

std::vector<ExecConfig> Sweep() {
  std::vector<ExecConfig> configs;
  for (const bool streaming : {true, false}) {
    for (const int64_t morsel : {int64_t{1}, int64_t{7}, int64_t{4096},
                                 int64_t{0}}) {
      ExecConfig c;
      c.streaming = streaming;
      c.morsel_rows = morsel;
      c.label = std::string(streaming ? "streaming" : "legacy") + "/morsel=" +
                std::to_string(morsel);
      configs.push_back(std::move(c));
    }
  }
  return configs;
}

RunOptions MakeRun(const ExecConfig& c) {
  RunOptions run;
  run.exec.streaming = c.streaming;
  run.exec.morsel_rows = c.morsel_rows;
  return run;
}

// ---- Harness ----------------------------------------------------------------

class DmlDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

// Positional, exact comparison of an engine result against the reference.
void ExpectMatchesReference(const Table& got,
                            const std::vector<RefRow>& want,
                            const std::string& what) {
  ASSERT_EQ(got.num_rows(), static_cast<int64_t>(want.size())) << what;
  ASSERT_EQ(got.num_columns(), 3) << what;
  const Tensor ids = got.column(0).data().Contiguous();
  const Tensor vals = got.column(1).data().Contiguous();
  const std::vector<std::string> tags = got.column(2).DecodeStrings();
  for (size_t i = 0; i < want.size(); ++i) {
    const int64_t row = static_cast<int64_t>(i);
    ASSERT_EQ(static_cast<int64_t>(ids.At({row})), want[i].id)
        << what << " row " << i;
    ASSERT_EQ(static_cast<int64_t>(vals.At({row})), want[i].val)
        << what << " row " << i;
    ASSERT_EQ(tags[i], want[i].tag) << what << " row " << i;
  }
}

// Drains `cursor` and compares the concatenated stream against `want`.
void ExpectCursorMatches(exec::ResultCursor& cursor,
                         const std::vector<RefRow>& want,
                         const std::string& what) {
  size_t at = 0;
  while (true) {
    auto chunk = cursor.Next();
    ASSERT_TRUE(chunk.ok()) << what << ": " << chunk.status().ToString();
    if (!chunk->has_value()) break;
    const exec::Chunk& c = **chunk;
    ASSERT_EQ(c.columns.size(), 3u) << what;
    const Tensor ids = c.columns[0].data().Contiguous();
    const Tensor vals = c.columns[1].data().Contiguous();
    const std::vector<std::string> tags = c.columns[2].DecodeStrings();
    for (int64_t i = 0; i < c.num_rows(); ++i, ++at) {
      ASSERT_LT(at, want.size()) << what << ": cursor yields extra rows";
      ASSERT_EQ(static_cast<int64_t>(ids.At({i})), want[at].id)
          << what << " row " << at;
      ASSERT_EQ(static_cast<int64_t>(vals.At({i})), want[at].val)
          << what << " row " << at;
      ASSERT_EQ(tags[static_cast<size_t>(i)], want[at].tag)
          << what << " row " << at;
    }
  }
  EXPECT_EQ(at, want.size()) << what << ": cursor truncated the snapshot";
}

int64_t RunDml(Session& session, const std::string& sql,
               const ExecConfig& config) {
  auto r = session.Sql(sql, {}, MakeRun(config));
  EXPECT_TRUE(r.ok()) << sql << " [" << config.label
                      << "]: " << r.status().ToString();
  if (!r.ok()) return -1;
  return static_cast<int64_t>((*r)->column(0).data().At({0}));
}

TEST_P(DmlDifferentialTest, RandomDmlAgreesWithReferenceAtEveryStep) {
  const uint64_t seed = GetParam();
  Rng rng(0xD31'0000 + seed);
  const std::vector<ExecConfig> configs = Sweep();

  Session session;
  ASSERT_TRUE(
      session.Sql("CREATE TABLE t (id INT, val INT, tag TEXT)").ok());
  RefTable ref;
  int64_t next_id = 0;

  const std::string kReadAll = "SELECT id, val, tag FROM t";
  constexpr int kSteps = 36;

  for (int step = 0; step < kSteps; ++step) {
    const ExecConfig& config = configs[static_cast<size_t>(step) %
                                       configs.size()];
    const std::string what = "seed " + std::to_string(seed) + " step " +
                             std::to_string(step) + " [" + config.label +
                             "]";

    // Snapshot isolation property: a cursor opened before the write must
    // replay the pre-write state after the write lands.
    std::unique_ptr<exec::ResultCursor> pre_write_cursor;
    std::vector<RefRow> pre_write_rows;
    if (!ref.rows().empty() && rng.Bernoulli(0.3)) {
      auto cursor = session.Execute(kReadAll, {}, MakeRun(config));
      ASSERT_TRUE(cursor.ok()) << what << ": "
                               << cursor.status().ToString();
      pre_write_cursor = std::move(*cursor);
      pre_write_rows = ref.rows();
    }

    // One random mutation, engine and reference in lockstep; the engine's
    // rows_affected must equal the reference's count.
    const int64_t op = ref.rows().empty() ? 0 : rng.UniformInt(0, 9);
    int64_t got = 0;
    int64_t want = 0;
    if (op <= 3) {  // multi-row INSERT VALUES
      const int64_t n = rng.UniformInt(1, 5);
      std::vector<RefRow> fresh;
      std::string sql = "INSERT INTO t VALUES ";
      for (int64_t i = 0; i < n; ++i) {
        RefRow row;
        row.id = next_id++;
        row.val = rng.UniformInt(0, 999);
        row.tag = "t" + std::to_string(rng.UniformInt(0, 12));
        if (i > 0) sql += ", ";
        sql += "(" + std::to_string(row.id) + ", " +
               std::to_string(row.val) + ", '" + row.tag + "')";
        fresh.push_back(std::move(row));
      }
      got = RunDml(session, sql, config);
      want = ref.InsertRows(fresh);
    } else if (op == 4 &&
               ref.rows().size() < 3000) {  // segment-crossing self-copy
      const int64_t offset = next_id;
      got = RunDml(session,
                   "INSERT INTO t SELECT id + " + std::to_string(offset) +
                       ", val, tag FROM t",
                   config);
      want = ref.SelfCopy(offset);
      next_id = 2 * offset;
    } else if (op == 5 || op == 6) {  // arithmetic UPDATE
      const int64_t m = rng.UniformInt(2, 5);
      const int64_t r = rng.UniformInt(0, m - 1);
      const int64_t delta = rng.UniformInt(0, 50);
      got = RunDml(session,
                   "UPDATE t SET val = val + " + std::to_string(delta) +
                       " WHERE id % " + std::to_string(m) + " = " +
                       std::to_string(r),
                   config);
      want = ref.UpdateValWhereIdMod(m, r, delta);
    } else if (op == 7) {  // string UPDATE
      const int64_t m = rng.UniformInt(2, 5);
      const int64_t r = rng.UniformInt(0, m - 1);
      const std::string tag = "s" + std::to_string(step);
      got = RunDml(session,
                   "UPDATE t SET tag = '" + tag + "' WHERE val % " +
                       std::to_string(m) + " = " + std::to_string(r),
                   config);
      want = ref.UpdateTagWhereValMod(m, r, tag);
    } else if (op == 8) {  // modular DELETE
      const int64_t m = rng.UniformInt(3, 9);
      const int64_t r = rng.UniformInt(0, m - 1);
      got = RunDml(session,
                   "DELETE FROM t WHERE id % " + std::to_string(m) +
                       " = " + std::to_string(r),
                   config);
      want = ref.DeleteWhereIdMod(m, r);
    } else {  // threshold DELETE
      const int64_t cutoff = rng.UniformInt(800, 1099);
      got = RunDml(session,
                   "DELETE FROM t WHERE val > " + std::to_string(cutoff),
                   config);
      want = ref.DeleteWhereValAbove(cutoff);
    }
    ASSERT_EQ(got, want) << what << ": rows_affected diverged";

    // The pre-write cursor drains to the pre-write state — the write that
    // just landed must be invisible to it.
    if (pre_write_cursor != nullptr) {
      ExpectCursorMatches(*pre_write_cursor, pre_write_rows,
                          what + " snapshot");
      pre_write_cursor.reset();
    }

    // Full read-back sweep: every config bit-identical, reference-exact.
    std::vector<std::shared_ptr<Table>> results;
    for (const ExecConfig& read : configs) {
      auto r = session.Sql(kReadAll, {}, MakeRun(read));
      ASSERT_TRUE(r.ok()) << what << " read [" << read.label
                          << "]: " << r.status().ToString();
      results.push_back(*r);
    }
    ExpectMatchesReference(*results[0], ref.rows(), what);
    for (size_t i = 1; i < results.size(); ++i) {
      testutil::ExpectTablesBitIdentical(
          *results[0], *results[i],
          what + " vs read config " + configs[i].label);
    }
  }

  // The harness must have actually grown the table across segments at
  // least once in a while; guard against a driver regression that stops
  // generating large tables (kSegmentTargetRows is 4096 physical rows).
  if (seed == 0) {
    auto table = session.catalog().GetTable("t");
    ASSERT_TRUE(table.ok());
    EXPECT_GT((*table)->num_physical_rows(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmlDifferentialTest,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace tdp
