#include <gtest/gtest.h>

#include "src/autograd/node.h"
#include "src/common/rng.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

// Numerical gradient of a scalar-valued function wrt one input tensor.
template <typename Fn>
Tensor NumericalGrad(Fn fn, Tensor& x, double eps = 1e-3) {
  Tensor grad = Tensor::Zeros(x.shape(), DType::kFloat64);
  Tensor xc = x.Contiguous();
  float* p = x.data<float>();
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = p[i];
    p[i] = static_cast<float>(orig + eps);
    const double up = fn();
    p[i] = static_cast<float>(orig - eps);
    const double down = fn();
    p[i] = orig;
    grad.data<double>()[i] = (up - down) / (2 * eps);
  }
  (void)xc;
  return grad;
}

void ExpectGradClose(const Tensor& analytic, const Tensor& numeric,
                     double tol = 5e-2) {
  ASSERT_TRUE(analytic.defined()) << "missing gradient";
  ASSERT_EQ(analytic.shape(), numeric.shape());
  const Tensor a = analytic.To(DType::kFloat64);
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double av = a.Contiguous().data<double>()[i];
    const double nv = numeric.Contiguous().data<double>()[i];
    EXPECT_NEAR(av, nv, tol * std::max(1.0, std::abs(nv)))
        << "at flat index " << i;
  }
}

TEST(AutogradTest, AddBackward) {
  Tensor a = Tensor::FromVector(std::vector<float>{1, 2}).set_requires_grad(true);
  Tensor b = Tensor::FromVector(std::vector<float>{3, 4}).set_requires_grad(true);
  Sum(Add(a, b)).Backward();
  EXPECT_EQ(a.grad().ToVector<float>(), (std::vector<float>{1, 1}));
  EXPECT_EQ(b.grad().ToVector<float>(), (std::vector<float>{1, 1}));
}

TEST(AutogradTest, MulBackward) {
  Tensor a = Tensor::FromVector(std::vector<float>{2, 3}).set_requires_grad(true);
  Tensor b = Tensor::FromVector(std::vector<float>{5, 7});
  Sum(Mul(a, b)).Backward();
  EXPECT_EQ(a.grad().ToVector<float>(), (std::vector<float>{5, 7}));
}

TEST(AutogradTest, BroadcastReducesGrad) {
  Tensor a = Tensor::FromVector(std::vector<float>{1, 2, 3}, {3, 1})
                 .set_requires_grad(true);
  Tensor b = Tensor::Ones({3, 4});
  Sum(Mul(a, b)).Backward();
  // Each a element is used 4 times with factor 1.
  EXPECT_EQ(a.grad().ToVector<float>(), (std::vector<float>{4, 4, 4}));
}

TEST(AutogradTest, ChainRuleThroughReuse) {
  // y = sum(x * x + x); dy/dx = 2x + 1
  Tensor x = Tensor::FromVector(std::vector<float>{1, -2, 0.5f})
                 .set_requires_grad(true);
  Sum(Add(Mul(x, x), x)).Backward();
  EXPECT_EQ(x.grad().ToVector<float>(), (std::vector<float>{3, -3, 2}));
}

TEST(AutogradTest, GradAccumulatesAcrossBackwards) {
  Tensor x = Tensor::Ones({2}).set_requires_grad(true);
  Sum(x).Backward();
  Sum(x).Backward();
  EXPECT_EQ(x.grad().ToVector<float>(), (std::vector<float>{2, 2}));
  x.ZeroGrad();
  EXPECT_FALSE(x.grad().defined());
}

TEST(AutogradTest, NoGradGuardDisablesRecording) {
  Tensor x = Tensor::Ones({2}).set_requires_grad(true);
  autograd::NoGradGuard guard;
  Tensor y = Mul(x, x);
  EXPECT_EQ(y.grad_fn(), nullptr);
}

TEST(AutogradTest, DetachStopsGradient) {
  Tensor x = Tensor::FromVector(std::vector<float>{3}).set_requires_grad(true);
  Sum(Mul(x.Detach(), x)).Backward();
  // Only the non-detached path contributes: d/dx (c * x) = c = 3.
  EXPECT_EQ(x.grad().ToVector<float>(), (std::vector<float>{3}));
}

TEST(AutogradTest, DivExpLogNumericCheck) {
  Rng rng(5);
  Tensor x = RandUniform({4}, 0.5, 2.0, rng).set_requires_grad(true);
  auto loss = [&]() {
    return Sum(Div(Exp(x), AddScalar(Log(x), 2.0))).item<double>();
  };
  Sum(Div(Exp(x), AddScalar(Log(x), 2.0))).Backward();
  ExpectGradClose(x.grad(), NumericalGrad(loss, x));
}

TEST(AutogradTest, SoftmaxNumericCheck) {
  Rng rng(6);
  Tensor x = RandNormal({3, 4}, 0, 1, rng).set_requires_grad(true);
  Tensor w = RandNormal({3, 4}, 0, 1, rng);
  auto loss = [&]() { return Sum(Mul(Softmax(x, 1), w)).item<double>(); };
  Sum(Mul(Softmax(x, 1), w)).Backward();
  ExpectGradClose(x.grad(), NumericalGrad(loss, x));
}

TEST(AutogradTest, MatMulNumericCheck) {
  Rng rng(7);
  Tensor a = RandNormal({3, 4}, 0, 1, rng).set_requires_grad(true);
  Tensor b = RandNormal({4, 2}, 0, 1, rng).set_requires_grad(true);
  auto loss = [&]() { return Sum(MatMul(a, b)).item<double>(); };
  Sum(MatMul(a, b)).Backward();
  ExpectGradClose(a.grad(), NumericalGrad(loss, a));
  ExpectGradClose(b.grad(), NumericalGrad(loss, b));
}

TEST(AutogradTest, ReluSubgradient) {
  Tensor x = Tensor::FromVector(std::vector<float>{-1, 2}).set_requires_grad(true);
  Sum(Relu(x)).Backward();
  EXPECT_EQ(x.grad().ToVector<float>(), (std::vector<float>{0, 1}));
}

TEST(AutogradTest, MaxBackwardRoutesToWinner) {
  Tensor x = Tensor::FromVector(std::vector<float>{1, 5, 3}, {1, 3})
                 .set_requires_grad(true);
  Sum(Max(x, 1, false).values).Backward();
  EXPECT_EQ(x.grad().ToVector<float>(), (std::vector<float>{0, 1, 0}));
}

TEST(AutogradTest, IndexSelectBackwardScatters) {
  Tensor x = Tensor::FromVector(std::vector<float>{1, 2, 3}).set_requires_grad(true);
  Tensor idx = Tensor::FromVector(std::vector<int64_t>{2, 2, 0});
  Sum(IndexSelect(x, 0, idx)).Backward();
  EXPECT_EQ(x.grad().ToVector<float>(), (std::vector<float>{1, 0, 2}));
}

TEST(AutogradTest, SliceAndCatBackward) {
  Tensor x = Tensor::FromVector(std::vector<float>{1, 2, 3, 4}).set_requires_grad(true);
  Tensor y = Cat({Slice(x, 0, 0, 2), Slice(x, 0, 2, 2), Slice(x, 0, 1, 2)}, 0);
  Sum(y).Backward();
  EXPECT_EQ(x.grad().ToVector<float>(), (std::vector<float>{1, 2, 2, 1}));
}

TEST(AutogradTest, ReshapeTransposeBackward) {
  Rng rng(8);
  Tensor x = RandNormal({2, 6}, 0, 1, rng).set_requires_grad(true);
  Tensor w = RandNormal({6, 2}, 0, 1, rng);
  auto loss = [&]() {
    return Sum(Mul(Transpose(Reshape(x, {3, 4}), 0, 1).Contiguous(),
                   Reshape(w, {4, 3})))
        .item<double>();
  };
  Sum(Mul(Transpose(Reshape(x, {3, 4}), 0, 1).Contiguous(),
          Reshape(w, {4, 3})))
      .Backward();
  ExpectGradClose(x.grad(), NumericalGrad(loss, x));
}

TEST(AutogradTest, Conv2dNumericCheck) {
  Rng rng(9);
  Tensor input = RandNormal({2, 2, 5, 5}, 0, 1, rng).set_requires_grad(true);
  Tensor weight = RandNormal({3, 2, 3, 3}, 0, 0.5, rng).set_requires_grad(true);
  Tensor bias = RandNormal({3}, 0, 0.5, rng).set_requires_grad(true);
  auto loss = [&]() {
    return Sum(Conv2d(input, weight, bias, 1, 1)).item<double>();
  };
  Sum(Conv2d(input, weight, bias, 1, 1)).Backward();
  ExpectGradClose(weight.grad(), NumericalGrad(loss, weight));
  ExpectGradClose(bias.grad(), NumericalGrad(loss, bias));
  ExpectGradClose(input.grad(), NumericalGrad(loss, input));
}

TEST(AutogradTest, MaxPoolBackward) {
  Tensor x = Tensor::FromVector(
                 std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                    13, 14, 15, 16},
                 {1, 1, 4, 4})
                 .set_requires_grad(true);
  Sum(MaxPool2d(x, 2, 2)).Backward();
  // Winners are 6, 8, 14, 16.
  std::vector<float> expected(16, 0);
  expected[5] = expected[7] = expected[13] = expected[15] = 1;
  EXPECT_EQ(x.grad().ToVector<float>(), expected);
}

TEST(AutogradTest, CumSumBackward) {
  Tensor x = Tensor::FromVector(std::vector<float>{1, 2, 3}).set_requires_grad(true);
  Tensor w = Tensor::FromVector(std::vector<float>{1, 10, 100});
  Sum(Mul(CumSum(x, 0), w)).Backward();
  // dy/dx_i = sum_{j>=i} w_j
  EXPECT_EQ(x.grad().ToVector<float>(), (std::vector<float>{111, 110, 100}));
}

TEST(AutogradTest, BackwardRequiresScalarRoot) {
  Tensor x = Tensor::Ones({2}).set_requires_grad(true);
  Tensor y = Mul(x, x);
  // Explicit gradient works for non-scalar roots.
  autograd::RunBackward(y, Tensor::Ones({2}));
  EXPECT_EQ(x.grad().ToVector<float>(), (std::vector<float>{2, 2}));
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // y = a*x, z = b*x, loss = sum(y + z): dx = a + b.
  Tensor x = Tensor::FromVector(std::vector<float>{1, 1}).set_requires_grad(true);
  Tensor a = Tensor::Full({2}, 3);
  Tensor b = Tensor::Full({2}, 4);
  Sum(Add(Mul(a, x), Mul(b, x))).Backward();
  EXPECT_EQ(x.grad().ToVector<float>(), (std::vector<float>{7, 7}));
}

}  // namespace
}  // namespace tdp
