#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/runtime/session.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

class QueryE2ETest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A small sales table.
    auto sales = TableBuilder("sales")
                     .AddInt64("id", {1, 2, 3, 4, 5, 6})
                     .AddStrings("region", {"east", "west", "east", "north",
                                            "west", "east"})
                     .AddFloat32("amount", {10, 20, 30, 40, 50, 60})
                     .AddInt64("qty", {1, 2, 3, 4, 5, 6})
                     .Build();
    ASSERT_TRUE(sales.ok()) << sales.status().ToString();
    ASSERT_TRUE(session_.RegisterTable("sales", sales.value()).ok());

    auto regions = TableBuilder("regions")
                       .AddStrings("name", {"east", "west", "south"})
                       .AddInt64("population", {100, 200, 300})
                       .Build();
    ASSERT_TRUE(regions.ok());
    ASSERT_TRUE(session_.RegisterTable("regions", regions.value()).ok());
  }

  std::shared_ptr<Table> Run(const std::string& sql,
                             Device device = Device::kAccel) {
    QueryOptions options;
    options.device = device;
    auto result = session_.Sql(sql, options);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
    return result.ok() ? result.value() : nullptr;
  }

  Session session_;
};

TEST_F(QueryE2ETest, SelectStar) {
  auto t = Run("SELECT * FROM sales");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 6);
  EXPECT_EQ(t->num_columns(), 4);
}

TEST_F(QueryE2ETest, ProjectionWithArithmetic) {
  auto t = Run("SELECT amount * 2 AS double_amount, amount + qty FROM sales");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->column_names()[0], "double_amount");
  EXPECT_FLOAT_EQ(static_cast<float>(t->column(0).data().At({0})), 20.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(t->column(1).data().At({5})), 66.0f);
}

TEST_F(QueryE2ETest, WhereNumericFilter) {
  auto t = Run("SELECT id FROM sales WHERE amount > 25");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 4);
  EXPECT_EQ(t->column(0).data().At({0}), 3.0);
}

TEST_F(QueryE2ETest, WhereStringEquality) {
  auto t = Run("SELECT id FROM sales WHERE region = 'east'");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 3);
}

TEST_F(QueryE2ETest, WhereStringRangeUsesOrderPreservingCodes) {
  // 'east' < 'north' < 'west' lexicographically.
  auto t = Run("SELECT id FROM sales WHERE region < 'north'");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 3);  // the three 'east' rows
  auto u = Run("SELECT id FROM sales WHERE region >= 'north'");
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->num_rows(), 3);  // north + two west
}

TEST_F(QueryE2ETest, CompoundPredicates) {
  auto t = Run(
      "SELECT id FROM sales WHERE (amount > 15 AND region = 'east') OR id = "
      "1");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 3);  // ids 1, 3, 6
}

TEST_F(QueryE2ETest, BetweenAndIn) {
  auto t = Run("SELECT id FROM sales WHERE amount BETWEEN 20 AND 40");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 3);
  auto u = Run("SELECT id FROM sales WHERE region IN ('west', 'north')");
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->num_rows(), 3);
}

TEST_F(QueryE2ETest, GroupByCount) {
  auto t = Run(
      "SELECT region, COUNT(*) AS n FROM sales GROUP BY region ORDER BY n "
      "DESC");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 3);
  // east=3, west=2, north=1.
  EXPECT_EQ(t->column(1).data().At({0}), 3.0);
  EXPECT_EQ(t->column(1).data().At({2}), 1.0);
  EXPECT_EQ(t->column(0).DecodeStrings()[0], "east");
}

TEST_F(QueryE2ETest, GroupByAggregates) {
  auto t = Run(
      "SELECT region, SUM(amount), AVG(amount), MIN(qty), MAX(qty) FROM "
      "sales GROUP BY region ORDER BY region");
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->num_rows(), 3);
  // Sorted by region: east, north, west.
  EXPECT_FLOAT_EQ(static_cast<float>(t->column(1).data().At({0})), 100.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(t->column(2).data().At({0})),
                  100.0f / 3.0f);
  EXPECT_EQ(t->column(3).data().At({2}), 2.0);  // west min qty
  EXPECT_EQ(t->column(4).data().At({2}), 5.0);  // west max qty
}

TEST_F(QueryE2ETest, GlobalAggregatesWithoutGroupBy) {
  auto t = Run("SELECT COUNT(*), SUM(amount), AVG(qty) FROM sales");
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->num_rows(), 1);
  EXPECT_EQ(t->column(0).data().At({0}), 6.0);
  EXPECT_FLOAT_EQ(static_cast<float>(t->column(1).data().At({0})), 210.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(t->column(2).data().At({0})), 3.5f);
}

TEST_F(QueryE2ETest, AggregateArithmetic) {
  auto t = Run("SELECT SUM(amount) / COUNT(*) AS avg2, AVG(amount) FROM sales");
  ASSERT_NE(t, nullptr);
  EXPECT_FLOAT_EQ(static_cast<float>(t->column(0).data().At({0})),
                  static_cast<float>(t->column(1).data().At({0})));
}

TEST_F(QueryE2ETest, HavingFiltersGroups) {
  auto t = Run(
      "SELECT region, COUNT(*) FROM sales GROUP BY region HAVING COUNT(*) > "
      "1 ORDER BY region");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 2);  // east, west
}

TEST_F(QueryE2ETest, CountDistinct) {
  auto t = Run("SELECT COUNT(DISTINCT region) FROM sales");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->column(0).data().At({0}), 3.0);
}

TEST_F(QueryE2ETest, OrderByMultipleKeys) {
  auto t = Run("SELECT region, amount FROM sales ORDER BY region ASC, "
               "amount DESC");
  ASSERT_NE(t, nullptr);
  const auto regions = t->column(0).DecodeStrings();
  EXPECT_EQ(regions[0], "east");
  EXPECT_FLOAT_EQ(static_cast<float>(t->column(1).data().At({0})), 60.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(t->column(1).data().At({2})), 10.0f);
}

TEST_F(QueryE2ETest, LimitAndOffset) {
  auto t = Run("SELECT id FROM sales ORDER BY id LIMIT 2 OFFSET 1");
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->num_rows(), 2);
  EXPECT_EQ(t->column(0).data().At({0}), 2.0);
  EXPECT_EQ(t->column(0).data().At({1}), 3.0);
}

TEST_F(QueryE2ETest, Distinct) {
  auto t = Run("SELECT DISTINCT region FROM sales");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 3);
}

TEST_F(QueryE2ETest, InnerJoin) {
  auto t = Run(
      "SELECT s.id, r.population FROM sales s JOIN regions r ON s.region = "
      "r.name ORDER BY s.id");
  ASSERT_NE(t, nullptr);
  // north has no match; 5 rows survive.
  EXPECT_EQ(t->num_rows(), 5);
  EXPECT_EQ(t->column(1).data().At({0}), 100.0);  // east
  EXPECT_EQ(t->column(1).data().At({1}), 200.0);  // west
}

TEST_F(QueryE2ETest, JoinWithResidualAndPushdown) {
  auto t = Run(
      "SELECT s.id FROM sales s JOIN regions r ON s.region = r.name WHERE "
      "r.population > 100 AND s.amount > 20");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 1);  // id 5 (west, 50)
  EXPECT_EQ(t->column(0).data().At({0}), 5.0);
}

TEST_F(QueryE2ETest, FromSubquery) {
  auto t = Run(
      "SELECT big_id FROM (SELECT id AS big_id FROM sales WHERE amount > 30) "
      "sub WHERE big_id < 6");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 2);  // 4, 5
}

TEST_F(QueryE2ETest, CaseExpression) {
  auto t = Run(
      "SELECT CASE WHEN amount > 35 THEN 1 ELSE 0 END AS is_big FROM sales "
      "ORDER BY id");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->column(0).data().At({0}), 0.0);
  EXPECT_EQ(t->column(0).data().At({5}), 1.0);
}

TEST_F(QueryE2ETest, SelectWithoutFrom) {
  auto t = Run("SELECT 1 + 2 AS three, 10 / 4 AS frac");
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->num_rows(), 1);
  EXPECT_EQ(t->column(0).data().At({0}), 3.0);
  EXPECT_FLOAT_EQ(static_cast<float>(t->column(1).data().At({0})), 2.5f);
}

TEST_F(QueryE2ETest, ResultsIdenticalAcrossDevices) {
  const std::string sql =
      "SELECT region, SUM(amount), COUNT(*) FROM sales WHERE qty >= 2 GROUP "
      "BY region ORDER BY region";
  auto cpu = Run(sql, Device::kCpu);
  auto accel = Run(sql, Device::kAccel);
  ASSERT_NE(cpu, nullptr);
  ASSERT_NE(accel, nullptr);
  ASSERT_EQ(cpu->num_rows(), accel->num_rows());
  for (int64_t r = 0; r < cpu->num_rows(); ++r) {
    EXPECT_EQ(cpu->column(1).data().At({r}), accel->column(1).data().At({r}));
    EXPECT_EQ(cpu->column(2).data().At({r}), accel->column(2).data().At({r}));
  }
}

TEST_F(QueryE2ETest, ErrorsAreStatusesNotCrashes) {
  EXPECT_FALSE(session_.Sql("SELECT nope FROM sales").ok());
  EXPECT_FALSE(session_.Sql("SELECT FROM sales").ok());
  EXPECT_FALSE(session_.Sql("SELECT id FROM missing_table").ok());
  EXPECT_FALSE(session_.Sql("SELECT id, COUNT(*) FROM sales").ok());
  EXPECT_FALSE(session_.Sql("SELECT id FROM sales WHERE region").ok());
}

TEST_F(QueryE2ETest, ExplainShowsPlan) {
  auto plan = session_.Explain(
      "SELECT region, COUNT(*) FROM sales WHERE amount > 10 GROUP BY region");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value().find("Aggregate"), std::string::npos);
  EXPECT_NE(plan.value().find("Scan"), std::string::npos);
}

TEST_F(QueryE2ETest, ReRegisteringTableRerunsQuery) {
  auto query = session_.Query("SELECT COUNT(*) FROM sales WHERE amount > 25");
  ASSERT_TRUE(query.ok());
  auto r1 = query.value()->Run();
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value()->column(0).data().At({0}), 4.0);

  auto sales2 = TableBuilder("sales")
                    .AddInt64("id", {7})
                    .AddStrings("region", {"east"})
                    .AddFloat32("amount", {100})
                    .AddInt64("qty", {1})
                    .Build();
  ASSERT_TRUE(session_.RegisterTable("sales", sales2.value()).ok());
  auto r2 = query.value()->Run();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2.value()->column(0).data().At({0}), 1.0);
}

TEST(LargeAggregateTest, BlockedAccumulationDeterministicAcrossThreads) {
  // More than one 4096-row block, so the aggregate's parallel fixed-block
  // accumulation (and its per-block min/max/count merge) actually runs —
  // the small fixture tables above never leave the serial path. Results
  // must be bit-identical to the serial engine at every thread count.
  constexpr int64_t kRows = 10000;
  std::vector<int64_t> keys;
  std::vector<double> values;
  keys.reserve(kRows);
  values.reserve(kRows);
  for (int64_t i = 0; i < kRows; ++i) {
    keys.push_back(i % 7);
    values.push_back(std::sin(static_cast<double>(i)) * 100.0);
  }
  Session session;
  auto big = TableBuilder("big").AddInt64("k", keys).AddFloat64("v", values)
                 .Build();
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(session.RegisterTable("big", big.value()).ok());

  auto run = [&session](int threads) {
    ScopedNumThreads guard(threads);
    auto result = session.Sql(
        "SELECT k, COUNT(*) AS n, SUM(v) AS s, AVG(v) AS a, MIN(v) AS lo, "
        "MAX(v) AS hi FROM big GROUP BY k ORDER BY k");
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result.value()->ToString() : std::string();
  };

  const std::string serial = run(1);
  ASSERT_FALSE(serial.empty());
  // 10000 rows over 7 keys: group 0 holds ceil(10000/7) rows.
  EXPECT_NE(serial.find("1429"), std::string::npos) << serial;
  for (int threads : {2, 4, 7}) {
    EXPECT_EQ(run(threads), serial) << "threads=" << threads;
  }
}

TEST(QueryNanTest, OrderBySortsNanLast) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Session session;
  auto t = TableBuilder("t")
               .AddInt64("id", {1, 2, 3, 4, 5})
               .AddFloat32("v", {2.0f, nan, 1.0f, nan, 3.0f})
               .Build();
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(session.RegisterTable("t", t.value()).ok());

  auto asc = session.Sql("SELECT id, v FROM t ORDER BY v");
  ASSERT_TRUE(asc.ok()) << asc.status().ToString();
  ASSERT_EQ((*asc)->num_rows(), 5);
  // Reals ascending (ids 3, 1, 5), then the NaN rows (stable: 2 before 4).
  EXPECT_EQ((*asc)->column(0).data().At({0}), 3.0);
  EXPECT_EQ((*asc)->column(0).data().At({1}), 1.0);
  EXPECT_EQ((*asc)->column(0).data().At({2}), 5.0);
  EXPECT_EQ((*asc)->column(0).data().At({3}), 2.0);
  EXPECT_EQ((*asc)->column(0).data().At({4}), 4.0);
  EXPECT_TRUE(std::isnan((*asc)->column(1).data().At({4})));

  auto desc = session.Sql("SELECT id FROM t ORDER BY v DESC");
  ASSERT_TRUE(desc.ok()) << desc.status().ToString();
  // Reals descending (ids 5, 1, 3), NaNs still last.
  EXPECT_EQ((*desc)->column(0).data().At({0}), 5.0);
  EXPECT_EQ((*desc)->column(0).data().At({1}), 1.0);
  EXPECT_EQ((*desc)->column(0).data().At({2}), 3.0);
  EXPECT_EQ((*desc)->column(0).data().At({3}), 2.0);
  EXPECT_EQ((*desc)->column(0).data().At({4}), 4.0);
}

TEST(QueryNanTest, GroupByCollapsesNanKeysIntoOneGroup) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Session session;
  auto t = TableBuilder("t")
               .AddFloat32("v", {1.0f, nan, 1.0f, nan, nan})
               .Build();
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(session.RegisterTable("t", t.value()).ok());
  auto r = session.Sql("SELECT v, COUNT(*) AS n FROM t GROUP BY v");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Two groups: {1.0 x2} and one collapsed NaN group x3.
  ASSERT_EQ((*r)->num_rows(), 2);
  EXPECT_EQ((*r)->column(0).data().At({0}), 1.0);
  EXPECT_EQ((*r)->column(1).data().At({0}), 2.0);
  EXPECT_TRUE(std::isnan((*r)->column(0).data().At({1})));
  EXPECT_EQ((*r)->column(1).data().At({1}), 3.0);
}

}  // namespace
}  // namespace tdp
