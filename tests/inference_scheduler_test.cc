// Unit tests for the cross-query inference batching scheduler: coalescing
// correctness (bytes identical to direct calls, per caller), group
// partitioning by constant args and model identity, FIFO leader/follower
// hand-off, direct-call fallbacks (non-batchable, oversized,
// backpressure), cooperative cancellation withdrawal, and error fan-out.
// This suite runs under TSan and ASan/UBSan in CI.

#include "src/runtime/inference_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/layers.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

using runtime::InferenceScheduler;

/// A batchable row-local scalar function: out[i] = 2 * in[i] + bias, where
/// `bias` comes from an optional constant argument. `forward_rows` records
/// the batch sizes the body actually saw — the coalescing observable.
udf::ScalarFunction MakeDoubler(std::shared_ptr<std::vector<int64_t>> seen,
                                std::shared_ptr<std::mutex> seen_mu,
                                int64_t preferred_batch_rows = 32) {
  udf::ScalarFunction fn;
  fn.name = "doubler";
  fn.return_type = udf::DeclaredType::kFloat;
  fn.batchable = true;
  fn.preferred_batch_rows = preferred_batch_rows;
  fn.fn = [seen, seen_mu](const std::vector<udf::Argument>& args,
                          int64_t num_rows,
                          Device device) -> StatusOr<Column> {
    (void)device;
    {
      std::lock_guard<std::mutex> lock(*seen_mu);
      seen->push_back(num_rows);
    }
    double bias = 0;
    if (args.size() > 1 && args[1].is_scalar) {
      bias = args[1].scalar.AsDouble();
    }
    const Tensor x = args[0].column.data();
    return Column::Plain(AddScalar(MulScalar(x, 2.0), bias));
  };
  return fn;
}

std::vector<udf::Argument> MakeArgs(const std::vector<float>& values) {
  std::vector<udf::Argument> args(1);
  args[0].is_scalar = false;
  args[0].column = Column::Plain(Tensor::FromVector<float>(values));
  return args;
}

void ExpectDoubled(const Column& out, const std::vector<float>& in,
                   double bias = 0) {
  ASSERT_EQ(out.length(), static_cast<int64_t>(in.size()));
  const Tensor t = out.data().Contiguous();
  const float* p = t.data<float>();
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(p[i], static_cast<float>(2.0f * in[i] + bias)) << "row " << i;
  }
}

TEST(InferenceSchedulerTest, SoloCallIsExactWithNoWindowLatency) {
  auto seen = std::make_shared<std::vector<int64_t>>();
  auto mu = std::make_shared<std::mutex>();
  const udf::ScalarFunction fn = MakeDoubler(seen, mu);
  InferenceScheduler sched;
  const std::vector<float> in = {1, 2, 3};
  auto args = MakeArgs(in);
  auto out = sched.CallScalar(fn, args, 3, Device::kCpu, nullptr);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ExpectDoubled(*out, in);
  const auto stats = sched.stats();
  EXPECT_EQ(stats.calls, 1);
  EXPECT_EQ(stats.rows, 3);
  EXPECT_EQ(stats.forwards, 1);
  EXPECT_EQ(stats.coalesced_forwards, 0);
  ASSERT_EQ(seen->size(), 1u);
  EXPECT_EQ((*seen)[0], 3);
}

// Eight concurrent callers of the same function coalesce into ONE shared
// forward pass, and every caller still gets exactly its own doubled rows.
// Made deterministic by a blocker call that holds leadership inside its
// forward (gated on a promise) while the clients pile into the queue;
// once the gate opens, the next leader finds the queue already holding
// the full batch target and claims it all without racing the window.
TEST(InferenceSchedulerTest, ConcurrentCallersShareForwards) {
  constexpr int kClients = 8;
  constexpr int64_t kRowsEach = 4;
  auto seen = std::make_shared<std::vector<int64_t>>();
  auto mu = std::make_shared<std::mutex>();
  auto gate = std::make_shared<std::promise<void>>();
  auto gate_open = std::make_shared<std::shared_future<void>>(
      gate->get_future().share());
  auto first_forward = std::make_shared<std::atomic<bool>>(true);

  udf::ScalarFunction fn;
  fn.name = "doubler";
  fn.return_type = udf::DeclaredType::kFloat;
  fn.batchable = true;
  fn.preferred_batch_rows = kClients * kRowsEach;
  fn.fn = [seen, mu, gate_open, first_forward](
              const std::vector<udf::Argument>& args, int64_t num_rows,
              Device) -> StatusOr<Column> {
    {
      std::lock_guard<std::mutex> lock(*mu);
      seen->push_back(num_rows);
    }
    if (first_forward->exchange(false)) gate_open->wait();
    return Column::Plain(MulScalar(args[0].column.data(), 2.0));
  };

  InferenceScheduler::Options options;
  options.coalescing_window = std::chrono::milliseconds(100);
  InferenceScheduler sched(options);

  std::thread blocker([&] {
    auto args = MakeArgs({-1.0f});
    auto out = sched.CallScalar(fn, args, 1, Device::kCpu, nullptr);
    EXPECT_TRUE(out.ok());
  });
  // Wait until the blocker is inside its forward (it records num_rows
  // before parking on the gate) — from here leadership is occupied.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(*mu);
      if (!seen->empty()) break;
    }
    std::this_thread::yield();
  }

  std::vector<std::vector<float>> inputs(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int64_t r = 0; r < kRowsEach; ++r) {
      inputs[c].push_back(static_cast<float>(c * 100 + r));
    }
  }
  std::vector<std::thread> clients;
  std::vector<StatusOr<Column>> results(kClients, Status::Internal("unset"));
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto args = MakeArgs(inputs[c]);
      results[c] = sched.CallScalar(fn, args, kRowsEach, Device::kCpu,
                                    nullptr);
    });
  }
  // stats_.calls and the enqueue happen under one lock hold, so once all
  // clients are counted they are all queued behind the blocked leader.
  while (sched.stats().calls < 1 + kClients) std::this_thread::yield();
  gate->set_value();
  blocker.join();
  for (auto& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    SCOPED_TRACE("client " + std::to_string(c));
    ASSERT_TRUE(results[c].ok()) << results[c].status().ToString();
    ExpectDoubled(*results[c], inputs[c]);
  }
  const auto stats = sched.stats();
  EXPECT_EQ(stats.calls, 1 + kClients);
  EXPECT_EQ(stats.rows, 1 + kClients * kRowsEach);
  // Exactly two forwards ran: the blocker's solo batch and ONE coalesced
  // batch serving all eight clients.
  EXPECT_EQ(stats.forwards, 2);
  EXPECT_EQ(stats.coalesced_forwards, 1);
  EXPECT_EQ(stats.coalesced_requests, kClients);
  ASSERT_EQ(seen->size(), 2u);
  EXPECT_EQ((*seen)[0], 1);
  EXPECT_EQ((*seen)[1], kClients * kRowsEach);
}

// Different constant arguments land in different groups — a coalesced
// forward never mixes embed('a') rows with embed('b') rows.
TEST(InferenceSchedulerTest, ConstantArgsPartitionGroups) {
  auto seen = std::make_shared<std::vector<int64_t>>();
  auto mu = std::make_shared<std::mutex>();
  udf::ScalarFunction fn = MakeDoubler(seen, mu, /*preferred_batch_rows=*/64);
  InferenceScheduler::Options options;
  options.coalescing_window = std::chrono::milliseconds(50);
  InferenceScheduler sched(options);

  constexpr int kClients = 6;
  std::vector<std::thread> clients;
  std::vector<StatusOr<Column>> results(kClients, Status::Internal("unset"));
  const std::vector<float> in = {1, 2, 3};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const double bias = (c % 2 == 0) ? 0.0 : 1000.0;
      std::vector<udf::Argument> args = MakeArgs(in);
      args.emplace_back();
      args[1].is_scalar = true;
      args[1].scalar = exec::ScalarValue::Float(bias);
      results[c] = sched.CallScalar(fn, args, 3, Device::kCpu, nullptr);
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    SCOPED_TRACE("client " + std::to_string(c));
    ASSERT_TRUE(results[c].ok()) << results[c].status().ToString();
    ExpectDoubled(*results[c], in, (c % 2 == 0) ? 0.0 : 1000.0);
  }
}

// The SAME model registered in different sessions means different
// ScalarFunction objects closing over the same nn::Module — those must
// share a group (keyed on module identity), which is what makes
// cross-session coalescing possible at all.
TEST(InferenceSchedulerTest, CrossRegistrationCoalescingViaModuleIdentity) {
  Rng rng(7);
  auto model = std::make_shared<nn::Linear>(1, 1, rng, /*with_bias=*/false,
                                            Device::kCpu);
  auto make_fn = [&model]() {
    udf::ScalarFunction fn;
    fn.name = "linear1";
    fn.batchable = true;
    fn.preferred_batch_rows = 8;
    fn.modules = {model};
    fn.fn = [m = model](const std::vector<udf::Argument>& args, int64_t,
                        Device) -> StatusOr<Column> {
      const Tensor x = Unsqueeze(args[0].column.data(), 1);
      return Column::Plain(Squeeze(m->Forward(x), 1).Contiguous());
    };
    return fn;
  };
  const udf::ScalarFunction fn_a = make_fn();  // "session A's registry"
  const udf::ScalarFunction fn_b = make_fn();  // "session B's registry"

  InferenceScheduler::Options options;
  options.coalescing_window = std::chrono::milliseconds(100);
  InferenceScheduler sched(options);
  const std::vector<float> in_a = {1, 2, 3, 4};
  const std::vector<float> in_b = {5, 6, 7, 8};
  StatusOr<Column> out_a = Status::Internal("unset");
  StatusOr<Column> out_b = Status::Internal("unset");
  std::thread ta([&] {
    auto args = MakeArgs(in_a);
    out_a = sched.CallScalar(fn_a, args, 4, Device::kCpu, nullptr);
  });
  std::thread tb([&] {
    auto args = MakeArgs(in_b);
    out_b = sched.CallScalar(fn_b, args, 4, Device::kCpu, nullptr);
  });
  ta.join();
  tb.join();
  ASSERT_TRUE(out_a.ok()) << out_a.status().ToString();
  ASSERT_TRUE(out_b.ok()) << out_b.status().ToString();
  // Each caller's slice equals a direct (uncoalesced) forward, bit for
  // bit — the row-local contract at work.
  auto direct_a = fn_a.fn(MakeArgs(in_a), 4, Device::kCpu);
  auto direct_b = fn_b.fn(MakeArgs(in_b), 4, Device::kCpu);
  ASSERT_TRUE(direct_a.ok() && direct_b.ok());
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out_a->data().Contiguous().data<float>()[i],
              direct_a->data().Contiguous().data<float>()[i]);
    EXPECT_EQ(out_b->data().Contiguous().data<float>()[i],
              direct_b->data().Contiguous().data<float>()[i]);
  }
  // Both callers ran against one group: at most 2 forwards (2 only if the
  // window raced), and if they shared, coalesced_requests == 2.
  const auto stats = sched.stats();
  EXPECT_EQ(stats.calls, 2);
  EXPECT_LE(stats.forwards, 2);
}

TEST(InferenceSchedulerTest, NonBatchableAndOversizedGoDirect) {
  auto seen = std::make_shared<std::vector<int64_t>>();
  auto mu = std::make_shared<std::mutex>();
  udf::ScalarFunction fn = MakeDoubler(seen, mu, /*preferred_batch_rows=*/4);
  InferenceScheduler sched;

  // Oversized: num_rows >= preferred batch -> one direct forward.
  const std::vector<float> big = {1, 2, 3, 4, 5, 6};
  auto args = MakeArgs(big);
  auto out = sched.CallScalar(fn, args, 6, Device::kCpu, nullptr);
  ASSERT_TRUE(out.ok());
  ExpectDoubled(*out, big);
  EXPECT_EQ(sched.stats().direct_calls, 1);

  // Non-batchable: must never queue.
  fn.batchable = false;
  const std::vector<float> small = {9};
  auto args2 = MakeArgs(small);
  auto out2 = sched.CallScalar(fn, args2, 1, Device::kCpu, nullptr);
  ASSERT_TRUE(out2.ok());
  ExpectDoubled(*out2, small);
  EXPECT_EQ(sched.stats().direct_calls, 2);
}

// A caller whose run is cancelled before any leader claims its request
// withdraws immediately with kCancelled — it must not wait out a batch.
TEST(InferenceSchedulerTest, CancelledCallerWithdraws) {
  auto seen = std::make_shared<std::vector<int64_t>>();
  auto mu = std::make_shared<std::mutex>();
  const udf::ScalarFunction fn = MakeDoubler(seen, mu);
  InferenceScheduler sched;
  exec::CancellationToken token;
  token.Cancel();
  const std::vector<float> in = {1, 2};
  auto args = MakeArgs(in);
  auto out = sched.CallScalar(fn, args, 2, Device::kCpu, &token);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(sched.stats().withdrawn, 1);
  EXPECT_EQ(sched.stats().forwards, 0);
  EXPECT_TRUE(seen->empty()) << "cancelled request must not run a forward";
}

// A failing model body fans its error out to every caller sharing the
// forward — nobody hangs, nobody gets a partial column.
TEST(InferenceSchedulerTest, ErrorPropagatesToAllCoalescedCallers) {
  udf::ScalarFunction fn;
  fn.name = "failing";
  fn.batchable = true;
  fn.preferred_batch_rows = 8;
  fn.fn = [](const std::vector<udf::Argument>&, int64_t,
             Device) -> StatusOr<Column> {
    return Status::ExecutionError("model weights not loaded");
  };
  InferenceScheduler::Options options;
  options.coalescing_window = std::chrono::milliseconds(50);
  InferenceScheduler sched(options);
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::vector<Status> statuses(kClients, Status::OK());
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto args = MakeArgs({1, 2});
      auto out = sched.CallScalar(fn, args, 2, Device::kCpu, nullptr);
      statuses[c] = out.status();
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_FALSE(statuses[c].ok()) << "client " << c;
    EXPECT_NE(statuses[c].ToString().find("model weights not loaded"),
              std::string::npos)
        << statuses[c].ToString();
  }
}

// Stress: many threads, many calls, tiny window — exercises the
// leader/follower hand-off and withdrawal races under TSan. Every result
// must stay exact.
TEST(InferenceSchedulerTest, StressManyCallersStayExact) {
  auto seen = std::make_shared<std::vector<int64_t>>();
  auto mu = std::make_shared<std::mutex>();
  const udf::ScalarFunction fn =
      MakeDoubler(seen, mu, /*preferred_batch_rows=*/16);
  InferenceScheduler::Options options;
  options.coalescing_window = std::chrono::microseconds(100);
  InferenceScheduler sched(options);
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        std::vector<float> in;
        const int64_t rows = 1 + (t + i) % 5;
        for (int64_t r = 0; r < rows; ++r) {
          in.push_back(static_cast<float>(t * 1000 + i * 10 + r));
        }
        auto args = MakeArgs(in);
        auto out = sched.CallScalar(fn, args, rows, Device::kCpu, nullptr);
        if (!out.ok() || out->length() != rows) {
          ++failures;
          continue;
        }
        const Tensor got = out->data().Contiguous();
        for (int64_t r = 0; r < rows; ++r) {
          if (got.data<float>()[r] != 2.0f * in[static_cast<size_t>(r)]) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const auto stats = sched.stats();
  EXPECT_EQ(stats.calls, kThreads * kCallsPerThread);
}

}  // namespace
}  // namespace tdp
