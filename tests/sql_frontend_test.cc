#include <gtest/gtest.h>

#include "src/sql/lexer.h"
#include "src/sql/parser.h"

namespace tdp {
namespace sql {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, b FROM t WHERE x >= 1.5");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 11u);  // incl. kEnd
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[8].type, TokenType::kOperator);
  EXPECT_EQ((*tokens)[8].text, ">=");
  EXPECT_EQ((*tokens)[9].type, TokenType::kNumber);
  EXPECT_FALSE((*tokens)[9].is_integer);
  EXPECT_DOUBLE_EQ((*tokens)[9].number_value, 1.5);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
}

TEST(LexerTest, StringsBothQuoteStyles) {
  auto tokens = Tokenize("'single' \"double\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "single");
  EXPECT_EQ((*tokens)[1].text, "double");
}

TEST(LexerTest, CommentsAndNumbers) {
  auto tokens = Tokenize("1 -- a comment\n2.5e3 .5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].number_value, 1.0);
  EXPECT_TRUE((*tokens)[0].is_integer);
  EXPECT_DOUBLE_EQ((*tokens)[1].number_value, 2500.0);
  EXPECT_DOUBLE_EQ((*tokens)[2].number_value, 0.5);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT a ! b").ok());
  EXPECT_FALSE(Tokenize("SELECT a # b").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = Parse("SELECT a, b + 1 AS c FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->select_list.size(), 2u);
  EXPECT_EQ((*stmt)->select_list[1].alias, "c");
  ASSERT_NE((*stmt)->from, nullptr);
  EXPECT_EQ((*stmt)->from->kind, TableRefKind::kBaseTable);
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = Parse("SELECT 1 + 2 * 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->select_list[0].expr->ToString(), "(1 + (2 * 3))");

  auto cmp = Parse("SELECT a FROM t WHERE x + 1 > 2 AND y < 3 OR z = 4");
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ((*cmp)->where->ToString(),
            "((((x + 1) > 2) AND (y < 3)) OR (z = 4))");
}

TEST(ParserTest, BetweenAndInDesugar) {
  auto stmt = Parse("SELECT a FROM t WHERE x BETWEEN 1 AND 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->where->ToString(), "((x >= 1) AND (x <= 3))");

  auto in = Parse("SELECT a FROM t WHERE x IN (1, 2)");
  ASSERT_TRUE(in.ok());
  EXPECT_EQ((*in)->where->ToString(), "((x = 1) OR (x = 2))");
}

TEST(ParserTest, FullClauseSet) {
  auto stmt = Parse(
      "SELECT region, COUNT(*) AS n FROM sales WHERE amount > 10 GROUP BY "
      "region HAVING COUNT(*) > 1 ORDER BY n DESC, region ASC LIMIT 5 "
      "OFFSET 2");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->group_by.size(), 1u);
  ASSERT_NE((*stmt)->having, nullptr);
  EXPECT_EQ((*stmt)->order_by.size(), 2u);
  EXPECT_TRUE((*stmt)->order_by[0].descending);
  EXPECT_FALSE((*stmt)->order_by[1].descending);
  EXPECT_EQ((*stmt)->limit.value(), 5);
  EXPECT_EQ((*stmt)->offset.value(), 2);
}

TEST(ParserTest, JoinChain) {
  auto stmt = Parse(
      "SELECT * FROM a JOIN b ON a.x = b.x INNER JOIN c ON b.y = c.y");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ((*stmt)->from->kind, TableRefKind::kJoin);
  const auto& outer = static_cast<const JoinRef&>(*(*stmt)->from);
  EXPECT_EQ(outer.left->kind, TableRefKind::kJoin);
  EXPECT_EQ(outer.right->kind, TableRefKind::kBaseTable);
}

TEST(ParserTest, TvfWithTableAndSubqueryInput) {
  auto simple = Parse("SELECT d FROM parse_mnist_grid(MNIST_Grid)");
  ASSERT_TRUE(simple.ok());
  const auto& tvf =
      static_cast<const TableFunctionRef&>(*(*simple)->from);
  EXPECT_EQ(tvf.function_name, "parse_mnist_grid");
  EXPECT_EQ(tvf.input->kind, TableRefKind::kBaseTable);

  // The paper's OCR query shape (Listing 8, TDP dialect).
  auto nested = Parse(
      "SELECT AVG(SepalLength) FROM extract_table(SELECT images FROM "
      "Document WHERE timestamp = '2022:08:10')");
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();
  const auto& tvf2 =
      static_cast<const TableFunctionRef&>(*(*nested)->from);
  EXPECT_EQ(tvf2.input->kind, TableRefKind::kSubquery);
}

TEST(ParserTest, CaseExpression) {
  auto stmt = Parse(
      "SELECT CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' "
      "END FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->select_list[0].expr->kind, ExprKind::kCase);
}

TEST(ParserTest, CountDistinctAndStar) {
  auto stmt = Parse("SELECT COUNT(*), COUNT(DISTINCT x) FROM t");
  ASSERT_TRUE(stmt.ok());
  const auto& star =
      static_cast<const FunctionCallExpr&>(*(*stmt)->select_list[0].expr);
  EXPECT_TRUE(star.is_star_arg);
  const auto& distinct =
      static_cast<const FunctionCallExpr&>(*(*stmt)->select_list[1].expr);
  EXPECT_TRUE(distinct.distinct);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELECT").ok());
  EXPECT_FALSE(Parse("SELECT a FROM").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t GROUP").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t extra garbage +").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t JOIN u").ok());  // missing ON
  EXPECT_FALSE(Parse("SELECT (a FROM t").ok());
}

TEST(ParserTest, CloneExprDeepCopies) {
  auto stmt = Parse("SELECT a + b * 2 FROM t");
  ASSERT_TRUE(stmt.ok());
  const Expr& original = *(*stmt)->select_list[0].expr;
  ExprPtr copy = CloneExpr(original);
  EXPECT_EQ(copy->ToString(), original.ToString());
  EXPECT_NE(copy.get(), &original);
}

TEST(LexerTest, QuestionMarkIsAParameterToken) {
  auto tokens = Tokenize("WHERE x = ?");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[3].type, TokenType::kParameter);
  EXPECT_EQ((*tokens)[3].text, "?");
}

TEST(ParserTest, ParametersNumberedLeftToRight) {
  auto stmt = Parse("SELECT ? + a FROM t WHERE a > ? AND b < ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& select = static_cast<const BinaryExpr&>(
      *(*stmt)->select_list[0].expr);
  ASSERT_EQ(select.left->kind, ExprKind::kParameter);
  EXPECT_EQ(static_cast<const ParameterExpr&>(*select.left).ordinal, 0);
  // WHERE is (a > ?#1) AND (b < ?#2).
  const auto& where = static_cast<const BinaryExpr&>(*(*stmt)->where);
  const auto& gt = static_cast<const BinaryExpr&>(*where.left);
  const auto& lt = static_cast<const BinaryExpr&>(*where.right);
  ASSERT_EQ(gt.right->kind, ExprKind::kParameter);
  ASSERT_EQ(lt.right->kind, ExprKind::kParameter);
  EXPECT_EQ(static_cast<const ParameterExpr&>(*gt.right).ordinal, 1);
  EXPECT_EQ(static_cast<const ParameterExpr&>(*lt.right).ordinal, 2);
  EXPECT_EQ((*stmt)->where->ToString(), "((a > ?) AND (b < ?))");
}

TEST(ParserTest, BetweenWithParameterReusesOrdinalInDesugaredClone) {
  // `x BETWEEN ? AND 5` desugars to (x >= ?) AND (x <= 5); the clone of
  // the left side must not mint a fresh ordinal.
  auto stmt = Parse("SELECT a FROM t WHERE ? BETWEEN a AND b");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& conj = static_cast<const BinaryExpr&>(*(*stmt)->where);
  const auto& ge = static_cast<const BinaryExpr&>(*conj.left);
  const auto& le = static_cast<const BinaryExpr&>(*conj.right);
  ASSERT_EQ(ge.left->kind, ExprKind::kParameter);
  ASSERT_EQ(le.left->kind, ExprKind::kParameter);
  EXPECT_EQ(static_cast<const ParameterExpr&>(*ge.left).ordinal, 0);
  EXPECT_EQ(static_cast<const ParameterExpr&>(*le.left).ordinal, 0);
}

}  // namespace
}  // namespace sql
}  // namespace tdp
