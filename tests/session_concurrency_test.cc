// Thread-safety tests for the serving layer: many clients issuing cached
// and uncached queries against one Session while a writer re-registers
// tables. Run under the ThreadSanitizer CI job (build-tsan/); every
// assertion also checks results against single-threaded ground truth.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/layers.h"
#include "src/runtime/session.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

using exec::ScalarValue;

std::shared_ptr<Table> MakeSales() {
  auto sales = TableBuilder("sales")
                   .AddInt64("id", {1, 2, 3, 4, 5, 6})
                   .AddStrings("region", {"east", "west", "east", "north",
                                          "west", "east"})
                   .AddFloat32("amount", {10, 20, 30, 40, 50, 60})
                   .Build();
  EXPECT_TRUE(sales.ok()) << sales.status().ToString();
  return sales.value();
}

double ScalarResult(const StatusOr<std::shared_ptr<Table>>& r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return -1;
  EXPECT_EQ((*r)->num_rows(), 1);
  return (*r)->column(0).data().At({0});
}

TEST(SessionConcurrencyTest, CachedAndUncachedQueriesFromManyThreads) {
  Session session;
  ASSERT_TRUE(session.RegisterTable("sales", MakeSales()).ok());

  const std::vector<std::pair<std::string, double>> queries = {
      {"SELECT SUM(amount) FROM sales WHERE region = 'east'", 100.0},
      {"SELECT COUNT(*) FROM sales", 6.0},
      {"SELECT MAX(amount) FROM sales WHERE id <= 4", 40.0},
      {"SELECT SUM(id) FROM sales WHERE amount > 25", 18.0},
  };
  // Ground truth single-threaded first (also warms the cache for half the
  // threads; the other half compiles fresh via Query()).
  for (const auto& [sql, expected] : queries) {
    EXPECT_EQ(ScalarResult(session.Sql(sql)), expected) << sql;
  }

  constexpr int kThreads = 8;
  constexpr int kIters = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const auto& [sql, expected] = queries[(t + i) % queries.size()];
        StatusOr<std::shared_ptr<Table>> r =
            t % 2 == 0 ? session.Sql(sql)  // plan-cache path
                       : [&]() -> StatusOr<std::shared_ptr<Table>> {
                           auto q = session.Query(sql);  // fresh compile
                           if (!q.ok()) return q.status();
                           return (*q)->Run();
                         }();
        if (!r.ok() || (*r)->num_rows() != 1 ||
            (*r)->column(0).data().At({0}) != expected) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  const PlanCacheStats stats = session.plan_cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.size, queries.size());
}

TEST(SessionConcurrencyTest, OnePreparedStatementManyThreadsManyBindings) {
  Session session;
  ASSERT_TRUE(session.RegisterTable("sales", MakeSales()).ok());

  auto prepared = session.Prepare("SELECT amount FROM sales WHERE id = ?");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ASSERT_EQ((*prepared)->num_params(), 1);

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 60; ++i) {
        const int64_t id = 1 + (t + i) % 6;
        auto r = (*prepared)->Run({ScalarValue::Int(id)});
        if (!r.ok() || (*r)->num_rows() != 1 ||
            (*r)->column(0).data().At({0}) !=
                static_cast<double>(10 * id)) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(SessionConcurrencyTest, QueriesRaceWithTableReRegistration) {
  Session session;
  ASSERT_TRUE(session.RegisterTable("sales", MakeSales()).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // Writer: keeps re-registering the same logical content (the paper's
  // training loop does exactly this each iteration) plus fresh throwaway
  // tables so the catalog version keeps moving.
  std::thread writer([&] {
    int round = 0;
    while (!stop.load()) {
      if (!session.RegisterTable("sales", MakeSales()).ok()) ++failures;
      if (!session
               .RegisterTensor("scratch",
                               Tensor::FromVector(std::vector<float>{
                                   static_cast<float>(round)}))
               .ok()) {
        ++failures;
      }
      ++round;
    }
  });

  constexpr int kThreads = 6;
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        // Alternate cached and uncached paths under the writer.
        const char* sql = "SELECT COUNT(*), SUM(amount) FROM sales";
        StatusOr<std::shared_ptr<Table>> r =
            (t + i) % 2 == 0 ? session.Sql(sql)
                             : [&]() -> StatusOr<std::shared_ptr<Table>> {
                                 auto q = session.Query(sql);
                                 if (!q.ok()) return q.status();
                                 return (*q)->Run();
                               }();
        if (!r.ok() || (*r)->column(0).data().At({0}) != 6.0 ||
            (*r)->column(1).data().At({0}) != 210.0) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  stop = true;
  writer.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(SessionConcurrencyTest, SelfJoinSeesOneCatalogSnapshotPerRun) {
  // The writer flips table t between "all x = 1" and "all x = 2". A
  // self-join sums x from both scans: a torn run (scans resolving
  // different registrations) would yield 3 * n; one snapshot per run
  // guarantees 2n or 4n only.
  constexpr int64_t kRows = 8;
  auto variant = [](float x) {
    std::vector<int64_t> keys(kRows);
    std::vector<float> xs(kRows, x);
    for (int64_t i = 0; i < kRows; ++i) keys[static_cast<size_t>(i)] = i;
    auto t = TableBuilder("t").AddInt64("k", keys).AddFloat32("x", xs).Build();
    EXPECT_TRUE(t.ok());
    return t.value();
  };

  Session session;
  ASSERT_TRUE(session.RegisterTable("t", variant(1.0f)).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    int round = 0;
    while (!stop.load()) {
      if (!session
               .RegisterTable("t", variant(round % 2 == 0 ? 2.0f : 1.0f))
               .ok()) {
        ++failures;
      }
      ++round;
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto r = session.Sql(
            "SELECT SUM(t1.x + t2.x) FROM t t1 JOIN t t2 ON t1.k = t2.k");
        if (!r.ok()) {
          ++failures;
          continue;
        }
        const double sum = (*r)->column(0).data().At({0});
        if (sum != 2.0 * kRows && sum != 4.0 * kRows) ++failures;
      }
    });
  }
  for (auto& th : readers) th.join();
  stop = true;
  writer.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---- Vector-index races -----------------------------------------------------

namespace {

// Deterministic unit-norm embedding table: row i points along axis
// (i % dim) with a small row-dependent tilt, so similarity scores are
// unique and every plan — brute Sort, IndexTopK with a fresh index,
// IndexTopK falling back after invalidation — must produce the same rows.
std::shared_ptr<Table> MakeEmbeddings(int64_t n, int64_t dim) {
  Tensor emb = Tensor::Zeros({n, dim});
  std::vector<int64_t> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    ids[static_cast<size_t>(i)] = i;
    emb.SetAt({i, i % dim}, 1.0);
    emb.SetAt({i, (i + 1) % dim},
              0.001 * static_cast<double>(i % 97));
  }
  auto table =
      TableBuilder("vecs").AddInt64("id", ids).AddTensor("emb", emb).Build();
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return table.value();
}

Tensor AxisQuery(int64_t dim, int64_t axis) {
  Tensor q = Tensor::Zeros({dim});
  q.SetAt({axis}, 1.0);
  q.SetAt({(axis + 1) % dim}, 0.05);
  return q;
}

}  // namespace

// Readers serve top-k similarity queries while one thread races index
// builds (and drops) against them. Plans flip between Sort+Limit and
// IndexTopK as the catalog version moves; every result must equal the
// single-threaded ground truth because the default probe budget (= every
// cell) keeps the index path exact. Runs under TSan in CI.
TEST(SessionConcurrencyTest, IndexBuildRacesTopKQueries) {
  constexpr int64_t kRows = 192, kDim = 8;
  Session session;
  ASSERT_TRUE(session.RegisterTable("vecs", MakeEmbeddings(kRows, kDim))
                  .ok());
  const char* sql =
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC LIMIT 6";

  // Ground truth per query axis, computed single-threaded pre-index.
  std::vector<std::vector<double>> truth(static_cast<size_t>(kDim));
  for (int64_t axis = 0; axis < kDim; ++axis) {
    exec::RunOptions run;
    run.params = {ScalarValue::FromTensor(AxisQuery(kDim, axis))};
    auto r = session.Sql(sql, {}, run);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    for (int64_t i = 0; i < (*r)->num_rows(); ++i) {
      truth[static_cast<size_t>(axis)].push_back(
          (*r)->column(0).data().At({i}));
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread indexer([&] {
    index::IvfIndex::Options options;
    options.num_lists = 6;
    while (!stop.load()) {
      // Builds may legitimately lose a race with DropVectorIndex-induced
      // version moves only via re-registration; here the table is stable,
      // so Create must succeed, and Drop only fails when nothing is
      // installed yet.
      if (!session.CreateVectorIndex("vecs", "emb", options).ok()) {
        ++failures;
      }
      (void)session.DropVectorIndex("vecs", "emb");
    }
  });

  constexpr int kThreads = 6;
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < 40; ++i) {
        const int64_t axis = (t + i) % kDim;
        exec::RunOptions run;
        run.params = {ScalarValue::FromTensor(AxisQuery(kDim, axis))};
        auto r = session.Sql(sql, {}, run);
        if (!r.ok() ||
            (*r)->num_rows() !=
                static_cast<int64_t>(truth[static_cast<size_t>(axis)]
                                         .size())) {
          ++failures;
          continue;
        }
        for (int64_t row = 0; row < (*r)->num_rows(); ++row) {
          if ((*r)->column(0).data().At({row}) !=
              truth[static_cast<size_t>(axis)][static_cast<size_t>(row)]) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  stop = true;
  indexer.join();
  EXPECT_EQ(failures.load(), 0);
}

// Re-registration vs. index build vs. queries, all racing: a build that
// loses to a re-registration fails cleanly (ExecutionError, never a
// crash or a stale install), in-flight IndexTopK plans fall back to exact
// results, and every query still returns the truth — the embedding data
// is identical across registrations.
TEST(SessionConcurrencyTest, ReRegistrationRacesIndexBuildAndQueries) {
  constexpr int64_t kRows = 160, kDim = 8;
  Session session;
  ASSERT_TRUE(session.RegisterTable("vecs", MakeEmbeddings(kRows, kDim))
                  .ok());
  const char* sql =
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC LIMIT 5";
  exec::RunOptions truth_run;
  truth_run.params = {ScalarValue::FromTensor(AxisQuery(kDim, 2))};
  auto truth = session.Sql(sql, {}, truth_run);
  ASSERT_TRUE(truth.ok()) << truth.status().ToString();
  std::vector<double> expected_ids;
  for (int64_t i = 0; i < (*truth)->num_rows(); ++i) {
    expected_ids.push_back((*truth)->column(0).data().At({i}));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    while (!stop.load()) {
      if (!session.RegisterTable("vecs", MakeEmbeddings(kRows, kDim)).ok()) {
        ++failures;
      }
    }
  });
  std::thread indexer([&] {
    index::IvfIndex::Options options;
    options.num_lists = 5;
    while (!stop.load()) {
      const Status s = session.CreateVectorIndex("vecs", "emb", options);
      // Either installed, or cleanly lost the race to a re-registration.
      if (!s.ok() && s.code() != StatusCode::kExecutionError) ++failures;
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 40; ++i) {
        exec::RunOptions run;
        run.params = {ScalarValue::FromTensor(AxisQuery(kDim, 2))};
        auto r = session.Sql(sql, {}, run);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        for (size_t row = 0; row < expected_ids.size(); ++row) {
          if ((*r)->column(0).data().At({static_cast<int64_t>(row)}) !=
              expected_ids[row]) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  stop = true;
  writer.join();
  indexer.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---- DML races --------------------------------------------------------------

// Runs a DML statement with the documented retry contract: the loser of a
// write-write race gets a retryable ExecutionError and simply re-runs.
// Returns false (a real failure) for any other error or if the statement
// cannot land within a generous retry budget.
bool RunDmlWithRetry(Session& session, const std::string& sql,
                     const std::vector<ScalarValue>& params = {}) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    exec::RunOptions run;
    run.params = params;
    auto r = session.Sql(sql, {}, run);
    if (r.ok()) return true;
    if (r.status().code() != StatusCode::kExecutionError) return false;
  }
  return false;
}

// One writer ingests and trims rows while readers aggregate. The writer
// maintains the invariant that every row has val = 1, so any consistent
// snapshot satisfies SUM(val) == COUNT(*) — a torn read (an INSERT's rows
// visible in one column but not the other, or a half-applied DELETE)
// breaks the equality.
TEST(SessionConcurrencyTest, DmlWriterRacesAggregatingReaders) {
  Session session;
  ASSERT_TRUE(session.Sql("CREATE TABLE feed (id INT, val INT)").ok());
  ASSERT_TRUE(session.Sql("INSERT INTO feed VALUES (0, 1)").ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    int64_t next_id = 1;
    while (!stop.load()) {
      const std::string ins = "INSERT INTO feed VALUES (" +
                              std::to_string(next_id) + ", 1), (" +
                              std::to_string(next_id + 1) + ", 1)";
      if (!RunDmlWithRetry(session, ins)) ++failures;
      next_id += 2;
      // Trim old rows so the table stays small; full rows remain val = 1.
      if (next_id % 10 == 0 &&
          !RunDmlWithRetry(session, "DELETE FROM feed WHERE id < " +
                                        std::to_string(next_id - 20))) {
        ++failures;
      }
    }
  });

  constexpr int kThreads = 6;
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < 40; ++i) {
        // Alternate executors so both serve under concurrent writes.
        exec::RunOptions run;
        run.exec.streaming = (t + i) % 2 == 0;
        auto r = session.Sql("SELECT COUNT(*), SUM(val) FROM feed", {}, run);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        const double count = (*r)->column(0).data().At({0});
        const double sum = (*r)->column(1).data().At({0});
        if (count < 1.0 || count != sum) ++failures;
      }
    });
  }
  for (auto& th : readers) th.join();
  stop = true;
  writer.join();
  EXPECT_EQ(failures.load(), 0);

  // Nothing was lost: every row the writer landed (and didn't delete) is
  // present exactly once, still with val = 1.
  auto r = session.Sql("SELECT COUNT(*), SUM(val) FROM feed");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->column(0).data().At({0}), (*r)->column(1).data().At({0}));
}

// Writers to the SAME table serialize optimistically: losers retry on
// ExecutionError and every increment lands exactly once. Writers to
// DIFFERENT tables must never conflict at all.
TEST(SessionConcurrencyTest, ConcurrentWritersRetryLostRacesLosslessly) {
  Session session;
  ASSERT_TRUE(session.Sql("CREATE TABLE shared (who INT)").ok());
  constexpr int kWriters = 4;
  for (int w = 0; w < kWriters; ++w) {
    ASSERT_TRUE(session
                    .Sql("CREATE TABLE own" + std::to_string(w) +
                         " (x INT)")
                    .ok());
  }

  constexpr int kIters = 25;
  std::atomic<int> failures{0};
  std::atomic<int> private_conflicts{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kIters; ++i) {
        // Contended table: retries allowed (and expected under load).
        if (!RunDmlWithRetry(session, "INSERT INTO shared VALUES (" +
                                          std::to_string(w) + ")")) {
          ++failures;
        }
        // Private table: no other writer touches it, so a write-write
        // conflict here would be a catalog-scoping bug.
        auto r = session.Sql("INSERT INTO own" + std::to_string(w) +
                             " VALUES (" + std::to_string(i) + ")");
        if (!r.ok()) {
          ++failures;
          if (r.status().code() == StatusCode::kExecutionError) {
            ++private_conflicts;
          }
        }
      }
    });
  }
  for (auto& th : writers) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(private_conflicts.load(), 0);

  auto total = session.Sql("SELECT COUNT(*) FROM shared");
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  EXPECT_EQ((*total)->column(0).data().At({0}),
            static_cast<double>(kWriters * kIters));
  for (int w = 0; w < kWriters; ++w) {
    auto own = session.Sql("SELECT COUNT(*) FROM own" + std::to_string(w));
    ASSERT_TRUE(own.ok());
    EXPECT_EQ((*own)->column(0).data().At({0}),
              static_cast<double>(kIters));
  }
}

// DML races CREATE VECTOR INDEX on the same table while readers serve
// top-k. The writer only ever adds (and then deletes) rows whose
// similarity to the probe axis is strongly negative, so the correct top-k
// set never changes; index builds may cleanly lose their install race to
// a DML write (retryable ExecutionError), never crash or corrupt results.
TEST(SessionConcurrencyTest, DmlRacesIndexBuildUnderServing) {
  constexpr int64_t kRows = 160, kDim = 8;
  Session session;
  ASSERT_TRUE(session.RegisterTable("vecs", MakeEmbeddings(kRows, kDim))
                  .ok());
  const char* sql =
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC LIMIT 6";
  exec::RunOptions truth_run;
  truth_run.params = {ScalarValue::FromTensor(AxisQuery(kDim, 3))};
  auto truth = session.Sql(sql, {}, truth_run);
  ASSERT_TRUE(truth.ok()) << truth.status().ToString();
  std::vector<double> expected_ids;
  for (int64_t i = 0; i < (*truth)->num_rows(); ++i) {
    expected_ids.push_back((*truth)->column(0).data().At({i}));
  }

  // Decoy rows: strongly anti-aligned with the probe axis.
  Tensor decoy = Tensor::Zeros({kDim});
  decoy.SetAt({3}, -1.0);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    int64_t next_id = 100000;
    while (!stop.load()) {
      if (!RunDmlWithRetry(session, "INSERT INTO vecs VALUES (?, ?)",
                           {ScalarValue::Int(next_id),
                            ScalarValue::FromTensor(decoy)})) {
        ++failures;
      }
      ++next_id;
      if (next_id % 8 == 0 &&
          !RunDmlWithRetry(session,
                           "DELETE FROM vecs WHERE id >= 100000")) {
        ++failures;
      }
    }
  });
  std::thread indexer([&] {
    index::IvfIndex::Options options;
    options.num_lists = 5;
    while (!stop.load()) {
      const Status s = session.CreateVectorIndex("vecs", "emb", options);
      // Either installed, or cleanly lost the race to a concurrent DML
      // install — the same retryable contract as a re-registration.
      if (!s.ok() && s.code() != StatusCode::kExecutionError) ++failures;
      (void)session.DropVectorIndex("vecs", "emb");
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 40; ++i) {
        exec::RunOptions run;
        run.params = {ScalarValue::FromTensor(AxisQuery(kDim, 3))};
        auto r = session.Sql(sql, {}, run);
        if (!r.ok() ||
            (*r)->num_rows() !=
                static_cast<int64_t>(expected_ids.size())) {
          ++failures;
          continue;
        }
        for (size_t row = 0; row < expected_ids.size(); ++row) {
          if ((*r)->column(0).data().At({static_cast<int64_t>(row)}) !=
              expected_ids[row]) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  stop = true;
  writer.join();
  indexer.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---- Shared inference-scheduler races ---------------------------------------

// N sessions serve the SAME model (one nn::Linear shared by every
// session's registered UDF — the scheduler groups on module identity, so
// their forwards may coalesce across sessions) while one client keeps
// opening a cursor and closing it after the first chunk. Every completed
// query must equal its session's solo ground truth bit for bit, and the
// early closes must only ever surface as clean kCancelled — never a
// crash, a hang, or another session's rows. Runs under TSan in CI.
TEST(SessionConcurrencyTest, SharedModelServingRacesAcrossSessions) {
  constexpr int kSessions = 4;
  constexpr int64_t kRows = 24;
  Rng rng(123);
  auto model = std::make_shared<nn::Linear>(1, 1, rng);  // on kAccel, like
                                                         // the query device
  // in_features == 1 keeps the forward row-local at the arithmetic level
  // too (one multiply + one add per row, no reduction), so any coalesced
  // batch partition is bit-identical to a solo run.
  auto make_udf = [&model]() {
    udf::ScalarFunction fn;
    fn.name = "embed1";
    fn.return_type = udf::DeclaredType::kFloat;
    fn.batchable = true;
    fn.preferred_batch_rows = 16;
    fn.modules = {model};
    fn.fn = [model](const std::vector<udf::Argument>& args, int64_t,
                    Device) -> StatusOr<Column> {
      const Tensor x = Unsqueeze(args[0].column.DecodeValues(), 1);
      return Column::Plain(Squeeze(model->Forward(x), 1).Contiguous());
    };
    return fn;
  };

  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<std::vector<double>> truth(kSessions);
  const char* sql = "SELECT embed1(x) AS e FROM vals";
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(std::make_unique<Session>());
    ASSERT_TRUE(sessions[s]->functions().RegisterScalar(make_udf()).ok());
    std::vector<float> xs;
    for (int64_t i = 0; i < kRows; ++i) {
      xs.push_back(static_cast<float>(s * 1000 + i));
    }
    auto t = TableBuilder("vals").AddFloat32("x", xs).Build();
    ASSERT_TRUE(sessions[s]->RegisterTable("vals", t.value()).ok());
    // Solo ground truth, before any concurrency.
    auto r = sessions[s]->Sql(sql);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ((*r)->num_rows(), kRows);
    for (int64_t i = 0; i < kRows; ++i) {
      truth[s].push_back((*r)->column(0).data().At({i}));
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // The early-closer: streams session 0's query, takes one chunk, closes.
  // Its withdrawn/cancelled inference requests must never perturb the
  // other sessions' coalesced batches.
  std::thread closer([&] {
    exec::RunOptions run;
    run.exec.morsel_rows = 4;  // several chunks, so Close() really lands early
    while (!stop.load()) {
      auto cursor = sessions[0]->Execute(sql, {}, run);
      if (!cursor.ok()) {
        ++failures;
        continue;
      }
      auto chunk = (*cursor)->Next();
      // A first chunk either arrives intact or reports the close's own
      // cancellation; anything else is a real failure.
      if (!chunk.ok() &&
          chunk.status().code() != StatusCode::kCancelled) {
        ++failures;
      }
      (*cursor)->Close();
    }
  });

  std::vector<std::thread> clients;
  for (int s = 0; s < kSessions; ++s) {
    clients.emplace_back([&, s] {
      for (int i = 0; i < 30; ++i) {
        auto r = sessions[s]->Sql(sql);
        if (!r.ok() || (*r)->num_rows() != kRows) {
          ++failures;
          continue;
        }
        for (int64_t row = 0; row < kRows; ++row) {
          if ((*r)->column(0).data().At({row}) != truth[s][row]) {
            ++failures;  // wrong bytes or another session's rows
          }
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  stop = true;
  closer.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(SessionConcurrencyTest, ReRegistrationInvalidatesCachedPlans) {
  Session session;
  auto narrow = TableBuilder("t").AddInt64("a", {1, 2, 3}).Build();
  ASSERT_TRUE(session.RegisterTable("t", narrow.value()).ok());
  EXPECT_EQ(ScalarResult(session.Sql("SELECT COUNT(*) FROM t")), 3.0);

  // Re-register with a different shape: the cached plan must not survive.
  auto wide = TableBuilder("t")
                  .AddInt64("b", {9, 9})
                  .AddInt64("a", {4, 5})
                  .Build();
  ASSERT_TRUE(session.RegisterTable("t", wide.value()).ok());
  EXPECT_EQ(ScalarResult(session.Sql("SELECT COUNT(*) FROM t")), 2.0);
  EXPECT_EQ(ScalarResult(session.Sql("SELECT SUM(a) FROM t")), 9.0);
  EXPECT_GE(session.plan_cache_stats().invalidations, 1u);
}

}  // namespace
}  // namespace tdp
