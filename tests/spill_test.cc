// Unit coverage for the spill-to-disk breaker machinery: the per-query
// memory accounting (`QueryMemory`), the exact binary spill serialization
// (`SpillWriter`/`SpillReader`), and the order-preserving key codes the
// external sort merges on. The end-to-end bit-identity proof — budgeted
// runs vs unlimited references across executors and morsel sizes — lives
// in spill_differential_test.cc; this suite pins the pieces in isolation
// so a differential failure there localizes quickly.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/exec/memory_budget.h"
#include "src/exec/run_options.h"
#include "src/exec/spill.h"
#include "src/exec/spill_kernels.h"
#include "src/runtime/session.h"
#include "src/storage/column.h"
#include "src/storage/table.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

namespace tdp {
namespace exec {
namespace {

// ---- QueryMemory accounting -------------------------------------------------

TEST(QueryMemoryTest, UnlimitedNeverSpills) {
  QueryMemory memory(0);
  EXPECT_TRUE(memory.unlimited());
  EXPECT_FALSE(memory.ShouldSpill(std::numeric_limits<int64_t>::max() / 2));
  memory.Charge(1 << 20);
  EXPECT_FALSE(memory.ShouldSpill(1 << 20));
}

TEST(QueryMemoryTest, ChargeReleaseAndPeak) {
  QueryMemory memory(1000);
  EXPECT_FALSE(memory.unlimited());
  EXPECT_FALSE(memory.ShouldSpill(1000));
  EXPECT_TRUE(memory.ShouldSpill(1001));

  memory.Charge(600);
  EXPECT_EQ(memory.reserved_bytes(), 600);
  EXPECT_FALSE(memory.ShouldSpill(400));
  EXPECT_TRUE(memory.ShouldSpill(401));

  memory.Charge(300);
  EXPECT_EQ(memory.peak_reserved_bytes(), 900);
  memory.Release(600);
  memory.Release(300);
  EXPECT_EQ(memory.reserved_bytes(), 0);
  // Peak is sticky: it records the high-water mark, not the current level.
  EXPECT_EQ(memory.peak_reserved_bytes(), 900);
}

TEST(QueryMemoryTest, ScopedReservationReleasesOnExit) {
  QueryMemory memory(1000);
  {
    ScopedReservation r(&memory, 700);
    EXPECT_EQ(memory.reserved_bytes(), 700);
  }
  EXPECT_EQ(memory.reserved_bytes(), 0);
  // Null budget: a no-op, the common unlimited-run case.
  ScopedReservation nop(nullptr, 700);
}

TEST(QueryMemoryTest, SpillFileLifetime) {
  const int64_t live_before = QueryMemory::LiveSpillFiles();
  {
    QueryMemory memory(64);
    auto f1 = memory.NewSpillFile("sort_run");
    auto f2 = memory.NewSpillFile("join_part");
    ASSERT_TRUE(f1.ok()) << f1.status().ToString();
    ASSERT_TRUE(f2.ok()) << f2.status().ToString();
    EXPECT_NE(f1.value(), f2.value());
    EXPECT_EQ(QueryMemory::LiveSpillFiles(), live_before + 2);
    EXPECT_EQ(memory.spill_files_created(), 2);

    // Touch the files so release has something real to delete.
    {
      SpillWriter w(f1.value());
      ASSERT_TRUE(w.WriteInt64(42).ok());
      ASSERT_TRUE(w.Close().ok());
    }

    memory.ReleaseSpillFiles();
    EXPECT_EQ(QueryMemory::LiveSpillFiles(), live_before);
    // Idempotent: the destructor must not double-count the release.
    memory.ReleaseSpillFiles();
    EXPECT_EQ(QueryMemory::LiveSpillFiles(), live_before);
  }
  EXPECT_EQ(QueryMemory::LiveSpillFiles(), live_before);
}

TEST(QueryMemoryTest, FootprintCountsMetadata) {
  Column plain = Column::Plain(Tensor::Arange(100));
  const int64_t plain_bytes = ColumnFootprintBytes(plain);
  EXPECT_GE(plain_bytes, 800);  // 100 int64 rows

  Column dict = Column::FromStrings({"aa", "bb", "aa", "cc"});
  // Codes plus dictionary storage.
  EXPECT_GT(ColumnFootprintBytes(dict), 4 * 8);

  Chunk chunk;
  chunk.columns = {plain, dict};
  chunk.names = {"a", "b"};
  EXPECT_EQ(ChunkFootprintBytes(chunk),
            plain_bytes + ColumnFootprintBytes(dict));
}

// ---- Spill serialization round-trips ----------------------------------------

void ExpectColumnsBitIdentical(const Column& a, const Column& b) {
  ASSERT_EQ(a.encoding(), b.encoding());
  EXPECT_TRUE(TensorEqual(a.data().Contiguous(), b.data().Contiguous()));
  EXPECT_EQ(a.dictionary(), b.dictionary());
  EXPECT_EQ(a.domain(), b.domain());
}

Column RoundTrip(const Column& c) {
  QueryMemory memory(1);
  auto path = memory.NewSpillFile("roundtrip");
  EXPECT_TRUE(path.ok());
  {
    SpillWriter w(path.value());
    EXPECT_TRUE(w.WriteColumn(c).ok());
    EXPECT_TRUE(w.Close().ok());
  }
  SpillReader r(path.value());
  auto back = r.ReadColumn();
  EXPECT_TRUE(back.ok()) << back.status().ToString();
  return back.ok() ? back.value() : Column();
}

TEST(SpillSerializationTest, PlainColumnsAllDTypes) {
  ExpectColumnsBitIdentical(
      Column::Plain(Tensor::Arange(17)),
      RoundTrip(Column::Plain(Tensor::Arange(17))));

  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  Column doubles = Column::Plain(
      Tensor::FromVector<double>({1.5, -0.0, 0.0, nan, inf, -inf, 1e-300}));
  Column doubles_back = RoundTrip(doubles);
  ASSERT_TRUE(doubles_back.defined());
  // Bit-exactness, not value equality: NaN payloads and -0 signs survive.
  const auto a = doubles.data().ToVector<double>();
  const auto b = doubles_back.data().ToVector<double>();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t abits, bbits;
    std::memcpy(&abits, &a[i], 8);
    std::memcpy(&bbits, &b[i], 8);
    EXPECT_EQ(abits, bbits) << "row " << i;
  }

  Column floats =
      Column::Plain(Tensor::FromVector<float>({0.5f, -0.5f, 3.25f}));
  ExpectColumnsBitIdentical(floats, RoundTrip(floats));

  Column bools = Column::Plain(Tensor::FromVector<bool>({true, false, true}));
  ExpectColumnsBitIdentical(bools, RoundTrip(bools));
}

TEST(SpillSerializationTest, TensorColumnKeepsShape) {
  Rng rng(7);
  Column images = Column::Plain(RandNormal({5, 3, 4}, 0, 1, rng));
  Column back = RoundTrip(images);
  ASSERT_TRUE(back.defined());
  EXPECT_EQ(back.data().shape(), images.data().shape());
  ExpectColumnsBitIdentical(images, back);
}

TEST(SpillSerializationTest, DictionaryAndProbabilityColumns) {
  Column dict = Column::FromStrings({"west", "east", "west", "", "north"});
  ExpectColumnsBitIdentical(dict, RoundTrip(dict));

  Rng rng(11);
  Tensor probs = Softmax(RandNormal({6, 3}, 0, 1, rng), 1);
  Column pe = Column::Probability(probs, {1.0, 2.5, 7.0});
  ExpectColumnsBitIdentical(pe, RoundTrip(pe));
}

TEST(SpillSerializationTest, SkipColumnLandsOnNext) {
  QueryMemory memory(1);
  auto path = memory.NewSpillFile("skip");
  ASSERT_TRUE(path.ok());
  Column first = Column::FromStrings({"a", "bb", "ccc"});
  Column second = Column::Plain(Tensor::Arange(3));
  {
    SpillWriter w(path.value());
    ASSERT_TRUE(w.WriteColumn(first).ok());
    ASSERT_TRUE(w.WriteColumn(second).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  SpillReader r(path.value());
  ASSERT_TRUE(r.SkipColumn().ok());
  auto back = r.ReadColumn();
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectColumnsBitIdentical(second, back.value());
}

TEST(SpillSerializationTest, UndefinedColumnRoundTrips) {
  // COUNT(*) aggregates carry undefined argument columns; the join spill
  // serializes chunks whose columns must all be defined, but the column
  // codec itself supports the undefined sentinel.
  Column undefined;
  QueryMemory memory(1);
  auto path = memory.NewSpillFile("undef");
  ASSERT_TRUE(path.ok());
  {
    SpillWriter w(path.value());
    ASSERT_TRUE(w.WriteColumn(undefined).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  SpillReader r(path.value());
  auto back = r.ReadColumn();
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_FALSE(back.value().defined());
}

// ---- Order-preserving key codes ---------------------------------------------

TEST(OrderCodeTest, DoubleOrderCodeIsMonotone) {
  const double inf = std::numeric_limits<double>::infinity();
  // Strictly increasing doubles must map to strictly increasing codes.
  const std::vector<double> ascending = {
      -inf,  -1e300, -2.5, -1.0, -1e-300, 0.0, 1e-300, 0.5, 1.0, 1e300, inf};
  for (size_t i = 1; i < ascending.size(); ++i) {
    EXPECT_LT(DoubleOrderCode(ascending[i - 1]), DoubleOrderCode(ascending[i]))
        << ascending[i - 1] << " vs " << ascending[i];
  }
}

TEST(OrderCodeTest, NegativeZeroTiesPositiveZero) {
  // The in-memory ArgSort comparator cannot distinguish -0 from +0, so the
  // spill codes must tie them too or sort stability would diverge.
  EXPECT_EQ(DoubleOrderCode(-0.0), DoubleOrderCode(0.0));
}

TEST(OrderCodeTest, AllNansShareOneCode) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(DoubleOrderCode(qnan), kNanOrderCode);
  EXPECT_EQ(DoubleOrderCode(-qnan), kNanOrderCode);
}

TEST(OrderCodeTest, CompareKeyCodesNanLastBothDirections) {
  const int64_t one = DoubleOrderCode(1.0);
  // Ascending: 1.0 before NaN.
  EXPECT_LT(CompareKeyCodes(one, kNanOrderCode, /*descending=*/false,
                            /*is_float=*/true),
            0);
  // Descending: 1.0 STILL before NaN (NaN is last in both directions,
  // matching the in-memory comparator).
  EXPECT_LT(CompareKeyCodes(one, kNanOrderCode, /*descending=*/true,
                            /*is_float=*/true),
            0);
  EXPECT_EQ(CompareKeyCodes(kNanOrderCode, kNanOrderCode, true, true), 0);
  // Plain integers invert under descending.
  EXPECT_GT(CompareKeyCodes(1, 2, /*descending=*/true, /*is_float=*/false), 0);
  EXPECT_LT(CompareKeyCodes(1, 2, /*descending=*/false, /*is_float=*/false),
            0);
}

TEST(OrderCodeTest, OrderPreservingCodesMatchColumnOrder) {
  Column dict = Column::FromStrings({"b", "a", "c", "a"});
  bool is_float = true;
  auto dict_codes = OrderPreservingCodes(dict, &is_float);
  ASSERT_TRUE(dict_codes.ok());
  EXPECT_FALSE(is_float);  // dictionary codes follow integer rules
  EXPECT_EQ(dict_codes.value(), (std::vector<int64_t>{1, 0, 2, 0}));

  const double nan = std::numeric_limits<double>::quiet_NaN();
  Column floats =
      Column::Plain(Tensor::FromVector<double>({2.0, -1.0, nan, -0.0}));
  auto float_codes = OrderPreservingCodes(floats, &is_float);
  ASSERT_TRUE(float_codes.ok());
  EXPECT_TRUE(is_float);
  const auto& codes = float_codes.value();
  EXPECT_GT(codes[0], codes[3]);            // 2.0 > -0
  EXPECT_LT(codes[1], codes[3]);            // -1 < -0
  EXPECT_EQ(codes[2], kNanOrderCode);       // NaN sentinel
  EXPECT_EQ(codes[3], 0);                   // -0 normalizes to +0's code
}

TEST(OrderCodeTest, TensorColumnsRejectedAsKeys) {
  Column images = Column::Plain(Tensor::Zeros({3, 2, 2}));
  bool is_float = false;
  auto codes = OrderPreservingCodes(images, &is_float);
  EXPECT_FALSE(codes.ok());
  EXPECT_EQ(codes.status().code(), StatusCode::kTypeError);
}

// ---- RunOptions validation + end-to-end leak oracle -------------------------

TEST(SpillRunTest, NegativeBudgetRejected) {
  Session session;
  auto table = TableBuilder("t").AddInt64("x", {3, 1, 2}).Build();
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session.RegisterTable("t", table.value()).ok());

  RunOptions run;
  run.memory_budget_bytes = -1;
  auto result = session.Sql("SELECT x FROM t ORDER BY x", {}, run);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SpillRunTest, TightBudgetSpillsAndCleansUp) {
  Session session;
  std::vector<int64_t> vals(4000);
  for (size_t i = 0; i < vals.size(); ++i) {
    vals[i] = static_cast<int64_t>((i * 2654435761u) % 10007);
  }
  auto table = TableBuilder("t").AddInt64("x", vals).Build();
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session.RegisterTable("t", table.value()).ok());

  const int64_t live_before = QueryMemory::LiveSpillFiles();
  const int64_t spilled_before = QueryMemory::TotalBytesSpilled();

  RunOptions unlimited;
  auto reference = session.Sql("SELECT x FROM t ORDER BY x", {}, unlimited);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  RunOptions tight;
  tight.memory_budget_bytes = 4096;  // far under the ~32 KB sort scratch
  auto budgeted = session.Sql("SELECT x FROM t ORDER BY x", {}, tight);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status().ToString();

  // The run actually took the external path...
  EXPECT_GT(QueryMemory::TotalBytesSpilled(), spilled_before);
  // ...left no temp files behind...
  EXPECT_EQ(QueryMemory::LiveSpillFiles(), live_before);
  // ...and produced the identical result.
  ASSERT_EQ(budgeted.value()->num_rows(), reference.value()->num_rows());
  EXPECT_TRUE(TensorEqual(budgeted.value()->column(0).data().Contiguous(),
                          reference.value()->column(0).data().Contiguous()));
}

}  // namespace
}  // namespace exec
}  // namespace tdp
