// Structure tests for the pipeline builder: which operators stream, which
// break, and how a plan decomposes into dependency-ordered pipelines.

#include "src/plan/pipeline.h"

#include <gtest/gtest.h>

#include "src/runtime/session.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = TableBuilder("t")
                 .AddInt64("k", {1, 2, 3, 4})
                 .AddFloat64("v", {0.5, -1.5, 2.5, 3.5})
                 .Build();
    ASSERT_TRUE(session_.RegisterTable("t", t.value()).ok());
    auto u = TableBuilder("u").AddInt64("ku", {1, 3}).Build();
    ASSERT_TRUE(session_.RegisterTable("u", u.value()).ok());
  }

  plan::PipelinePlan Pipelines(const std::string& sql) {
    auto query = session_.Query(sql);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    // The returned pipelines point into the compiled plan; keep it alive
    // for the duration of the test.
    keep_alive_.push_back(*query);
    return plan::BuildPipelines((*query)->plan());
  }

  Session session_;
  std::vector<std::shared_ptr<exec::CompiledQuery>> keep_alive_;
};

TEST_F(PipelineTest, FilterProjectIsOnePipeline) {
  const plan::PipelinePlan p = Pipelines("SELECT k + 1 FROM t WHERE v > 0");
  ASSERT_EQ(p.pipelines.size(), 1u);
  const plan::Pipeline& result = p.pipelines.back();
  EXPECT_EQ(result.sink_kind, plan::SinkKind::kResult);
  EXPECT_EQ(result.source->kind, plan::NodeKind::kScan);
  // Filter and Project stream; nothing breaks.
  ASSERT_EQ(result.ops.size(), 2u);
  EXPECT_EQ(result.ops[0]->kind, plan::NodeKind::kFilter);
  EXPECT_EQ(result.ops[1]->kind, plan::NodeKind::kProject);
  EXPECT_TRUE(result.dependencies.empty());
}

TEST_F(PipelineTest, JoinSplitsIntoBuildAndProbePipelines) {
  const plan::PipelinePlan p =
      Pipelines("SELECT t.k FROM t JOIN u ON t.k = u.ku WHERE t.v > 0");
  ASSERT_EQ(p.pipelines.size(), 2u);
  const plan::Pipeline& build = p.pipelines[0];
  EXPECT_EQ(build.sink_kind, plan::SinkKind::kJoinBuild);
  EXPECT_EQ(build.sink->kind, plan::NodeKind::kJoin);
  EXPECT_EQ(build.source->kind, plan::NodeKind::kScan);

  const plan::Pipeline& probe = p.pipelines[1];
  EXPECT_EQ(probe.sink_kind, plan::SinkKind::kResult);
  EXPECT_EQ(probe.source->kind, plan::NodeKind::kScan);
  ASSERT_EQ(probe.dependencies.size(), 1u);
  EXPECT_EQ(probe.dependencies[0], build.id);
  // The probe pipeline streams through the join (and the pushed-down
  // filter below it) without materializing the joined relation.
  bool has_join_op = false;
  for (const plan::LogicalNode* op : probe.ops) {
    if (op->kind == plan::NodeKind::kJoin) has_join_op = true;
  }
  EXPECT_TRUE(has_join_op);

  const std::string rendering = p.ToString();
  EXPECT_NE(rendering.find("join-build"), std::string::npos) << rendering;
  EXPECT_NE(rendering.find("Probe("), std::string::npos) << rendering;
}

TEST_F(PipelineTest, AggregateAndSortBreak) {
  const plan::PipelinePlan p = Pipelines(
      "SELECT k, COUNT(*) AS c FROM t WHERE v > 0 GROUP BY k ORDER BY k");
  // Aggregate breaks the scan/filter stream; Sort breaks the aggregate
  // output; the result pipeline passes the sorted chunk through.
  ASSERT_GE(p.pipelines.size(), 3u);
  EXPECT_EQ(p.pipelines[0].sink_kind, plan::SinkKind::kAggregate);
  EXPECT_EQ(p.pipelines[0].source->kind, plan::NodeKind::kScan);
  ASSERT_EQ(p.pipelines[0].ops.size(), 1u);
  EXPECT_EQ(p.pipelines[0].ops[0]->kind, plan::NodeKind::kFilter);
  bool has_sort_breaker = false;
  for (const plan::Pipeline& pipe : p.pipelines) {
    if (pipe.sink != nullptr && pipe.sink->kind == plan::NodeKind::kSort) {
      has_sort_breaker = true;
      EXPECT_EQ(pipe.sink_kind, plan::SinkKind::kMaterialize);
    }
  }
  EXPECT_TRUE(has_sort_breaker);
  EXPECT_EQ(p.pipelines.back().sink_kind, plan::SinkKind::kResult);
}

TEST_F(PipelineTest, UdfBearingProjectBecomesBreaker) {
  udf::ScalarFunction fn;
  fn.name = "twice";
  fn.return_type = udf::DeclaredType::kFloat;
  fn.fn = [](const std::vector<udf::Argument>& args, int64_t,
             Device) -> StatusOr<Column> {
    return Column::Plain(MulScalar(args[0].column.DecodeValues(), 2.0));
  };
  ASSERT_TRUE(session_.functions().RegisterScalar(std::move(fn)).ok());

  const plan::PipelinePlan p = Pipelines("SELECT twice(v) FROM t");
  // The UDF-bearing Project materializes its input: UDF bodies are batch
  // tensor programs and must see the whole relation, not morsels.
  ASSERT_EQ(p.pipelines.size(), 2u);
  EXPECT_EQ(p.pipelines[0].sink_kind, plan::SinkKind::kMaterialize);
  EXPECT_EQ(p.pipelines[0].sink->kind, plan::NodeKind::kProject);
  EXPECT_TRUE(plan::NodeUsesUdf(*p.pipelines[0].sink));

  // Same for UDFs among aggregate arguments: no per-morsel input
  // evaluation, the aggregate becomes a kMaterialize breaker.
  const plan::PipelinePlan agg =
      Pipelines("SELECT k, SUM(twice(v)) FROM t GROUP BY k");
  bool agg_materializes = false;
  for (const plan::Pipeline& pipe : agg.pipelines) {
    if (pipe.sink != nullptr &&
        pipe.sink->kind == plan::NodeKind::kAggregate) {
      EXPECT_EQ(pipe.sink_kind, plan::SinkKind::kMaterialize);
      agg_materializes = true;
    }
  }
  EXPECT_TRUE(agg_materializes);
}

TEST_F(PipelineTest, SmallerLeftSideBecomesTheBuild) {
  // u (2 rows) on the left of t (4 rows): the optimizer flips the build
  // side, so the build pipeline scans u and the probe pipeline streams t.
  const plan::PipelinePlan p =
      Pipelines("SELECT u.ku FROM u JOIN t ON u.ku = t.k");
  ASSERT_EQ(p.pipelines.size(), 2u);
  ASSERT_EQ(p.pipelines[0].sink_kind, plan::SinkKind::kJoinBuild);
  ASSERT_EQ(p.pipelines[0].source->kind, plan::NodeKind::kScan);
  EXPECT_EQ(
      static_cast<const plan::ScanNode*>(p.pipelines[0].source)->table_name,
      "u");
  ASSERT_EQ(p.pipelines[1].source->kind, plan::NodeKind::kScan);
  EXPECT_EQ(
      static_cast<const plan::ScanNode*>(p.pipelines[1].source)->table_name,
      "t");
}

TEST_F(PipelineTest, LimitIsItsOwnSink) {
  const plan::PipelinePlan p = Pipelines("SELECT k FROM t LIMIT 2 OFFSET 1");
  ASSERT_GE(p.pipelines.size(), 2u);
  bool has_limit_sink = false;
  for (const plan::Pipeline& pipe : p.pipelines) {
    if (pipe.sink_kind == plan::SinkKind::kLimit) has_limit_sink = true;
  }
  EXPECT_TRUE(has_limit_sink);
}

TEST_F(PipelineTest, ExplainPipelinesRendersThroughCompiledQuery) {
  auto query =
      session_.Query("SELECT t.k FROM t JOIN u ON t.k = u.ku");
  ASSERT_TRUE(query.ok());
  const std::string rendering = (*query)->ExplainPipelines();
  EXPECT_NE(rendering.find("Pipeline 0"), std::string::npos) << rendering;
  EXPECT_NE(rendering.find("result"), std::string::npos) << rendering;
}

}  // namespace
}  // namespace tdp
