// Differential harness for filtered vector search (FilteredIndexTopK).
//
// A seeded driver generates random predicates spanning selectivities from
// ~0 to ~0.9 and runs `SELECT id, dot(emb, ?) AS sim FROM vecs WHERE <p>
// ORDER BY sim DESC LIMIT k` against an indexed session, comparing with a
// reference session that has NO index (its plan is the exact Filter +
// Sort + Limit pipeline). Every predicate carries its C++ counterpart so
// the harness can count survivors independently of either engine path.
//
// The contract under test, per predicate x k:
//   - FULL probe budgets (default 0 and an over-clamped 1000): the indexed
//     plan is bit-identical to the exact plan — under every forced
//     strategy (pre_filter / post_filter / brute) and the plan's own
//     cost-rule choice, across both executors and morsel sizes
//     {1, 7, 4096, whole-input}.
//   - PARTIAL budgets (num_probes=1, max_widening_rounds in {0, 8}): the
//     row count never drops below min(k, survivors) — the widening loop
//     tops the candidate pool up — every returned row satisfies the
//     predicate, and the sim column is non-increasing.
//
// Like dml_differential, the suite registers twice: TDP_NUM_THREADS=1 and
// a _mt variant at 4 kernel threads (see CMakeLists), and rides in the
// TSan/ASan CI jobs.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/exec/run_options.h"
#include "src/exec/vector_search.h"
#include "src/index/ivf_index.h"
#include "src/runtime/session.h"
#include "src/storage/table.h"
#include "src/tensor/ops.h"
#include "tests/vector_test_util.h"

namespace tdp {
namespace {

using exec::RunOptions;
using exec::ScalarValue;
using exec::VectorSearchStrategy;

// A SQL predicate over the `id` column paired with its oracle.
struct Predicate {
  std::string sql;
  std::function<bool(int64_t)> fn;
};

// Random predicates across the selectivity spectrum: modular equality
// (~1/m), range (< / >=), conjunction (AND), disjunction (OR), inequality
// (~0.9), and a never-true range for the zero-survivor edge.
std::vector<Predicate> MakePredicates(Rng& rng, int64_t n) {
  std::vector<Predicate> preds;
  {
    const int64_t m = rng.UniformInt(3, 9);
    const int64_t r = rng.UniformInt(0, m - 1);
    preds.push_back({"id % " + std::to_string(m) + " = " + std::to_string(r),
                     [m, r](int64_t id) { return id % m == r; }});
  }
  {
    const int64_t cut = rng.UniformInt(1, n - 1);
    preds.push_back({"id < " + std::to_string(cut),
                     [cut](int64_t id) { return id < cut; }});
  }
  {
    const int64_t lo = rng.UniformInt(0, n / 2);
    const int64_t hi = lo + rng.UniformInt(1, n / 2);
    preds.push_back(
        {"id >= " + std::to_string(lo) + " AND id < " + std::to_string(hi),
         [lo, hi](int64_t id) { return id >= lo && id < hi; }});
  }
  {
    const int64_t m = rng.UniformInt(2, 4);
    const int64_t cut = n - rng.UniformInt(1, n / 4);
    preds.push_back(
        {"id % " + std::to_string(m) + " = 0 OR id >= " + std::to_string(cut),
         [m, cut](int64_t id) { return id % m == 0 || id >= cut; }});
  }
  {
    const int64_t x = rng.UniformInt(0, n - 1);
    preds.push_back({"id <> " + std::to_string(x),
                     [x](int64_t id) { return id != x; }});
  }
  preds.push_back({"id < 0", [](int64_t) { return false; }});
  return preds;
}

std::shared_ptr<Table> MakeVecTable(int64_t n, int64_t dim, int64_t clusters,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  auto table =
      TableBuilder("vecs")
          .AddInt64("id", ids)
          .AddTensor("emb",
                     testutil::MakeClusteredUnitVectors(n, dim, clusters, rng))
          .Build();
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return table.value();
}

struct ExecConfig {
  bool streaming;
  int64_t morsel_rows;  // 0 = executor default (whole-input morsels)
  std::string label;
};

std::vector<ExecConfig> Sweep() {
  std::vector<ExecConfig> configs;
  for (const bool streaming : {true, false}) {
    for (const int64_t morsel :
         {int64_t{1}, int64_t{7}, int64_t{4096}, int64_t{0}}) {
      configs.push_back({streaming, morsel,
                         std::string(streaming ? "streaming" : "legacy") +
                             "/morsel=" + std::to_string(morsel)});
    }
  }
  return configs;
}

class FilteredTopKDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FilteredTopKDifferentialTest, FilteredSearchAgreesWithExactPlan) {
  const uint64_t seed = GetParam();
  Rng rng(0xF17'0000 + seed);
  const int64_t n = 240 + static_cast<int64_t>(seed) * 40;
  const int64_t dim = 8;
  const std::shared_ptr<Table> data = MakeVecTable(n, dim, 6, 100 + seed);

  Session indexed;
  ASSERT_TRUE(indexed.RegisterTable("vecs", data).ok());
  index::IvfIndex::Options opts;
  opts.num_lists = 6 + static_cast<int64_t>(seed % 3) * 2;
  ASSERT_TRUE(indexed.CreateVectorIndex("vecs", "emb", opts).ok());

  Session reference;  // no index: the exact Filter + Sort + Limit plan
  ASSERT_TRUE(reference.RegisterTable("vecs", data).ok());

  const std::vector<ExecConfig> configs = Sweep();
  const std::vector<Predicate> preds = MakePredicates(rng, n);

  for (const Predicate& pred : preds) {
    int64_t survivors = 0;
    for (int64_t id = 0; id < n; ++id) {
      if (pred.fn(id)) ++survivors;
    }
    for (const int64_t k : {int64_t{1}, int64_t{5}, int64_t{17}}) {
      const std::string sql = "SELECT id, dot(emb, ?) AS sim FROM vecs "
                              "WHERE " + pred.sql +
                              " ORDER BY sim DESC LIMIT " + std::to_string(k);
      const std::vector<ScalarValue> params = {ScalarValue::FromTensor(
          testutil::MakeUnitQuery(dim, rng))};
      const std::string what = "seed " + std::to_string(seed) + " [" +
                               pred.sql + "] k=" + std::to_string(k);

      auto expected = reference.Sql(sql, {}, testutil::WithParams(params));
      ASSERT_TRUE(expected.ok()) << what << ": "
                                 << expected.status().ToString();
      ASSERT_EQ((*expected)->num_rows(), std::min(k, survivors)) << what;

      // The indexed plan really is the filtered-index shape (except the
      // never-true predicate is still rewritten — brute or not — so no
      // sub-case escapes the operator under test).
      auto plan = indexed.Explain(sql);
      ASSERT_TRUE(plan.ok()) << what;
      ASSERT_NE(plan->find("FilteredIndexTopK"), std::string::npos)
          << what << "\n" << *plan;

      // Full budgets: bit-identity across executors/morsels (cost-rule
      // strategy) and across every forced strategy (whole-input morsels).
      for (const ExecConfig& config : configs) {
        for (const int64_t probes : {int64_t{0}, int64_t{1000}}) {
          RunOptions run = testutil::WithParams(params);
          run.exec.streaming = config.streaming;
          run.exec.morsel_rows = config.morsel_rows;
          run.vector_search.num_probes = probes;
          auto got = indexed.Sql(sql, {}, run);
          ASSERT_TRUE(got.ok()) << what << " [" << config.label
                                << "]: " << got.status().ToString();
          testutil::ExpectTablesBitIdentical(
              **expected, **got,
              what + " [" + config.label + "] probes=" +
                  std::to_string(probes));
        }
      }
      for (const auto strategy :
           {VectorSearchStrategy::kPreFilter, VectorSearchStrategy::kPostFilter,
            VectorSearchStrategy::kBrute}) {
        RunOptions run = testutil::WithParams(params);
        run.vector_search.strategy = strategy;
        auto got = indexed.Sql(sql, {}, run);
        ASSERT_TRUE(got.ok()) << what << ": " << got.status().ToString();
        testutil::ExpectTablesBitIdentical(
            **expected, **got,
            what + " strategy=" +
                std::string(exec::VectorSearchStrategyName(strategy)));
      }

      // Partial budgets: the survivor floor holds, rows satisfy the
      // predicate, and scores are non-increasing. (Recall may differ from
      // exact — row MEMBERSHIP is not pinned, only the contract.)
      for (const auto strategy : {VectorSearchStrategy::kPreFilter,
                                  VectorSearchStrategy::kPostFilter}) {
        for (const int64_t rounds : {int64_t{0}, int64_t{8}}) {
          RunOptions run = testutil::WithParams(params);
          run.vector_search.num_probes = 1;
          run.vector_search.strategy = strategy;
          run.vector_search.max_widening_rounds = rounds;
          auto got = indexed.Sql(sql, {}, run);
          ASSERT_TRUE(got.ok()) << what << ": " << got.status().ToString();
          const std::string sub =
              what + " partial strategy=" +
              std::string(exec::VectorSearchStrategyName(strategy)) +
              " rounds=" + std::to_string(rounds);
          ASSERT_EQ((*got)->num_rows(), std::min(k, survivors)) << sub;
          const Tensor ids = (*got)->column(0).data().Contiguous();
          const Tensor sims = (*got)->column(1).data().Contiguous();
          for (int64_t i = 0; i < (*got)->num_rows(); ++i) {
            EXPECT_TRUE(pred.fn(static_cast<int64_t>(ids.At({i}))))
                << sub << " row " << i;
            if (i > 0) {
              EXPECT_GE(sims.At({i - 1}), sims.At({i})) << sub << " row "
                                                        << i;
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilteredTopKDifferentialTest,
                         ::testing::Range<uint64_t>(0, 4));

}  // namespace
}  // namespace tdp
