#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/statusor.h"
#include "src/common/string_util.h"

namespace tdp {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::NotFound("table x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: table x");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
}

TEST(StatusOrTest, ValueAndError) {
  StatusOr<int> ok_result(42);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 42);
  EXPECT_EQ(*ok_result, 42);

  StatusOr<int> err_result(Status::InvalidArgument("bad"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> StatusOr<int> {
    if (fail) return Status::Internal("boom");
    return 7;
  };
  auto outer = [&](bool fail) -> StatusOr<int> {
    TDP_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(outer(false).value(), 8);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
  Rng c(124);
  EXPECT_NE(Rng(123).NextUint64(), c.NextUint64());
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(9);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(3.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(RngTest, LaplaceIsSymmetricHeavyTailed) {
  Rng rng(10);
  double sum = 0;
  int extreme = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Laplace(1.0);
    sum += v;
    if (std::abs(v) > 3.0) ++extreme;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  // P(|Laplace(1)| > 3) = e^-3 ~ 5%.
  EXPECT_NEAR(static_cast<double>(extreme) / n, 0.05, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(11);
  const std::vector<int64_t> perm = rng.Permutation(100);
  std::vector<bool> seen(100, false);
  for (int64_t v : perm) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
    EXPECT_FALSE(seen[static_cast<size_t>(v)]);
    seen[static_cast<size_t>(v)] = true;
  }
}

TEST(StringUtilTest, CaseAndSplit) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("from"), "FROM");
  EXPECT_TRUE(EqualsIgnoreCase("Digits", "DIGITS"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_EQ(StripWhitespace("  x y \n"), "x y");
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
}

}  // namespace
}  // namespace tdp
