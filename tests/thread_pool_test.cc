#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace tdp {
namespace {

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int64_t> calls{0};
  pool.ParallelFor(0, 0, 1, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(0, kN, 7, [&](int64_t begin, int64_t end) {
    ASSERT_LE(begin, end);
    for (int64_t i = begin; i < end; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, NonZeroBeginIsRespected) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, 200, 1, [&](int64_t begin, int64_t end) {
    int64_t local = 0;
    for (int64_t i = begin; i < end; ++i) local += i;
    sum += local;
  });
  int64_t expected = 0;
  for (int64_t i = 100; i < 200; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, GrainLargerThanRangeRunsInline) {
  ThreadPool pool(4);
  std::atomic<int64_t> calls{0};
  std::atomic<int64_t> covered{0};
  pool.ParallelFor(0, 10, 1000, [&](int64_t begin, int64_t end) {
    ++calls;
    covered += end - begin;
  });
  // One shard spanning the whole range, executed by the calling thread.
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(covered.load(), 10);
}

TEST(ThreadPoolTest, ShardsAreAtLeastGrainSized) {
  ThreadPool pool(8);
  std::atomic<int64_t> calls{0};
  pool.ParallelFor(0, 100, 50, [&](int64_t begin, int64_t end) {
    EXPECT_GE(end - begin, 25);  // never split below ceil(range/shards)
    ++calls;
  });
  EXPECT_LE(calls.load(), 2);  // 100/50 = at most 2 shards
}

TEST(ThreadPoolTest, NoDegenerateShardsWhenRangeBarelyExceedsChunking) {
  // 8 items over 7 threads: chunk=2 leaves only 4 real shards; the pool
  // must never invoke fn with an empty or inverted range (a negative
  // length would wrap in size_t arithmetic inside kernels).
  ThreadPool pool(7);
  std::atomic<int64_t> covered{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t begin, int64_t end) {
    EXPECT_LT(begin, end);
    covered += end - begin;
  });
  EXPECT_EQ(covered.load(), 8);
}

TEST(ThreadPoolTest, ParallelismSurvivesACaughtException) {
  // A throwing shard must not leak the in-parallel thread-local flag: if
  // it did, the next ParallelFor on this thread would collapse into one
  // inline shard instead of fanning out.
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 4, 1,
                                [](int64_t, int64_t) {
                                  throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  std::atomic<int64_t> shards{0};
  pool.ParallelFor(0, 4, 1, [&](int64_t, int64_t) { ++shards; });
  EXPECT_EQ(shards.load(), 4);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 1000, 1,
                       [&](int64_t begin, int64_t) {
                         if (begin == 0) {
                           throw std::runtime_error("shard failed");
                         }
                       }),
      std::runtime_error);
  // The pool survives the exception and remains usable.
  std::atomic<int64_t> covered{0};
  pool.ParallelFor(0, 100, 1,
                   [&](int64_t begin, int64_t end) { covered += end - begin; });
  EXPECT_EQ(covered.load(), 100);
}

TEST(ThreadPoolTest, ExceptionFromWorkerShardPropagates) {
  ThreadPool pool(4);
  // Throw from every shard so at least one non-caller shard (if any) throws.
  EXPECT_THROW(pool.ParallelFor(0, 1000, 1,
                                [](int64_t, int64_t) {
                                  throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsOnCallingThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  pool.ParallelFor(0, 64, 1, [&](int64_t, int64_t) {
    seen.push_back(std::this_thread::get_id());
  });
  ASSERT_FALSE(seen.empty());
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      // The nested call must not re-enter the pool (deadlock-free) and must
      // still cover its range.
      pool.ParallelFor(0, 10, 1,
                       [&](int64_t b, int64_t e) { total += e - b; });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPoolTest, ConcurrentCallersBothComplete) {
  // Two threads hammer one pool; each caller's wait must see all of its
  // own shards finish (the help-loop only drains own-call tasks).
  ThreadPool pool(4);
  std::atomic<int64_t> a{0};
  std::atomic<int64_t> b{0};
  std::thread other([&] {
    for (int i = 0; i < 50; ++i) {
      pool.ParallelFor(0, 1000, 1,
                       [&](int64_t lo, int64_t hi) { a += hi - lo; });
    }
  });
  for (int i = 0; i < 50; ++i) {
    pool.ParallelFor(0, 1000, 1,
                     [&](int64_t lo, int64_t hi) { b += hi - lo; });
  }
  other.join();
  EXPECT_EQ(a.load(), 50000);
  EXPECT_EQ(b.load(), 50000);
}

TEST(ThreadPoolTest, GlobalHonorsTdpNumThreads) {
  // The ctest harness runs every test with TDP_NUM_THREADS=1: the global
  // pool must come up single-threaded and therefore fully deterministic.
  const char* env = std::getenv("TDP_NUM_THREADS");
  if (env != nullptr && std::string(env) == "1") {
    EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
  } else {
    EXPECT_GE(ThreadPool::Global().num_threads(), 1);
  }
}

TEST(ThreadPoolTest, SetGlobalNumThreadsRebuildsPool) {
  ThreadPool::SetGlobalNumThreads(3);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3);
  std::atomic<int64_t> covered{0};
  ParallelFor(0, 1000, 1,
              [&](int64_t begin, int64_t end) { covered += end - begin; });
  EXPECT_EQ(covered.load(), 1000);
  ThreadPool::SetGlobalNumThreads(1);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
}

TEST(ThreadPoolTest, SameResultAcrossThreadCounts) {
  // A deterministic fixed-block reduction (the discipline the kernels use)
  // must produce bit-identical results for any pool size.
  constexpr int64_t kN = 100000;
  constexpr int64_t kBlock = 4096;
  std::vector<float> data(kN);
  for (int64_t i = 0; i < kN; ++i) {
    data[static_cast<size_t>(i)] = 1.0f / static_cast<float>(i + 1);
  }
  auto block_sum = [&](ThreadPool& pool) {
    const int64_t blocks = (kN + kBlock - 1) / kBlock;
    std::vector<double> partials(static_cast<size_t>(blocks), 0.0);
    pool.ParallelFor(0, blocks, 1, [&](int64_t begin, int64_t end) {
      for (int64_t blk = begin; blk < end; ++blk) {
        const int64_t lo = blk * kBlock;
        const int64_t hi = std::min(kN, lo + kBlock);
        double acc = 0;
        for (int64_t i = lo; i < hi; ++i) {
          acc += static_cast<double>(data[static_cast<size_t>(i)]);
        }
        partials[static_cast<size_t>(blk)] = acc;
      }
    });
    double total = 0;
    for (double p : partials) total += p;
    return total;
  };
  ThreadPool serial(1);
  ThreadPool quad(4);
  const double expected = block_sum(serial);
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_EQ(block_sum(quad), expected);
  }
}

}  // namespace
}  // namespace tdp
