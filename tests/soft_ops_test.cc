#include "src/exec/soft_ops.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace exec {
namespace {

TEST(SoftOpsTest, SoftCountOfHardDistributionsIsExactCount) {
  // One-hot rows: soft count == exact count.
  Tensor idx = Tensor::FromVector(std::vector<int64_t>{0, 1, 1, 2, 1});
  Tensor probs = OneHot(idx, 3);
  Tensor counts = SoftCount(probs);
  EXPECT_EQ(counts.ToVector<float>(), (std::vector<float>{1, 3, 1}));
}

TEST(SoftOpsTest, SoftCountIsExpectedCount) {
  Tensor probs = Tensor::FromVector(
      std::vector<float>{0.9f, 0.1f, 0.4f, 0.6f, 0.5f, 0.5f}, {3, 2});
  Tensor counts = SoftCount(probs);
  EXPECT_NEAR(counts.At({0}), 1.8, 1e-5);
  EXPECT_NEAR(counts.At({1}), 1.2, 1e-5);
}

TEST(SoftOpsTest, SoftGroupByMatchesExactOnHardInputs) {
  // digits in {0,1,2}, sizes in {0,1}; hard one-hot PE columns.
  Tensor digits = Tensor::FromVector(std::vector<int64_t>{0, 2, 2, 1});
  Tensor sizes = Tensor::FromVector(std::vector<int64_t>{1, 0, 1, 1});
  Column d = Column::Probability(OneHot(digits, 3), {0, 1, 2});
  Column s = Column::Probability(OneHot(sizes, 2), {0, 1});
  auto result = SoftGroupByCount({d, s});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 6 combos, row-major (digit slowest): (0,0)(0,1)(1,0)(1,1)(2,0)(2,1).
  EXPECT_EQ(result->counts.ToVector<float>(),
            (std::vector<float>{0, 1, 0, 1, 1, 1}));
  EXPECT_EQ(result->key_values[0].ToVector<float>(),
            (std::vector<float>{0, 0, 1, 1, 2, 2}));
  EXPECT_EQ(result->key_values[1].ToVector<float>(),
            (std::vector<float>{0, 1, 0, 1, 0, 1}));
}

TEST(SoftOpsTest, SoftGroupByCountsSumToRowCount) {
  Rng rng(1);
  Tensor d = Softmax(RandNormal({20, 10}, 0, 1, rng), 1);
  Tensor s = Softmax(RandNormal({20, 2}, 0, 1, rng), 1);
  std::vector<double> digit_domain;
  for (int i = 0; i < 10; ++i) digit_domain.push_back(i);
  auto result = SoftGroupByCount(
      {Column::Probability(d, digit_domain), Column::Probability(s, {0, 1})});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->counts.numel(), 20);
  EXPECT_NEAR(Sum(result->counts).item<float>(), 20.0f, 1e-3);
}

TEST(SoftOpsTest, SoftGroupByIsDifferentiable) {
  Rng rng(2);
  Tensor logits = RandNormal({6, 4}, 0, 1, rng).set_requires_grad(true);
  Tensor probs = Softmax(logits, 1);
  auto result = SoftGroupByCount({Column::Probability(probs, {0, 1, 2, 3})});
  ASSERT_TRUE(result.ok());
  Tensor target = Tensor::FromVector(std::vector<float>{2, 2, 1, 1});
  Tensor diff = Sub(result->counts, target);
  Mean(Mul(diff, diff)).Backward();
  ASSERT_TRUE(logits.grad().defined());
  // Gradient must be non-trivial.
  EXPECT_GT(Sum(Abs(logits.grad())).item<float>(), 0.0f);
}

TEST(SoftOpsTest, SoftGroupByRejectsNonPeKeys) {
  Column plain = Column::Plain(Tensor::Ones({4}));
  auto result = SoftGroupByCount({plain});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
}

TEST(SoftOpsTest, WeightedCountAppliesFilterWeights) {
  Tensor probs = OneHot(Tensor::FromVector(std::vector<int64_t>{0, 1, 0}), 2);
  Tensor weights = Tensor::FromVector(std::vector<float>{1.0f, 0.5f, 0.0f});
  Tensor counts = SoftWeightedCount(probs, SoftFilterWeights(weights));
  EXPECT_NEAR(counts.At({0}), 1.0, 1e-6);
  EXPECT_NEAR(counts.At({1}), 0.5, 1e-6);
}

}  // namespace
}  // namespace exec
}  // namespace tdp
