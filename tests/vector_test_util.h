#ifndef TDP_TESTS_VECTOR_TEST_UTIL_H_
#define TDP_TESTS_VECTOR_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/exec/run_options.h"
#include "src/exec/value.h"
#include "src/storage/table.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

namespace tdp {
namespace testutil {

/// `exec::RunOptions` carrying just `?` parameter bindings — the common
/// case after the params-vector `Session::Sql` overload was folded into
/// the RunOptions one.
inline exec::RunOptions WithParams(std::vector<exec::ScalarValue> params) {
  exec::RunOptions run;
  run.params = std::move(params);
  return run;
}

/// Clustered unit vectors shared by the vector-index suites: `clusters`
/// random unit directions, each row a small (0.08σ) perturbation of one
/// of them, re-normalized. One definition so ivf_index, ivf_index_sql,
/// differential, and streaming-parity tests all exercise identical data
/// for identical (rng, shape) inputs.
inline Tensor MakeClusteredUnitVectors(int64_t n, int64_t dim,
                                       int64_t clusters, Rng& rng) {
  Tensor centers = L2Normalize(RandNormal({clusters, dim}, 0, 1, rng), 1);
  Tensor data = Tensor::Zeros({n, dim});
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = rng.UniformInt(0, clusters - 1);
    Tensor row = L2Normalize(
        Add(Slice(centers, 0, c, 1), RandNormal({1, dim}, 0, 0.08, rng)), 1);
    for (int64_t d = 0; d < dim; ++d) data.SetAt({i, d}, row.At({0, d}));
  }
  return data;
}

/// A random unit-norm query vector of `dim` elements.
inline Tensor MakeUnitQuery(int64_t dim, Rng& rng) {
  return L2Normalize(RandNormal({1, dim}, 0, 1, rng), 1).Squeeze(0)
      .Contiguous();
}

/// Asserts `a` and `b` hold the same bytes column for column — the
/// "bit-identical" oracle the index-vs-brute differential suites share
/// (the streaming-parity suite keeps its own stricter variant that also
/// pins encodings and dictionary identity).
inline void ExpectTablesBitIdentical(const Table& a, const Table& b,
                                     const std::string& what = "") {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  ASSERT_EQ(a.num_columns(), b.num_columns()) << what;
  for (int64_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_TRUE(TensorEqual(a.column(c).data().Contiguous(),
                            b.column(c).data().Contiguous()))
        << what << " column " << c;
  }
}

}  // namespace testutil
}  // namespace tdp

#endif  // TDP_TESTS_VECTOR_TEST_UTIL_H_
