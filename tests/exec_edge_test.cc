// Edge-case coverage for the tensor query executor: empty inputs, empty
// results, tensor-column passthrough, PE columns in relational context,
// pathological limits.

#include <gtest/gtest.h>

#include <cmath>

#include "src/runtime/session.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

class ExecEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = TableBuilder("t")
                 .AddInt64("k", {1, 2, 3})
                 .AddFloat32("v", {1.5f, -2.5f, 0.0f})
                 .AddStrings("s", {"a", "b", "a"})
                 .AddTensor("vecs", Tensor::FromVector(
                                        std::vector<float>{1, 2, 3, 4, 5, 6},
                                        {3, 2}))
                 .Build();
    ASSERT_TRUE(session_.RegisterTable("t", t.value()).ok());
  }
  Session session_;
};

TEST_F(ExecEdgeTest, FilterSelectingNothing) {
  auto r = session_.Sql("SELECT k FROM t WHERE v > 100");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 0);
}

TEST_F(ExecEdgeTest, AggregateOverEmptyInput) {
  auto r = session_.Sql("SELECT COUNT(*), SUM(v) FROM t WHERE k > 99");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->num_rows(), 1);
  EXPECT_EQ((*r)->column(0).data().At({0}), 0.0);
  EXPECT_EQ((*r)->column(1).data().At({0}), 0.0);
}

TEST_F(ExecEdgeTest, GroupByOverEmptyInputYieldsNoGroups) {
  auto r = session_.Sql(
      "SELECT s, COUNT(*) FROM t WHERE k > 99 GROUP BY s");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 0);
}

TEST_F(ExecEdgeTest, OrderByOnEmptyResult) {
  auto r = session_.Sql("SELECT k FROM t WHERE v > 100 ORDER BY k DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 0);
}

TEST_F(ExecEdgeTest, LimitBeyondRowCount) {
  auto r = session_.Sql("SELECT k FROM t LIMIT 100");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 3);
  auto zero = session_.Sql("SELECT k FROM t LIMIT 0");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ((*zero)->num_rows(), 0);
  auto off = session_.Sql("SELECT k FROM t ORDER BY k LIMIT 5 OFFSET 10");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ((*off)->num_rows(), 0);
}

TEST_F(ExecEdgeTest, TensorColumnsPassThroughProjectionAndFilter) {
  auto r = session_.Sql("SELECT vecs, k FROM t WHERE k >= 2 ORDER BY k");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->num_rows(), 2);
  const Column& vecs = (*r)->column(0);
  EXPECT_TRUE(vecs.IsTensorColumn());
  EXPECT_EQ(vecs.data().shape(), (std::vector<int64_t>{2, 2}));
  // Row for k=2 is the second original row [3, 4].
  EXPECT_EQ(vecs.data().At({0, 0}), 3.0);
  EXPECT_EQ(vecs.data().At({0, 1}), 4.0);
}

TEST_F(ExecEdgeTest, TensorColumnCannotBeGroupKey) {
  auto r = session_.Sql("SELECT vecs, COUNT(*) FROM t GROUP BY vecs");
  EXPECT_FALSE(r.ok());
}

TEST_F(ExecEdgeTest, StringAggregationLimits) {
  // MIN/MAX/SUM over strings is a type error; COUNT works.
  EXPECT_FALSE(session_.Sql("SELECT SUM(s) FROM t").ok());
  EXPECT_FALSE(session_.Sql("SELECT MAX(s) FROM t").ok());
  auto r = session_.Sql("SELECT COUNT(s) FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->column(0).data().At({0}), 3.0);
}

TEST_F(ExecEdgeTest, DivisionByZeroColumnProducesInf) {
  // Tensor semantics (like the paper's runtime): elementwise division by
  // a zero value yields inf, not an engine error.
  auto r = session_.Sql("SELECT k / v FROM t WHERE k = 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(std::isinf((*r)->column(0).data().At({0})));
}

TEST_F(ExecEdgeTest, SingleRowTable) {
  auto one = TableBuilder("one").AddInt64("x", {42}).Build();
  ASSERT_TRUE(session_.RegisterTable("one", one.value()).ok());
  auto r = session_.Sql(
      "SELECT x, COUNT(*) FROM one GROUP BY x HAVING COUNT(*) >= 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 1);
}

TEST_F(ExecEdgeTest, DuplicateAggregatesComputedOnce) {
  auto r = session_.Sql(
      "SELECT COUNT(*), COUNT(*) + 1, COUNT(*) * 2 FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->column(0).data().At({0}), 3.0);
  EXPECT_EQ((*r)->column(1).data().At({0}), 4.0);
  EXPECT_EQ((*r)->column(2).data().At({0}), 6.0);
}

TEST_F(ExecEdgeTest, NestedSubqueries) {
  auto r = session_.Sql(
      "SELECT m FROM (SELECT MAX(v) AS m FROM (SELECT k, v FROM t WHERE k "
      "< 3) inner1) outer1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FLOAT_EQ(static_cast<float>((*r)->column(0).data().At({0})), 1.5f);
}

TEST_F(ExecEdgeTest, OrderByExpressionNotInSelect) {
  auto r = session_.Sql("SELECT k FROM t ORDER BY v * -1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // v*-1 ascending: v descending: 1.5, 0.0, -2.5 -> k = 1, 3, 2.
  EXPECT_EQ((*r)->column(0).data().At({0}), 1.0);
  EXPECT_EQ((*r)->column(0).data().At({1}), 3.0);
  EXPECT_EQ((*r)->column(0).data().At({2}), 2.0);
  EXPECT_EQ((*r)->num_columns(), 1) << "hidden sort column must be dropped";
}

TEST_F(ExecEdgeTest, OrderByAggregateNotInSelect) {
  auto r = session_.Sql(
      "SELECT s FROM t GROUP BY s ORDER BY COUNT(*) DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->column(0).DecodeStrings()[0], "a");
  EXPECT_EQ((*r)->num_columns(), 1);
}

TEST_F(ExecEdgeTest, EmptyRegisteredTable) {
  // Regression: predicates over a 0-row relation used to produce a
  // phantom 1-row mask (BroadcastShapes stretched the empty dim against a
  // scalar's size-1 dim to 1 instead of 0), failing with "predicate mask
  // length mismatch" on genuinely empty tables.
  auto empty = TableBuilder("e")
                   .AddInt64("k", {})
                   .AddFloat32("v", {})
                   .Build();
  ASSERT_TRUE(session_.RegisterTable("e", empty.value()).ok());
  auto filtered = session_.Sql("SELECT k FROM e WHERE v > 0");
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  EXPECT_EQ((*filtered)->num_rows(), 0);
  auto agg = session_.Sql("SELECT COUNT(*), SUM(v) FROM e WHERE k = 1");
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  EXPECT_EQ((*agg)->column(0).data().At({0}), 0.0);
  auto sorted = session_.Sql("SELECT k FROM e ORDER BY v DESC LIMIT 2");
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  EXPECT_EQ((*sorted)->num_rows(), 0);
}

TEST_F(ExecEdgeTest, OffsetFarBeyondInputAndHugeLimits) {
  auto off = session_.Sql("SELECT k FROM t LIMIT 2 OFFSET 9000000000");
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_EQ((*off)->num_rows(), 0);
  // offset + limit must not overflow int64 (saturating arithmetic).
  auto huge = session_.Sql(
      "SELECT k FROM t LIMIT 9223372036854775807 OFFSET 9223372036854775807");
  ASSERT_TRUE(huge.ok()) << huge.status().ToString();
  EXPECT_EQ((*huge)->num_rows(), 0);
  auto all = session_.Sql("SELECT k FROM t LIMIT 9223372036854775807");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ((*all)->num_rows(), 3);
}

TEST_F(ExecEdgeTest, JoinWithZeroRowBuildSide) {
  auto empty = TableBuilder("eb").AddInt64("bk", {}).Build();
  ASSERT_TRUE(session_.RegisterTable("eb", empty.value()).ok());
  // Build side (right child) empty: every probe misses.
  auto r = session_.Sql("SELECT t.k FROM t JOIN eb ON t.k = eb.bk");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 0);
  // Probe side empty against a populated build.
  auto r2 = session_.Sql("SELECT eb.bk, t.k FROM eb JOIN t ON eb.bk = t.k");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ((*r2)->num_rows(), 0);
}

TEST_F(ExecEdgeTest, JoinDuplicateBuildKeysEmitInBuildRowOrder) {
  // Regression: duplicate build-side keys used to be emitted in the
  // implementation-defined equal_range order of an unordered_multimap
  // (reverse insertion under libstdc++); the join now guarantees
  // ascending build-row order for each probe row.
  auto dup = TableBuilder("dup")
                 .AddInt64("dk", {2, 2, 2})
                 .AddFloat32("tagv", {10.0f, 20.0f, 30.0f})
                 .Build();
  ASSERT_TRUE(session_.RegisterTable("dup", dup.value()).ok());
  auto r = session_.Sql("SELECT t.k, dup.tagv FROM t JOIN dup ON t.k = dup.dk");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->num_rows(), 3);
  EXPECT_EQ((*r)->column(1).data().At({0}), 10.0);
  EXPECT_EQ((*r)->column(1).data().At({1}), 20.0);
  EXPECT_EQ((*r)->column(1).data().At({2}), 30.0);
}

TEST_F(ExecEdgeTest, ProbabilityColumnsGroupExactlyWhenNotTrainable) {
  // A PE column used by a non-trainable query is hard-decoded.
  Tensor probs = Tensor::FromVector(
      std::vector<float>{0.9f, 0.1f, 0.2f, 0.8f, 0.6f, 0.4f}, {3, 2});
  auto table = Table::Create(
      "pe", {"cls"}, {Column::Probability(probs, {10.0, 20.0})});
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session_.RegisterTable("pe", table.value()).ok());
  auto r = session_.Sql(
      "SELECT cls, COUNT(*) FROM pe GROUP BY cls ORDER BY cls");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->num_rows(), 2);
  EXPECT_EQ((*r)->column(0).data().At({0}), 10.0);
  EXPECT_EQ((*r)->column(1).data().At({0}), 2.0);  // rows 0 and 2
  EXPECT_EQ((*r)->column(1).data().At({1}), 1.0);
}

}  // namespace
}  // namespace tdp
