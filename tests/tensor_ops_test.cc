#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

// Both kernel backends must agree — this is the central correctness
// property of the device axis (same plan, different kernels).
class BackendParityTest : public ::testing::TestWithParam<Device> {};

TEST_P(BackendParityTest, BinaryOpsMatchReference) {
  Rng rng(7);
  const Device device = GetParam();
  Tensor a = RandNormal({17, 5}, 0, 1, rng).To(device);
  Tensor b = RandNormal({17, 5}, 0, 1, rng).To(device);
  // Compute on both devices; results must be identical.
  Tensor sum_dev = Add(a, b).To(Device::kCpu);
  Tensor sum_cpu = Add(a.To(Device::kCpu), b.To(Device::kCpu));
  EXPECT_TRUE(AllClose(sum_dev, sum_cpu));
  EXPECT_TRUE(AllClose(Mul(a, b).To(Device::kCpu),
                       Mul(a.To(Device::kCpu), b.To(Device::kCpu))));
  EXPECT_TRUE(AllClose(Div(a, AddScalar(Abs(b), 1.0)).To(Device::kCpu),
                       Div(a.To(Device::kCpu),
                           AddScalar(Abs(b.To(Device::kCpu)), 1.0))));
}

TEST_P(BackendParityTest, MatMulMatchesNaive) {
  Rng rng(11);
  const Device device = GetParam();
  Tensor a = RandNormal({7, 9}, 0, 1, rng);
  Tensor b = RandNormal({9, 4}, 0, 1, rng);
  Tensor c = MatMul(a.To(device), b.To(device)).To(Device::kCpu);
  // Naive check.
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      double acc = 0;
      for (int64_t k = 0; k < 9; ++k) acc += a.At({i, k}) * b.At({k, j});
      EXPECT_NEAR(c.At({i, j}), acc, 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Devices, BackendParityTest,
                         ::testing::Values(Device::kCpu, Device::kAccel),
                         [](const auto& info) {
                           return std::string(DeviceName(info.param));
                         });

TEST(OpsTest, BroadcastingAdd) {
  Tensor a = Tensor::FromVector(std::vector<float>{1, 2, 3}, {3, 1});
  Tensor b = Tensor::FromVector(std::vector<float>{10, 20}, {1, 2});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(c.At({2, 1}), 23.0);
}

TEST(OpsTest, TypePromotion) {
  Tensor i = Tensor::FromVector(std::vector<int64_t>{1, 2});
  Tensor f = Tensor::FromVector(std::vector<float>{0.5f, 0.5f});
  EXPECT_EQ(Add(i, f).dtype(), DType::kFloat32);
  EXPECT_EQ(Add(i, i).dtype(), DType::kInt64);
}

TEST(OpsTest, ComparisonsProduceBool) {
  Tensor a = Tensor::FromVector(std::vector<float>{1, 5, 3});
  Tensor b = Tensor::FromVector(std::vector<float>{2, 2, 3});
  Tensor lt = Lt(a, b);
  EXPECT_EQ(lt.dtype(), DType::kBool);
  EXPECT_EQ(lt.ToVector<bool>(), (std::vector<bool>{true, false, false}));
  EXPECT_EQ(Ge(a, b).ToVector<bool>(),
            (std::vector<bool>{false, true, true}));
  EXPECT_EQ(Eq(a, b).ToVector<bool>(),
            (std::vector<bool>{false, false, true}));
}

TEST(OpsTest, LogicalOps) {
  Tensor t = Tensor::FromVector(std::vector<float>{1, 1, 0, 0});
  Tensor u = Tensor::FromVector(std::vector<float>{1, 0, 1, 0});
  Tensor a = Gt(t, MulScalar(t, 0.0));  // [1,1,0,0] as bool
  Tensor b = Gt(u, MulScalar(u, 0.0));
  EXPECT_EQ(LogicalAnd(a, b).ToVector<bool>(),
            (std::vector<bool>{true, false, false, false}));
  EXPECT_EQ(LogicalOr(a, b).ToVector<bool>(),
            (std::vector<bool>{true, true, true, false}));
  EXPECT_EQ(LogicalNot(a).ToVector<bool>(),
            (std::vector<bool>{false, false, true, true}));
}

TEST(OpsTest, UnaryMath) {
  Tensor t = Tensor::FromVector(std::vector<float>{-2, 0, 2});
  EXPECT_EQ(Relu(t).ToVector<float>(), (std::vector<float>{0, 0, 2}));
  EXPECT_EQ(Abs(t).ToVector<float>(), (std::vector<float>{2, 0, 2}));
  EXPECT_EQ(Sign(t).ToVector<float>(), (std::vector<float>{-1, 0, 1}));
  EXPECT_EQ(Neg(t).ToVector<float>(), (std::vector<float>{2, 0, -2}));
  Tensor e = Exp(Tensor::Zeros({2}));
  EXPECT_FLOAT_EQ(e.ToVector<float>()[0], 1.0f);
  EXPECT_NEAR(Sigmoid(Tensor::Zeros({1})).item<float>(), 0.5f, 1e-6);
}

TEST(OpsTest, ClampAndPow) {
  Tensor t = Tensor::FromVector(std::vector<float>{-5, 0.5f, 5});
  EXPECT_EQ(Clamp(t, 0, 1).ToVector<float>(),
            (std::vector<float>{0, 0.5f, 1}));
  Tensor p = PowScalar(Tensor::FromVector(std::vector<float>{2, 3}), 2.0);
  EXPECT_EQ(p.ToVector<float>(), (std::vector<float>{4, 9}));
}

TEST(OpsTest, Reductions) {
  Tensor t = Tensor::FromVector(std::vector<float>{1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_FLOAT_EQ(Sum(t).item<float>(), 21.0f);
  EXPECT_FLOAT_EQ(Mean(t).item<float>(), 3.5f);
  EXPECT_EQ(Sum(t, 0, false).ToVector<float>(),
            (std::vector<float>{5, 7, 9}));
  EXPECT_EQ(Sum(t, 1, false).ToVector<float>(), (std::vector<float>{6, 15}));
  EXPECT_EQ(Sum(t, 1, true).shape(), (std::vector<int64_t>{2, 1}));
}

TEST(OpsTest, MinMaxWithIndices) {
  Tensor t = Tensor::FromVector(std::vector<float>{3, 1, 2, 9, 7, 8}, {2, 3});
  MinMaxResult mx = Max(t, 1, false);
  EXPECT_EQ(mx.values.ToVector<float>(), (std::vector<float>{3, 9}));
  EXPECT_EQ(mx.indices.ToVector<int64_t>(), (std::vector<int64_t>{0, 0}));
  MinMaxResult mn = Min(t, 1, false);
  EXPECT_EQ(mn.values.ToVector<float>(), (std::vector<float>{1, 7}));
  EXPECT_EQ(ArgMax(t, 1, false).ToVector<int64_t>(),
            (std::vector<int64_t>{0, 0}));
  EXPECT_FLOAT_EQ(MaxAll(t).item<float>(), 9.0f);
  EXPECT_FLOAT_EQ(MinAll(t).item<float>(), 1.0f);
}

TEST(OpsTest, CumSum) {
  Tensor t = Tensor::FromVector(std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(CumSum(t, 0).ToVector<float>(), (std::vector<float>{1, 3, 6, 10}));
}

TEST(OpsTest, WhereSelects) {
  Tensor cond = Gt(Tensor::FromVector(std::vector<float>{1, -1, 1}),
                   Tensor::Zeros({3}));
  Tensor a = Tensor::Full({3}, 10);
  Tensor b = Tensor::Full({3}, 20);
  EXPECT_EQ(Where(cond, a, b).ToVector<float>(),
            (std::vector<float>{10, 20, 10}));
}

TEST(OpsTest, IndexSelectAndGather) {
  Tensor t = Tensor::FromVector(std::vector<float>{10, 11, 12, 13, 14});
  Tensor idx = Tensor::FromVector(std::vector<int64_t>{4, 0, 2});
  EXPECT_EQ(IndexSelect(t, 0, idx).ToVector<float>(),
            (std::vector<float>{14, 10, 12}));

  Tensor m = Tensor::FromVector(std::vector<float>{1, 2, 3, 4}, {2, 2});
  Tensor rows = Tensor::FromVector(std::vector<int64_t>{1});
  Tensor sel = IndexSelect(m, 0, rows);
  EXPECT_EQ(sel.ToVector<float>(), (std::vector<float>{3, 4}));

  Tensor gidx = Tensor::FromVector(std::vector<int64_t>{1, 0, 1, 1}, {2, 2});
  Tensor g = Gather(m, 1, gidx);
  EXPECT_EQ(g.ToVector<float>(), (std::vector<float>{2, 1, 4, 4}));
}

TEST(OpsTest, MaskedSelectAndNonZero) {
  Tensor t = Tensor::Arange(6, DType::kFloat32);
  Tensor mask = Gt(t, Tensor::Full({1}, 2.5f));
  EXPECT_EQ(NonZero(mask).ToVector<int64_t>(),
            (std::vector<int64_t>{3, 4, 5}));
  EXPECT_EQ(MaskedSelectRows(t, mask).ToVector<float>(),
            (std::vector<float>{3, 4, 5}));
}

TEST(OpsTest, ScatterAddRows) {
  Tensor base = Tensor::Zeros({3, 2});
  Tensor idx = Tensor::FromVector(std::vector<int64_t>{2, 0, 2});
  Tensor src = Tensor::FromVector(std::vector<float>{1, 1, 2, 2, 3, 3},
                                  {3, 2});
  Tensor out = ScatterAddRows(base, idx, src);
  EXPECT_EQ(out.ToVector<float>(), (std::vector<float>{2, 2, 0, 0, 4, 4}));
}

TEST(OpsTest, OneHot) {
  Tensor idx = Tensor::FromVector(std::vector<int64_t>{2, 0});
  Tensor oh = OneHot(idx, 3);
  EXPECT_EQ(oh.ToVector<float>(), (std::vector<float>{0, 0, 1, 1, 0, 0}));
}

TEST(OpsTest, SortAndArgSortStable) {
  Tensor t = Tensor::FromVector(std::vector<float>{3, 1, 2, 1});
  EXPECT_EQ(ArgSort(t).ToVector<int64_t>(),
            (std::vector<int64_t>{1, 3, 2, 0}));
  SortResult s = Sort(t, /*descending=*/true);
  EXPECT_EQ(s.values.ToVector<float>(), (std::vector<float>{3, 2, 1, 1}));
}

TEST(OpsTest, UniqueWithInverseAndCounts) {
  Tensor t = Tensor::FromVector(std::vector<int64_t>{5, 3, 5, 3, 3, 9});
  UniqueResult u = Unique(t);
  EXPECT_EQ(u.values.ToVector<int64_t>(), (std::vector<int64_t>{3, 5, 9}));
  EXPECT_EQ(u.counts.ToVector<int64_t>(), (std::vector<int64_t>{3, 2, 1}));
  EXPECT_EQ(u.inverse.ToVector<int64_t>(),
            (std::vector<int64_t>{1, 0, 1, 0, 0, 2}));
}

TEST(OpsTest, ArgSortPutsNanLastInBothDirections) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor t = Tensor::FromVector(std::vector<float>{2, nan, 1, nan, 3});
  // Ascending: reals in order, NaNs last (stable: index 1 before 3).
  EXPECT_EQ(ArgSort(t).ToVector<int64_t>(),
            (std::vector<int64_t>{2, 0, 4, 1, 3}));
  // Descending: reals in reverse order, NaNs still last (SQL NULLS LAST).
  EXPECT_EQ(ArgSort(t, /*descending=*/true).ToVector<int64_t>(),
            (std::vector<int64_t>{4, 0, 2, 1, 3}));
  const std::vector<float> asc = Sort(t).values.ToVector<float>();
  EXPECT_EQ(asc[0], 1.0f);
  EXPECT_EQ(asc[2], 3.0f);
  EXPECT_TRUE(std::isnan(asc[3]));
  EXPECT_TRUE(std::isnan(asc[4]));
}

TEST(OpsTest, ArgSortAllNanDoesNotCrash) {
  // All-NaN input exercised the old comparator's undefined behavior.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor t = Tensor::FromVector(std::vector<float>(64, nan));
  // Stable + all-equivalent: identity permutation.
  std::vector<int64_t> expect(64);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(ArgSort(t).ToVector<int64_t>(), expect);
}

TEST(OpsTest, UniqueCollapsesNansIntoOneGroup) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor t = Tensor::FromVector(std::vector<float>{1, nan, 2, nan, 1});
  UniqueResult u = Unique(t);
  const std::vector<float> values = u.values.ToVector<float>();
  ASSERT_EQ(values.size(), 3u);  // {1, 2, NaN}, not one group per NaN
  EXPECT_EQ(values[0], 1.0f);
  EXPECT_EQ(values[1], 2.0f);
  EXPECT_TRUE(std::isnan(values[2]));
  EXPECT_EQ(u.counts.ToVector<int64_t>(), (std::vector<int64_t>{2, 1, 2}));
  EXPECT_EQ(u.inverse.ToVector<int64_t>(),
            (std::vector<int64_t>{0, 2, 1, 2, 0}));
}

TEST(OpsTest, CatAndStack) {
  Tensor a = Tensor::FromVector(std::vector<float>{1, 2}, {1, 2});
  Tensor b = Tensor::FromVector(std::vector<float>{3, 4}, {1, 2});
  Tensor c = Cat({a, b}, 0);
  EXPECT_EQ(c.shape(), (std::vector<int64_t>{2, 2}));
  EXPECT_EQ(c.ToVector<float>(), (std::vector<float>{1, 2, 3, 4}));
  Tensor d = Cat({a, b}, 1);
  EXPECT_EQ(d.shape(), (std::vector<int64_t>{1, 4}));
  Tensor s = Stack({a.Squeeze(0), b.Squeeze(0)}, 0);
  EXPECT_EQ(s.shape(), (std::vector<int64_t>{2, 2}));
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Tensor t = RandNormal({5, 7}, 0, 3, rng);
  Tensor sm = Softmax(t, 1);
  Tensor rowsum = Sum(sm, 1, false);
  EXPECT_TRUE(AllClose(rowsum, Tensor::Ones({5}), 1e-4, 1e-5));
  // LogSoftmax == log(Softmax).
  EXPECT_TRUE(AllClose(LogSoftmax(t, 1), Log(sm), 1e-4, 1e-4));
}

TEST(OpsTest, L2NormalizeUnitNorm) {
  Rng rng(4);
  Tensor t = RandNormal({3, 8}, 0, 2, rng);
  Tensor n = L2Normalize(t, 1);
  Tensor norms = Sqrt(Sum(Mul(n, n), 1, false));
  EXPECT_TRUE(AllClose(norms, Tensor::Ones({3}), 1e-4, 1e-5));
}

TEST(OpsTest, MatMulShapesChecked) {
  Tensor a = Tensor::Ones({2, 3});
  Tensor b = Tensor::Ones({3, 4});
  EXPECT_EQ(MatMul(a, b).shape(), (std::vector<int64_t>{2, 4}));
  EXPECT_FLOAT_EQ(MatMul(a, b).At({0, 0}), 3.0f);
}

TEST(OpsTest, BMMBatches) {
  Tensor a = Tensor::Ones({2, 1, 3});
  Tensor b = Tensor::Full({2, 3, 1}, 2.0);
  Tensor c = BMM(a, b);
  EXPECT_EQ(c.shape(), (std::vector<int64_t>{2, 1, 1}));
  EXPECT_FLOAT_EQ(c.At({0, 0, 0}), 6.0f);
}

TEST(OpsTest, CountNonzero) {
  Tensor t = Tensor::FromVector(std::vector<float>{0, 1, 0, 2});
  EXPECT_EQ(CountNonzero(t).item<int64_t>(), 2);
}

// Parallel kernels must be bit-for-bit identical to the serial ones: matmul
// rows own their accumulators, and fp32 sums run through a fixed-block
// deterministic tree whose shape is independent of the thread count.
class ParallelDeterminismTest : public ::testing::Test {
 protected:
  template <typename Fn>
  void ExpectBitIdentical(Fn compute) {
    std::vector<float> expected;
    {
      ScopedNumThreads serial(1);
      const Tensor result = compute();
      expected = result.ToVector<float>();
    }
    for (int threads : {2, 4, 7}) {
      ScopedNumThreads parallel(threads);
      const Tensor result = compute();
      const std::vector<float> got = result.ToVector<float>();
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        // EXPECT_EQ, not NEAR: bit-for-bit, not approximately.
        EXPECT_EQ(got[i], expected[i])
            << "threads=" << threads << " index=" << i;
      }
    }
  }
};

TEST_F(ParallelDeterminismTest, MatMulBitIdenticalAcrossThreadCounts) {
  Rng rng(101);
  const Tensor a = RandNormal({37, 53}, 0, 1, rng);
  const Tensor b = RandNormal({53, 29}, 0, 1, rng);
  ExpectBitIdentical([&] { return MatMul(a, b); });
  ExpectBitIdentical(
      [&] { return MatMul(a.To(Device::kAccel), b.To(Device::kAccel))
                .To(Device::kCpu); });
}

TEST_F(ParallelDeterminismTest, SumBitIdenticalAcrossThreadCounts) {
  Rng rng(102);
  // Large enough to span many fixed 4096-element blocks.
  const Tensor t = RandNormal({100001}, 0, 1, rng);
  ExpectBitIdentical([&] { return Sum(t); });
  const Tensor m = RandNormal({61, 513}, 0, 1, rng);
  ExpectBitIdentical([&] { return Sum(m, 1, false); });
  ExpectBitIdentical([&] { return Sum(m, 0, false); });
}

TEST_F(ParallelDeterminismTest, ElementwiseAndReduceOpsBitIdentical) {
  Rng rng(103);
  const Tensor a = RandNormal({33, 257}, 0, 1, rng);
  const Tensor b = RandNormal({33, 1}, 0, 1, rng);  // broadcast path
  ExpectBitIdentical([&] { return Mul(a, b); });
  ExpectBitIdentical([&] { return Exp(a); });
  ExpectBitIdentical([&] { return CumSum(a, 1); });
  ExpectBitIdentical([&] { return Max(a, 1, false).values; });
}

}  // namespace
}  // namespace tdp
