#include <gtest/gtest.h>

#include "src/nn/layers.h"
#include "src/nn/loss.h"
#include "src/nn/optim.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace nn {
namespace {

TEST(NnTest, LinearShapesAndParams) {
  Rng rng(1);
  Linear linear(4, 3, rng);
  Tensor y = linear.Forward(Tensor::Ones({2, 4}, DType::kFloat32,
                                         Device::kAccel));
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(linear.Parameters().size(), 2u);
  EXPECT_EQ(linear.NumParameters(), 4 * 3 + 3);
}

TEST(NnTest, SequentialComposesAndCollectsParams) {
  Rng rng(2);
  auto model = std::make_shared<Sequential>(
      std::vector<std::shared_ptr<Module>>{
          std::make_shared<Linear>(4, 8, rng),
          std::make_shared<ReluLayer>(),
          std::make_shared<Linear>(8, 2, rng)});
  Tensor y = model->Forward(
      Tensor::Ones({3, 4}, DType::kFloat32, Device::kAccel));
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(model->Parameters().size(), 4u);
  const auto named = model->NamedParameters();
  EXPECT_EQ(named[0].first, "0.weight");
}

TEST(NnTest, Conv2dLayerOutputShape) {
  Rng rng(3);
  Conv2dLayer conv(1, 4, 3, 1, 1, rng);
  Tensor y = conv.Forward(
      Tensor::Ones({2, 1, 8, 8}, DType::kFloat32, Device::kAccel));
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 4, 8, 8}));
}

TEST(NnTest, MSELossValue) {
  Tensor pred = Tensor::FromVector(std::vector<float>{1, 2});
  Tensor target = Tensor::FromVector(std::vector<float>{3, 2});
  EXPECT_FLOAT_EQ(MSELoss(pred, target).item<float>(), 2.0f);
}

TEST(NnTest, CrossEntropyIsLowForCorrectConfidentLogits) {
  Tensor logits =
      Tensor::FromVector(std::vector<float>{10, 0, 0, 0, 10, 0}, {2, 3});
  Tensor targets = Tensor::FromVector(std::vector<int64_t>{0, 1});
  EXPECT_LT(SoftmaxCrossEntropyLoss(logits, targets).item<float>(), 1e-3f);
  Tensor wrong = Tensor::FromVector(std::vector<int64_t>{2, 2});
  EXPECT_GT(SoftmaxCrossEntropyLoss(logits, wrong).item<float>(), 5.0f);
}

TEST(NnTest, SgdReducesQuadraticLoss) {
  Tensor w = Tensor::FromVector(std::vector<float>{5, -3}).set_requires_grad(true);
  SGD sgd({w}, /*lr=*/0.1);
  for (int i = 0; i < 100; ++i) {
    sgd.ZeroGrad();
    Sum(Mul(w, w)).Backward();
    sgd.Step();
  }
  EXPECT_LT(std::abs(w.At({0})), 1e-3);
  EXPECT_LT(std::abs(w.At({1})), 1e-3);
}

TEST(NnTest, AdamFitsLinearRegression) {
  Rng rng(4);
  // y = 2x - 1 with noise; fit a 1-d linear model.
  const int64_t n = 64;
  Tensor x = RandUniform({n, 1}, -1, 1, rng, DType::kFloat32, Device::kAccel);
  Tensor y = AddScalar(MulScalar(x, 2.0), -1.0);
  Linear model(1, 1, rng, true, Device::kAccel);
  Adam adam(model.Parameters(), 0.05);
  float first_loss = 0, last_loss = 0;
  for (int step = 0; step < 200; ++step) {
    adam.ZeroGrad();
    Tensor loss = MSELoss(model.Forward(x), y);
    if (step == 0) first_loss = loss.item<float>();
    last_loss = loss.item<float>();
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(last_loss, first_loss * 0.01f);
  EXPECT_NEAR(model.weight().At({0, 0}), 2.0, 0.1);
  EXPECT_NEAR(model.bias().At({0}), -1.0, 0.1);
}

TEST(NnTest, SgdMomentumConverges) {
  Tensor w = Tensor::FromVector(std::vector<float>{4}).set_requires_grad(true);
  SGD sgd({w}, 0.05, 0.9);
  for (int i = 0; i < 120; ++i) {
    sgd.ZeroGrad();
    Sum(Mul(w, w)).Backward();
    sgd.Step();
  }
  EXPECT_LT(std::abs(w.At({0})), 1e-2);
}

TEST(NnTest, ZeroGradClearsAllParams) {
  Rng rng(5);
  Linear model(2, 2, rng);
  Sum(model.Forward(Tensor::Ones({1, 2}, DType::kFloat32, Device::kAccel)))
      .Backward();
  EXPECT_TRUE(model.Parameters()[0].grad().defined());
  model.ZeroGrad();
  EXPECT_FALSE(model.Parameters()[0].grad().defined());
}

// A tiny CNN learns to classify a linearly-inseparable toy image task.
TEST(NnTest, CnnLearnsToyClassification) {
  Rng rng(6);
  const int64_t n = 40;
  Tensor images = Tensor::Zeros({n, 1, 6, 6}, DType::kFloat32,
                                Device::kAccel);
  Tensor labels = Tensor::Empty({n}, DType::kInt64);
  float* ip = images.data<float>();
  int64_t* lp = labels.data<int64_t>();
  for (int64_t i = 0; i < n; ++i) {
    const bool vertical = rng.Bernoulli(0.5);
    lp[i] = vertical ? 1 : 0;
    // vertical or horizontal bar + noise
    for (int64_t k = 0; k < 6; ++k) {
      if (vertical) {
        ip[i * 36 + k * 6 + 2] = 1.0f;
      } else {
        ip[i * 36 + 2 * 6 + k] = 1.0f;
      }
    }
    for (int64_t p = 0; p < 36; ++p) {
      ip[i * 36 + p] += static_cast<float>(rng.Normal(0, 0.05));
    }
  }
  std::vector<std::shared_ptr<Module>> layers;
  layers.push_back(std::make_shared<Conv2dLayer>(1, 4, 3, 1, 1, rng));
  layers.push_back(std::make_shared<ReluLayer>());
  layers.push_back(std::make_shared<MaxPool2dLayer>(2, 2));
  layers.push_back(std::make_shared<FlattenLayer>());
  layers.push_back(std::make_shared<Linear>(4 * 9, 2, rng));
  Sequential model(std::move(layers));
  Adam adam(model.Parameters(), 0.01);
  for (int step = 0; step < 60; ++step) {
    adam.ZeroGrad();
    SoftmaxCrossEntropyLoss(model.Forward(images), labels).Backward();
    adam.Step();
  }
  const Tensor pred = ArgMax(model.Forward(images), 1, false);
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (pred.At({i}) == labels.At({i})) ++correct;
  }
  EXPECT_GE(correct, n * 9 / 10);
}

}  // namespace
}  // namespace nn
}  // namespace tdp
