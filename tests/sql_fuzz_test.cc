// Token-soup and mutation fuzzing of the SQL frontend, focused on the DML
// surface: every generated statement — however malformed — must come back
// as a Status (parse/bind/type/execution error or, occasionally, success),
// never a crash, hang, or sanitizer report. The suites are seeded and
// deterministic, and ride in the ASan/UBSan CI job where out-of-bounds
// token peeks or UB in literal parsing would trip loudly.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/runtime/session.h"
#include "src/sql/parser.h"

namespace tdp {
namespace {

// A vocabulary skewed toward DML so random soup reaches deep into the new
// grammar paths: statement keywords, type names, punctuation, literals,
// and identifiers that collide with live tables/columns.
const char* const kVocabulary[] = {
    "CREATE", "TABLE",  "INSERT", "INTO",   "VALUES", "UPDATE", "SET",
    "DELETE", "FROM",   "WHERE",  "SELECT", "ORDER",  "BY",     "GROUP",
    "LIMIT",  "AND",    "OR",     "NOT",    "INT",    "BIGINT", "TEXT",
    "DOUBLE", "TENSOR", "BOOL",   "(",      ")",      ",",      "=",
    "<",      ">",      "+",      "-",      "*",      "/",      "%",
    "?",      "'x'",    "''",     "1",      "0",      "-7",     "3.5",
    "1e9",    "t",      "u",      "a",      "b",      "tag",    "zz9",
    ";",      ".",      "--",     "\"q\"",  "'unterminated",
};

std::string RandomSoup(Rng& rng, int max_tokens) {
  const int n = static_cast<int>(rng.UniformInt(1, max_tokens));
  std::string sql;
  for (int i = 0; i < n; ++i) {
    if (i > 0) sql += ' ';
    sql += kVocabulary[rng.UniformInt(
        0, static_cast<int64_t>(std::size(kVocabulary)) - 1)];
  }
  return sql;
}

// Statements that parse and bind today; mutation seeds.
const char* const kValidDml[] = {
    "CREATE TABLE t (a INT, b TEXT)",
    "CREATE TABLE v (x DOUBLE, e TENSOR(4))",
    "INSERT INTO t VALUES (1, 'x'), (2, 'y')",
    "INSERT INTO t (b, a) VALUES ('z', 3)",
    "INSERT INTO t SELECT a + 1, b FROM t WHERE a < 10",
    "UPDATE t SET a = a + 1 WHERE b = 'x'",
    "UPDATE t SET b = 'w', a = 0",
    "DELETE FROM t WHERE a % 2 = 0",
    "DELETE FROM t",
    "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a LIMIT 3",
};

std::string Mutate(const std::string& sql, Rng& rng) {
  std::string out = sql;
  const int edits = static_cast<int>(rng.UniformInt(1, 3));
  for (int e = 0; e < edits && !out.empty(); ++e) {
    const size_t pos =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(
                                                  out.size()) - 1));
    switch (rng.UniformInt(0, 3)) {
      case 0:  // delete a span
        out.erase(pos, static_cast<size_t>(rng.UniformInt(1, 4)));
        break;
      case 1:  // duplicate a span
        out.insert(pos, out.substr(pos, static_cast<size_t>(
                                            rng.UniformInt(1, 5))));
        break;
      case 2: {  // overwrite with a random printable/byte
        const char c = static_cast<char>(rng.UniformInt(1, 255));
        out[pos] = c;
        break;
      }
      default:  // splice in a vocabulary token
        out.insert(pos, kVocabulary[rng.UniformInt(
                            0, static_cast<int64_t>(
                                   std::size(kVocabulary)) -
                                   1)]);
        break;
    }
  }
  return out;
}

// A session with live tables so statements that survive parsing exercise
// the binder and (when they bind) the executors. `?` statements fail the
// parameter-count check — also a Status, also fine.
void SeedSession(Session& session) {
  ASSERT_TRUE(session.Sql("CREATE TABLE t (a INT, b TEXT)").ok());
  ASSERT_TRUE(session.Sql("INSERT INTO t VALUES (1, 'x'), (2, 'y')").ok());
  ASSERT_TRUE(session.Sql("CREATE TABLE u (c DOUBLE)").ok());
  ASSERT_TRUE(session.Sql("INSERT INTO u VALUES (0.5)").ok());
}

TEST(SqlFuzzTest, TokenSoupNeverCrashesTheFrontend) {
  Session session;
  SeedSession(session);
  Rng rng(0xF022);
  for (int i = 0; i < 4000; ++i) {
    const std::string sql = RandomSoup(rng, 24);
    // Result intentionally ignored: success and failure are both legal;
    // crashing, throwing, or corrupting the session is not.
    auto r = session.Sql(sql);
    (void)r;
  }
  // The session survived and still serves.
  auto r = session.Sql("SELECT COUNT(*) FROM u");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(SqlFuzzTest, MutatedDmlNeverCrashesTheFrontend) {
  Session session;
  SeedSession(session);
  Rng rng(0xF023);
  for (int round = 0; round < 400; ++round) {
    for (const char* base : kValidDml) {
      auto r = session.Sql(Mutate(base, rng));
      (void)r;
    }
  }
  auto r = session.Sql("SELECT a FROM t ORDER BY a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(SqlFuzzTest, RawBytesNeverCrashTheParser) {
  Rng rng(0xF024);
  for (int i = 0; i < 3000; ++i) {
    const int n = static_cast<int>(rng.UniformInt(0, 64));
    std::string sql;
    for (int b = 0; b < n; ++b) {
      sql += static_cast<char>(rng.UniformInt(1, 255));
    }
    auto r = sql::ParseStatement(sql);
    (void)r;
  }
}

TEST(SqlFuzzTest, TruncationsOfValidDmlFailCleanly) {
  // Every prefix of every valid statement must lex+parse to a Status; the
  // common failure mode here is an out-of-bounds peek at kEnd.
  Session session;
  SeedSession(session);
  for (const char* base : kValidDml) {
    const std::string full(base);
    for (size_t len = 0; len < full.size(); ++len) {
      auto r = session.Sql(full.substr(0, len));
      (void)r;
    }
  }
  auto r = session.Sql("SELECT b FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

}  // namespace
}  // namespace tdp
