#include <gtest/gtest.h>

#include "src/autograd/node.h"
#include "src/data/adult.h"
#include "src/data/mnist_grid.h"
#include "src/models/tvfs.h"
#include "src/nn/layers.h"
#include "src/nn/loss.h"
#include "src/nn/optim.h"
#include "src/runtime/session.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

// The paper's MNISTGrid query (Listing 6): TRAINABLE compilation produces
// a differentiable plan whose COUNT(*) column carries gradients back into
// the TVF's CNNs.
class TrainableQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(42);
  }
  std::unique_ptr<Rng> rng_;
};

TEST_F(TrainableQueryTest, TrainableMnistGridQueryProducesSoftCounts) {
  Session session;
  auto tvf = models::RegisterParseMnistGridTvf(session.functions(), *rng_);
  ASSERT_TRUE(tvf.ok());

  data::MnistGridDataset ds = data::MakeMnistGridDataset(2, *rng_);
  ASSERT_TRUE(session
                  .RegisterTable("MNIST_Grid",
                                 TableBuilder("MNIST_Grid")
                                     .AddTensor("image", ds.grids)
                                     .Build()
                                     .value(),
                                 Device::kAccel)
                  .ok());

  QueryOptions options;
  options.trainable = true;
  auto query = session.Query(
      "SELECT Digit, Size, COUNT(*) FROM parse_mnist_grid(MNIST_Grid) GROUP "
      "BY Digit, Size",
      options);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_TRUE((*query)->trainable());
  EXPECT_FALSE((*query)->Parameters().empty());

  auto chunk = (*query)->RunChunk();
  ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
  // Soft group-by enumerates the full 10x2 domain.
  EXPECT_EQ(chunk->num_rows(), data::kNumCountBuckets);
  const Tensor counts = chunk->columns[2].data();
  // Expected counts sum to the number of tiles (2 grids x 9 tiles).
  EXPECT_NEAR(Sum(counts).item<float>(), 18.0f, 1e-2);
  // The count column is differentiable: it has a grad_fn.
  EXPECT_NE(counts.grad_fn(), nullptr);
}

TEST_F(TrainableQueryTest, GradientsReachTvfParameters) {
  Session session;
  auto tvf = models::RegisterParseMnistGridTvf(session.functions(), *rng_);
  ASSERT_TRUE(tvf.ok());
  data::MnistGridDataset ds = data::MakeMnistGridDataset(1, *rng_);
  ASSERT_TRUE(session
                  .RegisterTable("MNIST_Grid",
                                 TableBuilder("MNIST_Grid")
                                     .AddTensor("image", ds.grids)
                                     .Build()
                                     .value(),
                                 Device::kAccel)
                  .ok());
  QueryOptions options;
  options.trainable = true;
  auto query = session.Query(
      "SELECT Digit, Size, COUNT(*) FROM parse_mnist_grid(MNIST_Grid) GROUP "
      "BY Digit, Size",
      options);
  ASSERT_TRUE(query.ok());

  auto chunk = (*query)->RunChunk();
  ASSERT_TRUE(chunk.ok());
  Tensor predicted = chunk->columns[2].data();
  Tensor target = Slice(ds.counts, 0, 0, 1).Squeeze(0).To(Device::kAccel);
  nn::MSELoss(predicted, target).Backward();

  int with_grad = 0;
  for (const Tensor& p : (*query)->Parameters()) {
    if (p.grad().defined()) ++with_grad;
  }
  EXPECT_EQ(with_grad, static_cast<int>((*query)->Parameters().size()))
      << "every CNN parameter should receive a gradient through the "
         "soft group-by";
}

// The paper's Listing 5 training loop, miniaturized: a few gradient steps
// must reduce the count-prediction loss.
TEST_F(TrainableQueryTest, TrainingLoopReducesLoss) {
  Session session;
  auto tvf = models::RegisterParseMnistGridTvf(session.functions(), *rng_);
  ASSERT_TRUE(tvf.ok());
  data::MnistGridDataset ds = data::MakeMnistGridDataset(6, *rng_);

  QueryOptions options;
  options.trainable = true;
  // Register once so compilation can bind (re-registered every iteration).
  ASSERT_TRUE(session
                  .RegisterTable("MNIST_Grid",
                                 TableBuilder("MNIST_Grid")
                                     .AddTensor("image",
                                                Slice(ds.grids, 0, 0, 1)
                                                    .Contiguous())
                                     .Build()
                                     .value(),
                                 Device::kAccel)
                  .ok());
  auto query = session.Query(
      "SELECT Digit, Size, COUNT(*) FROM parse_mnist_grid(MNIST_Grid) GROUP "
      "BY Digit, Size",
      options);
  ASSERT_TRUE(query.ok());

  nn::Adam optimizer((*query)->Parameters(), 0.01);
  double first_window = 0, last_window = 0;
  const int iterations = 30;
  for (int it = 0; it < iterations; ++it) {
    const int64_t i = it % 6;
    ASSERT_TRUE(session
                    .RegisterTable("MNIST_Grid",
                                   TableBuilder("MNIST_Grid")
                                       .AddTensor("image",
                                                  Slice(ds.grids, 0, i, 1)
                                                      .Contiguous())
                                       .Build()
                                       .value(),
                                   Device::kAccel)
                    .ok());
    optimizer.ZeroGrad();
    auto chunk = (*query)->RunChunk();
    ASSERT_TRUE(chunk.ok());
    Tensor predicted = chunk->columns[2].data();
    Tensor target = Slice(ds.counts, 0, i, 1).Squeeze(0).To(Device::kAccel);
    Tensor loss = nn::MSELoss(predicted, target);
    if (it < 6) first_window += loss.item<double>();
    if (it >= iterations - 6) last_window += loss.item<double>();
    loss.Backward();
    optimizer.Step();
  }
  EXPECT_LT(last_window, first_window)
      << "training should reduce the grouped-count MSE";
}

TEST_F(TrainableQueryTest, InferenceModeSwapsToExactOperators) {
  Session session;
  auto tvf = models::RegisterParseMnistGridTvf(session.functions(), *rng_);
  ASSERT_TRUE(tvf.ok());
  data::MnistGridDataset ds = data::MakeMnistGridDataset(1, *rng_);
  ASSERT_TRUE(session
                  .RegisterTable("MNIST_Grid",
                                 TableBuilder("MNIST_Grid")
                                     .AddTensor("image", ds.grids)
                                     .Build()
                                     .value(),
                                 Device::kAccel)
                  .ok());
  QueryOptions options;
  options.trainable = true;
  auto query = session.Query(
      "SELECT Digit, Size, COUNT(*) FROM parse_mnist_grid(MNIST_Grid) GROUP "
      "BY Digit, Size",
      options);
  ASSERT_TRUE(query.ok());

  // Training mode: soft counts over the full domain (20 rows, fractional).
  auto soft = (*query)->RunChunk();
  ASSERT_TRUE(soft.ok());
  EXPECT_EQ(soft->num_rows(), 20);

  // Inference mode (per-run override, the plan itself stays immutable):
  // exact operators — integer counts, observed groups only.
  exec::RunOptions inference;
  inference.training_mode = false;
  auto exact = (*query)->RunChunk(inference);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_LE(exact->num_rows(), 20);
  const Tensor counts = exact->columns[2].data();
  EXPECT_EQ(counts.dtype(), DType::kInt64);
  double total = 0;
  for (int64_t r = 0; r < counts.numel(); ++r) total += counts.At({r});
  EXPECT_EQ(total, 9.0);  // 9 tiles, integer counts
}

// LLP (paper §5.3): train the linear classifier from bag counts only.
TEST_F(TrainableQueryTest, LlpQueryLearnsFromCounts) {
  Session session;
  auto tvf = models::RegisterClassifyIncomesTvf(session.functions(),
                                                data::kAdultNumFeatures,
                                                *rng_);
  ASSERT_TRUE(tvf.ok());

  data::AdultDataset train = data::MakeAdultDataset(512, *rng_);
  data::LlpBags bags = data::MakeBags(train, /*bag_size=*/32,
                                      /*laplace_scale=*/0.0, *rng_);

  QueryOptions options;
  options.trainable = true;
  ASSERT_TRUE(session
                  .RegisterTable("Adult_Income_Bag",
                                 TableBuilder("Adult_Income_Bag")
                                     .AddTensor("features",
                                                bags.bag_features[0])
                                     .Build()
                                     .value(),
                                 Device::kAccel)
                  .ok());
  auto query = session.Query(
      "SELECT Income, COUNT(*) FROM classify_incomes(Adult_Income_Bag) "
      "GROUP BY Income",
      options);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  nn::Adam optimizer((*query)->Parameters(), 0.05);
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (size_t b = 0; b < bags.bag_features.size(); ++b) {
      ASSERT_TRUE(session
                      .RegisterTable("Adult_Income_Bag",
                                     TableBuilder("Adult_Income_Bag")
                                         .AddTensor("features",
                                                    bags.bag_features[b])
                                         .Build()
                                         .value(),
                                     Device::kAccel)
                      .ok());
      optimizer.ZeroGrad();
      auto chunk = (*query)->RunChunk();
      ASSERT_TRUE(chunk.ok());
      Tensor predicted = chunk->columns[1].data();
      Tensor target =
          Slice(bags.counts, 0, static_cast<int64_t>(b), 1).Squeeze(0);
      nn::MSELoss(predicted, target.To(Device::kAccel)).Backward();
      optimizer.Step();
    }
  }

  // Instance-level accuracy of the bag-trained classifier must beat chance
  // comfortably (paper: close to fully-supervised for small bags).
  data::AdultDataset test = data::MakeAdultDataset(512, *rng_);
  autograd::NoGradGuard no_grad;
  auto* linear = static_cast<nn::Linear*>(tvf->model.get());
  const Tensor logits = linear->Forward(test.features.To(Device::kAccel));
  const Tensor pred = ArgMax(logits, 1, false);
  int64_t correct = 0;
  for (int64_t i = 0; i < 512; ++i) {
    if (pred.At({i}) == test.labels.At({i})) ++correct;
  }
  EXPECT_GT(correct, 350) << "LLP-trained classifier accuracy too low: "
                          << correct << "/512";
}

}  // namespace
}  // namespace tdp
