#include "src/udf/registry.h"

#include <gtest/gtest.h>

#include "src/runtime/session.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

udf::ScalarFunction MakeDoubler() {
  udf::ScalarFunction fn;
  fn.name = "double_it";
  fn.return_type = udf::DeclaredType::kFloat;
  fn.fn = [](const std::vector<udf::Argument>& args, int64_t num_rows,
             Device device) -> StatusOr<Column> {
    (void)num_rows;
    (void)device;
    if (args.size() != 1 || args[0].is_scalar) {
      return Status::InvalidArgument("double_it(column)");
    }
    return Column::Plain(MulScalar(args[0].column.DecodeValues(), 2.0));
  };
  return fn;
}

TEST(UdfRegistryTest, RegisterAndLookup) {
  udf::FunctionRegistry registry;
  ASSERT_TRUE(registry.RegisterScalar(MakeDoubler()).ok());
  EXPECT_NE(registry.FindScalar("double_it"), nullptr);
  EXPECT_NE(registry.FindScalar("DOUBLE_IT"), nullptr);
  EXPECT_EQ(registry.FindScalar("missing"), nullptr);
  EXPECT_EQ(registry.FindTable("double_it"), nullptr);
  // Duplicate names rejected.
  EXPECT_EQ(registry.RegisterScalar(MakeDoubler()).code(),
            StatusCode::kAlreadyExists);
}

TEST(UdfRegistryTest, TvfRequiresSchema) {
  udf::FunctionRegistry registry;
  udf::TableFunction fn;
  fn.name = "bad";
  fn.fn = [](const exec::Chunk&, const std::vector<exec::ScalarValue>&,
             Device) -> StatusOr<exec::Chunk> {
    return exec::Chunk{};
  };
  EXPECT_FALSE(registry.RegisterTable(std::move(fn)).ok());
}

TEST(UdfInQueryTest, ScalarUdfInProjectionAndFilter) {
  Session session;
  ASSERT_TRUE(session.functions().RegisterScalar(MakeDoubler()).ok());
  auto t = TableBuilder("t").AddFloat32("x", {1, 2, 3}).Build();
  ASSERT_TRUE(session.RegisterTable("t", t.value()).ok());

  auto r = session.Sql("SELECT double_it(x) AS dx FROM t WHERE "
                       "double_it(x) > 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 2);
  EXPECT_FLOAT_EQ(static_cast<float>((*r)->column(0).data().At({0})), 4.0f);
}

TEST(UdfInQueryTest, UdfOverAggregateResult) {
  Session session;
  ASSERT_TRUE(session.functions().RegisterScalar(MakeDoubler()).ok());
  auto t = TableBuilder("t")
               .AddInt64("g", {1, 1, 2})
               .AddFloat32("x", {1, 2, 3})
               .Build();
  ASSERT_TRUE(session.RegisterTable("t", t.value()).ok());
  auto r = session.Sql(
      "SELECT g, double_it(SUM(x)) FROM t GROUP BY g ORDER BY g");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FLOAT_EQ(static_cast<float>((*r)->column(1).data().At({0})), 6.0f);
  EXPECT_FLOAT_EQ(static_cast<float>((*r)->column(1).data().At({1})), 6.0f);
}

TEST(UdfInQueryTest, UnknownFunctionIsBindError) {
  Session session;
  auto t = TableBuilder("t").AddFloat32("x", {1}).Build();
  ASSERT_TRUE(session.RegisterTable("t", t.value()).ok());
  auto r = session.Sql("SELECT nope(x) FROM t");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST(UdfInQueryTest, UdfRowCountMismatchIsExecutionError) {
  Session session;
  udf::ScalarFunction bad;
  bad.name = "bad_rows";
  bad.fn = [](const std::vector<udf::Argument>&, int64_t,
              Device) -> StatusOr<Column> {
    return Column::Plain(Tensor::Ones({1}));
  };
  ASSERT_TRUE(session.functions().RegisterScalar(std::move(bad)).ok());
  auto t = TableBuilder("t").AddFloat32("x", {1, 2, 3}).Build();
  ASSERT_TRUE(session.RegisterTable("t", t.value()).ok());
  auto r = session.Sql("SELECT bad_rows(x) FROM t");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
}

}  // namespace
}  // namespace tdp
