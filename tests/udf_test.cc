#include "src/udf/registry.h"

#include <gtest/gtest.h>

#include "src/runtime/session.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

udf::ScalarFunction MakeDoubler() {
  udf::ScalarFunction fn;
  fn.name = "double_it";
  fn.return_type = udf::DeclaredType::kFloat;
  fn.fn = [](const std::vector<udf::Argument>& args, int64_t num_rows,
             Device device) -> StatusOr<Column> {
    (void)num_rows;
    (void)device;
    if (args.size() != 1 || args[0].is_scalar) {
      return Status::InvalidArgument("double_it(column)");
    }
    return Column::Plain(MulScalar(args[0].column.DecodeValues(), 2.0));
  };
  return fn;
}

TEST(UdfRegistryTest, RegisterAndLookup) {
  udf::FunctionRegistry registry;
  ASSERT_TRUE(registry.RegisterScalar(MakeDoubler()).ok());
  EXPECT_NE(registry.FindScalar("double_it"), nullptr);
  EXPECT_NE(registry.FindScalar("DOUBLE_IT"), nullptr);
  EXPECT_EQ(registry.FindScalar("missing"), nullptr);
  EXPECT_EQ(registry.FindTable("double_it"), nullptr);
  // Duplicate names rejected.
  EXPECT_EQ(registry.RegisterScalar(MakeDoubler()).code(),
            StatusCode::kAlreadyExists);
}

TEST(UdfRegistryTest, TvfRequiresSchema) {
  udf::FunctionRegistry registry;
  udf::TableFunction fn;
  fn.name = "bad";
  fn.fn = [](const exec::Chunk&, const std::vector<exec::ScalarValue>&,
             Device) -> StatusOr<exec::Chunk> {
    return exec::Chunk{};
  };
  EXPECT_FALSE(registry.RegisterTable(std::move(fn)).ok());
}

udf::TableFunction MakeThresholdTvf() {
  udf::TableFunction fn;
  fn.name = "threshold_rows";
  fn.output_schema = {{"kept", udf::DeclaredType::kFloat}};
  fn.min_args = 1;
  fn.max_args = 2;
  fn.param_names = {"cutoff", "scale"};
  fn.fn = [](const exec::Chunk& input, const std::vector<exec::ScalarValue>& args,
             Device) -> StatusOr<exec::Chunk> {
    const double cutoff = args[0].AsDouble();
    const double scale = args.size() > 1 ? args[1].AsDouble() : 1.0;
    const Tensor x = input.columns[0].DecodeValues();
    std::vector<float> kept;
    for (int64_t i = 0; i < x.size(0); ++i) {
      const float v = static_cast<float>(x.At({i}));
      if (v > cutoff) kept.push_back(static_cast<float>(v * scale));
    }
    exec::Chunk out;
    out.names = {"kept"};
    out.columns = {Column::Plain(Tensor::FromVector<float>(kept))};
    return out;
  };
  return fn;
}

// The TVF arity/type error matrix: every rejection at bind time must name
// the function being called and render its expected signature, so a
// misuse inside a larger query is self-diagnosing.
TEST(UdfRegistryTest, TvfArityErrorsNameFunctionAndSignature) {
  Session session;
  ASSERT_TRUE(session.functions().RegisterTable(MakeThresholdTvf()).ok());
  auto t = TableBuilder("t").AddFloat32("x", {1, 2, 3}).Build();
  ASSERT_TRUE(session.RegisterTable("t", t.value()).ok());

  // In-range arities bind and run.
  auto ok1 = session.Sql("SELECT kept FROM threshold_rows(t, 1.5)");
  ASSERT_TRUE(ok1.ok()) << ok1.status().ToString();
  EXPECT_EQ((*ok1)->num_rows(), 2);
  auto ok2 = session.Sql("SELECT kept FROM threshold_rows(t, 1.5, 10.0)");
  ASSERT_TRUE(ok2.ok()) << ok2.status().ToString();
  EXPECT_FLOAT_EQ(static_cast<float>((*ok2)->column(0).data().At({0})),
                  20.0f);

  // Too few arguments: kBindError naming the function, the expected
  // range, the actual count, and the rendered signature.
  auto too_few = session.Sql("SELECT kept FROM threshold_rows(t)");
  ASSERT_FALSE(too_few.ok());
  EXPECT_EQ(too_few.status().code(), StatusCode::kBindError);
  const std::string few_msg = too_few.status().ToString();
  EXPECT_NE(few_msg.find("threshold_rows"), std::string::npos) << few_msg;
  EXPECT_NE(few_msg.find("between 1 and 2"), std::string::npos) << few_msg;
  EXPECT_NE(few_msg.find("got 0"), std::string::npos) << few_msg;
  EXPECT_NE(few_msg.find("threshold_rows(<input rows>, cutoff, scale?)"),
            std::string::npos)
      << few_msg;
  EXPECT_NE(few_msg.find("(kept float)"), std::string::npos) << few_msg;

  // Too many arguments: same shape of message, different count.
  auto too_many =
      session.Sql("SELECT kept FROM threshold_rows(t, 1.0, 2.0, 3.0)");
  ASSERT_FALSE(too_many.ok());
  EXPECT_EQ(too_many.status().code(), StatusCode::kBindError);
  const std::string many_msg = too_many.status().ToString();
  EXPECT_NE(many_msg.find("threshold_rows"), std::string::npos) << many_msg;
  EXPECT_NE(many_msg.find("got 3"), std::string::npos) << many_msg;

  // Non-literal argument: rejected at bind time, naming the function.
  auto non_literal = session.Sql("SELECT kept FROM threshold_rows(t, x)");
  ASSERT_FALSE(non_literal.ok());
  EXPECT_EQ(non_literal.status().code(), StatusCode::kBindError);
  EXPECT_NE(non_literal.status().ToString().find("threshold_rows"),
            std::string::npos)
      << non_literal.status().ToString();
}

// Exact-arity and unbounded-arity TVFs render their own phrasings.
TEST(UdfRegistryTest, TvfArityPhrasingExactAndUnbounded) {
  udf::TableFunction exact = MakeThresholdTvf();
  exact.min_args = 1;
  exact.max_args = 1;
  Status s = udf::CheckTvfArity(exact, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("expects 1 argument(s), got 0"),
            std::string::npos)
      << s.ToString();

  udf::TableFunction unbounded = MakeThresholdTvf();
  unbounded.min_args = 2;
  unbounded.max_args = -1;
  s = udf::CheckTvfArity(unbounded, 1);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("at least 2"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.ToString().find(", ...)"), std::string::npos) << s.ToString();
  EXPECT_TRUE(udf::CheckTvfArity(unbounded, 5).ok());
}

TEST(UdfInQueryTest, ScalarUdfInProjectionAndFilter) {
  Session session;
  ASSERT_TRUE(session.functions().RegisterScalar(MakeDoubler()).ok());
  auto t = TableBuilder("t").AddFloat32("x", {1, 2, 3}).Build();
  ASSERT_TRUE(session.RegisterTable("t", t.value()).ok());

  auto r = session.Sql("SELECT double_it(x) AS dx FROM t WHERE "
                       "double_it(x) > 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 2);
  EXPECT_FLOAT_EQ(static_cast<float>((*r)->column(0).data().At({0})), 4.0f);
}

TEST(UdfInQueryTest, UdfOverAggregateResult) {
  Session session;
  ASSERT_TRUE(session.functions().RegisterScalar(MakeDoubler()).ok());
  auto t = TableBuilder("t")
               .AddInt64("g", {1, 1, 2})
               .AddFloat32("x", {1, 2, 3})
               .Build();
  ASSERT_TRUE(session.RegisterTable("t", t.value()).ok());
  auto r = session.Sql(
      "SELECT g, double_it(SUM(x)) FROM t GROUP BY g ORDER BY g");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FLOAT_EQ(static_cast<float>((*r)->column(1).data().At({0})), 6.0f);
  EXPECT_FLOAT_EQ(static_cast<float>((*r)->column(1).data().At({1})), 6.0f);
}

TEST(UdfInQueryTest, UnknownFunctionIsBindError) {
  Session session;
  auto t = TableBuilder("t").AddFloat32("x", {1}).Build();
  ASSERT_TRUE(session.RegisterTable("t", t.value()).ok());
  auto r = session.Sql("SELECT nope(x) FROM t");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST(UdfInQueryTest, UdfRowCountMismatchIsExecutionError) {
  Session session;
  udf::ScalarFunction bad;
  bad.name = "bad_rows";
  bad.fn = [](const std::vector<udf::Argument>&, int64_t,
              Device) -> StatusOr<Column> {
    return Column::Plain(Tensor::Ones({1}));
  };
  ASSERT_TRUE(session.functions().RegisterScalar(std::move(bad)).ok());
  auto t = TableBuilder("t").AddFloat32("x", {1, 2, 3}).Build();
  ASSERT_TRUE(session.RegisterTable("t", t.value()).ok());
  auto r = session.Sql("SELECT bad_rows(x) FROM t");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
}

}  // namespace
}  // namespace tdp
