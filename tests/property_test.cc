// Property-based (parameterized random-sweep) tests on core invariants:
//  - soft group-by on one-hot PE inputs == exact group-by counts
//  - soft counts always sum to the row count, for any distributions
//  - gradients of Sum through any op composition match finite differences
//  - encode/decode round trips (dictionary, PE)
//  - sort/unique algebraic invariants
//  - IVF full-probe search == brute-force stable ranking (any n, d, k)

#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/exec/soft_ops.h"
#include "src/index/ivf_index.h"
#include "src/storage/column.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

class PropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng MakeRng() const { return Rng(GetParam() * 7919 + 13); }
};

TEST_P(PropertyTest, SoftGroupByOnHardInputsEqualsExactContingency) {
  Rng rng = MakeRng();
  const int64_t rows = rng.UniformInt(1, 60);
  const int64_t ka = rng.UniformInt(2, 6);
  const int64_t kb = rng.UniformInt(2, 4);
  Tensor a = RandInt({rows}, 0, ka - 1, rng);
  Tensor b = RandInt({rows}, 0, kb - 1, rng);

  std::vector<double> da, db;
  for (int64_t i = 0; i < ka; ++i) da.push_back(i);
  for (int64_t i = 0; i < kb; ++i) db.push_back(i);
  auto soft = exec::SoftGroupByCount(
      {Column::Probability(OneHot(a, ka), da),
       Column::Probability(OneHot(b, kb), db)});
  ASSERT_TRUE(soft.ok());

  // Exact contingency table.
  std::map<std::pair<int64_t, int64_t>, int64_t> exact;
  for (int64_t i = 0; i < rows; ++i) {
    exact[{static_cast<int64_t>(a.At({i})),
           static_cast<int64_t>(b.At({i}))}]++;
  }
  for (int64_t ia = 0; ia < ka; ++ia) {
    for (int64_t ib = 0; ib < kb; ++ib) {
      const int64_t flat = ia * kb + ib;
      const double expected =
          exact.count({ia, ib}) ? static_cast<double>(exact[{ia, ib}]) : 0.0;
      EXPECT_NEAR(soft->counts.At({flat}), expected, 1e-3)
          << "bucket (" << ia << ", " << ib << ")";
    }
  }
}

TEST_P(PropertyTest, SoftCountsAlwaysSumToRowCount) {
  Rng rng = MakeRng();
  const int64_t rows = rng.UniformInt(1, 100);
  const int64_t k1 = rng.UniformInt(2, 8);
  const int64_t k2 = rng.UniformInt(2, 5);
  Tensor p1 = Softmax(RandNormal({rows, k1}, 0, 2, rng), 1);
  Tensor p2 = Softmax(RandNormal({rows, k2}, 0, 2, rng), 1);
  std::vector<double> d1(static_cast<size_t>(k1)), d2(static_cast<size_t>(k2));
  for (size_t i = 0; i < d1.size(); ++i) d1[i] = static_cast<double>(i);
  for (size_t i = 0; i < d2.size(); ++i) d2[i] = static_cast<double>(i);
  auto soft = exec::SoftGroupByCount(
      {Column::Probability(p1, d1), Column::Probability(p2, d2)});
  ASSERT_TRUE(soft.ok());
  EXPECT_NEAR(Sum(soft->counts).item<float>(), static_cast<float>(rows),
              1e-2 * rows + 1e-3);
}

TEST_P(PropertyTest, RandomOpChainGradcheck) {
  Rng rng = MakeRng();
  const int64_t n = rng.UniformInt(2, 6);
  const int64_t m = rng.UniformInt(2, 5);
  Tensor x = RandUniform({n, m}, 0.2, 1.5, rng).set_requires_grad(true);
  Tensor w = RandNormal({n, m}, 0, 1, rng);

  auto forward = [&]() {
    Tensor h = Mul(Sigmoid(x), w);
    h = Add(h, Sqrt(x));
    h = Softmax(h, 1);
    return Sum(Mul(h, w));
  };

  forward().Backward();
  ASSERT_TRUE(x.grad().defined());

  // Central finite differences, spot-checked at 4 random coordinates.
  const double eps = 1e-3;
  for (int check = 0; check < 4; ++check) {
    const int64_t i = rng.UniformInt(0, n - 1);
    const int64_t j = rng.UniformInt(0, m - 1);
    const double orig = x.At({i, j});
    x.SetAt({i, j}, orig + eps);
    const double up = forward().item<double>();
    x.SetAt({i, j}, orig - eps);
    const double down = forward().item<double>();
    x.SetAt({i, j}, orig);
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(x.grad().At({i, j}), numeric,
                5e-2 * std::max(1.0, std::abs(numeric)))
        << "at (" << i << ", " << j << ")";
  }
}

TEST_P(PropertyTest, DictionaryRoundTripAndOrder) {
  Rng rng = MakeRng();
  const std::vector<std::string> vocab = {"ant", "bee", "cat", "dog", "eel",
                                          "fox"};
  std::vector<std::string> values;
  const int64_t rows = rng.UniformInt(1, 50);
  for (int64_t i = 0; i < rows; ++i) {
    values.push_back(vocab[static_cast<size_t>(rng.UniformInt(0, 5))]);
  }
  Column c = Column::FromStrings(values);
  // Round trip.
  EXPECT_EQ(c.DecodeStrings(), values);
  // Order preservation: code comparisons == string comparisons.
  const std::vector<int64_t> codes = c.data().ToVector<int64_t>();
  for (int64_t i = 1; i < rows; ++i) {
    const size_t ui = static_cast<size_t>(i);
    EXPECT_EQ(codes[ui] < codes[ui - 1], values[ui] < values[ui - 1]);
    EXPECT_EQ(codes[ui] == codes[ui - 1], values[ui] == values[ui - 1]);
  }
}

TEST_P(PropertyTest, PeHardDecodeMatchesArgmax) {
  Rng rng = MakeRng();
  const int64_t rows = rng.UniformInt(1, 40);
  const int64_t k = rng.UniformInt(2, 7);
  Tensor probs = Softmax(RandNormal({rows, k}, 0, 3, rng), 1);
  std::vector<double> domain;
  for (int64_t i = 0; i < k; ++i) domain.push_back(100.0 + 5.0 * i);
  Column c = Column::Probability(probs, domain);
  Tensor hard = c.DecodeValues();
  for (int64_t r = 0; r < rows; ++r) {
    int64_t best = 0;
    for (int64_t j = 1; j < k; ++j) {
      if (probs.At({r, j}) > probs.At({r, best})) best = j;
    }
    EXPECT_EQ(hard.At({r}), domain[static_cast<size_t>(best)]);
  }
}

TEST_P(PropertyTest, SortUniqueInvariants) {
  Rng rng = MakeRng();
  const int64_t n = rng.UniformInt(1, 200);
  Tensor t = RandInt({n}, -20, 20, rng);

  SortResult sorted = Sort(t);
  // Sortedness + permutation property.
  for (int64_t i = 1; i < n; ++i) {
    EXPECT_LE(sorted.values.At({i - 1}), sorted.values.At({i}));
  }
  EXPECT_TRUE(TensorEqual(IndexSelect(t, 0, sorted.indices), sorted.values));

  UniqueResult uniq = Unique(t);
  // counts sum to n, values strictly ascending, inverse reconstructs t.
  int64_t total = 0;
  for (int64_t i = 0; i < uniq.counts.numel(); ++i) {
    total += static_cast<int64_t>(uniq.counts.At({i}));
    if (i > 0) EXPECT_LT(uniq.values.At({i - 1}), uniq.values.At({i}));
  }
  EXPECT_EQ(total, n);
  EXPECT_TRUE(TensorEqual(IndexSelect(uniq.values, 0, uniq.inverse), t));
}

TEST_P(PropertyTest, BroadcastAddCommutesAndMatchesManual) {
  Rng rng = MakeRng();
  const int64_t r = rng.UniformInt(1, 8);
  const int64_t c = rng.UniformInt(1, 8);
  Tensor a = RandNormal({r, 1}, 0, 1, rng);
  Tensor b = RandNormal({1, c}, 0, 1, rng);
  Tensor ab = Add(a, b);
  Tensor ba = Add(b, a);
  EXPECT_TRUE(AllClose(ab, ba));
  for (int64_t i = 0; i < r; ++i) {
    for (int64_t j = 0; j < c; ++j) {
      EXPECT_NEAR(ab.At({i, j}), a.At({i, 0}) + b.At({0, j}), 1e-6);
    }
  }
}

// Full-probe IVF search must equal the brute-force stable descending
// ranking — indices AND order — for arbitrary (n, d, k, lists) shapes,
// including duplicate rows (ties resolve toward lower row ids under both).
TEST_P(PropertyTest, IvfFullProbeEqualsBruteForceRanking) {
  Rng rng = MakeRng();
  const int64_t n = rng.UniformInt(5, 150);
  const int64_t dim = rng.UniformInt(2, 12);
  const int64_t lists = rng.UniformInt(1, 12);
  const int64_t k = rng.UniformInt(1, n + 3);
  Tensor data = L2Normalize(RandNormal({n, dim}, 0, 1, rng), 1);
  if (rng.Bernoulli(0.5) && n >= 4) {
    // Inject duplicate rows: ties must break identically on both sides.
    for (int64_t d = 0; d < dim; ++d) {
      data.SetAt({1, d}, data.At({0, d}));
      data.SetAt({3, d}, data.At({2, d}));
    }
  }
  index::IvfIndex::Options options;
  options.num_lists = lists;
  auto built = index::IvfIndex::Build(data, options, rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  const Tensor query =
      L2Normalize(RandNormal({1, dim}, 0, 1, rng), 1).Squeeze(0).Contiguous();
  auto result = built->Search(query, k, built->num_lists());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const Tensor scores =
      Squeeze(MatMul(data, Reshape(query, {dim, 1})), 1);
  const Tensor order = ArgSort(scores, /*descending=*/true);  // stable
  const int64_t expect_k = std::min(k, n);
  ASSERT_EQ(result->indices.numel(), expect_k);
  for (int64_t i = 0; i < expect_k; ++i) {
    EXPECT_EQ(result->indices.At({i}), order.At({i})) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace tdp
