// The serving front end's contracts: tenant isolation (private catalogs
// and plan caches over one shared runtime), bounded-queue admission with
// load shedding, per-tenant concurrency caps that keep one hot tenant
// from starving the rest, cancellation while queued, and footprint
// pre-rejection. The final test is a race storm — many client threads
// against a small engine with shed/admit/cancel all in flight — whose
// status accounting must balance exactly; it is the suite's reason to
// ride in the TSan CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/exec/memory_budget.h"
#include "src/exec/run_options.h"
#include "src/server/engine.h"
#include "src/storage/table.h"
#include "src/tensor/tensor.h"
#include "src/udf/registry.h"

namespace tdp {
namespace server {
namespace {

using std::chrono::milliseconds;

// A latch the blocking UDF parks on: lets a test hold execution slots
// open while it probes the admission queue from other threads.
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

// Registers `hold_gate(x)` for `tenant`: returns its input untouched after
// blocking until the gate opens. Keeping the body a UDF (not a sleep)
// pins the slot for exactly as long as the test wants.
void RegisterGateUdf(Engine& engine, const std::string& tenant, Gate* gate,
                     std::atomic<int>* entered) {
  udf::ScalarFunction fn;
  fn.name = "hold_gate";
  fn.return_type = udf::DeclaredType::kFloat;
  fn.fn = [gate, entered](const std::vector<udf::Argument>& args,
                          int64_t num_rows,
                          Device device) -> StatusOr<Column> {
    (void)num_rows;
    (void)device;
    if (entered != nullptr) entered->fetch_add(1);
    gate->Wait();
    return Column::Plain(args[0].column.DecodeValues());
  };
  ASSERT_TRUE(engine.tenant(tenant).functions().RegisterScalar(fn).ok());
}

void RegisterSmallTable(Engine& engine, const std::string& tenant,
                        std::vector<int64_t> values) {
  auto table = TableBuilder("t").AddInt64("x", std::move(values)).Build();
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_TRUE(engine.tenant(tenant).RegisterTable("t", table.value()).ok());
}

// Spins until `pred` holds (10 ms admission-poll granularity makes exact
// waits impossible) or the deadline passes.
template <typename Pred>
bool WaitFor(Pred pred, milliseconds deadline = milliseconds(5000)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > until) return false;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return true;
}

TEST(EngineTest, TenantsSeeOnlyTheirOwnCatalog) {
  Engine engine;
  RegisterSmallTable(engine, "alice", {1, 2, 3});
  RegisterSmallTable(engine, "bob", {10, 20, 30, 40});

  auto alice = engine.Sql({"alice", "SELECT COUNT(*) AS n FROM t", {}, {}});
  ASSERT_TRUE(alice.ok()) << alice.status().ToString();
  EXPECT_EQ(alice.value()->column(0).data().At({0}), 3.0);

  auto bob = engine.Sql({"bob", "SELECT COUNT(*) AS n FROM t", {}, {}});
  ASSERT_TRUE(bob.ok()) << bob.status().ToString();
  EXPECT_EQ(bob.value()->column(0).data().At({0}), 4.0);

  // A tenant that never registered the table cannot see either copy.
  auto carol = engine.Sql({"carol", "SELECT COUNT(*) FROM t", {}, {}});
  EXPECT_FALSE(carol.ok());

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(EngineTest, PlanCachesArePerTenant) {
  Engine engine;
  RegisterSmallTable(engine, "alice", {1, 2, 3});
  RegisterSmallTable(engine, "bob", {10, 20});

  const std::string sql = "SELECT x FROM t ORDER BY x";
  ASSERT_TRUE(engine.Sql({"alice", sql, {}, {}}).ok());
  ASSERT_TRUE(engine.Sql({"alice", sql, {}, {}}).ok());
  ASSERT_TRUE(engine.Sql({"bob", sql, {}, {}}).ok());

  // Alice's repeat hit her cache; Bob's first run was a miss in HIS cache
  // even though Alice had compiled the same text.
  EXPECT_EQ(engine.tenant("alice").plan_cache_stats().hits, 1u);
  EXPECT_EQ(engine.tenant("alice").plan_cache_stats().misses, 1u);
  EXPECT_EQ(engine.tenant("bob").plan_cache_stats().hits, 0u);
  EXPECT_EQ(engine.tenant("bob").plan_cache_stats().misses, 1u);
}

TEST(EngineTest, FullQueueShedsImmediately) {
  EngineOptions options;
  options.max_concurrent = 1;
  options.per_tenant_max_concurrent = 1;
  options.max_queue = 1;
  Engine engine(options);

  Gate gate;
  std::atomic<int> entered{0};
  RegisterGateUdf(engine, "alice", &gate, &entered);
  RegisterSmallTable(engine, "alice", {1, 2, 3});

  const Engine::Request blocking{
      "alice", "SELECT hold_gate(x) FROM t", {}, {}};

  // First request occupies the only slot (parked inside the UDF)...
  std::thread runner([&] {
    auto r = engine.Sql(blocking);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  ASSERT_TRUE(WaitFor([&] { return entered.load() == 1; }));

  // ...second fills the one queue seat...
  std::thread waiter([&] {
    auto r = engine.Sql(blocking);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  ASSERT_TRUE(WaitFor([&] { return engine.stats().queued == 1; }));

  // ...so a third is shed synchronously, queue untouched.
  auto shed = engine.Sql(blocking);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(engine.stats().shed, 1u);
  EXPECT_EQ(engine.stats().queued, 1);

  gate.Open();
  runner.join();
  waiter.join();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.peak_queue_depth, 1u);
  EXPECT_EQ(stats.running, 0);
  EXPECT_EQ(stats.queued, 0);
}

TEST(EngineTest, PerTenantCapDoesNotStarveOtherTenants) {
  EngineOptions options;
  options.max_concurrent = 2;
  options.per_tenant_max_concurrent = 1;
  Engine engine(options);

  Gate gate;
  std::atomic<int> entered{0};
  RegisterGateUdf(engine, "hot", &gate, &entered);
  RegisterSmallTable(engine, "hot", {1, 2, 3});
  RegisterSmallTable(engine, "quiet", {7});

  // The hot tenant fills its per-tenant cap with one parked query and
  // queues a second behind it (a global slot is still free).
  std::thread first([&] {
    EXPECT_TRUE(
        engine.Sql({"hot", "SELECT hold_gate(x) FROM t", {}, {}}).ok());
  });
  ASSERT_TRUE(WaitFor([&] { return entered.load() == 1; }));
  std::thread second([&] {
    EXPECT_TRUE(
        engine.Sql({"hot", "SELECT hold_gate(x) FROM t", {}, {}}).ok());
  });
  ASSERT_TRUE(WaitFor([&] { return engine.stats().queued == 1; }));

  // The quiet tenant's request is admitted PAST the hot tenant's queued
  // one and completes while the hot tenant is still parked.
  auto quiet = engine.Sql({"quiet", "SELECT x FROM t", {}, {}});
  ASSERT_TRUE(quiet.ok()) << quiet.status().ToString();
  EXPECT_EQ(engine.stats().queued, 1);  // hot's second is still waiting

  gate.Open();
  first.join();
  second.join();
  EXPECT_EQ(engine.stats().completed, 3u);
}

TEST(EngineTest, CancelWhileQueued) {
  EngineOptions options;
  options.max_concurrent = 1;
  options.per_tenant_max_concurrent = 1;
  Engine engine(options);

  Gate gate;
  std::atomic<int> entered{0};
  RegisterGateUdf(engine, "alice", &gate, &entered);
  RegisterSmallTable(engine, "alice", {1, 2, 3});

  std::thread runner([&] {
    EXPECT_TRUE(
        engine.Sql({"alice", "SELECT hold_gate(x) FROM t", {}, {}}).ok());
  });
  ASSERT_TRUE(WaitFor([&] { return entered.load() == 1; }));

  Engine::Request queued{"alice", "SELECT x FROM t", {}, {}};
  queued.run.cancel = std::make_shared<exec::CancellationToken>();
  std::thread waiter([&] {
    auto r = engine.Sql(queued);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  });
  ASSERT_TRUE(WaitFor([&] { return engine.stats().queued == 1; }));
  queued.run.cancel->Cancel();
  waiter.join();

  EXPECT_EQ(engine.stats().cancelled_while_queued, 1u);
  EXPECT_EQ(engine.stats().queued, 0);

  gate.Open();
  runner.join();
}

TEST(EngineTest, FootprintPreRejection) {
  EngineOptions options;
  options.max_estimated_footprint_bytes = 1024;
  Engine engine(options);

  std::vector<int64_t> values(1000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i * 37 % 1001);
  }
  RegisterSmallTable(engine, "alice", values);

  // A 1000-row sort estimates far above the 1 KB ceiling -> pre-rejected
  // without occupying a queue seat.
  auto big = engine.Sql({"alice", "SELECT x FROM t ORDER BY x", {}, {}});
  ASSERT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(engine.stats().rejected_footprint, 1u);
  EXPECT_EQ(engine.stats().admitted, 0u);

  // A breaker-free scan estimates no breaker scratch and sails through.
  auto small = engine.Sql({"alice", "SELECT x FROM t WHERE x < 10", {}, {}});
  EXPECT_TRUE(small.ok()) << small.status().ToString();
}

TEST(EngineTest, DefaultMemoryBudgetMakesBreakersSpill) {
  EngineOptions options;
  options.default_memory_budget_bytes = 1;
  Engine engine(options);

  std::vector<int64_t> values(2000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>((i * 2654435761u) % 4001);
  }
  RegisterSmallTable(engine, "alice", values);

  const int64_t spilled_before = exec::QueryMemory::TotalBytesSpilled();
  const int64_t live_before = exec::QueryMemory::LiveSpillFiles();
  auto sorted = engine.Sql({"alice", "SELECT x FROM t ORDER BY x", {}, {}});
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  EXPECT_GT(exec::QueryMemory::TotalBytesSpilled(), spilled_before)
      << "the engine's default budget was not applied to the run";
  EXPECT_EQ(exec::QueryMemory::LiveSpillFiles(), live_before);

  // A request carrying its own budget keeps it (no default override).
  Engine::Request unlimited{"alice", "SELECT x FROM t ORDER BY x", {}, {}};
  unlimited.run.memory_budget_bytes = 1 << 30;
  const int64_t spilled_mid = exec::QueryMemory::TotalBytesSpilled();
  ASSERT_TRUE(engine.Sql(unlimited).ok());
  EXPECT_EQ(exec::QueryMemory::TotalBytesSpilled(), spilled_mid);
}

// The TSan target: shed, admitted, cancelled-while-queued, and completed
// requests all racing on a deliberately tiny engine. The accounting must
// balance exactly — every request ends in exactly one terminal state, and
// every admitted request releases its slot.
TEST(EngineTest, AdmissionRaceStormAccountsEveryRequest) {
  EngineOptions options;
  options.max_concurrent = 2;
  options.per_tenant_max_concurrent = 1;
  options.max_queue = 4;
  Engine engine(options);

  const std::vector<std::string> tenants = {"t0", "t1", "t2"};
  for (const auto& tenant : tenants) {
    RegisterSmallTable(engine, tenant, {1, 2, 3, 4, 5});
  }

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 25;
  std::atomic<uint64_t> ok_count{0}, shed_count{0}, cancelled_count{0};

  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        Engine::Request req{tenants[(t + i) % tenants.size()],
                            "SELECT x, x * 2 FROM t ORDER BY x DESC", {}, {}};
        // A third of the requests race a cancel against their own
        // admission wait.
        std::thread canceller;
        if (i % 3 == 0) {
          req.run.cancel = std::make_shared<exec::CancellationToken>();
          canceller = std::thread([cancel = req.run.cancel] {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            cancel->Cancel();
          });
        }
        auto r = engine.Sql(req);
        if (canceller.joinable()) canceller.join();
        if (r.ok()) {
          ++ok_count;
        } else if (r.status().code() == StatusCode::kResourceExhausted) {
          ++shed_count;
        } else if (r.status().code() == StatusCode::kCancelled) {
          ++cancelled_count;
        } else {
          ADD_FAILURE() << "unexpected status: " << r.status().ToString();
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  const EngineStats stats = engine.stats();
  const uint64_t total = kThreads * kRequestsPerThread;
  // Terminal states partition the requests...
  EXPECT_EQ(stats.admitted + stats.shed + stats.cancelled_while_queued,
            total);
  EXPECT_EQ(stats.shed, shed_count.load());
  // (a cancel can also land DURING the run -> admitted but kCancelled, so
  // the engine's queue-cancel counter bounds the client-side one)
  EXPECT_LE(stats.cancelled_while_queued, cancelled_count.load());
  EXPECT_EQ(stats.completed, ok_count.load());
  EXPECT_EQ(stats.completed + stats.failed, stats.admitted);
  // ...and every slot was returned.
  EXPECT_EQ(stats.running, 0);
  EXPECT_EQ(stats.queued, 0);
}

}  // namespace
}  // namespace server
}  // namespace tdp
