#include "src/index/ivf_index.h"

#include <gtest/gtest.h>

#include <set>

#include "src/tensor/ops.h"
#include "tests/vector_test_util.h"

namespace tdp {
namespace index {
namespace {

// Clustered unit vectors: `clusters` directions with small perturbations
// (shared generator — see tests/vector_test_util.h).
Tensor MakeClusteredData(int64_t n, int64_t dim, int64_t clusters,
                         Rng& rng) {
  return testutil::MakeClusteredUnitVectors(n, dim, clusters, rng);
}

// Exact brute-force top-k for recall computation.
std::set<int64_t> BruteForceTopK(const Tensor& data, const Tensor& query,
                                 int64_t k) {
  const Tensor scores =
      Squeeze(MatMul(data, Reshape(query, {query.numel(), 1})), 1);
  const Tensor order = ArgSort(scores, /*descending=*/true);
  std::set<int64_t> out;
  for (int64_t i = 0; i < k; ++i) {
    out.insert(static_cast<int64_t>(order.At({i})));
  }
  return out;
}

TEST(IvfIndexTest, BuildValidatesInput) {
  Rng rng(1);
  IvfIndex::Options options;
  EXPECT_FALSE(IvfIndex::Build(Tensor(), options, rng).ok());
  EXPECT_FALSE(IvfIndex::Build(Tensor::Ones({4}), options, rng).ok());
  EXPECT_FALSE(
      IvfIndex::Build(Tensor::Ones({4, 2}, DType::kInt64), options, rng)
          .ok());
}

TEST(IvfIndexTest, FullProbeSearchIsExact) {
  Rng rng(2);
  Tensor data = MakeClusteredData(200, 16, 8, rng);
  IvfIndex::Options options;
  options.num_lists = 8;
  auto built = IvfIndex::Build(data, options, rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  Tensor query = L2Normalize(RandNormal({1, 16}, 0, 1, rng), 1).Squeeze(0);
  auto result = built->Search(query, 10, /*num_probes=*/8);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->indices.numel(), 10);

  const std::set<int64_t> exact = BruteForceTopK(data, query, 10);
  int hits = 0;
  for (int64_t i = 0; i < 10; ++i) {
    if (exact.contains(static_cast<int64_t>(result->indices.At({i})))) {
      ++hits;
    }
  }
  EXPECT_EQ(hits, 10) << "probing every cell must recover the exact top-k";
}

TEST(IvfIndexTest, ScoresAreSortedDescending) {
  Rng rng(3);
  Tensor data = MakeClusteredData(150, 8, 6, rng);
  IvfIndex::Options options;
  options.num_lists = 6;
  auto built = IvfIndex::Build(data, options, rng);
  ASSERT_TRUE(built.ok());
  Tensor query = L2Normalize(RandNormal({1, 8}, 0, 1, rng), 1).Squeeze(0);
  auto result = built->Search(query, 20, 3);
  ASSERT_TRUE(result.ok());
  for (int64_t i = 1; i < result->scores.numel(); ++i) {
    EXPECT_GE(result->scores.At({i - 1}), result->scores.At({i}));
  }
}

TEST(IvfIndexTest, PartialProbesHaveHighRecallOnClusteredData) {
  Rng rng(4);
  Tensor data = MakeClusteredData(600, 16, 12, rng);
  IvfIndex::Options options;
  options.num_lists = 12;
  auto built = IvfIndex::Build(data, options, rng);
  ASSERT_TRUE(built.ok());

  double recall = 0;
  const int kQueries = 10;
  Rng qrng(99);
  for (int q = 0; q < kQueries; ++q) {
    // Query near a data point so the answer is concentrated in one cell.
    const int64_t anchor = qrng.UniformInt(0, 599);
    Tensor query =
        L2Normalize(Add(Slice(data, 0, anchor, 1),
                        RandNormal({1, 16}, 0, 0.02, qrng)),
                    1)
            .Squeeze(0)
            .Contiguous();
    auto result = built->Search(query, 10, /*num_probes=*/3);
    ASSERT_TRUE(result.ok());
    const std::set<int64_t> exact = BruteForceTopK(data, query, 10);
    for (int64_t i = 0; i < result->indices.numel(); ++i) {
      if (exact.contains(static_cast<int64_t>(result->indices.At({i})))) {
        recall += 1;
      }
    }
  }
  recall /= kQueries * 10;
  EXPECT_GT(recall, 0.8) << "IVF recall@10 with 3/12 probes";
}

TEST(IvfIndexTest, ScanFractionShrinksWithFewerProbes) {
  Rng rng(5);
  Tensor data = MakeClusteredData(400, 8, 10, rng);
  IvfIndex::Options options;
  options.num_lists = 10;
  auto built = IvfIndex::Build(data, options, rng);
  ASSERT_TRUE(built.ok());
  EXPECT_LT(built->ScanFraction(2), built->ScanFraction(10));
  EXPECT_DOUBLE_EQ(built->ScanFraction(10), 1.0);
}

TEST(IvfIndexTest, KLargerThanCandidatesIsClamped) {
  Rng rng(6);
  Tensor data = MakeClusteredData(20, 4, 4, rng);
  IvfIndex::Options options;
  options.num_lists = 4;
  auto built = IvfIndex::Build(data, options, rng);
  ASSERT_TRUE(built.ok());
  Tensor query = L2Normalize(RandNormal({1, 4}, 0, 1, rng), 1).Squeeze(0);
  auto result = built->Search(query, 100, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->indices.numel(), 20);
  EXPECT_GT(result->indices.numel(), 0);
}

}  // namespace
}  // namespace index
}  // namespace tdp
