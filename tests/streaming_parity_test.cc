// Differential test for the two executors behind `ExecutePlan`: the
// morsel-driven streaming pipelines (default) and the legacy
// whole-relation materializing path must produce *bit-identical* results
// for every morsel size and thread count — including degenerate morsels
// (1 row), morsels that straddle the aggregate's 4096-row accumulation
// blocks, empty/single-row tables, and empty build/probe join sides.
// The pull-based ResultCursor is swept alongside: the concatenation of a
// drained cursor's chunks must equal the legacy Run() bit for bit at
// every (morsel, thread) combination, and abandoning/sharing cursors
// across threads must be race-free (this suite runs under TSan in CI).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/runtime/session.h"
#include "src/tensor/ops.h"
#include "tests/vector_test_util.h"

namespace tdp {
namespace {

constexpr int64_t kWholeRelation = int64_t{1} << 30;

// The sweep: morsel sizes crossing every interesting boundary (single-row,
// prime-sized, exactly one aggregate block, whole relation) at serial and
// parallel thread counts.
const int64_t kMorselSizes[] = {1, 7, 4096, kWholeRelation};
const int kThreadCounts[] = {1, 4};

class StreamingParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(4242);
    const std::vector<std::string> vocab = {"alpha", "beta", "gamma",
                                            "delta", "omega"};
    // Main table: big enough that a 4096-row morsel splits it, with
    // full-precision doubles so any reduction-order difference between
    // the executors shows up as a bit difference.
    const int64_t rows = 10000;
    std::vector<int64_t> keys;
    std::vector<double> values;
    std::vector<std::string> tags;
    for (int64_t i = 0; i < rows; ++i) {
      keys.push_back(rng.UniformInt(0, 63));
      values.push_back(rng.Uniform(-100, 100));
      tags.push_back(vocab[static_cast<size_t>(rng.UniformInt(0, 4))]);
    }
    Register("big", TableBuilder("big")
                        .AddInt64("k", keys)
                        .AddFloat64("v", values)
                        .AddStrings("tag", tags));

    std::vector<int64_t> ku;
    std::vector<double> w;
    for (int64_t i = 0; i < 48; ++i) {
      ku.push_back(rng.UniformInt(0, 63));
      w.push_back(rng.Uniform(0, 50));
    }
    Register("u", TableBuilder("u").AddInt64("ku", ku).AddFloat64("w", w));

    Register("empty_t", TableBuilder("empty_t")
                            .AddInt64("k", {})
                            .AddFloat64("v", {})
                            .AddStrings("tag", {}));
    Register("one", TableBuilder("one").AddInt64("k", {7}).AddFloat64(
                        "v", {3.25}));

    // Embedding table + IVF index for the IndexTopK parity sweep: 300
    // clustered unit vectors (d=8) with an id column. The plan compiled
    // for the top-k statements below is an IndexTopK breaker; parity must
    // hold for it across every morsel size, thread count, and delivery
    // mode, exactly like any other operator.
    {
      const int64_t n = 300, d = 8, clusters = 5;
      Tensor emb = testutil::MakeClusteredUnitVectors(n, d, clusters, rng);
      std::vector<int64_t> ids(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
      Register("vecs", TableBuilder("vecs").AddInt64("id", ids).AddTensor(
                           "emb", emb));
      index::IvfIndex::Options options;
      options.num_lists = 5;
      ASSERT_TRUE(session_.CreateVectorIndex("vecs", "emb", options).ok());
      query_vec_ = testutil::MakeUnitQuery(d, rng);
    }

    // A deliberately batch-DEPENDENT scalar UDF (subtracts the batch
    // mean): its per-row output changes with the evaluation batch, so any
    // operator that evaluated it per morsel would diverge from the legacy
    // whole-relation path. The pipeline builder must therefore treat every
    // NON-batchable UDF-bearing operator as a breaker — bnorm is the
    // negative control for the ModelEval streaming of batchable calls.
    udf::ScalarFunction fn;
    fn.name = "bnorm";
    fn.return_type = udf::DeclaredType::kFloat;
    fn.fn = [](const std::vector<udf::Argument>& args, int64_t,
               Device) -> StatusOr<Column> {
      const Tensor x = args[0].column.DecodeValues();
      return Column::Plain(Sub(x, Mean(x)));
    };
    ASSERT_TRUE(session_.functions().RegisterScalar(std::move(fn)).ok());

    // A batchable (row-local) scalar UDF with a tiny preferred batch, so
    // the ModelEval stage genuinely splits morsels at batch boundaries
    // that differ from every swept morsel size.
    udf::ScalarFunction scale;
    scale.name = "rowscale";
    scale.return_type = udf::DeclaredType::kFloat;
    scale.batchable = true;
    scale.preferred_batch_rows = 3;
    scale.fn = [](const std::vector<udf::Argument>& args, int64_t,
                  Device) -> StatusOr<Column> {
      const Tensor x = args[0].column.DecodeValues();
      return Column::Plain(AddScalar(MulScalar(x, 1.5), 0.25));
    };
    ASSERT_TRUE(session_.functions().RegisterScalar(std::move(scale)).ok());

    // A batchable TVF that maps each input row to TWO output rows
    // ([v, -v] interleaved in row order): row-local including the output
    // row count, so batches of input rows concatenate to the
    // whole-relation output. Streams through ModelEval; the parity sweep
    // proves the reassembly is exact even when 1 input row != 1 output
    // row.
    udf::TableFunction expand;
    expand.name = "expand2";
    expand.output_schema = {{"val", udf::DeclaredType::kFloat}};
    expand.min_args = 0;
    expand.max_args = 0;
    expand.batchable = true;
    expand.preferred_batch_rows = 3;
    expand.fn = [](const exec::Chunk& input,
                   const std::vector<exec::ScalarValue>&,
                   Device) -> StatusOr<exec::Chunk> {
      const int64_t value_col = input.FindColumn("v");
      if (value_col < 0) {
        return Status::TypeError("expand2: no column named v in input");
      }
      const Tensor x = input.columns[static_cast<size_t>(value_col)].data();
      const int64_t n = x.size(0);
      // [n] -> [n, 2] -> [2n]: row i's pair lands at rows 2i, 2i+1.
      const Tensor pairs = Stack({x, Neg(x)}, 1);
      exec::Chunk out;
      out.names = {"val"};
      out.columns.push_back(Column::Plain(Reshape(pairs, {2 * n})));
      return out;
    };
    ASSERT_TRUE(session_.functions().RegisterTable(std::move(expand)).ok());
  }

  void Register(const std::string& name, TableBuilder builder) {
    auto table = std::move(builder).Build();
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    ASSERT_TRUE(session_.RegisterTable(name, table.value()).ok());
  }

  StatusOr<std::shared_ptr<Table>> RunWith(
      const std::string& sql, bool streaming, int64_t morsel_rows,
      const std::vector<exec::ScalarValue>& params = {}) {
    QueryOptions options;
    options.use_plan_cache = false;
    exec::RunOptions run;
    run.params = params;
    run.exec.streaming = streaming;
    run.exec.morsel_rows = morsel_rows;
    TDP_ASSIGN_OR_RETURN(auto query, session_.Query(sql, options));
    return query->Run(run);
  }

  /// Opens a cursor with the given run options, drains it, and returns
  /// the concatenation of the yielded chunks as a table.
  static StatusOr<std::shared_ptr<Table>> DrainCursor(
      const std::shared_ptr<exec::CompiledQuery>& query,
      exec::RunOptions run) {
    TDP_ASSIGN_OR_RETURN(std::unique_ptr<exec::ResultCursor> cursor,
                         query->Open(std::move(run)));
    std::vector<exec::Chunk> chunks;
    while (true) {
      TDP_ASSIGN_OR_RETURN(std::optional<exec::Chunk> chunk, cursor->Next());
      if (!chunk.has_value()) break;
      chunks.push_back(std::move(*chunk));
    }
    // A successful stream always yields at least one (possibly zero-row)
    // chunk — an empty stream would be a silent-truncation bug.
    if (chunks.empty()) {
      return Status::Internal("cursor yielded no chunks");
    }
    const exec::Chunk result = exec::Chunk::Concat(chunks);
    return result.ToTable("result");
  }

  StatusOr<std::shared_ptr<Table>> CursorWith(
      const std::string& sql, int64_t morsel_rows,
      const std::vector<exec::ScalarValue>& params = {}) {
    QueryOptions options;
    options.use_plan_cache = false;
    exec::RunOptions run;
    run.params = params;
    run.exec.morsel_rows = morsel_rows;
    TDP_ASSIGN_OR_RETURN(auto query, session_.Query(sql, options));
    return DrainCursor(query, std::move(run));
  }

  void ExpectBitIdentical(const Table& a, const Table& b) {
    ASSERT_EQ(a.num_columns(), b.num_columns());
    ASSERT_EQ(a.num_rows(), b.num_rows());
    for (int64_t c = 0; c < a.num_columns(); ++c) {
      SCOPED_TRACE("column " + std::to_string(c));
      EXPECT_EQ(a.column_names()[static_cast<size_t>(c)],
                b.column_names()[static_cast<size_t>(c)]);
      const Column& ca = a.column(c);
      const Column& cb = b.column(c);
      ASSERT_EQ(ca.encoding(), cb.encoding());
      EXPECT_TRUE(TensorEqual(ca.data().Contiguous(), cb.data().Contiguous()))
          << "column data diverged: " << ca.ToString() << " vs "
          << cb.ToString();
      EXPECT_EQ(ca.dictionary(), cb.dictionary());
      EXPECT_EQ(ca.domain(), cb.domain());
    }
  }

  /// Runs `sql` on the legacy path once, then on the streaming path —
  /// both the materializing Run() and a drained ResultCursor — for every
  /// (morsel size, thread count) combination, asserting bit identity.
  /// Thread counts apply to both paths — the legacy path's intra-operator
  /// loops are also thread-deterministic.
  void ExpectParity(const std::string& sql,
                    const std::vector<exec::ScalarValue>& params = {}) {
    SCOPED_TRACE(sql);
    auto reference = RunWith(sql, /*streaming=*/false, 0, params);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (int threads : kThreadCounts) {
      ScopedNumThreads guard(threads);
      for (int64_t morsel : kMorselSizes) {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " morsel=" + std::to_string(morsel));
        auto streamed = RunWith(sql, /*streaming=*/true, morsel, params);
        ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
        ExpectBitIdentical(**reference, **streamed);
        auto drained = CursorWith(sql, morsel, params);
        ASSERT_TRUE(drained.ok()) << drained.status().ToString();
        ExpectBitIdentical(**reference, **drained);
      }
    }
  }

  Session session_;
  Tensor query_vec_;
};

TEST_F(StreamingParityTest, FilterProject) {
  ExpectParity("SELECT k, v FROM big WHERE v > 0");
  ExpectParity("SELECT k + 1, v * 2 FROM big WHERE k < 32 AND v <= 10");
  ExpectParity("SELECT tag FROM big WHERE tag >= 'beta'");
  ExpectParity("SELECT k FROM big WHERE tag IN ('alpha', 'omega')");
}

TEST_F(StreamingParityTest, GroupBy) {
  ExpectParity(
      "SELECT tag, COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM big "
      "GROUP BY tag ORDER BY tag");
  ExpectParity("SELECT k, COUNT(DISTINCT tag) FROM big GROUP BY k");
  ExpectParity("SELECT COUNT(*), SUM(v) FROM big");
  ExpectParity(
      "SELECT CASE WHEN v > 0 THEN 1 ELSE 0 END AS pos, COUNT(*) FROM big "
      "GROUP BY CASE WHEN v > 0 THEN 1 ELSE 0 END ORDER BY pos");
  ExpectParity(
      "SELECT tag, COUNT(*) FROM big WHERE k BETWEEN 8 AND 40 GROUP BY tag "
      "HAVING COUNT(*) > 10 ORDER BY tag");
}

TEST_F(StreamingParityTest, Joins) {
  ExpectParity(
      "SELECT big.k, u.w FROM big JOIN u ON big.k = u.ku WHERE u.w > 10 "
      "ORDER BY big.k, u.w");
  // Residual (cross-side) conjunct on top of the equi key.
  ExpectParity(
      "SELECT big.k, u.w FROM big JOIN u ON big.k = u.ku AND big.v < u.w");
  // Join feeding an aggregate.
  ExpectParity(
      "SELECT big.tag, COUNT(*), SUM(u.w) FROM big JOIN u ON big.k = u.ku "
      "GROUP BY big.tag ORDER BY big.tag");
  // Two-join chain: one probe pipeline streaming through two build
  // tables.
  ExpectParity(
      "SELECT big.k, u.w, one.v FROM big JOIN u ON big.k = u.ku "
      "JOIN one ON big.k = one.k WHERE u.w > 5 ORDER BY big.k, u.w");
  // Small table on the LEFT: the optimizer flips the build side
  // (JoinNode::build_left), hashing `one` and streaming `big` as probe.
  ExpectParity(
      "SELECT one.k, big.v FROM one JOIN big ON one.k = big.k "
      "ORDER BY big.v");
}

TEST_F(StreamingParityTest, SortLimitDistinct) {
  ExpectParity("SELECT k, v FROM big ORDER BY v DESC LIMIT 10");
  ExpectParity("SELECT k FROM big LIMIT 17 OFFSET 29");
  ExpectParity("SELECT k FROM big WHERE v > 0 LIMIT 100 OFFSET 4090");
  ExpectParity("SELECT k FROM big LIMIT 0");
  ExpectParity("SELECT k FROM big ORDER BY k LIMIT 5 OFFSET 20000");
  ExpectParity("SELECT DISTINCT tag FROM big");
  ExpectParity("SELECT x FROM (SELECT k + 1 AS x FROM big WHERE v > 0) s "
               "WHERE x < 8 ORDER BY x");
}

TEST_F(StreamingParityTest, IndexTopK) {
  const std::vector<exec::ScalarValue> params = {
      exec::ScalarValue::FromTensor(query_vec_)};
  // The compiled plan for each of these is an IndexTopK breaker (the
  // catalog holds an index on vecs.emb); the sweep drives it through the
  // legacy executor, the streaming executor, and a drained cursor at
  // every morsel/thread combination.
  ExpectParity(
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC LIMIT 12",
      params);
  ExpectParity(
      "SELECT id, cosine_sim(emb, ?) AS sim FROM vecs "
      "ORDER BY sim DESC LIMIT 7",
      params);
  // Hidden sort column (ORDER BY key outside the select list) and OFFSET
  // above the fused top-k.
  ExpectParity("SELECT id FROM vecs ORDER BY dot(emb, ?) DESC LIMIT 9",
               params);
  ExpectParity(
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC "
      "LIMIT 5 OFFSET 3",
      params);
  // LIMIT 0 and k > n degenerate shapes.
  ExpectParity(
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC LIMIT 0",
      params);
  ExpectParity(
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC "
      "LIMIT 100000",
      params);
  // The same statements with NO valid index (rewrite preconditions fail:
  // a WHERE below the sort) exercise the BoundVectorSim expression in an
  // ordinary streaming Project under the same sweep.
  ExpectParity(
      "SELECT id, dot(emb, ?) AS sim FROM vecs WHERE id < 200 "
      "ORDER BY sim DESC LIMIT 6",
      params);
}

// A cursor over an IndexTopK plan supports early close like any other:
// the breaker materializes, the (single) result chunk streams, and
// dropping the cursor mid-stream cancels cleanly.
TEST_F(StreamingParityTest, IndexTopKCursorEarlyClose) {
  QueryOptions options;
  auto query = session_.Prepare(
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC LIMIT 50",
      options);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  exec::RunOptions run;
  run.params = {exec::ScalarValue::FromTensor(query_vec_)};
  run.exec.morsel_rows = 4;
  auto cursor = (*query)->Open(std::move(run));
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  auto first = (*cursor)->Next();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->has_value());
  EXPECT_GT((**first).num_rows(), 0);
  (*cursor)->Close();  // abandon mid-stream; destructor joins the producer
}

TEST_F(StreamingParityTest, EmptyAndSingleRowTables) {
  ExpectParity("SELECT k, v FROM empty_t WHERE v > 0");
  ExpectParity("SELECT tag, COUNT(*), SUM(v) FROM empty_t GROUP BY tag");
  ExpectParity("SELECT COUNT(*), SUM(v) FROM empty_t");
  ExpectParity("SELECT k FROM empty_t ORDER BY k DESC LIMIT 3");
  ExpectParity("SELECT DISTINCT tag FROM empty_t");
  ExpectParity("SELECT k, v FROM one WHERE v > 0");
  ExpectParity("SELECT k, COUNT(*) FROM one GROUP BY k");
  ExpectParity("SELECT k FROM one LIMIT 5 OFFSET 1");
}

TEST_F(StreamingParityTest, EmptyJoinSides) {
  // Zero-row build side: the probe stream must drain to an empty result.
  ExpectParity(
      "SELECT big.k FROM big JOIN empty_t ON big.k = empty_t.k");
  // Zero-row probe side against a populated build.
  ExpectParity(
      "SELECT empty_t.k, u.w FROM empty_t JOIN u ON empty_t.k = u.ku");
  // Empty filtered probe stream (nonempty source, nothing survives).
  ExpectParity(
      "SELECT big.k, u.w FROM big JOIN u ON big.k = u.ku WHERE big.v > 999");
}

TEST_F(StreamingParityTest, DegenerateProjections) {
  ExpectParity("SELECT 1 + 2 AS three, 10 / 4 AS frac");
  // Literal-only projection over a filter that drops every row: the
  // streaming fallback must reproduce the legacy empty-relation behavior.
  ExpectParity("SELECT 1 FROM big WHERE k > 999");
  ExpectParity("SELECT 1 FROM big WHERE k >= 0 LIMIT 3");
}

TEST_F(StreamingParityTest, BatchDependentUdfsBreakPipelines) {
  // Projection and filter (kMaterialize breakers since PR 3's builder).
  ExpectParity("SELECT k, bnorm(v) FROM big WHERE v > 0");
  ExpectParity("SELECT k FROM big WHERE bnorm(v) > 0 ORDER BY k LIMIT 20");
  // Aggregate argument and group key: per-morsel input evaluation would
  // normalize against morsel means instead of the relation mean.
  ExpectParity(
      "SELECT tag, SUM(bnorm(v)) FROM big GROUP BY tag ORDER BY tag");
  ExpectParity(
      "SELECT CASE WHEN bnorm(v) > 0 THEN 1 ELSE 0 END AS hi, COUNT(*) "
      "FROM big GROUP BY CASE WHEN bnorm(v) > 0 THEN 1 ELSE 0 END "
      "ORDER BY hi");
  // Join residual: must be evaluated over the whole joined relation.
  ExpectParity(
      "SELECT big.k, u.w FROM big JOIN u ON big.k = u.ku "
      "AND bnorm(big.v) < u.w ORDER BY big.k, u.w");
}

// Batchable (row-local) model calls STREAM: the plan gets a ModelEval
// micro-batch stage instead of a breaker, and the full sweep (morsels
// {1,7,4096,whole} x threads {1,4} x both executors x cursor drains) must
// stay bit-identical — batch boundaries (preferred_batch_rows=3) land
// inside, across, and exactly on every swept morsel boundary.
TEST_F(StreamingParityTest, BatchableUdfsStreamThroughModelEval) {
  // Projection and filter.
  ExpectParity("SELECT k, rowscale(v) FROM big WHERE v > 0");
  ExpectParity("SELECT k FROM big WHERE rowscale(v) > 0 ORDER BY k LIMIT 20");
  // Batchable call under a Limit sink (no early-exit: ModelEval-wrapped
  // ops are not treated as row-preserving).
  ExpectParity("SELECT rowscale(v) FROM big LIMIT 13 OFFSET 7");
  // Aggregates stay conservative (breaker) even for batchable calls —
  // parity must hold regardless.
  ExpectParity(
      "SELECT tag, SUM(rowscale(v)) FROM big GROUP BY tag ORDER BY tag");
  // A batchable call nested under a NON-batchable one keeps breaker
  // semantics (bnorm sees the whole relation).
  ExpectParity("SELECT k, bnorm(rowscale(v)) FROM big WHERE v > 0");
  // Empty and single-row inputs through the ModelEval stage.
  ExpectParity("SELECT k, rowscale(v) FROM empty_t WHERE v > 0");
  ExpectParity("SELECT k, rowscale(v) FROM one");
}

// Batchable TVFs stream through ModelEval too — including one whose
// output row count differs from its input's (1 grid row -> 2 value rows),
// proving the slice-order reassembly is exact when counts change.
TEST_F(StreamingParityTest, BatchableTvfStreamsThroughModelEval) {
  ExpectParity("SELECT val FROM expand2(big)");
  ExpectParity("SELECT val FROM expand2(big) WHERE val > 0");
  ExpectParity(
      "SELECT COUNT(*), SUM(val) FROM expand2(big)");
  ExpectParity("SELECT val FROM expand2(empty_t)");
  ExpectParity("SELECT val FROM expand2(one)");
}

// EXPLAIN PIPELINES renders the synthesized ModelEval stage with its
// batch size, and the per-run RunOptions::model_batch_rows override
// reslices without changing a byte.
TEST_F(StreamingParityTest, ModelEvalExplainAndBatchOverride) {
  QueryOptions options;
  options.use_plan_cache = false;
  auto query = session_.Query("SELECT k, rowscale(v) FROM big WHERE v > 0",
                              options);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const std::string pipelines = (*query)->ExplainPipelines();
  EXPECT_NE(pipelines.find("ModelEval(batch=3)"), std::string::npos)
      << pipelines;
  // The batchable-bearing Project/Filter no longer appears as a breaker.
  EXPECT_EQ(pipelines.find("materialize"), std::string::npos) << pipelines;

  exec::RunOptions reference_run;
  reference_run.exec.streaming = false;
  auto reference = (*query)->Run(reference_run);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (int64_t batch : {1, 2, 7, 4096}) {
    SCOPED_TRACE("model_batch_rows=" + std::to_string(batch));
    exec::RunOptions run;
    run.model_batch_rows = batch;
    run.exec.morsel_rows = 64;
    auto result = (*query)->Run(run);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectBitIdentical(**reference, **result);
  }
  // A negative override fails fast with a named error.
  exec::RunOptions bad;
  bad.model_batch_rows = -1;
  auto fail = (*query)->Run(bad);
  ASSERT_FALSE(fail.ok());
  EXPECT_NE(fail.status().ToString().find("model_batch_rows"),
            std::string::npos);
}

// The non-batchable control keeps its breaker: bnorm-bearing plans must
// never grow a ModelEval stage.
TEST_F(StreamingParityTest, NonBatchableUdfKeepsBreaker) {
  QueryOptions options;
  options.use_plan_cache = false;
  auto query =
      session_.Query("SELECT k, bnorm(v) FROM big WHERE v > 0", options);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const std::string pipelines = (*query)->ExplainPipelines();
  EXPECT_EQ(pipelines.find("ModelEval"), std::string::npos) << pipelines;
  EXPECT_NE(pipelines.find("materialize"), std::string::npos) << pipelines;
}

// The whole-table streaming default must also match when driven through
// the normal Session::Sql path (plan cache on, default run options) —
// the legacy executor is now selected per run, through the same cached
// plan.
TEST_F(StreamingParityTest, DefaultPathMatchesLegacy) {
  const std::string sql =
      "SELECT tag, COUNT(*), SUM(v) FROM big GROUP BY tag ORDER BY tag";
  auto streamed = session_.Sql(sql);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  exec::RunOptions legacy;
  legacy.exec.streaming = false;
  auto reference = session_.Sql(sql, QueryOptions{}, legacy);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ExpectBitIdentical(**reference, **streamed);
}

// Session::Execute end to end: the cursor stream through the plan cache
// equals Sql()'s materialized table.
TEST_F(StreamingParityTest, SessionExecuteMatchesSql) {
  const std::string sql = "SELECT k, v FROM big WHERE v > 0";
  auto reference = session_.Sql(sql);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  exec::RunOptions run;
  run.exec.morsel_rows = 512;
  auto cursor = session_.Execute(sql, QueryOptions{}, std::move(run));
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  std::vector<exec::Chunk> chunks;
  while (true) {
    auto chunk = (*cursor)->Next();
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    if (!chunk->has_value()) break;
    chunks.push_back(std::move(**chunk));
  }
  ASSERT_GT(chunks.size(), 1u);  // genuinely streamed, not one blob
  auto table = exec::Chunk::Concat(chunks).ToTable("result");
  ASSERT_TRUE(table.ok());
  ExpectBitIdentical(**reference, **table);
}

// Mid-stream abandonment under concurrency: many threads open cursors on
// tiny morsels, consume one chunk, and drop the cursor. The destructor's
// cooperative cancellation (close flag + token checked at morsel
// boundaries, producer joined) must be race-free — this suite runs under
// TSan in CI.
TEST_F(StreamingParityTest, ConcurrentCursorAbandonment) {
  QueryOptions options;
  auto query = session_.Prepare("SELECT k, v FROM big WHERE v > -200",
                                options);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::vector<int64_t> produced(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      exec::RunOptions run;
      run.exec.morsel_rows = 16;  // ~625 potential chunks
      auto cursor = (*query)->Open(std::move(run));
      if (!cursor.ok()) return;
      auto first = (*cursor)->Next();
      if (first.ok()) produced[static_cast<size_t>(c)] = 1;
      // Abandon mid-stream: ~ResultCursor cancels and joins the producer.
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(produced[static_cast<size_t>(c)], 1) << "client " << c;
  }
}

// Concurrent cursors over ONE shared prepared plan, each with different
// per-run morsel sizes: the plan is immutable, so streams must neither
// race nor cross-contaminate; every drained stream equals the reference.
TEST_F(StreamingParityTest, ConcurrentCursorsShareOnePreparedPlan) {
  const std::string sql =
      "SELECT k, v FROM big WHERE k < 48 AND v > -150";
  auto reference = RunWith(sql, /*streaming=*/false, 0);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  auto query = session_.Prepare(sql);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const int64_t kMorsels[] = {16, 127, 4096, 1 << 20};
  std::vector<std::thread> clients;
  std::vector<StatusOr<std::shared_ptr<Table>>> results(
      4, Status::Internal("unset"));
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      exec::RunOptions run;
      run.exec.morsel_rows = kMorsels[c];
      results[static_cast<size_t>(c)] = DrainCursor(*query, std::move(run));
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < 4; ++c) {
    SCOPED_TRACE("client " + std::to_string(c));
    ASSERT_TRUE(results[static_cast<size_t>(c)].ok())
        << results[static_cast<size_t>(c)].status().ToString();
    ExpectBitIdentical(**reference, *results[static_cast<size_t>(c)].value());
  }
}

}  // namespace
}  // namespace tdp
