#include "src/tensor/tensor.h"

#include <gtest/gtest.h>

#include "src/tensor/ops.h"

namespace tdp {
namespace {

TEST(TensorTest, FactoriesAndMetadata) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.dim(), 2);
  EXPECT_EQ(z.numel(), 6);
  EXPECT_EQ(z.size(0), 2);
  EXPECT_EQ(z.size(-1), 3);
  EXPECT_EQ(z.dtype(), DType::kFloat32);
  EXPECT_TRUE(z.is_contiguous());
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t c = 0; c < 3; ++c) EXPECT_EQ(z.At({r, c}), 0.0);
  }

  Tensor ones = Tensor::Ones({4}, DType::kInt64);
  EXPECT_EQ(ones.At({2}), 1.0);
  EXPECT_EQ(Tensor::Scalar(7, DType::kInt64).item<int64_t>(), 7);
}

TEST(TensorTest, FullAndArange) {
  Tensor f = Tensor::Full({2, 2}, 3.5);
  EXPECT_FLOAT_EQ(static_cast<float>(f.At({1, 1})), 3.5f);
  Tensor a = Tensor::Arange(5);
  EXPECT_EQ(a.dtype(), DType::kInt64);
  const std::vector<int64_t> v = a.ToVector<int64_t>();
  EXPECT_EQ(v, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(TensorTest, FromVectorRoundTrip) {
  const std::vector<float> data = {1.f, 2.f, 3.f, 4.f, 5.f, 6.f};
  Tensor t = Tensor::FromVector(data, {2, 3});
  EXPECT_EQ(t.ToVector<float>(), data);
  EXPECT_EQ(t.At({1, 2}), 6.0);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::FromVector(std::vector<float>{1, 2, 3});
  Tensor b = a.Clone();
  b.data<float>()[0] = 99;
  EXPECT_EQ(a.At({0}), 1.0);
  EXPECT_EQ(b.At({0}), 99.0);
}

TEST(TensorTest, HandleSharesStorage) {
  Tensor a = Tensor::FromVector(std::vector<float>{1, 2, 3});
  Tensor b = a;  // handle copy
  b.data<float>()[0] = 42;
  EXPECT_EQ(a.At({0}), 42.0);
}

TEST(TensorTest, CastPreservesValues) {
  Tensor a = Tensor::FromVector(std::vector<float>{1.9f, -2.1f, 3.0f});
  Tensor i = a.To(DType::kInt64);
  EXPECT_EQ(i.ToVector<int64_t>(), (std::vector<int64_t>{1, -2, 3}));
  Tensor d = a.To(DType::kFloat64);
  EXPECT_DOUBLE_EQ(d.At({0}), static_cast<double>(1.9f));
}

TEST(TensorTest, TransposeIsViewAndContiguousCopies) {
  Tensor t = Tensor::FromVector(std::vector<float>{1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor tt = t.Transpose(0, 1);
  EXPECT_EQ(tt.shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_FALSE(tt.is_contiguous());
  EXPECT_EQ(tt.At({2, 1}), 6.0);
  Tensor c = tt.Contiguous();
  EXPECT_TRUE(c.is_contiguous());
  EXPECT_EQ(c.ToVector<float>(), (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(TensorTest, SliceViewsShareBuffer) {
  Tensor t = Tensor::Arange(10, DType::kFloat32);
  Tensor s = t.Slice(0, 3, 4);
  EXPECT_EQ(s.numel(), 4);
  EXPECT_EQ(s.At({0}), 3.0);
  s.SetAt({0}, 100.0);
  EXPECT_EQ(t.At({3}), 100.0) << "slice must alias the parent buffer";
}

TEST(TensorTest, ReshapeInfersDim) {
  Tensor t = Tensor::Arange(12, DType::kFloat32);
  Tensor r = t.Reshape({3, -1});
  EXPECT_EQ(r.shape(), (std::vector<int64_t>{3, 4}));
  EXPECT_EQ(r.At({2, 3}), 11.0);
}

TEST(TensorTest, ExpandBroadcastsWithZeroStride) {
  Tensor t = Tensor::FromVector(std::vector<float>{1, 2, 3}, {1, 3});
  Tensor e = t.Expand({4, 3});
  EXPECT_EQ(e.shape(), (std::vector<int64_t>{4, 3}));
  EXPECT_EQ(e.At({3, 2}), 3.0);
  EXPECT_EQ(e.Contiguous().numel(), 12);
}

TEST(TensorTest, PermuteAndSqueezeUnsqueeze) {
  Tensor t = Tensor::Arange(24, DType::kFloat32).Reshape({2, 3, 4});
  Tensor p = t.Permute({2, 0, 1});
  EXPECT_EQ(p.shape(), (std::vector<int64_t>{4, 2, 3}));
  EXPECT_EQ(p.At({3, 1, 2}), t.At({1, 2, 3}));
  Tensor u = t.Unsqueeze(1);
  EXPECT_EQ(u.shape(), (std::vector<int64_t>{2, 1, 3, 4}));
  EXPECT_EQ(u.Squeeze(1).shape(), t.shape());
}

TEST(TensorTest, BroadcastShapesRules) {
  EXPECT_EQ(BroadcastShapes({2, 3}, {3}), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(BroadcastShapes({4, 1}, {1, 5}), (std::vector<int64_t>{4, 5}));
  EXPECT_EQ(BroadcastShapes({}, {2}), (std::vector<int64_t>{2}));
}

TEST(TensorTest, DevicesCarryThroughOps) {
  Tensor a = Tensor::Ones({3}).To(Device::kAccel);
  EXPECT_EQ(a.device(), Device::kAccel);
  Tensor b = Add(a, a);
  EXPECT_EQ(b.device(), Device::kAccel);
}

}  // namespace
}  // namespace tdp
