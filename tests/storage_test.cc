#include <gtest/gtest.h>

#include "src/storage/catalog.h"
#include "src/storage/column.h"
#include "src/storage/table.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

TEST(ColumnTest, PlainColumn) {
  Column c = Column::Plain(Tensor::FromVector(std::vector<float>{1, 2, 3}));
  EXPECT_EQ(c.encoding(), Encoding::kPlain);
  EXPECT_EQ(c.length(), 3);
  EXPECT_FALSE(c.IsTensorColumn());
}

TEST(ColumnTest, TensorColumnHasRank) {
  Column c = Column::Plain(Tensor::Zeros({5, 3, 8, 8}));
  EXPECT_TRUE(c.IsTensorColumn());
  EXPECT_EQ(c.length(), 5);
}

TEST(ColumnTest, DictionaryIsOrderPreserving) {
  Column c = Column::FromStrings({"pear", "apple", "pear", "banana"});
  EXPECT_EQ(c.encoding(), Encoding::kDictionary);
  // Codes sorted by string: apple=0, banana=1, pear=2.
  EXPECT_EQ(c.data().ToVector<int64_t>(),
            (std::vector<int64_t>{2, 0, 2, 1}));
  EXPECT_EQ(c.DecodeStrings(),
            (std::vector<std::string>{"pear", "apple", "pear", "banana"}));
  EXPECT_EQ(c.DictionaryCode("banana"), 1);
  EXPECT_EQ(c.DictionaryCode("missing"), -1);
  // Range lookups for order-preserving predicates.
  EXPECT_EQ(c.LowerBoundCode("b"), 1);
  EXPECT_EQ(c.UpperBoundCode("banana"), 2);
}

TEST(ColumnTest, ProbabilityEncodingDecodesToArgmaxDomainValue) {
  Tensor probs = Tensor::FromVector(
      std::vector<float>{0.1f, 0.9f, 0.8f, 0.2f}, {2, 2});
  Column c = Column::Probability(probs, {10.0, 20.0});
  EXPECT_EQ(c.encoding(), Encoding::kProbability);
  Tensor hard = c.DecodeValues();
  EXPECT_EQ(hard.ToVector<float>(), (std::vector<float>{20, 10}));
}

TEST(ColumnTest, SelectPreservesEncoding) {
  Column c = Column::FromStrings({"a", "b", "c"});
  Column sel = c.Select(Tensor::FromVector(std::vector<int64_t>{2, 0}));
  EXPECT_EQ(sel.DecodeStrings(), (std::vector<std::string>{"c", "a"}));
  EXPECT_EQ(sel.encoding(), Encoding::kDictionary);
}

TEST(TableTest, CreateValidatesShapes) {
  auto bad = Table::Create(
      "t", {"a", "b"},
      {Column::Plain(Tensor::Ones({2})), Column::Plain(Tensor::Ones({3}))});
  EXPECT_FALSE(bad.ok());

  auto dup = Table::Create(
      "t", {"a", "A"},
      {Column::Plain(Tensor::Ones({2})), Column::Plain(Tensor::Ones({2}))});
  EXPECT_FALSE(dup.ok());
}

TEST(TableTest, BuilderAndLookup) {
  auto table = TableBuilder("t")
                   .AddInt64("id", {1, 2})
                   .AddStrings("name", {"x", "y"})
                   .AddTensor("img", Tensor::Zeros({2, 1, 4, 4}))
                   .Build();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 2);
  EXPECT_EQ((*table)->num_columns(), 3);
  auto idx = (*table)->ColumnIndex("NAME");  // case-insensitive
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1);
  EXPECT_FALSE((*table)->ColumnIndex("missing").ok());
}

TEST(TableTest, ToDeviceMovesColumns) {
  auto table = TableBuilder("t").AddFloat32("x", {1, 2, 3}).Build();
  ASSERT_TRUE(table.ok());
  auto moved = (*table)->To(Device::kAccel);
  EXPECT_EQ(moved->column(0).data().device(), Device::kAccel);
  EXPECT_EQ((*table)->column(0).data().device(), Device::kCpu);
}

TEST(CatalogTest, RegisterLookupDrop) {
  Catalog catalog;
  auto table = TableBuilder("t").AddFloat32("x", {1}).Build();
  ASSERT_TRUE(catalog.RegisterTable("MyTable", table.value()).ok());
  EXPECT_TRUE(catalog.GetTable("mytable").ok());
  EXPECT_TRUE(catalog.GetTable("MYTABLE").ok());
  EXPECT_FALSE(catalog.GetTable("other").ok());

  // replace=false refuses to clobber.
  EXPECT_EQ(
      catalog.RegisterTable("mytable", table.value(), /*replace=*/false)
          .code(),
      StatusCode::kAlreadyExists);
  // replace=true (default) overwrites.
  EXPECT_TRUE(catalog.RegisterTable("mytable", table.value()).ok());

  EXPECT_TRUE(catalog.DropTable("mytable").ok());
  EXPECT_FALSE(catalog.GetTable("mytable").ok());
  EXPECT_EQ(catalog.DropTable("mytable").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, RejectsBadInput) {
  Catalog catalog;
  EXPECT_FALSE(catalog.RegisterTable("x", nullptr).ok());
  auto table = TableBuilder("t").AddFloat32("x", {1}).Build();
  EXPECT_FALSE(catalog.RegisterTable("", table.value()).ok());
}

}  // namespace
}  // namespace tdp
