#include "src/plan/optimizer.h"

#include <gtest/gtest.h>

#include "src/runtime/session.h"
#include "src/sql/binder.h"
#include "src/sql/parser.h"

namespace tdp {
namespace plan {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = TableBuilder("t")
                 .AddInt64("k", {1, 2, 3})
                 .AddFloat32("v", {1, 2, 3})
                 .AddTensor("img", Tensor::Zeros({3, 1, 4, 4}))
                 .Build();
    ASSERT_TRUE(session_.RegisterTable("t", t.value()).ok());
    auto u = TableBuilder("u")
                 .AddInt64("k2", {1, 2})
                 .AddFloat32("w", {5, 6})
                 .Build();
    ASSERT_TRUE(session_.RegisterTable("u", u.value()).ok());
  }

  std::string Plan(const std::string& sql) {
    auto result = session_.Explain(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result.value() : "";
  }

  Session session_;
};

TEST_F(OptimizerTest, LimitFusesIntoSort) {
  const std::string plan = Plan("SELECT k FROM t ORDER BY v LIMIT 2");
  EXPECT_NE(plan.find("topk=2"), std::string::npos) << plan;
  // The standalone Limit node is gone (offset = 0).
  EXPECT_EQ(plan.find("Limit("), std::string::npos) << plan;
}

TEST_F(OptimizerTest, LimitWithOffsetKeepsLimitNode) {
  const std::string plan =
      Plan("SELECT k FROM t ORDER BY v LIMIT 2 OFFSET 1");
  EXPECT_NE(plan.find("topk=3"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Limit(2, offset=1)"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, FilterPushesThroughJoin) {
  const std::string plan = Plan(
      "SELECT t.k FROM t JOIN u ON t.k = u.k2 WHERE t.v > 1 AND u.w > 5");
  // Both conjuncts moved below the join: Filter appears under Join sides.
  const size_t join_pos = plan.find("Join");
  ASSERT_NE(join_pos, std::string::npos);
  EXPECT_NE(plan.find("Filter", join_pos), std::string::npos)
      << "expected pushed-down filters below the join:\n" << plan;
  // No filter remains above the join.
  EXPECT_EQ(plan.substr(0, join_pos).find("Filter"), std::string::npos)
      << plan;
}

TEST_F(OptimizerTest, ScanPruningDropsUnusedTensorColumn) {
  const std::string plan = Plan("SELECT k FROM t WHERE v > 1");
  EXPECT_NE(plan.find("cols=2"), std::string::npos)
      << "scan should read only k and v, not the image column:\n" << plan;
}

TEST_F(OptimizerTest, PruningPreservesResults) {
  auto full = session_.Sql("SELECT k, v FROM t WHERE v > 1 ORDER BY k");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ((*full)->num_rows(), 2);
  EXPECT_EQ((*full)->column(0).data().At({0}), 2.0);
  EXPECT_FLOAT_EQ(static_cast<float>((*full)->column(1).data().At({1})),
                  3.0f);
}

TEST_F(OptimizerTest, SelectStarIsNotPruned) {
  const std::string plan = Plan("SELECT * FROM t");
  EXPECT_EQ(plan.find("cols="), std::string::npos) << plan;
}

}  // namespace
}  // namespace plan
}  // namespace tdp
