#include "src/plan/optimizer.h"

#include <gtest/gtest.h>

#include "src/runtime/session.h"
#include "src/sql/binder.h"
#include "src/sql/parser.h"

namespace tdp {
namespace plan {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = TableBuilder("t")
                 .AddInt64("k", {1, 2, 3})
                 .AddFloat32("v", {1, 2, 3})
                 .AddTensor("img", Tensor::Zeros({3, 1, 4, 4}))
                 .Build();
    ASSERT_TRUE(session_.RegisterTable("t", t.value()).ok());
    auto u = TableBuilder("u")
                 .AddInt64("k2", {1, 2})
                 .AddFloat32("w", {5, 6})
                 .Build();
    ASSERT_TRUE(session_.RegisterTable("u", u.value()).ok());
  }

  std::string Plan(const std::string& sql) {
    auto result = session_.Explain(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result.value() : "";
  }

  Session session_;
};

TEST_F(OptimizerTest, LimitFusesIntoSort) {
  const std::string plan = Plan("SELECT k FROM t ORDER BY v LIMIT 2");
  EXPECT_NE(plan.find("topk=2"), std::string::npos) << plan;
  // The standalone Limit node is gone (offset = 0).
  EXPECT_EQ(plan.find("Limit("), std::string::npos) << plan;
}

TEST_F(OptimizerTest, LimitWithOffsetKeepsLimitNode) {
  const std::string plan =
      Plan("SELECT k FROM t ORDER BY v LIMIT 2 OFFSET 1");
  EXPECT_NE(plan.find("topk=3"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Limit(2, offset=1)"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, FilterPushesThroughJoin) {
  const std::string plan = Plan(
      "SELECT t.k FROM t JOIN u ON t.k = u.k2 WHERE t.v > 1 AND u.w > 5");
  // Both conjuncts moved below the join: Filter appears under Join sides.
  const size_t join_pos = plan.find("Join");
  ASSERT_NE(join_pos, std::string::npos);
  EXPECT_NE(plan.find("Filter", join_pos), std::string::npos)
      << "expected pushed-down filters below the join:\n" << plan;
  // No filter remains above the join.
  EXPECT_EQ(plan.substr(0, join_pos).find("Filter"), std::string::npos)
      << plan;
}

TEST_F(OptimizerTest, ScanPruningDropsUnusedTensorColumn) {
  const std::string plan = Plan("SELECT k FROM t WHERE v > 1");
  EXPECT_NE(plan.find("cols=2"), std::string::npos)
      << "scan should read only k and v, not the image column:\n" << plan;
}

TEST_F(OptimizerTest, PruningPreservesResults) {
  auto full = session_.Sql("SELECT k, v FROM t WHERE v > 1 ORDER BY k");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ((*full)->num_rows(), 2);
  EXPECT_EQ((*full)->column(0).data().At({0}), 2.0);
  EXPECT_FLOAT_EQ(static_cast<float>((*full)->column(1).data().At({1})),
                  3.0f);
}

TEST_F(OptimizerTest, SelectStarIsNotPruned) {
  const std::string plan = Plan("SELECT * FROM t");
  EXPECT_EQ(plan.find("cols="), std::string::npos) << plan;
}

TEST_F(OptimizerTest, LiteralOnlyProjectionKeepsOneNarrowColumn) {
  // Regression: pruning `SELECT 1 FROM t` down to zero scan columns made
  // the chunk report zero rows. The scan must keep one (narrow, non-
  // tensor) column purely for the row count.
  const std::string plan = Plan("SELECT 1 FROM t");
  EXPECT_NE(plan.find("cols=1"), std::string::npos) << plan;

  auto r = session_.Sql("SELECT 1 FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 3);
  EXPECT_EQ((*r)->column(0).data().At({2}), 1.0);

  auto filtered = session_.Sql("SELECT 1 + 1 FROM t WHERE k > 1");
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  EXPECT_EQ((*filtered)->num_rows(), 2);
}

TEST_F(OptimizerTest, LimitOffsetAboveHiddenSortCleanupProject) {
  // ORDER BY key not in the select list -> hidden sort column + cleanup
  // Project between the Limit and the Sort. The fused top-k must keep
  // offset+limit rows and the Limit node must survive to apply the offset.
  const std::string plan =
      Plan("SELECT k FROM t ORDER BY v DESC LIMIT 2 OFFSET 1");
  EXPECT_NE(plan.find("topk=3"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Limit(2, offset=1)"), std::string::npos) << plan;

  auto r = session_.Sql("SELECT k FROM t ORDER BY v DESC LIMIT 2 OFFSET 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->num_rows(), 2);
  EXPECT_EQ((*r)->num_columns(), 1);  // hidden sort column dropped
  // v desc orders k as 3, 2, 1; offset 1 limit 2 -> 2, 1.
  EXPECT_EQ((*r)->column(0).data().At({0}), 2.0);
  EXPECT_EQ((*r)->column(0).data().At({1}), 1.0);
}

TEST_F(OptimizerTest, ZeroOffsetLimitDropsLimitNodeThroughCleanupProject) {
  const std::string plan = Plan("SELECT k FROM t ORDER BY v DESC LIMIT 2");
  EXPECT_NE(plan.find("topk=2"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("Limit("), std::string::npos) << plan;

  auto r = session_.Sql("SELECT k FROM t ORDER BY v DESC LIMIT 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->num_rows(), 2);
  EXPECT_EQ((*r)->column(0).data().At({0}), 3.0);
  EXPECT_EQ((*r)->column(0).data().At({1}), 2.0);
}

}  // namespace
}  // namespace plan
}  // namespace tdp
