// The larger-than-memory differential harness (this PR's tentpole proof).
//
// A seeded driver builds tables whose columns exercise every key-code
// equivalence the spill paths must preserve — shuffled duplicate ints,
// doubles with NaN / -0 / +0 / dense duplicates, low-cardinality strings —
// then runs a fixed query battery (multi-key ORDER BY, fused-limit sort,
// hash joins, GROUP BY with every aggregate kind plus COUNT(DISTINCT),
// join+aggregate+sort compositions) under a budget sweep:
//
//     {unlimited, tight, pathological-1-byte}
//   x {streaming (morsels 7 / 4096 / default), legacy whole-relation}
//
// Every budgeted result must be BYTE-identical (NaN payloads and -0 signs
// included — stricter than value equality) to the unlimited in-memory
// reference. A 1-byte budget forces EVERY breaker through its external
// path, so sort runs, grace-join partitions, and aggregation pages all
// degenerate to their smallest shapes; tight budgets exercise the mixed
// regime where some breakers spill and others stay resident.
//
// The same suite pins the spill-file lifetime contract: after every run —
// completed, drained through a cursor, cancelled mid-flight, or abandoned
// by an early cursor close — `QueryMemory::LiveSpillFiles()` must return
// to its baseline (no leaked temp files).
//
// Registered in TDP_SANITIZER_TESTS and re-run as
// spill_differential_test_mt under TDP_NUM_THREADS=4 (see CMakeLists).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/exec/memory_budget.h"
#include "src/exec/result_cursor.h"
#include "src/exec/run_options.h"
#include "src/exec/spill.h"
#include "src/runtime/session.h"
#include "src/storage/table.h"

namespace tdp {
namespace {

using exec::QueryMemory;
using exec::RunOptions;

// ---- Byte-identity oracle ---------------------------------------------------

// Stricter than testutil::ExpectTablesBitIdentical (whose TensorEqual
// treats NaN != NaN): compares the raw bytes of each column's contiguous
// payload, so NaN bit patterns and -0 signs must survive the spill
// round-trip exactly.
void ExpectTablesByteIdentical(const Table& a, const Table& b,
                               const std::string& what) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  ASSERT_EQ(a.num_columns(), b.num_columns()) << what;
  for (int64_t c = 0; c < a.num_columns(); ++c) {
    const Column& ca = a.column(c);
    const Column& cb = b.column(c);
    ASSERT_EQ(ca.encoding(), cb.encoding()) << what << " column " << c;
    ASSERT_EQ(ca.dictionary(), cb.dictionary()) << what << " column " << c;
    ASSERT_EQ(ca.domain(), cb.domain()) << what << " column " << c;
    const Tensor ta = ca.data().Contiguous();
    const Tensor tb = cb.data().Contiguous();
    ASSERT_EQ(ta.dtype(), tb.dtype()) << what << " column " << c;
    ASSERT_EQ(ta.shape(), tb.shape()) << what << " column " << c;
    const int64_t bytes = ta.numel() * DTypeSize(ta.dtype());
    EXPECT_EQ(std::memcmp(exec::TensorRawBytes(ta), exec::TensorRawBytes(tb),
                          static_cast<size_t>(bytes)),
              0)
        << what << " column " << c << " differs at the byte level";
  }
}

// ---- Seeded data ------------------------------------------------------------

constexpr int64_t kRows = 3000;

void RegisterTables(Session& session, uint64_t seed) {
  Rng rng(seed);
  const double nan = std::numeric_limits<double>::quiet_NaN();

  std::vector<int64_t> id(kRows), val(kRows);
  std::vector<double> score(kRows);
  std::vector<std::string> tag(kRows), grp(kRows);
  const std::vector<std::string> tags = {"red", "green", "blue", "teal", ""};
  const std::vector<std::string> grps = {"east", "west", "north", "south",
                                         "up", "down"};
  for (int64_t i = 0; i < kRows; ++i) {
    id[i] = rng.UniformInt(0, kRows / 3);  // heavy duplicates
    val[i] = rng.UniformInt(-1000, 1000);
    const int64_t shape = rng.UniformInt(0, 9);
    if (shape == 0) {
      score[i] = nan;  // NaN ties (one shared order code)
    } else if (shape == 1) {
      score[i] = rng.Bernoulli(0.5) ? -0.0 : 0.0;  // -0 / +0 ties
    } else if (shape <= 4) {
      score[i] = static_cast<double>(rng.UniformInt(-4, 4));  // dense dups
    } else {
      score[i] = rng.Uniform(-1e6, 1e6);
    }
    tag[i] = tags[rng.UniformInt(0, static_cast<int64_t>(tags.size()) - 1)];
    grp[i] = grps[rng.UniformInt(0, static_cast<int64_t>(grps.size()) - 1)];
  }
  auto rows = TableBuilder("rows")
                  .AddInt64("id", id)
                  .AddInt64("val", val)
                  .AddFloat64("score", score)
                  .AddStrings("tag", tag)
                  .AddStrings("grp", grp)
                  .Build();
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_TRUE(session.RegisterTable("rows", rows.value()).ok());

  // The join's build side: one row per group value plus a dangling group
  // (never matched) so joins drop rows too.
  auto dims = TableBuilder("dims")
                  .AddStrings("name", {"east", "west", "north", "south", "up",
                                       "down", "sideways"})
                  .AddInt64("bonus", {10, 20, 30, 40, 50, 60, 70})
                  .Build();
  ASSERT_TRUE(dims.ok()) << dims.status().ToString();
  ASSERT_TRUE(session.RegisterTable("dims", dims.value()).ok());
}

// The query battery. Join probe order, aggregate group order, and sort
// ties are all deterministic by construction, so results are compared
// positionally with no normalizing sort.
const std::vector<std::string>& Queries() {
  static const std::vector<std::string> queries = {
      // Multi-key sort: string key, float key with NaN/-0 ties, int
      // tiebreak; stability across equal full keys.
      "SELECT id, score, tag FROM rows ORDER BY tag, score DESC, id",
      // Fused-limit sort: the external merge must truncate identically.
      "SELECT id, score FROM rows ORDER BY score, id DESC LIMIT 123",
      // Ascending float sort, no tiebreak: ties resolved by stability.
      "SELECT score FROM rows ORDER BY score",
      // Hash join, no ORDER BY: emission order itself is the contract.
      "SELECT r.id, r.score, d.bonus FROM rows r JOIN dims d "
      "ON r.grp = d.name WHERE r.val > 0",
      // Grouped aggregation: every kind over ints and doubles, plus
      // COUNT(DISTINCT) over a dictionary column.
      "SELECT grp, COUNT(*) AS n, SUM(score) AS s, AVG(score) AS a, "
      "MIN(val) AS lo, MAX(val) AS hi, COUNT(DISTINCT tag) AS dt "
      "FROM rows GROUP BY grp ORDER BY grp",
      // Global (keyless) aggregate: a single group spanning every page.
      "SELECT COUNT(*), SUM(val), AVG(val), COUNT(DISTINCT grp) FROM rows",
      // Join + aggregate + sort: all three breakers spill in one plan.
      "SELECT d.bonus, COUNT(*) AS n, SUM(r.score) AS s FROM rows r "
      "JOIN dims d ON r.grp = d.name GROUP BY d.bonus ORDER BY d.bonus",
      // DISTINCT rides the same breaker infrastructure downstream of a
      // budgeted sort.
      "SELECT DISTINCT tag, grp FROM rows ORDER BY tag, grp",
  };
  return queries;
}

struct ExecConfig {
  bool streaming;
  int64_t morsel_rows;
  std::string label;
};

const std::vector<ExecConfig>& Configs() {
  static const std::vector<ExecConfig> configs = {
      {true, 0, "streaming/default"},
      {true, 7, "streaming/morsel=7"},
      {true, 4096, "streaming/morsel=4096"},
      {false, 0, "legacy"},
  };
  return configs;
}

// Budgets: 0 = unlimited reference; 32 KB spills the large breakers while
// small ones stay resident; 1 byte forces every breaker external.
const std::vector<int64_t> kBudgets = {0, 32 * 1024, 1};

class SpillDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpillDifferentialTest, BudgetedRunsAreByteIdentical) {
  Session session;
  RegisterTables(session, GetParam());
  const int64_t live_before = QueryMemory::LiveSpillFiles();

  for (const std::string& sql : Queries()) {
    // Reference: unlimited, streaming, default morsel.
    auto reference = session.Sql(sql);
    ASSERT_TRUE(reference.ok()) << sql << "\n"
                                << reference.status().ToString();

    for (const ExecConfig& config : Configs()) {
      for (int64_t budget : kBudgets) {
        RunOptions run;
        run.exec.streaming = config.streaming;
        run.exec.morsel_rows = config.morsel_rows;
        run.memory_budget_bytes = budget;
        const std::string what =
            sql + " [" + config.label + " budget=" + std::to_string(budget) +
            "]";
        auto result = session.Sql(sql, {}, run);
        ASSERT_TRUE(result.ok()) << what << "\n"
                                 << result.status().ToString();
        ExpectTablesByteIdentical(*reference.value(), *result.value(), what);
      }
    }
    EXPECT_EQ(QueryMemory::LiveSpillFiles(), live_before)
        << "leaked spill files after " << sql;
  }
}

TEST_P(SpillDifferentialTest, PathologicalBudgetOnPathologicalShapes) {
  Session session;
  RegisterTables(session, GetParam());

  // Shapes that stress the externals' edges: single-row output, empty
  // input, one giant group, all-NaN key pages.
  const std::vector<std::string> edge_queries = {
      "SELECT id FROM rows WHERE val > 2000 ORDER BY id",      // empty input
      "SELECT COUNT(*) FROM rows WHERE val > 2000",            // empty agg
      "SELECT id, score FROM rows ORDER BY score LIMIT 1",     // limit 1
      "SELECT tag, COUNT(*) FROM rows WHERE score <> score "
      "GROUP BY tag ORDER BY tag",                             // NaN-only rows
  };
  for (const std::string& sql : edge_queries) {
    auto reference = session.Sql(sql);
    ASSERT_TRUE(reference.ok()) << sql << "\n"
                                << reference.status().ToString();
    for (const ExecConfig& config : Configs()) {
      RunOptions run;
      run.exec.streaming = config.streaming;
      run.exec.morsel_rows = config.morsel_rows;
      run.memory_budget_bytes = 1;
      auto result = session.Sql(sql, {}, run);
      ASSERT_TRUE(result.ok()) << sql << " [" << config.label << "]\n"
                               << result.status().ToString();
      ExpectTablesByteIdentical(*reference.value(), *result.value(),
                                sql + " [" + config.label + " budget=1]");
    }
  }
}

TEST_P(SpillDifferentialTest, CursorDrainMatchesRun) {
  Session session;
  RegisterTables(session, GetParam());
  const int64_t live_before = QueryMemory::LiveSpillFiles();

  const std::string sql =
      "SELECT id, score, tag FROM rows ORDER BY tag, score DESC, id";
  auto reference = session.Sql(sql);
  ASSERT_TRUE(reference.ok());

  RunOptions run;
  run.memory_budget_bytes = 1;
  auto cursor = session.Execute(sql, {}, run);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();

  std::vector<exec::Chunk> chunks;
  while (true) {
    auto next = cursor.value()->Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    if (!next.value().has_value()) break;
    chunks.push_back(std::move(next.value().value()));
  }
  // The producer released its spill files when the stream ended — before
  // the cursor object itself dies.
  EXPECT_EQ(QueryMemory::LiveSpillFiles(), live_before);

  ASSERT_FALSE(chunks.empty());
  std::vector<Column> merged;
  for (size_t c = 0; c < chunks[0].columns.size(); ++c) {
    std::vector<Column> parts;
    for (const auto& chunk : chunks) parts.push_back(chunk.columns[c]);
    merged.push_back(Column::Concat(parts));
  }
  TableBuilder builder("drained");
  for (size_t c = 0; c < merged.size(); ++c) {
    builder.AddColumn(chunks[0].names[c], merged[c]);
  }
  auto drained = builder.Build();
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  ExpectTablesByteIdentical(*reference.value(), *drained.value(),
                            "cursor drain");
}

TEST_P(SpillDifferentialTest, EarlyCursorCloseReleasesSpillFiles) {
  Session session;
  RegisterTables(session, GetParam());
  const int64_t live_before = QueryMemory::LiveSpillFiles();
  const int64_t spilled_before = QueryMemory::TotalBytesSpilled();

  {
    RunOptions run;
    run.memory_budget_bytes = 1;
    run.exec.morsel_rows = 7;  // many result chunks: the drain stays early
    auto cursor = session.Execute(
        "SELECT id, score FROM rows ORDER BY score, id", {}, run);
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    auto first = cursor.value()->Next();
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    // Abandon the rest: the destructor closes the cursor, cancelling the
    // producer at the next morsel boundary.
  }
  EXPECT_EQ(QueryMemory::LiveSpillFiles(), live_before)
      << "early cursor close leaked spill files";
  EXPECT_GT(QueryMemory::TotalBytesSpilled(), spilled_before)
      << "the budgeted sort never actually spilled";
}

TEST_P(SpillDifferentialTest, CancellationMidSpillReleasesSpillFiles) {
  Session session;
  RegisterTables(session, GetParam());
  const int64_t live_before = QueryMemory::LiveSpillFiles();

  // Race a cancel against a budgeted three-breaker query. Whatever the
  // outcome — cancelled mid-spill, cancelled while queueing results, or
  // completed before the token flipped — no spill file may survive.
  for (int trial = 0; trial < 8; ++trial) {
    RunOptions run;
    run.memory_budget_bytes = 1;
    run.cancel = std::make_shared<exec::CancellationToken>();
    std::thread canceller([&run, trial] {
      // Sweep the cancellation point across the run's lifetime.
      std::this_thread::sleep_for(std::chrono::microseconds(50 * trial));
      run.cancel->Cancel();
    });
    auto result = session.Sql(
        "SELECT d.bonus, COUNT(*) AS n, SUM(r.score) AS s FROM rows r "
        "JOIN dims d ON r.grp = d.name GROUP BY d.bonus ORDER BY d.bonus",
        {}, run);
    canceller.join();
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
          << result.status().ToString();
    }
    EXPECT_EQ(QueryMemory::LiveSpillFiles(), live_before)
        << "trial " << trial << " leaked spill files";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpillDifferentialTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace tdp
