#include "src/baseline/baseline_db.h"

#include <gtest/gtest.h>

namespace tdp {
namespace baseline {
namespace {

BaselineTable MakeSales() {
  BaselineTable t;
  t.column_names = {"id", "region", "amount"};
  t.rows = {
      {int64_t{1}, std::string("east"), 10.0},
      {int64_t{2}, std::string("west"), 20.0},
      {int64_t{3}, std::string("east"), 30.0},
      {int64_t{4}, std::string("north"), 40.0},
  };
  return t;
}

TEST(BaselineDbTest, SelectWhere) {
  BaselineDb db;
  ASSERT_TRUE(db.RegisterTable("sales", MakeSales()).ok());
  auto r = db.Sql("SELECT id FROM sales WHERE amount > 15");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 3u);
}

TEST(BaselineDbTest, GroupByAggregates) {
  BaselineDb db;
  ASSERT_TRUE(db.RegisterTable("sales", MakeSales()).ok());
  auto r = db.Sql(
      "SELECT region, COUNT(*), SUM(amount) FROM sales GROUP BY region "
      "ORDER BY region");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(std::get<std::string>(r->rows[0][0]), "east");
  EXPECT_EQ(std::get<int64_t>(r->rows[0][1]), 2);
  EXPECT_DOUBLE_EQ(std::get<double>(r->rows[0][2]), 40.0);
}

TEST(BaselineDbTest, GlobalAvg) {
  BaselineDb db;
  ASSERT_TRUE(db.RegisterTable("sales", MakeSales()).ok());
  auto r = db.Sql("SELECT AVG(amount) FROM sales");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(r->rows[0][0]), 25.0);
}

TEST(BaselineDbTest, JoinAndSubquery) {
  BaselineDb db;
  ASSERT_TRUE(db.RegisterTable("sales", MakeSales()).ok());
  BaselineTable regions;
  regions.column_names = {"name", "pop"};
  regions.rows = {{std::string("east"), int64_t{100}},
                  {std::string("west"), int64_t{200}}};
  ASSERT_TRUE(db.RegisterTable("regions", regions).ok());
  auto r = db.Sql(
      "SELECT s.id FROM sales s JOIN regions r ON s.region = r.name "
      "ORDER BY s.id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 3u);

  auto sub = db.Sql(
      "SELECT big FROM (SELECT amount AS big FROM sales WHERE id > 1) t "
      "WHERE big < 40");
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  EXPECT_EQ(sub->rows.size(), 2u);
}

TEST(BaselineDbTest, RejectsUdfs) {
  BaselineDb db;
  ASSERT_TRUE(db.RegisterTable("sales", MakeSales()).ok());
  EXPECT_FALSE(db.Sql("SELECT my_udf(amount) FROM sales").ok());
}

TEST(BaselineDbTest, DistinctLimitOffset) {
  BaselineDb db;
  ASSERT_TRUE(db.RegisterTable("sales", MakeSales()).ok());
  auto d = db.Sql("SELECT DISTINCT region FROM sales");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->rows.size(), 3u);
  auto l = db.Sql("SELECT id FROM sales ORDER BY id DESC LIMIT 2 OFFSET 1");
  ASSERT_TRUE(l.ok());
  ASSERT_EQ(l->rows.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(l->rows[0][0]), 3);
}

}  // namespace
}  // namespace baseline
}  // namespace tdp
