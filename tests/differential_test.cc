// Differential testing: TDP's tensor query processor and BaselineDB (an
// independent row-interpreted engine sharing only the parser) must agree
// on randomized relational queries. This is the main correctness oracle
// for the compiled tensor operators.
//
// The top-k section at the bottom is a second differential axis: the
// IndexTopK plan (vector index) against the exact Sort+Limit plan over
// the same data, swept across random (n, d, k, num_lists) shapes — at
// full probe count the two must be BIT-identical, and at a quarter of the
// lists recall@k must stay high on clustered data.

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>
#include <set>
#include <sstream>

#include "src/baseline/baseline_db.h"
#include "src/common/rng.h"
#include "src/runtime/session.h"
#include "src/tensor/ops.h"
#include "tests/vector_test_util.h"

namespace tdp {
namespace {

struct Engines {
  Session tdp;
  baseline::BaselineDb base;
};

// Registers the same random table in both engines.
void MakeRandomTable(Engines& engines, Rng& rng, int64_t rows) {
  std::vector<int64_t> ints;
  std::vector<double> floats;
  std::vector<std::string> strings;
  std::vector<std::string> vocab = {"red", "green", "blue", "cyan", "gold"};
  baseline::BaselineTable bt;
  bt.column_names = {"k", "v", "tag"};
  for (int64_t i = 0; i < rows; ++i) {
    ints.push_back(rng.UniformInt(0, 9));
    // One-decimal values avoid float32-vs-double aggregation divergence.
    floats.push_back(static_cast<double>(rng.UniformInt(-50, 50)) / 2.0);
    strings.push_back(vocab[static_cast<size_t>(rng.UniformInt(0, 4))]);
    bt.rows.push_back({ints.back(), floats.back(), strings.back()});
  }
  auto table = TableBuilder("t")
                   .AddInt64("k", ints)
                   .AddFloat64("v", floats)
                   .AddStrings("tag", strings)
                   .Build();
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(engines.tdp.RegisterTable("t", table.value()).ok());
  ASSERT_TRUE(engines.base.RegisterTable("t", std::move(bt)).ok());
}

std::string NormalizeCell(double v) {
  // Round to 1e-4 so float32 vs double arithmetic agrees textually.
  std::ostringstream os;
  os.precision(10);
  os << std::round(v * 1e4) / 1e4;
  return os.str();
}

// Renders both engines' results as sorted multisets of row strings.
std::vector<std::string> TdpRows(const Table& table) {
  std::vector<std::string> rows;
  std::vector<std::vector<std::string>> decoded(
      static_cast<size_t>(table.num_columns()));
  for (int64_t c = 0; c < table.num_columns(); ++c) {
    if (table.column(c).encoding() == Encoding::kDictionary) {
      decoded[static_cast<size_t>(c)] = table.column(c).DecodeStrings();
    }
  }
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    std::string row;
    for (int64_t c = 0; c < table.num_columns(); ++c) {
      const Column& col = table.column(c);
      if (col.encoding() == Encoding::kDictionary) {
        row += decoded[static_cast<size_t>(c)][static_cast<size_t>(r)];
      } else {
        row += NormalizeCell(col.data().At({r}));
      }
      row += "|";
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::string> BaselineRows(const baseline::BaselineTable& table) {
  std::vector<std::string> rows;
  for (const auto& in_row : table.rows) {
    std::string row;
    for (const auto& v : in_row) {
      if (std::holds_alternative<std::string>(v)) {
        row += std::get<std::string>(v);
      } else if (std::holds_alternative<int64_t>(v)) {
        row += NormalizeCell(static_cast<double>(std::get<int64_t>(v)));
      } else if (std::holds_alternative<bool>(v)) {
        row += NormalizeCell(std::get<bool>(v) ? 1 : 0);
      } else {
        row += NormalizeCell(std::get<double>(v));
      }
      row += "|";
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

void ExpectAgree(Engines& engines, const std::string& sql) {
  auto tdp_result = engines.tdp.Sql(sql);
  auto base_result = engines.base.Sql(sql);
  ASSERT_TRUE(tdp_result.ok()) << sql << "\n" << tdp_result.status().ToString();
  ASSERT_TRUE(base_result.ok()) << sql << "\n"
                                << base_result.status().ToString();
  EXPECT_EQ(TdpRows(**tdp_result), BaselineRows(*base_result)) << sql;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, RandomQueriesAgree) {
  Rng rng(GetParam());
  Engines engines;
  MakeRandomTable(engines, rng, 40 + GetParam() * 7 % 60);

  const int64_t a = rng.UniformInt(0, 9);
  const int64_t b = rng.UniformInt(-20, 20);
  const std::string tag =
      std::vector<std::string>{"red", "green", "blue",
                               "missing"}[rng.UniformInt(0, 3)];

  ExpectAgree(engines, "SELECT k, v FROM t WHERE k > " + std::to_string(a));
  ExpectAgree(engines, "SELECT k + 1, v * 2 FROM t WHERE v <= " +
                           std::to_string(b));
  ExpectAgree(engines, "SELECT tag FROM t WHERE tag = '" + tag + "'");
  ExpectAgree(engines, "SELECT tag FROM t WHERE tag >= '" + tag + "'");
  ExpectAgree(engines,
              "SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k ORDER BY k");
  ExpectAgree(engines,
              "SELECT tag, AVG(v), MIN(v), MAX(v) FROM t GROUP BY tag "
              "ORDER BY tag");
  ExpectAgree(engines,
              "SELECT tag, COUNT(*) FROM t WHERE k BETWEEN 2 AND 7 GROUP BY "
              "tag HAVING COUNT(*) > 1 ORDER BY tag");
  ExpectAgree(engines, "SELECT DISTINCT tag FROM t");
  ExpectAgree(engines, "SELECT k, v FROM t ORDER BY v DESC, k ASC LIMIT 5");
  ExpectAgree(engines,
              "SELECT COUNT(DISTINCT k), COUNT(*) FROM t WHERE v > 0");
  ExpectAgree(engines,
              "SELECT x FROM (SELECT k + 1 AS x FROM t WHERE v > 0) s "
              "WHERE x < 8 ORDER BY x");
  ExpectAgree(engines,
              "SELECT CASE WHEN v > 0 THEN 1 ELSE 0 END AS pos, COUNT(*) "
              "FROM t GROUP BY CASE WHEN v > 0 THEN 1 ELSE 0 END ORDER BY "
              "pos");
  ExpectAgree(engines, "SELECT k FROM t WHERE tag IN ('red', 'blue') "
                       "ORDER BY k LIMIT 10");
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 13));

// ---- Index top-k vs. brute-force differential -------------------------------

namespace {

using testutil::ExpectTablesBitIdentical;
using testutil::MakeClusteredUnitVectors;

}  // namespace

class TopKDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

// Seeded generator of top-k query shapes: random n, d, k, list count, and
// probe budgets. The invariant under test is the acceptance criterion of
// the index subsystem: with num_probes == num_lists the IndexTopK plan is
// bit-identical to the brute-force Sort+Limit plan — same rows, same
// order, same bytes, ties included.
TEST_P(TopKDifferentialTest, FullProbeIndexPlanIsBitIdenticalToBrute) {
  Rng rng(GetParam() * 7919 + 101);
  const int64_t n = rng.UniformInt(30, 400);
  const int64_t dim = std::vector<int64_t>{4, 8, 16}[rng.UniformInt(0, 2)];
  const int64_t clusters = rng.UniformInt(2, 10);
  const int64_t num_lists = rng.UniformInt(2, 16);
  const int64_t k = rng.UniformInt(1, n + 5);  // may exceed the table

  Session session;
  std::vector<int64_t> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  auto table = TableBuilder("vecs")
                   .AddInt64("id", ids)
                   .AddTensor("emb",
                              MakeClusteredUnitVectors(n, dim, clusters, rng))
                   .Build();
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session.RegisterTable("vecs", table.value()).ok());

  const std::string sql =
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC LIMIT " +
      std::to_string(k);
  // Pin the brute plan before the index exists.
  auto brute = session.Query(sql);
  ASSERT_TRUE(brute.ok()) << brute.status().ToString();
  ASSERT_EQ((*brute)->Explain().find("IndexTopK"), std::string::npos);

  index::IvfIndex::Options options;
  options.num_lists = num_lists;
  ASSERT_TRUE(session.CreateVectorIndex("vecs", "emb", options).ok());
  auto indexed = session.Query(sql);
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  ASSERT_NE((*indexed)->Explain().find("IndexTopK"), std::string::npos);

  for (int q = 0; q < 4; ++q) {
    const Tensor query =
        L2Normalize(RandNormal({1, dim}, 0, 1, rng), 1).Squeeze(0)
            .Contiguous();
    exec::RunOptions brute_run;
    brute_run.params = {exec::ScalarValue::FromTensor(query)};
    auto expected = (*brute)->Run(brute_run);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    // Default (0 = every cell) and explicit full/over-clamped budgets.
    for (int64_t probes :
         {int64_t{0}, num_lists, num_lists + 7}) {
      exec::RunOptions run;
      run.params = {exec::ScalarValue::FromTensor(query)};
      run.vector_search.num_probes = probes;
      auto got = (*indexed)->Run(run);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectTablesBitIdentical(
          **expected, **got,
          "seed=" + std::to_string(GetParam()) + " n=" + std::to_string(n) +
              " d=" + std::to_string(dim) + " k=" + std::to_string(k) +
              " lists=" + std::to_string(num_lists) +
              " probes=" + std::to_string(probes));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKDifferentialTest,
                         ::testing::Range<uint64_t>(1, 9));

// Recall at a quarter of the lists on clustered data: the approximate
// regime the paper's probe/recall trade-off targets.
TEST(TopKDifferentialTest2, RecallAtQuarterProbesExceedsPointNine) {
  Rng rng(4242);
  const int64_t n = 600, dim = 16, num_lists = 12, k = 10;
  Session session;
  std::vector<int64_t> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  const Tensor emb = MakeClusteredUnitVectors(n, dim, num_lists, rng);
  auto table =
      TableBuilder("vecs").AddInt64("id", ids).AddTensor("emb", emb).Build();
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session.RegisterTable("vecs", table.value()).ok());
  index::IvfIndex::Options options;
  options.num_lists = num_lists;
  ASSERT_TRUE(session.CreateVectorIndex("vecs", "emb", options).ok());

  auto query = session.Prepare(
      "SELECT id, dot(emb, ?) AS sim FROM vecs ORDER BY sim DESC LIMIT 10");
  ASSERT_TRUE(query.ok());
  double recall = 0;
  const int kQueries = 12;
  for (int q = 0; q < kQueries; ++q) {
    // Queries near data points, as in serving: perturb a random row.
    const int64_t anchor = rng.UniformInt(0, n - 1);
    const Tensor qvec =
        L2Normalize(
            Add(Slice(emb, 0, anchor, 1), RandNormal({1, dim}, 0, 0.02, rng)),
            1)
            .Squeeze(0)
            .Contiguous();
    exec::RunOptions exact;
    exact.params = {exec::ScalarValue::FromTensor(qvec)};
    auto truth = (*query)->Run(exact);
    ASSERT_TRUE(truth.ok());
    std::set<int64_t> exact_ids;
    for (int64_t i = 0; i < k; ++i) {
      exact_ids.insert(
          static_cast<int64_t>((*truth)->column(0).data().At({i})));
    }
    exec::RunOptions approx;
    approx.params = {exec::ScalarValue::FromTensor(qvec)};
    approx.vector_search.num_probes = num_lists / 4;
    auto got = (*query)->Run(approx);
    ASSERT_TRUE(got.ok());
    for (int64_t i = 0; i < (*got)->num_rows(); ++i) {
      if (exact_ids.contains(
              static_cast<int64_t>((*got)->column(0).data().At({i})))) {
        recall += 1;
      }
    }
  }
  recall /= static_cast<double>(kQueries * k);
  EXPECT_GE(recall, 0.9);
}

TEST(DifferentialJoinTest, JoinAgrees) {
  Rng rng(99);
  Engines engines;
  MakeRandomTable(engines, rng, 30);
  // Second table keyed by the same small int domain.
  std::vector<int64_t> keys;
  std::vector<double> weights;
  baseline::BaselineTable bt;
  bt.column_names = {"k2", "w"};
  for (int64_t i = 0; i < 12; ++i) {
    keys.push_back(rng.UniformInt(0, 9));
    weights.push_back(static_cast<double>(rng.UniformInt(0, 100)));
    bt.rows.push_back({keys.back(), weights.back()});
  }
  auto table = TableBuilder("u")
                   .AddInt64("k2", keys)
                   .AddFloat64("w", weights)
                   .Build();
  ASSERT_TRUE(engines.tdp.RegisterTable("u", table.value()).ok());
  ASSERT_TRUE(engines.base.RegisterTable("u", std::move(bt)).ok());

  ExpectAgree(engines,
              "SELECT t.k, u.w FROM t JOIN u ON t.k = u.k2 WHERE u.w > 20 "
              "ORDER BY t.k, u.w");
  ExpectAgree(engines,
              "SELECT t.tag, COUNT(*) FROM t JOIN u ON t.k = u.k2 GROUP BY "
              "t.tag ORDER BY t.tag");
}

}  // namespace
}  // namespace tdp
