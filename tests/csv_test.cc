#include "src/io/csv.h"

#include <gtest/gtest.h>

#include "src/runtime/session.h"

namespace tdp {
namespace io {
namespace {

TEST(CsvTest, TypeInference) {
  auto table = ReadCsvString(
      "id,score,name,active\n"
      "1,0.5,alice,true\n"
      "2,1.5,bob,false\n"
      "3,-2,carol,true\n",
      "people");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->num_rows(), 3);
  EXPECT_EQ((*table)->column(0).data().dtype(), DType::kInt64);
  EXPECT_EQ((*table)->column(1).data().dtype(), DType::kFloat64);
  EXPECT_EQ((*table)->column(2).encoding(), Encoding::kDictionary);
  EXPECT_EQ((*table)->column(3).data().dtype(), DType::kBool);
  EXPECT_EQ((*table)->column(2).DecodeStrings()[1], "bob");
}

TEST(CsvTest, IntegersPreferedOverFloats) {
  auto t = ReadCsvString("x\n1\n2\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->column(0).data().dtype(), DType::kInt64);
  auto f = ReadCsvString("x\n1\n2.5\n", "t");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->column(0).data().dtype(), DType::kFloat64);
}

TEST(CsvTest, QuotedFieldsAndEscapes) {
  auto table = ReadCsvString(
      "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\nplain,text\n", "t");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  const auto strings = (*table)->column(0).DecodeStrings();
  EXPECT_EQ(strings[0], "hello, world");
  EXPECT_EQ((*table)->column(1).DecodeStrings()[0], "say \"hi\"");
}

TEST(CsvTest, HeaderlessAndCustomDelimiter) {
  CsvOptions options;
  options.has_header = false;
  options.delimiter = ';';
  auto table = ReadCsvString("1;x\n2;y\n", "t", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->column_names()[0], "c0");
  EXPECT_EQ((*table)->num_rows(), 2);
}

TEST(CsvTest, Errors) {
  EXPECT_FALSE(ReadCsvString("", "t").ok());
  EXPECT_FALSE(ReadCsvString("a,b\n1\n", "t").ok());  // ragged row
  EXPECT_FALSE(ReadCsvFile("/nonexistent/file.csv", "t").ok());
}

TEST(CsvTest, RoundTrip) {
  const std::string csv =
      "k,v,tag\n"
      "1,0.5,red\n"
      "2,1.25,blue\n";
  auto table = ReadCsvString(csv, "t");
  ASSERT_TRUE(table.ok());
  auto out = WriteCsvString(**table);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto again = ReadCsvString(*out, "t2");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->num_rows(), 2);
  EXPECT_EQ((*again)->column(2).DecodeStrings(),
            (std::vector<std::string>{"red", "blue"}));
  EXPECT_EQ((*again)->column(1).data().At({1}), 1.25);
}

TEST(CsvTest, WriteRejectsTensorColumns) {
  auto table = TableBuilder("t")
                   .AddTensor("img", Tensor::Zeros({2, 1, 2, 2}))
                   .Build();
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(WriteCsvString(**table).ok());
}

TEST(CsvTest, IngestedCsvIsQueryable) {
  Session session;
  auto table = ReadCsvString(
      "region,amount\neast,10\nwest,20\neast,30\n", "sales");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session.RegisterTable("sales", table.value()).ok());
  auto r = session.Sql(
      "SELECT region, SUM(amount) FROM sales GROUP BY region ORDER BY "
      "region");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 2);
  EXPECT_EQ((*r)->column(1).data().At({0}), 40.0);
}

TEST(CsvTest, FileRoundTrip) {
  auto table = TableBuilder("t")
                   .AddInt64("a", {1, 2})
                   .AddStrings("b", {"x", "y"})
                   .Build();
  ASSERT_TRUE(table.ok());
  const std::string path = ::testing::TempDir() + "/tdp_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(**table, path).ok());
  auto loaded = ReadCsvFile(path, "t2");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_rows(), 2);
}

}  // namespace
}  // namespace io
}  // namespace tdp
