#include <gtest/gtest.h>

#include "src/data/attachments.h"
#include "src/data/documents.h"
#include "src/models/clip.h"
#include "src/models/cnn.h"
#include "src/models/ocr.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace models {
namespace {

TEST(SimClipTest, EmbeddingsAreUnitNorm) {
  Rng rng(1);
  SimClip clip;
  Tensor images = Cat({Unsqueeze(data::RenderConceptImage(
                           data::Concept::kDog, rng), 0),
                       Unsqueeze(data::RenderConceptImage(
                           data::Concept::kBeach, rng), 0)},
                      0);
  Tensor e = clip.EncodeImages(images);
  EXPECT_EQ(e.shape(), (std::vector<int64_t>{2, SimClip::kEmbeddingDim}));
  Tensor norms = Sqrt(Sum(Mul(e, e), 1, false));
  EXPECT_TRUE(AllClose(norms, Tensor::Ones({2}), 1e-3, 1e-3));
}

TEST(SimClipTest, MatchingConceptsScoreHigherThanNonMatching) {
  Rng rng(2);
  SimClip clip;
  std::vector<Tensor> receipts, dogs;
  for (int i = 0; i < 10; ++i) {
    receipts.push_back(Unsqueeze(
        data::RenderConceptImage(data::Concept::kStoreReceipt, rng), 0));
    dogs.push_back(
        Unsqueeze(data::RenderConceptImage(data::Concept::kDog, rng), 0));
  }
  Tensor receipt_batch = Cat(receipts, 0);
  Tensor dog_batch = Cat(dogs, 0);

  auto receipt_scores = clip.Similarity("receipt", receipt_batch);
  auto cross_scores = clip.Similarity("receipt", dog_batch);
  ASSERT_TRUE(receipt_scores.ok());
  ASSERT_TRUE(cross_scores.ok());
  const float match = Mean(*receipt_scores).item<float>();
  const float cross = Mean(*cross_scores).item<float>();
  EXPECT_GT(match, 0.85f);
  EXPECT_LT(cross, 0.6f);
}

TEST(SimClipTest, ThresholdSeparatesAtPointEight) {
  // The paper's queries use `similarity > 0.80`; verify per-image
  // separation, not just means.
  Rng rng(3);
  SimClip clip;
  int receipts_above = 0, dogs_above = 0;
  constexpr int kTrials = 25;
  for (int i = 0; i < kTrials; ++i) {
    Tensor receipt = Unsqueeze(
        data::RenderConceptImage(data::Concept::kKfcReceipt, rng), 0);
    Tensor dog =
        Unsqueeze(data::RenderConceptImage(data::Concept::kDog, rng), 0);
    if (clip.Similarity("receipt", receipt)->item<float>() > 0.8f) {
      ++receipts_above;
    }
    if (clip.Similarity("receipt", dog)->item<float>() > 0.8f) {
      ++dogs_above;
    }
  }
  EXPECT_GE(receipts_above, kTrials - 2);
  EXPECT_LE(dogs_above, 1);
}

TEST(SimClipTest, SpecificBeatsCoarseConcept) {
  Rng rng(4);
  SimClip clip;
  Tensor kfc = Unsqueeze(
      data::RenderConceptImage(data::Concept::kKfcReceipt, rng), 0);
  Tensor store = Unsqueeze(
      data::RenderConceptImage(data::Concept::kStoreReceipt, rng), 0);
  // "KFC Receipt" should rank the KFC receipt above the store receipt.
  const float kfc_score =
      clip.Similarity("KFC Receipt", kfc)->item<float>();
  const float store_score =
      clip.Similarity("KFC Receipt", store)->item<float>();
  EXPECT_GT(kfc_score, store_score);
}

TEST(SimClipTest, UnknownConceptIsNotFound) {
  SimClip clip;
  EXPECT_EQ(clip.EncodeText("quantum chromodynamics").status().code(),
            StatusCode::kNotFound);
}

TEST(SimClipTest, DeviceParity) {
  Rng rng(5);
  SimClip clip;
  Tensor image =
      Unsqueeze(data::RenderConceptImage(data::Concept::kBeach, rng), 0);
  auto cpu = clip.Similarity("beach", image);
  auto accel = clip.Similarity("beach", image.To(Device::kAccel));
  ASSERT_TRUE(cpu.ok() && accel.ok());
  EXPECT_NEAR(cpu->item<float>(), accel->item<float>(), 1e-4);
}

TEST(TileClassifierTest, ShapesAndParameterCounts) {
  Rng rng(6);
  auto model = MakeTileClassifier(10, rng);
  Tensor logits = model->Forward(
      Tensor::Zeros({4, 1, 12, 12}, DType::kFloat32, Device::kAccel));
  EXPECT_EQ(logits.shape(), (std::vector<int64_t>{4, 10}));
  EXPECT_GT(model->NumParameters(), 1000);

  auto cnn_small = MakeCnnSmallRegressor(rng);
  Tensor counts = cnn_small->Forward(
      Tensor::Zeros({2, 1, 36, 36}, DType::kFloat32, Device::kAccel));
  EXPECT_EQ(counts.shape(), (std::vector<int64_t>{2, 20}));

  auto resnet = MakeMiniResNetRegressor(rng);
  Tensor counts2 = resnet->Forward(
      Tensor::Zeros({2, 1, 36, 36}, DType::kFloat32, Device::kAccel));
  EXPECT_EQ(counts2.shape(), (std::vector<int64_t>{2, 20}));
  EXPECT_GT(resnet->NumParameters(), cnn_small->NumParameters() / 2);
}

TEST(TableOcrTest, ExtractsExactValuesFromCleanDocuments) {
  Rng rng(7);
  data::DocumentDataset docs = data::MakeDocumentDataset(5, rng);
  TableOcr ocr;
  int64_t correct = 0, total = 0;
  for (int64_t d = 0; d < 5; ++d) {
    auto values = ocr.ExtractTable(
        Slice(docs.images, 0, d, 1).Squeeze(0));
    ASSERT_TRUE(values.ok()) << values.status().ToString();
    for (int64_t r = 0; r < data::kDocRows; ++r) {
      for (int64_t c = 0; c < data::kDocCols; ++c) {
        ++total;
        if (std::abs(values->At({r, c}) - docs.values.At({d, r, c})) < 1e-4) {
          ++correct;
        }
      }
    }
  }
  EXPECT_GE(correct, total * 95 / 100)
      << "OCR accuracy too low: " << correct << "/" << total;
}

TEST(TableOcrTest, RejectsBlankImage) {
  TableOcr ocr;
  auto result = ocr.ExtractTable(
      Tensor::Zeros({1, data::kDocHeight, data::kDocWidth}));
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace models
}  // namespace tdp
