#include "src/tensor/tensor.h"

#include <cstring>
#include <mutex>
#include <sstream>

#include "src/tensor/dispatch.h"

namespace tdp {

std::vector<int64_t> ContiguousStrides(const std::vector<int64_t>& shape) {
  std::vector<int64_t> strides(shape.size());
  int64_t stride = 1;
  for (int64_t i = static_cast<int64_t>(shape.size()) - 1; i >= 0; --i) {
    strides[static_cast<size_t>(i)] = stride;
    stride *= shape[static_cast<size_t>(i)];
  }
  return strides;
}

int64_t ShapeNumel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

std::vector<int64_t> BroadcastShapes(const std::vector<int64_t>& a,
                                     const std::vector<int64_t>& b) {
  const size_t rank = std::max(a.size(), b.size());
  std::vector<int64_t> out(rank);
  for (size_t i = 0; i < rank; ++i) {
    const int64_t da = i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    const int64_t db = i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    TDP_CHECK(da == db || da == 1 || db == 1)
        << "cannot broadcast " << ShapeToString(a) << " with "
        << ShapeToString(b);
    // NumPy semantics: a size-1 dim stretches to the other dim — including
    // 0 (broadcasting against an empty tensor yields an empty result; a
    // predicate over an empty relation must produce an empty mask, not a
    // phantom row).
    out[i] = da == 1 ? db : da;
  }
  return out;
}

std::string ShapeToString(const std::vector<int64_t>& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

namespace {

std::shared_ptr<TensorImpl> MakeImpl(std::vector<int64_t> shape, DType dtype,
                                     Device device, bool zero) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->strides = ContiguousStrides(impl->shape);
  impl->dtype = dtype;
  impl->device = device;
  impl->buffer =
      Buffer::Allocate(ShapeNumel(impl->shape) * DTypeSize(dtype), zero);
  return impl;
}

}  // namespace

Tensor Tensor::Empty(std::vector<int64_t> shape, DType dtype, Device device) {
  return Tensor(MakeImpl(std::move(shape), dtype, device, /*zero=*/false));
}

Tensor Tensor::Zeros(std::vector<int64_t> shape, DType dtype, Device device) {
  return Tensor(MakeImpl(std::move(shape), dtype, device, /*zero=*/true));
}

Tensor Tensor::Ones(std::vector<int64_t> shape, DType dtype, Device device) {
  return Full(std::move(shape), 1.0, dtype, device);
}

Tensor Tensor::Full(std::vector<int64_t> shape, double value, DType dtype,
                    Device device) {
  Tensor t = Empty(std::move(shape), dtype, device);
  const int64_t n = t.numel();
  TDP_DISPATCH_ALL(dtype, {
    scalar_t* p = t.data<scalar_t>();
    const scalar_t v = static_cast<scalar_t>(value);
    for (int64_t i = 0; i < n; ++i) p[i] = v;
  });
  return t;
}

Tensor Tensor::Arange(int64_t n, DType dtype, Device device) {
  Tensor t = Empty({n}, dtype, device);
  TDP_DISPATCH_NUMERIC(dtype, {
    scalar_t* p = t.data<scalar_t>();
    for (int64_t i = 0; i < n; ++i) p[i] = static_cast<scalar_t>(i);
  });
  return t;
}

Tensor Tensor::Scalar(double value, DType dtype, Device device) {
  return Full({}, value, dtype, device);
}

int64_t Tensor::size(int64_t d) const {
  const int64_t rank = dim();
  if (d < 0) d += rank;
  TDP_CHECK(d >= 0 && d < rank) << "dim " << d << " out of range for rank "
                                << rank;
  return impl_->shape[static_cast<size_t>(d)];
}

MemFormat Tensor::format() const {
  MemFormat f = impl_->format.load(std::memory_order_relaxed);
  if (f == MemFormat::kUnknown) {
    f = impl_->strides == ContiguousStrides(impl_->shape)
            ? MemFormat::kRowMajor
            : MemFormat::kStrided;
    impl_->format.store(f, std::memory_order_relaxed);
  }
  return f;
}

double Tensor::At(const std::vector<int64_t>& index) const {
  TDP_CHECK_EQ(static_cast<int64_t>(index.size()), dim());
  int64_t off = impl_->offset;
  for (size_t i = 0; i < index.size(); ++i) {
    TDP_DCHECK(index[i] >= 0 && index[i] < impl_->shape[i]);
    off += index[i] * impl_->strides[i];
  }
  double out = 0;
  TDP_DISPATCH_ALL(impl_->dtype, {
    out = static_cast<double>(
        reinterpret_cast<const scalar_t*>(impl_->buffer->data())[off]);
  });
  return out;
}

void Tensor::SetAt(const std::vector<int64_t>& index, double value) {
  TDP_CHECK_EQ(static_cast<int64_t>(index.size()), dim());
  int64_t off = impl_->offset;
  for (size_t i = 0; i < index.size(); ++i) {
    TDP_DCHECK(index[i] >= 0 && index[i] < impl_->shape[i]);
    off += index[i] * impl_->strides[i];
  }
  TDP_DISPATCH_ALL(impl_->dtype, {
    reinterpret_cast<scalar_t*>(impl_->buffer->data())[off] =
        static_cast<scalar_t>(value);
  });
}

namespace {

// Copies the logical elements of `src` (any strides) into the contiguous
// buffer of `dst`. Shapes must match; dtypes must match.
void StridedCopy(const TensorImpl& src, TensorImpl& dst) {
  const int64_t n = ShapeNumel(src.shape);
  if (n == 0) return;
  const size_t rank = src.shape.size();
  const int64_t esize = DTypeSize(src.dtype);
  const uint8_t* sbase = src.buffer->data() + src.offset * esize;
  uint8_t* dbase = dst.buffer->data() + dst.offset * esize;
  if (rank == 0) {
    std::memcpy(dbase, sbase, static_cast<size_t>(esize));
    return;
  }
  std::vector<int64_t> idx(rank, 0);
  int64_t soff = 0;
  for (int64_t i = 0; i < n; ++i) {
    std::memcpy(dbase + i * esize, sbase + soff * esize,
                static_cast<size_t>(esize));
    // Odometer increment over the logical index space.
    for (int64_t d = static_cast<int64_t>(rank) - 1; d >= 0; --d) {
      const size_t ud = static_cast<size_t>(d);
      ++idx[ud];
      soff += src.strides[ud];
      if (idx[ud] < src.shape[ud]) break;
      soff -= idx[ud] * src.strides[ud];
      idx[ud] = 0;
    }
  }
}

}  // namespace

Tensor Tensor::Contiguous() const {
  if (is_contiguous() && impl_->offset == 0 &&
      numel() * DTypeSize(dtype()) == impl_->buffer->size_bytes()) {
    return *this;
  }
  if (is_contiguous()) {
    // A contiguous window into a larger buffer: cheap memcpy. Zero-size
    // views skip it — an empty buffer's data pointer may be null, and
    // memcpy(null, null, 0) is still UB (the pointers are declared
    // nonnull).
    Tensor out = Empty(shape(), dtype(), device());
    if (numel() > 0) {
      std::memcpy(out.impl()->buffer->data(),
                  impl_->buffer->data() + impl_->offset * DTypeSize(dtype()),
                  static_cast<size_t>(numel() * DTypeSize(dtype())));
    }
    out.impl()->requires_grad = impl_->requires_grad;
    out.impl()->grad_fn = impl_->grad_fn;
    return out;
  }
  Tensor out = Empty(shape(), dtype(), device());
  StridedCopy(*impl_, *out.impl());
  out.impl()->requires_grad = impl_->requires_grad;
  out.impl()->grad_fn = impl_->grad_fn;
  return out;
}

Tensor Tensor::RowMajor() const {
  if (format() == MemFormat::kRowMajor) return *this;
  // Reorders are expensive relative to a lock, and only strided views
  // reach here; one global mutex keeps concurrent first-reorders of a
  // shared impl (e.g. two queries hitting the same weight view) race-free.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  if (!impl_->reorder) {
    Tensor out = Empty(shape(), dtype(), device());
    StridedCopy(*impl_, *out.impl());
    impl_->reorder = out.impl();
  }
  return Tensor(impl_->reorder);
}

Tensor Tensor::Clone() const {
  Tensor out = Empty(shape(), dtype(), device());
  StridedCopy(*impl_, *out.impl());
  return out;
}

Tensor Tensor::To(Device device) const {
  if (device == impl_->device) return *this;
  Tensor out = Clone();
  out.impl()->device = device;
  return out;
}

Tensor Tensor::To(DType new_dtype) const {
  if (new_dtype == impl_->dtype) return *this;
  Tensor src = Contiguous();
  Tensor out = Empty(shape(), new_dtype, device());
  const int64_t n = numel();
  TDP_DISPATCH_ALL(new_dtype, {
    using dst_t = scalar_t;
    dst_t* dp = out.data<dst_t>();
    TDP_DISPATCH_ALL(src.dtype(), {
      const scalar_t* sp = src.data<scalar_t>();
      for (int64_t i = 0; i < n; ++i) dp[i] = static_cast<dst_t>(sp[i]);
    });
  });
  return out;
}

Tensor& Tensor::set_requires_grad(bool value) {
  TDP_CHECK(!value || IsFloatingPoint(impl_->dtype))
      << "only floating-point tensors can require grad";
  impl_->requires_grad = value;
  return *this;
}

Tensor Tensor::grad() const {
  return impl_->grad ? Tensor(impl_->grad) : Tensor();
}

void Tensor::set_grad(const Tensor& g) const { impl_->grad = g.impl(); }

void Tensor::AccumulateGrad(const Tensor& g) const {
  TDP_CHECK(g.defined());
  if (!impl_->grad) {
    impl_->grad = g.Clone().impl();
    return;
  }
  // grad += g, elementwise in place (shapes must match exactly).
  Tensor grad_t(impl_->grad);
  TDP_CHECK(grad_t.shape() == g.shape())
      << "grad shape mismatch: " << ShapeToString(grad_t.shape()) << " vs "
      << ShapeToString(g.shape());
  Tensor gc = g.Contiguous();
  const int64_t n = grad_t.numel();
  TDP_DISPATCH_FLOAT(grad_t.dtype(), {
    scalar_t* a = grad_t.data<scalar_t>();
    const scalar_t* b = gc.data<scalar_t>();
    for (int64_t i = 0; i < n; ++i) a[i] += b[i];
  });
}

void Tensor::ZeroGrad() const { impl_->grad = nullptr; }

void Tensor::set_grad_fn(std::shared_ptr<autograd::Node> node) {
  impl_->grad_fn = std::move(node);
}

Tensor Tensor::Detach() const {
  auto impl = std::make_shared<TensorImpl>(*impl_);
  impl->requires_grad = false;
  impl->grad_fn = nullptr;
  impl->grad = nullptr;
  return Tensor(std::move(impl));
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream os;
  os << "Tensor(" << DTypeName(dtype()) << ", " << ShapeToString(shape())
     << ", " << DeviceName(device()) << ")";
  const int64_t n = numel();
  if (n <= 64 && dim() <= 2) {
    os << " [";
    if (dim() <= 1) {
      for (int64_t i = 0; i < n; ++i) {
        if (i > 0) os << ", ";
        os << At(dim() == 0 ? std::vector<int64_t>{}
                            : std::vector<int64_t>{i});
      }
    } else {
      for (int64_t r = 0; r < size(0); ++r) {
        if (r > 0) os << "; ";
        for (int64_t c = 0; c < size(1); ++c) {
          if (c > 0) os << ", ";
          os << At({r, c});
        }
      }
    }
    os << "]";
  }
  return os.str();
}

}  // namespace tdp
