#include <cmath>
#include <functional>

#include "src/autograd/node.h"
#include "src/common/thread_pool.h"
#include "src/tensor/dispatch.h"
#include "src/tensor/ops.h"
#include "src/tensor/ops_internal.h"

namespace tdp {
namespace {

using internal_ops::OffsetIterator;

enum class UnKind {
  kNeg,
  kExp,
  kLog,
  kSqrt,
  kAbs,
  kSign,
  kRelu,
  kSigmoid,
  kTanh,
  kFloor,
  kRound,
};

double ApplyUnary(UnKind kind, double x) {
  switch (kind) {
    case UnKind::kNeg:
      return -x;
    case UnKind::kExp:
      return std::exp(x);
    case UnKind::kLog:
      return std::log(x);
    case UnKind::kSqrt:
      return std::sqrt(x);
    case UnKind::kAbs:
      return std::abs(x);
    case UnKind::kSign:
      return x > 0 ? 1.0 : (x < 0 ? -1.0 : 0.0);
    case UnKind::kRelu:
      return x > 0 ? x : 0.0;
    case UnKind::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
    case UnKind::kTanh:
      return std::tanh(x);
    case UnKind::kFloor:
      return std::floor(x);
    case UnKind::kRound:
      return std::nearbyint(x);
  }
  TDP_LOG(Fatal) << "unknown UnKind";
  return 0;
}

bool RequiresFloat(UnKind kind) {
  switch (kind) {
    case UnKind::kExp:
    case UnKind::kLog:
    case UnKind::kSqrt:
    case UnKind::kSigmoid:
    case UnKind::kTanh:
      return true;
    default:
      return false;
  }
}

Tensor UnaryEval(UnKind kind, const Tensor& t0) {
  TDP_CHECK(t0.defined());
  DType dtype = t0.dtype();
  TDP_CHECK(dtype != DType::kBool) << "unary math on bool is not supported";
  if (RequiresFloat(kind) && !IsFloatingPoint(dtype)) dtype = DType::kFloat32;
  const Tensor t = t0.To(dtype);
  Tensor out = Tensor::Empty(t.shape(), dtype, t.device());
  const int64_t n = out.numel();

  if (t.device() == Device::kCpu) {
    // Reference backend: type-erased per-element evaluation.
    const std::function<double(double)> f = [kind](double x) {
      return ApplyUnary(kind, x);
    };
    const std::vector<std::vector<int64_t>> strides = {t.strides()};
    const std::vector<int64_t>& shape = t.shape();
    TDP_DISPATCH_NUMERIC(dtype, {
      const scalar_t* sp = t.data<scalar_t>();
      scalar_t* op = out.data<scalar_t>();
      ParallelFor(0, n, GrainForCost(4),
                  [sp, op, &f, &shape, &strides](int64_t shard_begin,
                                                 int64_t shard_end) {
                    OffsetIterator it(shape, strides);
                    it.Seek(shard_begin);
                    for (int64_t i = shard_begin; i < shard_end;
                         ++i, it.Next()) {
                      op[i] = static_cast<scalar_t>(
                          f(static_cast<double>(sp[it.offset(0)])));
                    }
                  });
    });
    return out;
  }

  // Accelerated backend: contiguous tight loop with inlined math.
  const Tensor tc = t.Contiguous();
  TDP_DISPATCH_NUMERIC(dtype, {
    const scalar_t* sp = tc.data<scalar_t>();
    scalar_t* op = out.data<scalar_t>();
    ParallelFor(0, n, GrainForCost(1), [sp, op, kind](int64_t shard_begin,
                                                      int64_t shard_end) {
      const int64_t b = shard_begin, e = shard_end;
      switch (kind) {
        case UnKind::kNeg:
          for (int64_t i = b; i < e; ++i) op[i] = -sp[i];
          break;
        case UnKind::kExp:
          for (int64_t i = b; i < e; ++i)
            op[i] = static_cast<scalar_t>(std::exp(sp[i]));
          break;
        case UnKind::kLog:
          for (int64_t i = b; i < e; ++i)
            op[i] = static_cast<scalar_t>(std::log(sp[i]));
          break;
        case UnKind::kSqrt:
          for (int64_t i = b; i < e; ++i)
            op[i] = static_cast<scalar_t>(std::sqrt(sp[i]));
          break;
        case UnKind::kAbs:
          for (int64_t i = b; i < e; ++i)
            op[i] = sp[i] < 0 ? static_cast<scalar_t>(-sp[i]) : sp[i];
          break;
        case UnKind::kSign:
          for (int64_t i = b; i < e; ++i)
            op[i] = static_cast<scalar_t>(sp[i] > 0   ? 1
                                          : sp[i] < 0 ? -1
                                                      : 0);
          break;
        case UnKind::kRelu:
          for (int64_t i = b; i < e; ++i)
            op[i] = sp[i] > 0 ? sp[i] : static_cast<scalar_t>(0);
          break;
        case UnKind::kSigmoid:
          for (int64_t i = b; i < e; ++i)
            op[i] = static_cast<scalar_t>(1.0 / (1.0 + std::exp(-sp[i])));
          break;
        case UnKind::kTanh:
          for (int64_t i = b; i < e; ++i)
            op[i] = static_cast<scalar_t>(std::tanh(sp[i]));
          break;
        case UnKind::kFloor:
          for (int64_t i = b; i < e; ++i)
            op[i] = static_cast<scalar_t>(
                std::floor(static_cast<double>(sp[i])));
          break;
        case UnKind::kRound:
          for (int64_t i = b; i < e; ++i)
            op[i] = static_cast<scalar_t>(
                std::nearbyint(static_cast<double>(sp[i])));
          break;
      }
    });
  });
  return out;
}

}  // namespace

Tensor Neg(const Tensor& t) {
  Tensor out = UnaryEval(UnKind::kNeg, t);
  autograd::RecordOp("Neg", {t}, out, [](const Tensor& g) {
    return std::vector<Tensor>{Neg(g)};
  });
  return out;
}

Tensor Exp(const Tensor& t) {
  Tensor out = UnaryEval(UnKind::kExp, t);
  Tensor out_detached = out.Detach();
  autograd::RecordOp("Exp", {t}, out, [out_detached](const Tensor& g) {
    return std::vector<Tensor>{Mul(g, out_detached)};
  });
  return out;
}

Tensor Log(const Tensor& t) {
  Tensor out = UnaryEval(UnKind::kLog, t);
  autograd::RecordOp("Log", {t}, out, [t](const Tensor& g) {
    return std::vector<Tensor>{Div(g, t.Detach())};
  });
  return out;
}

Tensor Sqrt(const Tensor& t) {
  Tensor out = UnaryEval(UnKind::kSqrt, t);
  Tensor out_detached = out.Detach();
  autograd::RecordOp("Sqrt", {t}, out, [out_detached](const Tensor& g) {
    return std::vector<Tensor>{Div(g, MulScalar(out_detached, 2.0))};
  });
  return out;
}

Tensor Abs(const Tensor& t) {
  Tensor out = UnaryEval(UnKind::kAbs, t);
  autograd::RecordOp("Abs", {t}, out, [t](const Tensor& g) {
    return std::vector<Tensor>{Mul(g, Sign(t.Detach()))};
  });
  return out;
}

Tensor Sign(const Tensor& t) { return UnaryEval(UnKind::kSign, t); }

Tensor Relu(const Tensor& t) {
  Tensor out = UnaryEval(UnKind::kRelu, t);
  autograd::RecordOp("Relu", {t}, out, [t](const Tensor& g) {
    const Tensor mask = Gt(t.Detach(), Tensor::Scalar(0, t.dtype(), t.device()));
    return std::vector<Tensor>{Mul(g, mask.To(g.dtype()))};
  });
  return out;
}

Tensor Sigmoid(const Tensor& t) {
  Tensor out = UnaryEval(UnKind::kSigmoid, t);
  Tensor out_detached = out.Detach();
  autograd::RecordOp("Sigmoid", {t}, out, [out_detached](const Tensor& g) {
    // d/dx sigmoid = s * (1 - s)
    return std::vector<Tensor>{
        Mul(g, Mul(out_detached, RSubScalar(1.0, out_detached)))};
  });
  return out;
}

Tensor Tanh(const Tensor& t) {
  Tensor out = UnaryEval(UnKind::kTanh, t);
  Tensor out_detached = out.Detach();
  autograd::RecordOp("Tanh", {t}, out, [out_detached](const Tensor& g) {
    return std::vector<Tensor>{
        Mul(g, RSubScalar(1.0, Mul(out_detached, out_detached)))};
  });
  return out;
}

Tensor Clamp(const Tensor& t, double min_value, double max_value) {
  TDP_CHECK_LE(min_value, max_value);
  // Composite of Maximum/Minimum keeps autograd pass-through semantics.
  return Minimum(Maximum(t, Tensor::Scalar(min_value, t.dtype(), t.device())),
                 Tensor::Scalar(max_value, t.dtype(), t.device()));
}

Tensor PowScalar(const Tensor& t, double exponent) {
  const DType dtype = IsFloatingPoint(t.dtype()) ? t.dtype() : DType::kFloat32;
  const Tensor tf = t.To(dtype);
  Tensor out = Tensor::Empty(tf.shape(), dtype, tf.device());
  const Tensor tc = tf.Contiguous();
  const int64_t n = out.numel();
  TDP_DISPATCH_FLOAT(dtype, {
    const scalar_t* sp = tc.data<scalar_t>();
    scalar_t* op = out.data<scalar_t>();
    ParallelFor(0, n, GrainForCost(2),
                [sp, op, exponent](int64_t shard_begin, int64_t shard_end) {
                  for (int64_t i = shard_begin; i < shard_end; ++i) {
                    op[i] = static_cast<scalar_t>(
                        std::pow(static_cast<double>(sp[i]), exponent));
                  }
                });
  });
  autograd::RecordOp("PowScalar", {t}, out, [t, exponent](const Tensor& g) {
    // d/dx x^p = p * x^(p-1)
    return std::vector<Tensor>{
        Mul(g, MulScalar(PowScalar(t.Detach(), exponent - 1.0), exponent))};
  });
  return out;
}

Tensor Floor(const Tensor& t) { return UnaryEval(UnKind::kFloor, t); }
Tensor Round(const Tensor& t) { return UnaryEval(UnKind::kRound, t); }

Tensor LogicalNot(const Tensor& t) {
  TDP_CHECK(t.dtype() == DType::kBool);
  const Tensor tc = t.Contiguous();
  Tensor out = Tensor::Empty(t.shape(), DType::kBool, t.device());
  const bool* sp = tc.data<bool>();
  bool* op = out.data<bool>();
  const int64_t n = out.numel();
  for (int64_t i = 0; i < n; ++i) op[i] = !sp[i];
  return out;
}

}  // namespace tdp
