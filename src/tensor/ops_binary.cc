#include <cmath>
#include <functional>

#include "src/autograd/node.h"
#include "src/common/thread_pool.h"
#include "src/tensor/dispatch.h"
#include "src/tensor/ops.h"
#include "src/tensor/ops_internal.h"

namespace tdp {

namespace internal_ops {

Device CommonDevice(const std::vector<Tensor>& inputs) {
  Device device = Device::kCpu;
  bool first = true;
  for (const Tensor& t : inputs) {
    if (!t.defined()) continue;
    if (first) {
      device = t.device();
      first = false;
    } else {
      TDP_CHECK(t.device() == device) << "inputs on different devices";
    }
  }
  return device;
}

}  // namespace internal_ops

namespace {

using internal_ops::BroadcastStrides;
using internal_ops::OffsetIterator;

enum class BinKind {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMax,
  kMin,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

bool IsComparison(BinKind kind) {
  return kind == BinKind::kEq || kind == BinKind::kNe ||
         kind == BinKind::kLt || kind == BinKind::kLe ||
         kind == BinKind::kGt || kind == BinKind::kGe;
}


// Accelerated backend: templated inner loops; contiguous same-shape inputs
// take a branch-free tight loop, a single-element operand (scalar literal
// against a column — every `col <op> constant` predicate and projection)
// is hoisted out of a tight loop over the other side, and anything else
// falls back to a strided odometer walk. All three paths apply the same
// per-element `f`, so results are bit-identical regardless of which fires.
template <typename T, typename OutT, typename F>
void AccelLoop(const Tensor& a, const Tensor& b, Tensor& out,
               const std::vector<int64_t>& out_shape, F f) {
  OutT* op = out.data<OutT>();
  const int64_t n = out.numel();
  const bool fast = a.is_contiguous() && b.is_contiguous() &&
                    a.shape() == out_shape && b.shape() == out_shape;
  if (fast) {
    const T* ap = a.data<T>();
    const T* bp = b.data<T>();
    ParallelFor(0, n, GrainForCost(1),
                [op, ap, bp, &f](int64_t shard_begin, int64_t shard_end) {
                  for (int64_t i = shard_begin; i < shard_end; ++i) {
                    op[i] = f(ap[i], bp[i]);
                  }
                });
    return;
  }
  if (b.numel() == 1 && a.is_contiguous() && a.shape() == out_shape) {
    const T* ap = a.data<T>();
    const T bv = *b.data<T>();
    ParallelFor(0, n, GrainForCost(1),
                [op, ap, bv, &f](int64_t shard_begin, int64_t shard_end) {
                  for (int64_t i = shard_begin; i < shard_end; ++i) {
                    op[i] = f(ap[i], bv);
                  }
                });
    return;
  }
  if (a.numel() == 1 && b.is_contiguous() && b.shape() == out_shape) {
    const T av = *a.data<T>();
    const T* bp = b.data<T>();
    ParallelFor(0, n, GrainForCost(1),
                [op, av, bp, &f](int64_t shard_begin, int64_t shard_end) {
                  for (int64_t i = shard_begin; i < shard_end; ++i) {
                    op[i] = f(av, bp[i]);
                  }
                });
    return;
  }
  const T* abase = a.data<T>();
  const T* bbase = b.data<T>();
  const std::vector<std::vector<int64_t>> strides = {
      BroadcastStrides(a.shape(), a.strides(), out_shape),
      BroadcastStrides(b.shape(), b.strides(), out_shape)};
  // Each shard walks its own odometer, seeked to the shard's first element.
  ParallelFor(0, n, GrainForCost(2),
              [op, abase, bbase, &f, &out_shape, &strides](
                  int64_t shard_begin, int64_t shard_end) {
                OffsetIterator it(out_shape, strides);
                it.Seek(shard_begin);
                for (int64_t i = shard_begin; i < shard_end; ++i, it.Next()) {
                  op[i] = f(abase[it.offset(0)], bbase[it.offset(1)]);
                }
              });
}

// The op kind is hoisted out of the loop here: each case hands AccelLoop a
// capture-free lambda whose body is one branch-free expression, so the
// inner loops stay vectorizable (a per-element `switch (kind)` defeats
// SIMD — tools/check_vectorization.sh guards against its return).
template <typename T>
void AccelArithLoop(BinKind kind, const Tensor& a, const Tensor& b,
                    Tensor& out, const std::vector<int64_t>& out_shape) {
  switch (kind) {
    case BinKind::kAdd:
      return AccelLoop<T, T>(a, b, out, out_shape,
                             [](T x, T y) { return x + y; });
    case BinKind::kSub:
      return AccelLoop<T, T>(a, b, out, out_shape,
                             [](T x, T y) { return x - y; });
    case BinKind::kMul:
      return AccelLoop<T, T>(a, b, out, out_shape,
                             [](T x, T y) { return x * y; });
    case BinKind::kDiv:
      return AccelLoop<T, T>(a, b, out, out_shape,
                             [](T x, T y) { return x / y; });
    case BinKind::kMax:
      return AccelLoop<T, T>(a, b, out, out_shape,
                             [](T x, T y) { return x >= y ? x : y; });
    case BinKind::kMin:
      return AccelLoop<T, T>(a, b, out, out_shape,
                             [](T x, T y) { return x <= y ? x : y; });
    default:
      TDP_LOG(Fatal) << "not an arithmetic kind";
  }
}

template <typename T>
void AccelCompareLoop(BinKind kind, const Tensor& a, const Tensor& b,
                      Tensor& out, const std::vector<int64_t>& out_shape) {
  switch (kind) {
    case BinKind::kEq:
      return AccelLoop<T, bool>(a, b, out, out_shape,
                                [](T x, T y) { return x == y; });
    case BinKind::kNe:
      return AccelLoop<T, bool>(a, b, out, out_shape,
                                [](T x, T y) { return x != y; });
    case BinKind::kLt:
      return AccelLoop<T, bool>(a, b, out, out_shape,
                                [](T x, T y) { return x < y; });
    case BinKind::kLe:
      return AccelLoop<T, bool>(a, b, out, out_shape,
                                [](T x, T y) { return x <= y; });
    case BinKind::kGt:
      return AccelLoop<T, bool>(a, b, out, out_shape,
                                [](T x, T y) { return x > y; });
    case BinKind::kGe:
      return AccelLoop<T, bool>(a, b, out, out_shape,
                                [](T x, T y) { return x >= y; });
    default:
      TDP_LOG(Fatal) << "not a comparison kind";
  }
}

// Reference backend: per-element dispatch through std::function on doubles,
// deliberately modeling an un-accelerated interpretive engine.
void ReferenceLoop(const Tensor& a, const Tensor& b, Tensor& out,
                   const std::vector<int64_t>& out_shape,
                   const std::function<double(double, double)>& f) {
  const int64_t n = out.numel();
  const std::vector<std::vector<int64_t>> strides = {
      BroadcastStrides(a.shape(), a.strides(), out_shape),
      BroadcastStrides(b.shape(), b.strides(), out_shape)};
  TDP_DISPATCH_ALL(out.dtype(), {
    using out_t = scalar_t;
    out_t* op = out.data<out_t>();
    TDP_DISPATCH_ALL(a.dtype(), {
      const scalar_t* ap = a.data<scalar_t>();
      const scalar_t* bp = b.data<scalar_t>();
      ParallelFor(0, n, GrainForCost(4),
                  [op, ap, bp, &f, &out_shape, &strides](
                      int64_t shard_begin, int64_t shard_end) {
                    OffsetIterator it(out_shape, strides);
                    it.Seek(shard_begin);
                    for (int64_t i = shard_begin; i < shard_end;
                         ++i, it.Next()) {
                      op[i] = static_cast<out_t>(
                          f(static_cast<double>(ap[it.offset(0)]),
                            static_cast<double>(bp[it.offset(1)])));
                    }
                  });
    });
  });
}

std::function<double(double, double)> ReferenceFn(BinKind kind) {
  switch (kind) {
    case BinKind::kAdd:
      return [](double a, double b) { return a + b; };
    case BinKind::kSub:
      return [](double a, double b) { return a - b; };
    case BinKind::kMul:
      return [](double a, double b) { return a * b; };
    case BinKind::kDiv:
      return [](double a, double b) { return a / b; };
    case BinKind::kMax:
      return [](double a, double b) { return a >= b ? a : b; };
    case BinKind::kMin:
      return [](double a, double b) { return a <= b ? a : b; };
    case BinKind::kEq:
      return [](double a, double b) { return a == b ? 1.0 : 0.0; };
    case BinKind::kNe:
      return [](double a, double b) { return a != b ? 1.0 : 0.0; };
    case BinKind::kLt:
      return [](double a, double b) { return a < b ? 1.0 : 0.0; };
    case BinKind::kLe:
      return [](double a, double b) { return a <= b ? 1.0 : 0.0; };
    case BinKind::kGt:
      return [](double a, double b) { return a > b ? 1.0 : 0.0; };
    case BinKind::kGe:
      return [](double a, double b) { return a >= b ? 1.0 : 0.0; };
    case BinKind::kAnd:
      return [](double a, double b) { return (a != 0 && b != 0) ? 1.0 : 0.0; };
    case BinKind::kOr:
      return [](double a, double b) { return (a != 0 || b != 0) ? 1.0 : 0.0; };
  }
  TDP_LOG(Fatal) << "unknown BinKind";
  return nullptr;
}

// Computes the raw (no autograd) result of a binary op.
Tensor BinaryEval(BinKind kind, const Tensor& a0, const Tensor& b0) {
  TDP_CHECK(a0.defined() && b0.defined());
  const Device device = internal_ops::CommonDevice({a0, b0});
  const std::vector<int64_t> out_shape =
      BroadcastShapes(a0.shape(), b0.shape());

  DType compute_dtype;
  DType out_dtype;
  if (kind == BinKind::kAnd || kind == BinKind::kOr) {
    TDP_CHECK(a0.dtype() == DType::kBool && b0.dtype() == DType::kBool)
        << "logical ops require bool operands";
    compute_dtype = DType::kBool;
    out_dtype = DType::kBool;
  } else if (IsComparison(kind)) {
    compute_dtype = PromoteTypes(a0.dtype(), b0.dtype());
    out_dtype = DType::kBool;
  } else {
    compute_dtype = PromoteTypes(a0.dtype(), b0.dtype());
    TDP_CHECK(compute_dtype != DType::kBool)
        << "arithmetic on bool tensors is not supported";
    out_dtype = compute_dtype;
  }

  const Tensor a = a0.To(compute_dtype);
  const Tensor b = b0.To(compute_dtype);
  Tensor out = Tensor::Empty(out_shape, out_dtype, device);

  if (device == Device::kCpu) {
    ReferenceLoop(a, b, out, out_shape, ReferenceFn(kind));
    return out;
  }

  if (kind == BinKind::kAnd || kind == BinKind::kOr) {
    if (kind == BinKind::kAnd) {
      AccelLoop<bool, bool>(a, b, out, out_shape,
                            [](bool x, bool y) { return x && y; });
    } else {
      AccelLoop<bool, bool>(a, b, out, out_shape,
                            [](bool x, bool y) { return x || y; });
    }
    return out;
  }

  if (IsComparison(kind)) {
    TDP_DISPATCH_NUMERIC(compute_dtype, {
      AccelCompareLoop<scalar_t>(kind, a, b, out, out_shape);
    });
    return out;
  }

  TDP_DISPATCH_NUMERIC(compute_dtype, {
    AccelArithLoop<scalar_t>(kind, a, b, out, out_shape);
  });
  return out;
}

}  // namespace

Tensor ReduceGradToShape(const Tensor& grad,
                         const std::vector<int64_t>& shape) {
  if (grad.shape() == shape) return grad;
  Tensor g = grad;
  // Sum away leading broadcast dims.
  while (g.dim() > static_cast<int64_t>(shape.size())) {
    g = Sum(g, /*dim=*/0, /*keepdim=*/false);
  }
  // Sum dims that were expanded from size 1.
  for (int64_t d = 0; d < g.dim(); ++d) {
    if (shape[static_cast<size_t>(d)] == 1 && g.size(d) != 1) {
      g = Sum(g, d, /*keepdim=*/true);
    }
  }
  TDP_CHECK(g.shape() == shape);
  return g;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = BinaryEval(BinKind::kAdd, a, b);
  autograd::RecordOp("Add", {a, b}, out, [a, b](const Tensor& g) {
    return std::vector<Tensor>{ReduceGradToShape(g, a.shape()),
                               ReduceGradToShape(g, b.shape())};
  });
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = BinaryEval(BinKind::kSub, a, b);
  autograd::RecordOp("Sub", {a, b}, out, [a, b](const Tensor& g) {
    return std::vector<Tensor>{ReduceGradToShape(g, a.shape()),
                               ReduceGradToShape(Neg(g), b.shape())};
  });
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  Tensor out = BinaryEval(BinKind::kMul, a, b);
  autograd::RecordOp("Mul", {a, b}, out, [a, b](const Tensor& g) {
    return std::vector<Tensor>{
        ReduceGradToShape(Mul(g, b.Detach()), a.shape()),
        ReduceGradToShape(Mul(g, a.Detach()), b.shape())};
  });
  return out;
}

Tensor Div(const Tensor& a, const Tensor& b) {
  Tensor out = BinaryEval(BinKind::kDiv, a, b);
  autograd::RecordOp("Div", {a, b}, out, [a, b](const Tensor& g) {
    const Tensor ad = a.Detach();
    const Tensor bd = b.Detach();
    Tensor ga = Div(g, bd);
    Tensor gb = Neg(Div(Mul(g, ad), Mul(bd, bd)));
    return std::vector<Tensor>{ReduceGradToShape(ga, a.shape()),
                               ReduceGradToShape(gb, b.shape())};
  });
  return out;
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  Tensor out = BinaryEval(BinKind::kMax, a, b);
  autograd::RecordOp("Maximum", {a, b}, out, [a, b](const Tensor& g) {
    const Tensor mask = Ge(a.Detach(), b.Detach());  // ties -> a
    const Tensor maskf = mask.To(g.dtype());
    return std::vector<Tensor>{
        ReduceGradToShape(Mul(g, maskf), a.shape()),
        ReduceGradToShape(Mul(g, RSubScalar(1.0, maskf)), b.shape())};
  });
  return out;
}

Tensor Minimum(const Tensor& a, const Tensor& b) {
  Tensor out = BinaryEval(BinKind::kMin, a, b);
  autograd::RecordOp("Minimum", {a, b}, out, [a, b](const Tensor& g) {
    const Tensor mask = Le(a.Detach(), b.Detach());
    const Tensor maskf = mask.To(g.dtype());
    return std::vector<Tensor>{
        ReduceGradToShape(Mul(g, maskf), a.shape()),
        ReduceGradToShape(Mul(g, RSubScalar(1.0, maskf)), b.shape())};
  });
  return out;
}

namespace {
Tensor ScalarLike(const Tensor& t, double s) {
  DType dtype = t.dtype();
  if (!IsFloatingPoint(dtype) && s != static_cast<int64_t>(s)) {
    dtype = DType::kFloat32;  // int tensor op fractional scalar -> float
  }
  if (dtype == DType::kBool) dtype = DType::kFloat32;
  return Tensor::Scalar(s, dtype, t.device());
}
}  // namespace

Tensor AddScalar(const Tensor& a, double s) { return Add(a, ScalarLike(a, s)); }
Tensor SubScalar(const Tensor& a, double s) { return Sub(a, ScalarLike(a, s)); }
Tensor RSubScalar(double s, const Tensor& a) {
  return Sub(ScalarLike(a, s), a);
}
Tensor MulScalar(const Tensor& a, double s) { return Mul(a, ScalarLike(a, s)); }
Tensor DivScalar(const Tensor& a, double s) { return Div(a, ScalarLike(a, s)); }
Tensor RDivScalar(double s, const Tensor& a) {
  return Div(ScalarLike(a, s), a);
}

Tensor Eq(const Tensor& a, const Tensor& b) {
  return BinaryEval(BinKind::kEq, a, b);
}
Tensor Ne(const Tensor& a, const Tensor& b) {
  return BinaryEval(BinKind::kNe, a, b);
}
Tensor Lt(const Tensor& a, const Tensor& b) {
  return BinaryEval(BinKind::kLt, a, b);
}
Tensor Le(const Tensor& a, const Tensor& b) {
  return BinaryEval(BinKind::kLe, a, b);
}
Tensor Gt(const Tensor& a, const Tensor& b) {
  return BinaryEval(BinKind::kGt, a, b);
}
Tensor Ge(const Tensor& a, const Tensor& b) {
  return BinaryEval(BinKind::kGe, a, b);
}

Tensor LogicalAnd(const Tensor& a, const Tensor& b) {
  return BinaryEval(BinKind::kAnd, a, b);
}
Tensor LogicalOr(const Tensor& a, const Tensor& b) {
  return BinaryEval(BinKind::kOr, a, b);
}

Tensor Where(const Tensor& cond, const Tensor& a, const Tensor& b) {
  TDP_CHECK(cond.dtype() == DType::kBool) << "Where condition must be bool";
  // out = cond * a + (1 - cond) * b computed via masks; autograd flows
  // through the Mul/Add composition automatically.
  const DType dtype = PromoteTypes(a.dtype(), b.dtype());
  const Tensor condf = cond.To(dtype);
  return Add(Mul(condf, a), Mul(RSubScalar(1.0, condf), b));
}

}  // namespace tdp
