#ifndef TDP_TENSOR_TENSOR_H_
#define TDP_TENSOR_TENSOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/tensor/buffer.h"
#include "src/tensor/device.h"
#include "src/tensor/dtype.h"

namespace tdp {

namespace autograd {
class Node;
}  // namespace autograd

class Tensor;

/// Memory-format tag carried by every tensor: how the viewed elements are
/// laid out relative to the logical (row-major) element order. Ops that
/// want a dense scan request `kRowMajor` via `Tensor::RowMajor()` and a
/// cached reorder fixes mismatches — instead of every kernel call paying
/// an ad-hoc `Contiguous()` copy.
enum class MemFormat : uint8_t {
  /// Dense C-order strides: linear pointer walks visit elements in
  /// logical order. (The view may still start at a nonzero offset.)
  kRowMajor = 0,
  /// Any other stride pattern: transposes, broadcasts, inner slices.
  kStrided = 1,
  /// Not classified yet; resolved lazily on first query.
  kUnknown = 2,
};

/// Shared state behind a `Tensor` handle: storage view (buffer + shape +
/// strides + offset) plus autograd metadata. Multiple `Tensor` handles and
/// views may alias one buffer.
struct TensorImpl {
  std::shared_ptr<Buffer> buffer;
  std::vector<int64_t> shape;
  std::vector<int64_t> strides;  // in elements, row-major by default
  int64_t offset = 0;            // in elements
  DType dtype = DType::kFloat32;
  Device device = Device::kCpu;

  // Autograd state. `grad` uses TensorImpl to avoid a circular definition.
  bool requires_grad = false;
  std::shared_ptr<TensorImpl> grad;
  std::shared_ptr<autograd::Node> grad_fn;

  /// Cached memory-format classification of (shape, strides). Geometry is
  /// immutable after construction, so the tag is computed at most once
  /// (lazily, by `Tensor::format()`); atomic so concurrent first queries
  /// are race-free.
  mutable std::atomic<MemFormat> format{MemFormat::kUnknown};

  /// Lazily built row-major copy of a strided view, shared across handle
  /// copies so repeated kernel calls pay the reorder once (see
  /// `Tensor::RowMajor()`). Only ever set on `kStrided` impls whose
  /// backing storage is immutable for the cache's lifetime — true for the
  /// kernel inputs (columns, weights) that request reorders.
  std::shared_ptr<TensorImpl> reorder;

  TensorImpl() = default;
  TensorImpl(const TensorImpl& other)
      : buffer(other.buffer),
        shape(other.shape),
        strides(other.strides),
        offset(other.offset),
        dtype(other.dtype),
        device(other.device),
        requires_grad(other.requires_grad),
        grad(other.grad),
        grad_fn(other.grad_fn),
        format(other.format.load(std::memory_order_relaxed)),
        reorder(other.reorder) {}
};

/// Computes the row-major (C-order) strides for `shape`.
std::vector<int64_t> ContiguousStrides(const std::vector<int64_t>& shape);

/// Product of dims; 1 for rank-0.
int64_t ShapeNumel(const std::vector<int64_t>& shape);

/// NumPy-style broadcast of two shapes. Fatal if incompatible.
std::vector<int64_t> BroadcastShapes(const std::vector<int64_t>& a,
                                     const std::vector<int64_t>& b);

/// Renders e.g. "[3, 4]".
std::string ShapeToString(const std::vector<int64_t>& shape);

/// N-dimensional tensor handle with value semantics (copies share storage,
/// like PyTorch). The tensor runtime is TDP's core data abstraction: every
/// relational column, image batch, probability encoding, model weight and
/// intermediate query result is a `Tensor`.
///
/// Operations live in `src/tensor/ops.h` as free functions; differentiable
/// ones record an autograd graph when any input `requires_grad()`.
class Tensor {
 public:
  /// Null handle; `defined()` is false.
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // ---- Factories -------------------------------------------------------

  /// Uninitialized contents.
  static Tensor Empty(std::vector<int64_t> shape,
                      DType dtype = DType::kFloat32,
                      Device device = Device::kCpu);
  static Tensor Zeros(std::vector<int64_t> shape,
                      DType dtype = DType::kFloat32,
                      Device device = Device::kCpu);
  static Tensor Ones(std::vector<int64_t> shape,
                     DType dtype = DType::kFloat32,
                     Device device = Device::kCpu);
  static Tensor Full(std::vector<int64_t> shape, double value,
                     DType dtype = DType::kFloat32,
                     Device device = Device::kCpu);
  /// 1-d tensor [0, 1, ..., n-1].
  static Tensor Arange(int64_t n, DType dtype = DType::kInt64,
                       Device device = Device::kCpu);
  /// Rank-0 scalar.
  static Tensor Scalar(double value, DType dtype = DType::kFloat32,
                       Device device = Device::kCpu);

  /// Copies `values` into a fresh tensor of `shape` (or 1-d when omitted).
  template <typename T>
  static Tensor FromVector(const std::vector<T>& values,
                           std::vector<int64_t> shape = {},
                           Device device = Device::kCpu) {
    if (shape.empty()) shape = {static_cast<int64_t>(values.size())};
    TDP_CHECK_EQ(static_cast<int64_t>(values.size()), ShapeNumel(shape));
    Tensor t = Empty(std::move(shape), DTypeOf<T>::value, device);
    T* out = t.data<T>();
    for (size_t i = 0; i < values.size(); ++i) out[i] = values[i];
    return t;
  }

  // ---- Metadata --------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const std::vector<int64_t>& shape() const { return impl_->shape; }
  const std::vector<int64_t>& strides() const { return impl_->strides; }
  int64_t offset() const { return impl_->offset; }
  int64_t dim() const { return static_cast<int64_t>(impl_->shape.size()); }
  /// Size of dimension `d`; negative `d` counts from the end.
  int64_t size(int64_t d) const;
  int64_t numel() const { return ShapeNumel(impl_->shape); }
  DType dtype() const { return impl_->dtype; }
  Device device() const { return impl_->device; }
  bool is_contiguous() const { return format() == MemFormat::kRowMajor; }
  /// Memory-format tag (cached; computed once per impl).
  MemFormat format() const;

  // ---- Raw data access -------------------------------------------------

  /// Pointer to the first viewed element. The view may be non-contiguous;
  /// use `strides()` or call `Contiguous()` first for linear scans.
  template <typename T>
  T* data() {
    TDP_DCHECK(DTypeOf<T>::value == impl_->dtype);
    return reinterpret_cast<T*>(impl_->buffer->data()) + impl_->offset;
  }
  template <typename T>
  const T* data() const {
    TDP_DCHECK(DTypeOf<T>::value == impl_->dtype);
    return reinterpret_cast<const T*>(impl_->buffer->data()) + impl_->offset;
  }

  /// Value of a single-element tensor, converted to T.
  template <typename T>
  T item() const;

  /// Copies out all elements in row-major logical order (strides honored).
  template <typename T>
  std::vector<T> ToVector() const;

  /// Element at multi-dim `index`, as double (any numeric dtype).
  double At(const std::vector<int64_t>& index) const;
  /// Sets element at `index` from double.
  void SetAt(const std::vector<int64_t>& index, double value);

  // ---- Layout / copies ---------------------------------------------------

  /// Same-contents tensor with contiguous layout (no-op if already).
  Tensor Contiguous() const;
  /// The tensor in `kRowMajor` format: `*this` when already row-major,
  /// otherwise a detached, cached reorder (built once per impl, shared by
  /// every handle). Kernels use this instead of per-call `Contiguous()`
  /// so repeated runs over the same strided view reorder once. The cache
  /// snapshots the data — only valid for storage that is not mutated in
  /// place afterwards. The in-place writers uphold this: tables are
  /// immutable, and optimizer steps only touch contiguous parameters
  /// (enforced in `Optimizer`), which never cache a reorder.
  Tensor RowMajor() const;
  /// Deep copy, contiguous; drops autograd history.
  Tensor Clone() const;
  /// Copies to `device` (same data, different kernel backend).
  Tensor To(Device device) const;
  /// Casts to `dtype` (copy). Not differentiable.
  Tensor To(DType dtype) const;

  // ---- Views (implemented in ops_shape.cc; differentiable) ---------------

  Tensor Reshape(std::vector<int64_t> shape) const;
  Tensor Transpose(int64_t d0, int64_t d1) const;
  Tensor Permute(std::vector<int64_t> dims) const;
  /// Narrows dimension `dim` to [start, start+length).
  Tensor Slice(int64_t dim, int64_t start, int64_t length) const;
  Tensor Squeeze(int64_t dim) const;
  Tensor Unsqueeze(int64_t dim) const;
  /// Broadcasts to `shape` using zero strides (view, read-only semantics).
  Tensor Expand(std::vector<int64_t> shape) const;

  // ---- Autograd ----------------------------------------------------------

  bool requires_grad() const { return impl_->requires_grad; }
  /// Marks this tensor as a leaf variable whose gradient is wanted.
  Tensor& set_requires_grad(bool value);
  /// Accumulated gradient (undefined handle if none yet).
  Tensor grad() const;
  void set_grad(const Tensor& g) const;
  /// grad += g (allocating zeros first if absent). Mutates the shared impl,
  /// so usable through const handles (autograd engine).
  void AccumulateGrad(const Tensor& g) const;
  void ZeroGrad() const;
  const std::shared_ptr<autograd::Node>& grad_fn() const {
    return impl_->grad_fn;
  }
  void set_grad_fn(std::shared_ptr<autograd::Node> node);
  /// Same data, detached from the autograd graph.
  Tensor Detach() const;
  /// Runs reverse-mode autodiff from this (scalar) tensor; accumulates
  /// into `grad()` of all reachable leaves. Defined in autograd/engine.cc.
  void Backward() const;

  /// Debug rendering: dtype, shape, and (small tensors) elements.
  std::string ToString() const;

  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

// ---- Inline template definitions ----------------------------------------

template <typename T>
T Tensor::item() const {
  TDP_CHECK_EQ(numel(), 1);
  return static_cast<T>(At(std::vector<int64_t>(shape().size(), 0)));
}

template <typename T>
std::vector<T> Tensor::ToVector() const {
  Tensor c = Contiguous();
  const T* p = c.data<T>();
  return std::vector<T>(p, p + c.numel());
}

}  // namespace tdp

#endif  // TDP_TENSOR_TENSOR_H_
