#include <cstring>

#include "src/autograd/node.h"
#include "src/common/thread_pool.h"
#include "src/tensor/dispatch.h"
#include "src/tensor/ops.h"
#include "src/tensor/ops_internal.h"

namespace tdp {
namespace {

using internal_ops::NormalizeDim;

}  // namespace

Tensor IndexSelect(const Tensor& t, int64_t dim, const Tensor& indices) {
  TDP_CHECK(t.defined() && indices.defined());
  TDP_CHECK(indices.dtype() == DType::kInt64 && indices.dim() == 1)
      << "IndexSelect indices must be 1-d int64";
  const int64_t d = NormalizeDim(dim, t.dim());
  const Tensor tc = t.RowMajor();
  const Tensor ic = indices.RowMajor();
  const int64_t k = ic.numel();

  std::vector<int64_t> out_shape = t.shape();
  out_shape[static_cast<size_t>(d)] = k;
  Tensor out = Tensor::Empty(out_shape, t.dtype(), t.device());

  // Geometry: [outer, dim, inner] with contiguous input.
  int64_t outer = 1, inner = 1;
  for (int64_t i = 0; i < d; ++i) outer *= t.size(i);
  for (int64_t i = d + 1; i < t.dim(); ++i) inner *= t.size(i);
  const int64_t dim_size = t.size(d);
  const int64_t* ip = ic.data<int64_t>();
  const int64_t esize = DTypeSize(t.dtype());

  // Validate once up front so the gather loops below stay branch-free.
  for (int64_t j = 0; j < k; ++j) {
    TDP_CHECK(ip[j] >= 0 && ip[j] < dim_size)
        << "index " << ip[j] << " out of range [0, " << dim_size << ")";
  }

  const uint8_t* sp =
      reinterpret_cast<const uint8_t*>(tc.impl()->buffer->data()) +
      tc.offset() * esize;
  uint8_t* op = out.impl()->buffer->data();
  if (inner == 1 && outer == 1) {
    // Row select from a scalar column — the hot shape (every relational
    // filter/join/sort materialization lands here). A typed gather loop
    // beats per-row memcpy dispatch by a wide margin; output rows are
    // disjoint, so sharding cannot change the result.
    TDP_DISPATCH_ALL(t.dtype(), {
      const scalar_t* s = reinterpret_cast<const scalar_t*>(sp);
      scalar_t* o = reinterpret_cast<scalar_t*>(op);
      ParallelFor(0, k, GrainForCost(2),
                  [o, s, ip](int64_t begin, int64_t end) {
                    for (int64_t j = begin; j < end; ++j) o[j] = s[ip[j]];
                  });
    });
  } else {
    const int64_t width = inner * esize;
    ParallelFor(0, outer * k, GrainForCost(std::max<int64_t>(width / 8, 1)),
                [=](int64_t begin, int64_t end) {
                  for (int64_t r = begin; r < end; ++r) {
                    const int64_t o = r / k, j = r % k;
                    std::memcpy(op + r * width,
                                sp + (o * dim_size + ip[j]) * width,
                                static_cast<size_t>(width));
                  }
                });
  }

  Tensor indices_saved = ic;
  autograd::RecordOp(
      "IndexSelect", {t, Tensor()}, out,
      [t, d, indices_saved](const Tensor& g) {
        // Scatter-add the gradient rows back to their source positions.
        Tensor grad_in = Tensor::Zeros(t.shape(), g.dtype(), g.device());
        const Tensor gc = g.Contiguous();
        int64_t outer = 1, inner = 1;
        for (int64_t i = 0; i < d; ++i) outer *= t.size(i);
        for (int64_t i = d + 1; i < t.dim(); ++i) inner *= t.size(i);
        const int64_t dim_size = t.size(d);
        const int64_t k = indices_saved.numel();
        const int64_t* ip = indices_saved.data<int64_t>();
        TDP_DISPATCH_FLOAT(g.dtype(), {
          const scalar_t* gp = gc.data<scalar_t>();
          scalar_t* rp = grad_in.data<scalar_t>();
          for (int64_t o = 0; o < outer; ++o) {
            for (int64_t j = 0; j < k; ++j) {
              const scalar_t* src = gp + (o * k + j) * inner;
              scalar_t* dst = rp + (o * dim_size + ip[j]) * inner;
              for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
            }
          }
        });
        return std::vector<Tensor>{grad_in, Tensor()};
      });
  return out;
}

namespace {

constexpr int64_t kNonZeroBlock = 4096;

/// Writes the indices of the set entries in mask[lo, hi) to `dst`,
/// returning how many were written. The store is unconditional and the
/// cursor advances by the mask byte, so a random mask costs no branch
/// mispredictions (the naive `if (m[i]) dst[j++] = i;` form spends most
/// of its time in mispredict stalls at ~50% selectivity). `dst` must have
/// room for hi - lo entries — the cursor trails the store, so slots past
/// the final count hold garbage that the caller never copies out.
int64_t CompactRange(const bool* mp, int64_t lo, int64_t hi, int64_t* dst) {
  int64_t j = 0;
  for (int64_t i = lo; i < hi; ++i) {
    dst[j] = i;
    j += mp[i] ? 1 : 0;
  }
  return j;
}

}  // namespace

Tensor NonZero(const Tensor& mask) {
  TDP_CHECK(mask.defined());
  TDP_CHECK(mask.dtype() == DType::kBool && mask.dim() == 1)
      << "NonZero expects a 1-d bool mask";
  const Tensor mc = mask.RowMajor();
  const bool* mp = mc.data<bool>();
  const int64_t n = mc.numel();

  // Morsel-sized masks (the per-morsel filter path) take one fused pass:
  // compact into a stack block, then copy the exact count out. No heap
  // bookkeeping, no second scan of the mask.
  if (n <= kNonZeroBlock) {
    int64_t tmp[kNonZeroBlock];
    const int64_t count = CompactRange(mp, 0, n, tmp);
    Tensor out = Tensor::Empty({count}, DType::kInt64, mask.device());
    std::memcpy(out.data<int64_t>(), tmp,
                static_cast<size_t>(count) * sizeof(int64_t));
    return out;
  }

  // Two passes over fixed 4096-element blocks: a vectorizable popcount
  // pass, an exclusive prefix over the block counts, then each block
  // compacts its indices at its own precomputed offset. Block boundaries
  // are fixed, so the output is the ascending index list at any thread
  // count.
  constexpr int64_t kBlock = kNonZeroBlock;
  const int64_t num_blocks = (n + kBlock - 1) / kBlock;
  std::vector<int64_t> block_offsets(static_cast<size_t>(num_blocks) + 1, 0);
  int64_t* counts = block_offsets.data() + 1;
  ParallelFor(0, num_blocks, GrainForCost(kBlock),
              [mp, n, counts](int64_t begin, int64_t end) {
                for (int64_t blk = begin; blk < end; ++blk) {
                  const int64_t lo = blk * kBlock;
                  const int64_t hi = std::min(n, lo + kBlock);
                  int64_t c = 0;
                  for (int64_t i = lo; i < hi; ++i) c += mp[i] ? 1 : 0;
                  counts[blk] = c;
                }
              });
  for (int64_t blk = 0; blk < num_blocks; ++blk) {
    block_offsets[static_cast<size_t>(blk) + 1] +=
        block_offsets[static_cast<size_t>(blk)];
  }
  const int64_t count = block_offsets[static_cast<size_t>(num_blocks)];
  Tensor out = Tensor::Empty({count}, DType::kInt64, mask.device());
  int64_t* op = out.data<int64_t>();
  const int64_t* offsets = block_offsets.data();
  ParallelFor(0, num_blocks, GrainForCost(kBlock),
              [mp, n, op, offsets](int64_t begin, int64_t end) {
                // Per-block compaction goes through a stack block so the
                // unconditional store in CompactRange can overrun the
                // block's count without touching the neighbour's range
                // (the output tensor has no slack past the last index).
                int64_t tmp[kBlock];
                for (int64_t blk = begin; blk < end; ++blk) {
                  const int64_t lo = blk * kBlock;
                  const int64_t hi = std::min(n, lo + kBlock);
                  const int64_t c = CompactRange(mp, lo, hi, tmp);
                  std::memcpy(op + offsets[blk], tmp,
                              static_cast<size_t>(c) * sizeof(int64_t));
                }
              });
  return out;
}

Tensor MaskedSelectRows(const Tensor& t, const Tensor& mask) {
  TDP_CHECK(t.defined() && mask.defined());
  TDP_CHECK(mask.dim() == 1 && mask.numel() == t.size(0))
      << "mask must be 1-d with one entry per row";
  return IndexSelect(t, 0, NonZero(mask));
}

Tensor Gather(const Tensor& t, int64_t dim, const Tensor& index) {
  TDP_CHECK(t.defined() && index.defined());
  TDP_CHECK(index.dtype() == DType::kInt64);
  TDP_CHECK_EQ(t.dim(), index.dim());
  const int64_t d = NormalizeDim(dim, t.dim());
  const Tensor tc = t.Contiguous();
  const Tensor ic = index.Contiguous();
  Tensor out = Tensor::Empty(index.shape(), t.dtype(), t.device());

  // Walk the index space of `index`; for each position, replace the d-th
  // coordinate by the index value when addressing `t`.
  const int64_t n = ic.numel();
  const std::vector<int64_t> tstrides = ContiguousStrides(t.shape());
  const std::vector<int64_t> istrides = ContiguousStrides(index.shape());
  const int64_t* ip = ic.data<int64_t>();
  TDP_DISPATCH_ALL(t.dtype(), {
    const scalar_t* sp = tc.data<scalar_t>();
    scalar_t* op = out.data<scalar_t>();
    std::vector<int64_t> idx(static_cast<size_t>(index.dim()), 0);
    for (int64_t flat = 0; flat < n; ++flat) {
      const int64_t gathered = ip[flat];
      TDP_CHECK(gathered >= 0 && gathered < t.size(d));
      int64_t soff = 0;
      for (int64_t dd = 0; dd < index.dim(); ++dd) {
        const int64_t coord = dd == d ? gathered : idx[static_cast<size_t>(dd)];
        soff += coord * tstrides[static_cast<size_t>(dd)];
      }
      op[flat] = sp[soff];
      for (int64_t dd = index.dim() - 1; dd >= 0; --dd) {
        const size_t ud = static_cast<size_t>(dd);
        if (++idx[ud] < index.size(dd)) break;
        idx[ud] = 0;
      }
    }
  });

  Tensor index_saved = ic;
  autograd::RecordOp(
      "Gather", {t, Tensor()}, out, [t, d, index_saved](const Tensor& g) {
        Tensor grad_in = Tensor::Zeros(t.shape(), g.dtype(), g.device());
        const Tensor gc = g.Contiguous();
        const std::vector<int64_t> tstrides = ContiguousStrides(t.shape());
        const int64_t n = index_saved.numel();
        const int64_t* ip = index_saved.data<int64_t>();
        TDP_DISPATCH_FLOAT(g.dtype(), {
          const scalar_t* gp = gc.data<scalar_t>();
          scalar_t* rp = grad_in.data<scalar_t>();
          std::vector<int64_t> idx(static_cast<size_t>(index_saved.dim()), 0);
          for (int64_t flat = 0; flat < n; ++flat) {
            int64_t soff = 0;
            for (int64_t dd = 0; dd < index_saved.dim(); ++dd) {
              const int64_t coord =
                  dd == d ? ip[flat] : idx[static_cast<size_t>(dd)];
              soff += coord * tstrides[static_cast<size_t>(dd)];
            }
            rp[soff] += gp[flat];
            for (int64_t dd = index_saved.dim() - 1; dd >= 0; --dd) {
              const size_t ud = static_cast<size_t>(dd);
              if (++idx[ud] < index_saved.size(dd)) break;
              idx[ud] = 0;
            }
          }
        });
        return std::vector<Tensor>{grad_in, Tensor()};
      });
  return out;
}

Tensor ScatterAddRows(const Tensor& base, const Tensor& index,
                      const Tensor& src) {
  TDP_CHECK(base.defined() && index.defined() && src.defined());
  TDP_CHECK(index.dtype() == DType::kInt64 && index.dim() == 1);
  TDP_CHECK_EQ(index.numel(), src.size(0));
  TDP_CHECK_EQ(base.dim(), src.dim());
  for (int64_t i = 1; i < base.dim(); ++i) {
    TDP_CHECK_EQ(base.size(i), src.size(i));
  }
  Tensor out = base.Detach().Clone();
  const Tensor sc = src.Detach().Contiguous();
  const Tensor ic = index.Contiguous();
  const int64_t rows = src.size(0);
  const int64_t inner = src.numel() / std::max<int64_t>(rows, 1);
  const int64_t* ip = ic.data<int64_t>();
  TDP_DISPATCH_NUMERIC(base.dtype(), {
    scalar_t* op = out.data<scalar_t>();
    const scalar_t* sp = sc.data<scalar_t>();
    for (int64_t r = 0; r < rows; ++r) {
      const int64_t dst = ip[r];
      TDP_CHECK(dst >= 0 && dst < out.size(0));
      scalar_t* d = op + dst * inner;
      const scalar_t* s = sp + r * inner;
      for (int64_t i = 0; i < inner; ++i) d[i] += s[i];
    }
  });
  Tensor index_saved = ic;
  autograd::RecordOp("ScatterAddRows", {base, Tensor(), src}, out,
                     [index_saved](const Tensor& g) {
                       // d/dbase = g; d/dsrc = g gathered at index rows.
                       return std::vector<Tensor>{
                           g, Tensor(), IndexSelect(g, 0, index_saved)};
                     });
  return out;
}

Tensor OneHot(const Tensor& indices, int64_t num_classes) {
  TDP_CHECK(indices.defined());
  TDP_CHECK(indices.dtype() == DType::kInt64 && indices.dim() == 1);
  TDP_CHECK_GT(num_classes, 0);
  const Tensor ic = indices.Contiguous();
  const int64_t n = ic.numel();
  Tensor out =
      Tensor::Zeros({n, num_classes}, DType::kFloat32, indices.device());
  const int64_t* ip = ic.data<int64_t>();
  float* op = out.data<float>();
  for (int64_t i = 0; i < n; ++i) {
    TDP_CHECK(ip[i] >= 0 && ip[i] < num_classes)
        << "one-hot index " << ip[i] << " out of range";
    op[i * num_classes + ip[i]] = 1.0f;
  }
  return out;
}

}  // namespace tdp
