#include <cstring>

#include "src/autograd/node.h"
#include "src/tensor/dispatch.h"
#include "src/tensor/ops.h"
#include "src/tensor/ops_internal.h"

namespace tdp {
namespace {

using internal_ops::NormalizeDim;

}  // namespace

Tensor IndexSelect(const Tensor& t, int64_t dim, const Tensor& indices) {
  TDP_CHECK(t.defined() && indices.defined());
  TDP_CHECK(indices.dtype() == DType::kInt64 && indices.dim() == 1)
      << "IndexSelect indices must be 1-d int64";
  const int64_t d = NormalizeDim(dim, t.dim());
  const Tensor tc = t.Contiguous();
  const Tensor ic = indices.Contiguous();
  const int64_t k = ic.numel();

  std::vector<int64_t> out_shape = t.shape();
  out_shape[static_cast<size_t>(d)] = k;
  Tensor out = Tensor::Empty(out_shape, t.dtype(), t.device());

  // Geometry: [outer, dim, inner] with contiguous input.
  int64_t outer = 1, inner = 1;
  for (int64_t i = 0; i < d; ++i) outer *= t.size(i);
  for (int64_t i = d + 1; i < t.dim(); ++i) inner *= t.size(i);
  const int64_t dim_size = t.size(d);
  const int64_t* ip = ic.data<int64_t>();
  const int64_t esize = DTypeSize(t.dtype());

  const uint8_t* sp = reinterpret_cast<const uint8_t*>(tc.impl()->buffer->data()) +
                      tc.offset() * esize;
  uint8_t* op = out.impl()->buffer->data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t j = 0; j < k; ++j) {
      const int64_t src_row = ip[j];
      TDP_CHECK(src_row >= 0 && src_row < dim_size)
          << "index " << src_row << " out of range [0, " << dim_size << ")";
      std::memcpy(op + ((o * k + j) * inner) * esize,
                  sp + ((o * dim_size + src_row) * inner) * esize,
                  static_cast<size_t>(inner * esize));
    }
  }

  Tensor indices_saved = ic;
  autograd::RecordOp(
      "IndexSelect", {t, Tensor()}, out,
      [t, d, indices_saved](const Tensor& g) {
        // Scatter-add the gradient rows back to their source positions.
        Tensor grad_in = Tensor::Zeros(t.shape(), g.dtype(), g.device());
        const Tensor gc = g.Contiguous();
        int64_t outer = 1, inner = 1;
        for (int64_t i = 0; i < d; ++i) outer *= t.size(i);
        for (int64_t i = d + 1; i < t.dim(); ++i) inner *= t.size(i);
        const int64_t dim_size = t.size(d);
        const int64_t k = indices_saved.numel();
        const int64_t* ip = indices_saved.data<int64_t>();
        TDP_DISPATCH_FLOAT(g.dtype(), {
          const scalar_t* gp = gc.data<scalar_t>();
          scalar_t* rp = grad_in.data<scalar_t>();
          for (int64_t o = 0; o < outer; ++o) {
            for (int64_t j = 0; j < k; ++j) {
              const scalar_t* src = gp + (o * k + j) * inner;
              scalar_t* dst = rp + (o * dim_size + ip[j]) * inner;
              for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
            }
          }
        });
        return std::vector<Tensor>{grad_in, Tensor()};
      });
  return out;
}

Tensor NonZero(const Tensor& mask) {
  TDP_CHECK(mask.defined());
  TDP_CHECK(mask.dtype() == DType::kBool && mask.dim() == 1)
      << "NonZero expects a 1-d bool mask";
  const Tensor mc = mask.Contiguous();
  const bool* mp = mc.data<bool>();
  const int64_t n = mc.numel();
  int64_t count = 0;
  for (int64_t i = 0; i < n; ++i) count += mp[i] ? 1 : 0;
  Tensor out = Tensor::Empty({count}, DType::kInt64, mask.device());
  int64_t* op = out.data<int64_t>();
  int64_t j = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (mp[i]) op[j++] = i;
  }
  return out;
}

Tensor MaskedSelectRows(const Tensor& t, const Tensor& mask) {
  TDP_CHECK(t.defined() && mask.defined());
  TDP_CHECK(mask.dim() == 1 && mask.numel() == t.size(0))
      << "mask must be 1-d with one entry per row";
  return IndexSelect(t, 0, NonZero(mask));
}

Tensor Gather(const Tensor& t, int64_t dim, const Tensor& index) {
  TDP_CHECK(t.defined() && index.defined());
  TDP_CHECK(index.dtype() == DType::kInt64);
  TDP_CHECK_EQ(t.dim(), index.dim());
  const int64_t d = NormalizeDim(dim, t.dim());
  const Tensor tc = t.Contiguous();
  const Tensor ic = index.Contiguous();
  Tensor out = Tensor::Empty(index.shape(), t.dtype(), t.device());

  // Walk the index space of `index`; for each position, replace the d-th
  // coordinate by the index value when addressing `t`.
  const int64_t n = ic.numel();
  const std::vector<int64_t> tstrides = ContiguousStrides(t.shape());
  const std::vector<int64_t> istrides = ContiguousStrides(index.shape());
  const int64_t* ip = ic.data<int64_t>();
  TDP_DISPATCH_ALL(t.dtype(), {
    const scalar_t* sp = tc.data<scalar_t>();
    scalar_t* op = out.data<scalar_t>();
    std::vector<int64_t> idx(static_cast<size_t>(index.dim()), 0);
    for (int64_t flat = 0; flat < n; ++flat) {
      const int64_t gathered = ip[flat];
      TDP_CHECK(gathered >= 0 && gathered < t.size(d));
      int64_t soff = 0;
      for (int64_t dd = 0; dd < index.dim(); ++dd) {
        const int64_t coord = dd == d ? gathered : idx[static_cast<size_t>(dd)];
        soff += coord * tstrides[static_cast<size_t>(dd)];
      }
      op[flat] = sp[soff];
      for (int64_t dd = index.dim() - 1; dd >= 0; --dd) {
        const size_t ud = static_cast<size_t>(dd);
        if (++idx[ud] < index.size(dd)) break;
        idx[ud] = 0;
      }
    }
  });

  Tensor index_saved = ic;
  autograd::RecordOp(
      "Gather", {t, Tensor()}, out, [t, d, index_saved](const Tensor& g) {
        Tensor grad_in = Tensor::Zeros(t.shape(), g.dtype(), g.device());
        const Tensor gc = g.Contiguous();
        const std::vector<int64_t> tstrides = ContiguousStrides(t.shape());
        const int64_t n = index_saved.numel();
        const int64_t* ip = index_saved.data<int64_t>();
        TDP_DISPATCH_FLOAT(g.dtype(), {
          const scalar_t* gp = gc.data<scalar_t>();
          scalar_t* rp = grad_in.data<scalar_t>();
          std::vector<int64_t> idx(static_cast<size_t>(index_saved.dim()), 0);
          for (int64_t flat = 0; flat < n; ++flat) {
            int64_t soff = 0;
            for (int64_t dd = 0; dd < index_saved.dim(); ++dd) {
              const int64_t coord =
                  dd == d ? ip[flat] : idx[static_cast<size_t>(dd)];
              soff += coord * tstrides[static_cast<size_t>(dd)];
            }
            rp[soff] += gp[flat];
            for (int64_t dd = index_saved.dim() - 1; dd >= 0; --dd) {
              const size_t ud = static_cast<size_t>(dd);
              if (++idx[ud] < index_saved.size(dd)) break;
              idx[ud] = 0;
            }
          }
        });
        return std::vector<Tensor>{grad_in, Tensor()};
      });
  return out;
}

Tensor ScatterAddRows(const Tensor& base, const Tensor& index,
                      const Tensor& src) {
  TDP_CHECK(base.defined() && index.defined() && src.defined());
  TDP_CHECK(index.dtype() == DType::kInt64 && index.dim() == 1);
  TDP_CHECK_EQ(index.numel(), src.size(0));
  TDP_CHECK_EQ(base.dim(), src.dim());
  for (int64_t i = 1; i < base.dim(); ++i) {
    TDP_CHECK_EQ(base.size(i), src.size(i));
  }
  Tensor out = base.Detach().Clone();
  const Tensor sc = src.Detach().Contiguous();
  const Tensor ic = index.Contiguous();
  const int64_t rows = src.size(0);
  const int64_t inner = src.numel() / std::max<int64_t>(rows, 1);
  const int64_t* ip = ic.data<int64_t>();
  TDP_DISPATCH_NUMERIC(base.dtype(), {
    scalar_t* op = out.data<scalar_t>();
    const scalar_t* sp = sc.data<scalar_t>();
    for (int64_t r = 0; r < rows; ++r) {
      const int64_t dst = ip[r];
      TDP_CHECK(dst >= 0 && dst < out.size(0));
      scalar_t* d = op + dst * inner;
      const scalar_t* s = sp + r * inner;
      for (int64_t i = 0; i < inner; ++i) d[i] += s[i];
    }
  });
  Tensor index_saved = ic;
  autograd::RecordOp("ScatterAddRows", {base, Tensor(), src}, out,
                     [index_saved](const Tensor& g) {
                       // d/dbase = g; d/dsrc = g gathered at index rows.
                       return std::vector<Tensor>{
                           g, Tensor(), IndexSelect(g, 0, index_saved)};
                     });
  return out;
}

Tensor OneHot(const Tensor& indices, int64_t num_classes) {
  TDP_CHECK(indices.defined());
  TDP_CHECK(indices.dtype() == DType::kInt64 && indices.dim() == 1);
  TDP_CHECK_GT(num_classes, 0);
  const Tensor ic = indices.Contiguous();
  const int64_t n = ic.numel();
  Tensor out =
      Tensor::Zeros({n, num_classes}, DType::kFloat32, indices.device());
  const int64_t* ip = ic.data<int64_t>();
  float* op = out.data<float>();
  for (int64_t i = 0; i < n; ++i) {
    TDP_CHECK(ip[i] >= 0 && ip[i] < num_classes)
        << "one-hot index " << ip[i] << " out of range";
    op[i * num_classes + ip[i]] = 1.0f;
  }
  return out;
}

}  // namespace tdp
