#include <cstring>
#include <limits>
#include <vector>

#include "src/autograd/node.h"
#include "src/common/thread_pool.h"
#include "src/tensor/dispatch.h"
#include "src/tensor/ops.h"
#include "src/tensor/scratch.h"

namespace tdp {
namespace {

struct ConvGeometry {
  int64_t batch, in_channels, height, width;
  int64_t out_channels, kernel, stride, padding;
  int64_t out_h, out_w;
};

ConvGeometry MakeConvGeometry(const Tensor& input, const Tensor& weight,
                              int64_t stride, int64_t padding) {
  TDP_CHECK_EQ(input.dim(), 4) << "Conv2d input must be [N, C, H, W]";
  TDP_CHECK_EQ(weight.dim(), 4) << "Conv2d weight must be [O, C, kh, kw]";
  TDP_CHECK_EQ(weight.size(2), weight.size(3))
      << "only square kernels are supported";
  TDP_CHECK_EQ(input.size(1), weight.size(1)) << "channel mismatch";
  TDP_CHECK_GE(stride, 1);
  TDP_CHECK_GE(padding, 0);
  ConvGeometry geo;
  geo.batch = input.size(0);
  geo.in_channels = input.size(1);
  geo.height = input.size(2);
  geo.width = input.size(3);
  geo.out_channels = weight.size(0);
  geo.kernel = weight.size(2);
  geo.stride = stride;
  geo.padding = padding;
  geo.out_h = (geo.height + 2 * padding - geo.kernel) / stride + 1;
  geo.out_w = (geo.width + 2 * padding - geo.kernel) / stride + 1;
  TDP_CHECK(geo.out_h > 0 && geo.out_w > 0) << "conv output would be empty";
  return geo;
}

// Unfolds one sample [C, H, W] into columns [C*k*k, out_h*out_w].
template <typename T>
void Im2Col(const T* img, const ConvGeometry& g, T* cols) {
  const int64_t patch = g.kernel * g.kernel;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    for (int64_t ky = 0; ky < g.kernel; ++ky) {
      for (int64_t kx = 0; kx < g.kernel; ++kx) {
        T* row = cols + (c * patch + ky * g.kernel + kx) * (g.out_h * g.out_w);
        for (int64_t oy = 0; oy < g.out_h; ++oy) {
          const int64_t iy = oy * g.stride + ky - g.padding;
          for (int64_t ox = 0; ox < g.out_w; ++ox) {
            const int64_t ix = ox * g.stride + kx - g.padding;
            row[oy * g.out_w + ox] =
                (iy >= 0 && iy < g.height && ix >= 0 && ix < g.width)
                    ? img[(c * g.height + iy) * g.width + ix]
                    : static_cast<T>(0);
          }
        }
      }
    }
  }
}

// Folds columns back into an image, accumulating overlaps (im2col adjoint).
template <typename T>
void Col2Im(const T* cols, const ConvGeometry& g, T* img) {
  const int64_t patch = g.kernel * g.kernel;
  std::memset(img, 0,
              static_cast<size_t>(g.in_channels * g.height * g.width) *
                  sizeof(T));
  for (int64_t c = 0; c < g.in_channels; ++c) {
    for (int64_t ky = 0; ky < g.kernel; ++ky) {
      for (int64_t kx = 0; kx < g.kernel; ++kx) {
        const T* row =
            cols + (c * patch + ky * g.kernel + kx) * (g.out_h * g.out_w);
        for (int64_t oy = 0; oy < g.out_h; ++oy) {
          const int64_t iy = oy * g.stride + ky - g.padding;
          if (iy < 0 || iy >= g.height) continue;
          for (int64_t ox = 0; ox < g.out_w; ++ox) {
            const int64_t ix = ox * g.stride + kx - g.padding;
            if (ix < 0 || ix >= g.width) continue;
            img[(c * g.height + iy) * g.width + ix] += row[oy * g.out_w + ox];
          }
        }
      }
    }
  }
}

// Dense row-major GEMM for the im2col path. Like `MatMulAccel`, every
// a-element participates unconditionally: skipping zero multiplicands
// would break both vectorization and IEEE non-finite propagation
// (0 * inf = NaN must survive the accelerated path).
template <typename T>
void GemmRowMajor(const T* __restrict a, const T* __restrict b,
                  T* __restrict c, int64_t m, int64_t k, int64_t n,
                  bool accumulate) {
  if (!accumulate) std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(T));
  for (int64_t i = 0; i < m; ++i) {
    const T* __restrict arow = a + i * k;
    T* __restrict crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const T av = arow[p];
      const T* __restrict brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t stride, int64_t padding) {
  TDP_CHECK(input.defined() && weight.defined());
  TDP_CHECK(IsFloatingPoint(input.dtype()) && input.dtype() == weight.dtype());
  const ConvGeometry g = MakeConvGeometry(input, weight, stride, padding);
  if (bias.defined()) {
    TDP_CHECK_EQ(bias.dim(), 1);
    TDP_CHECK_EQ(bias.numel(), g.out_channels);
  }

  // Row-major operands via the format tag: dense inputs pass through,
  // strided views hit the cached reorder. The bias is read in place (no
  // per-call ToVector copy — it used to be re-materialized every forward).
  const Tensor ic = input.RowMajor();
  const Tensor wc = weight.RowMajor();
  const Tensor bc = bias.defined() ? bias.RowMajor() : Tensor();
  Tensor out = Tensor::Empty({g.batch, g.out_channels, g.out_h, g.out_w},
                             input.dtype(), input.device());
  const int64_t cols_rows = g.in_channels * g.kernel * g.kernel;
  const int64_t cols_cols = g.out_h * g.out_w;
  const bool accel = input.device() == Device::kAccel;

  TDP_DISPATCH_FLOAT(input.dtype(), {
    const scalar_t* ip = ic.data<scalar_t>();
    const scalar_t* wp = wc.data<scalar_t>();
    scalar_t* op = out.data<scalar_t>();
    const scalar_t* bp = bc.defined() ? bc.data<scalar_t>() : nullptr;
    // Samples are independent; shard the batch. Each shard unfolds into
    // its thread's scratch arena, so steady-state forwards allocate
    // nothing but the output.
    const int64_t sample_cost =
        SaturatingCostProduct(g.out_channels, cols_rows, cols_cols);
    ParallelFor(0, g.batch, GrainForCost(sample_cost), [&, ip, wp, op, bp](
                    int64_t batch_begin, int64_t batch_end) {
      scalar_t* cols =
          accel ? ScratchArena::ForThread().Get<scalar_t>(
                      /*slot=*/0, cols_rows * cols_cols)
                : nullptr;
      for (int64_t n = batch_begin; n < batch_end; ++n) {
        const scalar_t* img = ip + n * g.in_channels * g.height * g.width;
        scalar_t* dst = op + n * g.out_channels * cols_cols;
        if (accel) {
          // im2col + GEMM: the accelerated path.
          Im2Col(img, g, cols);
          GemmRowMajor(wp, cols, dst, g.out_channels, cols_rows, cols_cols,
                       /*accumulate=*/false);
        } else {
          // Direct convolution with nested bounds checks: the reference path.
          for (int64_t o = 0; o < g.out_channels; ++o) {
            for (int64_t oy = 0; oy < g.out_h; ++oy) {
              for (int64_t ox = 0; ox < g.out_w; ++ox) {
                double acc = 0;
                for (int64_t c = 0; c < g.in_channels; ++c) {
                  for (int64_t ky = 0; ky < g.kernel; ++ky) {
                    const int64_t iy = oy * g.stride + ky - g.padding;
                    if (iy < 0 || iy >= g.height) continue;
                    for (int64_t kx = 0; kx < g.kernel; ++kx) {
                      const int64_t ix = ox * g.stride + kx - g.padding;
                      if (ix < 0 || ix >= g.width) continue;
                      acc += static_cast<double>(
                                 img[(c * g.height + iy) * g.width + ix]) *
                             static_cast<double>(
                                 wp[((o * g.in_channels + c) * g.kernel +
                                     ky) *
                                        g.kernel +
                                    kx]);
                    }
                  }
                }
                dst[(o * g.out_h + oy) * g.out_w + ox] =
                    static_cast<scalar_t>(acc);
              }
            }
          }
        }
        if (bp != nullptr) {
          for (int64_t o = 0; o < g.out_channels; ++o) {
            scalar_t* row = dst + o * cols_cols;
            for (int64_t i = 0; i < cols_cols; ++i) row[i] += bp[o];
          }
        }
      }
    });
  });

  autograd::RecordOp(
      "Conv2d", {input, weight, bias}, out,
      [input, weight, bias, g, cols_rows, cols_cols](const Tensor& grad) {
        const Tensor gc = grad.RowMajor();
        const Tensor ic = input.RowMajor();
        const Tensor wc = weight.RowMajor();
        Tensor grad_input =
            Tensor::Zeros(input.shape(), grad.dtype(), grad.device());
        Tensor grad_weight =
            Tensor::Zeros(weight.shape(), grad.dtype(), grad.device());
        Tensor grad_bias =
            bias.defined()
                ? Tensor::Zeros(bias.shape(), grad.dtype(), grad.device())
                : Tensor();
        TDP_DISPATCH_FLOAT(grad.dtype(), {
          const scalar_t* gp = gc.data<scalar_t>();
          const scalar_t* ip = ic.data<scalar_t>();
          const scalar_t* wp = wc.data<scalar_t>();
          scalar_t* gip = grad_input.data<scalar_t>();
          scalar_t* gwp = grad_weight.data<scalar_t>();
          const int64_t cols_n = cols_rows * cols_cols;
          const int64_t img_n = g.in_channels * g.height * g.width;
          // Three simultaneously-live scratch buffers from this thread's
          // arena (training loops re-enter here every step; the arena
          // makes the steady state allocation-free).
          ScratchArena& arena = ScratchArena::ForThread();
          scalar_t* cols = arena.Get<scalar_t>(/*slot=*/0, cols_n);
          scalar_t* cols_grad = arena.Get<scalar_t>(/*slot=*/1, cols_n);
          scalar_t* img_grad = arena.Get<scalar_t>(/*slot=*/2, img_n);
          for (int64_t n = 0; n < g.batch; ++n) {
            const scalar_t* img = ip + n * img_n;
            const scalar_t* gout = gp + n * g.out_channels * cols_cols;
            Im2Col(img, g, cols);
            // dW[o, r] += sum_j gout[o, j] * cols[r, j]
            for (int64_t o = 0; o < g.out_channels; ++o) {
              const scalar_t* grow = gout + o * cols_cols;
              for (int64_t r = 0; r < cols_rows; ++r) {
                const scalar_t* crow = cols + r * cols_cols;
                double acc = 0;
                for (int64_t j = 0; j < cols_cols; ++j) {
                  acc += static_cast<double>(grow[j]) *
                         static_cast<double>(crow[j]);
                }
                gwp[o * cols_rows + r] += static_cast<scalar_t>(acc);
              }
            }
            // dcols = W^T @ gout, then fold back into the input gradient.
            // As in the forward GEMM, zero weights participate: skipping
            // them would drop non-finite gradient propagation.
            std::memset(cols_grad, 0,
                        static_cast<size_t>(cols_n) * sizeof(scalar_t));
            for (int64_t o = 0; o < g.out_channels; ++o) {
              const scalar_t* __restrict grow = gout + o * cols_cols;
              const scalar_t* wrow = wp + o * cols_rows;
              for (int64_t r = 0; r < cols_rows; ++r) {
                const scalar_t wv = wrow[r];
                scalar_t* __restrict crow = cols_grad + r * cols_cols;
                for (int64_t j = 0; j < cols_cols; ++j) {
                  crow[j] += wv * grow[j];
                }
              }
            }
            Col2Im(cols_grad, g, img_grad);
            scalar_t* gin = gip + n * img_n;
            for (int64_t i = 0; i < img_n; ++i) gin[i] += img_grad[i];
          }
          if (grad_bias.defined()) {
            scalar_t* gbp = grad_bias.data<scalar_t>();
            for (int64_t n = 0; n < g.batch; ++n) {
              for (int64_t o = 0; o < g.out_channels; ++o) {
                const scalar_t* grow =
                    gp + (n * g.out_channels + o) * cols_cols;
                double acc = 0;
                for (int64_t j = 0; j < cols_cols; ++j) {
                  acc += static_cast<double>(grow[j]);
                }
                gbp[o] += static_cast<scalar_t>(acc);
              }
            }
          }
        });
        return std::vector<Tensor>{grad_input, grad_weight, grad_bias};
      });
  return out;
}

namespace {

Tensor Pool2dImpl(const Tensor& input, int64_t kernel, int64_t stride,
                  bool is_max) {
  TDP_CHECK(input.defined());
  TDP_CHECK_EQ(input.dim(), 4) << "pool input must be [N, C, H, W]";
  TDP_CHECK(IsFloatingPoint(input.dtype()));
  TDP_CHECK_GE(kernel, 1);
  TDP_CHECK_GE(stride, 1);
  const int64_t batch = input.size(0), channels = input.size(1),
                height = input.size(2), width = input.size(3);
  const int64_t out_h = (height - kernel) / stride + 1;
  const int64_t out_w = (width - kernel) / stride + 1;
  TDP_CHECK(out_h > 0 && out_w > 0);

  const Tensor ic = input.RowMajor();
  Tensor out = Tensor::Empty({batch, channels, out_h, out_w}, input.dtype(),
                             input.device());
  Tensor argmax;
  if (is_max) {
    argmax = Tensor::Empty({batch, channels, out_h, out_w}, DType::kInt64,
                           input.device());
  }

  TDP_DISPATCH_FLOAT(input.dtype(), {
    const scalar_t* ip = ic.data<scalar_t>();
    scalar_t* op = out.data<scalar_t>();
    int64_t* amp = is_max ? argmax.data<int64_t>() : nullptr;
    // Planes ([N*C] slices) write disjoint output windows; shard them.
    ParallelFor(
        0, batch * channels, GrainForCost(out_h * out_w * kernel * kernel),
        [&, ip, op, amp](int64_t plane_begin, int64_t plane_end) {
          for (int64_t nc = plane_begin; nc < plane_end; ++nc) {
            const scalar_t* plane = ip + nc * height * width;
            for (int64_t oy = 0; oy < out_h; ++oy) {
              for (int64_t ox = 0; ox < out_w; ++ox) {
                const int64_t iy0 = oy * stride, ix0 = ox * stride;
                if (is_max) {
                  scalar_t best = plane[iy0 * width + ix0];
                  int64_t best_idx = iy0 * width + ix0;
                  for (int64_t ky = 0; ky < kernel; ++ky) {
                    for (int64_t kx = 0; kx < kernel; ++kx) {
                      const int64_t idx = (iy0 + ky) * width + (ix0 + kx);
                      if (plane[idx] > best) {
                        best = plane[idx];
                        best_idx = idx;
                      }
                    }
                  }
                  op[(nc * out_h + oy) * out_w + ox] = best;
                  amp[(nc * out_h + oy) * out_w + ox] = best_idx;
                } else {
                  double acc = 0;
                  for (int64_t ky = 0; ky < kernel; ++ky) {
                    for (int64_t kx = 0; kx < kernel; ++kx) {
                      acc += static_cast<double>(
                          plane[(iy0 + ky) * width + (ix0 + kx)]);
                    }
                  }
                  op[(nc * out_h + oy) * out_w + ox] =
                      static_cast<scalar_t>(acc / (kernel * kernel));
                }
              }
            }
          }
        });
  });

  const int64_t hw = height * width;
  const int64_t ohw = out_h * out_w;
  if (is_max) {
    Tensor argmax_saved = argmax;
    autograd::RecordOp(
        "MaxPool2d", {input}, out,
        [input, argmax_saved, batch, channels, hw, ohw](const Tensor& g) {
          Tensor grad_in =
              Tensor::Zeros(input.shape(), g.dtype(), g.device());
          const Tensor gc = g.Contiguous();
          const int64_t* amp = argmax_saved.data<int64_t>();
          TDP_DISPATCH_FLOAT(g.dtype(), {
            const scalar_t* gp = gc.data<scalar_t>();
            scalar_t* rp = grad_in.data<scalar_t>();
            for (int64_t nc = 0; nc < batch * channels; ++nc) {
              for (int64_t i = 0; i < ohw; ++i) {
                rp[nc * hw + amp[nc * ohw + i]] += gp[nc * ohw + i];
              }
            }
          });
          return std::vector<Tensor>{grad_in};
        });
  } else {
    autograd::RecordOp(
        "AvgPool2d", {input}, out,
        [input, batch, channels, hw, ohw, out_h, out_w, width, kernel,
         stride](const Tensor& g) {
          Tensor grad_in =
              Tensor::Zeros(input.shape(), g.dtype(), g.device());
          const Tensor gc = g.Contiguous();
          const double scale = 1.0 / (kernel * kernel);
          TDP_DISPATCH_FLOAT(g.dtype(), {
            const scalar_t* gp = gc.data<scalar_t>();
            scalar_t* rp = grad_in.data<scalar_t>();
            for (int64_t nc = 0; nc < batch * channels; ++nc) {
              for (int64_t oy = 0; oy < out_h; ++oy) {
                for (int64_t ox = 0; ox < out_w; ++ox) {
                  const scalar_t gv = static_cast<scalar_t>(
                      gp[(nc * out_h + oy) * out_w + ox] * scale);
                  for (int64_t ky = 0; ky < kernel; ++ky) {
                    for (int64_t kx = 0; kx < kernel; ++kx) {
                      rp[nc * hw + (oy * stride + ky) * width +
                         (ox * stride + kx)] += gv;
                    }
                  }
                }
              }
            }
          });
          return std::vector<Tensor>{grad_in};
        });
  }
  return out;
}

}  // namespace

Tensor MaxPool2d(const Tensor& input, int64_t kernel, int64_t stride) {
  return Pool2dImpl(input, kernel, stride, /*is_max=*/true);
}

Tensor AvgPool2d(const Tensor& input, int64_t kernel, int64_t stride) {
  return Pool2dImpl(input, kernel, stride, /*is_max=*/false);
}

}  // namespace tdp
