#ifndef TDP_TENSOR_OPS_INTERNAL_H_
#define TDP_TENSOR_OPS_INTERNAL_H_

#include <vector>

#include "src/common/logging.h"
#include "src/tensor/tensor.h"

namespace tdp {
namespace internal_ops {

/// Strides of `t` viewed at broadcast `out_shape`: right-aligned, with 0
/// stride where the input dimension is 1 (or missing).
inline std::vector<int64_t> BroadcastStrides(
    const std::vector<int64_t>& shape, const std::vector<int64_t>& strides,
    const std::vector<int64_t>& out_shape) {
  const size_t out_rank = out_shape.size();
  const size_t rank = shape.size();
  std::vector<int64_t> out(out_rank, 0);
  for (size_t i = 0; i < rank; ++i) {
    const size_t o = out_rank - rank + i;
    if (shape[i] == 1 && out_shape[o] != 1) {
      out[o] = 0;
    } else {
      out[o] = strides[i];
    }
  }
  return out;
}

/// Odometer over an index space that tracks element offsets into several
/// strided operands at once. Usage:
///   OffsetIterator it(shape, {strides_a, strides_b});
///   for (int64_t i = 0; i < n; ++i, it.Next()) {
///     ... it.offset(0), it.offset(1) ...
///   }
class OffsetIterator {
 public:
  OffsetIterator(const std::vector<int64_t>& shape,
                 std::vector<std::vector<int64_t>> strides)
      : shape_(shape),
        strides_(std::move(strides)),
        index_(shape.size(), 0),
        offsets_(strides_.size(), 0) {}

  int64_t offset(size_t operand) const { return offsets_[operand]; }

  /// Positions the iterator at linear index `flat` of the index space, as
  /// if Next() had been called `flat` times. Lets parallel kernels hand
  /// each shard its own iterator seeked to the shard's first element.
  void Seek(int64_t flat) {
    for (int64_t d = static_cast<int64_t>(shape_.size()) - 1; d >= 0; --d) {
      const size_t ud = static_cast<size_t>(d);
      index_[ud] = shape_[ud] > 0 ? flat % shape_[ud] : 0;
      flat = shape_[ud] > 0 ? flat / shape_[ud] : flat;
    }
    for (size_t k = 0; k < strides_.size(); ++k) {
      int64_t off = 0;
      for (size_t d = 0; d < shape_.size(); ++d) {
        off += index_[d] * strides_[k][d];
      }
      offsets_[k] = off;
    }
  }

  void Next() {
    for (int64_t d = static_cast<int64_t>(shape_.size()) - 1; d >= 0; --d) {
      const size_t ud = static_cast<size_t>(d);
      ++index_[ud];
      for (size_t k = 0; k < strides_.size(); ++k) {
        offsets_[k] += strides_[k][ud];
      }
      if (index_[ud] < shape_[ud]) return;
      for (size_t k = 0; k < strides_.size(); ++k) {
        offsets_[k] -= index_[ud] * strides_[k][ud];
      }
      index_[ud] = 0;
    }
  }

 private:
  const std::vector<int64_t>& shape_;
  std::vector<std::vector<int64_t>> strides_;
  std::vector<int64_t> index_;
  std::vector<int64_t> offsets_;
};

/// Checks all defined inputs share one device and returns it.
Device CommonDevice(const std::vector<Tensor>& inputs);

/// Normalizes a possibly-negative dim.
inline int64_t NormalizeDim(int64_t dim, int64_t rank) {
  if (dim < 0) dim += rank;
  TDP_CHECK(dim >= 0 && dim < rank)
      << "dim " << dim << " out of range for rank " << rank;
  return dim;
}

}  // namespace internal_ops
}  // namespace tdp

#endif  // TDP_TENSOR_OPS_INTERNAL_H_
