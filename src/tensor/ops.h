#ifndef TDP_TENSOR_OPS_H_
#define TDP_TENSOR_OPS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace tdp {

// All ops return fresh contiguous tensors (views are the exception and are
// documented as such). Ops marked [diff] record the autograd graph when an
// input requires grad and grad mode is on. Inputs must share a device; the
// device picks the kernel backend (see device.h).

// ---- Binary arithmetic (broadcasting, dtype promotion) -------- [diff] ----
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
/// Elementwise max/min. [diff] via subgradient (ties favor `a`).
Tensor Maximum(const Tensor& a, const Tensor& b);
Tensor Minimum(const Tensor& a, const Tensor& b);

// Scalar conveniences (scalar adopts the tensor's dtype/device).
Tensor AddScalar(const Tensor& a, double s);
Tensor SubScalar(const Tensor& a, double s);
Tensor RSubScalar(double s, const Tensor& a);  // s - a
Tensor MulScalar(const Tensor& a, double s);
Tensor DivScalar(const Tensor& a, double s);
Tensor RDivScalar(double s, const Tensor& a);  // s / a

// ---- Comparisons (result dtype kBool, broadcasting, no grad) -------------
Tensor Eq(const Tensor& a, const Tensor& b);
Tensor Ne(const Tensor& a, const Tensor& b);
Tensor Lt(const Tensor& a, const Tensor& b);
Tensor Le(const Tensor& a, const Tensor& b);
Tensor Gt(const Tensor& a, const Tensor& b);
Tensor Ge(const Tensor& a, const Tensor& b);

// ---- Boolean logic (kBool inputs/outputs, broadcasting) ------------------
Tensor LogicalAnd(const Tensor& a, const Tensor& b);
Tensor LogicalOr(const Tensor& a, const Tensor& b);
Tensor LogicalNot(const Tensor& a);

/// Selects `a` where `cond` (kBool) else `b`. [diff] in a and b.
Tensor Where(const Tensor& cond, const Tensor& a, const Tensor& b);

// ---- Unary ------------------------------------------------------ [diff] --
Tensor Neg(const Tensor& t);
Tensor Exp(const Tensor& t);
Tensor Log(const Tensor& t);
Tensor Sqrt(const Tensor& t);
Tensor Abs(const Tensor& t);
Tensor Sign(const Tensor& t);  // no grad (zero a.e.)
Tensor Relu(const Tensor& t);
Tensor Sigmoid(const Tensor& t);
Tensor Tanh(const Tensor& t);
/// Clamps into [min_value, max_value]. [diff] (pass-through inside range).
Tensor Clamp(const Tensor& t, double min_value, double max_value);
Tensor PowScalar(const Tensor& t, double exponent);
Tensor Floor(const Tensor& t);  // no grad
Tensor Round(const Tensor& t);  // no grad

// ---- Reductions --------------------------------------------------- [diff] -
/// Sum of all elements (rank-0 result).
Tensor Sum(const Tensor& t);
/// Sum over `dim`.
Tensor Sum(const Tensor& t, int64_t dim, bool keepdim);
Tensor Mean(const Tensor& t);
Tensor Mean(const Tensor& t, int64_t dim, bool keepdim);

struct MinMaxResult {
  Tensor values;   // [diff]
  Tensor indices;  // kInt64, no grad
};
/// Max/min over `dim` with argmax/argmin indices.
MinMaxResult Max(const Tensor& t, int64_t dim, bool keepdim);
MinMaxResult Min(const Tensor& t, int64_t dim, bool keepdim);
/// Max/min of all elements (rank-0). No indices.
Tensor MaxAll(const Tensor& t);
Tensor MinAll(const Tensor& t);
Tensor ArgMax(const Tensor& t, int64_t dim, bool keepdim);
/// Inclusive cumulative sum along `dim`. [diff]
Tensor CumSum(const Tensor& t, int64_t dim);
/// Number of true elements of a kBool tensor (rank-0 kInt64).
Tensor CountNonzero(const Tensor& t);

// ---- Linear algebra ------------------------------------------------ [diff] -
/// [m,k] @ [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);
/// Batched: [b,m,k] @ [b,k,n] -> [b,m,n].
Tensor BMM(const Tensor& a, const Tensor& b);

// ---- Shape ops (views where noted) ---------------------------------------
/// One dim may be -1 (inferred). View when contiguous, copy otherwise. [diff]
Tensor Reshape(const Tensor& t, std::vector<int64_t> shape);
Tensor Transpose(const Tensor& t, int64_t d0, int64_t d1);  // view [diff]
Tensor Permute(const Tensor& t, std::vector<int64_t> dims);  // view [diff]
Tensor Slice(const Tensor& t, int64_t dim, int64_t start,
             int64_t length);                                // view [diff]
Tensor Squeeze(const Tensor& t, int64_t dim);                // view [diff]
Tensor Unsqueeze(const Tensor& t, int64_t dim);              // view [diff]
Tensor Expand(const Tensor& t, std::vector<int64_t> shape);  // view [diff]
/// Concatenates along `dim`. [diff]
Tensor Cat(const std::vector<Tensor>& tensors, int64_t dim);
/// Stacks along a new leading `dim`. [diff]
Tensor Stack(const std::vector<Tensor>& tensors, int64_t dim);

// ---- Indexing -------------------------------------------------------------
/// Rows of `t` along `dim` at `indices` (kInt64 1-d). [diff] in t.
Tensor IndexSelect(const Tensor& t, int64_t dim, const Tensor& indices);
/// Rows of `t` (dim 0) where 1-d kBool `mask` is true. [diff] in t.
Tensor MaskedSelectRows(const Tensor& t, const Tensor& mask);
/// PyTorch gather along `dim`: out[i][j] = t[index[i][j]][j] (dim=0 case).
Tensor Gather(const Tensor& t, int64_t dim, const Tensor& index);  // [diff]
/// base[index[i]][...] += src[i][...] along dim 0; returns a new tensor.
/// [diff] in base and src.
Tensor ScatterAddRows(const Tensor& base, const Tensor& index,
                      const Tensor& src);
/// Indices (kInt64, 1-d) of true elements of a 1-d kBool mask.
Tensor NonZero(const Tensor& mask);
/// One-hot encodes 1-d integer `indices` -> [n, num_classes] float32.
Tensor OneHot(const Tensor& indices, int64_t num_classes);

// ---- Sorting / uniquing (1-d) ---------------------------------------------
/// Stable argsort of a 1-d numeric tensor (kInt64 permutation).
Tensor ArgSort(const Tensor& t, bool descending = false);
struct SortResult {
  Tensor values;
  Tensor indices;
};
SortResult Sort(const Tensor& t, bool descending = false);
struct UniqueResult {
  Tensor values;   // ascending unique values
  Tensor inverse;  // kInt64: values[inverse[i]] == t[i]
  Tensor counts;   // kInt64 per unique value
};
/// Unique of a 1-d numeric tensor (sorted ascending).
UniqueResult Unique(const Tensor& t);

// ---- Convolution / pooling (NCHW, float) ---------------------- [diff] ----
Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t stride, int64_t padding);
Tensor MaxPool2d(const Tensor& input, int64_t kernel, int64_t stride);
Tensor AvgPool2d(const Tensor& input, int64_t kernel, int64_t stride);

// ---- Composite / NN helpers ------------------------------------ [diff] ----
/// Numerically-stabilized softmax along `dim`.
Tensor Softmax(const Tensor& t, int64_t dim);
Tensor LogSoftmax(const Tensor& t, int64_t dim);
/// x / max(||x||_2, eps) along `dim`.
Tensor L2Normalize(const Tensor& t, int64_t dim, double eps = 1e-12);

// ---- Random fills ----------------------------------------------------------
Tensor RandUniform(std::vector<int64_t> shape, double lo, double hi, Rng& rng,
                   DType dtype = DType::kFloat32,
                   Device device = Device::kCpu);
Tensor RandNormal(std::vector<int64_t> shape, double mean, double stddev,
                  Rng& rng, DType dtype = DType::kFloat32,
                  Device device = Device::kCpu);
Tensor RandInt(std::vector<int64_t> shape, int64_t lo, int64_t hi, Rng& rng,
               Device device = Device::kCpu);  // [lo, hi] inclusive, kInt64

// ---- Testing utilities ------------------------------------------------------
/// True if same shape and elementwise |a-b| <= atol + rtol*|b|.
bool AllClose(const Tensor& a, const Tensor& b, double rtol = 1e-5,
              double atol = 1e-6);
/// Exact equality of shape, dtype and elements.
bool TensorEqual(const Tensor& a, const Tensor& b);

// Internal: sums `grad` down to `shape` (undoing broadcasting).
Tensor ReduceGradToShape(const Tensor& grad, const std::vector<int64_t>& shape);

// ---- Operator sugar ---------------------------------------------------------
inline Tensor operator+(const Tensor& a, const Tensor& b) { return Add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return Sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return Mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return Div(a, b); }
inline Tensor operator-(const Tensor& a) { return Neg(a); }
inline Tensor operator+(const Tensor& a, double s) { return AddScalar(a, s); }
inline Tensor operator-(const Tensor& a, double s) { return SubScalar(a, s); }
inline Tensor operator*(const Tensor& a, double s) { return MulScalar(a, s); }
inline Tensor operator/(const Tensor& a, double s) { return DivScalar(a, s); }
inline Tensor operator+(double s, const Tensor& a) { return AddScalar(a, s); }
inline Tensor operator-(double s, const Tensor& a) { return RSubScalar(s, a); }
inline Tensor operator*(double s, const Tensor& a) { return MulScalar(a, s); }
inline Tensor operator/(double s, const Tensor& a) { return RDivScalar(s, a); }

}  // namespace tdp

#endif  // TDP_TENSOR_OPS_H_
