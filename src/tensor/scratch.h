#ifndef TDP_TENSOR_SCRATCH_H_
#define TDP_TENSOR_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tdp {

/// Grow-only, thread-local scratch storage for kernel temporaries (im2col
/// panels, GEMM workspaces). Hot kernels used to allocate these per call —
/// a conv forward re-allocated its whole im2col buffer every invocation.
/// The arena keeps one high-water-mark buffer per (thread, slot), so
/// repeated prepared-statement runs and training iterations reuse warm
/// memory with zero allocations at steady state.
///
/// Returned memory is 64-byte aligned (matching `Buffer`) and its contents
/// are unspecified — callers initialize what they read. A pointer is
/// invalidated by the next `Get` on the same thread and slot that needs
/// more capacity; kernels therefore fetch all their slots up front.
class ScratchArena {
 public:
  /// The calling thread's arena. Safe from pool workers: each thread owns
  /// its storage, freed at thread exit.
  static ScratchArena& ForThread();

  /// Scratch for at least `count` elements of T in `slot`. Slots keep a
  /// kernel's simultaneously-live buffers apart (a conv backward holds
  /// im2col columns, column gradients, and an image gradient at once).
  template <typename T>
  T* Get(int slot, int64_t count) {
    return static_cast<T*>(
        GetBytes(slot, count * static_cast<int64_t>(sizeof(T))));
  }

  /// Process-wide count of arena grow events (relaxed). Steady-state
  /// kernels stop growing after the first call over a given shape; tests
  /// and benches assert the delta stays 0 across warm iterations.
  static int64_t growth_count();

  ~ScratchArena();
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

 private:
  ScratchArena() = default;

  void* GetBytes(int slot, int64_t bytes);

  struct Slot {
    void* data = nullptr;
    int64_t capacity_bytes = 0;
  };
  std::vector<Slot> slots_;
};

}  // namespace tdp

#endif  // TDP_TENSOR_SCRATCH_H_
