#ifndef TDP_TENSOR_BUFFER_H_
#define TDP_TENSOR_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <memory>

namespace tdp {

/// Reference-counted, 64-byte-aligned byte buffer backing tensor storage.
/// Multiple tensor views may share one buffer (slices, reshapes,
/// transposes), so buffers are immutable in size once allocated.
class Buffer {
 public:
  /// Allocates `size_bytes` (zero-initialized when `zero` is true).
  static std::shared_ptr<Buffer> Allocate(int64_t size_bytes,
                                          bool zero = false);

  /// Process-wide count of `Allocate` calls (monotonic, relaxed). Lets
  /// tests and benches assert steady-state allocation behavior of hot
  /// kernels — e.g. that a conv forward with cached scratch performs
  /// exactly one buffer allocation (the output).
  static int64_t allocation_count();

  ~Buffer();

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  int64_t size_bytes() const { return size_bytes_; }

 private:
  Buffer(uint8_t* data, int64_t size_bytes)
      : data_(data), size_bytes_(size_bytes) {}

  uint8_t* data_;
  int64_t size_bytes_;
};

}  // namespace tdp

#endif  // TDP_TENSOR_BUFFER_H_
