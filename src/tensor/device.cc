#include "src/tensor/device.h"

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace tdp {

std::string_view DeviceName(Device device) {
  switch (device) {
    case Device::kCpu:
      return "cpu";
    case Device::kAccel:
      return "accel";
  }
  return "unknown";
}

Device ParseDevice(std::string_view name) {
  if (EqualsIgnoreCase(name, "cpu")) return Device::kCpu;
  if (EqualsIgnoreCase(name, "accel") || EqualsIgnoreCase(name, "cuda") ||
      EqualsIgnoreCase(name, "gpu")) {
    return Device::kAccel;
  }
  TDP_LOG(Fatal) << "unknown device name: " << name;
  return Device::kCpu;
}

}  // namespace tdp
