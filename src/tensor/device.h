#ifndef TDP_TENSOR_DEVICE_H_
#define TDP_TENSOR_DEVICE_H_

#include <string_view>

namespace tdp {

/// Execution device for tensor kernels.
///
/// The paper runs TDP on CPU and on an NVIDIA V100 through PyTorch. This
/// reproduction has no GPU, so the device axis selects between two kernel
/// *backends* with very different efficiency, mirroring the mechanism that
/// produces the paper's CPU/GPU gap (same physical plan, different kernel
/// quality):
///   - `kCpu`   — reference backend: strided per-element loops with
///                type-erased inner dispatch (an un-accelerated engine).
///   - `kAccel` — accelerated backend: contiguous tight loops, blocked
///                matmul, im2col convolution, fused similarity kernels.
enum class Device : uint8_t {
  kCpu = 0,
  kAccel,
};

/// "cpu" or "accel".
std::string_view DeviceName(Device device);

/// Parses "cpu"/"accel" (also accepts the paper's spelling "cuda" as an
/// alias for the accelerated backend). Fatal on unknown names.
Device ParseDevice(std::string_view name);

}  // namespace tdp

#endif  // TDP_TENSOR_DEVICE_H_
