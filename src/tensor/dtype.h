#ifndef TDP_TENSOR_DTYPE_H_
#define TDP_TENSOR_DTYPE_H_

#include <cstdint>
#include <string_view>

namespace tdp {

/// Element type of a tensor. Float32 is the primary compute type (and the
/// only one tracked by autograd together with Float64); integer and bool
/// types back relational columns, masks, and index tensors.
enum class DType : uint8_t {
  kFloat32 = 0,
  kFloat64,
  kInt32,
  kInt64,
  kUInt8,
  kBool,
};

/// Size in bytes of one element of `dtype`.
int64_t DTypeSize(DType dtype);

/// Stable lowercase name, e.g. "float32".
std::string_view DTypeName(DType dtype);

/// True for kFloat32/kFloat64.
bool IsFloatingPoint(DType dtype);

/// True for kInt32/kInt64/kUInt8.
bool IsInteger(DType dtype);

/// C++ type -> DType mapping (primary template intentionally undefined).
template <typename T>
struct DTypeOf;

template <>
struct DTypeOf<float> {
  static constexpr DType value = DType::kFloat32;
};
template <>
struct DTypeOf<double> {
  static constexpr DType value = DType::kFloat64;
};
template <>
struct DTypeOf<int32_t> {
  static constexpr DType value = DType::kInt32;
};
template <>
struct DTypeOf<int64_t> {
  static constexpr DType value = DType::kInt64;
};
template <>
struct DTypeOf<uint8_t> {
  static constexpr DType value = DType::kUInt8;
};
template <>
struct DTypeOf<bool> {
  static constexpr DType value = DType::kBool;
};

/// Result dtype of arithmetic between `a` and `b` (numpy-like promotion:
/// any float wins, wider wins, bool promotes to the other side).
DType PromoteTypes(DType a, DType b);

}  // namespace tdp

#endif  // TDP_TENSOR_DTYPE_H_
