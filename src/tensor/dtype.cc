#include "src/tensor/dtype.h"

#include "src/common/logging.h"

namespace tdp {

int64_t DTypeSize(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return 4;
    case DType::kFloat64:
      return 8;
    case DType::kInt32:
      return 4;
    case DType::kInt64:
      return 8;
    case DType::kUInt8:
      return 1;
    case DType::kBool:
      return 1;
  }
  TDP_LOG(Fatal) << "unknown dtype";
  return 0;
}

std::string_view DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return "float32";
    case DType::kFloat64:
      return "float64";
    case DType::kInt32:
      return "int32";
    case DType::kInt64:
      return "int64";
    case DType::kUInt8:
      return "uint8";
    case DType::kBool:
      return "bool";
  }
  return "unknown";
}

bool IsFloatingPoint(DType dtype) {
  return dtype == DType::kFloat32 || dtype == DType::kFloat64;
}

bool IsInteger(DType dtype) {
  return dtype == DType::kInt32 || dtype == DType::kInt64 ||
         dtype == DType::kUInt8;
}

DType PromoteTypes(DType a, DType b) {
  if (a == b) return a;
  auto rank = [](DType t) {
    switch (t) {
      case DType::kBool:
        return 0;
      case DType::kUInt8:
        return 1;
      case DType::kInt32:
        return 2;
      case DType::kInt64:
        return 3;
      case DType::kFloat32:
        return 4;
      case DType::kFloat64:
        return 5;
    }
    return -1;
  };
  return rank(a) > rank(b) ? a : b;
}

}  // namespace tdp
