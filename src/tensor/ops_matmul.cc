#include <cstring>

#include "src/autograd/node.h"
#include "src/common/thread_pool.h"
#include "src/tensor/dispatch.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

double ReferenceFma(double acc, double x, double y) { return acc + x * y; }

// Reference backend: textbook i-j-k loop over strided views with the
// multiply-accumulate routed through an opaque function pointer — the
// per-value indirection of an interpreted engine (and it keeps the
// compiler from auto-vectorizing the reference path, which would erase
// the backend contrast the device axis models).
// Rows of the output are independent, so both backends shard the i loop
// across the pool. Each output element's accumulation order is unchanged,
// making results bit-for-bit identical for every TDP_NUM_THREADS.
template <typename T>
void MatMulReference(const T* a, int64_t ras, int64_t cas, const T* b,
                     int64_t rbs, int64_t cbs, T* c, int64_t m, int64_t k,
                     int64_t n) {
  ParallelFor(0, m, GrainForCost(SaturatingCostProduct(k, n)),
              [=](int64_t row_begin, int64_t row_end) {
                double (*volatile fma)(double, double, double) = &ReferenceFma;
                for (int64_t i = row_begin; i < row_end; ++i) {
                  for (int64_t j = 0; j < n; ++j) {
                    double acc = 0;
                    for (int64_t p = 0; p < k; ++p) {
                      acc = fma(acc, static_cast<double>(a[i * ras + p * cas]),
                                static_cast<double>(b[p * rbs + j * cbs]));
                    }
                    c[i * n + j] = static_cast<T>(acc);
                  }
                }
              });
}

// Accelerated backend: i-k-j ordering with contiguous rows; the inner loop
// is a saxpy the compiler vectorizes (tools/check_vectorization.sh keeps
// it honest in CI). Every a-element participates unconditionally — a
// data-dependent skip of zero multiplicands would both break SIMD and drop
// IEEE non-finite propagation (0 * inf must yield NaN, exactly as the
// reference backend computes it).
template <typename T>
void MatMulAccel(const T* __restrict a, const T* __restrict b, T* __restrict c,
                 int64_t m, int64_t k, int64_t n) {
  ParallelFor(
      0, m, GrainForCost(SaturatingCostProduct(k, n)),
      [=](int64_t row_begin, int64_t row_end) {
        std::memset(c + row_begin * n, 0,
                    static_cast<size_t>((row_end - row_begin) * n) * sizeof(T));
        for (int64_t i = row_begin; i < row_end; ++i) {
          const T* __restrict arow = a + i * k;
          T* __restrict crow = c + i * n;
          for (int64_t p = 0; p < k; ++p) {
            const T av = arow[p];
            const T* __restrict brow = b + p * n;
            for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      });
}

Tensor MatMulEval(const Tensor& a, const Tensor& b) {
  TDP_CHECK(a.defined() && b.defined());
  TDP_CHECK_EQ(a.dim(), 2);
  TDP_CHECK_EQ(b.dim(), 2);
  TDP_CHECK_EQ(a.size(1), b.size(0))
      << "matmul inner dims: " << ShapeToString(a.shape()) << " @ "
      << ShapeToString(b.shape());
  TDP_CHECK(a.dtype() == b.dtype());
  TDP_CHECK(IsFloatingPoint(a.dtype())) << "matmul requires float tensors";
  TDP_CHECK(a.device() == b.device());

  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  Tensor out = Tensor::Empty({m, n}, a.dtype(), a.device());

  if (a.device() == Device::kCpu) {
    TDP_DISPATCH_FLOAT(a.dtype(), {
      // Strided access directly on the views (no contiguous copy): this is
      // intentionally the slow path.
      const scalar_t* ap =
          reinterpret_cast<const scalar_t*>(a.impl()->buffer->data()) +
          a.offset();
      const scalar_t* bp =
          reinterpret_cast<const scalar_t*>(b.impl()->buffer->data()) +
          b.offset();
      MatMulReference(ap, a.strides()[0], a.strides()[1], bp, b.strides()[0],
                      b.strides()[1], out.data<scalar_t>(), m, k, n);
    });
    return out;
  }

  // Request row-major operands through the format tag: already-dense views
  // pass through untouched, strided views hit the impl's cached reorder
  // (built once, reused by every later call over the same view).
  const Tensor ac = a.RowMajor();
  const Tensor bc = b.RowMajor();
  TDP_DISPATCH_FLOAT(a.dtype(), {
    MatMulAccel(ac.data<scalar_t>(), bc.data<scalar_t>(),
                out.data<scalar_t>(), m, k, n);
  });
  return out;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor out = MatMulEval(a, b);
  autograd::RecordOp("MatMul", {a, b}, out, [a, b](const Tensor& g) {
    // dA = g @ B^T ; dB = A^T @ g
    Tensor ga = MatMul(g, Transpose(b.Detach(), 0, 1));
    Tensor gb = MatMul(Transpose(a.Detach(), 0, 1), g);
    return std::vector<Tensor>{ga.Contiguous(), gb.Contiguous()};
  });
  return out;
}

Tensor BMM(const Tensor& a, const Tensor& b) {
  TDP_CHECK(a.defined() && b.defined());
  TDP_CHECK_EQ(a.dim(), 3);
  TDP_CHECK_EQ(b.dim(), 3);
  TDP_CHECK_EQ(a.size(0), b.size(0));
  TDP_CHECK_EQ(a.size(2), b.size(1));
  TDP_CHECK(IsFloatingPoint(a.dtype()) && a.dtype() == b.dtype());

  const int64_t batch = a.size(0), m = a.size(1), k = a.size(2),
                n = b.size(2);
  const Tensor ac = a.RowMajor();
  const Tensor bc = b.RowMajor();
  Tensor out = Tensor::Empty({batch, m, n}, a.dtype(), a.device());

  TDP_DISPATCH_FLOAT(a.dtype(), {
    const scalar_t* ap = ac.data<scalar_t>();
    const scalar_t* bp = bc.data<scalar_t>();
    scalar_t* op = out.data<scalar_t>();
    // Shard over the batch; the per-matrix kernels run inline inside the
    // shard (nested ParallelFor calls do not re-enter the pool).
    const bool reference = a.device() == Device::kCpu;
    ParallelFor(0, batch, GrainForCost(SaturatingCostProduct(m, k, n)),
                [=](int64_t batch_begin, int64_t batch_end) {
                  for (int64_t bi = batch_begin; bi < batch_end; ++bi) {
                    if (reference) {
                      MatMulReference(ap + bi * m * k, k, int64_t{1},
                                      bp + bi * k * n, n, int64_t{1},
                                      op + bi * m * n, m, k, n);
                    } else {
                      MatMulAccel(ap + bi * m * k, bp + bi * k * n,
                                  op + bi * m * n, m, k, n);
                    }
                  }
                });
  });

  autograd::RecordOp("BMM", {a, b}, out, [a, b](const Tensor& g) {
    Tensor ga = BMM(g, Permute(b.Detach(), {0, 2, 1}));
    Tensor gb = BMM(Permute(a.Detach(), {0, 2, 1}), g);
    return std::vector<Tensor>{ga.Contiguous(), gb.Contiguous()};
  });
  return out;
}

}  // namespace tdp
