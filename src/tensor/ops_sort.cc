#include <algorithm>
#include <cmath>
#include <numeric>
#include <type_traits>

#include "src/autograd/node.h"
#include "src/tensor/dispatch.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

// Floating-point comparisons with NaN violate strict weak ordering, which
// is undefined behavior in std::stable_sort. Give floats a total order:
// NaN sorts after every real value (in both directions, like SQL NULLS
// LAST), and all NaNs compare equivalent to each other.
template <typename T>
bool IsNan(T v) {
  if constexpr (std::is_floating_point_v<T>) {
    return std::isnan(v);
  } else {
    (void)v;
    return false;
  }
}

// True when `a` and `b` belong to the same equivalence class of the total
// order (equal values, or both NaN).
template <typename T>
bool SameValue(T a, T b) {
  return a == b || (IsNan(a) && IsNan(b));
}

}  // namespace

Tensor ArgSort(const Tensor& t, bool descending) {
  TDP_CHECK(t.defined());
  TDP_CHECK_EQ(t.dim(), 1) << "ArgSort expects a 1-d tensor";
  TDP_CHECK(t.dtype() != DType::kBool);
  const Tensor tc = t.Detach().Contiguous();
  const int64_t n = tc.numel();
  Tensor out = Tensor::Empty({n}, DType::kInt64, t.device());
  int64_t* op = out.data<int64_t>();
  std::iota(op, op + n, 0);
  TDP_DISPATCH_NUMERIC(t.dtype(), {
    const scalar_t* sp = tc.data<scalar_t>();
    if (descending) {
      std::stable_sort(op, op + n, [sp](int64_t a, int64_t b) {
        if (IsNan(sp[a])) return false;  // NaN last
        if (IsNan(sp[b])) return true;
        return sp[a] > sp[b];
      });
    } else {
      std::stable_sort(op, op + n, [sp](int64_t a, int64_t b) {
        if (IsNan(sp[a])) return false;  // NaN last
        if (IsNan(sp[b])) return true;
        return sp[a] < sp[b];
      });
    }
  });
  return out;
}

SortResult Sort(const Tensor& t, bool descending) {
  Tensor indices = ArgSort(t, descending);
  Tensor values = IndexSelect(t, 0, indices);
  return {values, indices};
}

UniqueResult Unique(const Tensor& t) {
  TDP_CHECK(t.defined());
  TDP_CHECK_EQ(t.dim(), 1) << "Unique expects a 1-d tensor";
  const Tensor tc = t.Detach().Contiguous();
  const int64_t n = tc.numel();
  const Tensor order = ArgSort(tc, /*descending=*/false);
  const int64_t* op = order.data<int64_t>();

  UniqueResult result;
  Tensor inverse = Tensor::Empty({n}, DType::kInt64, t.device());
  int64_t* inv = inverse.data<int64_t>();

  TDP_DISPATCH_NUMERIC(t.dtype(), {
    const scalar_t* sp = tc.data<scalar_t>();
    std::vector<scalar_t> values;
    std::vector<int64_t> counts;
    for (int64_t i = 0; i < n; ++i) {
      const scalar_t v = sp[op[i]];
      // NaN != NaN, so a plain comparison would open one group per NaN
      // row; SameValue collapses them into a single trailing group (the
      // ascending sort above places every NaN at the end).
      if (values.empty() || !SameValue(values.back(), v)) {
        values.push_back(v);
        counts.push_back(0);
      }
      inv[op[i]] = static_cast<int64_t>(values.size()) - 1;
      ++counts.back();
    }
    const int64_t u = static_cast<int64_t>(values.size());
    Tensor vt = Tensor::Empty({u}, t.dtype(), t.device());
    scalar_t* vp = vt.data<scalar_t>();
    for (int64_t i = 0; i < u; ++i) vp[i] = values[static_cast<size_t>(i)];
    Tensor ct = Tensor::Empty({u}, DType::kInt64, t.device());
    int64_t* cp = ct.data<int64_t>();
    for (int64_t i = 0; i < u; ++i) cp[i] = counts[static_cast<size_t>(i)];
    result.values = vt;
    result.counts = ct;
  });
  result.inverse = inverse;
  return result;
}

}  // namespace tdp
