#include <algorithm>
#include <numeric>

#include "src/autograd/node.h"
#include "src/tensor/dispatch.h"
#include "src/tensor/ops.h"

namespace tdp {

Tensor ArgSort(const Tensor& t, bool descending) {
  TDP_CHECK(t.defined());
  TDP_CHECK_EQ(t.dim(), 1) << "ArgSort expects a 1-d tensor";
  TDP_CHECK(t.dtype() != DType::kBool);
  const Tensor tc = t.Detach().Contiguous();
  const int64_t n = tc.numel();
  Tensor out = Tensor::Empty({n}, DType::kInt64, t.device());
  int64_t* op = out.data<int64_t>();
  std::iota(op, op + n, 0);
  TDP_DISPATCH_NUMERIC(t.dtype(), {
    const scalar_t* sp = tc.data<scalar_t>();
    if (descending) {
      std::stable_sort(op, op + n, [sp](int64_t a, int64_t b) {
        return sp[a] > sp[b];
      });
    } else {
      std::stable_sort(op, op + n, [sp](int64_t a, int64_t b) {
        return sp[a] < sp[b];
      });
    }
  });
  return out;
}

SortResult Sort(const Tensor& t, bool descending) {
  Tensor indices = ArgSort(t, descending);
  Tensor values = IndexSelect(t, 0, indices);
  return {values, indices};
}

UniqueResult Unique(const Tensor& t) {
  TDP_CHECK(t.defined());
  TDP_CHECK_EQ(t.dim(), 1) << "Unique expects a 1-d tensor";
  const Tensor tc = t.Detach().Contiguous();
  const int64_t n = tc.numel();
  const Tensor order = ArgSort(tc, /*descending=*/false);
  const int64_t* op = order.data<int64_t>();

  UniqueResult result;
  Tensor inverse = Tensor::Empty({n}, DType::kInt64, t.device());
  int64_t* inv = inverse.data<int64_t>();

  TDP_DISPATCH_NUMERIC(t.dtype(), {
    const scalar_t* sp = tc.data<scalar_t>();
    std::vector<scalar_t> values;
    std::vector<int64_t> counts;
    for (int64_t i = 0; i < n; ++i) {
      const scalar_t v = sp[op[i]];
      if (values.empty() || values.back() != v) {
        values.push_back(v);
        counts.push_back(0);
      }
      inv[op[i]] = static_cast<int64_t>(values.size()) - 1;
      ++counts.back();
    }
    const int64_t u = static_cast<int64_t>(values.size());
    Tensor vt = Tensor::Empty({u}, t.dtype(), t.device());
    scalar_t* vp = vt.data<scalar_t>();
    for (int64_t i = 0; i < u; ++i) vp[i] = values[static_cast<size_t>(i)];
    Tensor ct = Tensor::Empty({u}, DType::kInt64, t.device());
    int64_t* cp = ct.data<int64_t>();
    for (int64_t i = 0; i < u; ++i) cp[i] = counts[static_cast<size_t>(i)];
    result.values = vt;
    result.counts = ct;
  });
  result.inverse = inverse;
  return result;
}

}  // namespace tdp
