#include "src/tensor/buffer.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

#include "src/common/logging.h"

namespace tdp {

namespace {
constexpr size_t kAlignment = 64;
std::atomic<int64_t> g_allocation_count{0};
}  // namespace

int64_t Buffer::allocation_count() {
  return g_allocation_count.load(std::memory_order_relaxed);
}

std::shared_ptr<Buffer> Buffer::Allocate(int64_t size_bytes, bool zero) {
  TDP_CHECK_GE(size_bytes, 0);
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  // Round up to the alignment so we can always over-read a full cache line.
  const size_t alloc =
      (static_cast<size_t>(size_bytes) + kAlignment - 1) / kAlignment *
      kAlignment;
  uint8_t* data = nullptr;
  if (alloc > 0) {
    data = static_cast<uint8_t*>(std::aligned_alloc(kAlignment, alloc));
    TDP_CHECK(data != nullptr) << "allocation of " << alloc << " bytes failed";
    if (zero) std::memset(data, 0, alloc);
  }
  return std::shared_ptr<Buffer>(new Buffer(data, size_bytes));
}

Buffer::~Buffer() { std::free(data_); }

}  // namespace tdp
