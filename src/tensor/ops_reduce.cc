#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "src/autograd/node.h"
#include "src/common/thread_pool.h"
#include "src/tensor/dispatch.h"
#include "src/tensor/ops.h"
#include "src/tensor/ops_internal.h"

namespace tdp {
namespace {

using internal_ops::NormalizeDim;

// Collapses `shape` around `dim` into [outer, reduced, inner].
struct ReduceGeometry {
  int64_t outer = 1;
  int64_t reduced = 1;
  int64_t inner = 1;
};

ReduceGeometry MakeGeometry(const std::vector<int64_t>& shape, int64_t dim) {
  ReduceGeometry geo;
  for (int64_t i = 0; i < dim; ++i) geo.outer *= shape[static_cast<size_t>(i)];
  geo.reduced = shape[static_cast<size_t>(dim)];
  for (size_t i = static_cast<size_t>(dim) + 1; i < shape.size(); ++i) {
    geo.inner *= shape[i];
  }
  return geo;
}

std::vector<int64_t> ReducedShape(const std::vector<int64_t>& shape,
                                  int64_t dim, bool keepdim) {
  std::vector<int64_t> out;
  for (int64_t i = 0; i < static_cast<int64_t>(shape.size()); ++i) {
    if (i == dim) {
      if (keepdim) out.push_back(1);
    } else {
      out.push_back(shape[static_cast<size_t>(i)]);
    }
  }
  return out;
}

}  // namespace

Tensor Sum(const Tensor& t) {
  TDP_CHECK(t.defined());
  TDP_CHECK(t.dtype() != DType::kBool) << "Sum of bool: cast or CountNonzero";
  const Tensor tc = t.Contiguous();
  Tensor out = Tensor::Zeros({}, t.dtype(), t.device());
  const int64_t n = tc.numel();
  // Fixed-size blocks summed independently, partials combined in block
  // order: a deterministic reduction tree whose shape depends only on `n`,
  // never on the thread count, so results are identical for every
  // TDP_NUM_THREADS (each block still uses the double accumulator that
  // avoids catastrophic float32 error on long columns).
  constexpr int64_t kSumBlock = 4096;
  const int64_t num_blocks = n == 0 ? 0 : (n + kSumBlock - 1) / kSumBlock;
  TDP_DISPATCH_NUMERIC(t.dtype(), {
    const scalar_t* sp = tc.data<scalar_t>();
    std::vector<double> partials(static_cast<size_t>(num_blocks), 0.0);
    double* pp = partials.data();
    ParallelFor(0, num_blocks, GrainForCost(kSumBlock),
                [sp, pp, n](int64_t block_begin, int64_t block_end) {
                  for (int64_t blk = block_begin; blk < block_end; ++blk) {
                    const int64_t lo = blk * kSumBlock;
                    const int64_t hi = std::min(n, lo + kSumBlock);
                    double acc = 0;
                    for (int64_t i = lo; i < hi; ++i) {
                      acc += static_cast<double>(sp[i]);
                    }
                    pp[blk] = acc;
                  }
                });
    double acc = 0;
    for (int64_t blk = 0; blk < num_blocks; ++blk) acc += pp[blk];
    *out.data<scalar_t>() = static_cast<scalar_t>(acc);
  });
  autograd::RecordOp("Sum", {t}, out, [t](const Tensor& g) {
    return std::vector<Tensor>{
        Mul(Tensor::Ones(t.shape(), g.dtype(), g.device()), g)};
  });
  return out;
}

Tensor Sum(const Tensor& t, int64_t dim, bool keepdim) {
  TDP_CHECK(t.defined());
  TDP_CHECK(t.dtype() != DType::kBool);
  dim = NormalizeDim(dim, t.dim());
  const Tensor tc = t.Contiguous();
  const ReduceGeometry geo = MakeGeometry(t.shape(), dim);
  Tensor out =
      Tensor::Zeros(ReducedShape(t.shape(), dim, keepdim), t.dtype(),
                    t.device());
  // Each output element owns its own accumulation; sharding the outer loop
  // leaves every element's summation order untouched.
  TDP_DISPATCH_NUMERIC(t.dtype(), {
    const scalar_t* sp = tc.data<scalar_t>();
    scalar_t* op = out.data<scalar_t>();
    ParallelFor(0, geo.outer, GrainForCost(geo.reduced * geo.inner),
                [sp, op, geo](int64_t outer_begin, int64_t outer_end) {
                  for (int64_t o = outer_begin; o < outer_end; ++o) {
                    for (int64_t i = 0; i < geo.inner; ++i) {
                      double acc = 0;
                      const scalar_t* base =
                          sp + (o * geo.reduced) * geo.inner + i;
                      for (int64_t r = 0; r < geo.reduced; ++r) {
                        acc += static_cast<double>(base[r * geo.inner]);
                      }
                      op[o * geo.inner + i] = static_cast<scalar_t>(acc);
                    }
                  }
                });
  });
  autograd::RecordOp("SumDim", {t}, out, [t, dim, keepdim](const Tensor& g) {
    Tensor gx = keepdim ? g : Unsqueeze(g, dim);
    return std::vector<Tensor>{
        Mul(Tensor::Ones(t.shape(), g.dtype(), g.device()), gx)};
  });
  return out;
}

Tensor Mean(const Tensor& t) {
  const int64_t n = t.numel();
  TDP_CHECK_GT(n, 0);
  Tensor s = Sum(IsFloatingPoint(t.dtype()) ? t : t.To(DType::kFloat64));
  return DivScalar(s, static_cast<double>(n));
}

Tensor Mean(const Tensor& t, int64_t dim, bool keepdim) {
  const int64_t d = NormalizeDim(dim, t.dim());
  const int64_t n = t.size(d);
  TDP_CHECK_GT(n, 0);
  Tensor s =
      Sum(IsFloatingPoint(t.dtype()) ? t : t.To(DType::kFloat64), d, keepdim);
  return DivScalar(s, static_cast<double>(n));
}

namespace {

MinMaxResult MinMaxImpl(const Tensor& t, int64_t dim, bool keepdim,
                        bool is_max) {
  TDP_CHECK(t.defined());
  TDP_CHECK(t.dtype() != DType::kBool);
  const int64_t d = NormalizeDim(dim, t.dim());
  TDP_CHECK_GT(t.size(d), 0) << "min/max over empty dimension";
  const Tensor tc = t.Contiguous();
  const ReduceGeometry geo = MakeGeometry(t.shape(), d);
  const std::vector<int64_t> out_shape = ReducedShape(t.shape(), d, keepdim);
  Tensor values = Tensor::Empty(out_shape, t.dtype(), t.device());
  Tensor indices = Tensor::Empty(out_shape, DType::kInt64, t.device());
  TDP_DISPATCH_NUMERIC(t.dtype(), {
    const scalar_t* sp = tc.data<scalar_t>();
    scalar_t* vp = values.data<scalar_t>();
    int64_t* ip = indices.data<int64_t>();
    ParallelFor(0, geo.outer, GrainForCost(geo.reduced * geo.inner),
                [sp, vp, ip, geo, is_max](int64_t outer_begin,
                                          int64_t outer_end) {
                  for (int64_t o = outer_begin; o < outer_end; ++o) {
                    for (int64_t i = 0; i < geo.inner; ++i) {
                      const scalar_t* base =
                          sp + (o * geo.reduced) * geo.inner + i;
                      scalar_t best = base[0];
                      int64_t best_idx = 0;
                      for (int64_t r = 1; r < geo.reduced; ++r) {
                        const scalar_t v = base[r * geo.inner];
                        if (is_max ? (v > best) : (v < best)) {
                          best = v;
                          best_idx = r;
                        }
                      }
                      vp[o * geo.inner + i] = best;
                      ip[o * geo.inner + i] = best_idx;
                    }
                  }
                });
  });
  // Backward scatters the output gradient to the winning positions.
  Tensor indices_saved = indices;
  autograd::RecordOp(is_max ? "Max" : "Min", {t}, values,
                     [t, d, keepdim, indices_saved, geo](const Tensor& g) {
    Tensor grad_in = Tensor::Zeros(t.shape(), g.dtype(), g.device());
    const Tensor gc = g.Contiguous();
    TDP_DISPATCH_FLOAT(g.dtype(), {
      const scalar_t* gp = gc.data<scalar_t>();
      const int64_t* ip = indices_saved.data<int64_t>();
      scalar_t* out = grad_in.data<scalar_t>();
      (void)keepdim;  // layouts identical either way
      for (int64_t o = 0; o < geo.outer; ++o) {
        for (int64_t i = 0; i < geo.inner; ++i) {
          const int64_t flat = o * geo.inner + i;
          out[(o * geo.reduced + ip[flat]) * geo.inner + i] = gp[flat];
        }
      }
    });
    return std::vector<Tensor>{grad_in};
  });
  return {values, indices};
}

}  // namespace

MinMaxResult Max(const Tensor& t, int64_t dim, bool keepdim) {
  return MinMaxImpl(t, dim, keepdim, /*is_max=*/true);
}

MinMaxResult Min(const Tensor& t, int64_t dim, bool keepdim) {
  return MinMaxImpl(t, dim, keepdim, /*is_max=*/false);
}

Tensor MaxAll(const Tensor& t) {
  TDP_CHECK_GT(t.numel(), 0);
  const Tensor flat = t.Detach().Contiguous().Reshape({t.numel()});
  return Max(flat, 0, /*keepdim=*/false).values;
}

Tensor MinAll(const Tensor& t) {
  TDP_CHECK_GT(t.numel(), 0);
  const Tensor flat = t.Detach().Contiguous().Reshape({t.numel()});
  return Min(flat, 0, /*keepdim=*/false).values;
}

Tensor ArgMax(const Tensor& t, int64_t dim, bool keepdim) {
  autograd::NoGradGuard no_grad;
  return MinMaxImpl(t, dim, keepdim, /*is_max=*/true).indices;
}

Tensor CumSum(const Tensor& t, int64_t dim) {
  TDP_CHECK(t.defined());
  TDP_CHECK(t.dtype() != DType::kBool);
  const int64_t d = NormalizeDim(dim, t.dim());
  const Tensor tc = t.Contiguous();
  const ReduceGeometry geo = MakeGeometry(t.shape(), d);
  Tensor out = Tensor::Empty(t.shape(), t.dtype(), t.device());
  TDP_DISPATCH_NUMERIC(t.dtype(), {
    const scalar_t* sp = tc.data<scalar_t>();
    scalar_t* op = out.data<scalar_t>();
    ParallelFor(0, geo.outer, GrainForCost(geo.reduced * geo.inner),
                [sp, op, geo](int64_t outer_begin, int64_t outer_end) {
                  for (int64_t o = outer_begin; o < outer_end; ++o) {
                    for (int64_t i = 0; i < geo.inner; ++i) {
                      const int64_t base = (o * geo.reduced) * geo.inner + i;
                      scalar_t acc = 0;
                      for (int64_t r = 0; r < geo.reduced; ++r) {
                        acc = static_cast<scalar_t>(
                            acc + sp[base + r * geo.inner]);
                        op[base + r * geo.inner] = acc;
                      }
                    }
                  }
                });
  });
  autograd::RecordOp("CumSum", {t}, out, [t, geo, d](const Tensor& g) {
    (void)d;
    // Gradient of inclusive cumsum is the reversed cumsum of the output grad.
    Tensor grad_in = Tensor::Empty(t.shape(), g.dtype(), g.device());
    const Tensor gc = g.Contiguous();
    TDP_DISPATCH_FLOAT(g.dtype(), {
      const scalar_t* gp = gc.data<scalar_t>();
      scalar_t* op = grad_in.data<scalar_t>();
      for (int64_t o = 0; o < geo.outer; ++o) {
        for (int64_t i = 0; i < geo.inner; ++i) {
          const int64_t base = (o * geo.reduced) * geo.inner + i;
          double acc = 0;
          for (int64_t r = geo.reduced - 1; r >= 0; --r) {
            acc += static_cast<double>(gp[base + r * geo.inner]);
            op[base + r * geo.inner] = static_cast<scalar_t>(acc);
          }
        }
      }
    });
    return std::vector<Tensor>{grad_in};
  });
  return out;
}

Tensor CountNonzero(const Tensor& t) {
  TDP_CHECK(t.defined());
  const Tensor tc = t.Contiguous();
  std::atomic<int64_t> count{0};
  const int64_t n = tc.numel();
  // Integer addition commutes, so shard-local subtotals folded through an
  // atomic stay exact regardless of thread count or shard order.
  TDP_DISPATCH_ALL(t.dtype(), {
    const scalar_t* sp = tc.data<scalar_t>();
    ParallelFor(0, n, GrainForCost(1),
                [sp, &count](int64_t shard_begin, int64_t shard_end) {
                  int64_t local = 0;
                  for (int64_t i = shard_begin; i < shard_end; ++i) {
                    if (sp[i] != static_cast<scalar_t>(0)) ++local;
                  }
                  count.fetch_add(local, std::memory_order_relaxed);
                });
  });
  Tensor out = Tensor::Scalar(static_cast<double>(count.load()), DType::kInt64,
                              t.device());
  return out;
}

}  // namespace tdp
