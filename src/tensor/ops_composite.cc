#include <cmath>

#include "src/autograd/node.h"
#include "src/tensor/dispatch.h"
#include "src/tensor/ops.h"
#include "src/tensor/ops_internal.h"

namespace tdp {

Tensor Softmax(const Tensor& t, int64_t dim) {
  const int64_t d = internal_ops::NormalizeDim(dim, t.dim());
  // Stabilize with the (detached) per-slice max; gradients flow through the
  // exp/sum composition, which is exact for softmax.
  const Tensor max_vals = Max(t.Detach(), d, /*keepdim=*/true).values;
  const Tensor shifted = Sub(t, max_vals);
  const Tensor exps = Exp(shifted);
  const Tensor denom = Sum(exps, d, /*keepdim=*/true);
  return Div(exps, denom);
}

Tensor LogSoftmax(const Tensor& t, int64_t dim) {
  const int64_t d = internal_ops::NormalizeDim(dim, t.dim());
  const Tensor max_vals = Max(t.Detach(), d, /*keepdim=*/true).values;
  const Tensor shifted = Sub(t, max_vals);
  const Tensor log_denom = Log(Sum(Exp(shifted), d, /*keepdim=*/true));
  return Sub(shifted, log_denom);
}

Tensor L2Normalize(const Tensor& t, int64_t dim, double eps) {
  const int64_t d = internal_ops::NormalizeDim(dim, t.dim());
  const Tensor norm = Sqrt(Sum(Mul(t, t), d, /*keepdim=*/true));
  const Tensor safe = Maximum(
      norm, Tensor::Scalar(eps, norm.dtype(), norm.device()));
  return Div(t, safe);
}

bool AllClose(const Tensor& a, const Tensor& b, double rtol, double atol) {
  if (!a.defined() || !b.defined()) return false;
  if (a.shape() != b.shape()) return false;
  const Tensor ac = a.Detach().Contiguous();
  const Tensor bc = b.Detach().Contiguous();
  const int64_t n = ac.numel();
  for (int64_t i = 0; i < n; ++i) {
    double av = 0, bv = 0;
    TDP_DISPATCH_ALL(ac.dtype(), {
      av = static_cast<double>(ac.data<scalar_t>()[i]);
    });
    TDP_DISPATCH_ALL(bc.dtype(), {
      bv = static_cast<double>(bc.data<scalar_t>()[i]);
    });
    if (std::isnan(av) || std::isnan(bv)) return false;
    if (std::abs(av - bv) > atol + rtol * std::abs(bv)) return false;
  }
  return true;
}

bool TensorEqual(const Tensor& a, const Tensor& b) {
  if (!a.defined() || !b.defined()) return false;
  if (a.dtype() != b.dtype() || a.shape() != b.shape()) return false;
  const Tensor ac = a.Detach().Contiguous();
  const Tensor bc = b.Detach().Contiguous();
  const int64_t n = ac.numel();
  bool equal = true;
  TDP_DISPATCH_ALL(a.dtype(), {
    const scalar_t* ap = ac.data<scalar_t>();
    const scalar_t* bp = bc.data<scalar_t>();
    for (int64_t i = 0; i < n; ++i) {
      if (ap[i] != bp[i]) {
        equal = false;
        break;
      }
    }
  });
  return equal;
}

}  // namespace tdp
