#include <cstring>

#include "src/autograd/node.h"
#include "src/tensor/dispatch.h"
#include "src/tensor/ops.h"
#include "src/tensor/ops_internal.h"

namespace tdp {
namespace {

using internal_ops::NormalizeDim;

// Makes a view impl sharing the buffer of `t` with new geometry.
Tensor MakeView(const Tensor& t, std::vector<int64_t> shape,
                std::vector<int64_t> strides, int64_t offset) {
  auto impl = std::make_shared<TensorImpl>();
  impl->buffer = t.impl()->buffer;
  impl->shape = std::move(shape);
  impl->strides = std::move(strides);
  impl->offset = offset;
  impl->dtype = t.dtype();
  impl->device = t.device();
  return Tensor(std::move(impl));
}

std::vector<int64_t> ResolveReshape(const Tensor& t,
                                    std::vector<int64_t> shape) {
  int64_t known = 1;
  int64_t infer = -1;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == -1) {
      TDP_CHECK_EQ(infer, -1) << "at most one -1 dim in Reshape";
      infer = static_cast<int64_t>(i);
    } else {
      TDP_CHECK_GE(shape[i], 0);
      known *= shape[i];
    }
  }
  if (infer >= 0) {
    TDP_CHECK(known != 0 && t.numel() % known == 0)
        << "cannot infer reshape dim";
    shape[static_cast<size_t>(infer)] = t.numel() / known;
  }
  TDP_CHECK_EQ(ShapeNumel(shape), t.numel())
      << "reshape " << ShapeToString(t.shape()) << " -> "
      << ShapeToString(shape);
  return shape;
}

}  // namespace

Tensor Reshape(const Tensor& t, std::vector<int64_t> shape) {
  shape = ResolveReshape(t, std::move(shape));
  Tensor base = t.is_contiguous() ? t : t.Contiguous();
  Tensor out =
      MakeView(base, shape, ContiguousStrides(shape), base.offset());
  autograd::RecordOp("Reshape", {t}, out, [t](const Tensor& g) {
    return std::vector<Tensor>{Reshape(g, t.shape())};
  });
  return out;
}

Tensor Transpose(const Tensor& t, int64_t d0, int64_t d1) {
  const int64_t a = NormalizeDim(d0, t.dim());
  const int64_t b = NormalizeDim(d1, t.dim());
  std::vector<int64_t> shape = t.shape();
  std::vector<int64_t> strides = t.strides();
  std::swap(shape[static_cast<size_t>(a)], shape[static_cast<size_t>(b)]);
  std::swap(strides[static_cast<size_t>(a)], strides[static_cast<size_t>(b)]);
  Tensor out = MakeView(t, std::move(shape), std::move(strides), t.offset());
  autograd::RecordOp("Transpose", {t}, out, [a, b](const Tensor& g) {
    return std::vector<Tensor>{Transpose(g, a, b)};
  });
  return out;
}

Tensor Permute(const Tensor& t, std::vector<int64_t> dims) {
  TDP_CHECK_EQ(static_cast<int64_t>(dims.size()), t.dim());
  std::vector<int64_t> shape(dims.size());
  std::vector<int64_t> strides(dims.size());
  std::vector<bool> seen(dims.size(), false);
  for (size_t i = 0; i < dims.size(); ++i) {
    const int64_t d = NormalizeDim(dims[i], t.dim());
    TDP_CHECK(!seen[static_cast<size_t>(d)]) << "duplicate dim in Permute";
    seen[static_cast<size_t>(d)] = true;
    shape[i] = t.shape()[static_cast<size_t>(d)];
    strides[i] = t.strides()[static_cast<size_t>(d)];
    dims[i] = d;
  }
  Tensor out = MakeView(t, std::move(shape), std::move(strides), t.offset());
  autograd::RecordOp("Permute", {t}, out, [dims](const Tensor& g) {
    std::vector<int64_t> inverse(dims.size());
    for (size_t i = 0; i < dims.size(); ++i) {
      inverse[static_cast<size_t>(dims[i])] = static_cast<int64_t>(i);
    }
    return std::vector<Tensor>{Permute(g, inverse)};
  });
  return out;
}

Tensor Slice(const Tensor& t, int64_t dim, int64_t start, int64_t length) {
  const int64_t d = NormalizeDim(dim, t.dim());
  TDP_CHECK(start >= 0 && length >= 0 && start + length <= t.size(d))
      << "slice [" << start << ", " << start + length << ") out of range for "
      << "dim of size " << t.size(d);
  std::vector<int64_t> shape = t.shape();
  shape[static_cast<size_t>(d)] = length;
  const int64_t offset =
      t.offset() + start * t.strides()[static_cast<size_t>(d)];
  Tensor out = MakeView(t, std::move(shape), t.strides(), offset);
  autograd::RecordOp("Slice", {t}, out, [t, d, start](const Tensor& g) {
    // Embed the gradient back into a zero tensor of the input shape.
    Tensor grad_in = Tensor::Zeros(t.shape(), g.dtype(), g.device());
    Tensor window = Slice(grad_in, d, start, g.size(d));
    // Copy g into the (strided) window.
    const Tensor gc = g.Contiguous();
    internal_ops::OffsetIterator it(window.shape(), {window.strides()});
    const int64_t n = gc.numel();
    TDP_DISPATCH_FLOAT(g.dtype(), {
      const scalar_t* gp = gc.data<scalar_t>();
      scalar_t* wp = window.data<scalar_t>();
      for (int64_t i = 0; i < n; ++i, it.Next()) wp[it.offset(0)] = gp[i];
    });
    return std::vector<Tensor>{grad_in};
  });
  return out;
}

Tensor Squeeze(const Tensor& t, int64_t dim) {
  const int64_t d = NormalizeDim(dim, t.dim());
  TDP_CHECK_EQ(t.size(d), 1) << "Squeeze of non-unit dim";
  std::vector<int64_t> shape = t.shape();
  std::vector<int64_t> strides = t.strides();
  shape.erase(shape.begin() + d);
  strides.erase(strides.begin() + d);
  Tensor out = MakeView(t, std::move(shape), std::move(strides), t.offset());
  autograd::RecordOp("Squeeze", {t}, out, [d](const Tensor& g) {
    return std::vector<Tensor>{Unsqueeze(g, d)};
  });
  return out;
}

Tensor Unsqueeze(const Tensor& t, int64_t dim) {
  const int64_t rank = t.dim();
  int64_t d = dim < 0 ? dim + rank + 1 : dim;
  TDP_CHECK(d >= 0 && d <= rank);
  std::vector<int64_t> shape = t.shape();
  std::vector<int64_t> strides = t.strides();
  shape.insert(shape.begin() + d, 1);
  // Stride value for a unit dim is arbitrary; use the next dim's extent.
  const int64_t stride =
      d < rank ? strides[static_cast<size_t>(d)] *
                     1  // any value works; keep neighbor stride
               : 1;
  strides.insert(strides.begin() + d, stride);
  Tensor out = MakeView(t, std::move(shape), std::move(strides), t.offset());
  autograd::RecordOp("Unsqueeze", {t}, out, [d](const Tensor& g) {
    return std::vector<Tensor>{Squeeze(g, d)};
  });
  return out;
}

Tensor Expand(const Tensor& t, std::vector<int64_t> shape) {
  const std::vector<int64_t> out_shape = BroadcastShapes(t.shape(), shape);
  TDP_CHECK(out_shape == shape)
      << "Expand target " << ShapeToString(shape) << " incompatible with "
      << ShapeToString(t.shape());
  std::vector<int64_t> strides = internal_ops::BroadcastStrides(
      t.shape(), t.strides(), shape);
  Tensor out = MakeView(t, shape, std::move(strides), t.offset());
  autograd::RecordOp("Expand", {t}, out, [t](const Tensor& g) {
    return std::vector<Tensor>{ReduceGradToShape(g, t.shape())};
  });
  return out;
}

Tensor Cat(const std::vector<Tensor>& tensors, int64_t dim) {
  TDP_CHECK(!tensors.empty());
  const int64_t d = NormalizeDim(dim, tensors[0].dim());
  std::vector<int64_t> out_shape = tensors[0].shape();
  int64_t total = 0;
  for (const Tensor& t : tensors) {
    TDP_CHECK_EQ(t.dim(), tensors[0].dim());
    TDP_CHECK(t.dtype() == tensors[0].dtype());
    for (int64_t i = 0; i < t.dim(); ++i) {
      if (i != d) TDP_CHECK_EQ(t.size(i), tensors[0].size(i));
    }
    total += t.size(d);
  }
  out_shape[static_cast<size_t>(d)] = total;
  Tensor out = Tensor::Empty(out_shape, tensors[0].dtype(),
                             tensors[0].device());
  // Copy each input into its slice of the output.
  int64_t cursor = 0;
  for (const Tensor& t : tensors) {
    Tensor window = Slice(out, d, cursor, t.size(d));
    const Tensor tc = t.Detach().Contiguous();
    internal_ops::OffsetIterator it(window.shape(), {window.strides()});
    const int64_t n = tc.numel();
    TDP_DISPATCH_ALL(t.dtype(), {
      const scalar_t* sp = tc.data<scalar_t>();
      scalar_t* wp = window.data<scalar_t>();
      for (int64_t i = 0; i < n; ++i, it.Next()) wp[it.offset(0)] = sp[i];
    });
    cursor += t.size(d);
  }
  autograd::RecordOp("Cat", tensors, out, [tensors, d](const Tensor& g) {
    std::vector<Tensor> grads;
    grads.reserve(tensors.size());
    int64_t start = 0;
    for (const Tensor& t : tensors) {
      grads.push_back(Slice(g, d, start, t.size(d)).Contiguous());
      start += t.size(d);
    }
    return grads;
  });
  return out;
}

Tensor Stack(const std::vector<Tensor>& tensors, int64_t dim) {
  TDP_CHECK(!tensors.empty());
  std::vector<Tensor> unsqueezed;
  unsqueezed.reserve(tensors.size());
  for (const Tensor& t : tensors) unsqueezed.push_back(Unsqueeze(t, dim));
  return Cat(unsqueezed, dim);
}

// ---- Tensor convenience methods (declared in tensor.h) --------------------

Tensor Tensor::Reshape(std::vector<int64_t> shape) const {
  return ::tdp::Reshape(*this, std::move(shape));
}
Tensor Tensor::Transpose(int64_t d0, int64_t d1) const {
  return ::tdp::Transpose(*this, d0, d1);
}
Tensor Tensor::Permute(std::vector<int64_t> dims) const {
  return ::tdp::Permute(*this, std::move(dims));
}
Tensor Tensor::Slice(int64_t dim, int64_t start, int64_t length) const {
  return ::tdp::Slice(*this, dim, start, length);
}
Tensor Tensor::Squeeze(int64_t dim) const {
  return ::tdp::Squeeze(*this, dim);
}
Tensor Tensor::Unsqueeze(int64_t dim) const {
  return ::tdp::Unsqueeze(*this, dim);
}
Tensor Tensor::Expand(std::vector<int64_t> shape) const {
  return ::tdp::Expand(*this, std::move(shape));
}

}  // namespace tdp
