#include "src/tensor/dispatch.h"
#include "src/tensor/ops.h"

namespace tdp {

Tensor RandUniform(std::vector<int64_t> shape, double lo, double hi, Rng& rng,
                   DType dtype, Device device) {
  Tensor t = Tensor::Empty(std::move(shape), dtype, device);
  const int64_t n = t.numel();
  TDP_DISPATCH_FLOAT(dtype, {
    scalar_t* p = t.data<scalar_t>();
    for (int64_t i = 0; i < n; ++i) {
      p[i] = static_cast<scalar_t>(rng.Uniform(lo, hi));
    }
  });
  return t;
}

Tensor RandNormal(std::vector<int64_t> shape, double mean, double stddev,
                  Rng& rng, DType dtype, Device device) {
  Tensor t = Tensor::Empty(std::move(shape), dtype, device);
  const int64_t n = t.numel();
  TDP_DISPATCH_FLOAT(dtype, {
    scalar_t* p = t.data<scalar_t>();
    for (int64_t i = 0; i < n; ++i) {
      p[i] = static_cast<scalar_t>(rng.Normal(mean, stddev));
    }
  });
  return t;
}

Tensor RandInt(std::vector<int64_t> shape, int64_t lo, int64_t hi, Rng& rng,
               Device device) {
  Tensor t = Tensor::Empty(std::move(shape), DType::kInt64, device);
  const int64_t n = t.numel();
  int64_t* p = t.data<int64_t>();
  for (int64_t i = 0; i < n; ++i) p[i] = rng.UniformInt(lo, hi);
  return t;
}

}  // namespace tdp
