#ifndef TDP_TENSOR_DISPATCH_H_
#define TDP_TENSOR_DISPATCH_H_

#include "src/common/logging.h"
#include "src/tensor/dtype.h"

// Kernel dtype dispatch macros. `__VA_ARGS__` is a block that may use the
// local type alias `scalar_t`. Modeled on PyTorch's AT_DISPATCH family.

#define TDP_DISPATCH_CASE_(dtype_enum, ctype, ...) \
  case dtype_enum: {                               \
    using scalar_t = ctype;                        \
    __VA_ARGS__                                    \
    break;                                         \
  }

/// Dispatches over every supported dtype.
#define TDP_DISPATCH_ALL(dtype, ...)                                \
  switch (dtype) {                                                  \
    TDP_DISPATCH_CASE_(::tdp::DType::kFloat32, float, __VA_ARGS__)  \
    TDP_DISPATCH_CASE_(::tdp::DType::kFloat64, double, __VA_ARGS__) \
    TDP_DISPATCH_CASE_(::tdp::DType::kInt32, int32_t, __VA_ARGS__)  \
    TDP_DISPATCH_CASE_(::tdp::DType::kInt64, int64_t, __VA_ARGS__)  \
    TDP_DISPATCH_CASE_(::tdp::DType::kUInt8, uint8_t, __VA_ARGS__)  \
    TDP_DISPATCH_CASE_(::tdp::DType::kBool, bool, __VA_ARGS__)      \
    default:                                                        \
      TDP_LOG(Fatal) << "unsupported dtype in dispatch";            \
  }

/// Dispatches over numeric (non-bool) dtypes.
#define TDP_DISPATCH_NUMERIC(dtype, ...)                            \
  switch (dtype) {                                                  \
    TDP_DISPATCH_CASE_(::tdp::DType::kFloat32, float, __VA_ARGS__)  \
    TDP_DISPATCH_CASE_(::tdp::DType::kFloat64, double, __VA_ARGS__) \
    TDP_DISPATCH_CASE_(::tdp::DType::kInt32, int32_t, __VA_ARGS__)  \
    TDP_DISPATCH_CASE_(::tdp::DType::kInt64, int64_t, __VA_ARGS__)  \
    TDP_DISPATCH_CASE_(::tdp::DType::kUInt8, uint8_t, __VA_ARGS__)  \
    default:                                                        \
      TDP_LOG(Fatal) << "expected a numeric dtype";                 \
  }

/// Dispatches over floating-point dtypes.
#define TDP_DISPATCH_FLOAT(dtype, ...)                              \
  switch (dtype) {                                                  \
    TDP_DISPATCH_CASE_(::tdp::DType::kFloat32, float, __VA_ARGS__)  \
    TDP_DISPATCH_CASE_(::tdp::DType::kFloat64, double, __VA_ARGS__) \
    default:                                                        \
      TDP_LOG(Fatal) << "expected a floating-point dtype";          \
  }

#endif  // TDP_TENSOR_DISPATCH_H_
