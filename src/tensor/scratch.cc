#include "src/tensor/scratch.h"

#include <atomic>
#include <cstdlib>

#include "src/common/logging.h"

namespace tdp {

namespace {
constexpr int64_t kAlignment = 64;
std::atomic<int64_t> g_growth_count{0};
}  // namespace

ScratchArena& ScratchArena::ForThread() {
  thread_local ScratchArena arena;
  return arena;
}

int64_t ScratchArena::growth_count() {
  return g_growth_count.load(std::memory_order_relaxed);
}

ScratchArena::~ScratchArena() {
  for (Slot& s : slots_) std::free(s.data);
}

void* ScratchArena::GetBytes(int slot, int64_t bytes) {
  TDP_CHECK_GE(slot, 0);
  TDP_CHECK_GE(bytes, 0);
  if (slot >= static_cast<int>(slots_.size())) {
    slots_.resize(static_cast<size_t>(slot) + 1);
  }
  Slot& s = slots_[static_cast<size_t>(slot)];
  if (bytes > s.capacity_bytes) {
    const int64_t rounded = (bytes + kAlignment - 1) / kAlignment * kAlignment;
    void* grown = std::aligned_alloc(
        static_cast<size_t>(kAlignment), static_cast<size_t>(rounded));
    TDP_CHECK(grown != nullptr)
        << "scratch allocation of " << rounded << " bytes failed";
    std::free(s.data);
    s.data = grown;
    s.capacity_bytes = rounded;
    g_growth_count.fetch_add(1, std::memory_order_relaxed);
  }
  return s.data;
}

}  // namespace tdp
