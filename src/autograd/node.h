#ifndef TDP_AUTOGRAD_NODE_H_
#define TDP_AUTOGRAD_NODE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/tensor/tensor.h"

namespace tdp {
namespace autograd {

/// One step of the recorded computation: produced by a differentiable op,
/// owned (via shared_ptr) by the op's output tensor. `Backward` maps the
/// gradient of the output to gradients of each input (an undefined Tensor
/// marks a non-differentiable input such as an index tensor).
class Node {
 public:
  Node(std::string name, std::vector<Tensor> inputs)
      : name_(std::move(name)), inputs_(std::move(inputs)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  virtual std::vector<Tensor> Backward(const Tensor& grad_output) = 0;

  const std::string& name() const { return name_; }
  const std::vector<Tensor>& inputs() const { return inputs_; }

 private:
  std::string name_;
  std::vector<Tensor> inputs_;
};

/// Node whose backward pass is a captured lambda — the single node type
/// used by all ops (keeps op definitions local to their kernels).
class LambdaNode : public Node {
 public:
  using BackwardFn = std::function<std::vector<Tensor>(const Tensor&)>;

  LambdaNode(std::string name, std::vector<Tensor> inputs, BackwardFn fn)
      : Node(std::move(name), std::move(inputs)), fn_(std::move(fn)) {}

  std::vector<Tensor> Backward(const Tensor& grad_output) override {
    return fn_(grad_output);
  }

 private:
  BackwardFn fn_;
};

/// Thread-local switch disabling graph recording (PyTorch's no_grad).
class GradMode {
 public:
  static bool IsEnabled();
  static void SetEnabled(bool enabled);
};

/// RAII scope that disables autograd recording.
class NoGradGuard {
 public:
  NoGradGuard() : prev_(GradMode::IsEnabled()) { GradMode::SetEnabled(false); }
  ~NoGradGuard() { GradMode::SetEnabled(prev_); }

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// True if autograd is on and any input participates in the graph.
bool ShouldRecord(const std::vector<Tensor>& inputs);

/// Attaches a LambdaNode to `out` when recording is appropriate; otherwise
/// a no-op. All differentiable ops funnel through this helper.
void RecordOp(std::string name, std::vector<Tensor> inputs, Tensor& out,
              LambdaNode::BackwardFn backward_fn);

/// Runs reverse-mode differentiation from `root` (which must be scalar
/// unless `grad_output` is supplied), accumulating into leaf `.grad()`s.
void RunBackward(const Tensor& root, Tensor grad_output = Tensor());

}  // namespace autograd
}  // namespace tdp

#endif  // TDP_AUTOGRAD_NODE_H_
