#include <unordered_map>
#include <vector>

#include "src/autograd/node.h"
#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace autograd {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

bool GradMode::IsEnabled() { return g_grad_enabled; }
void GradMode::SetEnabled(bool enabled) { g_grad_enabled = enabled; }

bool ShouldRecord(const std::vector<Tensor>& inputs) {
  if (!GradMode::IsEnabled()) return false;
  for (const Tensor& t : inputs) {
    if (t.defined() && (t.requires_grad() || t.grad_fn())) return true;
  }
  return false;
}

void RecordOp(std::string name, std::vector<Tensor> inputs, Tensor& out,
              LambdaNode::BackwardFn backward_fn) {
  if (!ShouldRecord(inputs)) return;
  out.set_grad_fn(std::make_shared<LambdaNode>(
      std::move(name), std::move(inputs), std::move(backward_fn)));
  out.impl()->requires_grad = true;
}

namespace {

// Discovers all nodes reachable from `root_node` and counts, for each node,
// how many consumer edges point at it (so grads can be fully accumulated
// before a node runs its backward).
void CollectGraph(Node* root_node,
                  std::unordered_map<Node*, int>& dependency_count) {
  std::vector<Node*> stack = {root_node};
  dependency_count[root_node] = 0;
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    for (const Tensor& input : node->inputs()) {
      if (!input.defined()) continue;
      Node* producer = input.grad_fn().get();
      if (producer == nullptr) continue;
      auto [it, inserted] = dependency_count.emplace(producer, 0);
      ++it->second;
      if (inserted) stack.push_back(producer);
    }
  }
}

}  // namespace

void RunBackward(const Tensor& root, Tensor grad_output) {
  TDP_CHECK(root.defined());
  if (!grad_output.defined()) {
    TDP_CHECK_EQ(root.numel(), 1)
        << "Backward() without an explicit gradient requires a scalar root";
    grad_output = Tensor::Ones(root.shape(), root.dtype(), root.device());
  }
  TDP_CHECK(grad_output.shape() == root.shape());

  // Gradients must never themselves be recorded.
  NoGradGuard no_grad;

  if (!root.grad_fn()) {
    if (root.requires_grad()) root.AccumulateGrad(grad_output);
    return;
  }

  std::unordered_map<Node*, int> dependency_count;
  CollectGraph(root.grad_fn().get(), dependency_count);

  std::unordered_map<Node*, Tensor> pending_grad;
  pending_grad[root.grad_fn().get()] = grad_output;

  std::vector<Node*> ready = {root.grad_fn().get()};
  while (!ready.empty()) {
    Node* node = ready.back();
    ready.pop_back();

    auto grad_it = pending_grad.find(node);
    TDP_CHECK(grad_it != pending_grad.end())
        << "node " << node->name() << " became ready without a gradient";
    Tensor node_grad = grad_it->second;
    pending_grad.erase(grad_it);

    std::vector<Tensor> input_grads = node->Backward(node_grad);
    TDP_CHECK_EQ(input_grads.size(), node->inputs().size())
        << "backward of " << node->name()
        << " returned wrong number of gradients";

    for (size_t i = 0; i < input_grads.size(); ++i) {
      const Tensor& input = node->inputs()[i];
      Tensor& grad_in = input_grads[i];
      if (!grad_in.defined() || !input.defined()) continue;
      TDP_CHECK(grad_in.shape() == input.shape())
          << "backward of " << node->name() << " produced gradient "
          << ShapeToString(grad_in.shape()) << " for input "
          << ShapeToString(input.shape());
      Node* producer = input.grad_fn().get();
      if (producer != nullptr) {
        auto [it, inserted] = pending_grad.emplace(producer, grad_in);
        if (!inserted) it->second = Add(it->second, grad_in);
        if (--dependency_count[producer] == 0) ready.push_back(producer);
      } else if (input.requires_grad()) {
        input.AccumulateGrad(grad_in);
      }
    }
  }
}

}  // namespace autograd

void Tensor::Backward() const { autograd::RunBackward(*this); }

}  // namespace tdp
