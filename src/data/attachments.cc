#include "src/data/attachments.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace tdp {
namespace data {
namespace {

struct Rgb {
  float r, g, b;
};

void FillBackground(float* img, Rgb color) {
  const int64_t hw = kImageSize * kImageSize;
  for (int64_t i = 0; i < hw; ++i) {
    img[0 * hw + i] = color.r;
    img[1 * hw + i] = color.g;
    img[2 * hw + i] = color.b;
  }
}

void SetPixel(float* img, int64_t y, int64_t x, Rgb color) {
  if (y < 0 || y >= kImageSize || x < 0 || x >= kImageSize) return;
  const int64_t hw = kImageSize * kImageSize;
  img[0 * hw + y * kImageSize + x] = color.r;
  img[1 * hw + y * kImageSize + x] = color.g;
  img[2 * hw + y * kImageSize + x] = color.b;
}

void FillCircle(float* img, double cy, double cx, double radius, Rgb color) {
  for (int64_t y = 0; y < kImageSize; ++y) {
    for (int64_t x = 0; x < kImageSize; ++x) {
      const double dy = y - cy, dx = x - cx;
      if (dy * dy + dx * dx <= radius * radius) SetPixel(img, y, x, color);
    }
  }
}

void FillRect(float* img, int64_t y0, int64_t x0, int64_t y1, int64_t x1,
              Rgb color) {
  for (int64_t y = y0; y <= y1; ++y) {
    for (int64_t x = x0; x <= x1; ++x) SetPixel(img, y, x, color);
  }
}

void FillTriangle(float* img, int64_t base_y, int64_t apex_y, int64_t cx,
                  int64_t half_base, Rgb color) {
  const int64_t height = std::abs(base_y - apex_y);
  if (height == 0) return;
  const int64_t dir = apex_y < base_y ? -1 : 1;
  for (int64_t i = 0; i <= height; ++i) {
    const int64_t y = base_y + dir * i;
    const int64_t half = half_base * (height - i) / height;
    for (int64_t x = cx - half; x <= cx + half; ++x) SetPixel(img, y, x, color);
  }
}

}  // namespace

std::string_view ConceptName(Concept c) {
  switch (c) {
    case Concept::kDog:
      return "dog";
    case Concept::kCat:
      return "cat";
    case Concept::kBeach:
      return "beach";
    case Concept::kMountain:
      return "mountain";
    case Concept::kStoreReceipt:
      return "store_receipt";
    case Concept::kKfcReceipt:
      return "kfc_receipt";
    case Concept::kKfcLogo:
      return "kfc_logo";
    case Concept::kAcmeLogo:
      return "acme_logo";
    case Concept::kGlobexLogo:
      return "globex_logo";
  }
  return "unknown";
}

bool IsPhotograph(Concept c) {
  return c == Concept::kDog || c == Concept::kCat || c == Concept::kBeach ||
         c == Concept::kMountain;
}
bool IsReceipt(Concept c) {
  return c == Concept::kStoreReceipt || c == Concept::kKfcReceipt;
}
bool IsLogo(Concept c) {
  return c == Concept::kKfcLogo || c == Concept::kAcmeLogo ||
         c == Concept::kGlobexLogo;
}

Tensor RenderConceptImage(Concept c, Rng& rng) {
  Tensor image = Tensor::Zeros({kImageChannels, kImageSize, kImageSize});
  float* img = image.data<float>();
  const double jx = rng.Uniform(-2, 2);
  const double jy = rng.Uniform(-2, 2);

  switch (c) {
    case Concept::kDog:
      // Outdoor greenish background, brown body blob + head + ears.
      FillBackground(img, {0.35f, 0.55f, 0.30f});
      FillCircle(img, 20 + jy, 16 + jx, 7.5, {0.55f, 0.38f, 0.20f});
      FillCircle(img, 11 + jy, 16 + jx, 4.5, {0.60f, 0.42f, 0.24f});
      FillCircle(img, 7 + jy, 12 + jx, 2.0, {0.40f, 0.28f, 0.14f});  // ear
      FillCircle(img, 7 + jy, 20 + jx, 2.0, {0.40f, 0.28f, 0.14f});  // ear
      break;
    case Concept::kCat:
      // Indoor warm background, gray body, triangular ears.
      FillBackground(img, {0.60f, 0.50f, 0.42f});
      FillCircle(img, 20 + jy, 16 + jx, 7.0, {0.45f, 0.45f, 0.48f});
      FillCircle(img, 11 + jy, 16 + jx, 4.5, {0.50f, 0.50f, 0.53f});
      FillTriangle(img, static_cast<int64_t>(9 + jy),
                   static_cast<int64_t>(4 + jy),
                   static_cast<int64_t>(12 + jx), 2, {0.45f, 0.45f, 0.48f});
      FillTriangle(img, static_cast<int64_t>(9 + jy),
                   static_cast<int64_t>(4 + jy),
                   static_cast<int64_t>(20 + jx), 2, {0.45f, 0.45f, 0.48f});
      break;
    case Concept::kBeach:
      // Sky / sea / sand horizontal bands + sun.
      FillRect(img, 0, 0, 12, kImageSize - 1, {0.45f, 0.70f, 0.95f});
      FillRect(img, 13, 0, 21, kImageSize - 1, {0.15f, 0.45f, 0.75f});
      FillRect(img, 22, 0, kImageSize - 1, kImageSize - 1,
               {0.90f, 0.80f, 0.55f});
      FillCircle(img, 5 + jy, 25 + jx, 3.0, {1.0f, 0.95f, 0.60f});
      break;
    case Concept::kMountain:
      // Sky background, gray peak with snow cap.
      FillBackground(img, {0.55f, 0.70f, 0.90f});
      FillTriangle(img, 28, static_cast<int64_t>(6 + jy),
                   static_cast<int64_t>(16 + jx), 13, {0.40f, 0.38f, 0.40f});
      FillTriangle(img, static_cast<int64_t>(12 + jy),
                   static_cast<int64_t>(6 + jy),
                   static_cast<int64_t>(16 + jx), 4, {0.95f, 0.95f, 0.98f});
      break;
    case Concept::kStoreReceipt:
    case Concept::kKfcReceipt: {
      // White paper with dark text lines; KFC receipts have a red header.
      FillBackground(img, {0.93f, 0.93f, 0.90f});
      if (c == Concept::kKfcReceipt) {
        FillRect(img, 0, 0, 5, kImageSize - 1, {0.80f, 0.12f, 0.10f});
      } else {
        FillRect(img, 0, 0, 5, kImageSize - 1, {0.30f, 0.30f, 0.35f});
      }
      for (int64_t y = 8; y < kImageSize - 2; y += 3) {
        const int64_t len =
            18 + static_cast<int64_t>(rng.UniformInt(0, 7));
        FillRect(img, y, 3, y, 3 + len, {0.15f, 0.15f, 0.18f});
      }
      break;
    }
    case Concept::kKfcLogo:
      // Flat white background, red circle with white stripe.
      FillBackground(img, {0.98f, 0.98f, 0.98f});
      FillCircle(img, 16 + jy, 16 + jx, 10.0, {0.85f, 0.10f, 0.08f});
      FillRect(img, static_cast<int64_t>(15 + jy), static_cast<int64_t>(8 + jx),
               static_cast<int64_t>(17 + jy), static_cast<int64_t>(24 + jx),
               {0.98f, 0.98f, 0.98f});
      break;
    case Concept::kAcmeLogo:
      // Flat light background, solid blue square.
      FillBackground(img, {0.95f, 0.95f, 0.98f});
      FillRect(img, static_cast<int64_t>(9 + jy), static_cast<int64_t>(9 + jx),
               static_cast<int64_t>(23 + jy), static_cast<int64_t>(23 + jx),
               {0.10f, 0.25f, 0.75f});
      break;
    case Concept::kGlobexLogo:
      // Flat light background, green diamond (two triangles).
      FillBackground(img, {0.96f, 0.98f, 0.95f});
      FillTriangle(img, static_cast<int64_t>(16 + jy),
                   static_cast<int64_t>(6 + jy),
                   static_cast<int64_t>(16 + jx), 9, {0.10f, 0.60f, 0.25f});
      FillTriangle(img, static_cast<int64_t>(16 + jy),
                   static_cast<int64_t>(26 + jy),
                   static_cast<int64_t>(16 + jx), 9, {0.10f, 0.60f, 0.25f});
      break;
  }

  // Instance noise.
  const int64_t numel = kImageChannels * kImageSize * kImageSize;
  for (int64_t i = 0; i < numel; ++i) {
    img[i] = std::clamp(
        img[i] + static_cast<float>(rng.Normal(0.0, 0.035)), 0.0f, 1.0f);
  }
  return image;
}

AttachmentDataset MakeAttachmentDataset(int64_t photos, int64_t receipts,
                                        int64_t logos, Rng& rng) {
  std::vector<Concept> plan;
  constexpr Concept kPhotoClasses[] = {Concept::kDog, Concept::kCat,
                                       Concept::kBeach, Concept::kMountain};
  constexpr Concept kReceiptClasses[] = {Concept::kStoreReceipt,
                                         Concept::kKfcReceipt};
  constexpr Concept kLogoClasses[] = {Concept::kKfcLogo, Concept::kAcmeLogo,
                                      Concept::kGlobexLogo};
  for (int64_t i = 0; i < photos; ++i) {
    plan.push_back(kPhotoClasses[rng.UniformInt(0, 3)]);
  }
  for (int64_t i = 0; i < receipts; ++i) {
    plan.push_back(kReceiptClasses[rng.UniformInt(0, 1)]);
  }
  for (int64_t i = 0; i < logos; ++i) {
    plan.push_back(kLogoClasses[rng.UniformInt(0, 2)]);
  }
  const std::vector<int64_t> perm =
      rng.Permutation(static_cast<int64_t>(plan.size()));

  AttachmentDataset ds;
  const int64_t n = static_cast<int64_t>(plan.size());
  ds.images =
      Tensor::Zeros({n, kImageChannels, kImageSize, kImageSize});
  float* ip = ds.images.data<float>();
  const int64_t image_elems = kImageChannels * kImageSize * kImageSize;
  for (int64_t i = 0; i < n; ++i) {
    const Concept c = plan[static_cast<size_t>(perm[static_cast<size_t>(i)])];
    const Tensor image = RenderConceptImage(c, rng);
    const float* sp = image.data<float>();
    std::copy(sp, sp + image_elems, ip + i * image_elems);
    ds.concepts.push_back(c);
    char name[32];
    std::snprintf(name, sizeof(name), "img_%04d.png", static_cast<int>(i));
    ds.filenames.emplace_back(name);
  }
  return ds;
}

}  // namespace data
}  // namespace tdp
