#ifndef TDP_DATA_ADULT_H_
#define TDP_DATA_ADULT_H_

#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace tdp {
namespace data {

/// Synthetic stand-in for the Adult Income (1994 US Census) dataset used
/// by the paper's LLP experiments (§5.3/5.4). Mixed continuous/categorical
/// features with a noisy ground-truth decision rule tuned so a linear
/// classifier attains ~15-20% error (comparable to Adult), which is all
/// the LLP bag-size/noise curves depend on.

inline constexpr int64_t kAdultNumFeatures = 6;

struct AdultDataset {
  Tensor features;  // [n, 6] float32, standardized
  Tensor labels;    // [n] int64, 1 = income > 50K
};

AdultDataset MakeAdultDataset(int64_t n, Rng& rng);

/// LLP bags: instances partitioned into bags of `bag_size`; supervision is
/// per-bag positive/negative counts (not instance labels).
struct LlpBags {
  std::vector<Tensor> bag_features;  // each [bag_size, 6]
  /// Per-bag class counts [num_bags, 2]: column 0 = label 0, 1 = label 1.
  Tensor counts;
};

/// Partitions `dataset` (shuffled) into bags. When `laplace_scale` > 0,
/// Laplace(scale) noise is added to each count (the paper's Label-DP
/// mechanism, ε = 1/scale per count).
LlpBags MakeBags(const AdultDataset& dataset, int64_t bag_size,
                 double laplace_scale, Rng& rng);

}  // namespace data
}  // namespace tdp

#endif  // TDP_DATA_ADULT_H_
