#ifndef TDP_DATA_DIGITS_H_
#define TDP_DATA_DIGITS_H_

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace tdp {
namespace data {

/// Procedural MNIST substitute: 12x12 grayscale digit glyphs rendered from
/// seven-segment strokes with random jitter, stroke-intensity variation
/// and pixel noise. Two sizes mirror the paper's MNISTGrid variant
/// ("small"/"large" resized digits).
///
/// Substitution note (DESIGN.md §4): learning-from-counts experiments only
/// need a learnable multi-class image classification task. These glyphs
/// are linearly non-separable in pixel space (jitter + noise + two scales)
/// yet learnable by a small CNN — the same role MNIST plays in the paper,
/// at single-core-laptop cost.

inline constexpr int64_t kTileSize = 12;

/// Renders one digit tile [1, 12, 12], values in [0, 1].
/// `large` selects the big glyph variant; small glyphs are ~60% scale.
Tensor RenderDigitTile(int digit, bool large, Rng& rng);

struct DigitDataset {
  Tensor images;  // [n, 1, 12, 12] float32
  Tensor labels;  // [n] int64, digit 0-9
  Tensor sizes;   // [n] int64, 0 = small, 1 = large
};

/// Samples `n` tiles with uniform digit and size.
DigitDataset MakeDigitDataset(int64_t n, Rng& rng);

}  // namespace data
}  // namespace tdp

#endif  // TDP_DATA_DIGITS_H_
