#ifndef TDP_DATA_MNIST_GRID_H_
#define TDP_DATA_MNIST_GRID_H_

#include "src/common/rng.h"
#include "src/data/digits.h"
#include "src/tensor/tensor.h"

namespace tdp {
namespace data {

/// MNISTGrid (paper §3, Example 3.1): images containing a 3x3 grid of
/// digit tiles (9 tiles, matching the paper's einops decomposition
/// `"1 (h1 h2) (w1 w2) -> (h1 w1) 1 h2 w2", h1=3, w1=3`), each tile a
/// small or large digit. The supervision signal is the *grouped count*
/// table: COUNT(*) GROUP BY (digit, size) — 10x2 = 20 buckets.

inline constexpr int64_t kGridTiles = 3;          // 3x3 grid
inline constexpr int64_t kGridSize = kGridTiles * kTileSize;  // 36
inline constexpr int64_t kNumDigitClasses = 10;
inline constexpr int64_t kNumSizeClasses = 2;
inline constexpr int64_t kNumCountBuckets =
    kNumDigitClasses * kNumSizeClasses;  // 20

struct MnistGridDataset {
  Tensor grids;        // [n, 1, 36, 36] float32
  /// Target grouped counts [n, 20]; bucket (d, s) at index d*2 + s —
  /// exactly the row order TDP's soft group-by enumerates (digit slowest).
  Tensor counts;
  Tensor tile_labels;  // [n, 9] int64 (row-major tiles; eval only)
  Tensor tile_sizes;   // [n, 9] int64
};

/// Samples `n` grids with i.i.d. uniform digits and sizes per tile.
MnistGridDataset MakeMnistGridDataset(int64_t n, Rng& rng);

/// The einops rearrange from the paper: [n, 1, 36, 36] grids -> batched
/// tiles [n*9, 1, 12, 12] (row-major tile order).
Tensor GridToTiles(const Tensor& grids);

}  // namespace data
}  // namespace tdp

#endif  // TDP_DATA_MNIST_GRID_H_
