#include "src/data/mnist_grid.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace data {

MnistGridDataset MakeMnistGridDataset(int64_t n, Rng& rng) {
  MnistGridDataset ds;
  ds.grids = Tensor::Zeros({n, 1, kGridSize, kGridSize});
  ds.counts = Tensor::Zeros({n, kNumCountBuckets});
  ds.tile_labels = Tensor::Empty({n, kGridTiles * kGridTiles}, DType::kInt64);
  ds.tile_sizes = Tensor::Empty({n, kGridTiles * kGridTiles}, DType::kInt64);

  float* gp = ds.grids.data<float>();
  float* cp = ds.counts.data<float>();
  int64_t* lp = ds.tile_labels.data<int64_t>();
  int64_t* sp = ds.tile_sizes.data<int64_t>();

  for (int64_t i = 0; i < n; ++i) {
    float* grid = gp + i * kGridSize * kGridSize;
    for (int64_t ty = 0; ty < kGridTiles; ++ty) {
      for (int64_t tx = 0; tx < kGridTiles; ++tx) {
        const int digit = static_cast<int>(rng.UniformInt(0, 9));
        const bool large = rng.Bernoulli(0.5);
        const Tensor tile = RenderDigitTile(digit, large, rng);
        const float* tp = tile.data<float>();
        for (int64_t y = 0; y < kTileSize; ++y) {
          std::copy(tp + y * kTileSize, tp + (y + 1) * kTileSize,
                    grid + (ty * kTileSize + y) * kGridSize + tx * kTileSize);
        }
        const int64_t tile_index = ty * kGridTiles + tx;
        lp[i * kGridTiles * kGridTiles + tile_index] = digit;
        sp[i * kGridTiles * kGridTiles + tile_index] = large ? 1 : 0;
        cp[i * kNumCountBuckets + digit * kNumSizeClasses + (large ? 1 : 0)] +=
            1.0f;
      }
    }
  }
  return ds;
}

Tensor GridToTiles(const Tensor& grids) {
  TDP_CHECK_EQ(grids.dim(), 4);
  TDP_CHECK_EQ(grids.size(1), 1);
  TDP_CHECK_EQ(grids.size(2), kGridSize);
  TDP_CHECK_EQ(grids.size(3), kGridSize);
  const int64_t n = grids.size(0);
  // einops: "n 1 (h1 h2) (w1 w2) -> (n h1 w1) 1 h2 w2" with h1 = w1 = 3,
  // expressed through reshape/permute tensor ops (differentiable view
  // chain, so gradients flow back into the grid pixels if needed).
  Tensor x = Reshape(grids, {n, kGridTiles, kTileSize, kGridTiles, kTileSize});
  x = Permute(x, {0, 1, 3, 2, 4});  // n, h1, w1, h2, w2
  return Reshape(x.Contiguous(),
                 {n * kGridTiles * kGridTiles, 1, kTileSize, kTileSize});
}

}  // namespace data
}  // namespace tdp
