#include "src/data/adult.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace data {

AdultDataset MakeAdultDataset(int64_t n, Rng& rng) {
  AdultDataset ds;
  ds.features = Tensor::Empty({n, kAdultNumFeatures});
  ds.labels = Tensor::Empty({n}, DType::kInt64);
  float* fp = ds.features.data<float>();
  int64_t* lp = ds.labels.data<int64_t>();

  // Ground-truth weights over standardized features (age, education,
  // hours, capital-gain, married, occupation-rank).
  constexpr double kWeights[kAdultNumFeatures] = {0.8, 1.2, 0.6,
                                                  1.5, 0.7, 0.9};
  constexpr double kBias = -0.9;  // skews toward the <=50K majority class

  for (int64_t i = 0; i < n; ++i) {
    double raw[kAdultNumFeatures];
    raw[0] = rng.Uniform(-1.5, 1.5);                    // age (standardized)
    raw[1] = rng.Normal(0.0, 1.0);                      // education years
    raw[2] = rng.Normal(0.0, 1.0);                      // hours/week
    // Capital gain: mostly zero with a heavy positive tail (log-normal).
    raw[3] = rng.Bernoulli(0.15) ? std::exp(rng.Normal(0.0, 0.6)) - 1.0
                                 : -0.3;
    raw[4] = rng.Bernoulli(0.45) ? 1.0 : -1.0;          // married
    raw[5] = rng.Normal(0.0, 1.0);                      // occupation rank
    double score = kBias;
    for (int64_t d = 0; d < kAdultNumFeatures; ++d) {
      fp[i * kAdultNumFeatures + d] = static_cast<float>(raw[d]);
      score += kWeights[d] * raw[d];
    }
    // Logistic label noise gives ~15-20% Bayes error for a linear model.
    const double p = 1.0 / (1.0 + std::exp(-1.4 * score));
    lp[i] = rng.Bernoulli(p) ? 1 : 0;
  }
  return ds;
}

LlpBags MakeBags(const AdultDataset& dataset, int64_t bag_size,
                 double laplace_scale, Rng& rng) {
  TDP_CHECK_GE(bag_size, 1);
  const int64_t n = dataset.features.size(0);
  const int64_t num_bags = n / bag_size;
  TDP_CHECK_GT(num_bags, 0);

  const std::vector<int64_t> perm = rng.Permutation(n);
  LlpBags bags;
  bags.counts = Tensor::Zeros({num_bags, 2});
  float* cp = bags.counts.data<float>();

  for (int64_t b = 0; b < num_bags; ++b) {
    std::vector<int64_t> index(static_cast<size_t>(bag_size));
    for (int64_t j = 0; j < bag_size; ++j) {
      index[static_cast<size_t>(j)] = perm[static_cast<size_t>(b * bag_size + j)];
    }
    const Tensor idx = Tensor::FromVector(index);
    bags.bag_features.push_back(IndexSelect(dataset.features, 0, idx));
    const Tensor labels = IndexSelect(dataset.labels, 0, idx);
    const std::vector<int64_t> lv = labels.ToVector<int64_t>();
    for (int64_t label : lv) cp[b * 2 + label] += 1.0f;
    if (laplace_scale > 0) {
      cp[b * 2 + 0] += static_cast<float>(rng.Laplace(laplace_scale));
      cp[b * 2 + 1] += static_cast<float>(rng.Laplace(laplace_scale));
    }
  }
  return bags;
}

}  // namespace data
}  // namespace tdp
