#ifndef TDP_DATA_DOCUMENTS_H_
#define TDP_DATA_DOCUMENTS_H_

#include <array>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace tdp {
namespace data {

/// Synthetic document images for the SQL-over-OCR scenario (paper §5.2):
/// each image shows a numeric table (Iris-style, 4 measurement columns x
/// 10 rows) rendered with digit glyphs — the stand-in for the paper's
/// `dataframe_image` renderings of Iris dataframes. Each document carries
/// a timestamp metadata string; queries filter on it.

inline constexpr int64_t kDocRows = 10;
inline constexpr int64_t kDocCols = 4;
/// Each cell renders a value in [1.0, 9.9] as two digit glyphs (d.d).
inline constexpr int64_t kCellWidth = 24;   // two 12px glyphs
inline constexpr int64_t kCellHeight = 12;
inline constexpr int64_t kDocHeight = 136;  // 10*12 table + margins
inline constexpr int64_t kDocWidth = 112;   // 4*24 table + margins

inline constexpr std::array<const char*, kDocCols> kDocColumnNames = {
    "SepalLength", "SepalWidth", "PetalLength", "PetalWidth"};

struct DocumentDataset {
  Tensor images;                        // [n, 1, 136, 112]
  std::vector<std::string> timestamps;  // unique per document
  Tensor values;                        // [n, 10, 4] ground truth
};

/// Generates `n` documents with Iris-like column statistics. Table
/// placement jitters a few pixels so OCR detection is not a no-op.
DocumentDataset MakeDocumentDataset(int64_t n, Rng& rng);

/// Clean (noise-free, deterministic) digit glyph used both by the
/// document renderer and as the OCR matcher template: [12, 12].
Tensor RenderDigitTemplate(int digit);

}  // namespace data
}  // namespace tdp

#endif  // TDP_DATA_DOCUMENTS_H_
