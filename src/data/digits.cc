#include "src/data/digits.h"

#include <algorithm>
#include <array>

#include "src/common/logging.h"

namespace tdp {
namespace data {
namespace {

// Seven-segment layout:
//   0: top, 1: top-left, 2: top-right, 3: middle, 4: bottom-left,
//   5: bottom-right, 6: bottom.
constexpr std::array<uint8_t, 10> kSegments = {
    0b1110111,  // 0: top tl tr bl br bottom
    0b0100100,  // 1: tr br
    0b1011101,  // 2: top tr mid bl bottom
    0b1101101,  // 3: top tr mid br bottom
    0b0101110,  // 4: tl tr mid br
    0b1101011,  // 5: top tl mid br bottom
    0b1111011,  // 6: top tl mid bl br bottom
    0b0100101,  // 7: top tr br
    0b1111111,  // 8: all
    0b1101111,  // 9: top tl tr mid br bottom
};

constexpr int kSegTop = 0;
constexpr int kSegTopLeft = 1;
constexpr int kSegTopRight = 2;
constexpr int kSegMiddle = 3;
constexpr int kSegBottomLeft = 4;
constexpr int kSegBottomRight = 5;
constexpr int kSegBottom = 6;

bool HasSegment(int digit, int segment) {
  // Bit order: bit0 = top ... bit6 = bottom.
  return (kSegments[static_cast<size_t>(digit)] >> segment) & 1;
}

void DrawHLine(float* img, int64_t size, int y, int x0, int x1,
               float intensity) {
  if (y < 0 || y >= size) return;
  for (int x = std::max(0, x0); x <= std::min<int>(size - 1, x1); ++x) {
    img[y * size + x] = std::min(1.0f, img[y * size + x] + intensity);
  }
}

void DrawVLine(float* img, int64_t size, int x, int y0, int y1,
               float intensity) {
  if (x < 0 || x >= size) return;
  for (int y = std::max(0, y0); y <= std::min<int>(size - 1, y1); ++y) {
    img[y * size + x] = std::min(1.0f, img[y * size + x] + intensity);
  }
}

}  // namespace

Tensor RenderDigitTile(int digit, bool large, Rng& rng) {
  TDP_CHECK(digit >= 0 && digit <= 9);
  Tensor tile = Tensor::Zeros({1, kTileSize, kTileSize});
  float* img = tile.data<float>();

  // Glyph box: large = 6x10, small = 4x6, jittered placement.
  const int glyph_w = large ? 6 : 4;
  const int glyph_h = large ? 10 : 6;
  const int max_x = static_cast<int>(kTileSize) - glyph_w - 1;
  const int max_y = static_cast<int>(kTileSize) - glyph_h - 1;
  const int x0 = static_cast<int>(rng.UniformInt(1, std::max(1, max_x)));
  const int y0 = static_cast<int>(rng.UniformInt(1, std::max(1, max_y)));
  const int x1 = x0 + glyph_w - 1;
  const int y1 = y0 + glyph_h - 1;
  const int ym = y0 + glyph_h / 2;

  const float intensity = static_cast<float>(rng.Uniform(0.7, 1.0));
  if (HasSegment(digit, kSegTop)) DrawHLine(img, kTileSize, y0, x0, x1, intensity);
  if (HasSegment(digit, kSegMiddle)) DrawHLine(img, kTileSize, ym, x0, x1, intensity);
  if (HasSegment(digit, kSegBottom)) DrawHLine(img, kTileSize, y1, x0, x1, intensity);
  if (HasSegment(digit, kSegTopLeft)) DrawVLine(img, kTileSize, x0, y0, ym, intensity);
  if (HasSegment(digit, kSegTopRight)) DrawVLine(img, kTileSize, x1, y0, ym, intensity);
  if (HasSegment(digit, kSegBottomLeft)) DrawVLine(img, kTileSize, x0, ym, y1, intensity);
  if (HasSegment(digit, kSegBottomRight)) DrawVLine(img, kTileSize, x1, ym, y1, intensity);

  // Pixel noise + occasional dropout to stop trivial template matching.
  for (int64_t i = 0; i < kTileSize * kTileSize; ++i) {
    float v = img[i] + static_cast<float>(rng.Normal(0.0, 0.08));
    if (img[i] > 0 && rng.Bernoulli(0.05)) v = 0.0f;  // stroke dropout
    img[i] = std::clamp(v, 0.0f, 1.0f);
  }
  return tile;
}

DigitDataset MakeDigitDataset(int64_t n, Rng& rng) {
  DigitDataset ds;
  ds.images = Tensor::Zeros({n, 1, kTileSize, kTileSize});
  ds.labels = Tensor::Empty({n}, DType::kInt64);
  ds.sizes = Tensor::Empty({n}, DType::kInt64);
  float* ip = ds.images.data<float>();
  int64_t* lp = ds.labels.data<int64_t>();
  int64_t* sp = ds.sizes.data<int64_t>();
  const int64_t tile_elems = kTileSize * kTileSize;
  for (int64_t i = 0; i < n; ++i) {
    const int digit = static_cast<int>(rng.UniformInt(0, 9));
    const bool large = rng.Bernoulli(0.5);
    const Tensor tile = RenderDigitTile(digit, large, rng);
    const float* tp = tile.data<float>();
    std::copy(tp, tp + tile_elems, ip + i * tile_elems);
    lp[i] = digit;
    sp[i] = large ? 1 : 0;
  }
  return ds;
}

}  // namespace data
}  // namespace tdp
