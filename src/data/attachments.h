#ifndef TDP_DATA_ATTACHMENTS_H_
#define TDP_DATA_ATTACHMENTS_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace tdp {
namespace data {

/// Synthetic email-attachment image corpus for the multimodal-query
/// experiments (paper §5.1, Fig. 2): photographs, receipts and company
/// logos. Each class/concept has a distinctive visual pattern (shapes,
/// textures, color layout) plus per-instance noise, so a joint image/text
/// embedder can separate concepts the way CLIP separates them.

inline constexpr int64_t kImageChannels = 3;
inline constexpr int64_t kImageSize = 32;

/// Visual concepts; photographs have subclasses, mirroring queries like
/// "dog" vs the coarse "photo".
enum class Concept {
  kDog = 0,
  kCat,
  kBeach,
  kMountain,
  kStoreReceipt,
  kKfcReceipt,
  kKfcLogo,
  kAcmeLogo,
  kGlobexLogo,
};

inline constexpr int64_t kNumConcepts = 9;

std::string_view ConceptName(Concept c);

/// True for the four photograph subclasses.
bool IsPhotograph(Concept c);
bool IsReceipt(Concept c);
bool IsLogo(Concept c);

/// Renders one [3, 32, 32] instance of `c` with instance noise.
Tensor RenderConceptImage(Concept c, Rng& rng);

struct AttachmentDataset {
  Tensor images;                      // [n, 3, 32, 32]
  std::vector<Concept> concepts;      // per image
  std::vector<std::string> filenames; // per image, e.g. "img_0007.png"
};

/// The paper's corpus shape: `photos` photographs (uniform subclasses),
/// `receipts` receipts, `logos` logos, shuffled.
AttachmentDataset MakeAttachmentDataset(int64_t photos, int64_t receipts,
                                        int64_t logos, Rng& rng);

}  // namespace data
}  // namespace tdp

#endif  // TDP_DATA_ATTACHMENTS_H_
