#include "src/data/documents.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/logging.h"
#include "src/data/digits.h"

namespace tdp {
namespace data {
namespace {

// Iris-like per-column means/stddevs (values clipped into [1.0, 9.9]).
constexpr double kColumnMean[kDocCols] = {5.8, 3.0, 3.7, 1.9};
constexpr double kColumnStd[kDocCols] = {0.8, 0.4, 1.2, 0.5};

void BlitTile(float* img, int64_t img_width, int64_t y0, int64_t x0,
              const Tensor& tile) {
  const float* tp = tile.data<float>();
  for (int64_t y = 0; y < kTileSize; ++y) {
    for (int64_t x = 0; x < kTileSize; ++x) {
      img[(y0 + y) * img_width + (x0 + x)] =
          std::max(img[(y0 + y) * img_width + (x0 + x)],
                   tp[y * kTileSize + x]);
    }
  }
}

}  // namespace

Tensor RenderDigitTemplate(int digit) {
  TDP_CHECK(digit >= 0 && digit <= 9);
  // One fixed-seed draw per digit: deterministic glyph, identical for the
  // document renderer and the OCR matcher (scanner noise is added on top
  // of documents, so recognition is a real correlation task, not equality).
  Rng rng(0xD1617ull + static_cast<uint64_t>(digit));
  return RenderDigitTile(digit, /*large=*/true, rng).Squeeze(0).Contiguous();
}

DocumentDataset MakeDocumentDataset(int64_t n, Rng& rng) {
  DocumentDataset ds;
  ds.images = Tensor::Zeros({n, 1, kDocHeight, kDocWidth});
  ds.values = Tensor::Zeros({n, kDocRows, kDocCols});
  float* base = ds.images.data<float>();
  float* vp = ds.values.data<float>();

  for (int64_t i = 0; i < n; ++i) {
    float* img = base + i * kDocHeight * kDocWidth;
    // Jittered table origin (the OCR detector must find it).
    const int64_t ty = rng.UniformInt(4, 12);
    const int64_t tx = rng.UniformInt(4, 12);
    for (int64_t r = 0; r < kDocRows; ++r) {
      for (int64_t c = 0; c < kDocCols; ++c) {
        double value = kColumnMean[c] + rng.Normal(0.0, kColumnStd[c]);
        value = std::clamp(value, 1.0, 9.9);
        const int encoded = static_cast<int>(std::lround(value * 10.0));
        const int d1 = encoded / 10;
        const int d2 = encoded % 10;
        vp[(i * kDocRows + r) * kDocCols + c] =
            static_cast<float>(encoded) / 10.0f;
        const int64_t y0 = ty + r * kCellHeight;
        const int64_t x0 = tx + c * kCellWidth;
        BlitTile(img, kDocWidth, y0, x0, RenderDigitTemplate(d1));
        BlitTile(img, kDocWidth, y0, x0 + kTileSize, RenderDigitTemplate(d2));
      }
    }
    // Light scanner noise over the whole page.
    for (int64_t p = 0; p < kDocHeight * kDocWidth; ++p) {
      img[p] = std::clamp(
          img[p] + static_cast<float>(rng.Normal(0.0, 0.02)), 0.0f, 1.0f);
    }
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "2022:08:%02d %02d:00",
                  static_cast<int>(i / 24) + 1, static_cast<int>(i % 24));
    ds.timestamps.emplace_back(stamp);
  }
  return ds;
}

}  // namespace data
}  // namespace tdp
