#include "src/exec/compiled_query.h"

#include <set>

#include "src/exec/bound_expr.h"

namespace tdp {
namespace exec {
namespace {

void CollectExprModules(
    const BoundExpr& e,
    std::vector<std::shared_ptr<nn::Module>>& modules) {
  switch (e.kind) {
    case BoundExprKind::kUdfCall: {
      const auto& call = static_cast<const BoundUdfCall&>(e);
      for (const auto& m : call.fn->modules) modules.push_back(m);
      for (const auto& a : call.args) CollectExprModules(*a, modules);
      return;
    }
    case BoundExprKind::kBinary: {
      const auto& b = static_cast<const BoundBinary&>(e);
      CollectExprModules(*b.left, modules);
      CollectExprModules(*b.right, modules);
      return;
    }
    case BoundExprKind::kUnary:
      CollectExprModules(*static_cast<const BoundUnary&>(e).operand, modules);
      return;
    case BoundExprKind::kCase: {
      const auto& c = static_cast<const BoundCase&>(e);
      for (const auto& [when, then] : c.branches) {
        CollectExprModules(*when, modules);
        CollectExprModules(*then, modules);
      }
      if (c.else_expr) CollectExprModules(*c.else_expr, modules);
      return;
    }
    default:
      return;
  }
}

void CollectPlanModules(
    const plan::LogicalNode& node,
    std::vector<std::shared_ptr<nn::Module>>& modules) {
  switch (node.kind) {
    case plan::NodeKind::kTvfScan: {
      const auto& tvf = static_cast<const plan::TvfScanNode&>(node);
      for (const auto& m : tvf.fn->modules) modules.push_back(m);
      break;
    }
    case plan::NodeKind::kFilter:
      CollectExprModules(
          *static_cast<const plan::FilterNode&>(node).predicate, modules);
      break;
    case plan::NodeKind::kProject:
      for (const auto& e :
           static_cast<const plan::ProjectNode&>(node).exprs) {
        CollectExprModules(*e, modules);
      }
      break;
    case plan::NodeKind::kAggregate: {
      const auto& agg = static_cast<const plan::AggregateNode&>(node);
      for (const auto& e : agg.group_exprs) CollectExprModules(*e, modules);
      for (const auto& d : agg.aggregates) {
        if (d.arg) CollectExprModules(*d.arg, modules);
      }
      break;
    }
    case plan::NodeKind::kJoin: {
      const auto& join = static_cast<const plan::JoinNode&>(node);
      if (join.residual) CollectExprModules(*join.residual, modules);
      break;
    }
    case plan::NodeKind::kSort:
      for (const auto& item :
           static_cast<const plan::SortNode&>(node).items) {
        CollectExprModules(*item.expr, modules);
      }
      break;
    default:
      break;
  }
  for (const auto& child : node.children) {
    CollectPlanModules(*child, modules);
  }
}

}  // namespace

CompiledQuery::CompiledQuery(plan::LogicalNodePtr plan,
                             std::shared_ptr<const Catalog> catalog,
                             Device device, bool trainable)
    : plan_(std::move(plan)),
      catalog_(std::move(catalog)),
      device_(device),
      trainable_(trainable),
      training_mode_(trainable) {
  std::vector<std::shared_ptr<nn::Module>> raw;
  CollectPlanModules(*plan_, raw);
  std::set<nn::Module*> seen;
  for (auto& m : raw) {
    if (seen.insert(m.get()).second) modules_.push_back(std::move(m));
  }
}

StatusOr<Chunk> CompiledQuery::RunChunk() const {
  ExecContext ctx;
  ctx.catalog = catalog_.get();
  ctx.device = device_;
  ctx.soft_mode = trainable_ && training_mode_;
  return ExecuteNode(*plan_, ctx);
}

StatusOr<std::shared_ptr<Table>> CompiledQuery::Run() const {
  TDP_ASSIGN_OR_RETURN(Chunk chunk, RunChunk());
  return chunk.ToTable("result");
}

std::vector<Tensor> CompiledQuery::Parameters() const {
  std::vector<Tensor> params;
  for (const auto& m : modules_) {
    for (const Tensor& t : m->Parameters()) params.push_back(t);
  }
  return params;
}

}  // namespace exec
}  // namespace tdp
