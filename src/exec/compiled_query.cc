#include "src/exec/compiled_query.h"

#include <algorithm>
#include <set>

#include "src/exec/bound_expr.h"

namespace tdp {
namespace exec {
namespace {

void CollectExprModules(
    const BoundExpr& e,
    std::vector<std::shared_ptr<nn::Module>>& modules) {
  switch (e.kind) {
    case BoundExprKind::kUdfCall: {
      const auto& call = static_cast<const BoundUdfCall&>(e);
      for (const auto& m : call.fn->modules) modules.push_back(m);
      for (const auto& a : call.args) CollectExprModules(*a, modules);
      return;
    }
    case BoundExprKind::kBinary: {
      const auto& b = static_cast<const BoundBinary&>(e);
      CollectExprModules(*b.left, modules);
      CollectExprModules(*b.right, modules);
      return;
    }
    case BoundExprKind::kUnary:
      CollectExprModules(*static_cast<const BoundUnary&>(e).operand, modules);
      return;
    case BoundExprKind::kCase: {
      const auto& c = static_cast<const BoundCase&>(e);
      for (const auto& [when, then] : c.branches) {
        CollectExprModules(*when, modules);
        CollectExprModules(*then, modules);
      }
      if (c.else_expr) CollectExprModules(*c.else_expr, modules);
      return;
    }
    case BoundExprKind::kVectorSim: {
      const auto& v = static_cast<const BoundVectorSim&>(e);
      CollectExprModules(*v.column, modules);
      CollectExprModules(*v.query, modules);
      return;
    }
    default:
      return;
  }
}

// Highest `?` ordinal in the expression tree, or -1 when none. The switch
// is exhaustive (no default) so a future BoundExprKind with children
// triggers -Wswitch here instead of silently undercounting parameters.
int64_t MaxParamOrdinal(const BoundExpr& e) {
  switch (e.kind) {
    case BoundExprKind::kParameter:
      return static_cast<const BoundParameter&>(e).ordinal;
    case BoundExprKind::kUdfCall: {
      int64_t max_ordinal = -1;
      for (const auto& a : static_cast<const BoundUdfCall&>(e).args) {
        max_ordinal = std::max(max_ordinal, MaxParamOrdinal(*a));
      }
      return max_ordinal;
    }
    case BoundExprKind::kBinary: {
      const auto& b = static_cast<const BoundBinary&>(e);
      return std::max(MaxParamOrdinal(*b.left), MaxParamOrdinal(*b.right));
    }
    case BoundExprKind::kUnary:
      return MaxParamOrdinal(*static_cast<const BoundUnary&>(e).operand);
    case BoundExprKind::kCase: {
      const auto& c = static_cast<const BoundCase&>(e);
      int64_t max_ordinal = -1;
      for (const auto& [when, then] : c.branches) {
        max_ordinal = std::max(max_ordinal, MaxParamOrdinal(*when));
        max_ordinal = std::max(max_ordinal, MaxParamOrdinal(*then));
      }
      if (c.else_expr) {
        max_ordinal = std::max(max_ordinal, MaxParamOrdinal(*c.else_expr));
      }
      return max_ordinal;
    }
    case BoundExprKind::kVectorSim: {
      const auto& v = static_cast<const BoundVectorSim&>(e);
      return std::max(MaxParamOrdinal(*v.column), MaxParamOrdinal(*v.query));
    }
    case BoundExprKind::kColumnRef:
    case BoundExprKind::kLiteral:
      return -1;
  }
  return -1;
}

int64_t MaxPlanParamOrdinal(const plan::LogicalNode& node) {
  int64_t max_ordinal = -1;
  plan::ForEachExpr(node, [&max_ordinal](const BoundExpr& e) {
    max_ordinal = std::max(max_ordinal, MaxParamOrdinal(e));
  });
  for (const auto& child : node.children) {
    max_ordinal = std::max(max_ordinal, MaxPlanParamOrdinal(*child));
  }
  return max_ordinal;
}

void CollectPlanModules(
    const plan::LogicalNode& node,
    std::vector<std::shared_ptr<nn::Module>>& modules) {
  // TVF modules hang off the node itself, not an expression slot; every
  // expression-borne module is reached through the shared plan walker.
  if (node.kind == plan::NodeKind::kTvfScan) {
    const auto& tvf = static_cast<const plan::TvfScanNode&>(node);
    for (const auto& m : tvf.fn->modules) modules.push_back(m);
  }
  plan::ForEachExpr(node, [&modules](const BoundExpr& e) {
    CollectExprModules(e, modules);
  });
  for (const auto& child : node.children) {
    CollectPlanModules(*child, modules);
  }
}

}  // namespace

CompiledQuery::CompiledQuery(plan::LogicalNodePtr plan,
                             std::shared_ptr<SharedCatalog> catalog,
                             Device device, bool trainable,
                             UdfDispatcher* udf_dispatch)
    : plan_(std::move(plan)),
      pipelines_(plan::BuildPipelines(*plan_)),
      catalog_(std::move(catalog)),
      device_(device),
      trainable_(trainable),
      udf_dispatch_(trainable ? nullptr : udf_dispatch),
      num_params_(MaxPlanParamOrdinal(*plan_) + 1) {
  std::vector<std::shared_ptr<nn::Module>> raw;
  CollectPlanModules(*plan_, raw);
  std::set<nn::Module*> seen;
  for (auto& m : raw) {
    if (seen.insert(m.get()).second) modules_.push_back(std::move(m));
  }
}

Status CompiledQuery::ValidateParams(
    const std::vector<ScalarValue>& params) const {
  if (static_cast<int64_t>(params.size()) != num_params_) {
    return Status::InvalidArgument(
        "query expects " + std::to_string(num_params_) + " parameter(s), " +
        std::to_string(params.size()) + " bound");
  }
  return Status::OK();
}

// Run-entry validation of RunOptions fields with a documented error
// contract, so e.g. a negative probe budget fails every run identically —
// whether or not the plan contains an IndexTopK node or its index is
// currently valid (a latent bad value must not start failing only after
// an unrelated CREATE/DROP INDEX changes the plan shape).
static Status ValidateRunOptions(const RunOptions& options) {
  if (options.vector_search.num_probes < 0) {
    return Status::InvalidArgument(
        "RunOptions::vector_search.num_probes must be non-negative, got " +
        std::to_string(options.vector_search.num_probes));
  }
  if (options.vector_search.max_widening_rounds < 0) {
    return Status::InvalidArgument(
        "RunOptions::vector_search.max_widening_rounds must be "
        "non-negative, got " +
        std::to_string(options.vector_search.max_widening_rounds));
  }
  if (options.model_batch_rows < 0) {
    return Status::InvalidArgument(
        "RunOptions::model_batch_rows must be non-negative, got " +
        std::to_string(options.model_batch_rows));
  }
  if (options.memory_budget_bytes < 0) {
    return Status::InvalidArgument(
        "RunOptions::memory_budget_bytes must be non-negative (0 = "
        "unlimited), got " +
        std::to_string(options.memory_budget_bytes));
  }
  return Status::OK();
}

ExecContext CompiledQuery::MakeContext(const RunOptions& options,
                                       const Catalog* snapshot,
                                       const CancellationToken* cancel) const {
  ExecContext ctx;
  ctx.catalog = snapshot;
  // DML kernels install their delta through the session's shared catalog;
  // read-only plans never dereference this.
  ctx.writer = catalog_.get();
  ctx.device = device_;
  // TRAINABLE queries default to the soft (differentiable) operators;
  // `RunOptions::training_mode = false` swaps in the exact ones for
  // inference. Non-trainable queries ignore the override.
  ctx.soft_mode = trainable_ && options.training_mode.value_or(true);
  ctx.params = options.params.empty() ? nullptr : &options.params;
  ctx.exec = options.exec;
  ctx.vector_search = options.vector_search;
  ctx.cancel = cancel;
  ctx.morsel_fault =
      options.inject_morsel_fault ? &options.inject_morsel_fault : nullptr;
  // Soft (training) runs must evaluate UDFs directly: the dispatcher
  // executes forwards outside this run's autograd scope (and possibly
  // batched with other queries' rows). trainable_ already forced the
  // member to null, but guard soft_mode explicitly for clarity.
  ctx.udf_dispatch = ctx.soft_mode ? nullptr : udf_dispatch_;
  ctx.model_batch_rows = options.model_batch_rows;
  // The plan-lifetime primitive cache (fused filter+project programs,
  // reusable join build sides). Internally synchronized, so concurrent
  // runs of one shared CompiledQuery stay safe.
  ctx.primitive_cache = primitive_cache_.get();
  return ctx;
}

StatusOr<Chunk> CompiledQuery::RunChunkInternal(
    const std::vector<ScalarValue>& params, const RunOptions& options) const {
  TDP_RETURN_NOT_OK(ValidateParams(params));
  TDP_RETURN_NOT_OK(ValidateRunOptions(options));
  // One consistent catalog snapshot per run: concurrent RegisterTable
  // calls never tear a multi-table query, and the snapshot stays alive
  // (shared_ptr) for the whole execution.
  const std::shared_ptr<const Catalog> snapshot = catalog_->Snapshot();
  ExecContext ctx = MakeContext(options, snapshot.get(), options.cancel.get());
  ctx.params = params.empty() ? nullptr : &params;
  if (options.memory_budget_bytes > 0) {
    // Budgeted run: the accounting + spill-file registry lives exactly as
    // long as the execution — the destructor deletes every spill temp file
    // whether the run completes, fails, or is cancelled mid-spill.
    QueryMemory memory(options.memory_budget_bytes);
    ctx.memory = &memory;
    return ExecutePlan(*plan_, pipelines_, ctx);
  }
  return ExecutePlan(*plan_, pipelines_, ctx);
}

StatusOr<Chunk> CompiledQuery::RunChunk(const RunOptions& options) const {
  return RunChunkInternal(options.params, options);
}

StatusOr<Chunk> CompiledQuery::RunChunk(
    const std::vector<ScalarValue>& params) const {
  return RunChunkInternal(params, RunOptions{});
}

StatusOr<std::shared_ptr<Table>> CompiledQuery::Run(
    const RunOptions& options) const {
  TDP_ASSIGN_OR_RETURN(Chunk chunk, RunChunk(options));
  return chunk.ToTable("result");
}

StatusOr<std::shared_ptr<Table>> CompiledQuery::Run(
    const std::vector<ScalarValue>& params) const {
  TDP_ASSIGN_OR_RETURN(Chunk chunk, RunChunk(params));
  return chunk.ToTable("result");
}

StatusOr<std::unique_ptr<ResultCursor>> CompiledQuery::Open(
    RunOptions options) const {
  TDP_RETURN_NOT_OK(ValidateParams(options.params));
  TDP_RETURN_NOT_OK(ValidateRunOptions(options));
  std::shared_ptr<const CompiledQuery> self = weak_from_this().lock();
  if (self == nullptr) {
    return Status::InvalidArgument(
        "Open() requires the CompiledQuery to be owned by a shared_ptr "
        "(Session::Query/Prepare return one): the cursor must keep the "
        "plan alive for its producer");
  }
  // The snapshot is taken at Open — the cursor's whole stream reads one
  // consistent catalog state, same as a single Run().
  std::unique_ptr<ResultCursor> cursor(new ResultCursor(
      std::move(self), std::move(options), catalog_->Snapshot()));
  cursor->Start();
  return cursor;
}

std::vector<Tensor> CompiledQuery::Parameters() const {
  std::vector<Tensor> params;
  for (const auto& m : modules_) {
    for (const Tensor& t : m->Parameters()) params.push_back(t);
  }
  return params;
}

}  // namespace exec
}  // namespace tdp
