#ifndef TDP_EXEC_BOUND_EXPR_H_
#define TDP_EXEC_BOUND_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/exec/chunk.h"
#include "src/exec/value.h"
#include "src/sql/ast.h"
#include "src/udf/registry.h"

namespace tdp {
namespace exec {

// Bound (resolved) expressions: column references are indices into the
// child operator's output chunk, function names are resolved registry
// pointers. Evaluation lowers every expression to tensor ops, so the same
// expression tree is differentiable when its inputs carry autograd state.

enum class BoundExprKind {
  kColumnRef,
  kLiteral,
  kBinary,
  kUnary,
  kUdfCall,
  kCase,
  kParameter,
  kVectorSim,
};

struct BoundExpr {
  explicit BoundExpr(BoundExprKind kind) : kind(kind) {}
  virtual ~BoundExpr() = default;
  BoundExprKind kind;
  std::string display_name;  // column header when projected
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

struct BoundColumnRef : BoundExpr {
  explicit BoundColumnRef(int64_t index)
      : BoundExpr(BoundExprKind::kColumnRef), column_index(index) {}
  int64_t column_index;
};

struct BoundLiteral : BoundExpr {
  explicit BoundLiteral(ScalarValue v)
      : BoundExpr(BoundExprKind::kLiteral), value(std::move(v)) {}
  ScalarValue value;
};

struct BoundBinary : BoundExpr {
  BoundBinary(sql::BinaryOp op, BoundExprPtr left, BoundExprPtr right)
      : BoundExpr(BoundExprKind::kBinary),
        op(op),
        left(std::move(left)),
        right(std::move(right)) {}
  sql::BinaryOp op;
  BoundExprPtr left;
  BoundExprPtr right;
};

struct BoundUnary : BoundExpr {
  BoundUnary(sql::UnaryOp op, BoundExprPtr operand)
      : BoundExpr(BoundExprKind::kUnary),
        op(op),
        operand(std::move(operand)) {}
  sql::UnaryOp op;
  BoundExprPtr operand;
};

struct BoundUdfCall : BoundExpr {
  BoundUdfCall() : BoundExpr(BoundExprKind::kUdfCall) {}
  const udf::ScalarFunction* fn = nullptr;  // owned by the registry
  std::vector<BoundExprPtr> args;
};

struct BoundCase : BoundExpr {
  BoundCase() : BoundExpr(BoundExprKind::kCase) {}
  std::vector<std::pair<BoundExprPtr, BoundExprPtr>> branches;
  BoundExprPtr else_expr;  // may be null -> 0
};

/// A `?` placeholder: evaluates to the `ordinal`-th value of the parameter
/// vector supplied at Run() time. The plan stays immutable across runs —
/// different bindings flow through the per-run evaluation context, so one
/// compiled query serves many concurrent executions.
struct BoundParameter : BoundExpr {
  explicit BoundParameter(int64_t ordinal)
      : BoundExpr(BoundExprKind::kParameter), ordinal(ordinal) {}
  int64_t ordinal;
};

/// Built-in vector similarity over an embedding column: `dot(col, q)` /
/// `cosine_sim(col, q)` yield one float32 score per row. `column` must
/// evaluate to a rank-2 tensor column [n, d]; `query` to a constant
/// d-element tensor (a literal is impossible in SQL text, so in practice a
/// `?` parameter bound with `ScalarValue::FromTensor`). Scores are
/// row-local — row i's score depends only on row i and the query — so the
/// expression is morsel-safe AND candidate-subset-safe: evaluating it over
/// any subset of rows produces bit-identical values to the full relation,
/// which is what lets the IndexTopK operator re-rank index candidates with
/// this very expression and stay exact at full probe count.
struct BoundVectorSim : BoundExpr {
  enum class SimKind { kDot, kCosine };
  BoundVectorSim(SimKind sim_kind, BoundExprPtr column, BoundExprPtr query)
      : BoundExpr(BoundExprKind::kVectorSim),
        sim_kind(sim_kind),
        column(std::move(column)),
        query(std::move(query)) {}
  SimKind sim_kind;
  BoundExprPtr column;
  BoundExprPtr query;
};

/// Result of evaluating an expression: either a per-row column or a
/// constant scalar (broadcast lazily by consumers).
struct EvalResult {
  bool is_scalar = false;
  ScalarValue scalar;
  Column column;
};

class CancellationToken;

/// Routing seam for batchable scalar-UDF calls. The evaluator stays
/// runtime-agnostic: when a dispatcher is present and the called function
/// is batchable, the call goes through the dispatcher — in production the
/// runtime's InferenceScheduler, which may coalesce concurrent calls for
/// the same model into one forward pass. Implementations must be
/// thread-safe and must return bytes identical to calling `fn.fn` directly
/// (the batchable row-local contract makes coalescing exact).
class UdfDispatcher {
 public:
  virtual ~UdfDispatcher() = default;
  virtual StatusOr<Column> CallScalar(const udf::ScalarFunction& fn,
                                      const std::vector<udf::Argument>& args,
                                      int64_t num_rows, Device device,
                                      const CancellationToken* cancel) = 0;
};

/// Per-evaluation context for expression trees. One value object instead
/// of a growing parameter list: the device to run tensor math on, the
/// per-run `?` parameter bindings, and the optional batchable-UDF
/// dispatcher with the run's cancellation token (so a coalesced call
/// waiting in the scheduler can be abandoned cooperatively).
struct EvalOptions {
  Device device = Device::kCpu;
  const std::vector<ScalarValue>* params = nullptr;
  UdfDispatcher* udf_dispatch = nullptr;
  const CancellationToken* cancel = nullptr;
};

/// Evaluates `expr` over `input` per `opts`. All column math runs as
/// tensor ops, so gradients flow through results whose inputs require grad.
/// `opts.params` supplies values for BoundParameter placeholders (may be
/// null when the expression has none); it is read-only and per-run, so the
/// same expression tree can be evaluated concurrently with different
/// bindings.
StatusOr<EvalResult> EvaluateExpr(const BoundExpr& expr, const Chunk& input,
                                  const EvalOptions& opts);

/// EvaluateExpr + broadcast scalars to `num_rows` and wrap as a column.
StatusOr<Column> EvaluateExprToColumn(const BoundExpr& expr,
                                      const Chunk& input,
                                      const EvalOptions& opts);

/// Evaluates a predicate to a 1-d bool mask of input.num_rows().
StatusOr<Tensor> EvaluatePredicate(const BoundExpr& expr, const Chunk& input,
                                   const EvalOptions& opts);

/// Convenience overloads for direct (dispatcher-less) evaluation.
StatusOr<EvalResult> EvaluateExpr(const BoundExpr& expr, const Chunk& input,
                                  Device device,
                                  const std::vector<ScalarValue>* params =
                                      nullptr);
StatusOr<Column> EvaluateExprToColumn(const BoundExpr& expr,
                                      const Chunk& input, Device device,
                                      const std::vector<ScalarValue>* params =
                                          nullptr);
StatusOr<Tensor> EvaluatePredicate(const BoundExpr& expr, const Chunk& input,
                                   Device device,
                                   const std::vector<ScalarValue>* params =
                                       nullptr);

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_BOUND_EXPR_H_
