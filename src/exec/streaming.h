#ifndef TDP_EXEC_STREAMING_H_
#define TDP_EXEC_STREAMING_H_

#include <functional>

#include "src/common/status.h"
#include "src/exec/operators.h"

namespace tdp {
namespace exec {

/// Consumer of the result pipeline's chunks, invoked in morsel order.
/// Returning a non-OK status aborts execution with that status — the
/// bounded cursor queue uses this to stop production the moment the
/// cursor is closed or its run is cancelled.
using ChunkSink = std::function<Status(Chunk)>;

/// Runs the streaming executor push-style: every breaker (upstream)
/// pipeline materializes exactly as under `ExecutePlan`, then the final
/// (result) pipeline's chunks are handed to `sink` incrementally in
/// morsel order instead of being concatenated. The concatenation of the
/// sunk chunks is bit-identical to `ExecutePlan`'s result; at least one
/// chunk (possibly zero-row) is always sunk on success. Workers poll
/// `ctx.cancel` at morsel boundaries.
///
/// Precondition: `ctx.exec.streaming` and not `ctx.soft_mode` (callers
/// route those runs to the legacy `ExecuteNode`).
Status ExecuteStreamingToSink(const plan::PipelinePlan& pplan,
                              const ExecContext& ctx, const ChunkSink& sink);

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_STREAMING_H_
