#ifndef TDP_EXEC_RUN_OPTIONS_H_
#define TDP_EXEC_RUN_OPTIONS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/exec/value.h"
#include "src/exec/vector_search.h"

namespace tdp {
namespace exec {

/// Executor selection + morsel sizing. Purely per-run state (part of
/// `RunOptions`): two clients may run the same shared `CompiledQuery` with
/// different executors or morsel sizes simultaneously, and the session
/// plan cache hands them one plan object regardless of these knobs.
struct ExecOptions {
  /// True (default): morsel-driven streaming pipelines — Scan emits
  /// bounded row-range morsels that flow through Filter/Project/join-probe
  /// without materializing intermediate relations, with per-morsel partial
  /// states merged deterministically at breakers (Sort, aggregate,
  /// hash-join build, DISTINCT, TVF). False: the legacy whole-relation
  /// operator-at-a-time path, kept callable for differential testing.
  /// Both paths are bit-identical by construction.
  bool streaming = true;
  /// Morsel size in rows; 0 resolves to `DefaultMorselRows()`
  /// (`TDP_MORSEL_ROWS` env var, default 65536).
  int64_t morsel_rows = 0;
};

/// Cooperative cancellation flag shared between a client and a running
/// query. The client calls `Cancel()` (any thread, any time); executor
/// workers poll `cancelled()` at morsel boundaries and abandon the run
/// with a `kCancelled` status instead of racing to materialize the full
/// result. One token may be shared by several runs (e.g. every query of
/// one client request) to cancel them all on disconnect.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// A token linked to `parent`: reports cancelled when either this token
  /// or the parent is. `ResultCursor` links its internal close-token to
  /// the caller's `RunOptions::cancel` this way, so closing the cursor
  /// stops workers without cancelling the caller's (possibly shared)
  /// token.
  explicit CancellationToken(std::shared_ptr<const CancellationToken> parent)
      : parent_(std::move(parent)) {}

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed) ||
           (parent_ != nullptr && parent_->cancelled());
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::shared_ptr<const CancellationToken> parent_;
};

/// Everything that may vary between two runs of one (immutable, shared)
/// `CompiledQuery`, gathered into a single value object passed to
/// `Run`/`RunChunk`/`Open`. Plans carry no per-run state, so a cached
/// plan can serve clients with conflicting options concurrently.
struct RunOptions {
  /// Values for the statement's `?` placeholders, in lexical order; must
  /// match `CompiledQuery::num_params()` exactly.
  std::vector<ScalarValue> params;

  /// Executor selection + morsel sizing for this run.
  ExecOptions exec;

  /// For TRAINABLE-compiled queries only: `true` (the default when unset)
  /// runs the soft differentiable operators, `false` swaps in the exact
  /// operators for inference ("at inference time, we swap the approximate
  /// differentiable operators with exact implementations", §4 of the
  /// paper). Ignored for non-trainable queries.
  std::optional<bool> training_mode;

  /// Vector-search knobs for IndexTopK / FilteredIndexTopK
  /// (index-accelerated `ORDER BY similarity LIMIT k`, optionally under a
  /// WHERE predicate) operators in this run: the probe budget, a strategy
  /// override for filtered searches, and the post-filter widening pace.
  /// See `VectorSearchOptions` for per-field semantics (the probe/recall
  /// ablation is `bench/ablation_topk_index`; the strategy sweep is
  /// `bench/filtered_topk`).
  using VectorSearch = VectorSearchOptions;
  VectorSearch vector_search;

  /// Optional cooperative-cancellation token. Workers poll it at morsel
  /// boundaries; a cancelled run fails with `StatusCode::kCancelled`.
  std::shared_ptr<CancellationToken> cancel;

  /// Per-run override of the ModelEval micro-batch size: every batchable
  /// model stage in the plan slices its morsels into batches of this many
  /// rows instead of its compiled size (the registering UDF/TVF's
  /// preferred batch, default `udf::kDefaultModelBatchRows`). 0 (the
  /// default) keeps each stage's compiled size. Purely a scheduling knob:
  /// batchable model bodies are row-local, so results are bit-identical
  /// at any batch size — only latency/throughput change. Like the morsel
  /// knob this is per-run state, NOT part of the plan-cache key.
  int64_t model_batch_rows = 0;

  /// Per-query memory budget (bytes) for breaker materializations — the
  /// scratch the blocking operators hold while they run: sort keys,
  /// permutations and the sorted copy; the hash-join build table; the
  /// aggregate's code/argument/accumulator arrays. 0 (default) is
  /// unlimited: everything stays in memory. When > 0, a breaker whose
  /// accounted footprint would exceed the budget takes its spill-to-disk
  /// path instead (external merge sort; partitioned build payload with
  /// per-partition gather; paged two-pass aggregation) — results are
  /// bit-identical to the in-memory path, only scratch residency changes.
  /// Spill temp files live for exactly one run: they are deleted when the
  /// run returns, is cancelled, or its cursor is closed early. Purely a
  /// resource knob, NOT part of the plan-cache key.
  int64_t memory_budget_bytes = 0;

  /// Capacity (in chunks) of a `ResultCursor`'s bounded hand-off queue;
  /// 0 resolves to max(2, pool threads). The producer blocks once the
  /// queue is full (backpressure), so an abandoned or slow consumer
  /// bounds the run's buffered memory instead of materializing the
  /// whole result.
  size_t cursor_queue_chunks = 0;

  /// Test-only fault injection: when set, the streaming executor invokes
  /// this with each result-pipeline morsel index before processing it and
  /// fails the run with any non-OK status returned. Lets tests prove that
  /// a mid-stream executor error surfaces identically through
  /// `ResultCursor::Next()` and `Run()` (no silent truncation).
  std::function<Status(int64_t)> inject_morsel_fault;
};

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_RUN_OPTIONS_H_
