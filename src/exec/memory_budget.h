#ifndef TDP_EXEC_MEMORY_BUDGET_H_
#define TDP_EXEC_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/exec/chunk.h"
#include "src/storage/column.h"

namespace tdp {
namespace exec {

/// Bytes a column's materialization occupies: payload tensor plus
/// dictionary/domain metadata. The unit every breaker uses to account its
/// scratch against the run's `QueryMemory` budget.
int64_t ColumnFootprintBytes(const Column& column);
int64_t ChunkFootprintBytes(const Chunk& chunk);

/// Per-query memory accounting + spill-file registry for one run.
///
/// Created by `CompiledQuery::RunChunk` / `ResultCursor`'s producer when
/// `RunOptions::memory_budget_bytes > 0` and threaded through `ExecContext`
/// to the breaker kernels (Sort, hash-join build, Aggregate finalize). A
/// kernel about to materialize `bytes` of breaker scratch asks
/// `ShouldSpill(bytes)`; over budget it takes its external (spill-to-disk)
/// path instead — bit-identical results, bounded scratch.
///
/// Spill files live in one per-query temp directory whose lifetime is the
/// run: the destructor (and the eager `ReleaseSpillFiles`, called at the
/// end of a cursor's producer so cancellation/early close cleans up
/// immediately) deletes every file. Process-wide counters
/// (`LiveSpillFiles`) let tests assert no run leaks temp files.
///
/// Thread safety: accounting is atomic, the file registry is mutex-guarded
/// — independent breakers of one run may spill concurrently.
class QueryMemory {
 public:
  /// `budget_bytes <= 0` means unlimited (accounting only, never spills).
  explicit QueryMemory(int64_t budget_bytes);
  ~QueryMemory();

  QueryMemory(const QueryMemory&) = delete;
  QueryMemory& operator=(const QueryMemory&) = delete;

  int64_t budget_bytes() const { return budget_bytes_; }
  bool unlimited() const { return budget_bytes_ <= 0; }

  /// Accounting for in-memory breaker materializations. `Charge` never
  /// fails — the budget steers kernels toward their spill paths via
  /// `ShouldSpill`, it does not abort queries.
  void Charge(int64_t bytes) {
    reserved_.fetch_add(bytes, std::memory_order_relaxed);
    int64_t peak = peak_.load(std::memory_order_relaxed);
    const int64_t now = reserved_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }
  void Release(int64_t bytes) {
    reserved_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  int64_t reserved_bytes() const {
    return reserved_.load(std::memory_order_relaxed);
  }
  int64_t peak_reserved_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

  /// True when materializing `bytes` more of breaker scratch would push
  /// the run's reservation over the budget — the kernel should spill.
  bool ShouldSpill(int64_t bytes) const {
    if (unlimited()) return false;
    return reserved_bytes() + bytes > budget_bytes_;
  }

  /// Registers a fresh spill file path (the per-query spill directory is
  /// created lazily on first call). `tag` names the producing breaker in
  /// the filename for debuggability.
  StatusOr<std::string> NewSpillFile(const std::string& tag);

  /// Records bytes written to a spill file (for `bytes_spilled`).
  void AddSpilledBytes(int64_t bytes) {
    bytes_spilled_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Deletes every spill file and the per-query directory now (idempotent;
  /// also run by the destructor). Called eagerly at the end of a run so a
  /// cancelled or early-closed cursor releases disk before the cursor
  /// object itself dies.
  void ReleaseSpillFiles();

  int64_t spill_files_created() const {
    return files_created_.load(std::memory_order_relaxed);
  }
  int64_t bytes_spilled() const {
    return bytes_spilled_.load(std::memory_order_relaxed);
  }

  /// Process-wide count of spill files created minus deleted — the
  /// leak-check oracle: zero whenever no budgeted query is in flight.
  static int64_t LiveSpillFiles();
  /// Cumulative process-wide spilled bytes (monotonic).
  static int64_t TotalBytesSpilled();

 private:
  const int64_t budget_bytes_;
  std::atomic<int64_t> reserved_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> files_created_{0};
  std::atomic<int64_t> bytes_spilled_{0};

  std::mutex mu_;
  std::string spill_dir_;               // empty until first spill
  std::vector<std::string> files_;      // registered spill file paths
  bool released_ = false;
};

/// RAII reservation of breaker scratch against a (possibly null) budget.
class ScopedReservation {
 public:
  ScopedReservation(QueryMemory* memory, int64_t bytes)
      : memory_(memory), bytes_(bytes) {
    if (memory_ != nullptr) memory_->Charge(bytes_);
  }
  ~ScopedReservation() {
    if (memory_ != nullptr) memory_->Release(bytes_);
  }
  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;

 private:
  QueryMemory* memory_;
  int64_t bytes_;
};

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_MEMORY_BUDGET_H_
