#include "src/exec/spill.h"

#include <cstring>

#include "src/tensor/dtype.h"

namespace tdp {
namespace exec {

namespace {

constexpr uint8_t kUndefinedColumn = 255;

void AppendRaw(std::string& buf, const void* data, size_t size) {
  buf.append(reinterpret_cast<const char*>(data), size);
}

void AppendInt64(std::string& buf, int64_t v) { AppendRaw(buf, &v, sizeof(v)); }

void AppendTensor(std::string& buf, const Tensor& t) {
  const Tensor c = t.Contiguous();
  const uint8_t dtype = static_cast<uint8_t>(c.dtype());
  const uint8_t device = static_cast<uint8_t>(c.device());
  AppendRaw(buf, &dtype, 1);
  AppendRaw(buf, &device, 1);
  AppendInt64(buf, c.dim());
  for (int64_t d = 0; d < c.dim(); ++d) AppendInt64(buf, c.size(d));
  const int64_t bytes = c.numel() * DTypeSize(c.dtype());
  AppendRaw(buf, TensorRawBytes(c), static_cast<size_t>(bytes));
}

void AppendColumn(std::string& buf, const Column& c) {
  if (!c.defined()) {
    const uint8_t enc = kUndefinedColumn;
    AppendRaw(buf, &enc, 1);
    return;
  }
  const uint8_t enc = static_cast<uint8_t>(c.encoding());
  AppendRaw(buf, &enc, 1);
  AppendTensor(buf, c.data());
  switch (c.encoding()) {
    case Encoding::kPlain:
      break;
    case Encoding::kDictionary: {
      AppendInt64(buf, static_cast<int64_t>(c.dictionary().size()));
      for (const std::string& s : c.dictionary()) {
        AppendInt64(buf, static_cast<int64_t>(s.size()));
        AppendRaw(buf, s.data(), s.size());
      }
      break;
    }
    case Encoding::kProbability: {
      AppendInt64(buf, static_cast<int64_t>(c.domain().size()));
      AppendRaw(buf, c.domain().data(), c.domain().size() * sizeof(double));
      break;
    }
  }
}

struct BufReader {
  const char* p;
  const char* end;

  bool Read(void* out, size_t n) {
    if (static_cast<size_t>(end - p) < n) return false;
    std::memcpy(out, p, n);
    p += n;
    return true;
  }
  bool ReadInt64(int64_t* v) { return Read(v, sizeof(*v)); }
};

StatusOr<Tensor> ParseTensor(BufReader& r) {
  uint8_t dtype_byte = 0, device_byte = 0;
  int64_t rank = 0;
  if (!r.Read(&dtype_byte, 1) || !r.Read(&device_byte, 1) ||
      !r.ReadInt64(&rank) || rank < 0 || rank > 16) {
    return Status::ExecutionError("spill: corrupt tensor header");
  }
  std::vector<int64_t> shape(static_cast<size_t>(rank));
  for (int64_t d = 0; d < rank; ++d) {
    if (!r.ReadInt64(&shape[static_cast<size_t>(d)]) ||
        shape[static_cast<size_t>(d)] < 0) {
      return Status::ExecutionError("spill: corrupt tensor shape");
    }
  }
  const DType dtype = static_cast<DType>(dtype_byte);
  const Device device = static_cast<Device>(device_byte);
  Tensor t = Tensor::Empty(shape, dtype, device);
  const int64_t bytes = t.numel() * DTypeSize(dtype);
  if (!r.Read(TensorRawBytesMutable(t), static_cast<size_t>(bytes))) {
    return Status::ExecutionError("spill: truncated tensor payload");
  }
  return t;
}

StatusOr<Column> ParseColumn(BufReader& r) {
  uint8_t enc = 0;
  if (!r.Read(&enc, 1)) {
    return Status::ExecutionError("spill: corrupt column header");
  }
  if (enc == kUndefinedColumn) return Column();
  TDP_ASSIGN_OR_RETURN(Tensor data, ParseTensor(r));
  switch (static_cast<Encoding>(enc)) {
    case Encoding::kPlain:
      return Column::Plain(std::move(data));
    case Encoding::kDictionary: {
      int64_t count = 0;
      if (!r.ReadInt64(&count) || count < 0) {
        return Status::ExecutionError("spill: corrupt dictionary");
      }
      std::vector<std::string> dict(static_cast<size_t>(count));
      for (int64_t i = 0; i < count; ++i) {
        int64_t len = 0;
        if (!r.ReadInt64(&len) || len < 0) {
          return Status::ExecutionError("spill: corrupt dictionary entry");
        }
        std::string s(static_cast<size_t>(len), '\0');
        if (!r.Read(s.data(), s.size())) {
          return Status::ExecutionError("spill: truncated dictionary entry");
        }
        dict[static_cast<size_t>(i)] = std::move(s);
      }
      return Column::Dictionary(std::move(data), std::move(dict));
    }
    case Encoding::kProbability: {
      int64_t count = 0;
      if (!r.ReadInt64(&count) || count < 0) {
        return Status::ExecutionError("spill: corrupt PE domain");
      }
      std::vector<double> domain(static_cast<size_t>(count));
      if (!r.Read(domain.data(), domain.size() * sizeof(double))) {
        return Status::ExecutionError("spill: truncated PE domain");
      }
      return Column::Probability(std::move(data), std::move(domain));
    }
  }
  return Status::ExecutionError("spill: unknown column encoding");
}

}  // namespace

SpillWriter::SpillWriter(const std::string& path)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc) {}

Status SpillWriter::CheckStream() {
  if (!out_.good()) {
    return Status::ExecutionError("spill: write failed on " + path_ +
                                  " (disk full?)");
  }
  return Status::OK();
}

Status SpillWriter::WriteBytes(const void* data, size_t size) {
  out_.write(reinterpret_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  bytes_written_ += static_cast<int64_t>(size);
  return CheckStream();
}

Status SpillWriter::WriteInt64(int64_t v) { return WriteBytes(&v, sizeof(v)); }

Status SpillWriter::WriteInt64Span(const int64_t* data, size_t count) {
  return WriteBytes(data, count * sizeof(int64_t));
}

Status SpillWriter::WriteTensor(const Tensor& t) {
  std::string buf;
  AppendTensor(buf, t);
  TDP_RETURN_NOT_OK(WriteInt64(static_cast<int64_t>(buf.size())));
  return WriteBytes(buf.data(), buf.size());
}

Status SpillWriter::WriteColumn(const Column& c) {
  std::string buf;
  AppendColumn(buf, c);
  TDP_RETURN_NOT_OK(WriteInt64(static_cast<int64_t>(buf.size())));
  return WriteBytes(buf.data(), buf.size());
}

Status SpillWriter::Close() {
  out_.flush();
  TDP_RETURN_NOT_OK(CheckStream());
  out_.close();
  return Status::OK();
}

SpillReader::SpillReader(const std::string& path)
    : path_(path), in_(path, std::ios::binary) {}

StatusOr<int64_t> SpillReader::ReadInt64() {
  int64_t v = 0;
  TDP_RETURN_NOT_OK(ReadBytes(&v, sizeof(v)));
  return v;
}

Status SpillReader::ReadBytes(void* data, size_t size) {
  in_.read(reinterpret_cast<char*>(data), static_cast<std::streamsize>(size));
  if (!in_.good()) {
    return Status::ExecutionError("spill: read failed on " + path_);
  }
  return Status::OK();
}

Status SpillReader::ReadInt64Span(int64_t* data, size_t count) {
  return ReadBytes(data, count * sizeof(int64_t));
}

StatusOr<Tensor> SpillReader::ReadTensor() {
  TDP_ASSIGN_OR_RETURN(int64_t len, ReadInt64());
  if (len < 0) return Status::ExecutionError("spill: corrupt tensor length");
  std::string buf(static_cast<size_t>(len), '\0');
  TDP_RETURN_NOT_OK(ReadBytes(buf.data(), buf.size()));
  BufReader r{buf.data(), buf.data() + buf.size()};
  return ParseTensor(r);
}

StatusOr<Column> SpillReader::ReadColumn() {
  TDP_ASSIGN_OR_RETURN(int64_t len, ReadInt64());
  if (len < 0) return Status::ExecutionError("spill: corrupt column length");
  std::string buf(static_cast<size_t>(len), '\0');
  TDP_RETURN_NOT_OK(ReadBytes(buf.data(), buf.size()));
  BufReader r{buf.data(), buf.data() + buf.size()};
  return ParseColumn(r);
}

Status SpillReader::SkipColumn() {
  TDP_ASSIGN_OR_RETURN(int64_t len, ReadInt64());
  if (len < 0) return Status::ExecutionError("spill: corrupt column length");
  return Skip(len);
}

Status SpillReader::Skip(int64_t bytes) {
  in_.seekg(bytes, std::ios::cur);
  if (!in_.good()) {
    return Status::ExecutionError("spill: seek failed on " + path_);
  }
  return Status::OK();
}

}  // namespace exec
}  // namespace tdp
