#ifndef TDP_EXEC_VECTOR_SEARCH_H_
#define TDP_EXEC_VECTOR_SEARCH_H_

#include <cstdint>
#include <string_view>

namespace tdp {
namespace exec {

/// Execution strategy for an index-accelerated top-k similarity search
/// under a predicate (`ORDER BY sim DESC LIMIT k ... WHERE ...`). The
/// optimizer's cost rule picks one at compile time from selectivity
/// estimates (see `plan::Optimize` rule 5); `VectorSearchOptions::strategy`
/// overrides the choice per run. All three strategies produce results
/// bit-identical to the exact Filter+Sort+Limit plan at full probe count;
/// under a partial probe budget the result row count never shrinks below
/// min(k, surviving rows) — only recall degrades.
enum class VectorSearchStrategy {
  /// Defer to the plan's compile-time choice (the default).
  kAuto = 0,
  /// Evaluate the predicate over the live view first, push the surviving
  /// rows into the index probe as a selection bitmap: pruned rows are
  /// never scored and fully-pruned cells don't consume probe budget. Best
  /// when the predicate is selective (few survivors).
  kPreFilter,
  /// Probe the index first, apply the predicate to the candidates, and
  /// adaptively widen the probe budget until k rows survive. Best when
  /// the predicate keeps most rows (candidates rarely die).
  kPostFilter,
  /// Exact Filter+Sort+Limit over the relation, bypassing the index.
  /// Chosen when the predicate is estimated too selective for the index
  /// to win (fewer expected survivors than ~2k).
  kBrute,
};

inline std::string_view VectorSearchStrategyName(
    VectorSearchStrategy strategy) {
  switch (strategy) {
    case VectorSearchStrategy::kAuto:
      return "auto";
    case VectorSearchStrategy::kPreFilter:
      return "pre_filter";
    case VectorSearchStrategy::kPostFilter:
      return "post_filter";
    case VectorSearchStrategy::kBrute:
      return "brute";
  }
  return "?";
}

/// Per-run knobs for IndexTopK / FilteredIndexTopK operators, grouped so
/// the whole vector-search surface travels as one value
/// (`exec::RunOptions::vector_search`). Like the executor/morsel knobs
/// this is per-run state, NOT part of the plan-cache key: clients
/// sweeping probe counts or forcing strategies share one cached plan.
struct VectorSearchOptions {
  /// Probe budget: how many IVF cells each index search visits. 0 (the
  /// default) probes every cell — results are then bit-identical to the
  /// exact plan; smaller values trade recall for a proportionally smaller
  /// scan. Values above the index's list count clamp; negative values
  /// fail the run with InvalidArgument. The budget is a FLOOR: cells are
  /// probed past it until k candidate rows (k PREDICATE SURVIVORS for a
  /// filtered search) exist, so a low budget degrades recall but never
  /// the result's row count. `cosine_sim` honors a partial budget only
  /// when the indexed rows are L2-normalized; otherwise every cell is
  /// probed — exact results, no scan saving.
  int64_t num_probes = 0;

  /// Forces a filtered-search strategy, overriding the optimizer's
  /// cost-rule choice. `kAuto` (the default) keeps the compiled choice.
  VectorSearchStrategy strategy = VectorSearchStrategy::kAuto;

  /// Post-filter widening: how many times the probe budget doubles when
  /// fewer than k candidates survive the predicate before giving up on
  /// doubling and probing every cell at once. Purely a pacing knob — the
  /// survivor floor holds at ANY value (the final round always probes
  /// everything); 0 jumps straight to a full probe on the first
  /// shortfall. Negative values fail the run with InvalidArgument.
  int64_t max_widening_rounds = 8;
};

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_VECTOR_SEARCH_H_
