#ifndef TDP_EXEC_VALUE_H_
#define TDP_EXEC_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "src/common/logging.h"
#include "src/tensor/tensor.h"

namespace tdp {
namespace exec {

/// A constant scalar appearing in a query (literal or bound parameter).
/// Besides the SQL literal types, a value may carry a whole `Tensor` — the
/// binding for a `?` placeholder inside `dot(col, ?)` / `cosine_sim(col,
/// ?)`, where the "constant" of the statement is a query embedding vector.
class ScalarValue {
 public:
  ScalarValue() : value_(std::monostate{}) {}
  static ScalarValue Int(int64_t v) { return ScalarValue(v); }
  static ScalarValue Float(double v) { return ScalarValue(v); }
  static ScalarValue String(std::string v) {
    return ScalarValue(std::move(v));
  }
  static ScalarValue Bool(bool v) { return ScalarValue(v); }
  static ScalarValue FromTensor(Tensor v) { return ScalarValue(std::move(v)); }
  static ScalarValue Null() { return ScalarValue(); }

  bool is_null() const {
    return std::holds_alternative<std::monostate>(value_);
  }
  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_float() const { return std::holds_alternative<double>(value_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_tensor() const { return std::holds_alternative<Tensor>(value_); }
  bool is_numeric() const { return is_int() || is_float(); }

  int64_t int_value() const { return std::get<int64_t>(value_); }
  double float_value() const { return std::get<double>(value_); }
  const std::string& string_value() const {
    return std::get<std::string>(value_);
  }
  bool bool_value() const { return std::get<bool>(value_); }
  const Tensor& tensor_value() const { return std::get<Tensor>(value_); }

  /// Numeric value as double (int or float).
  double AsDouble() const {
    if (is_int()) return static_cast<double>(int_value());
    TDP_CHECK(is_float()) << "not numeric";
    return float_value();
  }

  std::string ToString() const;

 private:
  template <typename T>
  explicit ScalarValue(T v) : value_(std::move(v)) {}

  std::variant<std::monostate, int64_t, double, std::string, bool, Tensor>
      value_;
};

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_VALUE_H_
