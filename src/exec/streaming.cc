// Morsel-driven streaming executor: runs the pipelines built by
// `plan::BuildPipelines` in dependency order. Within one pipeline the
// source relation is cut into bounded row-range morsels (zero-copy views,
// `ExecOptions::morsel_rows`, default ~64K rows) that flow through the
// order-preserving operators — Filter, Project, hash-join probe, and the
// micro-batch ModelEval stage wrapping batchable model calls — without
// ever materializing an intermediate relation; morsels run in parallel on
// the process-wide ThreadPool and their outputs are assembled in morsel
// order, so results are identical for every thread count.
//
// The executor is push-based at the top: breaker pipelines materialize,
// then the final (result) pipeline's chunks are handed to a ChunkSink in
// morsel order (`ExecuteStreamingToSink`). `ResultCursor` feeds that sink
// into a bounded queue for incremental consumption; `Run()`/`ExecutePlan`
// drain it synchronously and concatenate — one code path, two delivery
// modes, bit-identical results. Workers poll `ExecContext::cancel` at
// morsel boundaries so closed cursors / cancelled runs stop producing.
//
// Determinism contract (asserted by tests/streaming_parity_test.cc): the
// assembled stream equals the legacy whole-relation chunk row for row,
// because every streaming operator is order-preserving and per-row local
// (batchable model calls are row-local by contract, so ModelEval's
// micro-batches reassemble bit-identically), and every breaker (aggregate,
// sort, distinct, join build, non-batchable TVF/UDF) consumes the
// assembled stream with the same kernel the legacy path uses. Morsel size
// therefore never changes results — only scheduling.

#include "src/exec/streaming.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/exec/fused_filter_project.h"
#include "src/exec/operator_kernels.h"
#include "src/exec/primitive_cache.h"
#include "src/plan/pipeline.h"

namespace tdp {
namespace exec {
namespace {

using plan::LogicalNode;
using plan::NodeKind;
using plan::Pipeline;
using plan::PipelinePlan;
using plan::SinkKind;

/// Materialized state shared between pipelines of one run.
struct PipelineOutputs {
  /// Breaker node -> its materialized output chunk.
  std::unordered_map<const LogicalNode*, Chunk> chunks;
  /// Join node -> its build-side hash table (built by the kJoinBuild
  /// pipeline, probed by the streaming side). Shared pointers so a
  /// PrimitiveCache-reused build (keyed by table identity) plugs in
  /// without copying the table.
  std::unordered_map<const LogicalNode*, std::shared_ptr<const JoinHashTable>>
      joins;
};

/// Applies the pipeline's streaming operators to one morsel.
///
/// `stop_when_empty` (the streaming mode) drops a morsel as soon as it has
/// no rows: the assembled stream is the concatenation of the survivors, so
/// a morsel with nothing to contribute must not run further operators —
/// a Project of a constant over an empty morsel would fabricate a row that
/// the whole-relation path (which sees one nonempty relation) never sees.
/// The empty-stream fallback runs with `stop_when_empty=false`, applying
/// every operator to the empty relation exactly like the legacy path.
StatusOr<Chunk> ApplyOps(const Pipeline& p, Chunk morsel,
                         const PipelineOutputs& outs, const ExecContext& ctx,
                         bool stop_when_empty) {
  for (size_t i = 0; i < p.ops.size(); ++i) {
    const LogicalNode* op = p.ops[i];
    if (stop_when_empty && morsel.num_rows() == 0) return morsel;
    switch (op->kind) {
      case NodeKind::kFilter: {
        const auto& filter = static_cast<const plan::FilterNode&>(*op);
        // Fused filter(+project) fast path: one pass over the morsel. The
        // program is compiled once per plan node (PrimitiveCache, with
        // negative caching); a per-morsel applicability miss falls through
        // to the unfused operators, which are bit-identical.
        if (ctx.primitive_cache != nullptr && FusedEvalEnabled()) {
          const plan::ProjectNode* next_project =
              i + 1 < p.ops.size() && p.ops[i + 1]->kind == NodeKind::kProject
                  ? static_cast<const plan::ProjectNode*>(p.ops[i + 1])
                  : nullptr;
          FusedProgramPtr program = ctx.primitive_cache->GetFused(
              op, [&filter, next_project] {
                return FusedFilterProject::Compile(filter, next_project);
              });
          if (program != nullptr) {
            std::optional<Chunk> fused = program->Execute(morsel, ctx);
            if (fused.has_value()) {
              morsel = std::move(*fused);
              if (program->has_project()) ++i;  // consumed the Project too
              break;
            }
          }
        }
        TDP_ASSIGN_OR_RETURN(morsel, ExecuteFilter(filter, morsel, ctx));
        break;
      }
      case NodeKind::kProject: {
        TDP_ASSIGN_OR_RETURN(
            morsel, ExecuteProject(static_cast<const plan::ProjectNode&>(*op),
                                   morsel, ctx));
        break;
      }
      case NodeKind::kJoin: {
        TDP_ASSIGN_OR_RETURN(
            morsel, ProbeJoin(static_cast<const plan::JoinNode&>(*op),
                              *outs.joins.at(op), morsel, ctx));
        break;
      }
      case NodeKind::kModelEval: {
        TDP_ASSIGN_OR_RETURN(
            morsel,
            ExecuteModelEval(static_cast<const plan::ModelEvalNode&>(*op),
                             morsel, ctx));
        break;
      }
      default:
        return Status::Internal("non-streaming operator in pipeline: " +
                                op->Describe());
    }
  }
  return morsel;
}

/// Resolves the pipeline's source relation: a table scan, the materialized
/// output of an upstream breaker pipeline, or a FROM-less Project.
StatusOr<Chunk> SourceChunk(const Pipeline& p, const PipelineOutputs& outs,
                            const ExecContext& ctx) {
  TDP_CHECK(p.source != nullptr);
  if (p.source_pipeline >= 0) return outs.chunks.at(p.source);
  if (p.source->kind == NodeKind::kScan) {
    return ExecuteScan(static_cast<const plan::ScanNode&>(*p.source), ctx);
  }
  TDP_CHECK(p.source->kind == NodeKind::kProject &&
            p.source->children.empty());
  return ExecuteProject(static_cast<const plan::ProjectNode&>(*p.source),
                        Chunk{}, ctx);
}

/// The legacy-identical result of streaming an empty relation: every
/// operator runs over zero rows (a constant Project still emits its single
/// row, exactly as the whole-relation path does on an empty input).
StatusOr<Chunk> EmptyStreamResult(const Pipeline& p, const Chunk& src,
                                  const PipelineOutputs& outs,
                                  const ExecContext& ctx) {
  return ApplyOps(p, src.SliceRows(0, 0), outs, ctx,
                  /*stop_when_empty=*/false);
}

/// Morsel partition of a pipeline source — the single definition both the
/// materializing path (`RunPipeline`) and the sink path
/// (`StreamResultPipeline`) slice by, so the two can never disagree on
/// morsel boundaries (the parity suite holds them bit-identical).
struct MorselPartition {
  int64_t rows = 0;
  int64_t morsel_rows = 1;
  int64_t num_morsels = 0;  // 0 for an empty source
};

MorselPartition PartitionMorsels(const Chunk& src, const ExecContext& ctx) {
  MorselPartition part;
  part.rows = src.num_rows();
  part.morsel_rows = std::max<int64_t>(
      1, ctx.exec.morsel_rows > 0 ? ctx.exec.morsel_rows
                                  : DefaultMorselRows());
  part.num_morsels =
      part.rows == 0
          ? 0
          : (part.rows + part.morsel_rows - 1) / part.morsel_rows;
  return part;
}

/// One past the last row index Limit can emit: offset + limit, saturated
/// (`LIMIT 9e18 OFFSET 9e18` must not overflow).
int64_t LimitEnd(const plan::LimitNode& node) {
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  if (node.limit < 0) return kMax;
  if (node.offset > kMax - node.limit) return kMax;
  return node.offset + node.limit;
}

/// Assembles the kLimit sink: walks survivors in morsel order and
/// concatenates only the row range [offset, offset+limit) — the prefix
/// property of Limit makes this exactly the legacy Select.
Chunk AssembleLimit(const plan::LimitNode& node, std::vector<Chunk> survivors) {
  const int64_t end = LimitEnd(node);
  std::vector<Chunk> taken;
  int64_t cum = 0;
  for (Chunk& c : survivors) {
    const int64_t n = c.num_rows();
    const int64_t lo = std::max(cum, node.offset);
    const int64_t hi = std::min(cum + n, end);
    if (hi > lo) taken.push_back(c.SliceRows(lo - cum, hi - lo));
    cum += n;
  }
  if (taken.empty()) return survivors.front().SliceRows(0, 0);
  return Chunk::Concat(taken);
}

/// Runs one pipeline: morselize the source, stream morsels through the
/// operators in parallel, assemble at the sink. Returns the chunk the
/// pipeline materializes (for kJoinBuild, the assembled build relation —
/// the caller hashes it).
StatusOr<Chunk> RunPipeline(const Pipeline& p, const PipelineOutputs& outs,
                            const ExecContext& ctx) {
  TDP_RETURN_NOT_OK(CheckCancel(ctx));
  // Childless breakers (CREATE TABLE, INSERT ... VALUES) consume no
  // stream: the breaker kernel runs over an empty input.
  if (p.source == nullptr) return Chunk{};
  TDP_ASSIGN_OR_RETURN(Chunk src, SourceChunk(p, outs, ctx));

  const bool aggregate_sink = p.sink_kind == SinkKind::kAggregate;
  const plan::AggregateNode* agg_node =
      aggregate_sink ? static_cast<const plan::AggregateNode*>(p.sink)
                     : nullptr;

  // Operator-free pipelines are pure pass-throughs: skip morselization.
  if (p.ops.empty() && !aggregate_sink) {
    if (p.sink_kind == SinkKind::kLimit) {
      return ExecuteLimit(static_cast<const plan::LimitNode&>(*p.sink), src);
    }
    return src;
  }

  // Streaming Limit early-exit: when every operator preserves row counts
  // (Projects only), rows past offset+limit can never be emitted — slice
  // the source prefix instead of processing morsels that will be thrown
  // away at assembly.
  if (p.sink_kind == SinkKind::kLimit) {
    const auto& ln = static_cast<const plan::LimitNode&>(*p.sink);
    bool row_preserving = true;
    for (const LogicalNode* op : p.ops) {
      if (op->kind != NodeKind::kProject) row_preserving = false;
    }
    if (row_preserving && ln.limit >= 0) {
      src = src.SliceRows(0, std::min(src.num_rows(), LimitEnd(ln)));
    }
  }

  const auto [rows, morsel_rows, num_morsels] = PartitionMorsels(src, ctx);

  // Single-morsel (and empty-source) fast path: the morsel IS the whole
  // relation, so the operator chain runs on it directly — no slicing, no
  // per-morsel bookkeeping, no empty-morsel drop rule (that rule exists
  // only to keep partial morsels from fabricating constant-projection
  // rows; with one batch the legacy semantics apply verbatim). This keeps
  // point-query serving overhead at the level of the materializing path.
  if (num_morsels <= 1) {
    TDP_ASSIGN_OR_RETURN(Chunk out, ApplyOps(p, std::move(src), outs, ctx,
                                             /*stop_when_empty=*/false));
    if (aggregate_sink) {
      TDP_ASSIGN_OR_RETURN(AggInputs inputs,
                           EvaluateAggInputs(*agg_node, out, ctx));
      return FinalizeAggregate(*agg_node, inputs, ctx);
    }
    if (p.sink_kind == SinkKind::kLimit) {
      return ExecuteLimit(static_cast<const plan::LimitNode&>(*p.sink), out);
    }
    return out;
  }

  // Morsels run in parallel on the pool (static partition; nested
  // ParallelFor calls inside the kernels run inline on the worker) and
  // land in slots indexed by morsel number, so assembly order — and with
  // it the result — is independent of the thread count.
  std::vector<Chunk> outputs(static_cast<size_t>(num_morsels));
  std::vector<AggInputs> agg_parts(
      aggregate_sink ? static_cast<size_t>(num_morsels) : 0);
  std::vector<Status> statuses(static_cast<size_t>(num_morsels));
  ParallelFor(0, num_morsels, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const size_t ui = static_cast<size_t>(i);
      // Cooperative cancellation at the morsel boundary: a cancelled run
      // skips every remaining morsel instead of racing to materialize.
      Status cancel = CheckCancel(ctx);
      if (!cancel.ok()) {
        statuses[ui] = std::move(cancel);
        continue;
      }
      const int64_t lo = i * morsel_rows;
      const int64_t hi = std::min(rows, lo + morsel_rows);
      StatusOr<Chunk> out = ApplyOps(p, src.SliceRows(lo, hi - lo), outs,
                                     ctx, /*stop_when_empty=*/true);
      if (!out.ok()) {
        statuses[ui] = out.status();
        continue;
      }
      if (aggregate_sink) {
        if (out->num_rows() == 0) continue;  // dropped morsel
        StatusOr<AggInputs> inputs = EvaluateAggInputs(*agg_node, *out, ctx);
        if (!inputs.ok()) {
          statuses[ui] = inputs.status();
          continue;
        }
        agg_parts[ui] = std::move(inputs).value();
      } else {
        outputs[ui] = std::move(out).value();
      }
    }
  });
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }

  if (aggregate_sink) {
    std::vector<const AggInputs*> parts;
    parts.reserve(agg_parts.size());
    for (const AggInputs& part : agg_parts) {
      if (part.rows > 0) parts.push_back(&part);
    }
    if (parts.empty()) {
      TDP_ASSIGN_OR_RETURN(Chunk empty, EmptyStreamResult(p, src, outs, ctx));
      TDP_ASSIGN_OR_RETURN(AggInputs inputs,
                           EvaluateAggInputs(*agg_node, empty, ctx));
      return FinalizeAggregate(*agg_node, inputs, ctx);
    }
    const AggInputs merged = MergeAggInputs(parts);
    return FinalizeAggregate(*agg_node, merged, ctx);
  }

  std::vector<Chunk> survivors;
  survivors.reserve(outputs.size());
  for (Chunk& out : outputs) {
    if (out.num_rows() > 0) survivors.push_back(std::move(out));
  }

  if (p.sink_kind == SinkKind::kLimit) {
    const auto& ln = static_cast<const plan::LimitNode&>(*p.sink);
    if (survivors.empty()) {
      TDP_ASSIGN_OR_RETURN(Chunk empty, EmptyStreamResult(p, src, outs, ctx));
      return ExecuteLimit(ln, empty);
    }
    return AssembleLimit(ln, std::move(survivors));
  }

  if (survivors.empty()) return EmptyStreamResult(p, src, outs, ctx);
  return Chunk::Concat(survivors);
}

/// Applies the whole-relation breaker kernel a kMaterialize pipeline
/// feeds: the assembled stream becomes the breaker node's output.
StatusOr<Chunk> ApplyBreaker(const LogicalNode& sink, Chunk input,
                             const PipelineOutputs& outs,
                             const ExecContext& ctx) {
  switch (sink.kind) {
    case NodeKind::kSort:
      return ExecuteSort(static_cast<const plan::SortNode&>(sink), input,
                         ctx);
    case NodeKind::kDistinct:
      return ExecuteDistinct(input);
    case NodeKind::kTvfScan:
      return ExecuteTvfScan(static_cast<const plan::TvfScanNode&>(sink),
                            std::move(input), ctx);
    // Non-batchable-UDF-bearing operators: the UDF body is a whole-batch
    // tensor program, so it sees the assembled relation, never a morsel.
    // That holds for filter predicates, projections, aggregate group keys
    // / arguments, and join residuals alike. (Batchable model calls never
    // reach here — they stream through a ModelEval stage.)
    case NodeKind::kFilter:
      return ExecuteFilter(static_cast<const plan::FilterNode&>(sink), input,
                           ctx);
    case NodeKind::kProject:
      return ExecuteProject(static_cast<const plan::ProjectNode&>(sink),
                            input, ctx);
    case NodeKind::kAggregate: {
      const auto& agg = static_cast<const plan::AggregateNode&>(sink);
      TDP_ASSIGN_OR_RETURN(AggInputs inputs,
                           EvaluateAggInputs(agg, input, ctx));
      return FinalizeAggregate(agg, inputs, ctx);
    }
    case NodeKind::kJoin:
      // UDF-bearing residual: probe the whole assembled left relation at
      // once, exactly like the legacy path.
      return ProbeJoin(static_cast<const plan::JoinNode&>(sink),
                       *outs.joins.at(&sink), input, ctx);
    case NodeKind::kIndexTopK:
      // Candidate ids address rows of the materialized scan; the ordered
      // k-row output then streams onward in morsel order like any other
      // breaker product, so cursor drains and streaming parity hold by
      // construction.
      return ExecuteIndexTopK(static_cast<const plan::IndexTopKNode&>(sink),
                              input, ctx);
    // DML breakers: the assembled input is the whole-relation source (the
    // full-table scan for UPDATE/DELETE, the SELECT child for INSERT ...
    // SELECT, empty for the childless forms), so the write delta — like
    // every breaker product — is independent of morsel size and thread
    // count; the kernels themselves match the legacy path exactly.
    case NodeKind::kCreateTable:
      return ExecuteCreateTable(
          static_cast<const plan::CreateTableNode&>(sink), ctx);
    case NodeKind::kInsert:
      return ExecuteInsert(static_cast<const plan::InsertNode&>(sink), input,
                           ctx);
    case NodeKind::kUpdate:
      return ExecuteUpdate(static_cast<const plan::UpdateNode&>(sink), input,
                           ctx);
    case NodeKind::kDelete:
      return ExecuteDelete(static_cast<const plan::DeleteNode&>(sink), input,
                           ctx);
    default:
      return Status::Internal("unexpected breaker kind: " + sink.Describe());
  }
}

/// Streams the result pipeline into `sink`, chunk by chunk in morsel
/// order, instead of materializing it: morsels are processed in waves of
/// pool-width parallelism and each wave's surviving outputs are sunk as
/// soon as the wave completes, so the first chunk reaches the consumer
/// after ~one morsel's work rather than after the whole relation
/// (time-to-first-chunk << full-drain). The concatenation of the sunk
/// chunks is exactly what `RunPipeline` would have assembled — waves only
/// add barriers, never reorder — and a sink refusal (cursor closed) or a
/// cancelled token stops production at the next morsel boundary.
Status StreamResultPipeline(const Pipeline& p, const PipelineOutputs& outs,
                            const ExecContext& ctx, const ChunkSink& sink) {
  TDP_RETURN_NOT_OK(CheckCancel(ctx));
  TDP_ASSIGN_OR_RETURN(Chunk src, SourceChunk(p, outs, ctx));

  const auto fault = [&ctx](int64_t morsel_index) -> Status {
    if (ctx.morsel_fault != nullptr && *ctx.morsel_fault) {
      return (*ctx.morsel_fault)(morsel_index);
    }
    return Status::OK();
  };

  // Operator-free result pipelines (pure pass-throughs, e.g. the output
  // of a Sort/Limit breaker) yield their single assembled chunk.
  if (p.ops.empty()) {
    TDP_RETURN_NOT_OK(fault(0));
    return sink(std::move(src));
  }

  const auto [rows, morsel_rows, num_morsels] = PartitionMorsels(src, ctx);

  // Single-morsel (and empty-source) fast path, identical to RunPipeline's.
  if (num_morsels <= 1) {
    TDP_RETURN_NOT_OK(fault(0));
    TDP_ASSIGN_OR_RETURN(Chunk out, ApplyOps(p, std::move(src), outs, ctx,
                                             /*stop_when_empty=*/false));
    return sink(std::move(out));
  }

  // Wave width = pool width: every worker gets one morsel per wave, so a
  // wave costs ~one morsel of wall clock and the sink sees the first
  // chunk that early, while total parallelism matches the drain-all path.
  const int64_t wave =
      std::max<int64_t>(1, ThreadPool::Global().num_threads());
  std::vector<Chunk> outputs;
  std::vector<Status> statuses;
  bool sunk_any = false;
  for (int64_t wave_begin = 0; wave_begin < num_morsels;
       wave_begin += wave) {
    const int64_t wave_end = std::min(num_morsels, wave_begin + wave);
    const size_t wave_size = static_cast<size_t>(wave_end - wave_begin);
    TDP_RETURN_NOT_OK(CheckCancel(ctx));
    outputs.assign(wave_size, Chunk{});
    statuses.assign(wave_size, Status::OK());
    ParallelFor(wave_begin, wave_end, 1, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        const size_t ui = static_cast<size_t>(i - wave_begin);
        Status st = CheckCancel(ctx);
        if (st.ok()) st = fault(i);
        if (!st.ok()) {
          statuses[ui] = std::move(st);
          continue;
        }
        const int64_t lo = i * morsel_rows;
        const int64_t hi = std::min(rows, lo + morsel_rows);
        StatusOr<Chunk> out = ApplyOps(p, src.SliceRows(lo, hi - lo), outs,
                                       ctx, /*stop_when_empty=*/true);
        if (!out.ok()) {
          statuses[ui] = out.status();
          continue;
        }
        outputs[ui] = std::move(out).value();
      }
    });
    for (const Status& st : statuses) {
      if (!st.ok()) return st;
    }
    for (Chunk& out : outputs) {
      if (out.num_rows() == 0) continue;  // dropped morsel
      TDP_RETURN_NOT_OK(sink(std::move(out)));
      sunk_any = true;
    }
  }

  if (!sunk_any) {
    // Every morsel filtered away: reproduce the legacy empty-relation
    // result (a constant Project still emits its single row).
    TDP_ASSIGN_OR_RETURN(Chunk empty, EmptyStreamResult(p, src, outs, ctx));
    return sink(std::move(empty));
  }
  return Status::OK();
}

/// True when this kJoinBuild pipeline's product is a pure function of the
/// scanned table: the source is a direct table scan and every operator is
/// a Filter/Project over cacheable (parameter/UDF-free) expressions. Such
/// a build can be keyed by (join node, table identity, device) in the
/// plan's PrimitiveCache and reused across runs until DML swaps the table.
bool CacheableJoinBuildPipeline(const Pipeline& p) {
  if (p.source == nullptr || p.source_pipeline >= 0 ||
      p.source->kind != NodeKind::kScan) {
    return false;
  }
  for (const LogicalNode* op : p.ops) {
    if (op->kind == NodeKind::kFilter) {
      const auto& f = static_cast<const plan::FilterNode&>(*op);
      if (f.predicate == nullptr || !CacheableExpr(*f.predicate)) {
        return false;
      }
    } else if (op->kind == NodeKind::kProject) {
      const auto& pr = static_cast<const plan::ProjectNode&>(*op);
      for (const BoundExprPtr& e : pr.exprs) {
        if (!CacheableExpr(*e)) return false;
      }
    } else {
      return false;  // ModelEval, probe stages, ... are not cacheable
    }
  }
  return true;
}

/// Produces the build-side hash table for a kJoinBuild pipeline, going
/// through the plan's PrimitiveCache when the build is cacheable: a hit
/// skips running the pipeline (and re-hashing) entirely; a miss builds and
/// installs the result for the next run. Spill-eligible runs (a memory
/// budget is set) and soft-mode runs bypass the cache.
StatusOr<std::shared_ptr<const JoinHashTable>> BuildOrReuseJoin(
    const Pipeline& p, const PipelineOutputs& outs, const ExecContext& ctx) {
  const auto& join = static_cast<const plan::JoinNode&>(*p.sink);
  std::shared_ptr<Table> table;
  if (ctx.primitive_cache != nullptr && !ctx.soft_mode &&
      ctx.memory == nullptr && CacheableJoinBuildPipeline(p)) {
    StatusOr<std::shared_ptr<Table>> resolved = ctx.catalog->GetTable(
        static_cast<const plan::ScanNode&>(*p.source).table_name);
    // Resolution failures fall through to the pipeline run, which reports
    // them with the scan's own diagnostics.
    if (resolved.ok()) {
      table = std::move(resolved).value();
      std::shared_ptr<const JoinHashTable> hit =
          ctx.primitive_cache->LookupJoin(p.sink, table, ctx.device);
      if (hit != nullptr) return hit;
    }
  }
  TDP_ASSIGN_OR_RETURN(Chunk produced, RunPipeline(p, outs, ctx));
  TDP_ASSIGN_OR_RETURN(JoinHashTable built,
                       BuildJoinHashTable(join, std::move(produced), ctx));
  auto ht = std::make_shared<const JoinHashTable>(std::move(built));
  if (table != nullptr && ht->spilled == nullptr) {
    ctx.primitive_cache->StoreJoin(p.sink, std::move(table), ctx.device, ht);
  }
  return ht;
}

Status ExecuteStreamingImpl(const PipelinePlan& pplan, const ExecContext& ctx,
                            const ChunkSink& sink) {
  PipelineOutputs outs;
  for (const Pipeline& p : pplan.pipelines) {
    if (p.sink_kind == SinkKind::kResult) {
      return StreamResultPipeline(p, outs, ctx, sink);
    }
    if (p.sink_kind == SinkKind::kJoinBuild) {
      TDP_ASSIGN_OR_RETURN(std::shared_ptr<const JoinHashTable> ht,
                           BuildOrReuseJoin(p, outs, ctx));
      outs.joins.emplace(p.sink, std::move(ht));
      continue;
    }
    TDP_ASSIGN_OR_RETURN(Chunk produced, RunPipeline(p, outs, ctx));
    switch (p.sink_kind) {
      case SinkKind::kResult:
      case SinkKind::kJoinBuild:
        break;  // handled above
      case SinkKind::kAggregate:
      case SinkKind::kLimit:
        // RunPipeline already produced the breaker's output.
        outs.chunks.emplace(p.sink, std::move(produced));
        break;
      case SinkKind::kMaterialize: {
        TDP_ASSIGN_OR_RETURN(
            Chunk result,
            ApplyBreaker(*p.sink, std::move(produced), outs, ctx));
        outs.chunks.emplace(p.sink, std::move(result));
        break;
      }
    }
  }
  return Status::Internal("pipeline plan has no result pipeline");
}

}  // namespace

Status ExecuteStreamingToSink(const PipelinePlan& pplan,
                              const ExecContext& ctx, const ChunkSink& sink) {
  return ExecuteStreamingImpl(pplan, ctx, sink);
}

StatusOr<Chunk> ExecutePlan(const plan::LogicalNode& root,
                            const PipelinePlan& pipelines,
                            const ExecContext& ctx) {
  // Soft (trainable) runs take the legacy whole-relation path: the
  // autograd graph of a soft aggregate must span the full relation, and
  // training-loop throughput is bounded by the backward pass, not by
  // operator materialization.
  if (!ctx.exec.streaming || ctx.soft_mode) return ExecuteNode(root, ctx);
  // Run() is a thin drain of the same sink-based streaming executor the
  // cursor uses: collect the result pipeline's chunks and concatenate
  // them, which is bit-identical to the pre-cursor assembly.
  std::vector<Chunk> parts;
  TDP_RETURN_NOT_OK(ExecuteStreamingToSink(
      pipelines, ctx, [&parts](Chunk chunk) {
        parts.push_back(std::move(chunk));
        return Status::OK();
      }));
  TDP_CHECK(!parts.empty()) << "streaming executor sank no chunks";
  if (parts.size() == 1) return std::move(parts[0]);
  return Chunk::Concat(parts);
}

}  // namespace exec
}  // namespace tdp
