#include "src/exec/memory_budget.h"

#include <atomic>
#include <unistd.h>

#include <filesystem>
#include <system_error>

#include "src/tensor/dtype.h"

namespace tdp {
namespace exec {

namespace {

// Process-wide leak counters (see QueryMemory::LiveSpillFiles).
std::atomic<int64_t> g_live_spill_files{0};
std::atomic<int64_t> g_total_bytes_spilled{0};

// Monotonic suffix so concurrent queries in one process never collide on a
// directory name.
std::atomic<uint64_t> g_spill_dir_seq{0};

}  // namespace

int64_t ColumnFootprintBytes(const Column& column) {
  if (!column.defined()) return 0;
  int64_t bytes = column.data().numel() * DTypeSize(column.data().dtype());
  for (const std::string& s : column.dictionary()) {
    bytes += static_cast<int64_t>(s.size()) + 8;
  }
  bytes += static_cast<int64_t>(column.domain().size()) * 8;
  return bytes;
}

int64_t ChunkFootprintBytes(const Chunk& chunk) {
  int64_t bytes = 0;
  for (const Column& c : chunk.columns) bytes += ColumnFootprintBytes(c);
  return bytes;
}

QueryMemory::QueryMemory(int64_t budget_bytes) : budget_bytes_(budget_bytes) {}

QueryMemory::~QueryMemory() { ReleaseSpillFiles(); }

StatusOr<std::string> QueryMemory::NewSpillFile(const std::string& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  if (released_) {
    return Status::Cancelled("query memory released (run finished)");
  }
  namespace fs = std::filesystem;
  std::error_code ec;
  if (spill_dir_.empty()) {
    const fs::path base = fs::temp_directory_path(ec);
    if (ec) {
      return Status::ExecutionError("spill: no temp directory: " +
                                    ec.message());
    }
    const fs::path dir =
        base / ("tdp_spill_" + std::to_string(::getpid()) + "_" +
                std::to_string(g_spill_dir_seq.fetch_add(1)));
    fs::create_directories(dir, ec);
    if (ec) {
      return Status::ExecutionError("spill: cannot create " + dir.string() +
                                    ": " + ec.message());
    }
    spill_dir_ = dir.string();
  }
  const std::string path = spill_dir_ + "/" + tag + "_" +
                           std::to_string(files_.size()) + ".spill";
  files_.push_back(path);
  files_created_.fetch_add(1, std::memory_order_relaxed);
  g_live_spill_files.fetch_add(1, std::memory_order_relaxed);
  return path;
}

void QueryMemory::ReleaseSpillFiles() {
  std::lock_guard<std::mutex> lock(mu_);
  if (released_) return;  // idempotent: don't double-count spilled bytes
  released_ = true;
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const std::string& f : files_) {
    fs::remove(f, ec);  // missing file (partial write, crashproofing) is fine
    g_live_spill_files.fetch_sub(1, std::memory_order_relaxed);
  }
  files_.clear();
  if (!spill_dir_.empty()) {
    fs::remove_all(spill_dir_, ec);
    spill_dir_.clear();
  }
  g_total_bytes_spilled.fetch_add(
      bytes_spilled_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

int64_t QueryMemory::LiveSpillFiles() {
  return g_live_spill_files.load(std::memory_order_relaxed);
}

int64_t QueryMemory::TotalBytesSpilled() {
  return g_total_bytes_spilled.load(std::memory_order_relaxed);
}

}  // namespace exec
}  // namespace tdp
