#ifndef TDP_EXEC_PRIMITIVE_CACHE_H_
#define TDP_EXEC_PRIMITIVE_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/exec/fused_filter_project.h"
#include "src/exec/operator_kernels.h"
#include "src/storage/table.h"
#include "src/tensor/tensor.h"

namespace tdp {
namespace exec {

/// Per-plan cache of reusable execution primitives, owned by the
/// CompiledQuery and shared by all of its runs. Two kinds of entries:
///
///   - Join build sides: the hash table over a deterministic build subtree
///     (a Filter/Project chain over one table scan, free of parameters and
///     UDFs). Keyed by the plan node plus the *identity* of the scanned
///     Table object and the run device. Tables are immutable and DML
///     installs a fresh Table into the catalog, so pointer identity is
///     exactly data identity: a repeated prepared-statement run over
///     unchanged data reuses the hash table, and any write to the table
///     invalidates the entry on the next run (the stored shared_ptr keeps
///     the old table alive, so a recycled allocation can never alias a new
///     table into a stale hit).
///
///   - Scan device transfers: the columns of a scanned table already moved
///     to the run device. Same keying discipline as the join slots (scan
///     node + Table identity + device). Same-device scans share column
///     handles with the table directly and never touch this cache; a
///     cross-device scan re-copied every column on every run before, which
///     dominated repeated prepared-statement runs. Sharing the cached copy
///     is exactly as safe as the same-device sharing path: columns are
///     immutable, and DML installs a fresh Table whose new identity misses.
///
///   - Fused filter+project programs (see FusedFilterProject): the
///     structural compilation of a Filter(+Project) node pair, including
///     the negative verdict ("not fusable"), so per-morsel execution never
///     re-walks the expression tree.
///
/// All methods are internally synchronized: a CompiledQuery may be run by
/// many threads concurrently (the cache is the only mutable state hanging
/// off one, and it is append/replace-only).
class PrimitiveCache {
 public:
  PrimitiveCache() = default;
  PrimitiveCache(const PrimitiveCache&) = delete;
  PrimitiveCache& operator=(const PrimitiveCache&) = delete;

  /// Cached hash table for `node` if it was built over exactly `table` on
  /// `device`; null (and a recorded miss) otherwise.
  std::shared_ptr<const JoinHashTable> LookupJoin(
      const void* node, const std::shared_ptr<const Table>& table,
      Device device);

  /// Installs the build result for `node` (replacing any stale entry).
  void StoreJoin(const void* node, std::shared_ptr<const Table> table,
                 Device device, std::shared_ptr<const JoinHashTable> ht);

  /// Cached device transfer for scan `node` if it was taken from exactly
  /// `table` onto `device`; null (and a recorded miss) otherwise.
  std::shared_ptr<const std::vector<Column>> LookupScan(
      const void* node, const std::shared_ptr<const Table>& table,
      Device device);

  /// Installs the transferred scan columns (replacing any stale entry).
  void StoreScan(const void* node, std::shared_ptr<const Table> table,
                 Device device,
                 std::shared_ptr<const std::vector<Column>> columns);

  /// The fused program for the Filter node `key`, compiling via `compile`
  /// on first use. A null compilation result is cached too (negative
  /// caching), so unfusable nodes pay the analysis exactly once.
  FusedProgramPtr GetFused(const void* key,
                           const std::function<FusedProgramPtr()>& compile);

  // Statistics (tests assert hit/miss behaviour and DML invalidation).
  int64_t join_hits() const;
  int64_t join_misses() const;
  int64_t scan_hits() const;
  int64_t scan_misses() const;
  int64_t fused_compiles() const;

 private:
  struct JoinSlot {
    std::shared_ptr<const Table> table;
    Device device = Device::kCpu;
    std::shared_ptr<const JoinHashTable> ht;
  };

  struct ScanSlot {
    std::shared_ptr<const Table> table;
    Device device = Device::kCpu;
    std::shared_ptr<const std::vector<Column>> columns;
  };

  mutable std::mutex mu_;
  std::unordered_map<const void*, JoinSlot> joins_;
  std::unordered_map<const void*, ScanSlot> scans_;
  std::unordered_map<const void*, FusedProgramPtr> fused_;
  int64_t join_hits_ = 0;
  int64_t join_misses_ = 0;
  int64_t scan_hits_ = 0;
  int64_t scan_misses_ = 0;
  int64_t fused_compiles_ = 0;
};

/// True when `expr` evaluates to the same result on every run over the
/// same input data: free of `?` parameters, UDF calls (whose modules may
/// train between runs), and vector-similarity (whose query is a bound
/// parameter). Such expressions make an operator's output a pure function
/// of the plan node and its input — the precondition for caching.
bool CacheableExpr(const BoundExpr& expr);

/// If the logical subtree rooted at `node` is a chain of Filter/Project
/// operators (with cacheable expressions) over a single table Scan,
/// returns that ScanNode; otherwise null. A join build side of this shape
/// produces an identical hash table on every run over the same Table
/// object, making it safe to key by table identity in a PrimitiveCache.
const plan::ScanNode* CacheableBuildSubtree(const plan::LogicalNode& node);

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_PRIMITIVE_CACHE_H_
