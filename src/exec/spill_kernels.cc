#include "src/exec/spill_kernels.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <utility>

#include "src/common/logging.h"
#include "src/exec/bound_expr.h"
#include "src/exec/memory_budget.h"
#include "src/exec/spill.h"
#include "src/tensor/dtype.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace exec {
namespace {

using plan::AggDef;
using plan::AggKind;
using plan::AggregateNode;
using plan::JoinNode;
using plan::SortNode;

EvalOptions EvalOpts(const ExecContext& ctx) {
  EvalOptions opts;
  opts.device = ctx.device;
  opts.params = ctx.params;
  opts.udf_dispatch = ctx.udf_dispatch;
  opts.cancel = ctx.cancel;
  return opts;
}

StatusOr<std::vector<int64_t>> TensorOrderCodes(const Tensor& values,
                                                bool* is_float) {
  if (values.dim() != 1) {
    return Status::TypeError(
        "tensor-valued columns cannot be grouping/join keys");
  }
  switch (values.dtype()) {
    case DType::kInt64:
      *is_float = false;
      return values.ToVector<int64_t>();
    case DType::kInt32:
    case DType::kUInt8:
    case DType::kBool:
      *is_float = false;
      return values.To(DType::kInt64).ToVector<int64_t>();
    case DType::kFloat32:
    case DType::kFloat64: {
      *is_float = true;
      const std::vector<double> d =
          values.To(DType::kFloat64).ToVector<double>();
      std::vector<int64_t> codes(d.size());
      for (size_t i = 0; i < d.size(); ++i) codes[i] = DoubleOrderCode(d[i]);
      return codes;
    }
  }
  return Status::Internal("unknown dtype");
}

// Rows-per-run / partition-count sizing against the budget. The spill
// paths must work at ANY positive budget (the differential suite runs
// pathological 1-byte budgets), so sizes are floored rather than failed.
int64_t ClampRows(int64_t v, int64_t lo, int64_t hi) {
  return std::max(lo, std::min(v, hi));
}

// Copies row `i` of contiguous `src` into row `pos[i]` of contiguous
// `dst` for every row of `src`; `pos` entries of -1 are skipped (rows
// beyond a fused limit). Exact byte copies — no value re-encoding.
void ScatterRows(Tensor& dst, const Tensor& src,
                 const std::vector<int64_t>& pos) {
  const int64_t src_rows = src.size(0);
  if (src_rows == 0) return;
  const int64_t row_elems = src.numel() / src_rows;
  const int64_t row_bytes = row_elems * DTypeSize(src.dtype());
  const uint8_t* sp = TensorRawBytes(src);
  uint8_t* dp = TensorRawBytesMutable(dst);
  for (int64_t i = 0; i < src_rows; ++i) {
    const int64_t p = pos[static_cast<size_t>(i)];
    if (p < 0) continue;
    std::memcpy(dp + p * row_bytes, sp + i * row_bytes,
                static_cast<size_t>(row_bytes));
  }
}

// Allocates the assembly target for `prototype`'s payload with `rows`
// rows (same dtype, same per-row shape, same device).
Tensor AllocLike(const Tensor& prototype, int64_t rows) {
  std::vector<int64_t> shape = prototype.shape();
  TDP_CHECK(!shape.empty());
  shape[0] = rows;
  return Tensor::Empty(shape, prototype.dtype(), prototype.device());
}

// Wraps an assembled payload tensor in `prototype`'s encoding (dictionary
// strings / PE domain copied from the prototype — same contents, so codes
// stay meaningful and decoded values are bit-identical).
Column WrapLike(const Column& prototype, Tensor payload) {
  switch (prototype.encoding()) {
    case Encoding::kPlain:
      return Column::Plain(std::move(payload));
    case Encoding::kDictionary:
      return Column::Dictionary(std::move(payload), prototype.dictionary());
    case Encoding::kProbability:
      return Column::Probability(std::move(payload), prototype.domain());
  }
  return Column::Plain(std::move(payload));
}

}  // namespace

StatusOr<std::vector<int64_t>> OrderPreservingCodes(const Column& column,
                                                    bool* is_float) {
  switch (column.encoding()) {
    case Encoding::kDictionary:
      *is_float = false;
      return column.data().ToVector<int64_t>();
    case Encoding::kProbability:
    case Encoding::kPlain:
      return TensorOrderCodes(column.DecodeValues(), is_float);
  }
  return Status::Internal("unknown encoding");
}

// ---- External merge sort ----------------------------------------------------

StatusOr<Chunk> ExternalSortChunk(const SortNode& node, const Chunk& input,
                                  const ExecContext& ctx) {
  QueryMemory* mem = ctx.memory;
  TDP_CHECK(mem != nullptr);
  const int64_t rows = input.num_rows();
  const size_t num_keys = node.items.size();
  TDP_CHECK(rows > 0 && num_keys > 0);

  // Sort keys are evaluated over the whole relation, exactly as the
  // in-memory kernel does (per-run evaluation could diverge for
  // non-row-local key expressions), then collapsed to order codes. The
  // code arrays are this path's resident working set — 8 bytes/row/key vs
  // the payload+permutation+copy footprint the in-memory sort holds.
  std::vector<std::vector<int64_t>> codes(num_keys);
  std::vector<uint8_t> descending(num_keys), float_key(num_keys);
  for (size_t k = 0; k < num_keys; ++k) {
    const auto& item = node.items[k];
    TDP_ASSIGN_OR_RETURN(Column key_col, EvaluateExprToColumn(
                                             *item.expr, input, EvalOpts(ctx)));
    Tensor keys = key_col.DecodeValues();
    if (keys.dim() != 1) {
      return Status::TypeError("ORDER BY key must be a scalar column");
    }
    bool is_float = false;
    TDP_ASSIGN_OR_RETURN(codes[k], TensorOrderCodes(keys, &is_float));
    descending[k] = item.descending ? 1 : 0;
    float_key[k] = is_float ? 1 : 0;
  }
  const ScopedReservation code_reservation(
      mem, static_cast<int64_t>(num_keys) * rows * 8);

  const int64_t row_bytes =
      ChunkFootprintBytes(input) / std::max<int64_t>(rows, 1) +
      static_cast<int64_t>(num_keys) * 8 + 16;
  const int64_t run_rows = ClampRows(
      mem->budget_bytes() / 3 / std::max<int64_t>(row_bytes, 1), 1024, rows);
  const int64_t num_runs = (rows + run_rows - 1) / run_rows;
  const int64_t page_rows = std::min<int64_t>(run_rows, 4096);

  // Full-tie comparator over all keys; stability supplies the original-
  // index tiebreak, reproducing the in-memory composition of stable
  // per-key sorts exactly.
  const auto row_less = [&](int64_t a, int64_t b) {
    for (size_t k = 0; k < num_keys; ++k) {
      const int c =
          CompareKeyCodes(codes[k][static_cast<size_t>(a)],
                          codes[k][static_cast<size_t>(b)],
                          descending[k] != 0, float_key[k] != 0);
      if (c != 0) return c < 0;
    }
    return false;
  };

  // Phase 1: sort + spill each row-order run. Run file layout:
  //   [run_rows][num_pages] then per page:
  //   [page_rows][sorted key codes: num_keys x page_rows]
  //   [num_cols][column][column]...
  std::vector<std::string> run_files(static_cast<size_t>(num_runs));
  for (int64_t r = 0; r < num_runs; ++r) {
    TDP_RETURN_NOT_OK(CheckCancel(ctx));
    const int64_t lo = r * run_rows;
    const int64_t n = std::min(run_rows, rows - lo);
    std::vector<int64_t> perm(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = lo + i;
    std::stable_sort(perm.begin(), perm.end(), row_less);

    Tensor perm_t = Tensor::FromVector(perm, {}, ctx.device);
    const Chunk run_chunk = input.Select(perm_t);
    const ScopedReservation run_reservation(mem,
                                            ChunkFootprintBytes(run_chunk));

    TDP_ASSIGN_OR_RETURN(std::string path, mem->NewSpillFile("sortrun"));
    run_files[static_cast<size_t>(r)] = path;
    SpillWriter w(path);
    const int64_t pages = (n + page_rows - 1) / page_rows;
    TDP_RETURN_NOT_OK(w.WriteInt64(n));
    TDP_RETURN_NOT_OK(w.WriteInt64(pages));
    std::vector<int64_t> page_codes;
    for (int64_t p = 0; p < pages; ++p) {
      const int64_t plo = p * page_rows;
      const int64_t pn = std::min(page_rows, n - plo);
      TDP_RETURN_NOT_OK(w.WriteInt64(pn));
      page_codes.resize(static_cast<size_t>(num_keys) *
                        static_cast<size_t>(pn));
      for (size_t k = 0; k < num_keys; ++k) {
        for (int64_t i = 0; i < pn; ++i) {
          page_codes[k * static_cast<size_t>(pn) + static_cast<size_t>(i)] =
              codes[k][static_cast<size_t>(perm[static_cast<size_t>(plo + i)])];
        }
      }
      TDP_RETURN_NOT_OK(w.WriteInt64Span(page_codes.data(),
                                         page_codes.size()));
      const Chunk page = run_chunk.SliceRows(plo, pn);
      TDP_RETURN_NOT_OK(
          w.WriteInt64(static_cast<int64_t>(page.columns.size())));
      for (const Column& c : page.columns) {
        TDP_RETURN_NOT_OK(w.WriteColumn(c));
      }
    }
    TDP_RETURN_NOT_OK(w.Close());
    mem->AddSpilledBytes(w.bytes_written());
  }

  // Phase 2: codes-only k-way merge. Each pop appends its run to the
  // merge sequence; ties pick the lower run (= smaller original indices,
  // since runs partition rows in order). The per-run output-position
  // lists are the only whole-relation state this phase keeps (~8
  // bytes/row, small next to the materialized output the kernel must
  // return regardless).
  struct RunCursor {
    SpillReader reader;
    int64_t rows_left = 0;
    int64_t pages_left = 0;
    int64_t page_rows = 0;   // rows in the loaded page
    int64_t page_pos = 0;    // cursor within the loaded page
    std::vector<int64_t> page_codes;  // [key][row] flattened
    explicit RunCursor(const std::string& path) : reader(path) {}
  };
  std::vector<std::unique_ptr<RunCursor>> cursors;
  cursors.reserve(static_cast<size_t>(num_runs));
  const auto load_page = [&](RunCursor& rc) -> Status {
    TDP_ASSIGN_OR_RETURN(rc.page_rows, rc.reader.ReadInt64());
    rc.page_codes.resize(static_cast<size_t>(num_keys) *
                         static_cast<size_t>(rc.page_rows));
    TDP_RETURN_NOT_OK(rc.reader.ReadInt64Span(rc.page_codes.data(),
                                              rc.page_codes.size()));
    TDP_ASSIGN_OR_RETURN(int64_t cols, rc.reader.ReadInt64());
    for (int64_t c = 0; c < cols; ++c) {
      TDP_RETURN_NOT_OK(rc.reader.SkipColumn());
    }
    rc.page_pos = 0;
    --rc.pages_left;
    return Status::OK();
  };
  for (int64_t r = 0; r < num_runs; ++r) {
    auto rc = std::make_unique<RunCursor>(run_files[static_cast<size_t>(r)]);
    TDP_ASSIGN_OR_RETURN(rc->rows_left, rc->reader.ReadInt64());
    TDP_ASSIGN_OR_RETURN(rc->pages_left, rc->reader.ReadInt64());
    if (rc->rows_left > 0) TDP_RETURN_NOT_OK(load_page(*rc));
    cursors.push_back(std::move(rc));
  }
  const auto head_code = [&](int64_t r, size_t k) {
    const RunCursor& rc = *cursors[static_cast<size_t>(r)];
    return rc.page_codes[k * static_cast<size_t>(rc.page_rows) +
                         static_cast<size_t>(rc.page_pos)];
  };
  // priority_queue comparator: true when `a` merges AFTER `b`.
  const auto merge_after = [&](int64_t a, int64_t b) {
    for (size_t k = 0; k < num_keys; ++k) {
      const int c = CompareKeyCodes(head_code(a, k), head_code(b, k),
                                    descending[k] != 0, float_key[k] != 0);
      if (c != 0) return c > 0;
    }
    return a > b;  // tie: lower run index first (earlier original rows)
  };
  std::priority_queue<int64_t, std::vector<int64_t>, decltype(merge_after)>
      heap(merge_after);
  for (int64_t r = 0; r < num_runs; ++r) {
    if (cursors[static_cast<size_t>(r)]->rows_left > 0) heap.push(r);
  }
  const int64_t out_rows =
      node.fused_limit >= 0 ? std::min(node.fused_limit, rows) : rows;
  std::vector<std::vector<int64_t>> out_pos(static_cast<size_t>(num_runs));
  int64_t emitted = 0;
  while (emitted < out_rows) {
    TDP_CHECK(!heap.empty());
    const int64_t r = heap.top();
    heap.pop();
    RunCursor& rc = *cursors[static_cast<size_t>(r)];
    out_pos[static_cast<size_t>(r)].push_back(emitted++);
    ++rc.page_pos;
    --rc.rows_left;
    if (rc.rows_left > 0) {
      if (rc.page_pos == rc.page_rows) TDP_RETURN_NOT_OK(load_page(rc));
      heap.push(r);
    }
  }

  // Phase 3: per-column assembly — one pass over each run's pages per
  // column, scattering rows into their merge positions. Peak scratch: one
  // output column + one page.
  Chunk out;
  out.names = input.names;
  std::vector<int64_t> scatter_pos;
  for (size_t j = 0; j < input.columns.size(); ++j) {
    TDP_RETURN_NOT_OK(CheckCancel(ctx));
    const Column& prototype = input.columns[j];
    Tensor payload = AllocLike(prototype.data(), out_rows);
    for (int64_t r = 0; r < num_runs; ++r) {
      const std::vector<int64_t>& positions = out_pos[static_cast<size_t>(r)];
      SpillReader reader(run_files[static_cast<size_t>(r)]);
      TDP_ASSIGN_OR_RETURN(int64_t run_total, reader.ReadInt64());
      TDP_ASSIGN_OR_RETURN(int64_t pages, reader.ReadInt64());
      (void)run_total;
      int64_t consumed = 0;
      for (int64_t p = 0; p < pages; ++p) {
        if (consumed >= static_cast<int64_t>(positions.size())) break;
        TDP_ASSIGN_OR_RETURN(int64_t pn, reader.ReadInt64());
        TDP_RETURN_NOT_OK(reader.Skip(
            static_cast<int64_t>(num_keys) * pn * 8));
        TDP_ASSIGN_OR_RETURN(int64_t cols, reader.ReadInt64());
        TDP_CHECK(static_cast<int64_t>(j) < cols);
        for (size_t c = 0; c < j; ++c) {
          TDP_RETURN_NOT_OK(reader.SkipColumn());
        }
        TDP_ASSIGN_OR_RETURN(Column page_col, reader.ReadColumn());
        for (int64_t c = static_cast<int64_t>(j) + 1; c < cols; ++c) {
          TDP_RETURN_NOT_OK(reader.SkipColumn());
        }
        scatter_pos.assign(static_cast<size_t>(pn), -1);
        for (int64_t i = 0; i < pn; ++i) {
          if (consumed + i < static_cast<int64_t>(positions.size())) {
            scatter_pos[static_cast<size_t>(i)] =
                positions[static_cast<size_t>(consumed + i)];
          }
        }
        ScatterRows(payload, page_col.data().Contiguous(), scatter_pos);
        consumed += pn;
      }
    }
    out.columns.push_back(WrapLike(prototype, std::move(payload)));
  }
  return out;
}

// ---- Grace hash join --------------------------------------------------------

StatusOr<std::shared_ptr<SpilledJoinBuild>> BuildSpilledJoin(
    const JoinNode& node, const Chunk& build_input, const ExecContext& ctx) {
  QueryMemory* mem = ctx.memory;
  TDP_CHECK(mem != nullptr);
  const auto& build_key_cols =
      node.build_left ? node.left_keys : node.right_keys;
  TDP_CHECK(!build_key_cols.empty());
  const int64_t rows = build_input.num_rows();

  TDP_ASSIGN_OR_RETURN(auto keys, JoinRowKeys(build_input, build_key_cols));

  const int64_t footprint = ChunkFootprintBytes(build_input) + rows * 48;
  const int64_t part_budget = std::max<int64_t>(mem->budget_bytes() / 4, 1);
  const int64_t parts = ClampRows(
      (footprint + part_budget - 1) / part_budget, 2, 64);

  auto build = std::make_shared<SpilledJoinBuild>();
  build->num_partitions = parts;
  build->build_rows = rows;
  build->prototype = build_input.SliceRows(0, 0);
  build->files.resize(static_cast<size_t>(parts));
  build->partition_rows.assign(static_cast<size_t>(parts), 0);
  build->rows.resize(static_cast<size_t>(parts));

  // Assign rows to partitions in build-row order: partition-local index
  // order == global build-row order, the property probe emission relies
  // on. A key hashes to exactly one partition.
  std::vector<std::vector<int64_t>> partition_sel(
      static_cast<size_t>(parts));
  const RowKeyHash hasher;
  for (int64_t r = 0; r < rows; ++r) {
    const size_t key_row = static_cast<size_t>(r);
    const size_t p = hasher(keys[key_row]) % static_cast<size_t>(parts);
    const int64_t local = build->partition_rows[p]++;
    build->rows[p][keys[key_row]].push_back(local);
    partition_sel[p].push_back(r);
  }

  // Spill each partition's payload. Partition file layout:
  //   [rows][num_pages] then per page: [page_rows][num_cols][column]...
  constexpr int64_t kJoinPageRows = 4096;
  for (int64_t p = 0; p < parts; ++p) {
    TDP_RETURN_NOT_OK(CheckCancel(ctx));
    const std::vector<int64_t>& sel = partition_sel[static_cast<size_t>(p)];
    const int64_t n = static_cast<int64_t>(sel.size());
    Tensor sel_t = Tensor::FromVector(sel, {}, ctx.device);
    const Chunk part = build_input.Select(sel_t);
    const ScopedReservation part_reservation(mem, ChunkFootprintBytes(part));
    TDP_ASSIGN_OR_RETURN(std::string path, mem->NewSpillFile("joinpart"));
    build->files[static_cast<size_t>(p)] = path;
    SpillWriter w(path);
    const int64_t pages = n == 0 ? 0 : (n + kJoinPageRows - 1) / kJoinPageRows;
    TDP_RETURN_NOT_OK(w.WriteInt64(n));
    TDP_RETURN_NOT_OK(w.WriteInt64(pages));
    for (int64_t pg = 0; pg < pages; ++pg) {
      const int64_t plo = pg * kJoinPageRows;
      const int64_t pn = std::min(kJoinPageRows, n - plo);
      TDP_RETURN_NOT_OK(w.WriteInt64(pn));
      const Chunk page = part.SliceRows(plo, pn);
      TDP_RETURN_NOT_OK(
          w.WriteInt64(static_cast<int64_t>(page.columns.size())));
      for (const Column& c : page.columns) {
        TDP_RETURN_NOT_OK(w.WriteColumn(c));
      }
    }
    TDP_RETURN_NOT_OK(w.Close());
    mem->AddSpilledBytes(w.bytes_written());
  }
  return build;
}

StatusOr<Chunk> ProbeSpilledJoin(const JoinNode& node,
                                 const SpilledJoinBuild& build,
                                 const Chunk& probe, const ExecContext& ctx) {
  const auto& probe_key_cols =
      node.build_left ? node.right_keys : node.left_keys;
  TDP_ASSIGN_OR_RETURN(auto probe_keys, JoinRowKeys(probe, probe_key_cols));

  // Emission order (identical to the in-memory probe): probe-row-major,
  // matches of one probe row in ascending build-row order — which is
  // ascending partition-local order, since every match of a key lives in
  // one partition and partitions preserve build-row order.
  std::vector<int64_t> probe_idx;
  std::vector<int32_t> match_part;
  std::vector<int64_t> match_local;
  const RowKeyHash hasher;
  for (size_t r = 0; r < probe_keys.size(); ++r) {
    const size_t p =
        hasher(probe_keys[r]) % static_cast<size_t>(build.num_partitions);
    const auto it = build.rows[p].find(probe_keys[r]);
    if (it == build.rows[p].end()) continue;
    for (int64_t local : it->second) {
      probe_idx.push_back(static_cast<int64_t>(r));
      match_part.push_back(static_cast<int32_t>(p));
      match_local.push_back(local);
    }
  }
  const int64_t total = static_cast<int64_t>(probe_idx.size());

  // Build-side columns: load matched partitions one at a time, gather
  // their matched rows, scatter into emission positions.
  std::vector<Tensor> build_payloads;
  build_payloads.reserve(build.prototype.columns.size());
  for (const Column& c : build.prototype.columns) {
    build_payloads.push_back(AllocLike(c.data(), total));
  }
  // Per-partition match entries (emission position, local row), in
  // ascending local order so one sequential pass over the pages suffices.
  std::vector<std::vector<std::pair<int64_t, int64_t>>> entries(
      static_cast<size_t>(build.num_partitions));
  for (int64_t s = 0; s < total; ++s) {
    entries[static_cast<size_t>(match_part[static_cast<size_t>(s)])]
        .emplace_back(match_local[static_cast<size_t>(s)], s);
  }
  std::vector<int64_t> scatter_pos;
  for (int64_t p = 0; p < build.num_partitions; ++p) {
    auto& part_entries = entries[static_cast<size_t>(p)];
    if (part_entries.empty()) continue;
    TDP_RETURN_NOT_OK(CheckCancel(ctx));
    std::sort(part_entries.begin(), part_entries.end());
    SpillReader reader(build.files[static_cast<size_t>(p)]);
    TDP_ASSIGN_OR_RETURN(int64_t part_rows, reader.ReadInt64());
    TDP_ASSIGN_OR_RETURN(int64_t pages, reader.ReadInt64());
    (void)part_rows;
    size_t cursor = 0;  // next unconsumed entry
    int64_t page_lo = 0;
    for (int64_t pg = 0; pg < pages && cursor < part_entries.size(); ++pg) {
      TDP_ASSIGN_OR_RETURN(int64_t pn, reader.ReadInt64());
      TDP_ASSIGN_OR_RETURN(int64_t cols, reader.ReadInt64());
      TDP_CHECK(cols == static_cast<int64_t>(build_payloads.size()));
      // A build row may match many probe rows: every entry of this page
      // scatters one copy. The per-column inner loop re-reads nothing —
      // columns arrive in file order.
      const size_t page_begin = cursor;
      size_t page_end = cursor;
      while (page_end < part_entries.size() &&
             part_entries[page_end].first < page_lo + pn) {
        ++page_end;
      }
      for (int64_t c = 0; c < cols; ++c) {
        TDP_ASSIGN_OR_RETURN(Column page_col, reader.ReadColumn());
        const Tensor src = page_col.data().Contiguous();
        const int64_t row_elems = pn == 0 ? 0 : src.numel() / pn;
        const int64_t row_bytes = row_elems * DTypeSize(src.dtype());
        const uint8_t* sp = TensorRawBytes(src);
        uint8_t* dp =
            TensorRawBytesMutable(build_payloads[static_cast<size_t>(c)]);
        for (size_t e = page_begin; e < page_end; ++e) {
          const int64_t local = part_entries[e].first - page_lo;
          const int64_t out_s = part_entries[e].second;
          std::memcpy(dp + out_s * row_bytes, sp + local * row_bytes,
                      static_cast<size_t>(row_bytes));
        }
      }
      cursor = page_end;
      page_lo += pn;
    }
  }

  // Assemble in schema order (left columns first), exactly like the
  // in-memory probe.
  Tensor psel = Tensor::FromVector(probe_idx, {}, ctx.device);
  const Chunk probe_selected = probe.Select(psel);
  Chunk joined;
  const size_t left_cols = node.build_left
                               ? build.prototype.columns.size()
                               : probe.columns.size();
  const auto push_build = [&](size_t schema_offset) {
    for (size_t i = 0; i < build.prototype.columns.size(); ++i) {
      joined.names.push_back(node.schema[schema_offset + i].name);
      joined.columns.push_back(WrapLike(build.prototype.columns[i],
                                        std::move(build_payloads[i])));
    }
  };
  const auto push_probe = [&](size_t schema_offset) {
    for (size_t i = 0; i < probe_selected.columns.size(); ++i) {
      joined.names.push_back(node.schema[schema_offset + i].name);
      joined.columns.push_back(probe_selected.columns[i]);
    }
  };
  if (node.build_left) {
    push_build(0);
    push_probe(left_cols);
  } else {
    push_probe(0);
    push_build(left_cols);
  }

  if (node.residual) {
    TDP_ASSIGN_OR_RETURN(
        Tensor mask, EvaluatePredicate(*node.residual, joined, EvalOpts(ctx)));
    joined = joined.Select(NonZero(mask));
  }
  return joined;
}

// ---- Paged two-pass aggregation ---------------------------------------------

StatusOr<Chunk> SpilledFinalizeAggregate(const AggregateNode& node,
                                         const AggInputs& inputs,
                                         const ExecContext& ctx) {
  QueryMemory* mem = ctx.memory;
  TDP_CHECK(mem != nullptr);
  const int64_t rows = inputs.rows;
  const size_t num_key_cols = inputs.key_columns.size();
  constexpr int64_t kAggBlock = 4096;  // == the in-memory kernel's block
  const int64_t num_blocks = (rows + kAggBlock - 1) / kAggBlock;

  // Mirror the in-memory kernel's per-def argument checks up front (same
  // first error, same message) so the spill path never writes pages for a
  // query that would have failed in memory.
  for (size_t d = 0; d < node.aggregates.size(); ++d) {
    const AggDef& def = node.aggregates[d];
    if (!def.arg) continue;
    const Column& arg_col = inputs.arg_columns[d];
    if (arg_col.encoding() == Encoding::kDictionary &&
        def.kind != AggKind::kCount) {
      return Status::TypeError("cannot " +
                               std::string(plan::AggKindName(def.kind)) +
                               " a string column");
    }
    if (arg_col.DecodeValues().dim() != 1) {
      return Status::TypeError("aggregate argument must be a scalar column");
    }
  }
  // Which defs carry an argument blob / a distinct-codes blob per page.
  std::vector<int64_t> arg_blob(node.aggregates.size(), -1);
  std::vector<int64_t> distinct_blob(node.aggregates.size(), -1);
  int64_t num_arg_blobs = 0, num_distinct_blobs = 0;
  for (size_t d = 0; d < node.aggregates.size(); ++d) {
    if (node.aggregates[d].arg) arg_blob[d] = num_arg_blobs++;
    if (node.aggregates[d].distinct && node.aggregates[d].arg) {
      distinct_blob[d] = num_distinct_blobs++;
    }
  }

  // Pass A: spill pages (key order codes + per-def argument doubles +
  // distinct codes) while discovering groups. Order codes are row-local
  // and globally consistent, so the page-wise map sees exactly the key
  // equivalences (and the sorted iteration exactly the key order) the
  // in-memory kernel derives from whole-column Unique ranks.
  TDP_ASSIGN_OR_RETURN(std::string path, mem->NewSpillFile("aggpages"));
  SpillWriter w(path);
  std::map<std::vector<int64_t>, int64_t> group_ids;
  std::vector<std::pair<const std::vector<int64_t>*, int64_t>> first_rows;
  std::vector<int64_t> key(num_key_cols);
  {
    std::vector<std::vector<int64_t>> page_key_codes(num_key_cols);
    std::vector<std::vector<double>> page_args(
        static_cast<size_t>(num_arg_blobs));
    std::vector<std::vector<int64_t>> page_distinct(
        static_cast<size_t>(num_distinct_blobs));
    for (int64_t b = 0; b < num_blocks; ++b) {
      TDP_RETURN_NOT_OK(CheckCancel(ctx));
      const int64_t lo = b * kAggBlock;
      const int64_t pn = std::min(kAggBlock, rows - lo);
      for (size_t k = 0; k < num_key_cols; ++k) {
        bool is_float = false;
        TDP_ASSIGN_OR_RETURN(
            page_key_codes[k],
            OrderPreservingCodes(inputs.key_columns[k].SliceRows(lo, pn),
                                 &is_float));
      }
      for (size_t d = 0; d < node.aggregates.size(); ++d) {
        if (arg_blob[d] >= 0) {
          page_args[static_cast<size_t>(arg_blob[d])] =
              inputs.arg_columns[d]
                  .SliceRows(lo, pn)
                  .DecodeValues()
                  .To(DType::kFloat64)
                  .ToVector<double>();
        }
        if (distinct_blob[d] >= 0) {
          bool is_float = false;
          TDP_ASSIGN_OR_RETURN(
              page_distinct[static_cast<size_t>(distinct_blob[d])],
              OrderPreservingCodes(inputs.arg_columns[d].SliceRows(lo, pn),
                                   &is_float));
        }
      }
      // Group discovery over this page, recording each group's first
      // global row (the representative).
      for (int64_t i = 0; i < pn; ++i) {
        for (size_t k = 0; k < num_key_cols; ++k) {
          key[k] = page_key_codes[k][static_cast<size_t>(i)];
        }
        auto [it, inserted] = group_ids.emplace(key, 0);
        if (inserted) first_rows.emplace_back(&it->first, lo + i);
      }
      // Page out everything pass B needs.
      TDP_RETURN_NOT_OK(w.WriteInt64(pn));
      for (size_t k = 0; k < num_key_cols; ++k) {
        TDP_RETURN_NOT_OK(w.WriteInt64Span(page_key_codes[k].data(),
                                           static_cast<size_t>(pn)));
      }
      for (const auto& blob : page_args) {
        TDP_RETURN_NOT_OK(
            w.WriteBytes(blob.data(), static_cast<size_t>(pn) * 8));
      }
      for (const auto& blob : page_distinct) {
        TDP_RETURN_NOT_OK(w.WriteInt64Span(blob.data(),
                                           static_cast<size_t>(pn)));
      }
    }
  }
  TDP_RETURN_NOT_OK(w.Close());
  mem->AddSpilledBytes(w.bytes_written());

  // Renumber groups in sorted key order and recover representatives —
  // the same renumbering the in-memory kernel applies.
  int64_t next_id = 0;
  for (auto& [unused_key, id] : group_ids) id = next_id++;
  const int64_t num_groups = node.group_exprs.empty() ? 1 : next_id;
  std::vector<int64_t> representative(
      static_cast<size_t>(std::max<int64_t>(num_groups, 1)), -1);
  for (const auto& [key_ptr, row] : first_rows) {
    const size_t gid = node.group_exprs.empty()
                           ? 0
                           : static_cast<size_t>(group_ids.at(*key_ptr));
    if (representative[gid] < 0 || row < representative[gid]) {
      representative[gid] = row;
    }
  }

  Chunk out;

  // Group key output columns: representative rows of the (resident) key
  // columns — verbatim the in-memory code, shared dictionaries included.
  if (!node.group_exprs.empty()) {
    Tensor rep = Tensor::Empty({num_groups}, DType::kInt64, ctx.device);
    int64_t* rp = rep.data<int64_t>();
    for (int64_t g = 0; g < num_groups; ++g) {
      rp[g] = representative[static_cast<size_t>(g)];
    }
    for (size_t k = 0; k < inputs.key_columns.size(); ++k) {
      Column key_col = inputs.key_columns[k];
      if (key_col.encoding() == Encoding::kProbability) {
        key_col = Column::Plain(key_col.DecodeValues());
      }
      out.names.push_back(node.group_names[k]);
      out.columns.push_back(key_col.Select(rep));
    }
  }

  // Pass B, once per aggregate: re-stream the pages, resolving each row's
  // group through the frozen map and accumulating with the in-memory
  // kernel's exact arithmetic. When that kernel would have parallelized
  // (num_blocks > 1, merge cheaper than the rows), per-block partials are
  // folded in block order — pages ARE blocks (both 4096-row, both
  // row-aligned) — reproducing its floating-point tree op for op;
  // otherwise rows accumulate sequentially across pages, which IS the
  // serial tree.
  for (size_t def_index = 0; def_index < node.aggregates.size();
       ++def_index) {
    const AggDef& def = node.aggregates[def_index];
    std::vector<double> acc(static_cast<size_t>(num_groups), 0.0);
    std::vector<int64_t> counts(static_cast<size_t>(num_groups), 0);
    std::vector<unsigned char> has_flags(static_cast<size_t>(num_groups), 0);
    std::vector<std::set<int64_t>> distinct_seen;
    if (def.distinct) distinct_seen.resize(static_cast<size_t>(num_groups));
    const bool parallel_ok =
        !def.distinct && num_blocks > 1 && num_blocks * num_groups <= rows;

    SpillReader reader(path);
    std::vector<int64_t> page_codes;
    std::vector<double> page_args;
    std::vector<int64_t> page_distinct;
    std::vector<double> blk_acc;
    std::vector<int64_t> blk_counts;
    std::vector<unsigned char> blk_has;
    std::vector<int64_t> row_gid;
    for (int64_t b = 0; b < num_blocks; ++b) {
      TDP_RETURN_NOT_OK(CheckCancel(ctx));
      TDP_ASSIGN_OR_RETURN(int64_t pn, reader.ReadInt64());
      // Row group ids for this page.
      row_gid.assign(static_cast<size_t>(pn), 0);
      if (!node.group_exprs.empty()) {
        page_codes.resize(static_cast<size_t>(pn) * num_key_cols);
        TDP_RETURN_NOT_OK(reader.ReadInt64Span(page_codes.data(),
                                               page_codes.size()));
        for (int64_t i = 0; i < pn; ++i) {
          for (size_t k = 0; k < num_key_cols; ++k) {
            key[k] = page_codes[k * static_cast<size_t>(pn) +
                                static_cast<size_t>(i)];
          }
          row_gid[static_cast<size_t>(i)] = group_ids.at(key);
        }
      } else if (num_key_cols > 0) {
        TDP_RETURN_NOT_OK(
            reader.Skip(static_cast<int64_t>(num_key_cols) * pn * 8));
      }
      // This def's argument doubles (skip the other defs' blobs).
      if (arg_blob[def_index] >= 0) {
        TDP_RETURN_NOT_OK(reader.Skip(arg_blob[def_index] * pn * 8));
        page_args.resize(static_cast<size_t>(pn));
        TDP_RETURN_NOT_OK(
            reader.ReadBytes(page_args.data(), static_cast<size_t>(pn) * 8));
        TDP_RETURN_NOT_OK(reader.Skip(
            (num_arg_blobs - arg_blob[def_index] - 1) * pn * 8));
      } else {
        TDP_RETURN_NOT_OK(reader.Skip(num_arg_blobs * pn * 8));
      }
      if (distinct_blob[def_index] >= 0) {
        TDP_RETURN_NOT_OK(reader.Skip(distinct_blob[def_index] * pn * 8));
        page_distinct.resize(static_cast<size_t>(pn));
        TDP_RETURN_NOT_OK(reader.ReadInt64Span(page_distinct.data(),
                                               page_distinct.size()));
        TDP_RETURN_NOT_OK(reader.Skip(
            (num_distinct_blobs - distinct_blob[def_index] - 1) * pn * 8));
      } else {
        TDP_RETURN_NOT_OK(reader.Skip(num_distinct_blobs * pn * 8));
      }

      const auto accumulate_rows = [&](double* block_acc,
                                       int64_t* block_counts,
                                       unsigned char* block_has) {
        for (int64_t i = 0; i < pn; ++i) {
          const size_t g =
              static_cast<size_t>(row_gid[static_cast<size_t>(i)]);
          if (def.distinct && def.arg) {
            if (!distinct_seen[g]
                     .insert(page_distinct[static_cast<size_t>(i)])
                     .second) {
              continue;
            }
          }
          const double v =
              def.arg ? page_args[static_cast<size_t>(i)] : 0.0;
          switch (def.kind) {
            case AggKind::kCountStar:
            case AggKind::kCount:
              break;
            case AggKind::kSum:
            case AggKind::kAvg:
              block_acc[g] += v;
              break;
            case AggKind::kMin:
              block_acc[g] = block_has[g] ? std::min(block_acc[g], v) : v;
              break;
            case AggKind::kMax:
              block_acc[g] = block_has[g] ? std::max(block_acc[g], v) : v;
              break;
          }
          block_has[g] = 1;
          ++block_counts[g];
        }
      };

      if (parallel_ok) {
        blk_acc.assign(static_cast<size_t>(num_groups), 0.0);
        blk_counts.assign(static_cast<size_t>(num_groups), 0);
        blk_has.assign(static_cast<size_t>(num_groups), 0);
        accumulate_rows(blk_acc.data(), blk_counts.data(), blk_has.data());
        // Fold this block's partials immediately — blocks arrive in block
        // order, so the fold sequence equals the in-memory merge loop.
        for (int64_t g = 0; g < num_groups; ++g) {
          const size_t ug = static_cast<size_t>(g);
          if (!blk_has[ug]) continue;
          switch (def.kind) {
            case AggKind::kCountStar:
            case AggKind::kCount:
              break;
            case AggKind::kSum:
            case AggKind::kAvg:
              acc[ug] += blk_acc[ug];
              break;
            case AggKind::kMin:
              acc[ug] =
                  has_flags[ug] ? std::min(acc[ug], blk_acc[ug]) : blk_acc[ug];
              break;
            case AggKind::kMax:
              acc[ug] =
                  has_flags[ug] ? std::max(acc[ug], blk_acc[ug]) : blk_acc[ug];
              break;
          }
          has_flags[ug] = 1;
          counts[ug] += blk_counts[ug];
        }
      } else {
        accumulate_rows(acc.data(), counts.data(), has_flags.data());
      }
    }

    const DType out_dtype =
        node.schema[node.group_exprs.size() + def_index].dtype;
    Tensor result = Tensor::Zeros({num_groups}, out_dtype, ctx.device);
    for (int64_t g = 0; g < num_groups; ++g) {
      const size_t ug = static_cast<size_t>(g);
      double v = 0;
      switch (def.kind) {
        case AggKind::kCountStar:
        case AggKind::kCount:
          v = static_cast<double>(counts[ug]);
          break;
        case AggKind::kSum:
          v = acc[ug];
          break;
        case AggKind::kAvg:
          v = counts[ug] > 0 ? acc[ug] / static_cast<double>(counts[ug]) : 0;
          break;
        case AggKind::kMin:
        case AggKind::kMax:
          v = acc[ug];
          break;
      }
      result.SetAt({g}, v);
    }
    out.names.push_back(def.name);
    out.columns.push_back(Column::Plain(std::move(result)));
  }
  return out;
}

}  // namespace exec
}  // namespace tdp
