#ifndef TDP_EXEC_SOFT_OPS_H_
#define TDP_EXEC_SOFT_OPS_H_

#include <vector>

#include "src/common/statusor.h"
#include "src/storage/column.h"

namespace tdp {
namespace exec {

// Differentiable relaxations of discrete relational operators (§4 of the
// paper). They consume Probability-Encoded columns and are built from
// addition and multiplication only, so gradients flow from aggregate
// outputs back into the classifiers that produced the PE columns.

/// soft_count: expected per-class count of one PE column.
/// probs [n, k] -> counts [k], counts[c] = Σ_rows probs[row, c].
Tensor SoftCount(const Tensor& probs);

struct SoftGroupByResult {
  /// One enumerated key column per input key, each [K] float32, where K is
  /// the product of domain sizes (row-major enumeration: first key varies
  /// slowest). These are exact (hard) domain values.
  std::vector<Tensor> key_values;
  /// Expected group sizes [K], float32, differentiable.
  Tensor counts;
};

/// soft_groupby + soft_count over one or more PE key columns:
///   counts[c1, .., cm] = Σ_rows Π_j probs_j[row, c_j]
/// i.e. the expected contingency table under independent per-row class
/// distributions. Unlike the exact operator, every domain combination is
/// emitted (zeros included) — matching Fig. 1 of the paper.
StatusOr<SoftGroupByResult> SoftGroupByCount(const std::vector<Column>& keys);

/// soft_filter: expected row-membership weights for a soft predicate in
/// [0, 1]; returns weights usable to reweight downstream soft aggregates.
/// `scores` is [n] float in [0,1] (e.g. sigmoid of a learned score).
Tensor SoftFilterWeights(const Tensor& scores);

/// Weighted soft count: counts[c] = Σ_rows weights[row] * probs[row, c].
/// Composes soft_filter with soft_groupby/soft_count.
Tensor SoftWeightedCount(const Tensor& probs, const Tensor& weights);

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_SOFT_OPS_H_
