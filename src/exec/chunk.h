#ifndef TDP_EXEC_CHUNK_H_
#define TDP_EXEC_CHUNK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/storage/table.h"

namespace tdp {
namespace exec {

/// Intermediate result flowing between physical operators: a set of named
/// encoded-tensor columns of equal length. Under the default morsel-driven
/// streaming executor a chunk is one bounded morsel (a zero-copy row-range
/// view of the source, target ~64K rows); under the legacy materializing
/// path (`ExecContext::streaming = false`) the batch is the full relation.
struct Chunk {
  std::vector<std::string> names;
  std::vector<Column> columns;

  int64_t num_rows() const {
    return columns.empty() ? 0 : columns[0].length();
  }
  int64_t num_columns() const {
    return static_cast<int64_t>(columns.size());
  }

  /// Case-insensitive lookup; -1 if absent.
  int64_t FindColumn(const std::string& name) const;

  /// Builds a chunk over all columns of `table`.
  static Chunk FromTable(const Table& table);

  /// Converts to an immutable table named `name`.
  StatusOr<std::shared_ptr<Table>> ToTable(const std::string& name) const;

  /// Applies a row selection (int64 indices) to every column.
  Chunk Select(const Tensor& indices) const;

  /// Zero-copy morsel view of rows [start, start+count) of every column.
  Chunk SliceRows(int64_t start, int64_t count) const;

  /// Row-wise concatenation of morsel outputs (schema taken from the first
  /// part; all parts must agree — true for outputs of one pipeline).
  static Chunk Concat(const std::vector<Chunk>& parts);
};

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_CHUNK_H_
