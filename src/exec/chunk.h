#ifndef TDP_EXEC_CHUNK_H_
#define TDP_EXEC_CHUNK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/storage/table.h"

namespace tdp {
namespace exec {

/// Materialized intermediate result flowing between physical operators:
/// a set of named encoded-tensor columns of equal length. (TDP executes
/// whole-column tensor programs, so the "batch" is the full relation.)
struct Chunk {
  std::vector<std::string> names;
  std::vector<Column> columns;

  int64_t num_rows() const {
    return columns.empty() ? 0 : columns[0].length();
  }
  int64_t num_columns() const {
    return static_cast<int64_t>(columns.size());
  }

  /// Case-insensitive lookup; -1 if absent.
  int64_t FindColumn(const std::string& name) const;

  /// Builds a chunk over all columns of `table`.
  static Chunk FromTable(const Table& table);

  /// Converts to an immutable table named `name`.
  StatusOr<std::shared_ptr<Table>> ToTable(const std::string& name) const;

  /// Applies a row selection (int64 indices) to every column.
  Chunk Select(const Tensor& indices) const;
};

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_CHUNK_H_
