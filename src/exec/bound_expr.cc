#include "src/exec/bound_expr.h"

#include "src/tensor/ops.h"

namespace tdp {
namespace exec {
namespace {

using sql::BinaryOp;
using sql::UnaryOp;

// Scalar -> rank-1 single-element tensor on `device` (broadcasts against
// column tensors).
StatusOr<Tensor> ScalarToTensor(const ScalarValue& v, Device device) {
  if (v.is_int()) {
    return Tensor::Full({1}, static_cast<double>(v.int_value()),
                        DType::kInt64, device);
  }
  if (v.is_float()) {
    return Tensor::Full({1}, v.float_value(), DType::kFloat32, device);
  }
  if (v.is_bool()) {
    Tensor t = Tensor::Empty({1}, DType::kBool, device);
    *t.data<bool>() = v.bool_value();
    return t;
  }
  return Status::TypeError("cannot lower scalar " + v.ToString() +
                           " to a tensor");
}

// Numeric payload of a column for expression math: PE columns decode to
// hard values, dictionary columns expose codes (comparisons only).
Tensor NumericPayload(const Column& c) { return c.DecodeValues(); }

StatusOr<Column> CompareStringLiteral(const Column& column, BinaryOp op,
                                      const std::string& literal,
                                      bool literal_on_left) {
  if (column.encoding() != Encoding::kDictionary) {
    return Status::TypeError(
        "string literal compared against a non-string column");
  }
  // Normalize to <column> <op> <literal>.
  BinaryOp norm = op;
  if (literal_on_left) {
    switch (op) {
      case BinaryOp::kLt:
        norm = BinaryOp::kGt;
        break;
      case BinaryOp::kLe:
        norm = BinaryOp::kGe;
        break;
      case BinaryOp::kGt:
        norm = BinaryOp::kLt;
        break;
      case BinaryOp::kGe:
        norm = BinaryOp::kLe;
        break;
      default:
        break;
    }
  }
  const Tensor codes = column.data();
  const Device device = codes.device();
  auto code_scalar = [&](int64_t code) {
    return Tensor::Full({1}, static_cast<double>(code), DType::kInt64,
                        device);
  };
  switch (norm) {
    case BinaryOp::kEq: {
      const int64_t code = column.DictionaryCode(literal);
      if (code < 0) {
        return Column::Plain(
            Tensor::Zeros({column.length()}, DType::kBool, device));
      }
      return Column::Plain(Eq(codes, code_scalar(code)));
    }
    case BinaryOp::kNe: {
      const int64_t code = column.DictionaryCode(literal);
      if (code < 0) {
        return Column::Plain(
            Tensor::Ones({column.length()}, DType::kBool, device));
      }
      return Column::Plain(Ne(codes, code_scalar(code)));
    }
    // Order-preserving dictionary: range predicates become code ranges.
    case BinaryOp::kLt:
      return Column::Plain(
          Lt(codes, code_scalar(column.LowerBoundCode(literal))));
    case BinaryOp::kLe:
      return Column::Plain(
          Lt(codes, code_scalar(column.UpperBoundCode(literal))));
    case BinaryOp::kGt:
      return Column::Plain(
          Ge(codes, code_scalar(column.UpperBoundCode(literal))));
    case BinaryOp::kGe:
      return Column::Plain(
          Ge(codes, code_scalar(column.LowerBoundCode(literal))));
    default:
      return Status::TypeError("unsupported operator on string column");
  }
}

StatusOr<ScalarValue> FoldScalarBinary(BinaryOp op, const ScalarValue& a,
                                       const ScalarValue& b) {
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    if (!a.is_bool() || !b.is_bool()) {
      return Status::TypeError("AND/OR need boolean operands");
    }
    return ScalarValue::Bool(op == BinaryOp::kAnd
                                 ? (a.bool_value() && b.bool_value())
                                 : (a.bool_value() || b.bool_value()));
  }
  if (a.is_string() && b.is_string()) {
    const int cmp = a.string_value().compare(b.string_value());
    switch (op) {
      case BinaryOp::kEq:
        return ScalarValue::Bool(cmp == 0);
      case BinaryOp::kNe:
        return ScalarValue::Bool(cmp != 0);
      case BinaryOp::kLt:
        return ScalarValue::Bool(cmp < 0);
      case BinaryOp::kLe:
        return ScalarValue::Bool(cmp <= 0);
      case BinaryOp::kGt:
        return ScalarValue::Bool(cmp > 0);
      case BinaryOp::kGe:
        return ScalarValue::Bool(cmp >= 0);
      default:
        return Status::TypeError("arithmetic on strings");
    }
  }
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::TypeError("type mismatch in constant expression");
  }
  const double x = a.AsDouble();
  const double y = b.AsDouble();
  const bool both_int = a.is_int() && b.is_int();
  switch (op) {
    case BinaryOp::kAdd:
      return both_int ? ScalarValue::Int(a.int_value() + b.int_value())
                      : ScalarValue::Float(x + y);
    case BinaryOp::kSub:
      return both_int ? ScalarValue::Int(a.int_value() - b.int_value())
                      : ScalarValue::Float(x - y);
    case BinaryOp::kMul:
      return both_int ? ScalarValue::Int(a.int_value() * b.int_value())
                      : ScalarValue::Float(x * y);
    case BinaryOp::kDiv:
      if (y == 0) return Status::ExecutionError("division by zero");
      return ScalarValue::Float(x / y);
    case BinaryOp::kMod:
      if (b.int_value() == 0) {
        return Status::ExecutionError("modulo by zero");
      }
      return ScalarValue::Int(a.int_value() % b.int_value());
    case BinaryOp::kEq:
      return ScalarValue::Bool(x == y);
    case BinaryOp::kNe:
      return ScalarValue::Bool(x != y);
    case BinaryOp::kLt:
      return ScalarValue::Bool(x < y);
    case BinaryOp::kLe:
      return ScalarValue::Bool(x <= y);
    case BinaryOp::kGt:
      return ScalarValue::Bool(x > y);
    case BinaryOp::kGe:
      return ScalarValue::Bool(x >= y);
    default:
      return Status::TypeError("bad scalar op");
  }
}

StatusOr<Column> TensorBinary(BinaryOp op, const Tensor& a, const Tensor& b) {
  switch (op) {
    case BinaryOp::kAdd:
      return Column::Plain(Add(a, b));
    case BinaryOp::kSub:
      return Column::Plain(Sub(a, b));
    case BinaryOp::kMul:
      return Column::Plain(Mul(a, b));
    case BinaryOp::kDiv: {
      // SQL semantics: division yields float.
      const Tensor af = IsFloatingPoint(a.dtype()) ? a : a.To(DType::kFloat32);
      const Tensor bf = IsFloatingPoint(b.dtype()) ? b : b.To(DType::kFloat32);
      return Column::Plain(Div(af, bf));
    }
    case BinaryOp::kMod: {
      // a - floor(a/b) * b (float path; exact for moderate integers).
      const Tensor af = a.To(DType::kFloat64);
      const Tensor bf = b.To(DType::kFloat64);
      Tensor m = Sub(af, Mul(Floor(Div(af, bf)), bf));
      if (IsInteger(a.dtype()) && IsInteger(b.dtype())) {
        return Column::Plain(m.To(DType::kInt64));
      }
      return Column::Plain(m.To(DType::kFloat32));
    }
    case BinaryOp::kEq:
      return Column::Plain(Eq(a, b));
    case BinaryOp::kNe:
      return Column::Plain(Ne(a, b));
    case BinaryOp::kLt:
      return Column::Plain(Lt(a, b));
    case BinaryOp::kLe:
      return Column::Plain(Le(a, b));
    case BinaryOp::kGt:
      return Column::Plain(Gt(a, b));
    case BinaryOp::kGe:
      return Column::Plain(Ge(a, b));
    case BinaryOp::kAnd:
      return Column::Plain(LogicalAnd(a, b));
    case BinaryOp::kOr:
      return Column::Plain(LogicalOr(a, b));
  }
  return Status::TypeError("unknown binary operator");
}

StatusOr<EvalResult> EvaluateBinary(const BoundBinary& expr,
                                    const Chunk& input,
                                    const EvalOptions& opts) {
  const Device device = opts.device;
  TDP_ASSIGN_OR_RETURN(EvalResult lhs, EvaluateExpr(*expr.left, input, opts));
  TDP_ASSIGN_OR_RETURN(EvalResult rhs, EvaluateExpr(*expr.right, input, opts));

  // Constant folding at runtime (both sides scalar).
  if (lhs.is_scalar && rhs.is_scalar) {
    TDP_ASSIGN_OR_RETURN(ScalarValue folded,
                         FoldScalarBinary(expr.op, lhs.scalar, rhs.scalar));
    EvalResult out;
    out.is_scalar = true;
    out.scalar = std::move(folded);
    return out;
  }

  // String literal vs dictionary column.
  if (lhs.is_scalar && lhs.scalar.is_string()) {
    TDP_ASSIGN_OR_RETURN(Column c,
                         CompareStringLiteral(rhs.column, expr.op,
                                              lhs.scalar.string_value(),
                                              /*literal_on_left=*/true));
    return EvalResult{false, {}, std::move(c)};
  }
  if (rhs.is_scalar && rhs.scalar.is_string()) {
    TDP_ASSIGN_OR_RETURN(Column c,
                         CompareStringLiteral(lhs.column, expr.op,
                                              rhs.scalar.string_value(),
                                              /*literal_on_left=*/false));
    return EvalResult{false, {}, std::move(c)};
  }

  // Dictionary vs dictionary comparison: equality of decoded strings
  // (engines with shared dictionaries can compare codes; we keep it safe).
  if (!lhs.is_scalar && !rhs.is_scalar &&
      lhs.column.encoding() == Encoding::kDictionary &&
      rhs.column.encoding() == Encoding::kDictionary) {
    if (expr.op != BinaryOp::kEq && expr.op != BinaryOp::kNe) {
      return Status::Unimplemented(
          "only =/<> between two string columns is supported");
    }
    const std::vector<std::string> a = lhs.column.DecodeStrings();
    const std::vector<std::string> b = rhs.column.DecodeStrings();
    if (a.size() != b.size()) {
      return Status::ExecutionError("string column length mismatch");
    }
    Tensor mask = Tensor::Empty({static_cast<int64_t>(a.size())},
                                DType::kBool, device);
    bool* mp = mask.data<bool>();
    for (size_t i = 0; i < a.size(); ++i) {
      mp[i] = expr.op == BinaryOp::kEq ? a[i] == b[i] : a[i] != b[i];
    }
    return EvalResult{false, {}, Column::Plain(std::move(mask))};
  }

  Tensor ta, tb;
  if (lhs.is_scalar) {
    TDP_ASSIGN_OR_RETURN(ta, ScalarToTensor(lhs.scalar, device));
  } else {
    ta = NumericPayload(lhs.column);
  }
  if (rhs.is_scalar) {
    TDP_ASSIGN_OR_RETURN(tb, ScalarToTensor(rhs.scalar, device));
  } else {
    tb = NumericPayload(rhs.column);
  }
  TDP_ASSIGN_OR_RETURN(Column c, TensorBinary(expr.op, ta, tb));
  return EvalResult{false, {}, std::move(c)};
}

StatusOr<EvalResult> EvaluateCase(const BoundCase& expr, const Chunk& input,
                                  const EvalOptions& opts) {
  const Device device = opts.device;
  // Lower to nested Where(cond, then, else) — differentiable in the
  // then/else values.
  Tensor result;
  bool have_result = false;
  // Build from the last branch backwards.
  Tensor else_tensor;
  if (expr.else_expr) {
    TDP_ASSIGN_OR_RETURN(Column c,
                         EvaluateExprToColumn(*expr.else_expr, input, opts));
    else_tensor = NumericPayload(c);
  }
  for (auto it = expr.branches.rbegin(); it != expr.branches.rend(); ++it) {
    TDP_ASSIGN_OR_RETURN(Tensor cond,
                         EvaluatePredicate(*it->first, input, opts));
    TDP_ASSIGN_OR_RETURN(Column then_col,
                         EvaluateExprToColumn(*it->second, input, opts));
    Tensor then_tensor = NumericPayload(then_col);
    if (!have_result) {
      result = else_tensor.defined()
                   ? Where(cond, then_tensor, else_tensor)
                   : Where(cond, then_tensor,
                           Tensor::Zeros(then_tensor.shape(),
                                         then_tensor.dtype(), device));
      have_result = true;
    } else {
      result = Where(cond, then_tensor, result);
    }
  }
  TDP_CHECK(have_result);
  return EvalResult{false, {}, Column::Plain(result)};
}

StatusOr<EvalResult> EvaluateUdf(const BoundUdfCall& expr, const Chunk& input,
                                 const EvalOptions& opts) {
  const Device device = opts.device;
  std::vector<udf::Argument> args;
  args.reserve(expr.args.size());
  for (const BoundExprPtr& arg_expr : expr.args) {
    TDP_ASSIGN_OR_RETURN(EvalResult r, EvaluateExpr(*arg_expr, input, opts));
    udf::Argument arg;
    if (r.is_scalar) {
      arg.is_scalar = true;
      arg.scalar = std::move(r.scalar);
    } else {
      arg.column = std::move(r.column);
    }
    args.push_back(std::move(arg));
  }
  // Batchable calls route through the dispatcher when one is installed:
  // the runtime's InferenceScheduler may coalesce concurrent calls for the
  // same model into a single forward pass. Row-locality (the batchable
  // contract) makes the coalesced result bit-identical to a direct call.
  Column out;
  if (expr.fn->batchable && opts.udf_dispatch != nullptr) {
    TDP_ASSIGN_OR_RETURN(
        out, opts.udf_dispatch->CallScalar(*expr.fn, args, input.num_rows(),
                                           device, opts.cancel));
  } else {
    TDP_ASSIGN_OR_RETURN(out, expr.fn->fn(args, input.num_rows(), device));
  }
  if (out.length() != input.num_rows()) {
    return Status::ExecutionError(
        "scalar UDF " + expr.fn->name + " returned " +
        std::to_string(out.length()) + " rows, expected " +
        std::to_string(input.num_rows()));
  }
  return EvalResult{false, {}, std::move(out)};
}

StatusOr<EvalResult> EvaluateVectorSim(const BoundVectorSim& expr,
                                       const Chunk& input,
                                       const EvalOptions& opts) {
  const Device device = opts.device;
  TDP_ASSIGN_OR_RETURN(EvalResult col, EvaluateExpr(*expr.column, input, opts));
  if (col.is_scalar || col.column.encoding() != Encoding::kPlain ||
      col.column.data().dim() != 2) {
    return Status::TypeError(
        "first argument of dot/cosine_sim must be a rank-2 tensor column "
        "(one embedding per row)");
  }
  TDP_ASSIGN_OR_RETURN(EvalResult qr, EvaluateExpr(*expr.query, input, opts));
  if (!qr.is_scalar || !qr.scalar.is_tensor()) {
    return Status::TypeError(
        "second argument of dot/cosine_sim must be a constant query vector "
        "(bind a tensor via ScalarValue::FromTensor)");
  }
  const Tensor rows = col.column.data().Detach().To(DType::kFloat32);
  const Tensor& qraw = qr.scalar.tensor_value();
  if (!qraw.defined() || qraw.numel() != rows.size(1)) {
    return Status::InvalidArgument(
        "query vector dimension mismatch: column has d=" +
        std::to_string(rows.size(1)) + ", query has " +
        std::to_string(qraw.defined() ? qraw.numel() : 0) + " element(s)");
  }
  const Tensor q = Reshape(qraw.Detach().To(DType::kFloat32).To(device),
                           {rows.size(1), 1});
  // Per-row inner product: each output element's reduction runs over d in
  // a fixed order regardless of the row count, so subset evaluation is
  // bit-identical to full-relation evaluation (see BoundVectorSim).
  Tensor scores = Squeeze(MatMul(rows, q), 1);
  if (expr.sim_kind == BoundVectorSim::SimKind::kCosine) {
    const Tensor row_norms =
        Sqrt(Sum(Mul(rows, rows), /*dim=*/1, /*keepdim=*/false));
    const Tensor q_norm = Sqrt(Sum(Mul(q, q)));
    const Tensor denom = Mul(row_norms, Reshape(q_norm, {1}));
    constexpr double kEps = 1e-12;
    scores = Div(scores, Maximum(denom, Tensor::Full({1}, kEps,
                                                     DType::kFloat32,
                                                     scores.device())));
  }
  return EvalResult{false, {}, Column::Plain(std::move(scores))};
}

}  // namespace

StatusOr<EvalResult> EvaluateExpr(const BoundExpr& expr, const Chunk& input,
                                  const EvalOptions& opts) {
  const Device device = opts.device;
  const std::vector<ScalarValue>* params = opts.params;
  switch (expr.kind) {
    case BoundExprKind::kColumnRef: {
      const auto& ref = static_cast<const BoundColumnRef&>(expr);
      TDP_CHECK(ref.column_index >= 0 &&
                ref.column_index < input.num_columns())
          << "bound column index out of range";
      return EvalResult{
          false, {}, input.columns[static_cast<size_t>(ref.column_index)]};
    }
    case BoundExprKind::kLiteral: {
      const auto& lit = static_cast<const BoundLiteral&>(expr);
      return EvalResult{true, lit.value, {}};
    }
    case BoundExprKind::kBinary:
      return EvaluateBinary(static_cast<const BoundBinary&>(expr), input,
                            opts);
    case BoundExprKind::kUnary: {
      const auto& un = static_cast<const BoundUnary&>(expr);
      TDP_ASSIGN_OR_RETURN(EvalResult operand,
                           EvaluateExpr(*un.operand, input, opts));
      if (operand.is_scalar) {
        if (un.op == UnaryOp::kNeg) {
          if (operand.scalar.is_int()) {
            return EvalResult{
                true, ScalarValue::Int(-operand.scalar.int_value()), {}};
          }
          if (operand.scalar.is_float()) {
            return EvalResult{
                true, ScalarValue::Float(-operand.scalar.float_value()), {}};
          }
          return Status::TypeError("negation of non-numeric literal");
        }
        if (!operand.scalar.is_bool()) {
          return Status::TypeError("NOT of non-boolean literal");
        }
        return EvalResult{
            true, ScalarValue::Bool(!operand.scalar.bool_value()), {}};
      }
      if (un.op == UnaryOp::kNeg) {
        return EvalResult{
            false, {}, Column::Plain(Neg(NumericPayload(operand.column)))};
      }
      if (operand.column.data().dtype() != DType::kBool) {
        return Status::TypeError("NOT requires a boolean column");
      }
      return EvalResult{
          false, {}, Column::Plain(LogicalNot(operand.column.data()))};
    }
    case BoundExprKind::kUdfCall:
      return EvaluateUdf(static_cast<const BoundUdfCall&>(expr), input, opts);
    case BoundExprKind::kCase:
      return EvaluateCase(static_cast<const BoundCase&>(expr), input, opts);
    case BoundExprKind::kVectorSim:
      return EvaluateVectorSim(static_cast<const BoundVectorSim&>(expr),
                               input, opts);
    case BoundExprKind::kParameter: {
      const auto& p = static_cast<const BoundParameter&>(expr);
      if (params == nullptr ||
          p.ordinal >= static_cast<int64_t>(params->size())) {
        return Status::ExecutionError(
            "query expects at least " + std::to_string(p.ordinal + 1) +
            " parameter(s); " +
            std::to_string(params ? params->size() : 0) + " bound");
      }
      const ScalarValue& v = (*params)[static_cast<size_t>(p.ordinal)];
      if (v.is_null()) {
        return Status::ExecutionError(
            "parameter " + std::to_string(p.ordinal) + " is unbound (NULL)");
      }
      return EvalResult{true, v, {}};
    }
  }
  return Status::Internal("unknown bound expression kind");
}

StatusOr<Column> EvaluateExprToColumn(const BoundExpr& expr,
                                      const Chunk& input,
                                      const EvalOptions& opts) {
  TDP_ASSIGN_OR_RETURN(EvalResult r, EvaluateExpr(expr, input, opts));
  if (!r.is_scalar) return r.column;
  const int64_t rows = std::max<int64_t>(input.num_rows(), 1);
  if (r.scalar.is_string()) {
    return Column::FromStrings(
        std::vector<std::string>(static_cast<size_t>(rows),
                                 r.scalar.string_value()),
        opts.device);
  }
  TDP_ASSIGN_OR_RETURN(Tensor t, ScalarToTensor(r.scalar, opts.device));
  return Column::Plain(Expand(t, {rows}).Contiguous());
}

StatusOr<Tensor> EvaluatePredicate(const BoundExpr& expr, const Chunk& input,
                                   const EvalOptions& opts) {
  TDP_ASSIGN_OR_RETURN(Column c, EvaluateExprToColumn(expr, input, opts));
  if (c.data().dtype() != DType::kBool || c.data().dim() != 1) {
    return Status::TypeError("predicate did not evaluate to a boolean column");
  }
  return c.data();
}

StatusOr<EvalResult> EvaluateExpr(const BoundExpr& expr, const Chunk& input,
                                  Device device,
                                  const std::vector<ScalarValue>* params) {
  return EvaluateExpr(expr, input, EvalOptions{device, params});
}

StatusOr<Column> EvaluateExprToColumn(const BoundExpr& expr,
                                      const Chunk& input, Device device,
                                      const std::vector<ScalarValue>* params) {
  return EvaluateExprToColumn(expr, input, EvalOptions{device, params});
}

StatusOr<Tensor> EvaluatePredicate(const BoundExpr& expr, const Chunk& input,
                                   Device device,
                                   const std::vector<ScalarValue>* params) {
  return EvaluatePredicate(expr, input, EvalOptions{device, params});
}

}  // namespace exec
}  // namespace tdp
