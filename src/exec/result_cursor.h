#ifndef TDP_EXEC_RESULT_CURSOR_H_
#define TDP_EXEC_RESULT_CURSOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "src/common/statusor.h"
#include "src/exec/chunk.h"
#include "src/exec/run_options.h"
#include "src/storage/catalog.h"

namespace tdp {
namespace exec {

class CompiledQuery;

/// Pull-based streaming result of one query run, returned by
/// `CompiledQuery::Open` / `Session::Execute`.
///
/// A background producer runs the streaming executor: upstream breaker
/// pipelines (sorts, aggregates, join builds) materialize exactly as under
/// `Run()`, then the final pipeline's chunks are pushed — in morsel order —
/// into a bounded queue that `Next()` drains. Backpressure is built in:
/// once the queue is full the producer blocks, so a slow consumer bounds
/// the run's buffered memory at `RunOptions::cursor_queue_chunks` chunks
/// instead of materializing the whole result. The concatenation of all
/// chunks yielded by `Next()` is bit-identical to what `Run()` returns for
/// the same options.
///
/// Lifecycle: `Next()` yields chunks until it returns an empty optional
/// (end of stream) or an error `Status` — a mid-stream executor error
/// surfaces here exactly as it would from `Run()`, never as a silently
/// truncated stream. `Close()` (also run by the destructor) cancels the
/// run cooperatively: workers observe the token at the next morsel
/// boundary and stop producing, so abandoning a cursor early — client
/// disconnect, LIMIT satisfied downstream, timeout — costs roughly one
/// wave of morsels, not the full result. After `Close()`, `Next()` returns
/// `kCancelled`.
///
/// Thread safety: `Next()` may be called by one consumer thread at a time;
/// `Close()` may race with `Next()` from another thread (that is the
/// cancellation path). The cursor keeps the compiled query and its catalog
/// snapshot alive, so it may outlive the `shared_ptr` it was opened from.
class ResultCursor {
 public:
  ~ResultCursor();

  ResultCursor(const ResultCursor&) = delete;
  ResultCursor& operator=(const ResultCursor&) = delete;

  /// Blocks for the next chunk. Returns the chunk, an empty optional at
  /// end of stream, or the run's error status (repeatably). Chunks arrive
  /// in morsel order; their concatenation equals `Run()`'s result.
  StatusOr<std::optional<Chunk>> Next();

  /// Cancels the run and joins the producer. Idempotent; safe to call
  /// while another thread blocks in `Next()` (it wakes with `kCancelled`).
  /// Buffered chunks are discarded.
  void Close();

  /// Number of chunks the producer has pushed into the queue so far —
  /// the production counter behind the early-close guarantee: after an
  /// early `Close()` this stops at ~(consumed + queue capacity + one
  /// wave), far below the chunk count of a full drain.
  int64_t chunks_produced() const {
    return chunks_produced_.load(std::memory_order_relaxed);
  }

 private:
  friend class CompiledQuery;

  ResultCursor(std::shared_ptr<const CompiledQuery> query, RunOptions options,
               std::shared_ptr<const Catalog> snapshot);

  void Start();    // spawns the producer thread (called once by Open)
  void Produce();  // producer-thread body
  Status Push(Chunk chunk);

  const std::shared_ptr<const CompiledQuery> query_;
  const RunOptions options_;
  const std::shared_ptr<const Catalog> snapshot_;
  /// Internal close-token handed to the executor; linked to the caller's
  /// `options_.cancel` so either cancels the run, while `Close()` never
  /// cancels the caller's (possibly shared) token.
  CancellationToken run_cancel_;
  const size_t capacity_;

  std::mutex mu_;
  std::mutex close_mu_;  // serializes Close() (see result_cursor.cc)
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Chunk> queue_;
  bool done_ = false;    // producer finished (status_ is final)
  bool closed_ = false;  // Close() called
  Status status_;        // first producer error, if any
  std::atomic<int64_t> chunks_produced_{0};
  std::thread producer_;
};

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_RESULT_CURSOR_H_
