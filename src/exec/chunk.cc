#include "src/exec/chunk.h"

#include "src/common/string_util.h"
#include "src/exec/value.h"

namespace tdp {
namespace exec {

std::string ScalarValue::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(int_value());
  if (is_float()) return std::to_string(float_value());
  if (is_bool()) return bool_value() ? "TRUE" : "FALSE";
  return "'" + string_value() + "'";
}

int64_t Chunk::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (EqualsIgnoreCase(names[i], name)) return static_cast<int64_t>(i);
  }
  return -1;
}

Chunk Chunk::FromTable(const Table& table) {
  Chunk chunk;
  chunk.names = table.column_names();
  for (int64_t i = 0; i < table.num_columns(); ++i) {
    chunk.columns.push_back(table.column(i));
  }
  return chunk;
}

StatusOr<std::shared_ptr<Table>> Chunk::ToTable(
    const std::string& name) const {
  return Table::Create(name, names, columns);
}

Chunk Chunk::Select(const Tensor& indices) const {
  Chunk out;
  out.names = names;
  out.columns.reserve(columns.size());
  for (const Column& c : columns) out.columns.push_back(c.Select(indices));
  return out;
}

}  // namespace exec
}  // namespace tdp
