#include "src/exec/chunk.h"

#include "src/common/string_util.h"
#include "src/exec/value.h"

namespace tdp {
namespace exec {

std::string ScalarValue::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(int_value());
  if (is_float()) return std::to_string(float_value());
  if (is_bool()) return bool_value() ? "TRUE" : "FALSE";
  if (is_tensor()) {
    return "tensor(" + std::to_string(tensor_value().numel()) + " values)";
  }
  return "'" + string_value() + "'";
}

int64_t Chunk::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (EqualsIgnoreCase(names[i], name)) return static_cast<int64_t>(i);
  }
  return -1;
}

Chunk Chunk::FromTable(const Table& table) {
  Chunk chunk;
  chunk.names = table.column_names();
  for (int64_t i = 0; i < table.num_columns(); ++i) {
    chunk.columns.push_back(table.column(i));
  }
  return chunk;
}

StatusOr<std::shared_ptr<Table>> Chunk::ToTable(
    const std::string& name) const {
  return Table::Create(name, names, columns);
}

Chunk Chunk::Select(const Tensor& indices) const {
  Chunk out;
  out.names = names;
  out.columns.reserve(columns.size());
  for (const Column& c : columns) out.columns.push_back(c.Select(indices));
  return out;
}

Chunk Chunk::SliceRows(int64_t start, int64_t count) const {
  Chunk out;
  out.names = names;
  out.columns.reserve(columns.size());
  for (const Column& c : columns) {
    out.columns.push_back(c.SliceRows(start, count));
  }
  return out;
}

Chunk Chunk::Concat(const std::vector<Chunk>& parts) {
  TDP_CHECK(!parts.empty());
  if (parts.size() == 1) return parts[0];
  Chunk out;
  out.names = parts[0].names;
  out.columns.reserve(parts[0].columns.size());
  std::vector<Column> column_parts(parts.size());
  for (size_t c = 0; c < parts[0].columns.size(); ++c) {
    for (size_t p = 0; p < parts.size(); ++p) {
      TDP_CHECK_EQ(parts[p].columns.size(), parts[0].columns.size());
      column_parts[p] = parts[p].columns[c];
    }
    out.columns.push_back(Column::Concat(column_parts));
  }
  return out;
}

}  // namespace exec
}  // namespace tdp
