#ifndef TDP_EXEC_OPERATORS_H_
#define TDP_EXEC_OPERATORS_H_

#include <vector>

#include "src/common/statusor.h"
#include "src/exec/chunk.h"
#include "src/exec/value.h"
#include "src/plan/logical_plan.h"
#include "src/storage/catalog.h"

namespace tdp {
namespace plan {
struct PipelinePlan;
}  // namespace plan

namespace exec {

/// Executor selection + morsel sizing, settable per compiled query (see
/// `CompiledQuery::set_exec_options`) and defaulted from the environment.
struct ExecOptions {
  /// True (default): morsel-driven streaming pipelines — Scan emits
  /// bounded row-range morsels that flow through Filter/Project/join-probe
  /// without materializing intermediate relations, with per-morsel partial
  /// states merged deterministically at breakers (Sort, aggregate,
  /// hash-join build, DISTINCT, TVF). False: the legacy whole-relation
  /// operator-at-a-time path, kept callable for differential testing.
  /// Both paths are bit-identical by construction.
  bool streaming = true;
  /// Morsel size in rows; 0 resolves to `DefaultMorselRows()`
  /// (`TDP_MORSEL_ROWS` env var, default 65536).
  int64_t morsel_rows = 0;
};

/// Default morsel size: the `TDP_MORSEL_ROWS` environment variable,
/// falling back to 65536 rows (~a few MB of scalar columns per morsel);
/// invalid values warn and fall back, like `TDP_NUM_THREADS`.
int64_t DefaultMorselRows();

/// Per-run execution context, threaded through every operator of one
/// `CompiledQuery::Run()`. The plan itself is immutable after compilation;
/// everything that may differ between runs lives here.
struct ExecContext {
  /// Catalog tables are re-resolved at each run (training loops
  /// re-register their inputs between iterations), so scans read through
  /// this pointer rather than caching table data at compile time.
  const Catalog* catalog = nullptr;
  /// Device every operator lowers its tensor program onto: `kCpu` is the
  /// interpretive reference backend, `kAccel` the vectorized one. Input
  /// columns living elsewhere are moved here by the scan.
  Device device = Device::kCpu;
  /// True when a TRAINABLE-compiled query runs in training mode: group-by/
  /// count over PE keys execute as soft (differentiable) operators, so
  /// gradients flow from the result back into UDF parameters (§4). At
  /// inference the exact operators are swapped back in.
  bool soft_mode = false;
  /// Values for the statement's `?` placeholders, owned by the caller for
  /// the duration of the run. Null when the query has none. Keeping the
  /// bindings here (rather than on the plan) is what lets one CompiledQuery
  /// execute on many threads with different parameters simultaneously.
  const std::vector<ScalarValue>* params = nullptr;
  /// Executor selection for this run (see ExecOptions). Soft-mode
  /// (trainable) runs always take the legacy path: the autograd graph must
  /// span the whole relation, not per-morsel slices.
  ExecOptions exec;
};

/// Executes a bound plan subtree, materializing its result chunk. Each
/// node lowers to a tensor program on `ctx.device` (TQP-style compiled
/// operators): filters become boolean-mask kernels, aggregates become
/// grouped reductions, joins hash tensor-encoded keys, and so on.
///
/// Execution is chunk-at-a-time (one materialized `Chunk` per node, no
/// row-at-a-time iteration) and morsel-parallel: the per-row loops inside
/// an operator shard across the process-wide `ThreadPool`, gated by the
/// `TDP_NUM_THREADS` environment variable. Results are deterministic for
/// every thread count — floating-point aggregate accumulation folds
/// fixed-size row blocks whose boundaries depend only on the row count.
///
/// Errors (missing tables, schema drift since compilation, type
/// mismatches) surface as failed Status, never as crashes.
StatusOr<Chunk> ExecuteNode(const plan::LogicalNode& node,
                            const ExecContext& ctx);

/// Executes a full optimized plan with the executor selected by
/// `ctx.exec`: the morsel-driven streaming pipelines of `pipelines`
/// (default), or the legacy whole-relation recursion (`ExecuteNode`) when
/// `ctx.exec.streaming` is false or the run is in soft (trainable) mode.
/// `pipelines` must have been built from `root` (see
/// `plan::BuildPipelines`); results are bit-identical between the two
/// executors at any thread count and morsel size.
StatusOr<Chunk> ExecutePlan(const plan::LogicalNode& root,
                            const plan::PipelinePlan& pipelines,
                            const ExecContext& ctx);

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_OPERATORS_H_
