#ifndef TDP_EXEC_OPERATORS_H_
#define TDP_EXEC_OPERATORS_H_

#include "src/common/statusor.h"
#include "src/exec/chunk.h"
#include "src/plan/logical_plan.h"
#include "src/storage/catalog.h"

namespace tdp {
namespace exec {

/// Per-run execution context.
struct ExecContext {
  const Catalog* catalog = nullptr;
  Device device = Device::kCpu;
  /// True when a TRAINABLE-compiled query runs in training mode: group-by/
  /// count over PE keys execute as soft (differentiable) operators.
  bool soft_mode = false;
};

/// Executes a bound plan subtree, materializing its result chunk. Each
/// node lowers to a tensor program on `ctx.device` (TQP-style compiled
/// operators).
StatusOr<Chunk> ExecuteNode(const plan::LogicalNode& node,
                            const ExecContext& ctx);

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_OPERATORS_H_
