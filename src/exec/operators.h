#ifndef TDP_EXEC_OPERATORS_H_
#define TDP_EXEC_OPERATORS_H_

#include <vector>

#include "src/common/statusor.h"
#include "src/exec/chunk.h"
#include "src/exec/value.h"
#include "src/plan/logical_plan.h"
#include "src/storage/catalog.h"

namespace tdp {
namespace exec {

/// Per-run execution context, threaded through every operator of one
/// `CompiledQuery::Run()`. The plan itself is immutable after compilation;
/// everything that may differ between runs lives here.
struct ExecContext {
  /// Catalog tables are re-resolved at each run (training loops
  /// re-register their inputs between iterations), so scans read through
  /// this pointer rather than caching table data at compile time.
  const Catalog* catalog = nullptr;
  /// Device every operator lowers its tensor program onto: `kCpu` is the
  /// interpretive reference backend, `kAccel` the vectorized one. Input
  /// columns living elsewhere are moved here by the scan.
  Device device = Device::kCpu;
  /// True when a TRAINABLE-compiled query runs in training mode: group-by/
  /// count over PE keys execute as soft (differentiable) operators, so
  /// gradients flow from the result back into UDF parameters (§4). At
  /// inference the exact operators are swapped back in.
  bool soft_mode = false;
  /// Values for the statement's `?` placeholders, owned by the caller for
  /// the duration of the run. Null when the query has none. Keeping the
  /// bindings here (rather than on the plan) is what lets one CompiledQuery
  /// execute on many threads with different parameters simultaneously.
  const std::vector<ScalarValue>* params = nullptr;
};

/// Executes a bound plan subtree, materializing its result chunk. Each
/// node lowers to a tensor program on `ctx.device` (TQP-style compiled
/// operators): filters become boolean-mask kernels, aggregates become
/// grouped reductions, joins hash tensor-encoded keys, and so on.
///
/// Execution is chunk-at-a-time (one materialized `Chunk` per node, no
/// row-at-a-time iteration) and morsel-parallel: the per-row loops inside
/// an operator shard across the process-wide `ThreadPool`, gated by the
/// `TDP_NUM_THREADS` environment variable. Results are deterministic for
/// every thread count — floating-point aggregate accumulation folds
/// fixed-size row blocks whose boundaries depend only on the row count.
///
/// Errors (missing tables, schema drift since compilation, type
/// mismatches) surface as failed Status, never as crashes.
StatusOr<Chunk> ExecuteNode(const plan::LogicalNode& node,
                            const ExecContext& ctx);

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_OPERATORS_H_
