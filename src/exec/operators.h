#ifndef TDP_EXEC_OPERATORS_H_
#define TDP_EXEC_OPERATORS_H_

#include <functional>
#include <vector>

#include "src/common/statusor.h"
#include "src/exec/chunk.h"
#include "src/exec/memory_budget.h"
#include "src/exec/run_options.h"
#include "src/exec/value.h"
#include "src/plan/logical_plan.h"
#include "src/storage/catalog.h"

namespace tdp {
namespace plan {
struct PipelinePlan;
}  // namespace plan

namespace exec {

class PrimitiveCache;

/// Default morsel size: the `TDP_MORSEL_ROWS` environment variable,
/// falling back to 65536 rows (~a few MB of scalar columns per morsel);
/// invalid values warn and fall back, like `TDP_NUM_THREADS`.
int64_t DefaultMorselRows();

/// Per-run execution context, threaded through every operator of one
/// `CompiledQuery::Run()`. The plan itself is immutable after compilation;
/// everything that may differ between runs lives here.
struct ExecContext {
  /// Catalog tables are re-resolved at each run (training loops
  /// re-register their inputs between iterations), so scans read through
  /// this pointer rather than caching table data at compile time.
  const Catalog* catalog = nullptr;
  /// Device every operator lowers its tensor program onto: `kCpu` is the
  /// interpretive reference backend, `kAccel` the vectorized one. Input
  /// columns living elsewhere are moved here by the scan.
  Device device = Device::kCpu;
  /// True when a TRAINABLE-compiled query runs in training mode: group-by/
  /// count over PE keys execute as soft (differentiable) operators, so
  /// gradients flow from the result back into UDF parameters (§4). At
  /// inference the exact operators are swapped back in.
  bool soft_mode = false;
  /// Values for the statement's `?` placeholders, owned by the caller for
  /// the duration of the run. Null when the query has none. Keeping the
  /// bindings here (rather than on the plan) is what lets one CompiledQuery
  /// execute on many threads with different parameters simultaneously.
  const std::vector<ScalarValue>* params = nullptr;
  /// Executor selection for this run (see ExecOptions). Soft-mode
  /// (trainable) runs always take the legacy path: the autograd graph must
  /// span the whole relation, not per-morsel slices.
  ExecOptions exec;
  /// Vector-search knobs for IndexTopK / FilteredIndexTopK operators
  /// (`RunOptions::vector_search`): probe budget (0 probes every cell —
  /// exact), strategy override, post-filter widening pace.
  VectorSearchOptions vector_search;
  /// Cooperative cancellation: when set, workers poll it at morsel
  /// boundaries (and the legacy executor at node boundaries) and abandon
  /// the run with `kCancelled`. Null when the run is not cancellable.
  const CancellationToken* cancel = nullptr;
  /// Test-only morsel fault hook (see `RunOptions::inject_morsel_fault`);
  /// points at storage owned by the caller for the duration of the run.
  const std::function<Status(int64_t)>* morsel_fault = nullptr;
  /// Writer handle for DML statements: `catalog` stays the run's immutable
  /// snapshot (the delta is computed against it), and the finished write is
  /// installed through here (`SharedCatalog::ApplyDmlWrite`). Null for
  /// execution APIs with no writable catalog — DML then fails cleanly.
  SharedCatalog* writer = nullptr;
  /// Batchable-UDF dispatcher (the runtime's InferenceScheduler when the
  /// query runs under a Session): batchable scalar-UDF calls route through
  /// it so concurrent queries over the same model share forward passes.
  /// Null (direct calls) for trainable runs — coalescing would entangle
  /// autograd graphs across queries — and for bare CompiledQuery users.
  UdfDispatcher* udf_dispatch = nullptr;
  /// Per-run override of every ModelEval stage's batch size
  /// (`RunOptions::model_batch_rows`); 0 keeps each stage's compiled size.
  int64_t model_batch_rows = 0;
  /// Per-query memory accounting + spill-file registry, owned by the run
  /// (`RunOptions::memory_budget_bytes > 0`); null means unlimited. The
  /// breaker kernels (Sort, hash-join build, Aggregate finalize) account
  /// their materializations here and switch to their spill-to-disk paths
  /// when over budget — bit-identical results either way.
  QueryMemory* memory = nullptr;
  /// Per-plan scratch/primitive cache owned by the CompiledQuery (null for
  /// bare kernel callers): fused filter+project programs and reusable join
  /// build sides live here, so repeated prepared-statement runs stop
  /// re-deriving per-run state that only depends on the plan and the
  /// (immutable) input tables. Internally synchronized; entries are keyed
  /// so every run — any device, params, or data version — stays correct.
  PrimitiveCache* primitive_cache = nullptr;
};

/// OK while `ctx`'s run is live; `kCancelled` once its token has been
/// cancelled (client disconnect, cursor close, timeout). Polled at morsel
/// boundaries by the streaming executor and at node boundaries by the
/// legacy one.
inline Status CheckCancel(const ExecContext& ctx) {
  if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
    return Status::Cancelled("query run cancelled");
  }
  return Status::OK();
}

/// Executes a bound plan subtree, materializing its result chunk. Each
/// node lowers to a tensor program on `ctx.device` (TQP-style compiled
/// operators): filters become boolean-mask kernels, aggregates become
/// grouped reductions, joins hash tensor-encoded keys, and so on.
///
/// Execution is chunk-at-a-time (one materialized `Chunk` per node, no
/// row-at-a-time iteration) and morsel-parallel: the per-row loops inside
/// an operator shard across the process-wide `ThreadPool`, gated by the
/// `TDP_NUM_THREADS` environment variable. Results are deterministic for
/// every thread count — floating-point aggregate accumulation folds
/// fixed-size row blocks whose boundaries depend only on the row count.
///
/// Errors (missing tables, schema drift since compilation, type
/// mismatches) surface as failed Status, never as crashes.
StatusOr<Chunk> ExecuteNode(const plan::LogicalNode& node,
                            const ExecContext& ctx);

/// Executes a full optimized plan with the executor selected by
/// `ctx.exec`: the morsel-driven streaming pipelines of `pipelines`
/// (default), or the legacy whole-relation recursion (`ExecuteNode`) when
/// `ctx.exec.streaming` is false or the run is in soft (trainable) mode.
/// `pipelines` must have been built from `root` (see
/// `plan::BuildPipelines`); results are bit-identical between the two
/// executors at any thread count and morsel size.
StatusOr<Chunk> ExecutePlan(const plan::LogicalNode& root,
                            const plan::PipelinePlan& pipelines,
                            const ExecContext& ctx);

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_OPERATORS_H_
