#include "src/exec/result_cursor.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "src/common/thread_pool.h"
#include "src/exec/compiled_query.h"
#include "src/exec/operators.h"
#include "src/exec/streaming.h"

namespace tdp {
namespace exec {

ResultCursor::ResultCursor(std::shared_ptr<const CompiledQuery> query,
                           RunOptions options,
                           std::shared_ptr<const Catalog> snapshot)
    : query_(std::move(query)),
      options_(std::move(options)),
      snapshot_(std::move(snapshot)),
      run_cancel_(options_.cancel),
      capacity_(options_.cursor_queue_chunks > 0
                    ? options_.cursor_queue_chunks
                    : std::max<size_t>(2, static_cast<size_t>(
                                              ThreadPool::Global()
                                                  .num_threads()))) {}

ResultCursor::~ResultCursor() { Close(); }

void ResultCursor::Start() {
  producer_ = std::thread([this] { Produce(); });
}

void ResultCursor::Produce() {
  ExecContext ctx =
      query_->MakeContext(options_, snapshot_.get(), &run_cancel_);
  // Budgeted run: the spill registry's lifetime is this producer body, so
  // cancellation or an early Close() (which joins the producer) releases
  // every spill temp file before Close() returns — not at some later
  // destructor. ReleaseSpillFiles() below makes the cleanup eager even
  // though the local's destructor would also do it.
  std::optional<QueryMemory> memory;
  if (options_.memory_budget_bytes > 0) {
    memory.emplace(options_.memory_budget_bytes);
    ctx.memory = &*memory;
  }
  Status status;
  if (!ctx.exec.streaming || ctx.soft_mode) {
    // Legacy / soft runs have no streaming pipelines: materialize the
    // whole result, then hand it over as a single chunk.
    StatusOr<Chunk> out = ExecuteNode(query_->plan(), ctx);
    status = out.ok() ? Push(std::move(out).value()) : out.status();
  } else {
    status = ExecuteStreamingToSink(
        query_->pipelines(), ctx,
        [this](Chunk chunk) { return Push(std::move(chunk)); });
  }
  if (memory.has_value()) memory->ReleaseSpillFiles();
  std::lock_guard<std::mutex> lock(mu_);
  if (!status.ok()) status_ = std::move(status);
  done_ = true;
  not_empty_.notify_all();
}

Status ResultCursor::Push(Chunk chunk) {
  std::unique_lock<std::mutex> lock(mu_);
  // Timed wait: a caller-shared CancellationToken can flip without anyone
  // notifying this cursor's condition variable, so a backpressure-blocked
  // producer re-checks it every few milliseconds.
  while (queue_.size() >= capacity_ && !closed_ && !run_cancel_.cancelled()) {
    not_full_.wait_for(lock, std::chrono::milliseconds(10));
  }
  if (closed_ || run_cancel_.cancelled()) {
    return Status::Cancelled("query run cancelled");
  }
  queue_.push_back(std::move(chunk));
  chunks_produced_.fetch_add(1, std::memory_order_relaxed);
  not_empty_.notify_one();
  return Status::OK();
}

StatusOr<std::optional<Chunk>> ResultCursor::Next() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return !queue_.empty() || done_ || closed_; });
  if (closed_) return Status::Cancelled("result cursor closed");
  if (!queue_.empty()) {
    Chunk chunk = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return std::optional<Chunk>(std::move(chunk));
  }
  // Producer finished: surface its error verbatim (and repeatably) — a
  // mid-stream failure must never read as a clean end of stream.
  if (!status_.ok()) return status_;
  return std::optional<Chunk>();
}

void ResultCursor::Close() {
  // close_mu_ serializes concurrent Close() calls (including the
  // destructor's): every caller returns only after the producer has been
  // joined, so chunks_produced() is frozen once any Close() returns.
  std::lock_guard<std::mutex> close_lock(close_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  run_cancel_.Cancel();
  not_full_.notify_all();
  not_empty_.notify_all();
  if (producer_.joinable()) producer_.join();
  std::lock_guard<std::mutex> lock(mu_);
  queue_.clear();
}

}  // namespace exec
}  // namespace tdp
