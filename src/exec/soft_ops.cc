#include "src/exec/soft_ops.h"

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace exec {

Tensor SoftCount(const Tensor& probs) {
  TDP_CHECK_EQ(probs.dim(), 2) << "PE tensor must be [rows, classes]";
  return Sum(probs, /*dim=*/0, /*keepdim=*/false);
}

StatusOr<SoftGroupByResult> SoftGroupByCount(const std::vector<Column>& keys) {
  if (keys.empty()) {
    return Status::InvalidArgument("soft group-by needs at least one key");
  }
  for (const Column& key : keys) {
    if (key.encoding() != Encoding::kProbability) {
      return Status::TypeError(
          "soft group-by requires Probability-Encoded keys; re-encode with "
          "PEEncoding or compile without TRAINABLE");
    }
  }
  const int64_t rows = keys[0].length();
  for (const Column& key : keys) {
    if (key.length() != rows) {
      return Status::ExecutionError("PE key row counts differ");
    }
  }

  // joint [n, K]: running product distribution over the cartesian domain.
  Tensor joint = keys[0].data();
  int64_t combos = joint.size(1);
  for (size_t j = 1; j < keys.size(); ++j) {
    const Tensor& next = keys[j].data();
    const int64_t k = next.size(1);
    // [n, K, 1] x [n, 1, k] -> [n, K, k] -> [n, K*k]
    joint = Reshape(BMM(Unsqueeze(joint, 2), Unsqueeze(next, 1)),
                    {rows, combos * k});
    combos *= k;
  }

  SoftGroupByResult result;
  result.counts = SoftCount(joint);

  // Enumerate the cartesian product of domains, row-major.
  int64_t repeat_inner = combos;
  for (const Column& key : keys) {
    const std::vector<double>& domain = key.domain();
    const int64_t k = static_cast<int64_t>(domain.size());
    repeat_inner /= k;
    Tensor values =
        Tensor::Empty({combos}, DType::kFloat32, result.counts.device());
    float* vp = values.data<float>();
    for (int64_t i = 0; i < combos; ++i) {
      vp[i] = static_cast<float>(domain[static_cast<size_t>(
          (i / repeat_inner) % k)]);
    }
    result.key_values.push_back(std::move(values));
  }
  return result;
}

Tensor SoftFilterWeights(const Tensor& scores) {
  TDP_CHECK_EQ(scores.dim(), 1);
  return Clamp(scores, 0.0, 1.0);
}

Tensor SoftWeightedCount(const Tensor& probs, const Tensor& weights) {
  TDP_CHECK_EQ(probs.dim(), 2);
  TDP_CHECK_EQ(weights.dim(), 1);
  TDP_CHECK_EQ(probs.size(0), weights.numel());
  return Sum(Mul(probs, Unsqueeze(weights, 1)), /*dim=*/0,
             /*keepdim=*/false);
}

}  // namespace exec
}  // namespace tdp
