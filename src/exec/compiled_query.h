#ifndef TDP_EXEC_COMPILED_QUERY_H_
#define TDP_EXEC_COMPILED_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/exec/operators.h"
#include "src/exec/primitive_cache.h"
#include "src/exec/result_cursor.h"
#include "src/exec/run_options.h"
#include "src/nn/module.h"
#include "src/plan/logical_plan.h"
#include "src/plan/pipeline.h"
#include "src/storage/catalog.h"

namespace tdp {
namespace exec {

/// A SQL statement compiled to a tensor program — TDP's analogue of the
/// PyTorch model object returned by `tdp.sql.spark.query(...)` (§2 of the
/// paper). Like a model, it can be:
///   - executed (`Run()` materializes, `Open()` streams), on whichever
///     device it was compiled for, with all per-run state — `?` parameter
///     bindings, executor/morsel selection, training-mode override,
///     cancellation — carried by a `RunOptions` value per call;
///   - embedded in a training loop: `Parameters()` exposes every trainable
///     tensor reachable through the UDFs/TVFs in the plan, and when
///     compiled TRAINABLE the plan uses differentiable soft operators so
///     gradients flow from the result back into those parameters;
///   - inspected (`Explain()`).
///
/// Tables are re-resolved from a fresh catalog snapshot at each run, so
/// re-registering an input table re-runs the same compiled query on fresh
/// data.
///
/// Thread safety: a CompiledQuery is fully immutable after compilation —
/// there are no post-compilation setters — and every run carries its own
/// `RunOptions` + catalog snapshot, so one shared instance (e.g. from the
/// session plan cache) may be executed by any number of threads with
/// conflicting per-run options simultaneously.
class CompiledQuery : public std::enable_shared_from_this<CompiledQuery> {
 public:
  /// `catalog` is non-const: every run snapshots it for reads, and DML
  /// plans additionally install their write through it (the ExecContext
  /// `writer` handle). Read-only statements never touch the writer.
  ///
  /// `udf_dispatch` (optional, must outlive the query — Session passes the
  /// process-wide InferenceScheduler) routes batchable scalar-UDF calls
  /// through a shared dispatcher so concurrent queries over the same model
  /// coalesce forward passes. Trainable queries never use it, even when
  /// set: cross-query batching would entangle autograd graphs.
  CompiledQuery(plan::LogicalNodePtr plan,
                std::shared_ptr<SharedCatalog> catalog, Device device,
                bool trainable, UdfDispatcher* udf_dispatch = nullptr);

  CompiledQuery(const CompiledQuery&) = delete;
  CompiledQuery& operator=(const CompiledQuery&) = delete;

  /// Executes the plan and materializes the result — a thin drain of the
  /// same streaming executor `Open()` exposes incrementally.
  StatusOr<std::shared_ptr<Table>> Run(const RunOptions& options) const;
  /// Convenience overload: default options with `params` bound.
  StatusOr<std::shared_ptr<Table>> Run(
      const std::vector<ScalarValue>& params = {}) const;

  /// Executes the plan, returning the raw column chunk (tensor access —
  /// training loops read the differentiable count column from here).
  StatusOr<Chunk> RunChunk(const RunOptions& options) const;
  StatusOr<Chunk> RunChunk(const std::vector<ScalarValue>& params = {}) const;

  /// Opens a pull-based streaming cursor over this run's result: the
  /// final pipeline's chunks arrive through `ResultCursor::Next()` as
  /// they are produced (bounded queue, backpressure), while upstream
  /// breaker pipelines materialize exactly as under `Run()`. Closing or
  /// dropping the cursor cancels production at the next morsel boundary.
  /// Fails fast on a parameter-count mismatch. Requires the query to be
  /// owned by `std::shared_ptr` (Session::Query/Prepare return one): the
  /// cursor keeps the plan alive for the producer's lifetime.
  StatusOr<std::unique_ptr<ResultCursor>> Open(RunOptions options = {}) const;

  /// Number of `?` placeholders in the statement.
  int64_t num_params() const { return num_params_; }

  /// All trainable parameters of modules referenced by the plan's
  /// UDFs/TVFs — pass to an optimizer, per Listing 5 of the paper.
  std::vector<Tensor> Parameters() const;

  /// The nn::Modules referenced by the plan (e.g. to extract a trained
  /// digit_parser for reuse, §5.5 Experiment 2).
  const std::vector<std::shared_ptr<nn::Module>>& Modules() const {
    return modules_;
  }

  bool trainable() const { return trainable_; }

  Device device() const { return device_; }

  /// The plan-lifetime cache of execution primitives (fused
  /// filter+project programs, reusable join build sides). Exposed for
  /// tests asserting hit/miss and invalidation behaviour.
  PrimitiveCache& primitive_cache() const { return *primitive_cache_; }

  /// EXPLAIN-style plan rendering.
  std::string Explain() const { return plan_->ToString(); }

  /// EXPLAIN PIPELINES: how the streaming executor groups this plan into
  /// morsel pipelines and breakers.
  std::string ExplainPipelines() const { return pipelines_.ToString(); }

  const plan::LogicalNode& plan() const { return *plan_; }
  const plan::PipelinePlan& pipelines() const { return pipelines_; }

 private:
  friend class ResultCursor;

  /// `params.size() == num_params()` or an InvalidArgument status.
  Status ValidateParams(const std::vector<ScalarValue>& params) const;

  /// Builds the per-run ExecContext over `options` and `snapshot`; the
  /// referenced storage (options, snapshot, cancel) must outlive the run.
  ExecContext MakeContext(const RunOptions& options, const Catalog* snapshot,
                          const CancellationToken* cancel) const;

  StatusOr<Chunk> RunChunkInternal(const std::vector<ScalarValue>& params,
                                   const RunOptions& options) const;

  plan::LogicalNodePtr plan_;
  plan::PipelinePlan pipelines_;  // built once; references plan_ nodes
  std::shared_ptr<SharedCatalog> catalog_;
  Device device_;
  bool trainable_;
  UdfDispatcher* udf_dispatch_ = nullptr;
  int64_t num_params_ = 0;
  std::vector<std::shared_ptr<nn::Module>> modules_;
  /// Mutable run-shared state behind the otherwise-immutable query object;
  /// the cache synchronizes internally and its entries are keyed by data
  /// identity, so concurrent runs with conflicting options stay exact.
  std::unique_ptr<PrimitiveCache> primitive_cache_ =
      std::make_unique<PrimitiveCache>();
};

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_COMPILED_QUERY_H_
