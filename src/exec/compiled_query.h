#ifndef TDP_EXEC_COMPILED_QUERY_H_
#define TDP_EXEC_COMPILED_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/exec/operators.h"
#include "src/nn/module.h"
#include "src/plan/logical_plan.h"
#include "src/plan/pipeline.h"
#include "src/storage/catalog.h"

namespace tdp {
namespace exec {

/// A SQL statement compiled to a tensor program — TDP's analogue of the
/// PyTorch model object returned by `tdp.sql.spark.query(...)` (§2 of the
/// paper). Like a model, it can be:
///   - executed (`Run()`), on whichever device it was compiled for, with
///     per-run values for any `?` placeholders (prepared statements);
///   - embedded in a training loop: `Parameters()` exposes every trainable
///     tensor reachable through the UDFs/TVFs in the plan, and when
///     compiled TRAINABLE the plan uses differentiable soft operators so
///     gradients flow from the result back into those parameters;
///   - inspected (`Explain()`).
///
/// Tables are re-resolved from a fresh catalog snapshot at each Run(), so
/// re-registering an input table re-runs the same compiled query on fresh
/// data.
///
/// Thread safety: the plan is immutable after compilation and every run
/// carries its own ExecContext (catalog snapshot + parameter bindings), so
/// a single CompiledQuery may be executed by many threads concurrently.
/// The exception is `set_training_mode`, which must not race with runs.
class CompiledQuery {
 public:
  CompiledQuery(plan::LogicalNodePtr plan,
                std::shared_ptr<const SharedCatalog> catalog, Device device,
                bool trainable);

  CompiledQuery(const CompiledQuery&) = delete;
  CompiledQuery& operator=(const CompiledQuery&) = delete;

  /// Executes the plan and materializes the result. `params` binds the
  /// statement's `?` placeholders in lexical order and must match
  /// `num_params()` exactly.
  StatusOr<std::shared_ptr<Table>> Run(
      const std::vector<ScalarValue>& params = {}) const;
  /// Executes the plan, returning the raw column chunk (tensor access —
  /// training loops read the differentiable count column from here).
  StatusOr<Chunk> RunChunk(const std::vector<ScalarValue>& params = {}) const;

  /// Number of `?` placeholders in the statement.
  int64_t num_params() const { return num_params_; }

  /// All trainable parameters of modules referenced by the plan's
  /// UDFs/TVFs — pass to an optimizer, per Listing 5 of the paper.
  std::vector<Tensor> Parameters() const;

  /// The nn::Modules referenced by the plan (e.g. to extract a trained
  /// digit_parser for reuse, §5.5 Experiment 2).
  const std::vector<std::shared_ptr<nn::Module>>& Modules() const {
    return modules_;
  }

  bool trainable() const { return trainable_; }

  /// For TRAINABLE queries: true (default) runs soft differentiable
  /// operators; set false to swap in the exact operators for inference
  /// ("at inference time, we swap the approximate differentiable operators
  /// with exact implementations", §4).
  void set_training_mode(bool training) { training_mode_ = training; }
  bool training_mode() const { return training_mode_; }

  Device device() const { return device_; }

  /// Executor selection + morsel sizing for this query's runs. Like
  /// `set_training_mode`, must not race with concurrent `Run` calls — set
  /// it right after compilation, before the query is shared. The default
  /// (streaming, `TDP_MORSEL_ROWS` morsels) is right for serving; tests
  /// flip `streaming` off to differential-test the two executors.
  void set_exec_options(const ExecOptions& options) { exec_options_ = options; }
  const ExecOptions& exec_options() const { return exec_options_; }

  /// EXPLAIN-style plan rendering.
  std::string Explain() const { return plan_->ToString(); }

  /// EXPLAIN PIPELINES: how the streaming executor groups this plan into
  /// morsel pipelines and breakers.
  std::string ExplainPipelines() const { return pipelines_.ToString(); }

  const plan::LogicalNode& plan() const { return *plan_; }
  const plan::PipelinePlan& pipelines() const { return pipelines_; }

 private:
  plan::LogicalNodePtr plan_;
  plan::PipelinePlan pipelines_;  // built once; references plan_ nodes
  std::shared_ptr<const SharedCatalog> catalog_;
  Device device_;
  bool trainable_;
  bool training_mode_;
  ExecOptions exec_options_;
  int64_t num_params_ = 0;
  std::vector<std::shared_ptr<nn::Module>> modules_;
};

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_COMPILED_QUERY_H_
