#include "src/exec/operators.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/string_util.h"
#include "src/common/thread_pool.h"
#include "src/exec/bound_expr.h"
#include "src/exec/fused_filter_project.h"
#include "src/exec/operator_kernels.h"
#include "src/exec/primitive_cache.h"
#include "src/exec/soft_ops.h"
#include "src/exec/spill_kernels.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace exec {
namespace {

using plan::AggDef;
using plan::AggKind;
using plan::AggregateNode;
using plan::DistinctNode;
using plan::FilterNode;
using plan::JoinNode;
using plan::LimitNode;
using plan::LogicalNode;
using plan::ProjectNode;
using plan::ScanNode;
using plan::SortNode;
using plan::TvfScanNode;

/// Expression-evaluation options for one run: the device, the `?`
/// bindings, and the batchable-UDF dispatch seam (scheduler + token).
EvalOptions EvalOpts(const ExecContext& ctx) {
  EvalOptions opts;
  opts.device = ctx.device;
  opts.params = ctx.params;
  opts.udf_dispatch = ctx.udf_dispatch;
  opts.cancel = ctx.cancel;
  return opts;
}

}  // namespace

// ---- Key normalization ------------------------------------------------------
//
// Grouping / joining / distinct all need a per-row integer code whose
// equality (and order) agrees with value equality (and order). Dictionary
// columns already are codes; numeric columns are ranked through Unique.
// Exported (operator_kernels.h) for the spill kernels, which must derive
// the same key equivalences page by page.

StatusOr<std::vector<int64_t>> ColumnToCodes(const Column& column) {
  switch (column.encoding()) {
    case Encoding::kDictionary:
      return column.data().ToVector<int64_t>();
    case Encoding::kProbability: {
      // Hard-decode, then rank.
      const Column hard = Column::Plain(column.DecodeValues());
      return ColumnToCodes(hard);
    }
    case Encoding::kPlain: {
      const Tensor& data = column.data();
      if (data.dim() != 1) {
        return Status::TypeError(
            "tensor-valued columns cannot be grouping/join keys");
      }
      if (data.dtype() == DType::kInt64) return data.ToVector<int64_t>();
      if (data.dtype() == DType::kBool) {
        return data.To(DType::kInt64).ToVector<int64_t>();
      }
      // Rank values through Unique so float equality becomes code equality.
      const UniqueResult uniq = Unique(data.Detach());
      return uniq.inverse.ToVector<int64_t>();
    }
  }
  return Status::Internal("unknown encoding");
}

// Normalized per-row join keys for one side: strings hash decoded values
// (FNV-1a 64 over short strings — collisions astronomically unlikely,
// accepted here), numerics use value bit patterns via doubles (with -0
// normalized) so keys are code-compatible across sides. Purely row-local,
// so morsel-wise evaluation matches whole-relation evaluation exactly.
StatusOr<std::vector<std::vector<int64_t>>> JoinRowKeys(
    const Chunk& chunk, const std::vector<int64_t>& cols) {
  std::vector<std::vector<int64_t>> keys(
      static_cast<size_t>(chunk.num_rows()),
      std::vector<int64_t>(cols.size()));
  for (size_t k = 0; k < cols.size(); ++k) {
    const Column& c = chunk.columns[static_cast<size_t>(cols[k])];
    if (c.encoding() == Encoding::kDictionary) {
      const std::vector<std::string> strs = c.DecodeStrings();
      ParallelFor(0, static_cast<int64_t>(strs.size()), GrainForCost(16),
                  [&keys, &strs, k](int64_t row_begin, int64_t row_end) {
                    for (int64_t r = row_begin; r < row_end; ++r) {
                      uint64_t h = 0xcbf29ce484222325ull;
                      for (char ch : strs[static_cast<size_t>(r)]) {
                        h ^= static_cast<unsigned char>(ch);
                        h *= 0x100000001b3ull;
                      }
                      keys[static_cast<size_t>(r)][k] =
                          static_cast<int64_t>(h);
                    }
                  });
    } else {
      const Tensor vals = c.DecodeValues();
      if (vals.dim() != 1) {
        return Status::TypeError("join key must be a scalar column");
      }
      const std::vector<double> d = vals.To(DType::kFloat64).ToVector<double>();
      ParallelFor(0, static_cast<int64_t>(d.size()), GrainForCost(2),
                  [&keys, &d, k](int64_t row_begin, int64_t row_end) {
                    for (int64_t r = row_begin; r < row_end; ++r) {
                      int64_t bits;
                      const double dv =
                          d[static_cast<size_t>(r)] == 0.0
                              ? 0.0
                              : d[static_cast<size_t>(r)];  // normalize -0
                      static_assert(sizeof(bits) == sizeof(dv));
                      std::memcpy(&bits, &dv, sizeof(bits));
                      keys[static_cast<size_t>(r)][k] = bits;
                    }
                  });
    }
  }
  return keys;
}

// ---- Scan -------------------------------------------------------------------

StatusOr<Chunk> ExecuteScan(const ScanNode& node, const ExecContext& ctx) {
  TDP_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                       ctx.catalog->GetTable(node.table_name));
  // The catalog may hold a newer registration of this table (training
  // loops re-register inputs); validate it still matches the bound schema.
  // Downstream expressions read columns by position, so both the count and
  // the per-position names must still agree — a reordered/renamed
  // re-registration has to fail loudly, never silently read wrong data.
  Chunk chunk;
  if (node.projected_columns.empty()) {
    if (static_cast<size_t>(table->num_columns()) != node.schema.size()) {
      return Status::ExecutionError(
          "table " + node.table_name +
          " changed shape since compilation; re-compile the query");
    }
    for (size_t i = 0; i < node.schema.size(); ++i) {
      if (!EqualsIgnoreCase(table->column_names()[i], node.schema[i].name)) {
        return Status::ExecutionError(
            "table " + node.table_name + " column " + std::to_string(i) +
            " is now '" + table->column_names()[i] +
            "' (compiled against '" + node.schema[i].name +
            "'); re-compile the query");
      }
    }
    chunk = Chunk::FromTable(*table);
  } else {
    for (size_t k = 0; k < node.projected_columns.size(); ++k) {
      const int64_t i = node.projected_columns[k];
      if (i >= table->num_columns()) {
        return Status::ExecutionError(
            "table " + node.table_name +
            " changed shape since compilation; re-compile the query");
      }
      const std::string& name =
          table->column_names()[static_cast<size_t>(i)];
      if (!EqualsIgnoreCase(name, node.schema[k].name)) {
        return Status::ExecutionError(
            "table " + node.table_name + " column " + std::to_string(i) +
            " is now '" + name + "' (compiled against '" +
            node.schema[k].name + "'); re-compile the query");
      }
      chunk.names.push_back(name);
      chunk.columns.push_back(table->column(i));
    }
  }
  // Move data to the execution device if the table lives elsewhere. The
  // transfer copies every column, so repeated prepared-statement runs keep
  // the moved columns in the per-plan cache, keyed by table identity —
  // DML installs a fresh Table object, which misses and re-transfers.
  // Sharing the cached copy across runs aliases no more than the
  // same-device path below, which hands out the table's own columns.
  bool needs_move = false;
  for (const Column& c : chunk.columns) {
    if (c.data().device() != ctx.device) {
      needs_move = true;
      break;
    }
  }
  if (!needs_move) return chunk;
  if (ctx.primitive_cache != nullptr) {
    std::shared_ptr<const Table> key = table;
    if (auto cached = ctx.primitive_cache->LookupScan(&node, key, ctx.device)) {
      chunk.columns = *cached;
      return chunk;
    }
    for (Column& c : chunk.columns) {
      if (c.data().device() != ctx.device) c = c.To(ctx.device);
    }
    ctx.primitive_cache->StoreScan(
        &node, std::move(key), ctx.device,
        std::make_shared<const std::vector<Column>>(chunk.columns));
    return chunk;
  }
  for (Column& c : chunk.columns) {
    if (c.data().device() != ctx.device) c = c.To(ctx.device);
  }
  return chunk;
}

StatusOr<Chunk> ExecuteTvfScan(const TvfScanNode& node, Chunk input,
                               const ExecContext& ctx) {
  for (Column& c : input.columns) {
    if (c.data().device() != ctx.device) c = c.To(ctx.device);
  }
  TDP_ASSIGN_OR_RETURN(Chunk out, node.fn->fn(input, node.args, ctx.device));
  if (out.names.size() != node.fn->output_schema.size()) {
    return Status::ExecutionError(
        "TVF " + node.fn->name + " returned " +
        std::to_string(out.names.size()) + " columns, declared " +
        std::to_string(node.fn->output_schema.size()));
  }
  return out;
}

// ---- Filter / Project -------------------------------------------------------

StatusOr<Chunk> ExecuteFilter(const FilterNode& node, const Chunk& input,
                              const ExecContext& ctx) {
  TDP_ASSIGN_OR_RETURN(
      Tensor mask,
      EvaluatePredicate(*node.predicate, input, EvalOpts(ctx)));
  if (mask.numel() != input.num_rows()) {
    return Status::ExecutionError("predicate mask length mismatch");
  }
  return input.Select(NonZero(mask));
}

StatusOr<Chunk> ExecuteProject(const ProjectNode& node, const Chunk& input,
                               const ExecContext& ctx) {
  Chunk out;
  for (size_t i = 0; i < node.exprs.size(); ++i) {
    TDP_ASSIGN_OR_RETURN(
        Column c,
        EvaluateExprToColumn(*node.exprs[i], input, EvalOpts(ctx)));
    out.names.push_back(node.schema[i].name);
    out.columns.push_back(std::move(c));
  }
  return out;
}

// ---- ModelEval (streaming micro-batch model evaluation) ---------------------

StatusOr<Chunk> ExecuteModelEval(const plan::ModelEvalNode& node,
                                 const Chunk& morsel, const ExecContext& ctx) {
  TDP_CHECK(node.wrapped != nullptr);
  const auto run_wrapped = [&](const Chunk& batch) -> StatusOr<Chunk> {
    switch (node.wrapped->kind) {
      case plan::NodeKind::kFilter:
        return ExecuteFilter(static_cast<const FilterNode&>(*node.wrapped),
                             batch, ctx);
      case plan::NodeKind::kProject:
        return ExecuteProject(static_cast<const ProjectNode&>(*node.wrapped),
                              batch, ctx);
      case plan::NodeKind::kTvfScan:
        return ExecuteTvfScan(static_cast<const TvfScanNode&>(*node.wrapped),
                              batch, ctx);
      default:
        return Status::Internal("ModelEval wraps unsupported operator: " +
                                node.wrapped->Describe());
    }
  };
  const int64_t batch_rows = std::max<int64_t>(
      ctx.model_batch_rows > 0 ? ctx.model_batch_rows : node.batch_rows, 1);
  const int64_t rows = morsel.num_rows();
  // Zero or one batch: a single direct call, exactly what the breaker path
  // would have done with this input (empty inputs included — TVF bodies
  // already handle 0-row chunks on the materialized path).
  if (rows <= batch_rows) return run_wrapped(morsel);
  std::vector<Chunk> outputs;
  outputs.reserve(static_cast<size_t>((rows + batch_rows - 1) / batch_rows));
  for (int64_t start = 0; start < rows; start += batch_rows) {
    TDP_RETURN_NOT_OK(CheckCancel(ctx));
    const int64_t count = std::min(batch_rows, rows - start);
    TDP_ASSIGN_OR_RETURN(Chunk out,
                         run_wrapped(morsel.SliceRows(start, count)));
    outputs.push_back(std::move(out));
  }
  // Slice-order reassembly: row-locality of batchable bodies makes this
  // concatenation bit-identical to one whole-morsel evaluation.
  return Chunk::Concat(outputs);
}

// ---- Aggregate --------------------------------------------------------------

StatusOr<AggInputs> EvaluateAggInputs(const AggregateNode& node,
                                      const Chunk& input,
                                      const ExecContext& ctx) {
  AggInputs out;
  out.rows = input.num_rows();
  out.key_columns.reserve(node.group_exprs.size());
  for (const auto& expr : node.group_exprs) {
    TDP_ASSIGN_OR_RETURN(
        Column key,
        EvaluateExprToColumn(*expr, input, EvalOpts(ctx)));
    out.key_columns.push_back(std::move(key));
  }
  out.arg_columns.reserve(node.aggregates.size());
  for (const AggDef& def : node.aggregates) {
    if (def.arg) {
      TDP_ASSIGN_OR_RETURN(
          Column arg,
          EvaluateExprToColumn(*def.arg, input, EvalOpts(ctx)));
      out.arg_columns.push_back(std::move(arg));
    } else {
      out.arg_columns.emplace_back();
    }
  }
  return out;
}

AggInputs MergeAggInputs(const std::vector<const AggInputs*>& parts) {
  TDP_CHECK(!parts.empty());
  if (parts.size() == 1) return *parts[0];
  AggInputs out;
  std::vector<Column> column_parts(parts.size());
  const size_t num_keys = parts[0]->key_columns.size();
  out.key_columns.reserve(num_keys);
  for (size_t k = 0; k < num_keys; ++k) {
    for (size_t p = 0; p < parts.size(); ++p) {
      column_parts[p] = parts[p]->key_columns[k];
    }
    out.key_columns.push_back(Column::Concat(column_parts));
  }
  const size_t num_args = parts[0]->arg_columns.size();
  out.arg_columns.reserve(num_args);
  for (size_t a = 0; a < num_args; ++a) {
    if (!parts[0]->arg_columns[a].defined()) {
      out.arg_columns.emplace_back();
      continue;
    }
    for (size_t p = 0; p < parts.size(); ++p) {
      column_parts[p] = parts[p]->arg_columns[a];
    }
    out.arg_columns.push_back(Column::Concat(column_parts));
  }
  for (const AggInputs* p : parts) out.rows += p->rows;
  return out;
}

StatusOr<Chunk> FinalizeAggregate(const AggregateNode& node,
                                  const AggInputs& inputs,
                                  const ExecContext& ctx) {
  const int64_t rows = inputs.rows;

  // Scratch this kernel materializes beyond the (caller-owned) evaluated
  // inputs: key codes, argument doubles, distinct codes, and the per-row
  // group array. Over budget -> the paged two-pass path, bit-identical.
  if (ctx.memory != nullptr && !ctx.soft_mode && rows > 0) {
    const int64_t scratch =
        rows * 8 *
        static_cast<int64_t>(inputs.key_columns.size() +
                             node.aggregates.size() + 2);
    if (ctx.memory->ShouldSpill(scratch)) {
      return SpilledFinalizeAggregate(node, inputs, ctx);
    }
  }
  const ScopedReservation reservation(
      ctx.memory,
      rows * 8 *
          static_cast<int64_t>(inputs.key_columns.size() +
                               node.aggregates.size() + 2));

  std::vector<std::vector<int64_t>> key_codes;
  key_codes.reserve(inputs.key_columns.size());
  for (const Column& key : inputs.key_columns) {
    TDP_ASSIGN_OR_RETURN(std::vector<int64_t> codes, ColumnToCodes(key));
    key_codes.push_back(std::move(codes));
  }

  // Assign group ids; order groups lexicographically by key codes (codes
  // are order-preserving, so this sorts by value).
  std::map<std::vector<int64_t>, int64_t> group_ids;
  std::vector<int64_t> row_group(static_cast<size_t>(rows));
  std::vector<int64_t> key(key_codes.size());
  for (int64_t r = 0; r < rows; ++r) {
    for (size_t k = 0; k < key_codes.size(); ++k) {
      key[k] = key_codes[k][static_cast<size_t>(r)];
    }
    auto [it, inserted] = group_ids.emplace(key, 0);
    (void)inserted;
    row_group[static_cast<size_t>(r)] = 0;  // filled after renumbering
  }
  // Renumber in sorted order and record a representative row per group.
  int64_t next_id = 0;
  for (auto& [unused_key, id] : group_ids) id = next_id++;
  const int64_t num_groups =
      node.group_exprs.empty() ? 1 : next_id;
  std::vector<int64_t> representative(
      static_cast<size_t>(std::max<int64_t>(num_groups, 1)), -1);
  // Group-id lookups are read-only on the finished map, so the per-row
  // assignment shards across the pool; the representative (first row of
  // each group) is recovered serially afterwards.
  const auto& frozen_group_ids = group_ids;
  ParallelFor(0, rows, GrainForCost(8), [&](int64_t row_begin,
                                            int64_t row_end) {
    std::vector<int64_t> local_key(key_codes.size());
    for (int64_t r = row_begin; r < row_end; ++r) {
      int64_t gid = 0;
      if (!node.group_exprs.empty()) {
        for (size_t k = 0; k < key_codes.size(); ++k) {
          local_key[k] = key_codes[k][static_cast<size_t>(r)];
        }
        gid = frozen_group_ids.at(local_key);
      }
      row_group[static_cast<size_t>(r)] = gid;
    }
  });
  for (int64_t r = 0; r < rows; ++r) {
    const size_t gid = static_cast<size_t>(row_group[static_cast<size_t>(r)]);
    if (representative[gid] < 0) representative[gid] = r;
  }

  Chunk out;

  // Group key output columns: representative rows of the key columns
  // (PE keys are hard-decoded — the exact operator swap of §4).
  if (!node.group_exprs.empty()) {
    Tensor rep = Tensor::Empty({num_groups}, DType::kInt64, ctx.device);
    int64_t* rp = rep.data<int64_t>();
    for (int64_t g = 0; g < num_groups; ++g) {
      rp[g] = representative[static_cast<size_t>(g)];
    }
    for (size_t k = 0; k < inputs.key_columns.size(); ++k) {
      Column key_col = inputs.key_columns[k];
      if (key_col.encoding() == Encoding::kProbability) {
        key_col = Column::Plain(key_col.DecodeValues());
      }
      out.names.push_back(node.group_names[k]);
      out.columns.push_back(key_col.Select(rep));
    }
  }

  // Aggregates.
  for (size_t def_index = 0; def_index < node.aggregates.size(); ++def_index) {
    const AggDef& def = node.aggregates[def_index];
    std::vector<double> acc(static_cast<size_t>(num_groups), 0.0);
    std::vector<int64_t> counts(static_cast<size_t>(num_groups), 0);

    std::vector<double> arg_values;
    std::vector<int64_t> arg_codes;  // for DISTINCT
    if (def.arg) {
      const Column& arg_col = inputs.arg_columns[def_index];
      if (arg_col.encoding() == Encoding::kDictionary &&
          def.kind != AggKind::kCount) {
        return Status::TypeError("cannot " +
                                 std::string(plan::AggKindName(def.kind)) +
                                 " a string column");
      }
      const Tensor values = arg_col.DecodeValues();
      if (values.dim() != 1) {
        return Status::TypeError("aggregate argument must be a scalar column");
      }
      arg_values = values.To(DType::kFloat64).ToVector<double>();
      if (def.distinct) {
        TDP_ASSIGN_OR_RETURN(arg_codes, ColumnToCodes(arg_col));
      }
    }

    std::vector<std::set<int64_t>> distinct_seen;
    if (def.distinct) {
      distinct_seen.resize(static_cast<size_t>(num_groups));
    }

    // Chunk-at-a-time accumulation. Rows are folded into fixed-size blocks
    // (block partials are combined in block order), so the floating-point
    // reduction tree depends only on the row count — results are identical
    // for every TDP_NUM_THREADS and every morsel size (the streaming
    // executor merges per-morsel inputs in morsel order before this
    // accumulation, re-blocking at the same fixed boundaries). DISTINCT
    // keeps per-group ordered sets and stays serial; high-cardinality
    // group-bys fall back to the serial loop rather than materializing
    // huge partial tables.
    constexpr int64_t kAggBlock = 4096;
    const int64_t num_blocks = (rows + kAggBlock - 1) / kAggBlock;
    // Parallelize only when the block merge (num_blocks * num_groups
    // entries) costs no more than the row accumulation it speeds up.
    const bool parallel_ok =
        !def.distinct && num_blocks > 1 && num_blocks * num_groups <= rows;
    auto accumulate_rows = [&](int64_t row_begin, int64_t row_end,
                               double* block_acc, int64_t* block_counts,
                               unsigned char* block_has) {
      for (int64_t r = row_begin; r < row_end; ++r) {
        const size_t g =
            static_cast<size_t>(row_group[static_cast<size_t>(r)]);
        if (def.distinct && def.arg) {
          if (!distinct_seen[g].insert(arg_codes[static_cast<size_t>(r)])
                   .second) {
            continue;
          }
        }
        const double v =
            def.arg ? arg_values[static_cast<size_t>(r)] : 0.0;
        switch (def.kind) {
          case AggKind::kCountStar:
          case AggKind::kCount:
            break;
          case AggKind::kSum:
          case AggKind::kAvg:
            block_acc[g] += v;
            break;
          case AggKind::kMin:
            block_acc[g] = block_has[g] ? std::min(block_acc[g], v) : v;
            break;
          case AggKind::kMax:
            block_acc[g] = block_has[g] ? std::max(block_acc[g], v) : v;
            break;
        }
        block_has[g] = 1;
        ++block_counts[g];
      }
    };

    std::vector<unsigned char> has_flags(static_cast<size_t>(num_groups), 0);
    if (parallel_ok) {
      std::vector<double> blk_acc(
          static_cast<size_t>(num_blocks * num_groups), 0.0);
      std::vector<int64_t> blk_counts(
          static_cast<size_t>(num_blocks * num_groups), 0);
      std::vector<unsigned char> blk_has(
          static_cast<size_t>(num_blocks * num_groups), 0);
      ParallelFor(0, num_blocks, GrainForCost(kAggBlock),
                  [&](int64_t block_begin, int64_t block_end) {
                    for (int64_t blk = block_begin; blk < block_end; ++blk) {
                      const int64_t lo = blk * kAggBlock;
                      const int64_t hi = std::min(rows, lo + kAggBlock);
                      const size_t base =
                          static_cast<size_t>(blk * num_groups);
                      accumulate_rows(lo, hi, blk_acc.data() + base,
                                      blk_counts.data() + base,
                                      blk_has.data() + base);
                    }
                  });
      for (int64_t blk = 0; blk < num_blocks; ++blk) {
        const size_t base = static_cast<size_t>(blk * num_groups);
        for (int64_t g = 0; g < num_groups; ++g) {
          const size_t ug = static_cast<size_t>(g);
          if (!blk_has[base + ug]) continue;
          switch (def.kind) {
            case AggKind::kCountStar:
            case AggKind::kCount:
              break;
            case AggKind::kSum:
            case AggKind::kAvg:
              acc[ug] += blk_acc[base + ug];
              break;
            case AggKind::kMin:
              acc[ug] = has_flags[ug] ? std::min(acc[ug], blk_acc[base + ug])
                                      : blk_acc[base + ug];
              break;
            case AggKind::kMax:
              acc[ug] = has_flags[ug] ? std::max(acc[ug], blk_acc[base + ug])
                                      : blk_acc[base + ug];
              break;
          }
          has_flags[ug] = 1;
          counts[ug] += blk_counts[base + ug];
        }
      }
    } else {
      accumulate_rows(0, rows, acc.data(), counts.data(), has_flags.data());
    }

    // Materialize the aggregate output column with the schema's dtype.
    const DType out_dtype =
        node.schema[node.group_exprs.size() + def_index].dtype;
    Tensor result = Tensor::Zeros({num_groups}, out_dtype, ctx.device);
    for (int64_t g = 0; g < num_groups; ++g) {
      const size_t ug = static_cast<size_t>(g);
      double v = 0;
      switch (def.kind) {
        case AggKind::kCountStar:
        case AggKind::kCount:
          v = static_cast<double>(counts[ug]);
          break;
        case AggKind::kSum:
          v = acc[ug];
          break;
        case AggKind::kAvg:
          v = counts[ug] > 0 ? acc[ug] / static_cast<double>(counts[ug]) : 0;
          break;
        case AggKind::kMin:
        case AggKind::kMax:
          v = acc[ug];
          break;
      }
      result.SetAt({g}, v);
    }
    out.names.push_back(def.name);
    out.columns.push_back(Column::Plain(std::move(result)));
  }
  return out;
}

namespace {

StatusOr<Chunk> ExecuteAggregate(const AggregateNode& node,
                                 const Chunk& input, const ExecContext& ctx) {
  // Soft path: trainable mode + PE keys + COUNT(*) aggregates only.
  if (ctx.soft_mode && !node.group_exprs.empty()) {
    bool all_count_star = true;
    for (const AggDef& def : node.aggregates) {
      if (def.kind != AggKind::kCountStar) all_count_star = false;
    }
    // Probe the first key's encoding to decide; PE keys require soft.
    bool keys_are_pe = true;
    std::vector<Column> probe;
    for (const auto& expr : node.group_exprs) {
      TDP_ASSIGN_OR_RETURN(
          Column key,
          EvaluateExprToColumn(*expr, input, EvalOpts(ctx)));
      if (key.encoding() != Encoding::kProbability) keys_are_pe = false;
      probe.push_back(std::move(key));
    }
    if (keys_are_pe) {
      if (!all_count_star) {
        return Status::Unimplemented(
            "trainable aggregation over PE keys supports COUNT(*) only");
      }
      TDP_ASSIGN_OR_RETURN(SoftGroupByResult soft, SoftGroupByCount(probe));
      Chunk out;
      for (size_t g = 0; g < node.group_names.size(); ++g) {
        out.names.push_back(node.group_names[g]);
        out.columns.push_back(Column::Plain(soft.key_values[g]));
      }
      for (const AggDef& def : node.aggregates) {
        out.names.push_back(def.name);
        out.columns.push_back(Column::Plain(soft.counts));
      }
      return out;
    }
    // Fall through to exact with already-evaluated keys discarded.
  }

  TDP_ASSIGN_OR_RETURN(AggInputs inputs, EvaluateAggInputs(node, input, ctx));
  return FinalizeAggregate(node, inputs, ctx);
}

}  // namespace

// ---- Join -------------------------------------------------------------------

StatusOr<JoinHashTable> BuildJoinHashTable(const JoinNode& node,
                                           Chunk build_input,
                                           const ExecContext& ctx) {
  const auto& build_key_cols =
      node.build_left ? node.left_keys : node.right_keys;
  // Over-budget equi-join builds go grace: the payload is partitioned to
  // disk and only the key -> row maps stay resident. Pure-residual joins
  // (no keys) always build in memory — their probe is a cartesian product
  // over the materialized build side.
  if (ctx.memory != nullptr && !ctx.soft_mode && !build_key_cols.empty() &&
      build_input.num_rows() > 0) {
    const int64_t footprint =
        ChunkFootprintBytes(build_input) + build_input.num_rows() * 48;
    if (ctx.memory->ShouldSpill(footprint)) {
      JoinHashTable ht;
      TDP_ASSIGN_OR_RETURN(ht.spilled,
                           BuildSpilledJoin(node, build_input, ctx));
      return ht;
    }
  }
  JoinHashTable ht;
  ht.build = std::move(build_input);
  if (!build_key_cols.empty()) {
    TDP_ASSIGN_OR_RETURN(auto build_keys,
                         JoinRowKeys(ht.build, build_key_cols));
    ht.rows.reserve(build_keys.size());
    for (size_t r = 0; r < build_keys.size(); ++r) {
      ht.rows[build_keys[r]].push_back(static_cast<int64_t>(r));
    }
  }
  return ht;
}

StatusOr<Chunk> ProbeJoin(const JoinNode& node, const JoinHashTable& ht,
                          const Chunk& probe, const ExecContext& ctx) {
  if (ht.spilled != nullptr) {
    return ProbeSpilledJoin(node, *ht.spilled, probe, ctx);
  }
  const int64_t probe_rows = probe.num_rows();
  const int64_t build_rows = ht.build.num_rows();
  const auto& probe_key_cols =
      node.build_left ? node.right_keys : node.left_keys;

  // Matched row pairs, in probe-row-major order; matches of one probe row
  // come out in ascending build-row order (deterministic, unlike the
  // equal_range order of an unordered_multimap).
  std::vector<int64_t> probe_idx;
  std::vector<int64_t> build_idx;
  if (!probe_key_cols.empty()) {
    TDP_ASSIGN_OR_RETURN(auto probe_keys, JoinRowKeys(probe, probe_key_cols));
    for (size_t r = 0; r < probe_keys.size(); ++r) {
      const auto it = ht.rows.find(probe_keys[r]);
      if (it == ht.rows.end()) continue;
      for (int64_t b : it->second) {
        probe_idx.push_back(static_cast<int64_t>(r));
        build_idx.push_back(b);
      }
    }
  } else {
    // Pure residual join: cartesian pairs filtered below.
    probe_idx.reserve(static_cast<size_t>(probe_rows * build_rows));
    build_idx.reserve(static_cast<size_t>(probe_rows * build_rows));
    for (int64_t l = 0; l < probe_rows; ++l) {
      for (int64_t r = 0; r < build_rows; ++r) {
        probe_idx.push_back(l);
        build_idx.push_back(r);
      }
    }
  }

  // Assemble in schema order (left columns first) regardless of which
  // side was the build: the build-side flip is invisible downstream.
  const Chunk& left_chunk = node.build_left ? ht.build : probe;
  const Chunk& right_chunk = node.build_left ? probe : ht.build;
  const Tensor psel = Tensor::FromVector(probe_idx, {}, ctx.device);
  const Tensor bsel = Tensor::FromVector(build_idx, {}, ctx.device);
  const Tensor& lsel = node.build_left ? bsel : psel;
  const Tensor& rsel = node.build_left ? psel : bsel;
  Chunk joined;
  for (size_t i = 0; i < left_chunk.columns.size(); ++i) {
    joined.names.push_back(node.schema[i].name);
    joined.columns.push_back(left_chunk.columns[i].Select(lsel));
  }
  for (size_t i = 0; i < right_chunk.columns.size(); ++i) {
    joined.names.push_back(node.schema[left_chunk.columns.size() + i].name);
    joined.columns.push_back(right_chunk.columns[i].Select(rsel));
  }

  if (node.residual) {
    TDP_ASSIGN_OR_RETURN(
        Tensor mask,
        EvaluatePredicate(*node.residual, joined, EvalOpts(ctx)));
    joined = joined.Select(NonZero(mask));
  }
  return joined;
}

// ---- Sort / Limit / Distinct ------------------------------------------------

StatusOr<Chunk> ExecuteSort(const SortNode& node, const Chunk& input,
                            const ExecContext& ctx) {
  const int64_t rows = input.num_rows();
  // In-memory sort scratch: the gathered keys + permutation (+ the output
  // copy of the relation, since `input` stays live until Select returns).
  // Over budget -> external merge sort, bit-identical permutation.
  if (ctx.memory != nullptr && !ctx.soft_mode && rows > 0 &&
      !node.items.empty()) {
    const int64_t scratch =
        ChunkFootprintBytes(input) +
        rows * 8 * static_cast<int64_t>(node.items.size() + 2);
    if (ctx.memory->ShouldSpill(scratch)) {
      return ExternalSortChunk(node, input, ctx);
    }
  }
  const ScopedReservation reservation(
      ctx.memory,
      rows * 8 * static_cast<int64_t>(node.items.size() + 2));
  Tensor perm = Tensor::Arange(rows, DType::kInt64, ctx.device);
  // Stable multi-key sort: apply keys from last to first.
  for (auto it = node.items.rbegin(); it != node.items.rend(); ++it) {
    TDP_ASSIGN_OR_RETURN(
        Column key_col,
        EvaluateExprToColumn(*it->expr, input, EvalOpts(ctx)));
    Tensor keys = key_col.DecodeValues();
    if (keys.dim() != 1) {
      return Status::TypeError("ORDER BY key must be a scalar column");
    }
    const Tensor gathered = IndexSelect(keys.Detach(), 0, perm);
    const Tensor order = ArgSort(gathered, it->descending);
    perm = IndexSelect(perm, 0, order);
  }
  if (node.fused_limit >= 0 && node.fused_limit < rows) {
    perm = Slice(perm, 0, 0, node.fused_limit).Contiguous();
  }
  return input.Select(perm);
}

StatusOr<Chunk> ExecuteLimit(const LimitNode& node, const Chunk& input) {
  const int64_t rows = input.num_rows();
  const int64_t start = std::min(node.offset, rows);
  const int64_t count = node.limit < 0
                            ? rows - start
                            : std::min(node.limit, rows - start);
  Tensor idx = Tensor::Empty({count}, DType::kInt64,
                             input.columns.empty()
                                 ? Device::kCpu
                                 : input.columns[0].data().device());
  int64_t* p = idx.data<int64_t>();
  for (int64_t i = 0; i < count; ++i) p[i] = start + i;
  return input.Select(idx);
}

StatusOr<Chunk> ExecuteDistinct(const Chunk& input) {
  const int64_t rows = input.num_rows();
  std::vector<std::vector<int64_t>> codes;
  for (const Column& c : input.columns) {
    TDP_ASSIGN_OR_RETURN(std::vector<int64_t> col_codes, ColumnToCodes(c));
    codes.push_back(std::move(col_codes));
  }
  std::set<std::vector<int64_t>> seen;
  std::vector<int64_t> keep;
  std::vector<int64_t> key(codes.size());
  for (int64_t r = 0; r < rows; ++r) {
    for (size_t k = 0; k < codes.size(); ++k) {
      key[k] = codes[k][static_cast<size_t>(r)];
    }
    if (seen.insert(key).second) keep.push_back(r);
  }
  const Device device =
      input.columns.empty() ? Device::kCpu : input.columns[0].data().device();
  return input.Select(Tensor::FromVector(keep, {}, device));
}

// ---- IndexTopK --------------------------------------------------------------

namespace {

// Evaluates the node's absorbed projection over `rows` (already reduced to
// the winning top-k rows) into the output chunk. Every expression here is
// row-local (the rewrite rejects UDF-bearing projections), so evaluating
// over the k winners yields the same bytes as evaluating over the full
// relation and then selecting — the property the exactness guarantee
// rests on.
StatusOr<Chunk> ProjectIndexTopK(const plan::IndexTopKNode& node,
                                 const Chunk& rows, const ExecContext& ctx) {
  Chunk out;
  for (size_t i = 0; i < node.exprs.size(); ++i) {
    TDP_ASSIGN_OR_RETURN(
        Column c,
        EvaluateExprToColumn(*node.exprs[i], rows, EvalOpts(ctx)));
    out.names.push_back(node.schema[i].name);
    out.columns.push_back(std::move(c));
  }
  return out;
}

// Top-k permutation over `n` rows ranked by the node's sort keys — the
// similarity DESC first, then the absorbed `extra_keys` tie-breaks —
// composed as stable argsorts applied last-key-first, mirroring
// ExecuteSort exactly so candidate-subset ranking reproduces the exact
// plan's order (ties included) bit for bit. `key_values(ordinal)` yields
// the decoded 1-d values of `exprs[ordinal]` over those n rows.
StatusOr<Tensor> TopKPerm(
    const plan::IndexTopKNode& node, int64_t n, Device device,
    const std::function<StatusOr<Tensor>(int64_t)>& key_values) {
  std::vector<std::pair<int64_t, bool>> keys;  // (ordinal, descending)
  keys.emplace_back(node.sim_ordinal, true);
  for (const auto& extra : node.extra_keys) {
    keys.emplace_back(extra.ordinal, extra.descending);
  }
  Tensor perm = Tensor::Arange(n, DType::kInt64, device);
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
    TDP_ASSIGN_OR_RETURN(Tensor values, key_values(it->first));
    if (values.dim() != 1) {
      return Status::TypeError("similarity key must be a scalar column");
    }
    const Tensor gathered = IndexSelect(values.Detach(), 0, perm);
    const Tensor order = ArgSort(gathered, it->second);
    perm = IndexSelect(perm, 0, order);
  }
  const int64_t out_k = std::min<int64_t>(node.k, n);
  return Slice(perm, 0, 0, out_k).Contiguous();
}

// The k = 0 / zero-survivor result: the projection evaluated over the
// UNfiltered input, then a zero-row Select — projecting first keeps
// mixed literal/column chunks consistent where per-subset projection of
// constants over an empty chunk would diverge.
StatusOr<Chunk> EmptyIndexTopK(const plan::IndexTopKNode& node,
                               const Chunk& input, const ExecContext& ctx) {
  TDP_ASSIGN_OR_RETURN(Chunk projected, ProjectIndexTopK(node, input, ctx));
  return projected.Select(Tensor::Empty({0}, DType::kInt64, ctx.device));
}

// The exact plan shape IndexTopK replaced — Filter (when a predicate was
// absorbed), Project, stable multi-key top-k sort — used for the brute
// strategy and whenever the index cannot serve this run (re-registered
// table, row-count drift, or a degenerate zero-row candidate set).
StatusOr<Chunk> IndexTopKExact(const plan::IndexTopKNode& node,
                               const Chunk& input, const ExecContext& ctx) {
  const Chunk* base = &input;
  Chunk filtered;
  if (node.predicate != nullptr) {
    TDP_ASSIGN_OR_RETURN(
        Tensor mask,
        EvaluatePredicate(*node.predicate, input, EvalOpts(ctx)));
    if (mask.numel() != input.num_rows()) {
      return Status::ExecutionError("predicate mask length mismatch");
    }
    const Tensor survivors = NonZero(mask);
    if (survivors.numel() == 0) return EmptyIndexTopK(node, input, ctx);
    filtered = input.Select(survivors);
    base = &filtered;
  }
  TDP_ASSIGN_OR_RETURN(Chunk projected, ProjectIndexTopK(node, *base, ctx));
  TDP_ASSIGN_OR_RETURN(
      Tensor perm,
      TopKPerm(node, projected.num_rows(), ctx.device,
               [&projected](int64_t ordinal) -> StatusOr<Tensor> {
                 return projected.columns[static_cast<size_t>(ordinal)]
                     .DecodeValues();
               }));
  return projected.Select(perm);
}

}  // namespace

StatusOr<Chunk> ExecuteIndexTopK(const plan::IndexTopKNode& node,
                                 const Chunk& input, const ExecContext& ctx) {
  // Re-resolve the index from THIS run's catalog snapshot: plans are
  // immutable and shared, so index validity — like table resolution — is
  // per-run state. A vanished/stale index (the table was re-registered
  // after compilation) degrades to the exact Sort+Limit computation
  // rather than failing; the next compile drops the IndexTopK node
  // entirely (the catalog version moved).
  // LIMIT 0 emits nothing: take the exact path straight away (its
  // zero-row Select keeps mixed literal/column chunks consistent) rather
  // than probing an index whose candidates would be discarded.
  if (node.k <= 0) return IndexTopKExact(node, input, ctx);

  // The index covers the table's PHYSICAL rows (deleted rows included);
  // its validity conditions are (a) identity — FindVectorIndex already
  // checked the entry tags the registration this snapshot serves — and
  // (b) coverage: one index id per physical row, and the scanned input is
  // the table's full live view (row i of `input` is live position i).
  const std::shared_ptr<const VectorIndexEntry> entry =
      ctx.catalog->FindVectorIndex(node.table_name, node.column_name);
  if (entry == nullptr ||
      entry->index->num_rows() != entry->table->num_physical_rows() ||
      entry->table->num_rows() != input.num_rows()) {
    return IndexTopKExact(node, input, ctx);
  }
  const Table& table = *entry->table;

  // Filtered-search strategy: the per-run override beats the compiled
  // cost-rule choice; for an unfiltered node only a forced kBrute changes
  // anything (pre- and post-filter coincide with the plain probe when
  // there is no predicate). Brute bypasses the index entirely.
  const VectorSearchStrategy strategy =
      ctx.vector_search.strategy != VectorSearchStrategy::kAuto
          ? ctx.vector_search.strategy
          : (node.predicate != nullptr ? node.strategy
                                       : VectorSearchStrategy::kPostFilter);
  if (strategy == VectorSearchStrategy::kBrute) {
    return IndexTopKExact(node, input, ctx);
  }

  const auto& sim = static_cast<const exec::BoundVectorSim&>(
      *node.exprs[static_cast<size_t>(node.sim_ordinal)]);
  TDP_ASSIGN_OR_RETURN(EvalResult query,
                       EvaluateExpr(*sim.query, input, EvalOpts(ctx)));
  if (!query.is_scalar || !query.scalar.is_tensor()) {
    return Status::TypeError(
        "IndexTopK query must be a constant tensor (bind the vector with "
        "ScalarValue::FromTensor)");
  }

  // Negative budgets were rejected at run entry (ValidateRunOptions);
  // here 0 means "probe every cell".
  const int64_t num_lists = entry->index->num_lists();
  // Cosine ranking only trusts the dot-ordered cell probe on unit-norm
  // rows (see IvfIndex::rows_unit_norm); otherwise probe every cell so
  // partial-probe recall can never silently collapse — results stay
  // exact, only the scan-fraction saving is lost.
  const bool trust_partial_probe =
      sim.sim_kind == exec::BoundVectorSim::SimKind::kDot ||
      entry->index->rows_unit_norm();
  const int64_t probes =
      (ctx.vector_search.num_probes == 0 || !trust_partial_probe)
          ? num_lists
          : std::min(ctx.vector_search.num_probes, num_lists);

  // Candidate generation, by strategy. Candidates are LIVE row ids in
  // ascending order; for a filtered node every candidate already
  // satisfies the predicate by the time ranking starts.
  std::vector<int64_t> candidates;
  if (node.predicate == nullptr) {
    // The probe budget is a floor: cells are probed past it until k
    // candidate rows exist, so a LIMIT k never shrinks below min(k, n)
    // just because the best cell is small — recall absorbs the
    // approximation, row count never does. Probed ids are PHYSICAL; the
    // deleted ones are dropped and the survivors mapped to live positions
    // (MapPhysicalToLive preserves ascending order). A delete-heavy cell
    // can leave fewer than k live candidates even though the probe floor
    // was met, so the budget doubles until k live rows exist or every
    // cell was visited — deletes, like small cells, cost scan fraction,
    // never result rows.
    for (int64_t budget = probes;;) {
      TDP_ASSIGN_OR_RETURN(
          std::vector<int64_t> physical,
          entry->index->ProbeCandidates(query.scalar.tensor_value(), budget,
                                        /*min_candidates=*/node.k));
      candidates = table.MapPhysicalToLive(physical);
      if (static_cast<int64_t>(candidates.size()) >= node.k ||
          budget >= num_lists) {
        break;
      }
      budget = std::min(budget * 2, num_lists);
    }
    if (candidates.empty()) {
      return IndexTopKExact(node, input, ctx);
    }
  } else if (strategy == VectorSearchStrategy::kPreFilter) {
    // Pre-filter: evaluate the predicate over the live view once, push
    // the surviving rows into the probe as a physical-id selection
    // bitmap. Only selected rows are collected (so every candidate is a
    // survivor — no re-check, no widening loop), fully-pruned cells
    // don't consume probe budget, and the min_candidates floor counts
    // SURVIVORS — the filtered row-count guarantee in one pass. Deleted
    // rows are never selected (the live mask can't reach them), keeping
    // the bitmap consistent with the physical-id index.
    TDP_ASSIGN_OR_RETURN(
        Tensor mask,
        EvaluatePredicate(*node.predicate, input, EvalOpts(ctx)));
    if (mask.numel() != input.num_rows()) {
      return Status::ExecutionError("predicate mask length mismatch");
    }
    const std::vector<int64_t> live_survivors =
        NonZero(mask).ToVector<int64_t>();
    if (live_survivors.empty()) return EmptyIndexTopK(node, input, ctx);
    const std::vector<int64_t> physical_survivors =
        table.MapLiveToPhysical(live_survivors);
    std::vector<uint8_t> selection(
        static_cast<size_t>(table.num_physical_rows()), 0);
    for (int64_t p : physical_survivors) {
      selection[static_cast<size_t>(p)] = 1;
    }
    TDP_ASSIGN_OR_RETURN(
        std::vector<int64_t> physical,
        entry->index->ProbeCandidates(query.scalar.tensor_value(), probes,
                                      /*min_candidates=*/node.k,
                                      &selection));
    candidates = table.MapPhysicalToLive(physical);
  } else {
    // Post-filter: probe first, apply the predicate to the candidates,
    // and widen the budget while fewer than k rows survive — doubling
    // up to `max_widening_rounds` times, then jumping straight to a full
    // probe. The last round always probes every cell, so the result can
    // never hold fewer than min(k, true survivors) rows no matter how
    // adversarially the survivors cluster — the widening pace bounds
    // wasted re-probing, not the row-count guarantee.
    int64_t rounds = 0;
    for (int64_t budget = probes;;) {
      TDP_ASSIGN_OR_RETURN(
          std::vector<int64_t> physical,
          entry->index->ProbeCandidates(query.scalar.tensor_value(), budget,
                                        /*min_candidates=*/node.k));
      const std::vector<int64_t> live = table.MapPhysicalToLive(physical);
      std::vector<int64_t> survivors;
      if (!live.empty()) {
        const bool probe_all_rows =
            static_cast<int64_t>(live.size()) == input.num_rows();
        const Tensor live_ids = Tensor::FromVector(live, {}, ctx.device);
        const Chunk probe_rows =
            probe_all_rows ? input : input.Select(live_ids);
        TDP_ASSIGN_OR_RETURN(
            Tensor mask,
            EvaluatePredicate(*node.predicate, probe_rows, EvalOpts(ctx)));
        if (mask.numel() != probe_rows.num_rows()) {
          return Status::ExecutionError("predicate mask length mismatch");
        }
        for (int64_t i : NonZero(mask).ToVector<int64_t>()) {
          survivors.push_back(live[static_cast<size_t>(i)]);
        }
      }
      if (static_cast<int64_t>(survivors.size()) >= node.k ||
          budget >= num_lists) {
        candidates = std::move(survivors);
        break;
      }
      ++rounds;
      budget = rounds > ctx.vector_search.max_widening_rounds
                   ? num_lists
                   : std::min(budget * 2, num_lists);
    }
    if (candidates.empty()) return EmptyIndexTopK(node, input, ctx);
  }

  // Candidates arrive in ascending row order; ranking them with the
  // plan's own sort keys (sim DESC, then tie-breaks) under TopKPerm's
  // stable composition reproduces the exact plan's ranking over the
  // candidate subset — with full probes the subset IS the (surviving)
  // relation, making the result bit-identical to the exact plan,
  // tie-breaks included. In the all-rows case the gather is skipped
  // (candidate ids are exactly [0, n) ascending, so `input` IS the
  // candidate chunk): the default probe budget must not pay a full-table
  // copy the brute plan never pays. Key expressions are row-local, so
  // skipping the identity gather cannot change a byte.
  const bool all_rows =
      static_cast<int64_t>(candidates.size()) == input.num_rows();
  const Tensor cand_ids = Tensor::FromVector(candidates, {}, ctx.device);
  const Chunk cand_rows = all_rows ? input : input.Select(cand_ids);
  TDP_ASSIGN_OR_RETURN(
      Tensor perm,
      TopKPerm(node, cand_rows.num_rows(), ctx.device,
               [&](int64_t ordinal) -> StatusOr<Tensor> {
                 TDP_ASSIGN_OR_RETURN(
                     Column col,
                     EvaluateExprToColumn(
                         *node.exprs[static_cast<size_t>(ordinal)],
                         cand_rows, EvalOpts(ctx)));
                 return col.DecodeValues();
               }));
  const Tensor row_ids = IndexSelect(cand_ids, 0, perm);
  return ProjectIndexTopK(node, input.Select(row_ids), ctx);
}

// ---- DDL / DML kernels ------------------------------------------------------

namespace {

Chunk RowsAffectedChunk(int64_t n) {
  Chunk out;
  out.names.push_back("rows_affected");
  out.columns.push_back(
      Column::Plain(Tensor::FromVector(std::vector<int64_t>{n}, {})));
  return out;
}

Status RequireWriter(const ExecContext& ctx, const char* what) {
  if (ctx.writer == nullptr) {
    return Status::InvalidArgument(
        std::string(what) +
        " needs a writable session; this execution context is read-only");
  }
  return Status::OK();
}

// Builds the append/assign batch for one target column from evaluated
// VALUES scalars, matching `tmpl` (the table's tail column — the
// encoding/dtype/row-shape contract WithAppended enforces).
StatusOr<Column> ColumnFromScalars(const Column& tmpl,
                                   const std::string& col_name,
                                   const std::vector<ScalarValue>& values) {
  const int64_t n = static_cast<int64_t>(values.size());
  for (const ScalarValue& v : values) {
    if (v.is_null()) {
      return Status::InvalidArgument("column " + col_name +
                                     ": NULL values are not supported");
    }
  }
  switch (tmpl.encoding()) {
    case Encoding::kDictionary: {
      std::vector<std::string> strs;
      strs.reserve(values.size());
      for (const ScalarValue& v : values) {
        if (!v.is_string()) {
          return Status::TypeError("column " + col_name +
                                   " takes string values");
        }
        strs.push_back(v.string_value());
      }
      return Column::FromStrings(strs, tmpl.data().device());
    }
    case Encoding::kProbability:
      return Status::InvalidArgument(
          "column " + col_name +
          ": INSERT into probability-encoded columns is not supported");
    case Encoding::kPlain:
      break;
  }
  const DType dtype = tmpl.data().dtype();
  const Device device = tmpl.data().device();
  if (tmpl.data().dim() >= 2) {
    // Tensor column: each value is a whole row tensor (bound through a
    // `?` parameter with ScalarValue::FromTensor).
    std::vector<int64_t> row_shape = tmpl.data().shape();
    row_shape[0] = 1;
    int64_t row_numel = 1;
    for (size_t d = 1; d < row_shape.size(); ++d) row_numel *= row_shape[d];
    std::vector<Tensor> rows;
    rows.reserve(values.size());
    for (const ScalarValue& v : values) {
      if (!v.is_tensor() || v.tensor_value().numel() != row_numel) {
        return Status::TypeError(
            "column " + col_name + " takes " + std::to_string(row_numel) +
            "-element tensor rows (bind with ScalarValue::FromTensor)");
      }
      rows.push_back(Reshape(
          v.tensor_value().Detach().To(dtype).To(device), row_shape));
    }
    return Column::Plain(Cat(rows, 0));
  }
  Tensor data;
  switch (dtype) {
    case DType::kInt64: {
      std::vector<int64_t> out;
      out.reserve(values.size());
      for (const ScalarValue& v : values) {
        if (!v.is_int()) {
          return Status::TypeError("column " + col_name +
                                   " takes integer values");
        }
        out.push_back(v.int_value());
      }
      data = Tensor::FromVector(out, {}, device);
      break;
    }
    case DType::kBool: {
      data = Tensor::Empty({n}, DType::kBool, device);
      bool* p = data.data<bool>();
      for (int64_t i = 0; i < n; ++i) {
        if (!values[static_cast<size_t>(i)].is_bool()) {
          return Status::TypeError("column " + col_name +
                                   " takes boolean values");
        }
        p[i] = values[static_cast<size_t>(i)].bool_value();
      }
      break;
    }
    case DType::kFloat32:
    case DType::kFloat64: {
      std::vector<double> out;
      out.reserve(values.size());
      for (const ScalarValue& v : values) {
        if (!v.is_numeric()) {
          return Status::TypeError("column " + col_name +
                                   " takes numeric values");
        }
        out.push_back(v.AsDouble());
      }
      data = Tensor::FromVector(out, {}, device).To(dtype);
      break;
    }
    default:
      return Status::TypeError("column " + col_name +
                               ": unsupported column dtype for INSERT");
  }
  return Column::Plain(std::move(data));
}

// Coerces an evaluated column (INSERT ... SELECT source / UPDATE
// assignment result) to `tmpl`'s encoding, dtype, and device. Numeric
// widening (int column into a float column) is the only conversion; a
// genuine encoding mismatch fails with the column named.
StatusOr<Column> CoerceToColumn(const Column& tmpl,
                                const std::string& col_name,
                                const Column& incoming) {
  if (incoming.encoding() != tmpl.encoding()) {
    return Status::TypeError(
        "column " + col_name + " is " +
        std::string(EncodingName(tmpl.encoding())) + "-encoded; got " +
        std::string(EncodingName(incoming.encoding())) + " values");
  }
  if (tmpl.encoding() != Encoding::kPlain) return incoming;
  const DType dtype = tmpl.data().dtype();
  const Device device = tmpl.data().device();
  if (incoming.data().dim() != tmpl.data().dim()) {
    return Status::TypeError("column " + col_name + " rank mismatch");
  }
  if (incoming.data().dtype() == dtype &&
      incoming.data().device() == device) {
    return incoming;
  }
  const bool numeric_ok =
      IsFloatingPoint(dtype) || incoming.data().dtype() == dtype;
  if (!numeric_ok) {
    return Status::TypeError("column " + col_name + " type mismatch");
  }
  return Column::Plain(incoming.data().Detach().To(dtype).To(device));
}

/// Re-tags `entry` onto `table` (sharing the index storage).
std::shared_ptr<const VectorIndexEntry> RetagIndexEntry(
    const VectorIndexEntry& entry, std::shared_ptr<const Table> table) {
  return std::shared_ptr<const VectorIndexEntry>(new VectorIndexEntry{
      entry.table_name, entry.column_name, entry.index, std::move(table)});
}

/// The matching live positions (and selected rows) of a DML WHERE clause
/// over the full-table scan `input`; null predicate selects every row.
struct DmlSelection {
  std::vector<int64_t> positions;
  Chunk rows;
};

StatusOr<DmlSelection> SelectDmlRows(const exec::BoundExpr* predicate,
                                     const Chunk& input,
                                     const ExecContext& ctx) {
  DmlSelection sel;
  if (predicate == nullptr) {
    sel.positions.resize(static_cast<size_t>(input.num_rows()));
    for (int64_t i = 0; i < input.num_rows(); ++i) {
      sel.positions[static_cast<size_t>(i)] = i;
    }
    sel.rows = input;
    return sel;
  }
  TDP_ASSIGN_OR_RETURN(
      Tensor mask, EvaluatePredicate(*predicate, input, EvalOpts(ctx)));
  if (mask.numel() != input.num_rows()) {
    return Status::ExecutionError("predicate mask length mismatch");
  }
  const Tensor selected = NonZero(mask);
  sel.positions = selected.ToVector<int64_t>();
  sel.rows = input.Select(selected);
  return sel;
}

}  // namespace

StatusOr<Chunk> ExecuteCreateTable(const plan::CreateTableNode& node,
                                   const ExecContext& ctx) {
  TDP_RETURN_NOT_OK(RequireWriter(ctx, "CREATE TABLE"));
  std::vector<std::string> names;
  std::vector<Column> columns;
  names.reserve(node.table_schema.size());
  columns.reserve(node.table_schema.size());
  for (size_t i = 0; i < node.table_schema.size(); ++i) {
    const plan::ColumnMeta& meta = node.table_schema[i];
    names.push_back(meta.name);
    const int64_t width = node.tensor_widths[i];
    if (width > 0) {
      columns.push_back(
          Column::Plain(Tensor::Empty({0, width}, DType::kFloat32)));
    } else if (meta.encoding == Encoding::kDictionary) {
      columns.push_back(Column::FromStrings({}));
    } else {
      columns.push_back(Column::Plain(Tensor::Empty({0}, meta.dtype)));
    }
  }
  TDP_ASSIGN_OR_RETURN(
      std::shared_ptr<Table> table,
      Table::Create(node.table_name, std::move(names), std::move(columns)));
  // replace=false: CREATE TABLE of an existing name is an error, atomically
  // decided under the catalog mutex (two racing CREATEs cannot both win).
  TDP_RETURN_NOT_OK(ctx.writer->RegisterTable(node.table_name,
                                              std::move(table),
                                              /*replace=*/false));
  return RowsAffectedChunk(0);
}

StatusOr<Chunk> ExecuteInsert(const plan::InsertNode& node,
                              const Chunk& source, const ExecContext& ctx) {
  TDP_RETURN_NOT_OK(RequireWriter(ctx, "INSERT"));
  TDP_ASSIGN_OR_RETURN(std::shared_ptr<Table> target,
                       ctx.catalog->GetTable(node.table_name));
  const size_t num_cols = static_cast<size_t>(target->num_columns());
  if (node.column_map.size() != num_cols) {
    return Status::ExecutionError(
        "table " + node.table_name +
        " changed shape since compilation; re-compile the statement");
  }

  // Build the append batch in TABLE column order (column_map[i] is the
  // target column of value position i; the binder guarantees the map is a
  // permutation).
  std::vector<Column> batch(num_cols);
  int64_t added = 0;
  if (node.children.empty()) {
    added = static_cast<int64_t>(node.rows.size());
    // VALUES rows: evaluate every expression to a constant (no input
    // relation exists), then build one column per value position.
    const Chunk no_input;
    std::vector<std::vector<ScalarValue>> by_position(num_cols);
    for (const auto& row : node.rows) {
      if (row.size() != num_cols) {
        return Status::Internal("INSERT row arity mismatch");
      }
      for (size_t i = 0; i < row.size(); ++i) {
        TDP_ASSIGN_OR_RETURN(
            EvalResult v,
            EvaluateExpr(*row[i], no_input, EvalOpts(ctx)));
        if (!v.is_scalar) {
          return Status::TypeError(
              "INSERT VALUES entries must be constant expressions");
        }
        by_position[i].push_back(std::move(v.scalar));
      }
    }
    for (size_t i = 0; i < num_cols; ++i) {
      const int64_t t = node.column_map[i];
      TDP_ASSIGN_OR_RETURN(
          batch[static_cast<size_t>(t)],
          ColumnFromScalars(target->TailColumn(t),
                            target->column_names()[static_cast<size_t>(t)],
                            by_position[i]));
    }
  } else {
    // INSERT ... SELECT: the evaluated child's columns are the value
    // positions.
    if (source.columns.size() != num_cols) {
      return Status::Internal("INSERT SELECT arity mismatch");
    }
    added = source.num_rows();
    if (added == 0) return RowsAffectedChunk(0);
    for (size_t i = 0; i < num_cols; ++i) {
      const int64_t t = node.column_map[i];
      TDP_ASSIGN_OR_RETURN(
          batch[static_cast<size_t>(t)],
          CoerceToColumn(target->TailColumn(t),
                         target->column_names()[static_cast<size_t>(t)],
                         source.columns[i]));
    }
  }

  TDP_ASSIGN_OR_RETURN(std::shared_ptr<Table> written,
                       target->WithAppended(batch));

  // Vector indexes extend incrementally: the new physical rows are
  // assigned to their nearest existing centroids — no rebuild, recall
  // degrades gracefully until the next explicit CREATE VECTOR INDEX. An
  // entry that cannot extend (unexpected shape/dtype) is dropped; the
  // exact fallback keeps queries correct.
  std::vector<std::shared_ptr<const VectorIndexEntry>> entries;
  for (const auto& entry :
       ctx.catalog->TableVectorIndexes(node.table_name)) {
    if (entry->index->num_rows() != target->num_physical_rows()) continue;
    const auto col = target->ColumnIndex(entry->column_name);
    if (!col.ok()) continue;
    auto extended = entry->index->WithAppended(
        batch[static_cast<size_t>(col.value())].data());
    if (!extended.ok()) continue;
    entries.push_back(std::shared_ptr<const VectorIndexEntry>(
        new VectorIndexEntry{entry->table_name, entry->column_name,
                             std::make_shared<const index::IvfIndex>(
                                 std::move(extended).value()),
                             written}));
  }

  TDP_RETURN_NOT_OK(ctx.writer->ApplyDmlWrite(
      node.table_name, target, std::move(written), std::move(entries)));
  return RowsAffectedChunk(added);
}

StatusOr<Chunk> ExecuteUpdate(const plan::UpdateNode& node,
                              const Chunk& input, const ExecContext& ctx) {
  TDP_RETURN_NOT_OK(RequireWriter(ctx, "UPDATE"));
  TDP_ASSIGN_OR_RETURN(std::shared_ptr<Table> target,
                       ctx.catalog->GetTable(node.table_name));
  if (input.num_rows() != target->num_rows()) {
    return Status::ExecutionError(
        "table " + node.table_name +
        " changed while the UPDATE was running; retry the statement");
  }
  TDP_ASSIGN_OR_RETURN(DmlSelection sel,
                       SelectDmlRows(node.predicate.get(), input, ctx));
  if (sel.positions.empty()) return RowsAffectedChunk(0);

  // Assignment expressions are evaluated over the OLD matching rows
  // (standard SQL: `SET a = b, b = a` swaps). Every expression here is
  // row-local, so evaluating over the selected subset equals evaluating
  // over the relation and gathering.
  std::vector<std::pair<int64_t, Column>> updates;
  updates.reserve(node.assignments.size());
  for (const auto& [col, expr] : node.assignments) {
    TDP_ASSIGN_OR_RETURN(
        Column values,
        EvaluateExprToColumn(*expr, sel.rows, EvalOpts(ctx)));
    TDP_ASSIGN_OR_RETURN(
        values,
        CoerceToColumn(target->TailColumn(col),
                       target->column_names()[static_cast<size_t>(col)],
                       values));
    updates.emplace_back(col, std::move(values));
  }
  TDP_ASSIGN_OR_RETURN(std::shared_ptr<Table> written,
                       target->WithUpdated(sel.positions, updates));

  // WithUpdated compacts to a single physical==live segment. An index
  // entry survives (re-tagged, storage shared) only when that compaction
  // provably preserved physical ids — no deletes in the base — and the
  // indexed column was not assigned; otherwise it is dropped and queries
  // take the exact fallback until the index is rebuilt.
  std::vector<std::shared_ptr<const VectorIndexEntry>> entries;
  if (!target->has_deletes()) {
    for (const auto& entry :
         ctx.catalog->TableVectorIndexes(node.table_name)) {
      if (entry->index->num_rows() != target->num_physical_rows()) continue;
      const auto col = target->ColumnIndex(entry->column_name);
      if (!col.ok()) continue;
      const bool assigned =
          std::any_of(node.assignments.begin(), node.assignments.end(),
                      [&col](const auto& a) {
                        return a.first == col.value();
                      });
      if (assigned) continue;
      entries.push_back(RetagIndexEntry(*entry, written));
    }
  }

  TDP_RETURN_NOT_OK(ctx.writer->ApplyDmlWrite(
      node.table_name, target, std::move(written), std::move(entries)));
  return RowsAffectedChunk(static_cast<int64_t>(sel.positions.size()));
}

StatusOr<Chunk> ExecuteDelete(const plan::DeleteNode& node,
                              const Chunk& input, const ExecContext& ctx) {
  TDP_RETURN_NOT_OK(RequireWriter(ctx, "DELETE"));
  TDP_ASSIGN_OR_RETURN(std::shared_ptr<Table> target,
                       ctx.catalog->GetTable(node.table_name));
  if (input.num_rows() != target->num_rows()) {
    return Status::ExecutionError(
        "table " + node.table_name +
        " changed while the DELETE was running; retry the statement");
  }
  TDP_ASSIGN_OR_RETURN(DmlSelection sel,
                       SelectDmlRows(node.predicate.get(), input, ctx));
  // A no-match DELETE is a pure no-op: skip the install entirely, so it
  // bumps neither the catalog version nor any reader's snapshot.
  if (sel.positions.empty()) return RowsAffectedChunk(0);

  TDP_ASSIGN_OR_RETURN(std::shared_ptr<Table> written,
                       target->WithDeleted(sel.positions));

  // DELETE never moves a physical row — every index entry survives with
  // its storage shared; probing filters the newly-deleted ids.
  std::vector<std::shared_ptr<const VectorIndexEntry>> entries;
  for (const auto& entry :
       ctx.catalog->TableVectorIndexes(node.table_name)) {
    if (entry->index->num_rows() != target->num_physical_rows()) continue;
    entries.push_back(RetagIndexEntry(*entry, written));
  }

  TDP_RETURN_NOT_OK(ctx.writer->ApplyDmlWrite(
      node.table_name, target, std::move(written), std::move(entries)));
  return RowsAffectedChunk(static_cast<int64_t>(sel.positions.size()));
}

// ---- Legacy whole-relation executor ----------------------------------------

StatusOr<Chunk> ExecuteNode(const LogicalNode& node, const ExecContext& ctx) {
  // The legacy path has no morsel boundaries; poll the cancellation token
  // between operators instead.
  TDP_RETURN_NOT_OK(CheckCancel(ctx));
  switch (node.kind) {
    case plan::NodeKind::kScan:
      return ExecuteScan(static_cast<const ScanNode&>(node), ctx);
    case plan::NodeKind::kTvfScan: {
      TDP_ASSIGN_OR_RETURN(Chunk input, ExecuteNode(*node.children[0], ctx));
      return ExecuteTvfScan(static_cast<const TvfScanNode&>(node),
                            std::move(input), ctx);
    }
    case plan::NodeKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(node);
      TDP_ASSIGN_OR_RETURN(Chunk input, ExecuteNode(*node.children[0], ctx));
      // Fused fast path (filter-only program; when this node's parent is a
      // Project, the kProject case below owns the fused pair and the
      // cached program has has_project() set, so it is skipped here).
      if (ctx.primitive_cache != nullptr && FusedEvalEnabled()) {
        FusedProgramPtr program = ctx.primitive_cache->GetFused(
            &node,
            [&filter] { return FusedFilterProject::Compile(filter, nullptr); });
        if (program != nullptr && !program->has_project()) {
          std::optional<Chunk> fused = program->Execute(input, ctx);
          if (fused.has_value()) return std::move(*fused);
        }
      }
      return ExecuteFilter(filter, input, ctx);
    }
    case plan::NodeKind::kProject: {
      const auto& project = static_cast<const ProjectNode&>(node);
      // Fused filter+project: when the child is a Filter, compile the pair
      // once and run both operators in a single pass over the input. A
      // runtime applicability miss falls back to the unfused pair over the
      // same child output — bit-identical by construction.
      if (ctx.primitive_cache != nullptr && FusedEvalEnabled() &&
          !node.children.empty() &&
          node.children[0]->kind == plan::NodeKind::kFilter &&
          !node.children[0]->children.empty()) {
        const auto& filter = static_cast<const FilterNode&>(*node.children[0]);
        FusedProgramPtr program = ctx.primitive_cache->GetFused(
            &filter, [&filter, &project] {
              return FusedFilterProject::Compile(filter, &project);
            });
        if (program != nullptr && program->has_project()) {
          TDP_ASSIGN_OR_RETURN(
              Chunk input, ExecuteNode(*node.children[0]->children[0], ctx));
          std::optional<Chunk> fused = program->Execute(input, ctx);
          if (fused.has_value()) return std::move(*fused);
          TDP_ASSIGN_OR_RETURN(Chunk filtered,
                               ExecuteFilter(filter, input, ctx));
          return ExecuteProject(project, filtered, ctx);
        }
      }
      Chunk input;
      if (!node.children.empty()) {
        TDP_ASSIGN_OR_RETURN(input, ExecuteNode(*node.children[0], ctx));
      }
      return ExecuteProject(project, input, ctx);
    }
    case plan::NodeKind::kAggregate: {
      TDP_ASSIGN_OR_RETURN(Chunk input, ExecuteNode(*node.children[0], ctx));
      return ExecuteAggregate(static_cast<const AggregateNode&>(node), input,
                              ctx);
    }
    case plan::NodeKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(node);
      const LogicalNode& build_child =
          *node.children[join.build_left ? 0 : 1];
      const LogicalNode& probe_child =
          *node.children[join.build_left ? 1 : 0];
      // Reusable build side: when the build subtree is a deterministic
      // Filter/Project chain over one scan, key the hash table by (join
      // node, table identity, device) in the plan's PrimitiveCache. A hit
      // skips executing the build subtree and re-hashing it; DML swaps the
      // Table object, so the next run misses and rebuilds.
      std::shared_ptr<Table> build_table;
      std::shared_ptr<const JoinHashTable> ht;
      if (ctx.primitive_cache != nullptr && !ctx.soft_mode &&
          ctx.memory == nullptr) {
        const ScanNode* scan = CacheableBuildSubtree(build_child);
        if (scan != nullptr) {
          StatusOr<std::shared_ptr<Table>> resolved =
              ctx.catalog->GetTable(scan->table_name);
          if (resolved.ok()) {
            build_table = std::move(resolved).value();
            ht = ctx.primitive_cache->LookupJoin(&node, build_table,
                                                 ctx.device);
          }
        }
      }
      if (ht == nullptr) {
        TDP_ASSIGN_OR_RETURN(Chunk build, ExecuteNode(build_child, ctx));
        TDP_ASSIGN_OR_RETURN(JoinHashTable built,
                             BuildJoinHashTable(join, std::move(build), ctx));
        auto shared = std::make_shared<const JoinHashTable>(std::move(built));
        if (build_table != nullptr && shared->spilled == nullptr) {
          ctx.primitive_cache->StoreJoin(&node, std::move(build_table),
                                         ctx.device, shared);
        }
        ht = std::move(shared);
      }
      TDP_ASSIGN_OR_RETURN(Chunk probe, ExecuteNode(probe_child, ctx));
      return ProbeJoin(join, *ht, probe, ctx);
    }
    case plan::NodeKind::kSort: {
      TDP_ASSIGN_OR_RETURN(Chunk input, ExecuteNode(*node.children[0], ctx));
      return ExecuteSort(static_cast<const SortNode&>(node), input, ctx);
    }
    case plan::NodeKind::kLimit: {
      TDP_ASSIGN_OR_RETURN(Chunk input, ExecuteNode(*node.children[0], ctx));
      return ExecuteLimit(static_cast<const LimitNode&>(node), input);
    }
    case plan::NodeKind::kDistinct: {
      TDP_ASSIGN_OR_RETURN(Chunk input, ExecuteNode(*node.children[0], ctx));
      return ExecuteDistinct(input);
    }
    case plan::NodeKind::kIndexTopK: {
      TDP_ASSIGN_OR_RETURN(Chunk input, ExecuteNode(*node.children[0], ctx));
      return ExecuteIndexTopK(static_cast<const plan::IndexTopKNode&>(node),
                              input, ctx);
    }
    case plan::NodeKind::kCreateTable:
      return ExecuteCreateTable(
          static_cast<const plan::CreateTableNode&>(node), ctx);
    case plan::NodeKind::kInsert: {
      Chunk source;
      if (!node.children.empty()) {
        TDP_ASSIGN_OR_RETURN(source, ExecuteNode(*node.children[0], ctx));
      }
      return ExecuteInsert(static_cast<const plan::InsertNode&>(node),
                           source, ctx);
    }
    case plan::NodeKind::kUpdate: {
      TDP_ASSIGN_OR_RETURN(Chunk input, ExecuteNode(*node.children[0], ctx));
      return ExecuteUpdate(static_cast<const plan::UpdateNode&>(node), input,
                           ctx);
    }
    case plan::NodeKind::kDelete: {
      TDP_ASSIGN_OR_RETURN(Chunk input, ExecuteNode(*node.children[0], ctx));
      return ExecuteDelete(static_cast<const plan::DeleteNode&>(node), input,
                           ctx);
    }
  }
  return Status::Internal("unknown plan node kind");
}

int64_t DefaultMorselRows() {
  static const int64_t cached = [] {
    constexpr int64_t kDefault = 64 * 1024;
    const char* env = std::getenv("TDP_MORSEL_ROWS");
    if (env == nullptr || *env == '\0') return kDefault;
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || v < 1 || v > (int64_t{1} << 40)) {
      TDP_LOG(Warning) << "ignoring invalid TDP_MORSEL_ROWS='" << env << "'";
      return kDefault;
    }
    return static_cast<int64_t>(v);
  }();
  return cached;
}

}  // namespace exec
}  // namespace tdp
