#include "src/exec/primitive_cache.h"

#include <utility>

namespace tdp {
namespace exec {

std::shared_ptr<const JoinHashTable> PrimitiveCache::LookupJoin(
    const void* node, const std::shared_ptr<const Table>& table,
    Device device) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = joins_.find(node);
  if (it != joins_.end() && it->second.table == table &&
      it->second.device == device) {
    ++join_hits_;
    return it->second.ht;
  }
  ++join_misses_;
  return nullptr;
}

void PrimitiveCache::StoreJoin(const void* node,
                               std::shared_ptr<const Table> table,
                               Device device,
                               std::shared_ptr<const JoinHashTable> ht) {
  std::lock_guard<std::mutex> lock(mu_);
  joins_[node] = JoinSlot{std::move(table), device, std::move(ht)};
}

std::shared_ptr<const std::vector<Column>> PrimitiveCache::LookupScan(
    const void* node, const std::shared_ptr<const Table>& table,
    Device device) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = scans_.find(node);
  if (it != scans_.end() && it->second.table == table &&
      it->second.device == device) {
    ++scan_hits_;
    return it->second.columns;
  }
  ++scan_misses_;
  return nullptr;
}

void PrimitiveCache::StoreScan(
    const void* node, std::shared_ptr<const Table> table, Device device,
    std::shared_ptr<const std::vector<Column>> columns) {
  std::lock_guard<std::mutex> lock(mu_);
  scans_[node] = ScanSlot{std::move(table), device, std::move(columns)};
}

FusedProgramPtr PrimitiveCache::GetFused(
    const void* key, const std::function<FusedProgramPtr()>& compile) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = fused_.find(key);
    if (it != fused_.end()) return it->second;
  }
  // Compile outside the lock (analysis is pure); concurrent first calls
  // may both compile, but the results are structurally identical and
  // whichever lands second simply replaces an equivalent program.
  FusedProgramPtr program = compile();
  std::lock_guard<std::mutex> lock(mu_);
  ++fused_compiles_;
  fused_[key] = program;
  return program;
}

int64_t PrimitiveCache::join_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return join_hits_;
}

int64_t PrimitiveCache::join_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return join_misses_;
}

int64_t PrimitiveCache::scan_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scan_hits_;
}

int64_t PrimitiveCache::scan_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scan_misses_;
}

int64_t PrimitiveCache::fused_compiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fused_compiles_;
}

bool CacheableExpr(const BoundExpr& expr) {
  switch (expr.kind) {
    case BoundExprKind::kColumnRef:
    case BoundExprKind::kLiteral:
      return true;
    case BoundExprKind::kBinary: {
      const auto& b = static_cast<const BoundBinary&>(expr);
      return CacheableExpr(*b.left) && CacheableExpr(*b.right);
    }
    case BoundExprKind::kUnary:
      return CacheableExpr(*static_cast<const BoundUnary&>(expr).operand);
    case BoundExprKind::kCase: {
      const auto& c = static_cast<const BoundCase&>(expr);
      for (const auto& branch : c.branches) {
        if (!CacheableExpr(*branch.first) || !CacheableExpr(*branch.second)) {
          return false;
        }
      }
      return c.else_expr == nullptr || CacheableExpr(*c.else_expr);
    }
    case BoundExprKind::kParameter:
    case BoundExprKind::kUdfCall:
    case BoundExprKind::kVectorSim:
      return false;
  }
  return false;
}

const plan::ScanNode* CacheableBuildSubtree(const plan::LogicalNode& node) {
  const plan::LogicalNode* n = &node;
  while (true) {
    switch (n->kind) {
      case plan::NodeKind::kScan:
        return static_cast<const plan::ScanNode*>(n);
      case plan::NodeKind::kFilter: {
        const auto& f = static_cast<const plan::FilterNode&>(*n);
        if (f.predicate == nullptr || !CacheableExpr(*f.predicate)) {
          return nullptr;
        }
        break;
      }
      case plan::NodeKind::kProject: {
        const auto& p = static_cast<const plan::ProjectNode&>(*n);
        for (const BoundExprPtr& e : p.exprs) {
          if (!CacheableExpr(*e)) return nullptr;
        }
        break;
      }
      default:
        return nullptr;
    }
    if (n->children.size() != 1) return nullptr;
    n = n->children[0].get();
  }
}

}  // namespace exec
}  // namespace tdp
