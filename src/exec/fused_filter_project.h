#ifndef TDP_EXEC_FUSED_FILTER_PROJECT_H_
#define TDP_EXEC_FUSED_FILTER_PROJECT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/exec/chunk.h"
#include "src/exec/operators.h"
#include "src/exec/value.h"
#include "src/plan/logical_plan.h"

namespace tdp {
namespace exec {

// Fused Filter(+Project) evaluation: one pass over the morsel instead of
// the unfused chain of per-operator tensor programs (per-conjunct compare
// tensors, dtype-conversion copies, LogicalAnd materialization, a NonZero
// over the assembled mask, and a full-width Select before projection).
//
// The fused path is an EXACT re-expression of the unfused one, never an
// approximation: every per-element operation replicates the unfused
// evaluation chain bit for bit on both backends (kAccel compares/computes
// in the promoted dtype; kCpu routes each element through the reference
// backend's double-math chain), so mixing fused and unfused evaluation —
// including the per-morsel fallback below — can never change a result.
// tests/kernel_parity_test.cc holds fused and unfused runs bit-identical
// across devices, executors, thread counts, and morsel sizes.
//
// Scope (anything else falls back to the unfused operators):
//   predicate    AND-tree of comparisons between one column reference and
//                one literal/parameter — numeric compares on plain 1-d
//                int32/int64/float32/float64 columns, string compares on
//                dictionary columns (lowered to the same order-preserving
//                code compares the unfused path uses);
//   projections  column passthroughs, or +/-/* between such a column and a
//                numeric literal/parameter.
//
// Compilation is structural (per plan node, cached in PrimitiveCache);
// cheap per-morsel applicability checks — encodings, dtypes, resolved
// parameter kinds, autograd state — run at Execute() time, and any failure
// returns nullopt so the caller runs the unfused operators instead (which
// also reproduces the exact unfused error for genuinely ill-typed inputs).

class FusedFilterProject;
using FusedProgramPtr = std::shared_ptr<const FusedFilterProject>;

/// Process-wide kill switch for the fused fast path (parity tests compare
/// fused vs unfused results). Returns the previous value.
bool SetFusedEvalEnabled(bool enabled);
bool FusedEvalEnabled();

class FusedFilterProject {
 public:
  /// Compiles `filter` (and, when non-null, the immediately following
  /// `project`) into a fused program. Returns null when the predicate is
  /// out of scope; when only the projections are out of scope the result
  /// is a filter-only program (`has_project() == false`) and the caller
  /// keeps running the Project unfused.
  static FusedProgramPtr Compile(const plan::FilterNode& filter,
                                 const plan::ProjectNode* project);

  /// Whether the program consumed the Project operator too (the caller
  /// advances past both operators on success).
  bool has_project() const { return has_project_; }

  /// Runs the fused program over `input`. nullopt = a runtime
  /// applicability check failed; the caller must fall back to the unfused
  /// operators (bit-identical by construction, so the fallback is safe on
  /// any subset of morsels).
  std::optional<Chunk> Execute(const Chunk& input,
                               const ExecContext& ctx) const;

  // Program structure (public for the implementation helpers in the .cc;
  // instances are only built through Compile()).
  enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
  enum class ArithOp { kAdd, kSub, kMul };

  /// A literal operand: either an inline constant or a `?` parameter
  /// resolved from the run's bindings at Execute() time.
  struct LitSource {
    bool is_param = false;
    int64_t ordinal = 0;   // when is_param
    ScalarValue literal;   // when !is_param
  };

  /// One predicate conjunct: <column> <cmp> <literal> (or mirrored).
  struct Conjunct {
    int64_t col = 0;
    CmpOp op = CmpOp::kEq;
    bool lit_on_left = false;
    LitSource lit;
  };

  struct Projection {
    bool passthrough = false;
    int64_t col = 0;
    ArithOp op = ArithOp::kAdd;
    bool lit_on_left = false;
    LitSource lit;
  };

 private:
  friend struct FusedCompiler;

  FusedFilterProject() = default;

  std::vector<Conjunct> conjuncts_;
  bool has_project_ = false;
  std::vector<Projection> projections_;
  std::vector<std::string> project_names_;
};

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_FUSED_FILTER_PROJECT_H_
