#ifndef TDP_EXEC_SPILL_H_
#define TDP_EXEC_SPILL_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/storage/column.h"
#include "src/tensor/buffer.h"
#include "src/tensor/dtype.h"
#include "src/tensor/tensor.h"

namespace tdp {
namespace exec {

/// Raw bytes of a CONTIGUOUS tensor's viewed elements (the typed
/// `Tensor::data<T>()` accessor has no byte-typed instantiation).
inline const uint8_t* TensorRawBytes(const Tensor& t) {
  return t.impl()->buffer->data() + t.offset() * DTypeSize(t.dtype());
}
inline uint8_t* TensorRawBytesMutable(Tensor& t) {
  return t.impl()->buffer->data() + t.offset() * DTypeSize(t.dtype());
}

// Binary spill-file serialization for the breaker spill paths (external
// merge sort, grace hash join, paged aggregation). The format is exact:
// tensors round-trip their raw contiguous bytes (no float formatting, no
// re-encoding), dictionary strings and PE domains travel verbatim, so a
// value read back from disk is bit-identical to the value written. Files
// are private to one run (created via `QueryMemory::NewSpillFile`) and
// never outlive it — there is no versioning or cross-process contract.
//
// Columns are written with a leading byte length so a reader scanning for
// one column of a page can `SkipColumn` past the others without parsing
// (the per-column assembly passes of the external sort rely on this).

class SpillWriter {
 public:
  /// Opens `path` for writing (truncates).
  explicit SpillWriter(const std::string& path);

  Status WriteInt64(int64_t v);
  Status WriteBytes(const void* data, size_t size);
  Status WriteInt64Span(const int64_t* data, size_t count);

  /// dtype + shape + raw contiguous payload bytes.
  Status WriteTensor(const Tensor& t);

  /// [byte length][encoding][tensor][dictionary | domain].
  Status WriteColumn(const Column& c);

  int64_t bytes_written() const { return bytes_written_; }

  /// Flushes and closes; returns the first write error, if any.
  Status Close();

 private:
  Status CheckStream();

  std::string path_;
  std::ofstream out_;
  int64_t bytes_written_ = 0;
};

class SpillReader {
 public:
  explicit SpillReader(const std::string& path);

  bool ok() const { return in_.good(); }

  StatusOr<int64_t> ReadInt64();
  Status ReadBytes(void* data, size_t size);
  Status ReadInt64Span(int64_t* data, size_t count);
  StatusOr<Tensor> ReadTensor();
  StatusOr<Column> ReadColumn();
  /// Skips one serialized column without materializing it.
  Status SkipColumn();
  Status Skip(int64_t bytes);

 private:
  std::string path_;
  std::ifstream in_;
};

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_SPILL_H_
